(* The redfat command-line tool, mirroring the real RedFat's workflow:

     redfat compile victim.mc -o victim.relf  # or: redfat workload spec:mcf
     redfat disasm victim.relf                # inspect it
     redfat profile victim.relf --inputs 3 -o allow.lst
     redfat harden victim.relf --allowlist allow.lst -o victim.hard.relf
     redfat run victim.hard.relf --inputs 12 --env redfat
     redfat run victim.relf --inputs 12 --env memcheck

   or let the staged engine drive the whole workflow at once:

     redfat pipeline spec:mcf --jobs 4 --cache-dir _redfat_cache *)

open Cmdliner
module Fault = Engine.Fault

let parse_inputs s =
  if String.trim s = "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun x ->
           match int_of_string_opt (String.trim x) with
           | Some v -> v
           | None ->
             Fault.fail
               (Fault.Input
                  {
                    what = "script";
                    detail =
                      Printf.sprintf
                        "input script %S is not comma-separated integers" s;
                  }))

(* --- workload registry (one resolver shared with the serve daemon
   and the traffic bench: lib/serve/targets.ml) ----------------------- *)

let workload_names = Serve.Targets.workload_names
let find_workload = Serve.Targets.find_workload
let find_program = Serve.Targets.find_program

(* --- commands -------------------------------------------------------- *)

let list_cmd =
  let doc = "List the available built-in workload binaries." in
  let run () = List.iter print_endline (workload_names ()) in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let output =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")

let input_file =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"BINARY" ~doc:"Input RELF binary.")

let inputs_arg =
  Arg.(
    value & opt string ""
    & info [ "inputs" ]
        ~doc:"Comma-separated integers fed to the program's input() calls.")

let workload_cmd =
  let doc = "Compile a built-in workload to a RELF binary file." in
  let wname =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Workload name, e.g. spec:mcf.")
  in
  let run name out =
    let bin, default_inputs = find_workload name in
    Binfmt.Relf.save out bin;
    Printf.printf "wrote %s (%d bytes of code); typical inputs: %s\n" out
      (Binfmt.Relf.code_size bin)
      (String.concat "," (List.map string_of_int default_inputs))
  in
  Cmd.v (Cmd.info "workload" ~doc) Term.(const run $ wname $ output)

let compile_cmd =
  let doc = "Compile MiniC source (.mc) to a RELF binary." in
  let src =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"SOURCE" ~doc:"MiniC source file.")
  in
  let run src out =
    match Minic.Parser.compile_file src with
    | bin ->
      Binfmt.Relf.save out bin;
      Printf.printf "wrote %s (%d bytes of code)\n" out
        (Binfmt.Relf.code_size bin)
    | exception Minic.Parser.Parse_error (msg, pos) ->
      Printf.eprintf "%s:%d:%d: parse error: %s\n" src pos.line pos.col msg;
      exit 1
    | exception Minic.Lexer.Lex_error (msg, pos) ->
      Printf.eprintf "%s:%d:%d: lex error: %s\n" src pos.line pos.col msg;
      exit 1
    | exception Minic.Codegen.Compile_error msg ->
      Printf.eprintf "%s: compile error: %s\n" src msg;
      exit 1
  in
  Cmd.v (Cmd.info "compile" ~doc) Term.(const run $ src $ output)

let backend_arg =
  let backends =
    List.map
      (fun id -> (Backend.Check_backend.name id, id))
      Backend.Check_backend.all
  in
  Arg.(
    value
    & opt (enum backends) Backend.Check_backend.default
    & info [ "backend" ]
        ~doc:"Check backend: redzone|lowfat|temporal.  lowfat is the \
              paper's complementary (Redzone)+(LowFat) spatial design \
              (default); redzone drops the low-fat component; temporal \
              emits lock-and-key checks that catch use-after-free and \
              double-free without quarantine.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains for independent work items (1 = sequential).")

(* --- the fuzzing-fleet campaign CLI ---------------------------------- *)

(* --corpus: a directory of seed files.  Missing / unreadable / empty
   is the typed input.corpus fault (the campaign never starts). *)
let load_corpus dir : (string * string) list =
  let fail detail = Fault.fail (Fault.Input { what = "corpus"; detail }) in
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    fail (dir ^ ": not a directory");
  let files =
    match Sys.readdir dir with
    | a -> Array.to_list a |> List.sort compare
    | exception Sys_error e -> fail e
  in
  let seeds =
    List.filter_map
      (fun f ->
        let path = Filename.concat dir f in
        if Sys.is_directory path then None
        else
          Some (f, In_channel.with_open_bin path In_channel.input_all))
      files
  in
  if seeds = [] then fail (dir ^ ": empty seed directory");
  seeds

let fuzz_cmd =
  let doc =
    "Run a coverage-guided fuzzing campaign with the hardening checks as \
     the crash/triage oracle: mutated inputs are scheduled on the engine's \
     domain pool, inputs reaching new edge coverage join the corpus, and \
     every abnormal exit is deduplicated into a bug report keyed by \
     (oracle code, check site, backend).  See docs/FUZZING.md."
  in
  let targets =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"TARGET"
          ~doc:"Exec mode: workload name (e.g. bug:oob-write, spec:mcf), \
                MiniC source (.mc) or RELF binary (.relf); repeatable — \
                one campaign per target.  Parse mode: the parser to fuzz, \
                relf or minic.")
  in
  let seeds_arg =
    Arg.(
      value & opt_all string []
      & info [ "seed-input" ]
          ~doc:"Extra seed input script (comma-separated ints); repeatable \
                (exec mode).")
  in
  let budget =
    Arg.(
      value & opt int 2000
      & info [ "budget" ]
          ~doc:"Campaign executions per target, seed runs included.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ]
          ~doc:"Campaign LCG seed: the same (target, backend, seed, \
                budget) always yields the same bug report, for any --jobs.")
  in
  let max_steps =
    Arg.(
      value & opt int 200_000
      & info [ "max-steps" ]
          ~doc:"Per-execution VM step budget; exhausting it is triaged as \
                a hang (run.timeout).")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("exec", `Exec); ("parse", `Parse) ]) `Exec
      & info [ "mode" ]
          ~doc:"exec fuzzes hardened binaries (VM input scripts); parse \
                fuzzes the relf/minic parsers with raw bytes (every \
                malformed input must be rejected with a typed parse.* \
                fault — anything else is a parser bug).")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Seed-corpus directory (e.g. test/corrupt): raw bytes per \
                file in parse mode, comma-separated ints per file in exec \
                mode.  Missing or empty is the typed input.corpus fault.")
  in
  let expect =
    Arg.(
      value & opt int 0
      & info [ "expect-bugs" ]
          ~doc:"Exit 3 unless the campaigns found at least this many \
                unique bugs in total (CI smoke gating).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the campaign reports (coverage, counters, and the \
                deduplicated, minimized bug list) as JSON.")
  in
  let run targets jobs backend budget seed max_steps mode corpus seed_inputs
      expect out =
    let module Pl = Engine.Pipeline in
    let config = { Fuzz.Campaign.budget; seed; max_steps } in
    let eng = Pl.create ~jobs ~cache:false () in
    let corpus_seeds = Option.map load_corpus corpus in
    let campaign name : Fuzz.Campaign.report =
      match mode with
      | `Parse ->
        let which =
          match name with
          | "relf" -> Fuzz.Campaign.Relf_parser
          | "minic" -> Fuzz.Campaign.Minic_parser
          | _ ->
            Fault.fail
              (Fault.Input
                 {
                   what = "target";
                   detail =
                     "parse mode fuzzes a parser: relf or minic (got "
                     ^ name ^ ")";
                 })
        in
        let seeds =
          match corpus_seeds with
          | Some files ->
            let mine (f, _) =
              match which with
              | Fuzz.Campaign.Minic_parser -> Filename.check_suffix f ".mc"
              | Fuzz.Campaign.Relf_parser -> not (Filename.check_suffix f ".mc")
            in
            (match List.filter mine files with
            | [] ->
              Fault.fail
                (Fault.Input
                   {
                     what = "corpus";
                     detail = "no seed files for the " ^ name ^ " parser";
                   })
            | fs -> List.map snd fs)
          | None -> (
            (* built-in seeds: one well-formed document plus the empty
               input; the deterministic stage corrupts from there *)
            match which with
            | Fuzz.Campaign.Relf_parser ->
              let prog, _, _ = find_program "bug:oob-write" in
              [ Binfmt.Relf.serialize (Pl.compile eng prog); "" ]
            | Fuzz.Campaign.Minic_parser ->
              [ "func main() { let x = input(); print(x); return 0; }"; "" ])
        in
        Fuzz.Campaign.run_parse eng ~config ~which ~seeds ()
      | `Exec ->
        let hard =
          let harden bin =
            (Pl.harden eng ~opts:{ Redfat.Rewrite.optimized with backend } bin)
              .Redfat.Rewrite.binary
          in
          if Filename.check_suffix name ".relf" then begin
            let bin = Pl.load_relf eng name in
            if Redfat.Rewrite.is_hardened bin then bin else harden bin
          end
          else
            let prog, _, _ = find_program name in
            harden (Pl.compile eng prog)
        in
        let seeds =
          [ []; [ 0 ] ]
          @ List.map parse_inputs seed_inputs
          @
          match corpus_seeds with
          | None -> []
          | Some files -> List.map (fun (_, s) -> parse_inputs (String.trim s)) files
        in
        Fuzz.Campaign.run_exec eng ~config ~target:name ~seeds hard
    in
    let results =
      List.map (fun name -> (name, Pl.protect eng ~target:name (fun () -> campaign name)))
        targets
    in
    let ok = List.filter_map (fun (_, r) -> Result.to_option r) results in
    let failed = List.length results - List.length ok in
    List.iter
      (fun (name, result) ->
        match result with
        | Error f -> Printf.printf "=== %s ===\nFAILED %s\n\n" name (Fault.to_string f)
        | Ok (r : Fuzz.Campaign.report) ->
          Printf.printf "=== %s [%s, %s] ===\n" name r.r_backend r.r_mode;
          Printf.printf
            "%d execs, %d crashes, %d edges, %d sites, corpus %d, %d unique \
             bug(s)\n"
            r.r_execs r.r_crashes r.r_cov_edges r.r_cov_sites r.r_corpus
            (List.length r.r_bugs);
          List.iter
            (fun b -> Printf.printf "BUG %s\n" (Fuzz.Campaign.bug_summary b))
            r.r_bugs;
          print_newline ())
      results;
    let unique_bugs =
      List.fold_left (fun acc r -> acc + List.length r.Fuzz.Campaign.r_bugs) 0 ok
    in
    Printf.printf "total: %d unique bug(s) across %d campaign(s)\n" unique_bugs
      (List.length ok);
    (match out with
    | Some f ->
      Out_channel.with_open_text f (fun oc ->
          Out_channel.output_string oc (Fuzz.Campaign.reports_json ok));
      Printf.printf "wrote %s (campaign report JSON)\n" f
    | None -> ());
    Pl.close eng;
    if failed > 0 then begin
      Printf.printf "%d of %d campaign(s) failed\n" failed (List.length results);
      exit 2
    end;
    if unique_bugs < expect then begin
      Printf.printf "expected at least %d unique bug(s), found %d\n" expect
        unique_bugs;
      exit 3
    end
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ targets $ jobs_arg $ backend_arg $ budget $ seed $ max_steps
      $ mode $ corpus_arg $ seeds_arg $ expect $ out_arg)

let disasm_cmd =
  let doc = "Disassemble the text (and trampoline) sections." in
  let run file =
    let bin = Binfmt.Relf.load_file file in
    print_endline (Binfmt.Relf.disasm bin);
    match Binfmt.Relf.find_section bin ".redfat" with
    | Some s when s.bytes <> "" ->
      print_endline "\n; --- .redfat trampolines ---";
      print_endline (X64.Disasm.dump ~addr:s.addr s.bytes)
    | _ -> ()
  in
  Cmd.v (Cmd.info "disasm" ~doc) Term.(const run $ input_file)

let level_arg =
  let levels =
    [ ("unoptimized", Redfat.Rewrite.unoptimized);
      ("elim", Redfat.Rewrite.with_elim);
      ("batch", Redfat.Rewrite.with_batch);
      ("full", Redfat.Rewrite.optimized) ]
  in
  Arg.(
    value
    & opt (enum levels) Redfat.Rewrite.optimized
    & info [ "level" ] ~doc:"Optimization level: unoptimized|elim|batch|full.")

let no_reads =
  Arg.(
    value & flag
    & info [ "no-reads" ] ~doc:"Instrument writes only (Table 1 -reads).")

let hoist_arg =
  Arg.(
    value & flag
    & info [ "hoist" ]
        ~doc:"Hoist checks out of counted loops: one widened check over \
              the loop's access hull in the preheader replaces the \
              per-iteration checks, each covered site recorded as a \
              proof-carrying .elimtab hoist entry that the soundness \
              linter re-derives and audits.  Backends that cannot widen \
              (temporal) decline and keep per-iteration checks.")

let allowlist_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "allowlist" ]
        ~doc:"allow.lst from 'redfat profile'; sites listed get the full \
              (Redzone)+(LowFat) check, others (Redzone)-only.")

let harden_cmd =
  let doc = "Statically rewrite a binary with RedFat instrumentation." in
  let run file out level noreads allow backend hoist =
    let bin = Binfmt.Relf.load_file file in
    if Redfat.Rewrite.is_hardened bin then begin
      Printf.eprintf
        "%s already carries RedFat instrumentation (a .redfat section); \
         refusing to instrument it twice.\n"
        file;
      exit 1
    end;
    let opts =
      { level with
        Redfat.Rewrite.instrument_reads =
          level.Redfat.Rewrite.instrument_reads && not noreads;
        allowlist = Option.map Profile.Allowlist.load allow;
        backend;
        hoist = level.Redfat.Rewrite.hoist || hoist }
    in
    let hard = Redfat.harden ~opts bin in
    Binfmt.Relf.save out hard.binary;
    Format.printf "%a@." Redfat.Rewrite.pp_stats hard.stats;
    Printf.printf "wrote %s\n" out
  in
  Cmd.v (Cmd.info "harden" ~doc)
    Term.(
      const run $ input_file $ output $ level_arg $ no_reads $ allowlist_arg
      $ backend_arg $ hoist_arg)

let verify_cmd =
  let doc =
    "Audit a hardened binary with the rewrite-soundness linter: statically \
     prove every memory operand is instrumented, eliminated with a recorded \
     justification, or allow-listed."
  in
  let allow =
    Arg.(
      value
      & opt (some file) None
      & info [ "allow" ] ~docv:"FILE"
          ~doc:"Allow-list of site addresses (one hex address per line) the \
                audit accepts as intentionally unchecked.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ] ~doc:"Only report failures, not the summary.")
  in
  let run file allow quiet =
    let bin = Binfmt.Relf.load_file file in
    if not (Redfat.Rewrite.is_hardened bin) then begin
      Printf.eprintf "%s is not a hardened binary (no .redfat section)\n" file;
      exit 1
    end;
    let allow = Option.map Profile.Allowlist.load allow in
    match Redfat.Rewrite.verify ?allow bin with
    | Error e ->
      Printf.eprintf "%s: %s\n" file e;
      exit 1
    | Ok r ->
      if not quiet then Format.printf "%a@." Redfat.Verify.pp_report r;
      List.iter
        (fun (f : Redfat.Verify.failure) ->
          Printf.printf "FAIL %#x: %s\n" f.f_addr f.f_reason)
        r.failures;
      if Redfat.Verify.ok r then
        Printf.printf "%s: OK (%d memory operands accounted for)\n" file
          r.total
      else begin
        Printf.printf "%s: FAILED (%d unaccounted)\n" file
          (List.length r.failures);
        exit 1
      end
  in
  Cmd.v (Cmd.info "verify" ~doc) Term.(const run $ input_file $ allow $ quiet)

let profile_cmd =
  let doc =
    "Profiling phase (paper Fig. 5): run the instrumented binary on a test \
     suite and emit the allow-list."
  in
  let suites =
    Arg.(
      value
      & opt_all string []
      & info [ "inputs" ]
          ~doc:"Input script (comma-separated ints); repeatable, one per \
                test-suite run.")
  in
  let run file suites jobs out =
    let bin = Binfmt.Relf.load_file file in
    let test_suite = List.map parse_inputs suites in
    let test_suite = if test_suite = [] then [ [] ] else test_suite in
    let eng = Engine.Pipeline.create ~jobs ~cache:false () in
    let allow = Engine.Pipeline.profile eng ~test_suite bin in
    Engine.Pipeline.close eng;
    Profile.Allowlist.save out allow;
    Printf.printf "wrote %s (%d allow-listed sites)\n" out (List.length allow)
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ input_file $ suites $ jobs_arg $ output)

let pipeline_cmd =
  let doc =
    "Run the full staged hardening workflow (Compile >>> Profile >>> Harden \
     >>> Verify >>> Run >>> Report) on one or more targets, with per-stage \
     timings, artifact-cache statistics and per-target fault isolation: a \
     failing target is reported as a typed fault and the rest of the batch \
     completes (exit code 2), unless $(b,--strict) makes the first fault \
     fail the whole batch (exit code 1)."
  in
  let wnames =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"TARGET"
          ~doc:"Workload name (e.g. spec:mcf), MiniC source file (.mc), or \
                RELF binary file (.relf); repeatable.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Disable the content-addressed artifact cache.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Persist artifacts on disk so repeated invocations start warm.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Also write the run's spans and counters as Chrome \
                trace-event JSON (load in Perfetto / chrome://tracing).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the run's report (stages, targets, counters, and the \
                typed per-target fault records) as JSON.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Fail fast: the first fault aborts the whole batch with exit \
                code 1 instead of degrading or skipping the target.")
  in
  let inject_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"SPEC"
          ~doc:"Deterministic fault injection (testing): a comma-separated \
                list of POINT[:SUBSTR][@N][%PCT[~SEED]] clauses, or 'none'. \
                Defaults to \\$REDFAT_FAULT.")
  in
  let run names inputs jobs no_cache cache_dir trace out strict inject_spec
      backend hoist =
    let inject =
      match inject_spec with
      | None -> Engine.Faultinject.of_env ()
      | Some s -> (
        match Engine.Faultinject.parse s with
        | Ok t -> t
        | Error e ->
          Fault.fail (Fault.Input { what = "script"; detail = "--inject: " ^ e }))
    in
    let relf_inputs = parse_inputs inputs in
    let eng =
      Engine.Pipeline.create ~jobs ~cache:(not no_cache) ?cache_dir ~strict
        ~inject ()
    in
    let module Pl = Engine.Pipeline in
    (* one summary per target; a .relf target skips the Compile stage
       and uses --inputs, a workload/.mc target compiles and uses its
       own reference inputs *)
    let process name =
      let binary_chain ~train ~inputs =
        Engine.Stage.(
          Pl.stage_profile eng ~train
          >>> Pl.stage_harden eng
                ~opts:{ Redfat.Rewrite.optimized with backend; hoist }
                ()
          >>> Pl.stage_verify eng
          >>> Pl.stage_run eng ~inputs
          >>> Pl.stage_report eng)
      in
      if Filename.check_suffix name ".relf" then
        let bin = Pl.load_relf eng name in
        Engine.Stage.run ~report:(Pl.report eng)
          (binary_chain ~train:[ relf_inputs ] ~inputs:relf_inputs)
          bin
      else
        let prog, train, inputs = find_program name in
        Engine.Stage.run ~report:(Pl.report eng)
          Engine.Stage.(Pl.stage_compile eng >>> binary_chain ~train ~inputs)
          prog
    in
    let results = Pl.map_targets eng process names in
    let failed = ref 0 in
    List.iter2
      (fun name result ->
        match result with
        | Ok summary -> Printf.printf "=== %s ===\n%s\n\n" name summary
        | Error f ->
          incr failed;
          Printf.printf "=== %s ===\nFAILED %s\n\n" name (Fault.to_string f))
      names results;
    Format.printf "%a@." Engine.Report.pp (Pl.report eng);
    let st = Pl.cache_stats eng in
    Printf.printf
      "cache: %s, %d hits (%d mem / %d disk) / %d misses / %d stores\n"
      (if Pl.cache_enabled eng then "enabled" else "disabled")
      st.Engine.Cache.hits st.Engine.Cache.hits_mem st.Engine.Cache.hits_disk
      st.Engine.Cache.misses st.Engine.Cache.stores;
    (match out with
    | Some f ->
      Out_channel.with_open_text f (fun oc ->
          Out_channel.output_string oc (Pl.emit_json eng ()));
      Printf.printf "wrote %s (report JSON)\n" f
    | None -> ());
    (match trace with
    | Some f ->
      Out_channel.with_open_text f (fun oc ->
          Out_channel.output_string oc (Pl.trace_json eng));
      Printf.printf "wrote %s (Chrome trace-event JSON)\n" f
    | None -> ());
    Pl.close eng;
    if !failed > 0 then begin
      Printf.printf "%d of %d target(s) failed\n" !failed (List.length names);
      exit 2
    end
  in
  Cmd.v (Cmd.info "pipeline" ~doc)
    Term.(
      const run $ wnames $ inputs_arg $ jobs_arg $ no_cache $ cache_dir
      $ trace_arg $ out_arg $ strict_arg $ inject_arg $ backend_arg
      $ hoist_arg)

let env_arg =
  Arg.(
    value
    & opt (enum [ ("baseline", `Baseline); ("redfat", `Redfat);
                  ("memcheck", `Memcheck) ])
        `Baseline
    & info [ "env" ]
        ~doc:"Execution environment: baseline (glibc), redfat (libredfat \
              preloaded), memcheck (DBI).")

let log_flag =
  Arg.(
    value & flag
    & info [ "log" ]
        ~doc:"Log memory errors and continue instead of aborting.")

let random_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "randomize" ] ~docv:"SEED"
        ~doc:"Enable heap randomization with the given seed.")

let run_cmd =
  let doc = "Run a binary in the simulated machine." in
  let run file inputs env log random =
    let bin = Binfmt.Relf.load_file file in
    let inputs = parse_inputs inputs in
    let report (r : Redfat.run_result) verdict =
      List.iter (fun v -> Printf.printf "%d\n" v) r.outputs;
      Printf.printf "[%s; %d instructions, %d cycles]\n"
        (Redfat.verdict_to_string verdict)
        r.steps r.cycles
    in
    match env with
    | `Baseline ->
      let r, v = Redfat.run_baseline ~inputs bin in
      report r v
    | `Redfat ->
      let options =
        if log then { Redfat_rt.Runtime.default_options with mode = Log }
        else Redfat_rt.Runtime.default_options
      in
      let hr = Redfat.run_hardened ~options ?random ~inputs bin in
      report hr.run hr.verdict;
      (match hr.verdict with
       | Redfat.Detected e ->
         Printf.printf "%s\n" (Redfat_rt.Runtime.explain hr.rt e)
       | _ -> ());
      let errs = Redfat_rt.Runtime.errors hr.rt in
      if errs <> [] then begin
        Printf.printf "%d unique error site(s):\n" (List.length errs);
        List.iter
          (fun (e : Redfat_rt.Runtime.access_error) ->
            Printf.printf "  %s\n" (Redfat_rt.Runtime.explain hr.rt e))
          errs
      end;
      Printf.printf
        "coverage: %.1f%% of heap accesses under the %s backend's primary \
         check\n"
        (Redfat_rt.Runtime.coverage_percent hr.rt)
        (Backend.Check_backend.name (Redfat.backend_of_binary bin))
    | `Memcheck ->
      let r, v, mc = Redfat.run_memcheck ~inputs bin in
      report r v;
      List.iter
        (fun (e : Baselines.Memcheck.error) ->
          Printf.printf "memcheck: invalid %s of size %d at %#x (rip %#x)\n"
            (if e.write then "write" else "read")
            e.len e.addr e.rip)
        (Baselines.Memcheck.errors mc)
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ input_file $ inputs_arg $ env_arg $ log_flag $ random_arg)

let trace_cmd =
  let doc =
    "With $(b,--out): run the full staged workflow on a workload or .mc \
     file and export a structured trace (Chrome trace-event JSON with \
     per-stage/per-phase spans, cache and check counters, per-site VM \
     cycle attribution) plus a text summary.  Without: print the first N \
     executed instructions of a RELF binary (debugging aid)."
  in
  let limit =
    Arg.(value & opt int 60 & info [ "limit"; "n" ] ~doc:"Instructions to show.")
  in
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:"RELF binary (instruction mode) or workload name / MiniC \
                source (with --out).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Run the staged workflow and write Chrome trace-event JSON \
                here (load in Perfetto / chrome://tracing).")
  in
  (* workflow mode: drive every engine stage with an Obs-instrumented
     engine, attach VM check accounting to the hardened run, export *)
  let run_workflow name jobs backend hoist outfile =
    let prog, train, inputs =
      try find_program name
      with
      | Not_found ->
        Printf.eprintf "unknown workload %s (try: redfat list)\n" name;
        exit 1
      | Failure msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    in
    let module Pl = Engine.Pipeline in
    let eng = Pl.create ~jobs ~cache:false () in
    let bin = Pl.compile eng prog in
    let allow = Pl.profile eng ~test_suite:train bin in
    let hard =
      Pl.harden eng
        ~opts:
          { Redfat.Rewrite.optimized with
            allowlist = Some allow;
            backend;
            hoist }
        bin
    in
    let base, _ = Pl.run_baseline eng ~inputs bin in
    let acct = Vm.Cpu.new_acct () in
    let hrun =
      Pl.run_hardened eng
        ~options:{ Redfat_rt.Runtime.default_options with mode = Log }
        ~acct ~inputs hard.Redfat.Rewrite.binary
    in
    Pl.record_vm_acct eng acct;
    Out_channel.with_open_text outfile (fun oc ->
        Out_channel.output_string oc (Pl.trace_json eng));
    print_string (Obs.summary (Pl.obs eng));
    Printf.printf
      "\nverdict: %s; baseline %d cycles, hardened %d cycles (%.2fx)\n"
      (Redfat.verdict_to_string hrun.Redfat.verdict)
      base.Redfat.cycles hrun.Redfat.run.Redfat.cycles
      (float_of_int hrun.Redfat.run.Redfat.cycles
      /. float_of_int base.Redfat.cycles);
    Printf.printf "wrote %s (Chrome trace-event JSON)\n" outfile;
    Pl.close eng
  in
  let run file inputs limit jobs backend hoist out =
    match out with
    | Some outfile -> run_workflow file jobs backend hoist outfile
    | None ->
    let bin = Binfmt.Relf.load_file file in
    let cpu = Redfat.prepare bin in
    cpu.inputs <- parse_inputs inputs;
    List.iter
      (fun (a, t) -> Hashtbl.replace cpu.trap_table a t)
      (Redfat.Rewrite.traps_of_binary bin);
    let rt = Redfat_rt.Runtime.create cpu.mem in
    let vmrt = Redfat_rt.Runtime.install rt cpu in
    cpu.rip <- bin.entry;
    cpu.regs.(X64.Isa.rsp) <- cpu.regs.(X64.Isa.rsp) - 8;
    Vm.Mem.write cpu.mem ~addr:cpu.regs.(X64.Isa.rsp) ~len:8
      Vm.Cpu.halt_sentinel;
    (try
       for _ = 1 to limit do
         let i, _ = X64.Decode.decode ~addr:cpu.rip
             (Vm.Mem.read_string cpu.mem ~addr:cpu.rip ~len:40) 0
         in
         Printf.printf "%8x: %-40s cycles=%d\n" cpu.rip
           (X64.Disasm.to_string i) cpu.cycles;
         Vm.Cpu.step cpu vmrt
       done;
       Printf.printf "... (trace limit reached)\n"
     with
     | Vm.Cpu.Halt -> Printf.printf "[halted]\n"
     | Redfat_rt.Runtime.Memory_error e ->
       Printf.printf "[%s at site %#x]\n"
         (Redfat_rt.Runtime.kind_name e.kind) e.site)
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ target $ inputs_arg $ limit $ jobs_arg $ backend_arg
      $ hoist_arg $ out)

let serve_cmd =
  let doc =
    "Run the hardening-as-a-service daemon: a stream of line-delimited \
     JSON harden/verify/trace requests answered from a size-bounded \
     shared LRU hot cache (admission on second touch, eviction by bytes, \
     single-flight deduplication) layered above the engine's artifact \
     cache, with per-request fault isolation — a poisoned request \
     answers ok:false with its typed fault and the daemon keeps \
     serving.  Three transports: $(b,--socket) listens on a \
     Unix-domain socket until SIGTERM or a shutdown request (clean \
     exit 0); $(b,--script) handles a request file in-process and \
     exits 2 if any request failed (deterministic testing); \
     $(b,--socket) with $(b,--send) is the client, streaming a request \
     file to a running daemon and printing each response."
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on this Unix-domain socket (daemon mode); with \
                $(b,--send), connect to it instead (client mode).")
  in
  let script_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:"Handle the request lines of FILE in-process and print each \
                response (batch mode; exclusive with --socket).")
  in
  let send_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "send" ] ~docv:"FILE"
          ~doc:"Client mode (requires --socket): stream FILE's request \
                lines to the daemon and print each response; exit 2 if \
                any response is not ok.")
  in
  let mem_arg =
    Arg.(
      value
      & opt int (64 * 1024 * 1024)
      & info [ "mem-bytes" ] ~docv:"N"
          ~doc:"Byte capacity of the shared LRU hot cache (default 64 MiB).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Disable the engine's content-addressed artifact cache \
                underneath the hot tier.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Persist engine artifacts on disk so daemon restarts start \
                warm.")
  in
  let inject_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"SPEC"
          ~doc:"Deterministic fault injection (testing), as in \
                $(b,redfat pipeline --inject); the canonical spec is part \
                of every hot-cache key.  Defaults to \\$REDFAT_FAULT.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"On exit, write the serving report (serve.req.*/\
                serve.cache.* counters, latency histogram, spans, faults) \
                as JSON.")
  in
  let read_lines file =
    In_channel.with_open_text file In_channel.input_all
    |> String.split_on_char '\n'
  in
  let run socket script send mem_bytes jobs no_cache cache_dir inject_spec out
      =
    let inject =
      match inject_spec with
      | None -> Engine.Faultinject.of_env ()
      | Some s -> (
        match Engine.Faultinject.parse s with
        | Ok t -> t
        | Error e ->
          Fault.fail (Fault.Input { what = "script"; detail = "--inject: " ^ e }))
    in
    match (socket, script, send) with
    | Some sock, None, Some file ->
      (* client: no engine on this side *)
      let failed =
        Serve.Server.send ~socket:sock ~lines:(read_lines file)
          ~emit:print_endline
      in
      if failed > 0 then begin
        Printf.eprintf "serve: %d request(s) failed\n" failed;
        exit 2
      end
    | None, _, Some _ ->
      Fault.fail
        (Fault.Input { what = "script"; detail = "--send requires --socket" })
    | Some _, Some _, None ->
      Fault.fail
        (Fault.Input
           { what = "script"; detail = "--socket and --script are exclusive" })
    | None, None, None ->
      Fault.fail
        (Fault.Input
           { what = "script"; detail = "need --socket or --script" })
    | _ ->
      let eng =
        Engine.Pipeline.create ~jobs ~cache:(not no_cache) ?cache_dir ~inject
          ()
      in
      let srv = Serve.Server.create ~mem_bytes eng in
      let write_out () =
        match out with
        | Some f ->
          Out_channel.with_open_text f (fun oc ->
              Out_channel.output_string oc (Engine.Pipeline.emit_json eng ()));
          Printf.printf "wrote %s (serving report JSON)\n" f
        | None -> ()
      in
      let failed =
        match (socket, script) with
        | Some sock, None ->
          let stop _ = Serve.Server.request_stop srv in
          Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
          Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
          Printf.printf "serving on %s (%d job(s), %d MiB hot cache)\n%!"
            sock jobs
            (mem_bytes / (1024 * 1024));
          Serve.Server.listen srv ~socket:sock;
          print_endline "serve: shutting down";
          0
        | None, Some file ->
          Serve.Server.run_script srv ~lines:(read_lines file)
            ~emit:print_endline
        | _ -> assert false
      in
      let ls = Serve.Lru.stats (Serve.Server.lru srv) in
      Printf.printf
        "serve: %d hit / %d miss / %d coalesced; %d admitted, %d evicted, \
         %d bytes hot\n"
        ls.Serve.Lru.hits ls.Serve.Lru.misses ls.Serve.Lru.coalesced
        ls.Serve.Lru.admitted ls.Serve.Lru.evictions ls.Serve.Lru.bytes;
      write_out ();
      Engine.Pipeline.close eng;
      if failed > 0 then begin
        Printf.eprintf "serve: %d request(s) failed\n" failed;
        exit 2
      end
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ script_arg $ send_arg $ mem_arg $ jobs_arg
      $ no_cache $ cache_dir $ inject_arg $ out_arg)

let errors_cmd =
  let doc =
    "Print the typed fault taxonomy (stable codes, severities, meanings, \
     degradation behaviour).  Mostly an internal aid: $(b,--list) emits the \
     exact markdown table embedded in docs/MANUAL.md, which tools/doc_check \
     uses to keep the manual in sync with the code."
  in
  let list_flag =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:"Emit the taxonomy as the markdown table embedded in \
                docs/MANUAL.md (the doc-sync format).")
  in
  let run list =
    if list then print_string (Fault.registry_markdown ())
    else
      List.iter
        (fun (i : Fault.info) ->
          Printf.printf "%-16s %-9s %s\n" i.i_code
            (Fault.severity_to_string i.i_severity)
            i.i_meaning)
        Fault.registry
  in
  Cmd.v (Cmd.info "errors" ~doc) Term.(const run $ list_flag)

let main_cmd =
  let doc = "harden stripped binaries against more memory errors" in
  let info = Cmd.info "redfat" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ list_cmd; workload_cmd; compile_cmd; disasm_cmd; harden_cmd;
      verify_cmd; profile_cmd; pipeline_cmd; fuzz_cmd; run_cmd; trace_cmd;
      serve_cmd; errors_cmd ]

(* every command runs under the fault boundary: an escaping exception
   is classified into the typed taxonomy and printed as one stable
   `redfat: fault[CODE] ...` line (exit code 1), never a raw OCaml
   backtrace *)
let () =
  try exit (Cmd.eval ~catch:false main_cmd)
  with e ->
    let f = Fault.of_exn e in
    Printf.eprintf "redfat: %s\n" (Fault.to_string f);
    exit 1
