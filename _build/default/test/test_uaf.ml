(* The CWE-416 use-after-free extension suite. *)

let test_suite_shape () =
  Alcotest.(check int) "32 cases" 32 (List.length Workloads.Uaf.all);
  let ids = List.map (fun (c : Workloads.Uaf.case) -> c.id) Workloads.Uaf.all in
  Alcotest.(check int) "distinct ids" 32
    (List.length (List.sort_uniq compare ids))

let test_all_cases () =
  List.iter
    (fun (c : Workloads.Uaf.case) ->
      let bin = Workloads.Uaf.binary c in
      let hard = Redfat.harden bin in
      let b =
        Redfat.run_hardened ~inputs:Workloads.Uaf.benign_inputs hard.binary
      in
      (match b.verdict with
       | Redfat.Finished 0 -> ()
       | v -> Alcotest.failf "%s benign: %s" c.id (Redfat.verdict_to_string v));
      let a =
        Redfat.run_hardened ~inputs:Workloads.Uaf.attack_inputs hard.binary
      in
      match a.verdict with
      | Redfat.Detected e ->
        Alcotest.(check string) (c.id ^ " kind") "use-after-free"
          (Redfat_rt.Runtime.kind_name e.kind)
      | v -> Alcotest.failf "%s attack: %s" c.id (Redfat.verdict_to_string v))
    Workloads.Uaf.all

let test_memcheck_also_detects () =
  (* temporal errors are redzone-detectable: the comparator agrees *)
  List.iter
    (fun (c : Workloads.Uaf.case) ->
      if c.variant = 0 then begin
        let bin = Workloads.Uaf.binary c in
        let _, _, m =
          Redfat.run_memcheck ~inputs:Workloads.Uaf.attack_inputs bin
        in
        Alcotest.(check bool) (c.id ^ " memcheck") true
          (Baselines.Memcheck.errors m <> [])
      end)
    Workloads.Uaf.all

let test_reuse_limitation () =
  (* the honest limitation: slot reuse without quarantine ends the
     detection window for RedFat but not for the quarantining
     comparator *)
  let bin = Minic.Codegen.compile Workloads.Uaf.reuse_case in
  let hard = Redfat.harden bin in
  let r = Redfat.run_hardened hard.binary in
  (match r.verdict with
   | Redfat.Finished 0 ->
     (* the dangling write really did corrupt the new object *)
     Alcotest.(check (list int)) "silent corruption" [ 7 ] r.run.outputs
   | v -> Alcotest.failf "expected a miss, got %s" (Redfat.verdict_to_string v));
  let _, _, m = Redfat.run_memcheck bin in
  Alcotest.(check bool) "memcheck quarantine catches it" true
    (Baselines.Memcheck.errors m <> [])

let tests =
  [
    Alcotest.test_case "suite shape" `Quick test_suite_shape;
    Alcotest.test_case "all 32 cases" `Slow test_all_cases;
    Alcotest.test_case "memcheck agrees" `Quick test_memcheck_also_detects;
    Alcotest.test_case "slot-reuse limitation" `Quick test_reuse_limitation;
  ]
