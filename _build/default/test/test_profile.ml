(* The profile-based allow-list workflow (paper §5, Figure 5). *)

open Minic.Ast
open Minic.Build
module Rw = Redfat.Rewrite
module Rt = Redfat_rt.Runtime

let log_opts = { Rt.default_options with mode = Rt.Log }

(* one idiomatic store, one anti-idiom store, both executed *)
let mixed_prog =
  Minic.Ast.program
    [
      Minic.Ast.func ~name:"main"
        [
          let_ "a" (alloc_elems (i 16));
          for_ "j" (i 0) (i 16) [ set (v "a") (v "j") (v "j") ];
          for_ "j" (i 0) (i 4)
            [ Store (E8, v "a" -: i 40, v "j" +: i 5, v "j") ];
          let_ "s" (i 0);
          for_ "j" (i 0) (i 16) [ assign "s" (v "s" +: idx (v "a") (v "j")) ];
          print_ (v "s");
          return_ (i 0);
        ];
    ]

let test_allowlist_file_roundtrip () =
  let path = Filename.temp_file "allow" ".lst" in
  let l = [ 0x400010; 0x400123; 0x40ffff ] in
  Profile.Allowlist.save path l;
  let l' = Profile.Allowlist.load path in
  Sys.remove path;
  Alcotest.(check (list int)) "round-trip" l l'

let test_allowlist_set_ops () =
  Alcotest.(check (list int)) "union" [ 1; 2; 3 ]
    (Profile.Allowlist.union [ 1; 3 ] [ 2; 3 ]);
  Alcotest.(check (list int)) "diff" [ 1 ]
    (Profile.Allowlist.diff [ 1; 3 ] [ 2; 3 ])

let test_naive_full_checking_false_positive () =
  let bin = Minic.Codegen.compile mixed_prog in
  let hard = Redfat.harden bin in
  let hr = Redfat.run_hardened hard.binary in
  match hr.verdict with
  | Redfat.Detected _ -> () (* the anti-idiom trips naive full checking *)
  | v -> Alcotest.failf "expected a false positive, got %s"
           (Redfat.verdict_to_string v)

let test_workflow_removes_false_positive () =
  let bin = Minic.Codegen.compile mixed_prog in
  let hard = Redfat.profile_and_harden ~test_suite:[ [] ] bin in
  (* the anti-idiom site fell back to redzone-only *)
  Alcotest.(check bool) "some site excluded" true
    (hard.stats.redzone_sites >= 1);
  Alcotest.(check bool) "idiomatic sites kept" true
    (hard.stats.full_sites >= 1);
  let hr = Redfat.run_hardened hard.binary in
  (match hr.verdict with
   | Redfat.Finished 0 -> ()
   | v -> Alcotest.failf "production run: %s" (Redfat.verdict_to_string v));
  (* output identical to baseline *)
  let base, _ = Redfat.run_baseline bin in
  Alcotest.(check (list int)) "output" base.outputs hr.run.outputs

let test_unexecuted_sites_not_allowed () =
  (* a site behind an input-dependent branch: profiling with an input
     that skips it must leave it out of the allow-list (conservative) *)
  let prog =
    Minic.Ast.program
      [
        Minic.Ast.func ~name:"main"
          [
            let_ "a" (alloc_elems (i 8));
            let_ "m" Input;
            if_ (v "m" =: i 1) [ set (v "a") (i 0) (i 1) ] [];
            set (v "a") (i 1) (i 2);
            free_ (v "a");
            return_ (i 0);
          ];
      ]
  in
  let bin = Minic.Codegen.compile prog in
  let allow_skip = Redfat.profile ~test_suite:[ [ 0 ] ] bin in
  let allow_take = Redfat.profile ~test_suite:[ [ 1 ] ] bin in
  Alcotest.(check bool) "branch-gated site missing when skipped" true
    (List.length allow_skip < List.length allow_take)

let test_multi_run_union () =
  (* two runs covering different branches: the union covers both *)
  let prog =
    Minic.Ast.program
      [
        Minic.Ast.func ~name:"main"
          [
            let_ "a" (alloc_elems (i 8));
            let_ "m" Input;
            if_ (v "m" =: i 1)
              [ set (v "a") (i 0) (i 1) ]
              [ set (v "a") (i 1) (i 2) ];
            free_ (v "a");
            return_ (i 0);
          ];
      ]
  in
  let bin = Minic.Codegen.compile prog in
  let one = Redfat.profile ~test_suite:[ [ 0 ] ] bin in
  let both = Redfat.profile ~test_suite:[ [ 0 ]; [ 1 ] ] bin in
  Alcotest.(check bool) "union grows" true
    (List.length both > List.length one)

let test_sporadic_failure_excluded_across_runs () =
  (* a site that only fails for some inputs must be excluded even if
     another run passes it (failures intersect across the suite) *)
  let prog =
    Minic.Ast.program
      [
        Minic.Ast.func ~name:"main"
          [
            let_ "a" (alloc_elems (i 16));
            let_ "k" Input;
            (* base displaced by k elements: k=0 idiomatic, k=5 anti *)
            Store (E8, v "a" -: (v "k" <<: 3), v "k", i 1);
            free_ (v "a");
            return_ (i 0);
          ];
      ]
  in
  let bin = Minic.Codegen.compile prog in
  let allow = Redfat.profile ~test_suite:[ [ 0 ]; [ 5 ] ] bin in
  (* production build with that allow-list must not flag k=5 *)
  let hard =
    Redfat.harden ~opts:(Rw.production ~allowlist:allow) bin
  in
  let hr = Redfat.run_hardened ~inputs:[ 5 ] hard.binary in
  match hr.verdict with
  | Redfat.Finished 0 -> ()
  | v -> Alcotest.failf "sporadic FP not suppressed: %s"
           (Redfat.verdict_to_string v)

let test_profiling_build_has_per_site_checks () =
  (* profiling builds must not merge checks (site granularity) *)
  let bin = Minic.Codegen.compile mixed_prog in
  let prof = Rw.rewrite Rw.profiling_build bin in
  let prod = Rw.rewrite Rw.optimized bin in
  Alcotest.(check bool) "profiling emits >= production checks" true
    (prof.stats.checks_emitted >= prod.stats.checks_emitted);
  Alcotest.(check int) "profiling: all sites full" 0
    prof.stats.redzone_sites

let test_incomplete_allowlist_still_protects () =
  (* redzone-only sites still catch incremental overflows *)
  let prog =
    Minic.Ast.program
      [
        Minic.Ast.func ~name:"main"
          [
            let_ "a" (alloc_elems (i 8));
            let_ "k" Input;
            set (v "a") (v "k") (i 7);
            free_ (v "a");
            return_ (i 0);
          ];
      ]
  in
  let bin = Minic.Codegen.compile prog in
  (* empty allow-list: everything redzone-only *)
  let hard = Redfat.harden ~opts:(Rw.production ~allowlist:[]) bin in
  Alcotest.(check int) "no full sites" 0 hard.stats.full_sites;
  (* a[8] hits the next slot's metadata redzone: still detected *)
  let hr = Redfat.run_hardened ~inputs:[ 8 ] hard.binary in
  match hr.verdict with
  | Redfat.Detected _ -> ()
  | v -> Alcotest.failf "redzone fallback failed: %s"
           (Redfat.verdict_to_string v)

let test_log_mode_records_and_continues () =
  let bin = Minic.Codegen.compile mixed_prog in
  let hard = Redfat.harden bin in
  let hr = Redfat.run_hardened ~options:log_opts hard.binary in
  (match hr.verdict with
   | Redfat.Finished 0 -> ()
   | v -> Alcotest.failf "log mode aborted: %s" (Redfat.verdict_to_string v));
  Alcotest.(check bool) "errors recorded" true (Rt.errors hr.rt <> [])

let tests =
  [
    Alcotest.test_case "allow-list file round-trip" `Quick
      test_allowlist_file_roundtrip;
    Alcotest.test_case "allow-list set ops" `Quick test_allowlist_set_ops;
    Alcotest.test_case "naive full checking FPs" `Quick
      test_naive_full_checking_false_positive;
    Alcotest.test_case "workflow removes FP" `Quick
      test_workflow_removes_false_positive;
    Alcotest.test_case "unexecuted sites not allowed" `Quick
      test_unexecuted_sites_not_allowed;
    Alcotest.test_case "multi-run union" `Quick test_multi_run_union;
    Alcotest.test_case "sporadic failures excluded" `Quick
      test_sporadic_failure_excluded_across_runs;
    Alcotest.test_case "profiling build granularity" `Quick
      test_profiling_build_has_per_site_checks;
    Alcotest.test_case "incomplete allow-list still protects" `Quick
      test_incomplete_allowlist_still_protects;
    Alcotest.test_case "log mode records and continues" `Quick
      test_log_mode_records_and_continues;
  ]
