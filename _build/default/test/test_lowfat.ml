(* Low-fat layout and allocator invariants. *)

module L = Lowfat.Layout
module A = Lowfat.Alloc

(* --- layout ---------------------------------------------------------- *)

let test_sizes_table () =
  Alcotest.(check int) "first class" 16 L.sizes.(0);
  Alcotest.(check int) "64th class" 1024 L.sizes.(63);
  Alcotest.(check int) "largest class" (256 * 1024 * 1024)
    L.sizes.(L.num_classes - 1);
  Alcotest.(check int) "region 0 is non-fat" max_int L.sizes_table.(0);
  Alcotest.(check int) "region 1 serves 16B" 16 L.sizes_table.(1)

let test_class_of_size () =
  let check n (cls, sz) =
    Alcotest.(check (pair int int))
      (Printf.sprintf "class of %d" n)
      (cls, sz)
      (Option.get (L.class_of_size n))
  in
  check 1 (1, 16);
  check 16 (1, 16);
  check 17 (2, 32);
  check 1024 (64, 1024);
  check 1025 (65, 2048);
  check 2048 (65, 2048);
  check 2049 (66, 4096);
  Alcotest.(check bool) "huge allocations are legacy" true
    (L.class_of_size (1 lsl 30) = None)

let test_base_size_examples () =
  (* pointer into region 3 (48-byte objects) *)
  let slot = (L.region_start 3 + 47) / 48 * 48 in
  let ptr = slot + 20 in
  Alcotest.(check int) "size" 48 (L.size ptr);
  Alcotest.(check int) "base" slot (L.base ptr);
  (* non-fat pointers *)
  Alcotest.(check int) "code is non-fat" 0 (L.base L.code_base);
  Alcotest.(check int) "stack is non-fat" 0 (L.base L.stack_top);
  Alcotest.(check int) "non-fat size is max" max_int (L.size L.code_base)

let test_elimination_rule () =
  Alcotest.(check bool) "globals clear of heap" true
    (L.addr_range_clear_of_heap ~lo:L.data_base ~hi:(L.data_base + 8));
  Alcotest.(check bool) "paper's 0x601000 example" true
    (L.addr_range_clear_of_heap ~lo:0x601000 ~hi:0x601008);
  Alcotest.(check bool) "heap pointer not clear" false
    (L.addr_range_clear_of_heap ~lo:L.heap_lo ~hi:(L.heap_lo + 8));
  Alcotest.(check bool) "within 2GB below heap not clear" false
    (L.addr_range_clear_of_heap ~lo:(L.heap_lo - 1024) ~hi:(L.heap_lo - 1016));
  Alcotest.(check bool) "stack clear of heap" true
    (L.addr_range_clear_of_heap ~lo:L.stack_lo ~hi:L.stack_top)

let prop_base_size =
  QCheck.Test.make ~count:5000 ~name:"base/size invariants for fat pointers"
    QCheck.(int_range L.heap_lo (L.heap_hi - 1))
    (fun ptr ->
      if not (L.is_fat ptr) then true
      else begin
        let b = L.base ptr and s = L.size ptr in
        b <= ptr && ptr < b + s && b mod s = 0 && L.base b = b
      end)

let prop_class_of_size =
  QCheck.Test.make ~count:2000 ~name:"class_of_size covers the request"
    QCheck.(int_range 1 (1 lsl 26))
    (fun n ->
      match L.class_of_size n with
      | None -> n > L.sizes.(L.num_classes - 1)
      | Some (cls, sz) -> sz >= n && L.sizes.(cls - 1) = sz)

(* --- allocator ------------------------------------------------------- *)

let mk () = A.create (Vm.Mem.create ())

let test_alloc_alignment () =
  let a = mk () in
  List.iter
    (fun n ->
      let p = A.malloc a n in
      let sz = L.size p in
      Alcotest.(check bool)
        (Printf.sprintf "malloc %d size-aligned" n)
        true (p mod sz = 0 && sz >= n))
    [ 1; 8; 16; 17; 100; 1024; 4000; 100000 ]

let test_alloc_distinct () =
  let a = mk () in
  let ps = List.init 100 (fun _ -> A.malloc a 24) in
  let sorted = List.sort_uniq compare ps in
  Alcotest.(check int) "all distinct" 100 (List.length sorted)

let test_free_reuse () =
  let a = mk () in
  let p = A.malloc a 40 in
  A.free a p;
  let q = A.malloc a 40 in
  Alcotest.(check int) "LIFO reuse" p q

let test_no_cross_class_reuse () =
  let a = mk () in
  let p = A.malloc a 40 in
  A.free a p;
  let q = A.malloc a 400 in
  Alcotest.(check bool) "different class, different region" true
    (L.region_of_addr p <> L.region_of_addr q)

let test_double_free () =
  let a = mk () in
  let p = A.malloc a 40 in
  A.free a p;
  Alcotest.check_raises "double free" (A.Double_free p) (fun () -> A.free a p)

let test_invalid_free () =
  let a = mk () in
  let p = A.malloc a 40 in
  Alcotest.check_raises "interior free" (A.Invalid_free (p + 8)) (fun () ->
      A.free a (p + 8))

let test_legacy_fallback () =
  let a = mk () in
  let p = A.malloc a (1 lsl 29) in
  Alcotest.(check bool) "legacy pointer is non-fat" false (L.is_fat p);
  Alcotest.(check (option int)) "reserved size" (Some (1 lsl 29))
    (A.reserved_size a p);
  A.free a p;
  Alcotest.(check bool) "not live" false (A.is_live a p)

let test_live_tracking () =
  let a = mk () in
  let ps = List.init 10 (fun k -> A.malloc a (16 * (k + 1))) in
  Alcotest.(check int) "live count" 10 (A.live_count a);
  List.iter (A.free a) ps;
  Alcotest.(check int) "all freed" 0 (A.live_count a)

let test_memory_mapped () =
  let mem = Vm.Mem.create () in
  let a = A.create mem in
  let p = A.malloc a 100 in
  (* the whole slot must be mapped (checks read metadata at base) *)
  Vm.Mem.write mem ~addr:p ~len:8 42;
  Alcotest.(check int) "usable" 42 (Vm.Mem.read mem ~addr:p ~len:8);
  Alcotest.(check bool) "slot base mapped" true (Vm.Mem.is_mapped mem (L.base p))

let prop_allocator_alignment =
  QCheck.Test.make ~count:500 ~name:"allocator returns size-aligned slots"
    QCheck.(list_of_size Gen.(int_range 1 40) (int_range 1 5000))
    (fun sizes ->
      let a = mk () in
      List.for_all
        (fun n ->
          let p = A.malloc a n in
          let sz = L.size p in
          p mod sz = 0 && sz >= n)
        sizes)

let prop_alloc_free_no_overlap =
  QCheck.Test.make ~count:200 ~name:"live allocations never overlap"
    QCheck.(list_of_size Gen.(int_range 2 30) (int_range 1 2000))
    (fun sizes ->
      let a = mk () in
      let live =
        List.map (fun n -> (A.malloc a n, n)) sizes
      in
      (* intervals [p, p+n) must be pairwise disjoint *)
      let sorted = List.sort compare live in
      let rec disjoint = function
        | (p1, n1) :: ((p2, _) :: _ as rest) ->
          p1 + n1 <= p2 && disjoint rest
        | _ -> true
      in
      disjoint sorted)

(* --- heap randomization (paper §8) ----------------------------------- *)

let test_randomized_invariants () =
  let a = A.create ~random:1234 (Vm.Mem.create ()) in
  List.iter
    (fun n ->
      let p = A.malloc a n in
      let sz = L.size p in
      Alcotest.(check bool) "still size-aligned" true
        (p mod sz = 0 && sz >= n && L.base p = p))
    [ 5; 40; 100; 1024; 5000 ]

let test_randomized_differs_by_seed () =
  let a1 = A.create ~random:1 (Vm.Mem.create ()) in
  let a2 = A.create ~random:2 (Vm.Mem.create ()) in
  let a3 = A.create ~random:1 (Vm.Mem.create ()) in
  let p1 = A.malloc a1 64 and p2 = A.malloc a2 64 and p3 = A.malloc a3 64 in
  Alcotest.(check bool) "different seeds place differently" true (p1 <> p2);
  Alcotest.(check int) "same seed is deterministic" p1 p3;
  let d = A.create (Vm.Mem.create ()) in
  let pd = A.malloc d 64 in
  Alcotest.(check bool) "randomized differs from deterministic" true
    (p1 <> pd)

let test_randomized_freelist_reuse () =
  let a = A.create ~random:7 (Vm.Mem.create ()) in
  let ps = List.init 16 (fun _ -> A.malloc a 64) in
  List.iter (A.free a) ps;
  let q = A.malloc a 64 in
  (* the reused slot is one of the freed ones, and the allocator state
     remains consistent *)
  Alcotest.(check bool) "reuses a freed slot" true (List.mem q ps);
  Alcotest.(check int) "live count" 1 (A.live_count a)

let tests =
  [
    Alcotest.test_case "sizes table" `Quick test_sizes_table;
    Alcotest.test_case "class_of_size" `Quick test_class_of_size;
    Alcotest.test_case "base/size examples" `Quick test_base_size_examples;
    Alcotest.test_case "elimination distance rule" `Quick test_elimination_rule;
    QCheck_alcotest.to_alcotest prop_base_size;
    QCheck_alcotest.to_alcotest prop_class_of_size;
    Alcotest.test_case "allocation alignment" `Quick test_alloc_alignment;
    Alcotest.test_case "allocations distinct" `Quick test_alloc_distinct;
    Alcotest.test_case "free reuse" `Quick test_free_reuse;
    Alcotest.test_case "no cross-class reuse" `Quick test_no_cross_class_reuse;
    Alcotest.test_case "double free" `Quick test_double_free;
    Alcotest.test_case "invalid free" `Quick test_invalid_free;
    Alcotest.test_case "legacy fallback" `Quick test_legacy_fallback;
    Alcotest.test_case "live tracking" `Quick test_live_tracking;
    Alcotest.test_case "slots are mapped" `Quick test_memory_mapped;
    QCheck_alcotest.to_alcotest prop_allocator_alignment;
    QCheck_alcotest.to_alcotest prop_alloc_free_no_overlap;
    Alcotest.test_case "randomized invariants" `Quick
      test_randomized_invariants;
    Alcotest.test_case "randomization by seed" `Quick
      test_randomized_differs_by_seed;
    Alcotest.test_case "randomized freelist reuse" `Quick
      test_randomized_freelist_reuse;
  ]
