(* The generic instrumentation layer (E9Tool) and E9AFL-style edge
   coverage. *)

open Minic.Ast
open Minic.Build

(* a program with branch-only behaviour differences: no heap access in
   the gated branches, so redfat site coverage cannot distinguish them
   but edge coverage can *)
let branchy =
  Minic.Ast.program
    [
      func ~name:"main"
        [
          let_ "x" Input;
          let_ "s" (i 1);
          if_ (v "x" >: i 10) [ assign "s" (v "s" *: i 3) ] [];
          if_ (v "x" >: i 100) [ assign "s" (v "s" *: i 5) ] [];
          if_
            (v "x" &: i 1 =: i 1)
            [ assign "s" (v "s" *: i 7) ]
            [ assign "s" (v "s" +: i 1) ];
          print_ (v "s");
          return_ (i 0);
        ];
    ]

let binary = Minic.Codegen.compile branchy

let test_generic_instrumentation_preserves () =
  (* instrument EVERY instruction with a probe: outputs unchanged *)
  let counter = ref 0 in
  let r =
    Rewriter.Generic.instrument
      ~select:(fun _ ->
        incr counter;
        Some !counter)
      binary
  in
  Alcotest.(check bool) "many probes" true (r.probes > 20);
  List.iter
    (fun inputs ->
      let base, _ = Redfat.run_baseline ~inputs binary in
      let cpu = Redfat.prepare r.binary in
      cpu.inputs <- inputs;
      List.iter
        (fun (a, t) -> Hashtbl.replace cpu.trap_table a t)
        r.traps;
      let alloc = Baselines.Sysalloc.create cpu.mem in
      let (_ : int) =
        Vm.Cpu.run cpu (Baselines.Sysalloc.vm_runtime alloc)
          ~entry:r.binary.entry
      in
      Alcotest.(check (list int)) "outputs preserved" base.outputs
        (Vm.Cpu.outputs cpu))
    [ [ 0 ]; [ 11 ]; [ 101 ]; [ 7 ] ]

let test_block_instrumentation_counts () =
  let r, blocks = Rewriter.Generic.instrument_blocks binary in
  Alcotest.(check bool) "several blocks" true (blocks >= 6);
  Alcotest.(check int) "one probe per block" blocks r.probes

let test_edge_map_distinguishes_paths () =
  let t = Fuzz.E9afl.instrument binary in
  let edges inputs =
    let r = Fuzz.E9afl.run t ~inputs () in
    Alcotest.(check bool) "ran" true r.verdict_ok;
    Hashtbl.fold (fun e _ acc -> e :: acc) r.edges [] |> List.sort compare
  in
  let a = edges [ 0 ] and b = edges [ 11 ] and c = edges [ 101 ] in
  Alcotest.(check bool) "different paths, different edges" true
    (a <> b && b <> c && a <> c);
  Alcotest.(check (list int)) "same input, same edges" a (edges [ 0 ])

let test_edge_fuzzer_explores_branches () =
  (* edge-guided fuzzing discovers the branch structure even though the
     branches contain no heap accesses *)
  let seed_only = Fuzz.E9afl.fuzz ~seeds:[ [ 0 ] ] ~budget:0 binary in
  let fuzzed = Fuzz.E9afl.fuzz ~seeds:[ [ 0 ] ] ~budget:300 ~seed:5 binary in
  Alcotest.(check bool)
    (Printf.sprintf "edges grew (%d -> %d)" seed_only.sites_covered
       fuzzed.sites_covered)
    true
    (fuzzed.sites_covered > seed_only.sites_covered);
  Alcotest.(check bool) "corpus has several inputs" true
    (List.length fuzzed.corpus >= 3)

let test_generic_on_spec_binary () =
  (* block coverage of a real benchmark binary round-trips *)
  let b = Workloads.Spec.find "astar" in
  let bin = Workloads.Spec.binary b in
  let t = Fuzz.E9afl.instrument bin in
  let r = Fuzz.E9afl.run t ~inputs:(Workloads.Spec.train_inputs b) () in
  Alcotest.(check bool) "ran" true r.verdict_ok;
  let base, _ =
    Redfat.run_baseline ~inputs:(Workloads.Spec.train_inputs b) bin
  in
  Alcotest.(check (list int)) "outputs preserved" base.outputs r.outputs;
  Alcotest.(check bool) "edges recorded" true (Hashtbl.length r.edges > 5)

let tests =
  [
    Alcotest.test_case "generic instrumentation preserves" `Quick
      test_generic_instrumentation_preserves;
    Alcotest.test_case "block instrumentation counts" `Quick
      test_block_instrumentation_counts;
    Alcotest.test_case "edge map distinguishes paths" `Quick
      test_edge_map_distinguishes_paths;
    Alcotest.test_case "edge fuzzer explores branches" `Quick
      test_edge_fuzzer_explores_branches;
    Alcotest.test_case "generic on spec binary" `Quick
      test_generic_on_spec_binary;
  ]
