(* Workload suites: semantic sanity of every benchmark binary, plus
   spot checks of the detection scenarios (the full sweeps run in
   bench/main.exe). *)

module Rt = Redfat_rt.Runtime

let log_opts = { Rt.default_options with mode = Rt.Log }

(* every SPEC stand-in: baseline and production-hardened runs agree on
   the train workload, and the hardened ref run completes *)
let test_spec_semantics () =
  List.iter
    (fun (b : Workloads.Spec.bench) ->
      let bin = Workloads.Spec.binary b in
      let train = Workloads.Spec.train_inputs b in
      let base, bv = Redfat.run_baseline ~inputs:train bin in
      (match bv with
       | Redfat.Finished 0 -> ()
       | v -> Alcotest.failf "%s baseline: %s" b.name
                (Redfat.verdict_to_string v));
      let hard = Redfat.profile_and_harden ~test_suite:[ train ] bin in
      let hr = Redfat.run_hardened ~options:log_opts ~inputs:train hard.binary in
      (match hr.verdict with
       | Redfat.Finished 0 -> ()
       | v -> Alcotest.failf "%s hardened: %s" b.name
                (Redfat.verdict_to_string v));
      Alcotest.(check (list int))
        (b.name ^ " outputs") base.outputs hr.run.outputs;
      (* no false positives in the production configuration, beyond the
         benchmark's known real bugs *)
      let nonbug =
        List.length (Rt.errors hr.rt) - List.length b.bugs
      in
      if nonbug > 0 then
        Alcotest.failf "%s: %d unexpected production errors" b.name nonbug)
    Workloads.Spec.all

let test_spec_census_is_paper () =
  (* the static per-benchmark census data matches the paper's §7.1 *)
  let fp name = (Workloads.Spec.find name).fp_sites in
  Alcotest.(check int) "gcc" 14 (fp "gcc");
  Alcotest.(check int) "GemsFDTD" 32 (fp "GemsFDTD");
  Alcotest.(check int) "wrf" 26 (fp "wrf");
  Alcotest.(check int) "calculix" 2 (fp "calculix");
  Alcotest.(check int) "total benchmarks" 29 (List.length Workloads.Spec.all);
  Alcotest.(check int) "calculix bugs" 4
    (List.length (Workloads.Spec.find "calculix").bugs)

let test_cve_cases () =
  Alcotest.(check int) "four CVEs" 4 (List.length Workloads.Cve.all);
  List.iter
    (fun (c : Workloads.Cve.case) ->
      let bin = Workloads.Cve.binary c in
      let hard = Redfat.harden bin in
      (* benign: identical output to baseline *)
      let base, _ = Redfat.run_baseline ~inputs:c.benign_inputs bin in
      let hr = Redfat.run_hardened ~inputs:c.benign_inputs hard.binary in
      Alcotest.(check (list int)) (c.name ^ " benign") base.outputs
        hr.run.outputs;
      (* attack: detected *)
      let hr = Redfat.run_hardened ~inputs:c.attack_inputs hard.binary in
      (match hr.verdict with
       | Redfat.Detected _ -> ()
       | v -> Alcotest.failf "%s attack: %s" c.name
                (Redfat.verdict_to_string v)))
    Workloads.Cve.all

let test_juliet_generator_shape () =
  let cases = Workloads.Juliet.all in
  Alcotest.(check int) "480 cases" 480 (List.length cases);
  let ids = List.map (fun (c : Workloads.Juliet.case) -> c.id) cases in
  Alcotest.(check int) "distinct ids" 480
    (List.length (List.sort_uniq compare ids));
  let patterns =
    List.sort_uniq compare
      (List.map (fun (c : Workloads.Juliet.case) -> c.pattern) cases)
  in
  Alcotest.(check int) "15 patterns" 15 (List.length patterns)

let test_juliet_sample () =
  (* one case per pattern: benign clean, attack detected, memcheck miss *)
  List.iter
    (fun (c : Workloads.Juliet.case) ->
      if c.variant = 0 then begin
        let bin = Workloads.Juliet.binary c in
        let hard = Redfat.harden bin in
        let b = Redfat.run_hardened ~inputs:c.benign_inputs hard.binary in
        (match b.verdict with
         | Redfat.Finished 0 -> ()
         | v -> Alcotest.failf "%s benign: %s" c.id
                  (Redfat.verdict_to_string v));
        let a = Redfat.run_hardened ~inputs:c.attack_inputs hard.binary in
        (match a.verdict with
         | Redfat.Detected _ -> ()
         | v -> Alcotest.failf "%s attack: %s" c.id
                  (Redfat.verdict_to_string v));
        let _, _, mc = Redfat.run_memcheck ~inputs:c.attack_inputs bin in
        Alcotest.(check int) (c.id ^ " memcheck misses") 0
          (List.length (Baselines.Memcheck.errors mc))
      end)
    Workloads.Juliet.all

let test_kraken_write_hardening () =
  Alcotest.(check int) "14 benchmarks" 14 (List.length Workloads.Kraken.all);
  List.iter
    (fun (b : Workloads.Kraken.bench) ->
      let bin = Workloads.Kraken.binary b in
      let inputs = [ 2 ] (* tiny for the test *) in
      let base, _ = Redfat.run_baseline ~inputs bin in
      let hard =
        Redfat.harden
          ~opts:{ Redfat.Rewrite.optimized with instrument_reads = false }
          bin
      in
      let hr =
        Redfat.run_hardened
          ~options:{ Rt.default_options with check_reads = false }
          ~inputs hard.binary
      in
      (match hr.verdict with
       | Redfat.Finished 0 -> ()
       | v -> Alcotest.failf "%s: %s" b.name (Redfat.verdict_to_string v));
      Alcotest.(check (list int)) (b.name ^ " output") base.outputs
        hr.run.outputs)
    Workloads.Kraken.all

let test_chrome_binary_scales () =
  let bin = Workloads.Chrome.binary ~copies:6 () in
  let hard =
    Redfat.harden
      ~opts:{ Redfat.Rewrite.optimized with instrument_reads = false }
      bin
  in
  Alcotest.(check bool) "thousands of instructions" true
    (hard.stats.instrs_total > 10000);
  (* the hardened big binary still runs every dispatcher workload *)
  List.iter
    (fun (_, inputs) ->
      let base, _ = Redfat.run_baseline ~inputs bin in
      let hr =
        Redfat.run_hardened
          ~options:{ Rt.default_options with check_reads = false }
          ~inputs hard.binary
      in
      (match hr.verdict with
       | Redfat.Finished 0 -> ()
       | v -> Alcotest.failf "chrome: %s" (Redfat.verdict_to_string v));
      Alcotest.(check (list int)) "output" base.outputs hr.run.outputs)
    Workloads.Chrome.workloads

let test_synth_deterministic () =
  let p1 = Workloads.Synth.program ~seed:42 () in
  let p2 = Workloads.Synth.program ~seed:42 () in
  let b1 = Minic.Codegen.compile p1 and b2 = Minic.Codegen.compile p2 in
  Alcotest.(check string) "same seed, same binary"
    (Binfmt.Relf.serialize b1) (Binfmt.Relf.serialize b2);
  let p3 = Workloads.Synth.program ~seed:43 () in
  let b3 = Minic.Codegen.compile p3 in
  Alcotest.(check bool) "different seed, different binary" true
    (Binfmt.Relf.serialize b1 <> Binfmt.Relf.serialize b3)

let tests =
  [
    Alcotest.test_case "spec semantics (29 benchmarks)" `Slow
      test_spec_semantics;
    Alcotest.test_case "spec census data" `Quick test_spec_census_is_paper;
    Alcotest.test_case "cve cases" `Quick test_cve_cases;
    Alcotest.test_case "juliet generator shape" `Quick
      test_juliet_generator_shape;
    Alcotest.test_case "juliet sample (15 patterns)" `Slow test_juliet_sample;
    Alcotest.test_case "kraken write hardening" `Slow
      test_kraken_write_hardening;
    Alcotest.test_case "chrome-scale binary" `Slow test_chrome_binary_scales;
    Alcotest.test_case "synth determinism" `Quick test_synth_deterministic;
  ]
