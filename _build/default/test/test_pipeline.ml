(* End-to-end integration: MiniC -> binary -> baseline / hardened /
   memcheck runs, semantic preservation, and detection. *)

open Minic.Build

(* sum of squares below n, via a heap array *)
let sum_squares_prog n =
  Minic.Ast.program
    [
      Minic.Ast.func ~name:"main"
        [
          let_ "a" (alloc_elems (i n));
          for_ "j" (i 0) (i n) [ set (v "a") (v "j") (v "j" *: v "j") ];
          let_ "s" (i 0);
          for_ "j" (i 0) (i n) [ assign "s" (v "s" +: idx (v "a") (v "j")) ];
          print_ (v "s");
          free_ (v "a");
          return_ (i 0);
        ];
    ]

let expected_sum_squares n =
  let s = ref 0 in
  for j = 0 to n - 1 do
    s := !s + (j * j)
  done;
  !s

let test_baseline_run () =
  let binary = Minic.Codegen.compile (sum_squares_prog 100) in
  let run, verdict = Redfat.run_baseline binary in
  (match verdict with
   | Redfat.Finished 0 -> ()
   | v -> Alcotest.failf "baseline: %s" (Redfat.verdict_to_string v));
  Alcotest.(check (list int)) "output" [ expected_sum_squares 100 ] run.outputs

let run_all_levels prog =
  let binary = Minic.Codegen.compile prog in
  let base, bv = Redfat.run_baseline binary in
  (match bv with
   | Redfat.Finished _ -> ()
   | v -> Alcotest.failf "baseline: %s" (Redfat.verdict_to_string v));
  let levels =
    [
      ("unoptimized", Rewriter.Rewrite.unoptimized);
      ("+elim", Rewriter.Rewrite.with_elim);
      ("+batch", Rewriter.Rewrite.with_batch);
      ("+merge", Rewriter.Rewrite.optimized);
    ]
  in
  List.map
    (fun (name, opts) ->
      let hard = Redfat.harden ~opts binary in
      let hr = Redfat.run_hardened hard.binary in
      (match hr.verdict with
       | Redfat.Finished _ -> ()
       | v -> Alcotest.failf "%s: %s" name (Redfat.verdict_to_string v));
      Alcotest.(check (list int))
        (name ^ " output preserved") base.outputs hr.run.outputs;
      (name, base.cycles, hr.run.cycles))
    levels

let test_semantic_preservation () =
  let results = run_all_levels (sum_squares_prog 200) in
  (* every level must cost more than baseline, and each optimization
     must not be slower than the previous level *)
  List.iter
    (fun (name, base, hard) ->
      if hard <= base then
        Alcotest.failf "%s: hardened %d <= baseline %d" name hard base)
    results;
  let overheads = List.map (fun (_, b, h) -> float_of_int h /. float_of_int b) results in
  (match overheads with
   | [ unopt; elim; batch; merge ] ->
     if not (unopt >= elim && elim >= batch && batch >= merge) then
       Alcotest.failf "optimizations not monotone: %.2f %.2f %.2f %.2f" unopt
         elim batch merge
   | _ -> assert false)

(* a non-incremental overflow: a[input] = v with attacker input *)
let oob_write_prog =
  Minic.Ast.program
    [
      Minic.Ast.func ~name:"main"
        [
          let_ "a" (alloc_elems (i 8));
          let_ "b" (alloc_elems (i 8));
          set (v "b") (i 0) (i 7777);
          let_ "k" Input;
          set (v "a") (v "k") (i 666);
          print_ (idx (v "b") (i 0));
          return_ (i 0);
        ];
    ]

let test_detect_non_incremental_overflow () =
  let binary = Minic.Codegen.compile oob_write_prog in
  (* benign input runs fine *)
  let hard = Redfat.harden binary in
  let ok = Redfat.run_hardened hard.binary ~inputs:[ 3 ] in
  (match ok.verdict with
   | Redfat.Finished 0 -> ()
   | v -> Alcotest.failf "benign: %s" (Redfat.verdict_to_string v));
  (* attack input skipping far past the redzone *)
  let bad = Redfat.run_hardened hard.binary ~inputs:[ 100 ] in
  (match bad.verdict with
   | Redfat.Detected e ->
     Alcotest.(check string) "kind" "out-of-bounds (upper)"
       (Redfat_rt.Runtime.kind_name e.kind)
   | v -> Alcotest.failf "attack not stopped: %s" (Redfat.verdict_to_string v))

let test_detect_use_after_free () =
  let prog =
    Minic.Ast.program
      [
        Minic.Ast.func ~name:"main"
          [
            let_ "a" (alloc_elems (i 4));
            set (v "a") (i 0) (i 1);
            free_ (v "a");
            set (v "a") (i 0) (i 2); (* use after free *)
            return_ (i 0);
          ];
      ]
  in
  let binary = Minic.Codegen.compile prog in
  let hard = Redfat.harden binary in
  let hr = Redfat.run_hardened hard.binary in
  match hr.verdict with
  | Redfat.Detected e ->
    Alcotest.(check string) "kind" "use-after-free"
      (Redfat_rt.Runtime.kind_name e.kind)
  | v -> Alcotest.failf "UaF not detected: %s" (Redfat.verdict_to_string v)

let test_memcheck_runs () =
  let binary = Minic.Codegen.compile (sum_squares_prog 100) in
  let run, verdict, mc = Redfat.run_memcheck binary in
  (match verdict with
   | Redfat.Finished 0 -> ()
   | v -> Alcotest.failf "memcheck: %s" (Redfat.verdict_to_string v));
  Alcotest.(check (list int)) "output" [ expected_sum_squares 100 ] run.outputs;
  Alcotest.(check int) "no errors" 0 (List.length (Baselines.Memcheck.errors mc))

let test_memcheck_detects_incremental_overflow () =
  (* a[8] on an 8-element array lands in the redzone *)
  let prog =
    Minic.Ast.program
      [
        Minic.Ast.func ~name:"main"
          [
            let_ "a" (alloc_elems (i 8));
            set (v "a") (i 8) (i 1);
            return_ (i 0);
          ];
      ]
  in
  let binary = Minic.Codegen.compile prog in
  let _, _, mc = Redfat.run_memcheck binary in
  Alcotest.(check bool) "memcheck flags redzone hit" true
    (List.length (Baselines.Memcheck.errors mc) > 0)

let tests =
  [
    Alcotest.test_case "baseline run" `Quick test_baseline_run;
    Alcotest.test_case "semantics preserved at all levels" `Quick
      test_semantic_preservation;
    Alcotest.test_case "non-incremental overflow detected" `Quick
      test_detect_non_incremental_overflow;
    Alcotest.test_case "use-after-free detected" `Quick
      test_detect_use_after_free;
    Alcotest.test_case "memcheck clean run" `Quick test_memcheck_runs;
    Alcotest.test_case "memcheck detects incremental overflow" `Quick
      test_memcheck_detects_incremental_overflow;
  ]
