(* The coverage-guided profiling fuzzer (paper §5's AFL reference). *)

open Minic.Ast
open Minic.Build

(* a program whose heap accesses hide behind input-dependent branches:
   a naive seed input covers only the always-taken path *)
let gated_program =
  Minic.Ast.program
    [
      func ~name:"main"
        [
          let_ "a" (alloc_elems (i 16));
          let_ "x" Input;
          (* always executed *)
          set (v "a") (i 0) (v "x");
          (* threshold-gated paths, AFL-discoverable by +-1 mutations *)
          if_ (v "x" >: i 4) [ set (v "a") (i 1) (i 11) ] [];
          if_ (v "x" >: i 60) [ set (v "a") (i 2) (i 22) ] [];
          if_
            (v "x" &: i 1 =: i 1)
            [ set (v "a") (i 3) (i 33) ]
            [];
          (* a second input gates one more *)
          let_ "y" Input;
          if_ (v "y" >: i 2) [ set (v "a") (i 4) (i 44) ] [];
          let_ "s" (i 0);
          for_ "j" (i 0) (i 16) [ assign "s" (v "s" +: idx (v "a") (v "j")) ];
          print_ (v "s");
          free_ (v "a");
          return_ (i 0);
        ];
    ]

let binary = Minic.Codegen.compile gated_program

let test_fuzzer_deterministic () =
  let s1 = Fuzz.Fuzzer.fuzz ~seeds:[ [ 0 ] ] ~budget:100 ~seed:7 binary in
  let s2 = Fuzz.Fuzzer.fuzz ~seeds:[ [ 0 ] ] ~budget:100 ~seed:7 binary in
  Alcotest.(check int) "same coverage" s1.sites_covered s2.sites_covered;
  Alcotest.(check bool) "same corpus" true (s1.corpus = s2.corpus)

let test_fuzzer_beats_seed_coverage () =
  let seed_only = Fuzz.Fuzzer.fuzz ~seeds:[ [ 0 ] ] ~budget:0 ~seed:7 binary in
  let fuzzed = Fuzz.Fuzzer.fuzz ~seeds:[ [ 0 ] ] ~budget:300 ~seed:7 binary in
  Alcotest.(check bool)
    (Printf.sprintf "coverage grew (%d -> %d of %d)" seed_only.sites_covered
       fuzzed.sites_covered fuzzed.total_sites)
    true
    (fuzzed.sites_covered > seed_only.sites_covered);
  Alcotest.(check bool) "corpus grew" true
    (List.length fuzzed.corpus > List.length seed_only.corpus)

let test_fuzzed_allowlist_grows () =
  (* the grown corpus yields a bigger allow-list than the naive seed *)
  let naive = Redfat.profile ~test_suite:[ [ 0 ] ] binary in
  let _, st = Fuzz.Fuzzer.fuzz_and_harden ~seeds:[ [ 0 ] ] ~budget:300 ~seed:7 binary in
  let fuzzed =
    Redfat.profile ~test_suite:(if st.corpus = [] then [ [] ] else st.corpus)
      binary
  in
  Alcotest.(check bool)
    (Printf.sprintf "allow-list grew (%d -> %d)" (List.length naive)
       (List.length fuzzed))
    true
    (List.length fuzzed > List.length naive)

let test_fuzzed_production_runs_clean () =
  let hard, _ = Fuzz.Fuzzer.fuzz_and_harden ~seeds:[ [ 0 ] ] ~budget:200 ~seed:3 binary in
  List.iter
    (fun inputs ->
      let hr = Redfat.run_hardened ~inputs hard.binary in
      match hr.verdict with
      | Redfat.Finished 0 -> ()
      | v ->
        Alcotest.failf "inputs %s: %s"
          (String.concat "," (List.map string_of_int inputs))
          (Redfat.verdict_to_string v))
    [ [ 0; 0 ]; [ 5; 3 ]; [ 100; 9 ]; [ 61; 1 ] ]

let tests =
  [
    Alcotest.test_case "deterministic" `Quick test_fuzzer_deterministic;
    Alcotest.test_case "beats seed coverage" `Quick
      test_fuzzer_beats_seed_coverage;
    Alcotest.test_case "allow-list grows" `Quick test_fuzzed_allowlist_grows;
    Alcotest.test_case "fuzzed production clean" `Quick
      test_fuzzed_production_runs_clean;
  ]
