(* Robustness and determinism properties across the stack. *)

open X64

(* 1. the decoder never crashes on arbitrary bytes: it either decodes
   an instruction of positive length or raises Decode_error *)
let prop_decoder_total =
  QCheck.Test.make ~count:2000 ~name:"decoder total on random bytes"
    (QCheck.make
       QCheck.Gen.(
         string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 1 24)))
    (fun bytes ->
      match Decode.decode ~addr:0x400000 bytes 0 with
      | i, len ->
        (* whatever decodes must also print and re-encode *)
        len > 0
        && len <= String.length bytes
        && String.length (Disasm.to_string i) > 0
      | exception Decode.Decode_error _ -> true
      | exception Encode.Encode_error _ -> false)

(* 2. linear sweep of a decodable stream terminates and covers it *)
let prop_sweep_covers =
  QCheck.Test.make ~count:300 ~name:"sweep covers every byte"
    QCheck.(make Gen.(list_size (int_range 1 30) Test_x64.gen_instr))
    (fun is ->
      let code = Encode.encode_seq ~addr:0x400000 is in
      let swept = Disasm.sweep ~addr:0x400000 code in
      List.fold_left (fun acc (_, _, len) -> acc + len) 0 swept
      = String.length code)

(* 3. disassembly text is non-empty for every instruction *)
let prop_disasm_prints =
  QCheck.Test.make ~count:500 ~name:"disassembly never empty"
    (QCheck.make Test_x64.gen_instr)
    (fun i -> String.length (Disasm.to_string i) > 0)

(* 4. whole-pipeline determinism: compiling and running twice yields
   bit-identical binaries and identical cycle counts *)
let test_pipeline_determinism () =
  let b = Workloads.Spec.find "mcf" in
  let bin1 = Workloads.Spec.binary b and bin2 = Workloads.Spec.binary b in
  Alcotest.(check string) "binaries identical"
    (Binfmt.Relf.serialize bin1) (Binfmt.Relf.serialize bin2);
  let h1 = Redfat.harden bin1 and h2 = Redfat.harden bin2 in
  Alcotest.(check string) "hardened identical"
    (Binfmt.Relf.serialize h1.binary)
    (Binfmt.Relf.serialize h2.binary);
  let inputs = Workloads.Spec.ref_inputs b in
  let r1 = Redfat.run_hardened ~inputs h1.binary in
  let r2 = Redfat.run_hardened ~inputs h2.binary in
  Alcotest.(check int) "cycles identical" r1.run.cycles r2.run.cycles;
  Alcotest.(check int) "steps identical" r1.run.steps r2.run.steps

(* 5. the wrapper handles legacy (non-fat) allocations transparently *)
let test_legacy_allocation_through_wrapper () =
  let open Minic.Build in
  let prog =
    Minic.Ast.program
      [
        Minic.Ast.func ~name:"main"
          [
            (* far beyond the largest size class *)
            let_ "big" (alloc_bytes (i (600 * 1024 * 1024)));
            set (v "big") (i 0) (i 7);
            set (v "big") (i 1000) (i 8);
            print_ (idx (v "big") (i 0) +: idx (v "big") (i 1000));
            free_ (v "big");
            return_ (i 0);
          ];
      ]
  in
  let bin = Minic.Codegen.compile prog in
  let hard = Redfat.harden bin in
  let hr = Redfat.run_hardened hard.binary in
  match hr.verdict with
  | Redfat.Finished 0 ->
    Alcotest.(check (list int)) "output" [ 15 ] hr.run.outputs
  | v -> Alcotest.failf "legacy run: %s" (Redfat.verdict_to_string v)

(* 6. -reads really does stop read detection (the CVE-2016-1903 info
   leak is only caught when reads are instrumented) *)
let test_reads_flag_controls_read_detection () =
  let c = Workloads.Cve.php_gd_rotate in
  let bin = Workloads.Cve.binary c in
  let full = Redfat.harden bin in
  let hr = Redfat.run_hardened ~inputs:c.attack_inputs full.binary in
  (match hr.verdict with
   | Redfat.Detected _ -> ()
   | v -> Alcotest.failf "full: %s" (Redfat.verdict_to_string v));
  let wo =
    Redfat.harden ~opts:{ Redfat.Rewrite.optimized with instrument_reads = false }
      bin
  in
  let hr =
    Redfat.run_hardened
      ~options:{ Redfat_rt.Runtime.default_options with check_reads = false }
      ~inputs:c.attack_inputs wo.binary
  in
  match hr.verdict with
  | Redfat.Finished _ -> () (* the read leak is the cost of -reads *)
  | v -> Alcotest.failf "writes-only: %s" (Redfat.verdict_to_string v)

(* 7. merged checks keep exact bounds: accesses at the edges of a
   merged displacement range are judged like unmerged ones *)
let test_merged_bounds_exact () =
  let open Minic.Build in
  (* unrolled 3-store run with the last displacement out of bounds for
     small arrays: merged check must still flag exactly when the
     farthest store overflows *)
  let prog elems =
    Minic.Ast.program
      [
        Minic.Ast.func ~name:"main"
          [
            let_ "a" (alloc_elems (i elems));
            msets (v "a") (i 0) [ (0, i 1); (1, i 2); (2, i 3) ];
            free_ (v "a");
            return_ (i 0);
          ];
      ]
  in
  let verdict elems =
    let hard = Redfat.harden (Minic.Codegen.compile (prog elems)) in
    (Redfat.run_hardened hard.binary).verdict
  in
  (match verdict 3 with
   | Redfat.Finished 0 -> ()
   | v -> Alcotest.failf "3 elems: %s" (Redfat.verdict_to_string v));
  match verdict 2 with
  | Redfat.Detected _ -> ()
  | v -> Alcotest.failf "2 elems: %s" (Redfat.verdict_to_string v)

(* 8. randomized heap preserves behaviour and detection *)
let test_randomization_preserves_semantics () =
  let b = Workloads.Spec.find "perlbench" in
  let bin = Workloads.Spec.binary b in
  let inputs = Workloads.Spec.train_inputs b in
  let hard = Redfat.profile_and_harden ~test_suite:[ inputs ] bin in
  let plain = Redfat.run_hardened ~inputs hard.binary in
  let rand = Redfat.run_hardened ~random:99 ~inputs hard.binary in
  Alcotest.(check (list int)) "same outputs" plain.run.outputs rand.run.outputs;
  (* detection still works under randomization *)
  let c = List.hd Workloads.Juliet.all in
  let jb = Workloads.Juliet.binary c in
  let jh = Redfat.harden jb in
  let hr = Redfat.run_hardened ~random:99 ~inputs:c.attack_inputs jh.binary in
  match hr.verdict with
  | Redfat.Detected _ -> ()
  | v -> Alcotest.failf "randomized detection: %s" (Redfat.verdict_to_string v)

(* 9. nested calls as arguments, calls inside Multi_store values *)
let test_codegen_torture () =
  let open Minic.Build in
  let prog =
    Minic.Ast.program
      [
        Minic.Ast.func ~name:"main"
          [
            let_ "a" (alloc_elems (i 8));
            (* call results used as multi-store values *)
            msets (v "a") (i 0)
              [ (0, call "g" [ i 1; call "g" [ i 2; i 3 ] ]);
                (1, call "g" [ call "g" [ i 4; i 5 ]; i 6 ]) ];
            print_ (idx (v "a") (i 0) +: idx (v "a") (i 1));
            free_ (v "a");
            return_ (i 0);
          ];
        Minic.Ast.func ~name:"g" ~params:[ "x"; "y" ]
          [ return_ ((v "x" *: i 10) +: v "y") ];
      ]
  in
  let bin = Minic.Codegen.compile prog in
  let r, v = Redfat.run_baseline bin in
  (match v with
   | Redfat.Finished 0 -> ()
   | v -> Alcotest.failf "torture: %s" (Redfat.verdict_to_string v));
  (* g(1, g(2,3)) = 10+23 = 33; g(g(4,5), 6) = 45*10+6 = 456 *)
  Alcotest.(check (list int)) "nested calls" [ 33 + 456 ] r.outputs;
  (* and hardened agrees *)
  let hard = Redfat.harden bin in
  let hr = Redfat.run_hardened hard.binary in
  Alcotest.(check (list int)) "hardened agrees" r.outputs hr.run.outputs

(* 10. storek with negative folded displacement *)
let test_negative_displacement () =
  let open Minic.Build in
  let prog =
    Minic.Ast.program
      [
        Minic.Ast.func ~name:"main"
          [
            let_ "a" (alloc_elems (i 8));
            setk (v "a") (i 5) (-2) (i 77); (* a[3] *)
            print_ (idx (v "a") (i 3));
            free_ (v "a");
            return_ (i 0);
          ];
      ]
  in
  let bin = Minic.Codegen.compile prog in
  let hard = Redfat.harden bin in
  let hr = Redfat.run_hardened hard.binary in
  match hr.verdict with
  | Redfat.Finished 0 ->
    Alcotest.(check (list int)) "output" [ 77 ] hr.run.outputs
  | v -> Alcotest.failf "neg disp: %s" (Redfat.verdict_to_string v)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_decoder_total;
    QCheck_alcotest.to_alcotest prop_sweep_covers;
    QCheck_alcotest.to_alcotest prop_disasm_prints;
    Alcotest.test_case "pipeline determinism" `Quick test_pipeline_determinism;
    Alcotest.test_case "legacy allocations" `Quick
      test_legacy_allocation_through_wrapper;
    Alcotest.test_case "-reads controls read detection" `Quick
      test_reads_flag_controls_read_detection;
    Alcotest.test_case "merged bounds exact" `Quick test_merged_bounds_exact;
    Alcotest.test_case "randomization preserves semantics" `Quick
      test_randomization_preserves_semantics;
    Alcotest.test_case "codegen torture" `Quick test_codegen_torture;
    Alcotest.test_case "negative displacement" `Quick
      test_negative_displacement;
  ]
