test/test_profile.ml: Alcotest Filename List Minic Profile Redfat Redfat_rt Sys
