test/test_vm.ml: Alcotest Array Asm Disasm Hashtbl Isa List Printf Vm X64
