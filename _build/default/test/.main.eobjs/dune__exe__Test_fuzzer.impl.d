test/test_fuzzer.ml: Alcotest Fuzz List Minic Printf Redfat String
