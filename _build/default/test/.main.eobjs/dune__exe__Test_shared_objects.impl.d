test/test_shared_objects.ml: Alcotest List Lowfat Minic Redfat
