test/test_memcheck.ml: Alcotest Baselines List Minic Redfat
