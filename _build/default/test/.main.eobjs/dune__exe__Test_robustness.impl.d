test/test_robustness.ml: Alcotest Binfmt Char Decode Disasm Encode Gen List Minic QCheck QCheck_alcotest Redfat Redfat_rt String Test_x64 Workloads X64
