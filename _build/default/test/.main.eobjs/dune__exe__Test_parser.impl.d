test/test_parser.ml: Alcotest Binfmt Minic Redfat
