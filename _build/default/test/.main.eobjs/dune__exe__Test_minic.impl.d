test/test_minic.ml: Alcotest Binfmt List Minic Printf Redfat Workloads X64
