test/test_e9afl.ml: Alcotest Baselines Fuzz Hashtbl List Minic Printf Redfat Rewriter Vm Workloads
