test/test_asm_properties.ml: Binfmt Encode Gen Isa List Lowfat Printf QCheck QCheck_alcotest Redfat Rewriter String X64
