test/test_workloads.ml: Alcotest Baselines Binfmt List Minic Redfat Redfat_rt Workloads
