test/test_uaf.ml: Alcotest Baselines List Minic Redfat Redfat_rt Workloads
