test/test_x64.ml: Alcotest Asm Buffer Decode Disasm Encode Gen Hashtbl Isa List QCheck QCheck_alcotest String X64
