test/test_binfmt.ml: Alcotest Binfmt Char Filename List QCheck QCheck_alcotest String Sys Vm
