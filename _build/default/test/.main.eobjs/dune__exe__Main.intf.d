test/main.mli:
