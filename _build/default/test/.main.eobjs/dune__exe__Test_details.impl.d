test/test_details.ml: Alcotest Array Asm Binfmt Buffer Decode Disasm Encode Isa List Minic Printf Redfat Redfat_rt Rewriter String Vm Workloads X64
