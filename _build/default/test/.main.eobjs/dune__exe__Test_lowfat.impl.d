test/test_lowfat.ml: Alcotest Array Gen List Lowfat Option Printf QCheck QCheck_alcotest Vm
