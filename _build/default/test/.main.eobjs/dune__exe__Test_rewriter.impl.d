test/test_rewriter.ml: Alcotest Array Asm Binfmt Disasm Hashtbl Isa List Lowfat Minic Redfat Rewriter Workloads X64
