test/test_properties.ml: Baselines List Minic QCheck QCheck_alcotest Redfat Redfat_rt Workloads
