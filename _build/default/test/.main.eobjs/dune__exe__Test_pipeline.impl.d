test/test_pipeline.ml: Alcotest Baselines List Minic Redfat Redfat_rt Rewriter
