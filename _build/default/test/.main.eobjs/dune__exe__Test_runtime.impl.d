test/test_runtime.ml: Alcotest Array List Lowfat Option QCheck QCheck_alcotest Redfat_rt Vm X64
