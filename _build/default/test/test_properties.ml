(* System-level properties over randomly generated MiniC programs
   (Workloads.Synth generates memory-safe programs by construction). *)

module Rw = Redfat.Rewrite
module Rt = Redfat_rt.Runtime

let compile_seed seed =
  Minic.Codegen.compile (Workloads.Synth.program ~seed ())

let baseline_outputs bin =
  let r, v = Redfat.run_baseline bin in
  match v with
  | Redfat.Finished _ -> r.outputs
  | v -> failwith (Redfat.verdict_to_string v)

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000)

(* 1. rewriting never changes program behaviour, at any level *)
let prop_semantic_preservation =
  QCheck.Test.make ~count:60 ~name:"rewriting preserves semantics (all levels)"
    seed_gen
    (fun seed ->
      let bin = compile_seed seed in
      let base = baseline_outputs bin in
      List.for_all
        (fun opts ->
          let hard = Redfat.harden ~opts bin in
          let hr = Redfat.run_hardened hard.binary in
          match hr.verdict with
          | Redfat.Finished _ -> hr.run.outputs = base
          | _ -> false)
        [ Rw.unoptimized; Rw.with_elim; Rw.with_batch; Rw.optimized;
          { Rw.optimized with instrument_reads = false } ])

(* 2. no false positives on idiomatic code, even with naive full
      checking and no allow-list *)
let prop_no_false_positives =
  QCheck.Test.make ~count:60 ~name:"no false positives on idiomatic programs"
    seed_gen
    (fun seed ->
      let bin = compile_seed seed in
      let hard = Redfat.harden bin in
      let hr =
        Redfat.run_hardened
          ~options:{ Rt.default_options with mode = Rt.Log }
          hard.binary
      in
      Rt.errors hr.rt = [])

(* 3. profiling allow-lists every executed site of an idiomatic program *)
let prop_profile_allows_everything_idiomatic =
  QCheck.Test.make ~count:40
    ~name:"profiling allow-lists all idiomatic executed sites" seed_gen
    (fun seed ->
      let bin = compile_seed seed in
      let prof = Rw.rewrite Rw.profiling_build bin in
      let hr =
        Redfat.run_hardened
          ~options:{ Rt.default_options with mode = Rt.Log }
          ~profiling:true prof.binary
      in
      Rt.lowfat_failing_sites hr.rt = [])

(* 4. memcheck agrees with the baseline on outputs and reports nothing *)
let prop_memcheck_clean =
  QCheck.Test.make ~count:40 ~name:"memcheck clean on idiomatic programs"
    seed_gen
    (fun seed ->
      let bin = compile_seed seed in
      let base = baseline_outputs bin in
      let r, v, mc = Redfat.run_memcheck bin in
      match v with
      | Redfat.Finished _ ->
        r.outputs = base && Baselines.Memcheck.errors mc = []
      | _ -> false)

(* 5. the hardened run costs more cycles than baseline but executes
      the same side effects; optimization levels are monotone *)
let prop_cost_monotone =
  QCheck.Test.make ~count:30 ~name:"optimization levels are cost-monotone"
    seed_gen
    (fun seed ->
      let bin = compile_seed seed in
      let rb, _ = Redfat.run_baseline bin in
      let cycles opts =
        let hard = Redfat.harden ~opts bin in
        let hr = Redfat.run_hardened hard.binary in
        hr.run.cycles
      in
      let unopt = cycles Rw.unoptimized in
      let elim = cycles Rw.with_elim in
      let batch = cycles Rw.with_batch in
      let merge = cycles Rw.optimized in
      rb.cycles <= merge && merge <= batch && batch <= elim && elim <= unopt)

(* 6. a random in-bounds write turned out-of-bounds by a skip offset is
      always detected by the full check *)
let prop_skip_always_detected =
  let gen =
    QCheck.Gen.(
      let* elems = int_range 1 32 in
      let* skip = int_range 0 64 in
      return (elems, skip))
  in
  QCheck.Test.make ~count:200 ~name:"full check detects any skip distance"
    (QCheck.make gen)
    (fun (elems, skip) ->
      let open Minic.Build in
      let prog =
        Minic.Ast.program
          [
            Minic.Ast.func ~name:"main"
              [
                let_ "a" (alloc_elems (i elems));
                let_ "n" (alloc_elems (i elems)); (* neighbour *)
                let_ "k" Input;
                set (v "a") (v "k") (i 1);
                free_ (v "a");
                free_ (v "n");
                return_ (i 0);
              ];
          ]
      in
      let bin = Minic.Codegen.compile prog in
      let hard = Redfat.harden bin in
      let idx = elems + skip in
      let hr = Redfat.run_hardened ~inputs:[ idx ] hard.binary in
      match hr.verdict with
      | Redfat.Detected _ -> true
      | Redfat.Finished _ -> false
      | Redfat.Fault _ -> false)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_semantic_preservation;
    QCheck_alcotest.to_alcotest prop_no_false_positives;
    QCheck_alcotest.to_alcotest prop_profile_allows_everything_idiomatic;
    QCheck_alcotest.to_alcotest prop_memcheck_clean;
    QCheck_alcotest.to_alcotest prop_cost_monotone;
    QCheck_alcotest.to_alcotest prop_skip_always_detected;
  ]
