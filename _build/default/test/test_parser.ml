(* The MiniC front-end: lexer + parser + source-to-binary pipeline. *)

let run_src ?(inputs = []) src =
  let bin = Minic.Parser.compile_source src in
  let r, v = Redfat.run_baseline ~inputs bin in
  match v with
  | Redfat.Finished _ -> r.outputs
  | v -> Alcotest.failf "run: %s" (Redfat.verdict_to_string v)

let check name expected src =
  Alcotest.(check (list int)) name expected (run_src src)

let test_hello () =
  check "print" [ 42 ] "fn main() { print(42); return 0; }"

let test_precedence () =
  check "C precedence" [ 1 + (2 * 3); (1 + 2) * 3; 7 - 2 - 1; 100 / 5 / 2;
                         1 lor (2 lxor (3 land 6)); 5 land 3 lxor 1;
                         (1 + 1) lsl 2; 3 * 4 mod 5 ]
    {|
    fn main() {
      print(1 + 2 * 3);
      print((1 + 2) * 3);
      print(7 - 2 - 1);       // left assoc
      print(100 / 5 / 2);
      print(1 | 2 ^ 3 & 6);   // and > xor > or
      print(5 & 3 ^ 1);
      print((1 + 1) << 2);
      print(3 * 4 % 5);
      return 0;
    }
    |}

let test_comparisons_and_logic () =
  check "logic" [ 1; 0; 1; 1 ]
    {|
    fn main() {
      print(3 < 5 && 5 <= 5);
      print(3 > 5 || 0);
      print(1 == 1);
      print(2 != 3);
      return 0;
    }
    |}

let test_unary () =
  check "unary" [ -5; lnot 12; 0 - 3 ]
    {|
    fn main() {
      print(-5);
      print(~12);
      var x = 3;
      print(-x);
      return 0;
    }
    |}

let test_control_flow () =
  (* sum of odd numbers below 20 via if inside for, then a while *)
  let expected = ref 0 in
  for j = 0 to 19 do
    if j mod 2 = 1 then expected := !expected + j
  done;
  check "control flow" [ !expected; 16 ]
    {|
    fn main() {
      var s = 0;
      for (j in 0 .. 20) {
        if (j % 2 == 1) { s = s + j; }
      }
      print(s);
      var x = 1;
      while (x < 10) { x = x * 2; }
      print(x);
      return 0;
    }
    |}

let test_arrays_and_bytes () =
  check "arrays" [ 55; 255; 7 ]
    {|
    fn main() {
      var a = alloc(10);
      for (j in 0 .. 10) { a[j] = j + 1; }
      var s = 0;
      for (j in 0 .. 10) { s = s + a[j]; }
      print(s);
      var b = balloc(16);
      b.[3] = 255;
      print(b.[3]);
      b.[4 + 1] = 7;          // folded into a Storek displacement
      print(b.[5]);
      free(a); free(b);
      return 0;
    }
    |}

let test_functions_and_recursion () =
  check "fib" [ 610 ]
    {|
    fn fib(n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    fn main() { print(fib(15)); return 0; }
    |}

let test_function_pointers () =
  check "fn pointers" [ 30; 11 ]
    {|
    fn dbl(x) { return x * 2; }
    fn inc(x) { return x + 1; }
    fn main() {
      var t = alloc(2);
      t[0] = &dbl;
      t[1] = &inc;
      print((t[0])(15));
      print((t[1])(10));
      free(t);
      return 0;
    }
    |}

let test_globals_and_input () =
  Alcotest.(check (list int)) "globals+input" [ 12 ]
    (run_src ~inputs:[ 5; 7 ]
       {|
       global acc[4];
       fn main() {
         acc[0] = input();
         acc[1] = input();
         print(acc[0] + acc[1]);
         return 0;
       }
       |})

let test_comments () =
  check "comments" [ 9 ]
    "fn main() { /* block\n comment */ var x = 9; // line\n print(x); return 0; }"

let test_hex_literals () =
  check "hex" [ 255; 4096 ] "fn main() { print(0xff); print(0x1000); return 0; }"

(* error reporting: message and position *)
let expect_parse_error src ~line =
  match Minic.Parser.compile_source src with
  | exception Minic.Parser.Parse_error (_, pos) ->
    Alcotest.(check int) "error line" line pos.line
  | exception Minic.Lexer.Lex_error (_, pos) ->
    Alcotest.(check int) "error line" line pos.line
  | _ -> Alcotest.fail "expected a parse error"

let test_parse_errors () =
  expect_parse_error "fn main() { print(1) }" ~line:1; (* missing ; *)
  expect_parse_error "fn main() {\n  1 + = 2;\n}" ~line:2;
  expect_parse_error "fn main() {\n  x[0] + 1 = 2;\n}" ~line:2; (* not lvalue *)
  expect_parse_error "fn main() { var x = 0x; }" ~line:1;
  expect_parse_error "global g[]; fn main() { return 0; }" ~line:1;
  expect_parse_error "fn main() { $ }" ~line:1

let test_source_hardening_end_to_end () =
  (* the full pipeline: source -> binary -> harden -> attack stopped *)
  let src =
    {|
    fn main() {
      var a = alloc(8);
      var victim = alloc(8);
      victim[0] = 7;
      a[input()] = 65;
      print(victim[0]);
      free(a); free(victim);
      return 0;
    }
    |}
  in
  let bin = Minic.Parser.compile_source src in
  let hard = Redfat.harden bin in
  let ok = Redfat.run_hardened ~inputs:[ 3 ] hard.binary in
  (match ok.verdict with
   | Redfat.Finished 0 -> ()
   | v -> Alcotest.failf "benign: %s" (Redfat.verdict_to_string v));
  let bad = Redfat.run_hardened ~inputs:[ 12 ] hard.binary in
  match bad.verdict with
  | Redfat.Detected _ -> ()
  | v -> Alcotest.failf "attack: %s" (Redfat.verdict_to_string v)

let test_parser_matches_builder () =
  (* the parsed program compiles to the same binary as the builder AST *)
  let open Minic.Build in
  let built =
    Minic.Ast.program
      [
        Minic.Ast.func ~name:"main"
          [
            let_ "a" (alloc_elems (i 4));
            for_ "j" (i 0) (i 4) [ set (v "a") (v "j") (v "j" *: i 3) ];
            print_ (idxk (v "a") (i 1) 2);
            free_ (v "a");
            return_ (i 0);
          ];
      ]
  in
  let parsed =
    Minic.Parser.parse_program
      {|
      fn main() {
        var a = alloc(4);
        for (j in 0 .. 4) { a[j] = j * 3; }
        print(a[1 + 2]);
        free(a);
        return 0;
      }
      |}
  in
  Alcotest.(check string) "identical binaries"
    (Binfmt.Relf.serialize (Minic.Codegen.compile built))
    (Binfmt.Relf.serialize (Minic.Codegen.compile parsed))

let tests =
  [
    Alcotest.test_case "hello" `Quick test_hello;
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "comparisons and logic" `Quick
      test_comparisons_and_logic;
    Alcotest.test_case "unary" `Quick test_unary;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "arrays and bytes" `Quick test_arrays_and_bytes;
    Alcotest.test_case "functions and recursion" `Quick
      test_functions_and_recursion;
    Alcotest.test_case "function pointers" `Quick test_function_pointers;
    Alcotest.test_case "globals and input" `Quick test_globals_and_input;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "hex literals" `Quick test_hex_literals;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "source to hardened binary" `Quick
      test_source_hardening_end_to_end;
    Alcotest.test_case "parser matches builder" `Quick
      test_parser_matches_builder;
  ]
