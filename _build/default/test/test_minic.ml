(* MiniC compiler correctness: compile programs and compare VM output
   against a reference OCaml evaluation. *)

open Minic.Ast
open Minic.Build

let run ?(inputs = []) prog =
  let bin = Minic.Codegen.compile prog in
  let r, v = Redfat.run_baseline ~inputs bin in
  match v with
  | Redfat.Finished _ -> r.outputs
  | v -> Alcotest.failf "run failed: %s" (Redfat.verdict_to_string v)

let main_prog body = Minic.Ast.program [ Minic.Ast.func ~name:"main" body ]

let check_outputs name expected outputs =
  Alcotest.(check (list int)) name expected outputs

let test_arithmetic () =
  check_outputs "arith"
    [ 17 - 4; 6 * 7; 100 / 7; 100 mod 7; 0b1100 land 0b1010;
      0b1100 lor 0b1010; 0b1100 lxor 0b1010; 5 lsl 3; 1024 lsr 4 ]
    (run
       (main_prog
          [
            print_ (i 17 -: i 4);
            print_ (i 6 *: i 7);
            print_ (i 100 /: i 7);
            print_ (i 100 %: i 7);
            print_ (i 0b1100 &: i 0b1010);
            print_ (i 0b1100 |: i 0b1010);
            print_ (i 0b1100 ^: i 0b1010);
            print_ (i 5 <<: 3);
            print_ (i 1024 >>: 4);
          ]))

let test_comparisons () =
  check_outputs "cmp" [ 1; 0; 1; 1; 0; 1 ]
    (run
       (main_prog
          [
            print_ (i 3 <: i 5);
            print_ (i 5 <: i 3);
            print_ (i 5 <=: i 5);
            print_ (i 5 >=: i 5);
            print_ (i 3 >: i 5);
            print_ (i 3 <>: i 5);
          ]))

let test_locals_and_assignment () =
  check_outputs "locals" [ 30 ]
    (run
       (main_prog
          [
            let_ "x" (i 10);
            let_ "y" (v "x" *: i 2);
            assign "x" (v "x" +: v "y");
            print_ (v "x");
          ]))

let test_if_else () =
  check_outputs "if" [ 1; 2 ]
    (run
       (main_prog
          [
            if_ (i 3 <: i 5) [ print_ (i 1) ] [ print_ (i 0) ];
            if_ (i 5 <: i 3) [ print_ (i 0) ] [ print_ (i 2) ];
          ]))

let test_nested_control () =
  (* count primes below 50 with trial division *)
  let expected =
    let count = ref 0 in
    for n = 2 to 49 do
      let p = ref true in
      for d = 2 to n - 1 do
        if n mod d = 0 then p := false
      done;
      if !p then incr count
    done;
    [ !count ]
  in
  check_outputs "primes" expected
    (run
       (main_prog
          [
            let_ "count" (i 0);
            for_ "n" (i 2) (i 50)
              [
                let_ "p" (i 1);
                for_ "d" (i 2) (v "n")
                  [ if_ (v "n" %: v "d" =: i 0) [ assign "p" (i 0) ] [] ];
                if_ (v "p" =: i 1) [ assign "count" (v "count" +: i 1) ] [];
              ];
            print_ (v "count");
          ]))

let test_while_loop () =
  check_outputs "collatz steps of 27" [ 111 ]
    (run
       (main_prog
          [
            let_ "n" (i 27);
            let_ "steps" (i 0);
            while_ (v "n" <>: i 1)
              [
                if_
                  (v "n" %: i 2 =: i 0)
                  [ assign "n" (v "n" /: i 2) ]
                  [ assign "n" (v "n" *: i 3 +: i 1) ];
                assign "steps" (v "steps" +: i 1);
              ];
            print_ (v "steps");
          ]))

let test_heap_arrays () =
  check_outputs "reverse sum" [ 10 + 2 * 9 + 3 * 8 + 4 * 7 ]
    (run
       (main_prog
          [
            let_ "a" (alloc_elems (i 4));
            set (v "a") (i 0) (i 10);
            set (v "a") (i 1) (i 9);
            set (v "a") (i 2) (i 8);
            set (v "a") (i 3) (i 7);
            let_ "s" (i 0);
            for_ "j" (i 0) (i 4)
              [ assign "s" (v "s" +: ((v "j" +: i 1) *: idx (v "a") (v "j"))) ];
            print_ (v "s");
            free_ (v "a");
          ]))

let test_byte_arrays () =
  check_outputs "byte ops" [ 255; 7 ]
    (run
       (main_prog
          [
            let_ "b" (alloc_bytes (i 16));
            set1 (v "b") (i 3) (i 0x1ff); (* truncates to 8 bits *)
            print_ (idx1 (v "b") (i 3));
            set1k (v "b") (i 0) 5 (i 7);
            print_ (idx1 (v "b") (i 5));
            free_ (v "b");
          ]))

let test_loadk_storek () =
  check_outputs "displacement folding" [ 21 ]
    (run
       (main_prog
          [
            let_ "a" (alloc_elems (i 8));
            setk (v "a") (i 2) 3 (i 21); (* a[5] = 21 *)
            print_ (idxk (v "a") (i 4) 1); (* a[5] *)
            free_ (v "a");
          ]))

let test_multi_store () =
  check_outputs "multi store" [ 1; 2; 3 ]
    (run
       (main_prog
          [
            let_ "a" (alloc_elems (i 8));
            msets (v "a") (i 2) [ (0, i 1); (1, i 2); (2, i 3) ];
            print_ (idx (v "a") (i 2));
            print_ (idx (v "a") (i 3));
            print_ (idx (v "a") (i 4));
            free_ (v "a");
          ]))

let test_functions_and_args () =
  check_outputs "4-arg function" [ (1 * 2) + (3 * 4) ]
    (run
       (Minic.Ast.program
          [
            Minic.Ast.func ~name:"main"
              [ print_ (call "madd" [ i 1; i 2; i 3; i 4 ]) ];
            Minic.Ast.func ~name:"madd" ~params:[ "a"; "b"; "c"; "d" ]
              [ return_ ((v "a" *: v "b") +: (v "c" *: v "d")) ];
          ]))

let test_recursion () =
  check_outputs "fib 15" [ 610 ]
    (run
       (Minic.Ast.program
          [
            Minic.Ast.func ~name:"main" [ print_ (call "fib" [ i 15 ]) ];
            Minic.Ast.func ~name:"fib" ~params:[ "n" ]
              [
                if_ (v "n" <: i 2)
                  [ return_ (v "n") ]
                  [
                    return_
                      (call "fib" [ v "n" -: i 1 ]
                      +: call "fib" [ v "n" -: i 2 ]);
                  ];
              ];
          ]))

let test_call_in_expression_preserves_scratch () =
  (* the call result is combined with values held in scratch registers
     across the call: exercises caller-save logic *)
  check_outputs "scratch preserved" [ 1000 + 42 + 7 ]
    (run
       (Minic.Ast.program
          [
            Minic.Ast.func ~name:"main"
              [
                let_ "x" (i 1000);
                print_ (v "x" +: call "f" [] +: i 7);
              ];
            Minic.Ast.func ~name:"f" [ return_ (i 42) ];
          ]))

let test_deep_expression_spills () =
  (* expression deeper than the 4 scratch registers: forces the
     push/pop spill path with rsp-relative local fixups *)
  let e =
    List.fold_left
      (fun acc k -> Bin (Minic.Ast.Add, acc, Bin (Minic.Ast.Mul, v "x", i k)))
      (v "x")
      [ 2; 3; 4; 5; 6; 7 ]
  in
  let deep = Bin (Minic.Ast.Add, e, Bin (Minic.Ast.Mul, e, e)) in
  let x = 3 in
  let ev = x + (2 * x) + (3 * x) + (4 * x) + (5 * x) + (6 * x) + (7 * x) in
  check_outputs "spills" [ ev + (ev * ev) ]
    (run (main_prog [ let_ "x" (i 3); print_ deep ]))

let test_many_locals_spill_to_stack () =
  (* more locals than callee-saved registers: some live on the stack *)
  let names = List.init 12 (fun k -> Printf.sprintf "v%d" k) in
  let decls = List.mapi (fun k n -> let_ n (i (k * k))) names in
  let sum =
    List.fold_left (fun acc n -> acc +: v n) (i 0) names
  in
  let expected = List.fold_left ( + ) 0 (List.init 12 (fun k -> k * k)) in
  check_outputs "12 locals" [ expected ]
    (run (main_prog (decls @ [ print_ sum ])))

let test_function_pointers () =
  (* a dispatch table of function pointers in a heap array *)
  check_outputs "dispatch" [ 10 + 1; 10 * 2; 10 - 3 ]
    (run
       (Minic.Ast.program
          [
            Minic.Ast.func ~name:"main"
              [
                let_ "tab" (alloc_elems (i 3));
                set (v "tab") (i 0) (addr_of "inc");
                set (v "tab") (i 1) (addr_of "dbl");
                set (v "tab") (i 2) (addr_of "sub3");
                for_ "j" (i 0) (i 3)
                  [ print_ (call_ptr (idx (v "tab") (v "j")) [ i 10 ]) ];
                free_ (v "tab");
              ];
            Minic.Ast.func ~name:"inc" ~params:[ "x" ] [ return_ (v "x" +: i 1) ];
            Minic.Ast.func ~name:"dbl" ~params:[ "x" ] [ return_ (v "x" *: i 2) ];
            Minic.Ast.func ~name:"sub3" ~params:[ "x" ] [ return_ (v "x" -: i 3) ];
          ]))

let test_interp_kernel () =
  (* the dispatch-loop kernel runs and is deterministic *)
  let prog =
    Minic.Ast.program
      (Minic.Ast.func ~name:"main"
         [ print_ (call "vm" [ i 50 ]) ]
      :: Workloads.Kernels.interp_funcs "vm")
  in
  let o1 = run prog and o2 = run prog in
  Alcotest.(check (list int)) "deterministic" o1 o2;
  Alcotest.(check int) "one output" 1 (List.length o1)

let test_globals () =
  check_outputs "global array" [ 55 ]
    (run
       (Minic.Ast.program
          ~globals:[ ("gtab", 128) ]
          [
            Minic.Ast.func ~name:"main"
              [
                for_ "j" (i 0) (i 10)
                  [ set (v "gtab") (v "j") (v "j" +: i 1) ];
                let_ "s" (i 0);
                for_ "j" (i 0) (i 10)
                  [ assign "s" (v "s" +: idx (v "gtab") (v "j")) ];
                print_ (v "s");
              ];
          ]))

let test_input_scripting () =
  check_outputs "inputs" [ 30; 0 ]
    (run ~inputs:[ 10; 20 ]
       (main_prog
          [
            let_ "a" Input;
            let_ "b" Input;
            print_ (v "a" +: v "b");
            print_ Input; (* exhausted -> 0 *)
          ]))

let test_exit_code () =
  let bin =
    Minic.Codegen.compile (main_prog [ return_ (i 42) ])
  in
  let _, v = Redfat.run_baseline bin in
  (* main's return value is not the process exit code in our ABI (the
     final ret halts with code 0), like _start ignoring main's rax *)
  match v with
  | Redfat.Finished 0 -> ()
  | v -> Alcotest.failf "unexpected: %s" (Redfat.verdict_to_string v)

let test_compile_errors () =
  let expect_error name prog =
    match Minic.Codegen.compile prog with
    | exception Minic.Codegen.Compile_error _ -> ()
    | _ -> Alcotest.failf "%s: expected Compile_error" name
  in
  expect_error "unbound variable" (main_prog [ print_ (v "nope") ]);
  expect_error "no main"
    (Minic.Ast.program [ Minic.Ast.func ~name:"f" [ return_ (i 0) ] ]);
  expect_error "non-constant shift"
    (main_prog [ let_ "x" (i 1); print_ (Bin (Minic.Ast.Shl, i 1, v "x")) ]);
  expect_error "too many args"
    (Minic.Ast.program
       [
         Minic.Ast.func ~name:"main"
           [ print_ (call "f" [ i 1; i 2; i 3; i 4; i 5 ]) ];
         Minic.Ast.func ~name:"f" ~params:[ "a"; "b"; "c"; "d"; "e" ]
           [ return_ (i 0) ];
       ])

let test_codegen_emits_indexed_operands () =
  (* the property the whole rewriter relies on: array accesses become
     single instructions with (base, idx, scale) memory operands *)
  let bin =
    Minic.Codegen.compile
      (main_prog
         [
           let_ "a" (alloc_elems (i 8));
           let_ "j" (i 3);
           set (v "a") (v "j") (i 1);
           free_ (v "a");
         ])
  in
  let text = Binfmt.Relf.text_exn bin in
  let found =
    List.exists
      (fun (_, instr, _) ->
        match instr with
        | X64.Isa.Store (X64.Isa.W8, m, _) ->
          m.base <> None && m.idx <> None && m.scale = 8
        | _ -> false)
      (X64.Disasm.sweep ~addr:text.addr text.bytes)
  in
  Alcotest.(check bool) "indexed store present" true found

let test_hot_locals_in_registers () =
  (* loop counters must not generate stack traffic at every iteration *)
  let bin =
    Minic.Codegen.compile
      (main_prog
         [
           let_ "s" (i 0);
           for_ "j" (i 0) (i 100) [ assign "s" (v "s" +: v "j") ];
           print_ (v "s");
         ])
  in
  let r, _ = Redfat.run_baseline bin in
  (* a stack-allocated loop would do >= 3 memory ops per iteration *)
  Alcotest.(check bool) "register-allocated loop" true
    (r.mem_reads + r.mem_writes < 100)

let tests =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "locals" `Quick test_locals_and_assignment;
    Alcotest.test_case "if/else" `Quick test_if_else;
    Alcotest.test_case "nested control" `Quick test_nested_control;
    Alcotest.test_case "while loop" `Quick test_while_loop;
    Alcotest.test_case "heap arrays" `Quick test_heap_arrays;
    Alcotest.test_case "byte arrays" `Quick test_byte_arrays;
    Alcotest.test_case "loadk/storek" `Quick test_loadk_storek;
    Alcotest.test_case "multi store" `Quick test_multi_store;
    Alcotest.test_case "functions and args" `Quick test_functions_and_args;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "call preserves scratch" `Quick
      test_call_in_expression_preserves_scratch;
    Alcotest.test_case "deep expression spills" `Quick
      test_deep_expression_spills;
    Alcotest.test_case "many locals spill" `Quick
      test_many_locals_spill_to_stack;
    Alcotest.test_case "function pointers" `Quick test_function_pointers;
    Alcotest.test_case "interp kernel" `Quick test_interp_kernel;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "input scripting" `Quick test_input_scripting;
    Alcotest.test_case "exit code" `Quick test_exit_code;
    Alcotest.test_case "compile errors" `Quick test_compile_errors;
    Alcotest.test_case "indexed operands emitted" `Quick
      test_codegen_emits_indexed_operands;
    Alcotest.test_case "hot locals in registers" `Quick
      test_hot_locals_in_registers;
  ]
