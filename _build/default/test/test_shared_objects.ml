(* Shared objects and separate instrumentation (paper §7.4):
   "if the main program is instrumented by RedFat, but a dynamic
   library dependency is not, then only the former will enjoy memory
   error protection at runtime.  RedFat supports both ELF executables
   and shared objects, meaning that it is possible to separately
   instrument both." *)

open Minic.Ast
open Minic.Build

let lib_origin = Lowfat.Layout.code_base + 0x10_0000
let lib_tramp = Lowfat.Layout.trampoline_base + 0x100_0000

(* libdecoder.so: a vulnerable write primitive *)
let lib_program =
  Minic.Ast.program
    [
      func ~name:"decode" ~params:[ "buf"; "idx" ]
        [
          Store (E8, v "buf", v "idx", i 0x41);
          return_ (i 1);
        ];
    ]

let lib_binary, lib_symbols =
  Minic.Codegen.compile_with_symbols ~origin:lib_origin ~shared:true
    lib_program

(* the main executable calls into the library; it also has its own
   vulnerable write so both directions can be tested *)
let main_program =
  Minic.Ast.program
    [
      func ~name:"main"
        [
          let_ "pre" (alloc_elems (i 8));
          let_ "buf" (alloc_elems (i 8));
          let_ "post" (alloc_elems (i 8));
          set (v "post") (i 0) (i 7);
          let_ "which" Input;
          let_ "k" Input;
          if_ (v "which" =: i 0)
            [ expr (call "decode" [ v "buf"; v "k" ]) ] (* via the .so *)
            [ set (v "buf") (v "k") (i 0x42) ];         (* in main *)
          print_ (idx (v "post") (i 0));
          free_ (v "pre"); free_ (v "buf"); free_ (v "post");
          return_ (i 0);
        ];
    ]

let main_binary = Minic.Codegen.compile ~externs:lib_symbols main_program

let skip = 12 (* elements: past the redzone, into live neighbour data *)

let run ~main ~lib ~inputs =
  Redfat.run_hardened ~libs:[ lib ] ~inputs main

let test_cross_module_call_works () =
  List.iter
    (fun inputs ->
      let r, v = Redfat.run_baseline ~libs:[ lib_binary ] ~inputs main_binary in
      (match v with
       | Redfat.Finished 0 -> ()
       | v -> Alcotest.failf "baseline: %s" (Redfat.verdict_to_string v));
      Alcotest.(check (list int)) "benign output" [ 7 ] r.outputs)
    [ [ 0; 3 ]; [ 1; 3 ] ]

let test_only_instrumented_module_protected () =
  (* harden the executable only *)
  let hard_main = Redfat.harden main_binary in
  (* benign runs work *)
  let b = run ~main:hard_main.binary ~lib:lib_binary ~inputs:[ 0; 3 ] in
  (match b.verdict with
   | Redfat.Finished 0 -> ()
   | v -> Alcotest.failf "benign: %s" (Redfat.verdict_to_string v));
  (* attack through main's own write: detected *)
  let a1 = run ~main:hard_main.binary ~lib:lib_binary ~inputs:[ 1; skip ] in
  (match a1.verdict with
   | Redfat.Detected _ -> ()
   | v -> Alcotest.failf "main-site attack: %s" (Redfat.verdict_to_string v));
  (* the same attack through the UNinstrumented library: silent *)
  let a0 = run ~main:hard_main.binary ~lib:lib_binary ~inputs:[ 0; skip ] in
  match a0.verdict with
  | Redfat.Finished 0 -> () (* §7.4: only instrumented modules protected *)
  | v -> Alcotest.failf "lib-site attack unexpectedly: %s"
           (Redfat.verdict_to_string v)

let test_separately_instrumented_library () =
  (* now harden the library too, with its own trampoline area *)
  let hard_main = Redfat.harden main_binary in
  let hard_lib =
    Redfat.Rewrite.rewrite ~tramp_base:lib_tramp Redfat.Rewrite.optimized
      lib_binary
  in
  let b = run ~main:hard_main.binary ~lib:hard_lib.binary ~inputs:[ 0; 3 ] in
  (match b.verdict with
   | Redfat.Finished 0 -> ()
   | v -> Alcotest.failf "benign: %s" (Redfat.verdict_to_string v));
  let a = run ~main:hard_main.binary ~lib:hard_lib.binary ~inputs:[ 0; skip ] in
  match a.verdict with
  | Redfat.Detected e ->
    Alcotest.(check bool) "detected inside the library" true
      (e.site >= lib_origin)
  | v -> Alcotest.failf "lib attack: %s" (Redfat.verdict_to_string v)

let test_library_symbols () =
  Alcotest.(check bool) "decode exported at lib origin" true
    (List.mem_assoc "fn_decode" lib_symbols
    && List.assoc "fn_decode" lib_symbols >= lib_origin)

let test_undefined_extern_rejected () =
  let prog =
    Minic.Ast.program
      [ func ~name:"main" [ expr (call "missing" [ i 1 ]) ] ]
  in
  match Minic.Codegen.compile prog with
  | exception Minic.Codegen.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected undefined-function error"

let tests =
  [
    Alcotest.test_case "cross-module call" `Quick test_cross_module_call_works;
    Alcotest.test_case "only instrumented module protected (7.4)" `Quick
      test_only_instrumented_module_protected;
    Alcotest.test_case "separately instrumented library" `Quick
      test_separately_instrumented_library;
    Alcotest.test_case "library symbol export" `Quick test_library_symbols;
    Alcotest.test_case "undefined extern rejected" `Quick
      test_undefined_extern_rejected;
  ]
