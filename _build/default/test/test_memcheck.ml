(* The Memcheck-style DBI comparator. *)

open Minic.Ast
open Minic.Build
module Mc = Baselines.Memcheck

let run prog inputs =
  let bin = Minic.Codegen.compile prog in
  Redfat.run_memcheck ~inputs bin

let simple body = Minic.Ast.program [ Minic.Ast.func ~name:"main" body ]

let test_clean_program_no_errors () =
  let _, v, mc =
    run
      (simple
         [
           let_ "a" (alloc_elems (i 8));
           for_ "j" (i 0) (i 8) [ set (v "a") (v "j") (v "j") ];
           let_ "s" (i 0);
           for_ "j" (i 0) (i 8) [ assign "s" (v "s" +: idx (v "a") (v "j")) ];
           print_ (v "s");
           free_ (v "a");
           return_ (i 0);
         ])
      []
  in
  (match v with
   | Redfat.Finished 0 -> ()
   | v -> Alcotest.failf "run: %s" (Redfat.verdict_to_string v));
  Alcotest.(check int) "no errors" 0 (List.length (Mc.errors mc))

let test_detects_overflow_into_redzone () =
  let _, _, mc =
    run
      (simple
         [
           let_ "a" (alloc_elems (i 8));
           set (v "a") (i 8) (i 1); (* one past the end: in the redzone *)
           return_ (i 0);
         ])
      []
  in
  Alcotest.(check int) "one error" 1 (List.length (Mc.errors mc));
  let e = List.hd (Mc.errors mc) in
  Alcotest.(check bool) "write error" true e.write

let test_detects_underflow () =
  let _, _, mc =
    run
      (simple
         [
           let_ "a" (alloc_elems (i 8));
           let_ "x" (idx (v "a") (i (-1))); (* leading redzone *)
           print_ (v "x" *: i 0);
           return_ (i 0);
         ])
      []
  in
  Alcotest.(check int) "one error" 1 (List.length (Mc.errors mc));
  Alcotest.(check bool) "read error" true (not (List.hd (Mc.errors mc)).write)

let test_detects_use_after_free () =
  let _, _, mc =
    run
      (simple
         [
           let_ "a" (alloc_elems (i 8));
           free_ (v "a");
           set (v "a") (i 0) (i 1);
           return_ (i 0);
         ])
      []
  in
  Alcotest.(check int) "UaF detected" 1 (List.length (Mc.errors mc))

let test_quarantine_no_reuse () =
  (* freed memory stays poisoned even after further allocations of the
     same size (the quarantine property redzone tools rely on) *)
  let _, _, mc =
    run
      (simple
         [
           let_ "a" (alloc_elems (i 8));
           free_ (v "a");
           let_ "b" (alloc_elems (i 8));
           set (v "b") (i 0) (i 1); (* fine *)
           set (v "a") (i 0) (i 2); (* still UaF *)
           free_ (v "b");
           return_ (i 0);
         ])
      []
  in
  Alcotest.(check int) "still detected after realloc" 1
    (List.length (Mc.errors mc))

let test_misses_redzone_skip () =
  (* the paper's core claim: a skip over the redzone into the next
     block is invisible to redzone-only tools *)
  let _, _, mc =
    run
      (simple
         [
           let_ "a" (alloc_elems (i 8));
           let_ "b" (alloc_elems (i 8));
           set (v "b") (i 0) (i 9);
           let_ "k" Input;
           set (v "a") (v "k") (i 1);
           print_ (idx (v "b") (i 0));
           return_ (i 0);
         ])
      [ 12 ]
  in
  Alcotest.(check int) "skip missed" 0 (List.length (Mc.errors mc))

let test_error_dedup_by_site () =
  let _, _, mc =
    run
      (simple
         [
           let_ "a" (alloc_elems (i 8));
           (* same faulting instruction executed 5 times *)
           for_ "j" (i 0) (i 5) [ set (v "a") (i 8) (v "j") ];
           return_ (i 0);
         ])
      []
  in
  Alcotest.(check int) "one report per site" 1 (List.length (Mc.errors mc))

let test_dispatch_overhead_charged () =
  let prog =
    simple
      [
        let_ "s" (i 0);
        for_ "j" (i 0) (i 100) [ assign "s" (v "s" +: v "j") ];
        print_ (v "s");
        return_ (i 0);
      ]
  in
  let bin = Minic.Codegen.compile prog in
  let base, _ = Redfat.run_baseline bin in
  let mc_run, _, _ = Redfat.run_memcheck bin in
  Alcotest.(check (list int)) "same output" base.outputs mc_run.outputs;
  Alcotest.(check bool) "DBI is much slower" true
    (mc_run.cycles > base.cycles * 4)

let tests =
  [
    Alcotest.test_case "clean program" `Quick test_clean_program_no_errors;
    Alcotest.test_case "overflow into redzone" `Quick
      test_detects_overflow_into_redzone;
    Alcotest.test_case "underflow" `Quick test_detects_underflow;
    Alcotest.test_case "use-after-free" `Quick test_detects_use_after_free;
    Alcotest.test_case "quarantine prevents reuse" `Quick
      test_quarantine_no_reuse;
    Alcotest.test_case "misses redzone skip" `Quick test_misses_redzone_skip;
    Alcotest.test_case "error dedup" `Quick test_error_dedup_by_site;
    Alcotest.test_case "dispatch overhead" `Quick
      test_dispatch_overhead_charged;
  ]
