(* VM semantics: memory, interpreter, flags, costs, traps. *)

open X64

(* --- Mem ------------------------------------------------------------- *)

let test_mem_rw_widths () =
  let m = Vm.Mem.create () in
  Vm.Mem.map m ~addr:0x1000 ~len:64;
  List.iter
    (fun (len, v) ->
      Vm.Mem.write m ~addr:0x1000 ~len v;
      let mask = if len = 8 then -1 else (1 lsl (len * 8)) - 1 in
      Alcotest.(check int)
        (Printf.sprintf "width %d" len)
        (v land mask)
        (Vm.Mem.read m ~addr:0x1000 ~len))
    [ (1, 0xab); (2, 0xbeef); (4, 0xdeadbeef); (8, 0x1234_5678_9abc) ]

let test_mem_negative_roundtrip () =
  let m = Vm.Mem.create () in
  Vm.Mem.map m ~addr:0 ~len:16;
  List.iter
    (fun v ->
      Vm.Mem.write m ~addr:8 ~len:8 v;
      Alcotest.(check int) "neg round-trip" v (Vm.Mem.read m ~addr:8 ~len:8))
    [ -1; -42; min_int / 2; max_int / 2; -(1 lsl 40) ]

let test_mem_page_crossing () =
  let m = Vm.Mem.create () in
  Vm.Mem.map m ~addr:0x1000 ~len:0x2000;
  let addr = 0x1ffd in
  Vm.Mem.write m ~addr ~len:8 0x1122334455667788;
  Alcotest.(check int) "crosses page" 0x1122334455667788
    (Vm.Mem.read m ~addr ~len:8)

let test_mem_segfault () =
  let m = Vm.Mem.create () in
  Alcotest.check_raises "unmapped" (Vm.Mem.Segfault 0x5000) (fun () ->
      ignore (Vm.Mem.read m ~addr:0x5000 ~len:1))

let test_mem_unmap () =
  let m = Vm.Mem.create () in
  Vm.Mem.map m ~addr:0x1000 ~len:8;
  Vm.Mem.write m ~addr:0x1000 ~len:8 7;
  Vm.Mem.unmap m ~addr:0x1000 ~len:8;
  Alcotest.(check bool) "unmapped" false (Vm.Mem.is_mapped m 0x1000);
  Alcotest.check_raises "faults" (Vm.Mem.Segfault 0x1000) (fun () ->
      ignore (Vm.Mem.read m ~addr:0x1000 ~len:8))

let test_mem_sparse_far_addresses () =
  let m = Vm.Mem.create () in
  let far = 86 lsl 35 in
  Vm.Mem.map m ~addr:far ~len:16;
  Vm.Mem.write m ~addr:far ~len:8 99;
  Alcotest.(check int) "far address" 99 (Vm.Mem.read m ~addr:far ~len:8)

(* --- Cpu ------------------------------------------------------------- *)

let null_rt =
  {
    Vm.Cpu.rt_malloc = (fun _ _ -> 0);
    rt_free = (fun _ _ -> ());
    rt_name = "null";
  }

(* assemble+load+run a code fragment; returns the cpu *)
let exec ?(inputs = []) items =
  let code, _ = Asm.assemble ~origin:0x400000 items in
  let cpu = Vm.Cpu.create () in
  Vm.Mem.write_string cpu.mem ~addr:0x400000 code;
  Vm.Mem.map cpu.mem ~addr:0x7f0000 ~len:0x10000;
  cpu.regs.(Isa.rsp) <- 0x7fff00;
  cpu.inputs <- inputs;
  let (_ : int) = Vm.Cpu.run cpu null_rt ~entry:0x400000 in
  cpu

let i x = Asm.I x

let test_arith () =
  let cpu =
    exec
      [
        i (Isa.Mov_ri (Isa.rax, 10));
        i (Isa.Mov_ri (Isa.rbx, 3));
        i (Isa.Alu_rr (Isa.Add, Isa.rax, Isa.rbx)); (* 13 *)
        i (Isa.Mul_rr (Isa.rax, Isa.rax)); (* 169 *)
        i (Isa.Alu_ri (Isa.Sub, Isa.rax, 9)); (* 160 *)
        i (Isa.Div_rr (Isa.rax, Isa.rbx)); (* 53 *)
        i (Isa.Mov_ri (Isa.rcx, 7));
        i (Isa.Rem_rr (Isa.rcx, Isa.rbx)); (* 1 *)
        i (Isa.Shift_ri (Isa.Shl, Isa.rax, 2)); (* 212 *)
        i (Isa.Shift_ri (Isa.Sar, Isa.rax, 1)); (* 106 *)
        i (Isa.Neg Isa.rcx); (* -1 *)
        i Isa.Ret;
      ]
  in
  Alcotest.(check int) "rax" 106 cpu.regs.(Isa.rax);
  Alcotest.(check int) "rcx" (-1) cpu.regs.(Isa.rcx)

let test_logic () =
  let cpu =
    exec
      [
        i (Isa.Mov_ri (Isa.rax, 0b1100));
        i (Isa.Mov_ri (Isa.rbx, 0b1010));
        i (Isa.Mov_rr (Isa.rcx, Isa.rax));
        i (Isa.Alu_rr (Isa.And, Isa.rcx, Isa.rbx)); (* 0b1000 *)
        i (Isa.Mov_rr (Isa.rdx, Isa.rax));
        i (Isa.Alu_rr (Isa.Or, Isa.rdx, Isa.rbx)); (* 0b1110 *)
        i (Isa.Mov_rr (Isa.rsi, Isa.rax));
        i (Isa.Alu_rr (Isa.Xor, Isa.rsi, Isa.rbx)); (* 0b0110 *)
        i (Isa.Not Isa.rax);
        i Isa.Ret;
      ]
  in
  Alcotest.(check int) "and" 0b1000 cpu.regs.(Isa.rcx);
  Alcotest.(check int) "or" 0b1110 cpu.regs.(Isa.rdx);
  Alcotest.(check int) "xor" 0b0110 cpu.regs.(Isa.rsi);
  Alcotest.(check int) "not" (lnot 0b1100) cpu.regs.(Isa.rax)

(* all 10 condition codes against known operand pairs *)
let test_conditions () =
  let check cc a b expect =
    let cpu =
      exec
        [
          i (Isa.Mov_ri (Isa.rax, a));
          i (Isa.Mov_ri (Isa.rbx, b));
          i (Isa.Cmp_rr (Isa.rax, Isa.rbx));
          i (Isa.Setcc (cc, Isa.rcx));
          i Isa.Ret;
        ]
    in
    Alcotest.(check int)
      (Printf.sprintf "%s %d %d" (Disasm.cc_name cc) a b)
      (if expect then 1 else 0)
      cpu.regs.(Isa.rcx)
  in
  check Isa.Eq 5 5 true;
  check Isa.Eq 5 6 false;
  check Isa.Ne 5 6 true;
  check Isa.Lt (-1) 1 true;
  check Isa.Lt 1 (-1) false;
  check Isa.Le 5 5 true;
  check Isa.Gt 7 2 true;
  check Isa.Ge 2 7 false;
  (* unsigned: -1 is the largest value *)
  check Isa.Ult (-1) 1 false;
  check Isa.Ugt (-1) 1 true;
  check Isa.Ule 3 3 true;
  check Isa.Uge 1 (-1) false

let test_loop_and_branches () =
  (* sum 1..10 with a backward branch *)
  let cpu =
    exec
      [
        i (Isa.Mov_ri (Isa.rax, 0));
        i (Isa.Mov_ri (Isa.rcx, 1));
        Asm.Label "loop";
        i (Isa.Alu_rr (Isa.Add, Isa.rax, Isa.rcx));
        i (Isa.Alu_ri (Isa.Add, Isa.rcx, 1));
        i (Isa.Cmp_ri (Isa.rcx, 10));
        Asm.Jcc_l (Isa.Le, "loop");
        i Isa.Ret;
      ]
  in
  Alcotest.(check int) "sum" 55 cpu.regs.(Isa.rax)

let test_call_ret_stack () =
  let cpu =
    exec
      [
        i (Isa.Mov_ri (Isa.rax, 1));
        Asm.Call_l "double";
        Asm.Call_l "double";
        Asm.Call_l "double";
        i Isa.Ret;
        Asm.Label "double";
        i (Isa.Alu_rr (Isa.Add, Isa.rax, Isa.rax));
        i Isa.Ret;
      ]
  in
  Alcotest.(check int) "3 doublings" 8 cpu.regs.(Isa.rax)

let test_push_pop () =
  let cpu =
    exec
      [
        i (Isa.Mov_ri (Isa.rax, 111));
        i (Isa.Mov_ri (Isa.rbx, 222));
        i (Isa.Push Isa.rax);
        i (Isa.Push Isa.rbx);
        i (Isa.Pop Isa.rax); (* rax=222 *)
        i (Isa.Pop Isa.rbx); (* rbx=111 *)
        i Isa.Ret;
      ]
  in
  Alcotest.(check int) "rax" 222 cpu.regs.(Isa.rax);
  Alcotest.(check int) "rbx" 111 cpu.regs.(Isa.rbx)

let test_memory_operands () =
  let cpu =
    exec
      [
        i (Isa.Mov_ri (Isa.rbx, 0x7f0000));
        i (Isa.Mov_ri (Isa.rcx, 3));
        i (Isa.Mov_ri (Isa.rax, 77));
        (* [rbx + rcx*8 + 16] = rax *)
        i (Isa.Store (Isa.W8, Isa.mem ~disp:16 ~base:Isa.rbx ~idx:Isa.rcx ~scale:8 (), Isa.rax));
        i (Isa.Load (Isa.W8, Isa.rdx, Isa.mem ~disp:40 ~base:Isa.rbx ()));
        (* byte store truncates *)
        i (Isa.Mov_ri (Isa.rax, 0x1ff));
        i (Isa.Store (Isa.W1, Isa.mem ~base:Isa.rbx (), Isa.rax));
        i (Isa.Load (Isa.W1, Isa.rsi, Isa.mem ~base:Isa.rbx ()));
        i Isa.Ret;
      ]
  in
  Alcotest.(check int) "indexed store/load" 77 cpu.regs.(Isa.rdx);
  Alcotest.(check int) "byte truncation" 0xff cpu.regs.(Isa.rsi)

let test_lea () =
  let cpu =
    exec
      [
        i (Isa.Mov_ri (Isa.rbx, 1000));
        i (Isa.Mov_ri (Isa.rcx, 5));
        i (Isa.Lea (Isa.rax, Isa.mem ~disp:(-8) ~base:Isa.rbx ~idx:Isa.rcx ~scale:4 ()));
        i Isa.Ret;
      ]
  in
  Alcotest.(check int) "lea" (1000 + 20 - 8) cpu.regs.(Isa.rax)

let test_io_runtime () =
  let cpu =
    exec ~inputs:[ 5; 7 ]
      [
        i (Isa.Callrt Isa.Input);
        i (Isa.Mov_rr (Isa.rbx, Isa.rax));
        i (Isa.Callrt Isa.Input);
        i (Isa.Alu_rr (Isa.Add, Isa.rax, Isa.rbx));
        i (Isa.Mov_rr (Isa.rdi, Isa.rax));
        i (Isa.Callrt Isa.Print);
        (* input exhausted -> 0 *)
        i (Isa.Callrt Isa.Input);
        i (Isa.Mov_rr (Isa.rdi, Isa.rax));
        i (Isa.Callrt Isa.Print);
        i Isa.Ret;
      ]
  in
  Alcotest.(check (list int)) "outputs" [ 12; 0 ] (Vm.Cpu.outputs cpu)

let test_div_by_zero () =
  Alcotest.check_raises "div0" (Vm.Cpu.Div_by_zero 0x40000c) (fun () ->
      ignore
        (exec
           [
             i (Isa.Mov_ri (Isa.rax, 5));
             i (Isa.Mov_ri (Isa.rbx, 0));
             i (Isa.Div_rr (Isa.rax, Isa.rbx));
             i Isa.Ret;
           ]))

let test_indirect_call_and_jump () =
  let code, labels =
    Asm.assemble ~origin:0x400000
      [
        Asm.Mov_label (Isa.rbx, "fn");
        i (Isa.Call_ind Isa.rbx);      (* rax = 5 *)
        Asm.Mov_label (Isa.rcx, "out");
        i (Isa.Jmp_ind Isa.rcx);
        i (Isa.Mov_ri (Isa.rax, 0));   (* skipped *)
        Asm.Label "out";
        i Isa.Ret;
        Asm.Label "fn";
        i (Isa.Mov_ri (Isa.rax, 5));
        i Isa.Ret;
      ]
  in
  ignore labels;
  let cpu = Vm.Cpu.create () in
  Vm.Mem.write_string cpu.mem ~addr:0x400000 code;
  Vm.Mem.map cpu.mem ~addr:0x7f0000 ~len:0x10000;
  cpu.regs.(Isa.rsp) <- 0x7fff00;
  let (_ : int) = Vm.Cpu.run cpu null_rt ~entry:0x400000 in
  Alcotest.(check int) "indirect call result survives indirect jump" 5
    cpu.regs.(Isa.rax)

let test_trap_table () =
  (* a Trap redirects through the table and costs extra *)
  let code, labels =
    Asm.assemble ~origin:0x400000
      [
        i Isa.Trap;
        i (Isa.Nop 1);
        Asm.Label "after";
        i Isa.Ret;
        Asm.Label "tramp";
        i (Isa.Mov_ri (Isa.rax, 0xfeed));
        Asm.Jmp_l "after";
      ]
  in
  let cpu = Vm.Cpu.create () in
  Vm.Mem.write_string cpu.mem ~addr:0x400000 code;
  Vm.Mem.map cpu.mem ~addr:0x7f0000 ~len:0x10000;
  cpu.regs.(Isa.rsp) <- 0x7fff00;
  Hashtbl.replace cpu.trap_table 0x400000 (Hashtbl.find labels "tramp");
  let (_ : int) = Vm.Cpu.run cpu null_rt ~entry:0x400000 in
  Alcotest.(check int) "trampoline ran" 0xfeed cpu.regs.(Isa.rax)

let test_trap_without_entry_faults () =
  Alcotest.check_raises "invalid opcode" (Vm.Cpu.Invalid_opcode 0x400000)
    (fun () -> ignore (exec [ i Isa.Trap; i Isa.Ret ]))

let test_timeout () =
  let code, _ =
    Asm.assemble ~origin:0x400000
      [ Asm.Label "spin"; Asm.Jmp_l "spin" ]
  in
  let cpu = Vm.Cpu.create ~max_steps:1000 () in
  Vm.Mem.write_string cpu.mem ~addr:0x400000 code;
  Vm.Mem.map cpu.mem ~addr:0x7f0000 ~len:0x10000;
  cpu.regs.(Isa.rsp) <- 0x7fff00;
  Alcotest.check_raises "timeout" (Vm.Cpu.Timeout 1000) (fun () ->
      ignore (Vm.Cpu.run cpu null_rt ~entry:0x400000))

let test_exit_code () =
  let cpu = Vm.Cpu.create () in
  let code, _ =
    Asm.assemble ~origin:0x400000
      [ i (Isa.Mov_ri (Isa.rdi, 3)); i (Isa.Callrt Isa.Exit); i Isa.Ret ]
  in
  Vm.Mem.write_string cpu.mem ~addr:0x400000 code;
  Vm.Mem.map cpu.mem ~addr:0x7f0000 ~len:0x10000;
  cpu.regs.(Isa.rsp) <- 0x7fff00;
  Alcotest.(check int) "exit code" 3 (Vm.Cpu.run cpu null_rt ~entry:0x400000)

let test_cost_model_monotone () =
  let run items =
    let cpu = exec items in
    cpu.cycles
  in
  let base = run [ i (Isa.Nop 1); i Isa.Ret ] in
  let with_mem =
    run
      [
        i (Isa.Mov_ri (Isa.rbx, 0x7f0000));
        i (Isa.Load (Isa.W8, Isa.rax, Isa.mem ~base:Isa.rbx ()));
        i Isa.Ret;
      ]
  in
  Alcotest.(check bool) "memory access costs more" true (with_mem > base + 1)

let test_dispatch_cost () =
  let run dispatch =
    let code, _ =
      Asm.assemble ~origin:0x400000 [ i (Isa.Nop 1); i (Isa.Nop 1); i Isa.Ret ]
    in
    let cpu = Vm.Cpu.create () in
    Vm.Mem.write_string cpu.mem ~addr:0x400000 code;
    Vm.Mem.map cpu.mem ~addr:0x7f0000 ~len:0x10000;
    cpu.regs.(Isa.rsp) <- 0x7fff00;
    cpu.dispatch_cost <- dispatch;
    let (_ : int) = Vm.Cpu.run cpu null_rt ~entry:0x400000 in
    cpu.cycles
  in
  Alcotest.(check int) "DBI dispatch charged per instruction"
    (run 0 + (3 * 5))
    (run 5)

let tests =
  [
    Alcotest.test_case "mem rw widths" `Quick test_mem_rw_widths;
    Alcotest.test_case "mem negative round-trip" `Quick
      test_mem_negative_roundtrip;
    Alcotest.test_case "mem page crossing" `Quick test_mem_page_crossing;
    Alcotest.test_case "mem segfault" `Quick test_mem_segfault;
    Alcotest.test_case "mem unmap" `Quick test_mem_unmap;
    Alcotest.test_case "mem sparse far addresses" `Quick
      test_mem_sparse_far_addresses;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "logic" `Quick test_logic;
    Alcotest.test_case "condition codes" `Quick test_conditions;
    Alcotest.test_case "loops and branches" `Quick test_loop_and_branches;
    Alcotest.test_case "call/ret stack" `Quick test_call_ret_stack;
    Alcotest.test_case "push/pop" `Quick test_push_pop;
    Alcotest.test_case "memory operands" `Quick test_memory_operands;
    Alcotest.test_case "lea" `Quick test_lea;
    Alcotest.test_case "scripted io" `Quick test_io_runtime;
    Alcotest.test_case "division by zero" `Quick test_div_by_zero;
    Alcotest.test_case "indirect call/jump" `Quick
      test_indirect_call_and_jump;
    Alcotest.test_case "trap table" `Quick test_trap_table;
    Alcotest.test_case "trap without entry" `Quick
      test_trap_without_entry_faults;
    Alcotest.test_case "timeout" `Quick test_timeout;
    Alcotest.test_case "exit code" `Quick test_exit_code;
    Alcotest.test_case "memory access cost" `Quick test_cost_model_monotone;
    Alcotest.test_case "dispatch cost" `Quick test_dispatch_cost;
  ]
