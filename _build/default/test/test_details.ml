(* Targeted edge-case tests across modules. *)

open X64
module Rt = Redfat_rt.Runtime

(* --- encoder limits -------------------------------------------------- *)

let test_encode_disp_limits () =
  let enc i =
    let b = Buffer.create 16 in
    Encode.encode_at b 0x400000 i;
    Buffer.contents b
  in
  (* extreme but legal displacements round-trip *)
  List.iter
    (fun disp ->
      let i = Isa.Store (Isa.W8, Isa.mem ~disp ~base:Isa.rax (), Isa.rbx) in
      let i', _ = Decode.decode ~addr:0x400000 (enc i) 0 in
      Alcotest.(check bool) (Printf.sprintf "disp %d" disp) true (i = i'))
    [ 0x7fff_ffff; -0x8000_0000; 127; -128; 128; -129 ];
  (* out-of-range immediates are rejected, not silently truncated *)
  Alcotest.(check bool) "disp overflow rejected" true
    (match enc (Isa.Alu_ri (Isa.Add, Isa.rax, 1 lsl 40)) with
     | exception Encode.Encode_error _ -> true
     | _ -> false)

let test_rel32_range_check () =
  (* a jump farther than ±2 GiB cannot be encoded *)
  Alcotest.(check bool) "far jump rejected" true
    (match
       let b = Buffer.create 8 in
       Encode.encode_at b 0x400000 (Isa.Jmp (0x400000 + (1 lsl 33)))
     with
     | exception Encode.Encode_error _ -> true
     | _ -> false)

(* --- cost model ------------------------------------------------------ *)

let test_far_jump_penalty () =
  let run target =
    let items =
      [ Asm.I (Isa.Jmp target) ]
    in
    let code, _ = Asm.assemble ~origin:0x400000 items in
    let cpu = Vm.Cpu.create () in
    Vm.Mem.write_string cpu.mem ~addr:0x400000 code;
    (* land on a Ret at the target *)
    Vm.Mem.write_string cpu.mem ~addr:target
      (Encode.encode_seq ~addr:target [ Isa.Ret ]);
    Vm.Mem.map cpu.mem ~addr:0x7f0000 ~len:0x10000;
    cpu.regs.(Isa.rsp) <- 0x7fff00;
    let rt =
      { Vm.Cpu.rt_malloc = (fun _ _ -> 0); rt_free = (fun _ _ -> ());
        rt_name = "null" }
    in
    let (_ : int) = Vm.Cpu.run cpu rt ~entry:0x400000 in
    cpu.cycles
  in
  let near = run 0x400100 in
  let far = run 0x40400000 in
  Alcotest.(check bool)
    (Printf.sprintf "far (%d) > near (%d)" far near)
    true (far > near)

(* --- CFG helpers ----------------------------------------------------- *)

let test_index_at () =
  let items =
    [ Asm.I (Isa.Mov_ri (Isa.rax, 1)); Asm.I (Isa.Nop 1); Asm.I Isa.Ret ]
  in
  let code, _ = Asm.assemble ~origin:0x400000 items in
  let cfg = Rewriter.Cfg.recover ~text_addr:0x400000 code in
  Alcotest.(check (option int)) "first" (Some 0)
    (Rewriter.Cfg.index_at cfg 0x400000);
  Alcotest.(check (option int)) "second" (Some 1)
    (Rewriter.Cfg.index_at cfg 0x400006);
  Alcotest.(check (option int)) "misaligned" None
    (Rewriter.Cfg.index_at cfg 0x400003)

(* --- hardened binaries disassemble ----------------------------------- *)

let test_hardened_binary_disassembles () =
  let b = Workloads.Spec.find "mcf" in
  let hard = Redfat.harden (Workloads.Spec.binary b) in
  let text = Binfmt.Relf.disasm hard.binary in
  Alcotest.(check bool) "patched text shows jumps" true
    (String.length text > 0);
  match Binfmt.Relf.find_section hard.binary ".redfat" with
  | None -> Alcotest.fail "no trampoline section"
  | Some s ->
    let tramp = Disasm.dump ~addr:s.addr s.bytes in
    (* trampolines contain the Check pseudo-ops and return jumps *)
    Alcotest.(check bool) "checks visible" true
      (String.length tramp > 0
      && String.index_opt tramp 'c' <> None (* "check..." lines *))

(* --- Juliet control-flow wrappers are behaviour-invariant ------------- *)

let test_juliet_variants_equivalent () =
  (* all 32 variants of one pattern produce the same verdicts, even
     though the binaries differ (guards, call depth, data laundering) *)
  let cases =
    List.filter (fun (c : Workloads.Juliet.case) -> c.pattern = 0)
      Workloads.Juliet.all
  in
  Alcotest.(check int) "32 variants" 32 (List.length cases);
  let binaries =
    List.map (fun c -> Binfmt.Relf.serialize (Workloads.Juliet.binary c)) cases
  in
  Alcotest.(check bool) "variants differ as binaries" true
    (List.length (List.sort_uniq compare binaries) > 16);
  List.iter
    (fun (c : Workloads.Juliet.case) ->
      let hard = Redfat.harden (Workloads.Juliet.binary c) in
      let benign = Redfat.run_hardened ~inputs:c.benign_inputs hard.binary in
      let attack = Redfat.run_hardened ~inputs:c.attack_inputs hard.binary in
      match (benign.verdict, attack.verdict) with
      | Redfat.Finished 0, Redfat.Detected _ -> ()
      | b, a ->
        Alcotest.failf "%s: benign=%s attack=%s" c.id
          (Redfat.verdict_to_string b) (Redfat.verdict_to_string a))
    cases

(* --- error explanations ----------------------------------------------- *)

let test_explain_messages () =
  let mem = Vm.Mem.create () in
  let rt = Rt.create ~options:{ Rt.default_options with mode = Rt.Log } mem in
  let cpu = Vm.Cpu.create () in
  let a = Rt.malloc rt 64 in
  let _b = Rt.malloc rt 64 in
  cpu.regs.(Isa.rbx) <- a;
  let error_of lo hi =
    ignore
      (Rt.check rt cpu
         {
           Isa.ck_variant = Isa.Full;
           ck_mem = Isa.mem ~base:Isa.rbx ();
           ck_lo = lo;
           ck_hi = hi;
           ck_write = true;
           ck_site = 0x400100;
           ck_nsaves = 0;
           ck_save_flags = false;
         });
    match List.rev (Rt.errors rt) with
    | e :: _ -> e
    | [] -> Alcotest.fail "no error"
  in
  let contains hay needle =
    let rec go i =
      i + String.length needle <= String.length hay
      && (String.sub hay i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  (* skip into the next object *)
  let e = error_of 80 88 in
  Alcotest.(check bool) "skip explained" true
    (contains (Rt.explain rt e) "non-incremental skip");
  (* below the object *)
  let e = error_of (-4) 0 in
  Alcotest.(check bool) "below explained" true
    (contains (Rt.explain rt e) "below")

(* --- shadow granule edges --------------------------------------------- *)

let test_shadow_granule_edges () =
  let sh = Redfat_rt.Shadow.create () in
  Redfat_rt.Shadow.mark_allocated sh ~addr:0x4000 ~len:1;
  Alcotest.(check bool) "1-byte object byte 0" true
    (Redfat_rt.Shadow.state sh 0x4000 = Redfat_rt.Shadow.Allocated);
  Alcotest.(check bool) "1-byte object byte 1" true
    (Redfat_rt.Shadow.state sh 0x4001 = Redfat_rt.Shadow.Redzone);
  (* exactly granule-sized *)
  Redfat_rt.Shadow.mark_allocated sh ~addr:0x5000 ~len:8;
  Alcotest.(check bool) "byte 7 ok" true
    (Redfat_rt.Shadow.state sh 0x5007 = Redfat_rt.Shadow.Allocated);
  Alcotest.(check bool) "byte 8 poison" true
    (Redfat_rt.Shadow.state sh 0x5008 = Redfat_rt.Shadow.Redzone)

(* --- spec program structure ------------------------------------------ *)

let test_spec_structure () =
  (* benchmarks with full coverage have no ref-only clone; benchmarks
     with FP sites carry the fp function *)
  let count_funcs b =
    List.length (Workloads.Spec.program b).Minic.Ast.funcs
  in
  let libq = Workloads.Spec.find "libquantum" in
  Alcotest.(check int) "libquantum: main+kernel" 2 (count_funcs libq);
  let gems = Workloads.Spec.find "GemsFDTD" in
  Alcotest.(check int) "GemsFDTD: main+kernel+ref+fp" 4 (count_funcs gems);
  let hmmer = Workloads.Spec.find "hmmer" in
  Alcotest.(check int) "hmmer: main+kernel+ref" 3 (count_funcs hmmer)

(* --- kraken suite shape ----------------------------------------------- *)

let test_kraken_names_match_figure8 () =
  let names = List.map (fun (b : Workloads.Kraken.bench) -> b.name)
      Workloads.Kraken.all
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool) expected true (List.mem expected names))
    [ "ai-astar"; "audio-fft"; "imaging-gaussian-blur";
      "json-parse-financial"; "crypto-pbkdf2"; "crypto-sha256-iterative" ]

let tests =
  [
    Alcotest.test_case "encoder displacement limits" `Quick
      test_encode_disp_limits;
    Alcotest.test_case "rel32 range check" `Quick test_rel32_range_check;
    Alcotest.test_case "far jump penalty" `Quick test_far_jump_penalty;
    Alcotest.test_case "cfg index_at" `Quick test_index_at;
    Alcotest.test_case "hardened binary disassembles" `Quick
      test_hardened_binary_disassembles;
    Alcotest.test_case "juliet variants equivalent" `Slow
      test_juliet_variants_equivalent;
    Alcotest.test_case "error explanations" `Quick test_explain_messages;
    Alcotest.test_case "shadow granule edges" `Quick test_shadow_granule_edges;
    Alcotest.test_case "spec program structure" `Quick test_spec_structure;
    Alcotest.test_case "kraken names match figure 8" `Quick
      test_kraken_names_match_figure8;
  ]
