(* The RedFat runtime: redzone allocator wrapper and the Figure 4 check. *)

module Rt = Redfat_rt.Runtime
module L = Lowfat.Layout

let mk ?options ?profiling () =
  let mem = Vm.Mem.create () in
  let rt = Rt.create ?options ?profiling mem in
  let cpu = Vm.Cpu.create () in
  (* cpu shares no memory with rt.mem here; tests drive check() directly *)
  (rt, cpu)

let payload ?(variant = X64.Isa.Full) ?(write = true) ?(lo = 0) ?(hi = 8)
    ?(site = 0x401000) ?idx ?(scale = 1) base_reg =
  {
    X64.Isa.ck_variant = variant;
    ck_mem = X64.Isa.mem ?idx ~scale ~base:base_reg ();
    ck_lo = lo;
    ck_hi = hi;
    ck_write = write;
    ck_site = site;
    ck_nsaves = 0;
    ck_save_flags = false;
  }

(* --- allocator wrapper ----------------------------------------------- *)

let test_malloc_metadata () =
  let rt, _ = mk () in
  let p = Rt.malloc rt 100 in
  let base = L.base p in
  Alcotest.(check int) "object starts after the redzone" (base + 16) p;
  Alcotest.(check int) "metadata = malloc size" 100
    (Vm.Mem.read rt.mem ~addr:base ~len:8)

let test_free_marks_metadata () =
  let rt, _ = mk () in
  let p = Rt.malloc rt 100 in
  Rt.free rt p;
  Alcotest.(check int) "size zeroed on free" 0
    (Vm.Mem.read rt.mem ~addr:(L.base p) ~len:8)

let test_free_null () =
  let rt, _ = mk () in
  Rt.free rt 0 (* must not raise *)

let test_double_free_detected () =
  let rt, _ = mk () in
  let p = Rt.malloc rt 32 in
  Rt.free rt p;
  Alcotest.check_raises "double free" (Rt.Bad_free p) (fun () -> Rt.free rt p)

let test_malloc_zero () =
  let rt, _ = mk () in
  let p = Rt.malloc rt 0 in
  Alcotest.(check bool) "usable pointer" true (L.is_fat p)

let test_reuse_updates_metadata () =
  let rt, _ = mk () in
  let p = Rt.malloc rt 32 in
  Rt.free rt p;
  let q = Rt.malloc rt 24 in
  Alcotest.(check int) "slot reused" p q;
  Alcotest.(check int) "metadata updated" 24
    (Vm.Mem.read rt.mem ~addr:(L.base q) ~len:8)

(* --- the check ------------------------------------------------------- *)

let run_check rt cpu ck =
  match Rt.check rt cpu ck with
  | (_ : int) -> None
  | exception Rt.Memory_error e -> Some e.kind

let test_check_in_bounds () =
  let rt, cpu = mk () in
  let p = Rt.malloc rt 64 in
  cpu.regs.(X64.Isa.rbx) <- p;
  (* whole object readable/writable *)
  Alcotest.(check (option string)) "first byte" None
    (Option.map Rt.kind_name (run_check rt cpu (payload ~lo:0 ~hi:1 X64.Isa.rbx)));
  Alcotest.(check (option string)) "last byte" None
    (Option.map Rt.kind_name
       (run_check rt cpu (payload ~lo:63 ~hi:64 X64.Isa.rbx)))

let test_check_upper_oob () =
  let rt, cpu = mk () in
  let p = Rt.malloc rt 64 in
  cpu.regs.(X64.Isa.rbx) <- p;
  Alcotest.(check (option string)) "one past end" (Some "out-of-bounds (upper)")
    (Option.map Rt.kind_name
       (run_check rt cpu (payload ~lo:64 ~hi:65 X64.Isa.rbx)))

let test_check_detects_padding_overflow () =
  (* paper §4.2: the upper bound is the malloc SIZE, so overflow into
     the allocator's rounding padding is also caught *)
  let rt, cpu = mk () in
  let p = Rt.malloc rt 50 (* slot 80: 14 bytes of padding *) in
  cpu.regs.(X64.Isa.rbx) <- p;
  Alcotest.(check (option string)) "into padding" (Some "out-of-bounds (upper)")
    (Option.map Rt.kind_name
       (run_check rt cpu (payload ~lo:50 ~hi:51 X64.Isa.rbx)))

let test_check_lower_oob () =
  let rt, cpu = mk () in
  let p = Rt.malloc rt 64 in
  cpu.regs.(X64.Isa.rbx) <- p;
  Alcotest.(check bool) "below object (redzone)" true
    (run_check rt cpu (payload ~lo:(-8) ~hi:0 X64.Isa.rbx) <> None)

let test_check_use_after_free () =
  let rt, cpu = mk () in
  let p = Rt.malloc rt 64 in
  Rt.free rt p;
  cpu.regs.(X64.Isa.rbx) <- p;
  Alcotest.(check (option string)) "UaF" (Some "use-after-free")
    (Option.map Rt.kind_name (run_check rt cpu (payload ~lo:0 ~hi:8 X64.Isa.rbx)))

let test_check_skip_detected_by_lowfat () =
  (* the headline property: an access that skips past the redzone into
     the NEXT allocated object fails the Full check but not Redzone *)
  let rt, cpu = mk () in
  let a = Rt.malloc rt 64 in
  let b = Rt.malloc rt 64 in
  Alcotest.(check int) "adjacent slots" (L.size a) (b - a);
  cpu.regs.(X64.Isa.rbx) <- a;
  let skip = b - a in
  Alcotest.(check (option string)) "full check catches the skip"
    (Some "out-of-bounds (upper)")
    (Option.map Rt.kind_name
       (run_check rt cpu (payload ~lo:skip ~hi:(skip + 8) X64.Isa.rbx)));
  Alcotest.(check (option string)) "redzone-only misses it" None
    (Option.map Rt.kind_name
       (run_check rt cpu
          (payload ~variant:X64.Isa.Redzone ~lo:skip ~hi:(skip + 8)
             X64.Isa.rbx)))

let test_check_nonfat_passes () =
  let rt, cpu = mk () in
  cpu.regs.(X64.Isa.rbx) <- L.data_base;
  Alcotest.(check (option string)) "non-fat pointer" None
    (Option.map Rt.kind_name (run_check rt cpu (payload ~lo:0 ~hi:8 X64.Isa.rbx)))

let test_check_fallback_redzone () =
  (* a non-fat base register whose access lands in the heap: the
     fallback derives the base from the accessed address (Figure 4
     lines 13-14) *)
  let rt, cpu = mk () in
  let p = Rt.malloc rt 64 in
  Rt.free rt p;
  cpu.regs.(X64.Isa.rbx) <- 0 (* NULL base *);
  Alcotest.(check bool) "fallback catches freed heap access" true
    (run_check rt cpu (payload ~lo:p ~hi:(p + 8) X64.Isa.rbx) <> None)

let test_size_hardening () =
  (* uninstrumented code corrupts the metadata; the size-hardening
     comparison against the immutable low-fat size flags it *)
  let rt, cpu = mk () in
  let p = Rt.malloc rt 64 in
  Vm.Mem.write rt.mem ~addr:(L.base p) ~len:8 100000;
  cpu.regs.(X64.Isa.rbx) <- p;
  Alcotest.(check (option string)) "corrupt metadata" (Some "corrupted metadata")
    (Option.map Rt.kind_name (run_check rt cpu (payload ~lo:0 ~hi:8 X64.Isa.rbx)));
  (* with -size, the corrupted size is trusted (bounded risk: padding) *)
  let rt2 = Rt.create ~options:{ Rt.default_options with size_harden = false }
      rt.mem
  in
  Alcotest.(check (option string)) "-size trusts metadata" None
    (Option.map Rt.kind_name (run_check rt2 cpu (payload ~lo:0 ~hi:8 X64.Isa.rbx)))

let test_lowfat_off_is_redzone_only () =
  let rt, cpu =
    let mem = Vm.Mem.create () in
    (Rt.create ~options:{ Rt.default_options with lowfat = false } mem,
     Vm.Cpu.create ())
  in
  let a = Rt.malloc rt 64 in
  let _b = Rt.malloc rt 64 in
  cpu.regs.(X64.Isa.rbx) <- a;
  let skip = L.size a in
  Alcotest.(check (option string)) "lowfat disabled: skip missed" None
    (Option.map Rt.kind_name
       (run_check rt cpu (payload ~lo:skip ~hi:(skip + 8) X64.Isa.rbx)))

let test_log_mode_dedup () =
  let rt, cpu =
    let mem = Vm.Mem.create () in
    (Rt.create ~options:{ Rt.default_options with mode = Rt.Log } mem,
     Vm.Cpu.create ())
  in
  let p = Rt.malloc rt 8 in
  cpu.regs.(X64.Isa.rbx) <- p;
  for _ = 1 to 5 do
    ignore (Rt.check rt cpu (payload ~lo:100 ~hi:108 ~site:0x42 X64.Isa.rbx))
  done;
  ignore (Rt.check rt cpu (payload ~lo:100 ~hi:108 ~site:0x43 X64.Isa.rbx));
  Alcotest.(check int) "unique (site,kind) pairs" 2
    (List.length (Rt.errors rt))

let test_coverage_counters () =
  let rt, cpu = mk () in
  let p = Rt.malloc rt 64 in
  cpu.regs.(X64.Isa.rbx) <- p;
  ignore (Rt.check rt cpu (payload ~lo:0 ~hi:8 X64.Isa.rbx));
  ignore (Rt.check rt cpu (payload ~variant:X64.Isa.Redzone ~lo:0 ~hi:8 X64.Isa.rbx));
  ignore (Rt.check rt cpu (payload ~lo:0 ~hi:8 X64.Isa.rbx));
  Alcotest.(check bool) "coverage 2/3" true
    (abs_float (Rt.coverage_percent rt -. 66.6667) < 0.1)

let test_profiling_allowlist () =
  let mem = Vm.Mem.create () in
  let rt = Rt.create ~options:{ Rt.default_options with mode = Rt.Log }
      ~profiling:true mem
  in
  let cpu = Vm.Cpu.create () in
  let p = Rt.malloc rt 64 in
  (* site 0x10: idiomatic; site 0x20: anti-idiom (base below object) *)
  cpu.regs.(X64.Isa.rbx) <- p;
  ignore (Rt.check rt cpu (payload ~lo:0 ~hi:8 ~site:0x10 X64.Isa.rbx));
  cpu.regs.(X64.Isa.rbx) <- p - 24;
  ignore (Rt.check rt cpu (payload ~lo:24 ~hi:32 ~site:0x20 X64.Isa.rbx));
  Alcotest.(check (list int)) "allowlist" [ 0x10 ] (Rt.allowlist rt);
  Alcotest.(check (list int)) "failing sites" [ 0x20 ]
    (Rt.lowfat_failing_sites rt)

let test_check_cost_ordering () =
  (* full checks cost more than redzone-only; saves add cost *)
  let rt, cpu = mk () in
  let p = Rt.malloc rt 64 in
  cpu.regs.(X64.Isa.rbx) <- p;
  let cost ck = Rt.check rt cpu ck in
  let full = cost (payload ~lo:0 ~hi:8 X64.Isa.rbx) in
  let rz = cost (payload ~variant:X64.Isa.Redzone ~lo:0 ~hi:8 X64.Isa.rbx) in
  let with_saves =
    cost { (payload ~lo:0 ~hi:8 X64.Isa.rbx) with ck_nsaves = 3; ck_save_flags = true }
  in
  Alcotest.(check bool) "redzone <= full" true (rz <= full);
  Alcotest.(check int) "saves add 2/reg + 3 flags" (full + 9) with_saves

(* merged-UB trick equivalence (paper §4.2), property-tested over
   random object/access geometry *)
let prop_merged_ub_equivalent =
  let gen =
    QCheck.Gen.(
      let* size = int_range 1 200 in
      let* lo_off = int_range (-64) 300 in
      let* span = int_range 1 16 in
      let* freed = bool in
      return (size, lo_off, span, freed))
  in
  QCheck.Test.make ~count:2000 ~name:"merged-UB underflow trick = branchy form"
    (QCheck.make gen)
    (fun (size, lo_off, span, freed) ->
      let mem = Vm.Mem.create () in
      let mk_rt merged =
        Rt.create
          ~options:{ Rt.default_options with merged_ub = merged; mode = Rt.Log }
          mem
      in
      let rt1 = mk_rt true in
      let p = Rt.malloc rt1 size in
      if freed then Rt.free rt1 p;
      let rt2 = mk_rt false in
      let cpu = Vm.Cpu.create () in
      cpu.regs.(X64.Isa.rbx) <- p;
      let verdict rt =
        let ck = payload ~lo:lo_off ~hi:(lo_off + span) X64.Isa.rbx in
        match Rt.check rt cpu ck with
        | (_ : int) -> Rt.errors rt <> []
        | exception Rt.Memory_error _ -> true
      in
      verdict rt1 = verdict rt2)

(* --- the ASAN-shadow ablation backend (paper §4.1) ------------------- *)

module Sh = Redfat_rt.Shadow

let shadow_opts = { Rt.default_options with state_impl = Rt.Asan_shadow }

let test_shadow_marking () =
  let sh = Sh.create () in
  Sh.mark_allocated sh ~addr:0x1000 ~len:20; (* 2 full granules + 4 bytes *)
  Alcotest.(check bool) "first byte" true (Sh.state sh 0x1000 = Sh.Allocated);
  Alcotest.(check bool) "byte 19" true (Sh.state sh (0x1000 + 19) = Sh.Allocated);
  Alcotest.(check bool) "byte 20 partial granule" true
    (Sh.state sh (0x1000 + 20) = Sh.Redzone);
  Alcotest.(check bool) "beyond" true (Sh.state sh (0x1000 + 24) = Sh.Redzone);
  Sh.mark_freed sh ~addr:0x1000 ~len:20;
  Alcotest.(check bool) "freed" true (Sh.state sh 0x1000 = Sh.Free)

let test_shadow_check_range () =
  let sh = Sh.create () in
  Sh.mark_allocated sh ~addr:0x2000 ~len:32;
  let ok, _ = Sh.check_range sh ~lb:0x2000 ~ub:0x2020 in
  Alcotest.(check bool) "full object ok" true (ok = None);
  let bad, _ = Sh.check_range sh ~lb:0x2018 ~ub:0x2028 in
  Alcotest.(check bool) "runs past the end" true (bad = Some Sh.Redzone);
  (* cost grows with the number of granules scanned *)
  let _, c1 = Sh.check_range sh ~lb:0x2000 ~ub:0x2008 in
  let _, c4 = Sh.check_range sh ~lb:0x2000 ~ub:0x2020 in
  Alcotest.(check bool) "per-granule cost" true (c4 > c1)

let test_shadow_backend_detects_redzone_and_uaf () =
  let mem = Vm.Mem.create () in
  let rt = Rt.create ~options:shadow_opts mem in
  let cpu = Vm.Cpu.create () in
  let p = Rt.malloc rt 64 in
  cpu.regs.(X64.Isa.rbx) <- p;
  Alcotest.(check (option string)) "in bounds ok" None
    (Option.map Rt.kind_name (run_check rt cpu (payload ~lo:0 ~hi:8 X64.Isa.rbx)));
  Alcotest.(check bool) "below object" true
    (run_check rt cpu (payload ~lo:(-8) ~hi:0 X64.Isa.rbx) <> None);
  Rt.free rt p;
  Alcotest.(check (option string)) "UaF via shadow" (Some "use-after-free")
    (Option.map Rt.kind_name (run_check rt cpu (payload ~lo:0 ~hi:8 X64.Isa.rbx)))

let test_shadow_backend_agreement_and_cost () =
  (* both backends agree on detections; the shadow backend's check
     cost grows with the access span (one lookup per 8-byte granule)
     while the metadata-in-redzone backend is constant — the §4.1
     argument for sharing base(ptr) instead of a shadow map *)
  let mem = Vm.Mem.create () in
  let rt = Rt.create ~options:shadow_opts mem in
  let cpu = Vm.Cpu.create () in
  let p = Rt.malloc rt 50 in (* slot 80: data 50, padding 14 *)
  cpu.regs.(X64.Isa.rbx) <- p;
  Alcotest.(check (option string)) "padding overflow caught"
    (Some "out-of-bounds (upper)")
    (Option.map Rt.kind_name (run_check rt cpu (payload ~lo:50 ~hi:51 X64.Isa.rbx)));
  let cost_narrow = Rt.check rt cpu (payload ~lo:0 ~hi:8 X64.Isa.rbx) in
  let cost_wide = Rt.check rt cpu (payload ~lo:0 ~hi:48 X64.Isa.rbx) in
  Alcotest.(check bool) "shadow cost grows with span" true
    (cost_wide > cost_narrow);
  let rt2 = Rt.create mem in
  let q = Rt.malloc rt2 64 in
  cpu.regs.(X64.Isa.rbx) <- q;
  let c8 = Rt.check rt2 cpu (payload ~lo:0 ~hi:8 X64.Isa.rbx) in
  let c48 = Rt.check rt2 cpu (payload ~lo:0 ~hi:48 X64.Isa.rbx) in
  Alcotest.(check int) "lowfat-meta cost is span-independent" c8 c48

let test_shadow_backend_memory_overhead () =
  let mem = Vm.Mem.create () in
  let rt = Rt.create ~options:shadow_opts mem in
  for _ = 1 to 50 do
    ignore (Rt.malloc rt 64)
  done;
  Alcotest.(check bool) "shadow map grows with allocations" true
    (rt.shadow.shadow_bytes > 0);
  let rt2 = Rt.create mem in
  for _ = 1 to 50 do
    ignore (Rt.malloc rt2 64)
  done;
  Alcotest.(check int) "default backend needs no shadow" 0
    rt2.shadow.shadow_bytes

let tests =
  [
    Alcotest.test_case "malloc metadata" `Quick test_malloc_metadata;
    Alcotest.test_case "free marks metadata" `Quick test_free_marks_metadata;
    Alcotest.test_case "free(NULL)" `Quick test_free_null;
    Alcotest.test_case "double free" `Quick test_double_free_detected;
    Alcotest.test_case "malloc(0)" `Quick test_malloc_zero;
    Alcotest.test_case "reuse updates metadata" `Quick
      test_reuse_updates_metadata;
    Alcotest.test_case "check: in bounds" `Quick test_check_in_bounds;
    Alcotest.test_case "check: upper OOB" `Quick test_check_upper_oob;
    Alcotest.test_case "check: padding overflow" `Quick
      test_check_detects_padding_overflow;
    Alcotest.test_case "check: lower OOB" `Quick test_check_lower_oob;
    Alcotest.test_case "check: use-after-free" `Quick
      test_check_use_after_free;
    Alcotest.test_case "check: redzone skip caught by lowfat" `Quick
      test_check_skip_detected_by_lowfat;
    Alcotest.test_case "check: non-fat passes" `Quick test_check_nonfat_passes;
    Alcotest.test_case "check: redzone fallback" `Quick
      test_check_fallback_redzone;
    Alcotest.test_case "size hardening" `Quick test_size_hardening;
    Alcotest.test_case "lowfat off = redzone only" `Quick
      test_lowfat_off_is_redzone_only;
    Alcotest.test_case "log mode dedup" `Quick test_log_mode_dedup;
    Alcotest.test_case "coverage counters" `Quick test_coverage_counters;
    Alcotest.test_case "profiling allowlist" `Quick test_profiling_allowlist;
    Alcotest.test_case "check cost ordering" `Quick test_check_cost_ordering;
    QCheck_alcotest.to_alcotest prop_merged_ub_equivalent;
    Alcotest.test_case "shadow marking" `Quick test_shadow_marking;
    Alcotest.test_case "shadow check_range" `Quick test_shadow_check_range;
    Alcotest.test_case "shadow backend detects" `Quick
      test_shadow_backend_detects_redzone_and_uaf;
    Alcotest.test_case "shadow backend agreement and cost" `Quick
      test_shadow_backend_agreement_and_cost;
    Alcotest.test_case "shadow memory overhead" `Quick
      test_shadow_backend_memory_overhead;
  ]
