(* RELF container serialization. *)

module R = Binfmt.Relf

let sample =
  {
    R.entry = 0x400010;
    pic = false;
    stripped = true;
    sections =
      [
        R.section ~executable:true ~name:".text" ~addr:0x400000
          "\x01\x23\xff\x00binary\ndata";
        R.section ~writable:true ~name:".data" ~addr:0x10000000
          (String.make 64 '\000');
        R.section ~name:".traptab" ~addr:0 "400000 40400000\n";
      ];
  }

let test_roundtrip () =
  let s = R.serialize sample in
  let t = R.parse s in
  Alcotest.(check int) "entry" sample.entry t.entry;
  Alcotest.(check bool) "pic" sample.pic t.pic;
  Alcotest.(check bool) "stripped" sample.stripped t.stripped;
  Alcotest.(check int) "sections" 3 (List.length t.sections);
  List.iter2
    (fun (a : R.section) (b : R.section) ->
      Alcotest.(check string) "name" a.name b.name;
      Alcotest.(check int) "addr" a.addr b.addr;
      Alcotest.(check string) "bytes" a.bytes b.bytes;
      Alcotest.(check bool) "exec" a.executable b.executable;
      Alcotest.(check bool) "writable" a.writable b.writable)
    sample.sections t.sections

let test_file_roundtrip () =
  let path = Filename.temp_file "relf" ".bin" in
  R.save path sample;
  let t = R.load_file path in
  Sys.remove path;
  Alcotest.(check string) "identical" (R.serialize sample) (R.serialize t)

let test_bad_magic () =
  Alcotest.(check bool) "rejects garbage" true
    (match R.parse "ELF\x7fnot this format" with
     | exception R.Parse_error _ -> true
     | _ -> false)

let test_truncated () =
  let s = R.serialize sample in
  let cut = String.sub s 0 (String.length s - 10) in
  Alcotest.(check bool) "rejects truncation" true
    (match R.parse cut with exception R.Parse_error _ -> true | _ -> false)

let test_helpers () =
  Alcotest.(check bool) "find_section" true
    (R.find_section sample ".data" <> None);
  Alcotest.(check bool) "missing section" true
    (R.find_section sample ".bss" = None);
  Alcotest.(check int) "code_size" 15 (R.code_size sample);
  Alcotest.(check int) "total_size"
    (15 + 64 + 16)
    (R.total_size sample);
  Alcotest.(check string) "text_exn" ".text" (R.text_exn sample).name

let test_load_into () =
  let mem = Vm.Mem.create () in
  R.load_into mem sample;
  Alcotest.(check int) "text byte" 0x01 (Vm.Mem.read mem ~addr:0x400000 ~len:1);
  Alcotest.(check int) "data zeroed" 0
    (Vm.Mem.read mem ~addr:0x10000000 ~len:8)

let prop_roundtrip =
  let gen_section =
    QCheck.Gen.(
      let* name = oneofl [ ".text"; ".data"; ".x"; "s" ] in
      let* addr = int_range 0 0x1000000 in
      let* len = int_range 0 200 in
      let* bytes = string_size ~gen:(map Char.chr (int_range 0 255)) (return len) in
      let* e = bool and* w = bool in
      return (R.section ~executable:e ~writable:w ~name ~addr bytes))
  in
  let gen =
    QCheck.Gen.(
      let* entry = int_range 0 0x7fffffff in
      let* pic = bool and* stripped = bool in
      let* sections = list_size (int_range 0 5) gen_section in
      return { R.entry; pic; stripped; sections })
  in
  QCheck.Test.make ~count:300 ~name:"RELF serialize/parse round-trip"
    (QCheck.make gen) (fun t -> R.serialize (R.parse (R.serialize t)) = R.serialize t)

let tests =
  [
    Alcotest.test_case "round-trip" `Quick test_roundtrip;
    Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
    Alcotest.test_case "bad magic" `Quick test_bad_magic;
    Alcotest.test_case "truncated" `Quick test_truncated;
    Alcotest.test_case "helpers" `Quick test_helpers;
    Alcotest.test_case "load into vm" `Quick test_load_into;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
