(* Coverage-guided profiling (paper §5's AFL pointer).

   Run with:  dune exec examples/fuzzing_profiler.exe

   The allow-list is only as good as the test suite that produced it:
   a site never executed during profiling falls back to (Redzone)-only
   checking in production, losing the non-incremental protection.  This
   example profiles a branchy program twice — once with a single naive
   seed, once with the fuzzer growing the suite — and compares the
   resulting production coverage. *)

open Minic.Build

(* input-dependent phases, like a real program's modes *)
let program =
  Minic.Ast.program
    [
      Minic.Ast.func ~name:"main"
        [
          let_ "a" (alloc_elems (i 32));
          let_ "mode" Input;
          let_ "x" Input;
          (* always-on phase *)
          for_ "j" (i 0) (i 8) [ set (v "a") (v "j") (v "j") ];
          (* phases gated on the inputs *)
          if_ (v "mode" >: i 0)
            [ for_ "j" (i 8) (i 16) [ set (v "a") (v "j") (v "j" *: i 2) ] ]
            [];
          if_ (v "mode" >: i 3)
            [ for_ "j" (i 16) (i 24) [ set (v "a") (v "j") (v "j" *: i 3) ] ]
            [];
          if_
            (v "x" &: i 1 =: i 1)
            [ for_ "j" (i 24) (i 32) [ set (v "a") (v "j") (v "j" *: i 5) ] ]
            [];
          let_ "s" (i 0);
          for_ "j" (i 0) (i 32) [ assign "s" (v "s" +: idx (v "a") (v "j")) ];
          print_ (v "s");
          free_ (v "a");
          return_ (i 0);
        ];
    ]

let () =
  print_endline "== coverage-guided profiling ==\n";
  let binary = Minic.Codegen.compile program in

  (* naive: profile with one seed input *)
  let naive_allow = Redfat.profile ~test_suite:[ [ 0; 0 ] ] binary in
  Printf.printf "naive test suite (one input): %d allow-listed sites\n"
    (List.length naive_allow);

  (* fuzzed: grow the suite first *)
  let stats = Fuzz.Fuzzer.fuzz ~seeds:[ [ 0; 0 ] ] ~budget:400 ~seed:11 binary in
  Printf.printf
    "fuzzer: %d executions, corpus of %d inputs, %d/%d sites reached\n"
    stats.executions (List.length stats.corpus) stats.sites_covered
    stats.total_sites;
  let fuzzed_allow = Redfat.profile ~test_suite:stats.corpus binary in
  Printf.printf "fuzzed test suite: %d allow-listed sites\n"
    (List.length fuzzed_allow);

  (* the production coverage difference, measured on a ref-like run *)
  let measure allow =
    let hard =
      Redfat.harden ~opts:(Redfat.Rewrite.production ~allowlist:allow) binary
    in
    let hr = Redfat.run_hardened ~inputs:[ 5; 7 ] hard.binary in
    Redfat.Runtime.coverage_percent hr.rt
  in
  Printf.printf
    "\nproduction coverage on a full-featured input (mode=5, x=7):\n";
  Printf.printf "  allow-list from the naive suite:  %.1f%% full checking\n"
    (measure naive_allow);
  Printf.printf "  allow-list from the fuzzed suite: %.1f%% full checking\n"
    (measure fuzzed_allow);
  print_endline
    "\nevery site the fuzzer reached keeps the stronger (Redzone)+(LowFat)\n\
     protection in production; unreached sites degrade to (Redzone)-only."
