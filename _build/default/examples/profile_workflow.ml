(* The two-phase profile-based hardening workflow (paper §5, Figure 5).

   Run with:  dune exec examples/profile_workflow.exe

   The program below contains the Fortran-style anti-idiom the paper's
   §7.1 found throughout SPEC: an array accessed through a base pointer
   normalized *below* the allocation (fqy(its:ite) -> fqy - K).  Naive
   (LowFat) checking would flag this legitimate access — a false
   positive.  Profiling finds such sites and excludes them from the
   allow-list; the production binary checks them with (Redzone)-only,
   keeping the full complementary check everywhere else. *)

open Minic.Build

(* REAL, DIMENSION(4:36) :: fqy — indexed from 4, normalized base *)
let program =
  Minic.Ast.program
    [
      Minic.Ast.func ~name:"main"
        [
          let_ "fqy" (alloc_elems (i 32));
          let_ "data" (alloc_elems (i 32));
          (* idiomatic accesses: these should keep full protection *)
          for_ "j" (i 0) (i 32) [ set (v "data") (v "j") (v "j" *: i 3) ];
          (* the anti-idiom: fqy(j) for j in 4..36 compiles to
             (fqy - 4*8)[j], an intentionally out-of-bounds base *)
          for_ "j" (i 4) (i 36)
            [ Minic.Ast.Store (E8, v "fqy" -: i 32, v "j", v "j") ];
          let_ "s" (i 0);
          for_ "j" (i 0) (i 32)
            [ assign "s" (v "s" +: idx (v "fqy") (v "j") +: idx (v "data") (v "j")) ];
          print_ (v "s");
          return_ (i 0);
        ];
    ]

let () =
  print_endline "== profile-based false positive elimination ==\n";
  let binary = Minic.Codegen.compile program in

  (* what happens WITHOUT the workflow: full checking everywhere *)
  let naive = Redfat.harden binary in
  let hr = Redfat.run_hardened naive.binary in
  Printf.printf "naive full checking: %s   <- a FALSE POSITIVE\n"
    (Redfat.verdict_to_string hr.verdict);

  (* phase 1: profile against a test suite (Figure 5, step 1) *)
  print_endline "\nphase 1: profiling against the test suite...";
  let allowlist = Redfat.profile ~test_suite:[ [] ] binary in
  Printf.printf "  allow.lst has %d sites\n" (List.length allowlist);
  Profile.Allowlist.save "/tmp/redfat_allow.lst" allowlist;
  print_endline "  (saved to /tmp/redfat_allow.lst, one hex site per line)";

  (* phase 2: production hardening with the allow-list *)
  print_endline "\nphase 2: production hardening with the allow-list...";
  let prod =
    Redfat.harden
      ~opts:(Redfat.Rewrite.production
               ~allowlist:(Profile.Allowlist.load "/tmp/redfat_allow.lst"))
      binary
  in
  Printf.printf "  %d sites -> (Redzone)+(LowFat), %d sites -> (Redzone)-only\n"
    prod.stats.full_sites prod.stats.redzone_sites;
  let hr = Redfat.run_hardened prod.binary in
  Printf.printf "  production run: %s   <- no false positive\n"
    (Redfat.verdict_to_string hr.verdict);

  (* and the production binary still detects real attacks through the
     redzone-only fallback *)
  let attack_prog =
    Minic.Ast.program
      [
        Minic.Ast.func ~name:"main"
          [
            let_ "a" (alloc_elems (i 8));
            let_ "k" Input;
            Minic.Ast.Store (E8, v "a" -: i 32, v "k", i 7);
            return_ (i 0);
          ];
      ]
  in
  let abin = Minic.Codegen.compile attack_prog in
  let allow = Redfat.profile ~test_suite:[ [ 5 ] ] abin in
  let ahard =
    Redfat.harden ~opts:(Redfat.Rewrite.production ~allowlist:allow) abin
  in
  (* k=5 writes a[1]: fine; k=200 overflows through the same site, and
     even though the site is (Redzone)-only, the incremental redzone
     check still fires when the access hits poisoned memory *)
  let ok = Redfat.run_hardened ~inputs:[ 5 ] ahard.binary in
  let bad = Redfat.run_hardened ~inputs:[ 12 ] ahard.binary in
  Printf.printf
    "\nexcluded site, benign input:  %s\nexcluded site, overflow input: %s\n"
    (Redfat.verdict_to_string ok.verdict)
    (Redfat.verdict_to_string bad.verdict);
  print_endline
    "\neven sites excluded from the allow-list keep (Redzone) protection:\n\
     opportunistic hardening never drops below the state of the art."
