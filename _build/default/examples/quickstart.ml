(* Quickstart: harden a binary and watch it stop an attack.

   Run with:  dune exec examples/quickstart.exe

   The victim program reads an index from its input and writes through
   it unchecked — the classic non-incremental heap overflow (paper
   snippet (b), §2.1).  We compile it, run it natively, harden it with
   RedFat, and demonstrate that the benign input still works while the
   attack input is stopped. *)

open Minic.Build

let victim_program =
  Minic.Ast.program
    [
      Minic.Ast.func ~name:"main"
        [
          (* int *array = malloc(8 * sizeof(int)); *)
          let_ "array" (alloc_elems (i 8));
          (* a second heap object the attacker wants to corrupt *)
          let_ "secret" (alloc_elems (i 8));
          set (v "secret") (i 4) (i 42);
          (* int i = input(); array[i] = val;  <- snippet (b) *)
          let_ "idx" Input;
          set (v "array") (v "idx") (i 0x41414141);
          print_ (idx (v "secret") (i 4));
          return_ (i 0);
        ];
    ]

let () =
  print_endline "== RedFat quickstart ==\n";
  (* 1. compile the victim to a stripped binary *)
  let binary = Minic.Codegen.compile victim_program in
  Printf.printf "compiled victim: %d bytes of code (stripped)\n"
    (Binfmt.Relf.code_size binary);

  (* 2. native baseline run, benign input *)
  let run, verdict = Redfat.run_baseline ~inputs:[ 3 ] binary in
  Printf.printf "baseline, idx=3:  secret=%d  (%s)\n"
    (List.hd run.outputs)
    (Redfat.verdict_to_string verdict);

  (* 3. the attack works natively: idx=12 silently corrupts 'secret'
     (12 * 8 bytes skips the redzone gap between the two objects) *)
  let run, _ = Redfat.run_baseline ~inputs:[ 12 ] binary in
  Printf.printf "baseline, idx=12: secret=%d  <- silently corrupted!\n"
    (List.hd run.outputs);

  (* 4. harden the binary: one call *)
  let hard = Redfat.harden binary in
  Printf.printf "\nhardened: %d site(s) instrumented, %d trampoline bytes\n"
    hard.stats.instrumented hard.stats.tramp_bytes;

  (* 5. benign input still works... *)
  let hr = Redfat.run_hardened ~inputs:[ 3 ] hard.binary in
  Printf.printf "hardened, idx=3:  secret=%d  (%s)\n"
    (List.hd hr.run.outputs)
    (Redfat.verdict_to_string hr.verdict);

  (* 6. ...and the attack is stopped before the write lands *)
  let hr = Redfat.run_hardened ~inputs:[ 12 ] hard.binary in
  Printf.printf "hardened, idx=12: %s\n" (Redfat.verdict_to_string hr.verdict);

  (* 7. overhead of the protection on this program *)
  let base, _ = Redfat.run_baseline ~inputs:[ 3 ] binary in
  let hr = Redfat.run_hardened ~inputs:[ 3 ] hard.binary in
  Printf.printf "\noverhead on the benign run: %.2fx (%d -> %d cycles)\n"
    (float_of_int hr.run.cycles /. float_of_int base.cycles)
    base.cycles hr.run.cycles
