(* CVE walkthrough: paper Figure 1 / Example 1 (CVE-2012-4295).

   Run with:  dune exec examples/cve_demo.exe

   wireshark's channelised_fill_sdh_g707_format() writes
   in_fmt->m_vc_index_array[speed-1] = 0 with an attacker-controlled
   'speed'.  A 16-byte redzone catches speed up to ~20; speed=200 skips
   the redzone entirely and lands in an adjacent heap object, which is
   exactly the class of error (Redzone)-only tools miss and the
   (LowFat) component of the complementary check catches. *)

let () =
  print_endline "== CVE-2012-4295 (wireshark) ==\n";
  let case = Workloads.Cve.wireshark in
  let binary = Workloads.Cve.binary case in

  (* show the vulnerable write in the stripped binary: the last indexed
     byte store of fill() is m_vc_index_array[speed-1] = 0 *)
  print_endline "the compiled fill() function contains the vulnerable store:";
  let text = Binfmt.Relf.text_exn binary in
  let stores =
    List.filter_map
      (fun (addr, instr, _) ->
        match instr with
        | X64.Isa.Store (X64.Isa.W1, m, _) when m.idx <> None && m.disp = 0 ->
          Some (addr, instr)
        | _ -> None)
      (X64.Disasm.sweep ~addr:text.addr text.bytes)
  in
  let addr, instr = List.nth stores (List.length stores - 1) in
  Printf.printf "  %#x: %s    <- m_vc_index_array[speed-1] = 0\n" addr
    (X64.Disasm.to_string instr);

  (* sweep 'speed' and record what each tool does *)
  let hard = Redfat.harden binary in
  Printf.printf "\n%8s  %-22s %-12s %s\n" "speed" "RedFat" "Memcheck"
    "note";
  List.iter
    (fun speed ->
      let inputs = [ 4; speed ] in
      let hr = Redfat.run_hardened ~inputs hard.binary in
      let rf =
        match hr.verdict with
        | Redfat.Detected e -> Redfat_rt.Runtime.kind_name e.kind
        | Redfat.Finished _ -> "ok"
        | Redfat.Fault m -> m
      in
      let _, _, mc = Redfat.run_memcheck ~inputs binary in
      let mcs =
        if Baselines.Memcheck.errors mc <> [] then "detected" else "ok"
      in
      let note =
        if speed <= 5 then "in bounds"
        else if speed <= 11 then
          "sub-object overflow inside the struct: invisible at binary level"
        else if speed <= 40 then "reaches poisoned memory: both tools see it"
        else "skips the redzone: only (LowFat) sees it"
      in
      Printf.printf "%8d  %-22s %-12s %s\n" speed rf mcs note)
    [ 1; 5; 8; 15; 200 ];

  print_endline
    "\nspeed=200 is Example 1 of the paper: Memcheck's 16-byte redzone is\n\
     skipped, so the write silently corrupts an adjacent heap object, while\n\
     RedFat's pointer-arithmetic check flags it regardless of the offset."
