examples/profile_workflow.ml: List Minic Printf Profile Redfat
