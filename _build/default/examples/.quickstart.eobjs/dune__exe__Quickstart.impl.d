examples/quickstart.ml: Binfmt List Minic Printf Redfat
