examples/quickstart.mli:
