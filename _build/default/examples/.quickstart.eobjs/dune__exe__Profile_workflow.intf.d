examples/profile_workflow.mli:
