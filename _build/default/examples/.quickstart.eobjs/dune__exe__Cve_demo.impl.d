examples/cve_demo.ml: Baselines Binfmt List Printf Redfat Redfat_rt Workloads X64
