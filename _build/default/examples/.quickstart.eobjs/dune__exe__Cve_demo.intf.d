examples/cve_demo.mli:
