examples/browser_hardening.mli:
