examples/browser_hardening.ml: Binfmt Format List Printf Redfat Redfat_rt String Sys Workloads X64
