examples/fuzzing_profiler.ml: Fuzz List Minic Printf Redfat
