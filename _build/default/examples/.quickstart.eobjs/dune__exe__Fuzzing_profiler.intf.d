examples/fuzzing_profiler.mli:
