(* Hardening a browser-scale binary (paper §7.3).

   Run with:  dune exec examples/browser_hardening.exe

   Builds the Chrome-scale binary (>100k instructions, hundreds of
   functions), hardens all write operations — the configuration the
   paper uses for Google Chrome — and runs browser-like workloads
   through it, reporting the rewriter's scaling statistics and the
   runtime overhead, Kraken-style. *)

let () =
  print_endline "== browser-scale hardening ==\n";
  let binary = Workloads.Chrome.binary () in
  let text = Binfmt.Relf.text_exn binary in
  Printf.printf "input: %d KiB of stripped code, %d instructions\n"
    (String.length text.bytes / 1024)
    (List.length (X64.Disasm.sweep ~addr:text.addr text.bytes));

  let opts =
    { Redfat.Rewrite.optimized with instrument_reads = false (* writes only *) }
  in
  let t0 = Sys.time () in
  let hard = Redfat.harden ~opts binary in
  Printf.printf "rewrite took %.3fs\n\n" (Sys.time () -. t0);
  Format.printf "%a@." Redfat.Rewrite.pp_stats hard.stats;

  (* every patch tactic should have been exercised at this scale *)
  assert (hard.stats.jump_patches > 0);
  assert (hard.stats.evictions > 0);

  let rt_opts =
    { Redfat_rt.Runtime.default_options with
      check_reads = false; size_harden = false }
  in
  print_endline "\nrunning browser workloads through the hardened binary:";
  List.iter
    (fun (name, inputs) ->
      let base, _ = Redfat.run_baseline ~inputs binary in
      let hr = Redfat.run_hardened ~options:rt_opts ~inputs hard.binary in
      Printf.printf "  %-8s %-22s overhead %.2fx\n" name
        (Redfat.verdict_to_string hr.verdict)
        (float_of_int hr.run.cycles /. float_of_int base.cycles))
    Workloads.Chrome.workloads;

  print_endline "\nKraken sub-benchmarks (hardened separately, like Fig. 8):";
  List.iter
    (fun (b : Workloads.Kraken.bench) ->
      let bin = Workloads.Kraken.binary b in
      let inputs = Workloads.Kraken.inputs b in
      let base, _ = Redfat.run_baseline ~inputs bin in
      let h = Redfat.harden ~opts bin in
      let hr = Redfat.run_hardened ~options:rt_opts ~inputs h.binary in
      Printf.printf "  %-26s %.0f%%\n" b.name
        (100. *. float_of_int hr.run.cycles /. float_of_int base.cycles))
    [ Workloads.Kraken.find "ai-astar"; Workloads.Kraken.find "crypto-aes";
      Workloads.Kraken.find "imaging-gaussian-blur" ]
