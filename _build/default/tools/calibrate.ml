(* Dev tool: per-benchmark step counts and VM throughput. *)
let () =
  let total = ref 0 in
  List.iter
    (fun (b : Workloads.Spec.bench) ->
      let bin = Workloads.Spec.binary b in
      let run, verdict = Redfat.run_baseline ~inputs:(Workloads.Spec.ref_inputs b) bin in
      total := !total + run.steps;
      Printf.printf "%-12s steps=%9d cycles=%9d out=%s %s\n%!" b.name run.steps
        run.cycles
        (String.concat "," (List.map string_of_int run.outputs))
        (match verdict with Redfat.Finished _ -> "" | v -> Redfat.verdict_to_string v))
    Workloads.Spec.all;
  Printf.printf "total steps: %d\n" !total
