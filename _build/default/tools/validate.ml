(* Dev tool: validate Table 2 detection semantics before wiring benches. *)

let check_cve (c : Workloads.Cve.case) =
  let bin = Workloads.Cve.binary c in
  let hard = Redfat.harden bin in
  let benign = Redfat.run_hardened hard.binary ~inputs:c.benign_inputs in
  let attack = Redfat.run_hardened hard.binary ~inputs:c.attack_inputs in
  let _, _, mc = Redfat.run_memcheck bin ~inputs:c.attack_inputs in
  Printf.printf "%-14s benign=%s attack=%s memcheck_errors=%d\n%!" c.name
    (Redfat.verdict_to_string benign.verdict)
    (Redfat.verdict_to_string attack.verdict)
    (List.length (Baselines.Memcheck.errors mc))

let () =
  print_endline "== CVEs ==";
  List.iter check_cve Workloads.Cve.all;
  print_endline "== Juliet ==";
  let detected = ref 0 and mc_missed = ref 0 and benign_bad = ref 0 and n = ref 0 in
  List.iter
    (fun (c : Workloads.Juliet.case) ->
      incr n;
      let bin = Workloads.Juliet.binary c in
      let hard = Redfat.harden bin in
      let b = Redfat.run_hardened hard.binary ~inputs:c.benign_inputs in
      (match b.verdict with
       | Redfat.Finished _ -> ()
       | v ->
         incr benign_bad;
         if !benign_bad < 6 then
           Printf.printf "  benign fail %s: %s\n%!" c.id (Redfat.verdict_to_string v));
      let a = Redfat.run_hardened hard.binary ~inputs:c.attack_inputs in
      (match a.verdict with
       | Redfat.Detected _ -> incr detected
       | v ->
         if !n - !detected < 6 then
           Printf.printf "  attack missed %s: %s\n%!" c.id (Redfat.verdict_to_string v));
      let _, _, mc = Redfat.run_memcheck bin ~inputs:c.attack_inputs in
      if Baselines.Memcheck.errors mc = [] then incr mc_missed)
    Workloads.Juliet.all;
  Printf.printf "juliet: %d cases, redfat detected %d, memcheck missed %d, benign failures %d\n"
    !n !detected !mc_missed !benign_bad
