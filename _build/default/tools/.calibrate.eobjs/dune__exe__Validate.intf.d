tools/validate.mli:
