tools/calibrate.ml: List Printf Redfat String Workloads
