tools/validate.ml: Baselines List Printf Redfat Workloads
