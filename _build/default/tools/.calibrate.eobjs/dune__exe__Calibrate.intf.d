tools/calibrate.mli:
