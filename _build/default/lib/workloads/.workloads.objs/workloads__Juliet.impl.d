lib/workloads/juliet.ml: List Minic Printf
