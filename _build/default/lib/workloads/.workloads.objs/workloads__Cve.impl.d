lib/workloads/cve.ml: Binfmt Minic
