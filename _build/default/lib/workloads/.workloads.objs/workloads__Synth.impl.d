lib/workloads/synth.ml: List Minic Printf Random X64
