lib/workloads/chrome.ml: Kernels List Minic Printf
