lib/workloads/spec.ml: Binfmt Kernels List Minic Printf
