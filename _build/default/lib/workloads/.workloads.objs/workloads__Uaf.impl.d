lib/workloads/uaf.ml: List Minic Printf
