lib/workloads/kernels.ml: Minic X64
