lib/workloads/kraken.ml: Kernels List Minic
