(** A Juliet-style CWE-122 (heap buffer overflow) test generator.

    Reproduces the structure of the NIST Juliet subset used in paper
    Table 2: 480 distinct test cases = 15 overflow patterns x 32
    control/data-flow variants, each with a *non-incremental* overflow
    whose offset skips the 16-byte redzone into an adjacent heap
    object.  Every case has a benign input (in bounds) and an attack
    input (skipping), like Juliet's good/bad function pairs.

    Layout facts the offsets rely on: target arrays hold 8 elements
    (64 B + 16 B metadata = 80 B slots in the low-fat heap; 64 B block
    + 16 B redzone = 80 B stride under Memcheck), so element offsets
    >= 12 (or <= -12) land squarely inside the neighbouring object for
    both layouts, touching no redzone. *)

open Minic.Ast
open Minic.Build

type case = {
  id : string;
  pattern : int;
  variant : int;
  program : program;
  benign_inputs : int list;
  attack_inputs : int list;
}

let array_elems = 8
let skip_offset = 12 (* elements: past own slot and neighbour's redzone *)

(* Each pattern yields (body, benign_input, attack_input): [body] are
   the statements performing the (possibly overflowing) access on
   arrays "buf" (target) and "pre" (the object allocated just before),
   with the attacker value already in local "idx". *)
let patterns :
    (string * (unit -> stmt list) * int * int) list =
  [
    ( "direct-index-write",
      (fun () -> [ set (v "buf") (v "idx") (i 0x42) ]),
      3, skip_offset );
    ( "index-arith-write",
      (fun () -> [ set (v "buf") (v "idx" +: i 2) (i 0x42) ]),
      3, skip_offset );
    ( "strided-loop-write",
      (fun () ->
        [ for_ "j" (i 0) (i 2) [ set (v "buf") (v "j" *: v "idx") (i 7) ] ]),
      3, skip_offset );
    ( "byte-offset-write",
      (fun () -> [ Store (E1, v "bbuf", v "idx" *: i 8, i 0x41) ]),
      3, skip_offset );
    ( "copy-loop-offset",
      (fun () ->
        [
          for_ "j" (i 0) (i 2)
            [ set (v "buf") (v "idx" +: v "j") (idx (v "pre") (v "j")) ];
        ]),
      3, skip_offset );
    ( "size-miscalc",
      (fun () ->
        [
          let_ "m" (alloc_elems (v "idx" %: i 4 +: i 1));
          let_ "mbig" (alloc_bytes (i 512));
          set (v "m") (v "idx") (i 5);
          free_ (v "m");
          free_ (v "mbig");
        ]),
      3, 40 (* benign: 4 elems, write m[3]; attack: 1 elem, write m[40]
               lands inside mbig under Memcheck's layout *) );
    ( "struct-member-overflow",
      (fun () ->
        (* struct { hdr[2]; payload[6] }: payload index from input *)
        [ setk (v "buf") (v "idx") 2 (i 9) ]),
      2, skip_offset );
    ( "negative-index-write",
      (* -8 elements: skips the 16-byte metadata redzone below the
         object and lands in the previous object's data, in both the
         low-fat and the Memcheck layout *)
      (fun () -> [ set (v "buf") (i 0 -: v "idx") (i 0x43) ]),
      0, 8 );
    ( "scaled-index-write",
      (fun () -> [ set (v "buf") (v "idx" *: i 2) (i 0x44) ]),
      3, 6 );
    ( "read-then-write",
      (fun () ->
        [
          let_ "t" (idx (v "buf") (v "idx"));
          set (v "buf") (v "idx") (v "t" +: i 1);
        ]),
      3, skip_offset );
    ( "flattened-2d-write",
      (fun () ->
        (* buf viewed as 2x4: row index attacker controlled *)
        [ set (v "buf") (v "idx" *: i 4 +: i 1) (i 6) ]),
      1, 3 (* row 3 -> element 13: inside the neighbouring object *) );
    ( "alloc-too-small",
      (fun () ->
        [
          let_ "m" (alloc_elems (i 4));
          let_ "mbig" (alloc_bytes (i 512));
          set (v "m") (v "idx") (i 3);
          free_ (v "m");
          free_ (v "mbig");
        ]),
      2, skip_offset );
    ( "swap-elements",
      (fun () ->
        [
          let_ "t" (idx (v "buf") (i 0));
          set (v "buf") (v "idx") (v "t");
        ]),
      3, skip_offset );
    ( "conditional-path-write",
      (fun () ->
        [
          if_ (v "idx" >: i 1)
            [ set (v "buf") (v "idx") (i 8) ]
            [ set (v "buf") (i 0) (i 8) ];
        ]),
      3, skip_offset );
    ( "write-after-scan",
      (fun () ->
        [
          let_ "acc" (i 0);
          for_ "j" (i 0) (i array_elems)
            [ assign "acc" (v "acc" +: idx (v "buf") (v "j")) ];
          set (v "buf") (v "idx" +: (v "acc" *: i 0)) (i 2);
        ]),
      3, skip_offset );
  ]

(* Data-flow laundering of the attacker index (Juliet's dataflow
   variants): how Input reaches local "idx". *)
let launder variant : stmt list =
  match variant land 3 with
  | 0 -> [ let_ "idx" Input ]
  | 1 ->
    [
      let_ "t1" Input; let_ "t2" (v "t1"); let_ "t3" (v "t2");
      let_ "idx" (v "t3");
    ]
  | 2 ->
    [
      let_ "cell" (alloc_elems (i 4));
      set (v "cell") (i 1) Input;
      let_ "idx" (idx (v "cell") (i 1));
      free_ (v "cell");
    ]
  | _ -> [ let_ "t1" Input; let_ "idx" (v "t1" +: i 7 -: i 7) ]

(* Control-flow wrapping (Juliet's control-flow variants): the body
   runs directly, behind if(1), inside a run-once loop, or behind a
   call chain of depth 1..3. *)
let build_case pi (pname, body, benign, attack) variant : case =
  let guard = (variant lsr 2) land 1 in
  let depth = (variant lsr 3) land 3 in
  let core : stmt list = body () in
  let guarded =
    if guard = 1 then [ if_ (i 1 >: i 0) core [] ] else core
  in
  let alloc_and_act =
    [
      (* allocation order fixes the adjacency both layouts rely on:
         pre | bbuf | buf | post, 80-byte strides in both *)
      let_ "pre" (alloc_elems (i array_elems));
      let_ "bbuf" (alloc_bytes (i (array_elems * 8)));
      let_ "buf" (alloc_elems (i array_elems));
      let_ "post" (alloc_elems (i array_elems));
      for_ "j" (i 0) (i array_elems)
        [
          set (v "pre") (v "j") (v "j");
          set (v "buf") (v "j") (i 0);
          set (v "post") (v "j") (i 1);
        ];
    ]
    @ launder variant @ guarded
    @ [ print_ (idx (v "post") (i 0)); return_ (i 0) ]
  in
  let funcs =
    if depth = 0 then [ func ~name:"main" alloc_and_act ]
    else begin
      (* main -> helper1 -> ... -> helperN holding the body *)
      let rec chain d =
        if d = depth then [ func ~name:(Printf.sprintf "h%d" d) alloc_and_act ]
        else
          func ~name:(Printf.sprintf "h%d" d)
            [ return_ (call (Printf.sprintf "h%d" (d + 1)) []) ]
          :: chain (d + 1)
      in
      func ~name:"main" [ return_ (call "h1" []) ] :: chain 1
    end
  in
  {
    id = Printf.sprintf "CWE122_%s_v%02d" pname variant;
    pattern = pi;
    variant;
    program = program funcs;
    benign_inputs = [ benign ];
    attack_inputs = [ attack ];
  }

let all : case list =
  List.concat
    (List.mapi
       (fun pi p -> List.init 32 (fun variant -> build_case pi p variant))
       patterns)

let binary (c : case) = Minic.Codegen.compile c.program
