(** The Kraken browser-benchmark suite (paper Figure 8).

    Fourteen kernels named after the Kraken sub-benchmarks, run under
    write-only hardening (the configuration used for Chrome in §7.3).
    Each maps to the computational kernel closest to the real
    sub-benchmark's hot loop. *)

open Minic.Ast
open Minic.Build

type bench = { name : string; kernel : string -> func; n : int }

let program (b : bench) : program =
  Minic.Ast.program
    [
      func ~name:"main"
        [
          let_ "n" Input;
          let_ "s" (call "kernel" [ v "n" ]);
          print_ (v "s");
          return_ (i 0);
        ];
      b.kernel "kernel";
    ]

let inputs (b : bench) = [ b.n ]
let binary (b : bench) = Minic.Codegen.compile (program b)

let mk name kernel n = { name; kernel; n }

let all : bench list =
  [
    mk "ai-astar" Kernels.grid_path 60;
    mk "audio-beat-detection" Kernels.beat_detect 2;
    mk "audio-dft" Kernels.dft 1;
    mk "audio-fft" Kernels.fft 8;
    mk "audio-oscillator" Kernels.oscillator 8;
    mk "imaging-gaussian-blur" Kernels.stencil2d 12;
    mk "imaging-darkroom" Kernels.darkroom 9;
    mk "imaging-desaturate" Kernels.desaturate 14;
    mk "json-parse-financial" Kernels.parse_financial 8;
    mk "json-stringify-tinderbox" Kernels.stringify 450;
    mk "crypto-aes" Kernels.aes_rounds 15;
    mk "crypto-ccm" Kernels.ccm_mac 25;
    mk "crypto-pbkdf2" Kernels.pbkdf2 9;
    mk "crypto-sha256-iterative" Kernels.sha256_rounds 8;
  ]

let find name = List.find (fun b -> b.name = name) all
