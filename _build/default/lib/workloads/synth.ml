(** Random well-defined MiniC programs, for property-based testing.

    Every generated program is memory-safe by construction (all array
    indices are reduced modulo the array length, base pointers are
    never displaced), so:

    - rewriting at any optimization level must preserve its output;
    - full (Redzone)+(LowFat) checking must report no errors
      (no false positives on idiomatic code);
    - the profiling workflow must allow-list every executed site. *)

open Minic.Ast
open Minic.Build

type gen = { rng : Random.State.t; mutable fresh : int }

let int g n = Random.State.int g.rng n

let fresh g prefix =
  g.fresh <- g.fresh + 1;
  Printf.sprintf "%s%d" prefix g.fresh

(* arrays available in scope: (name, length) *)
let pick g xs = List.nth xs (int g (List.length xs))

(* force an arbitrary integer expression into [0, len): Rem alone is
   not enough because the VM's Rem keeps the dividend's sign *)
let safe_idx e len =
  Bin (Rem, Bin (Add, Bin (Rem, e, Int len), Int len), Int len)

let rec gen_expr g ~depth ~locals ~arrays : expr =
  if depth = 0 || int g 4 = 0 then
    match int g 3 with
    | 0 -> i (int g 1000)
    | 1 when locals <> [] -> v (pick g locals)
    | _ -> i (int g 100 + 1)
  else
    match int g 8 with
    | 0 | 1 ->
      Bin
        ( pick g [ Add; Sub; Mul ],
          gen_expr g ~depth:(depth - 1) ~locals ~arrays,
          gen_expr g ~depth:(depth - 1) ~locals ~arrays )
    | 2 ->
      (* safe division: divisor >= 1 *)
      Bin
        ( pick g [ Div; Rem ],
          gen_expr g ~depth:(depth - 1) ~locals ~arrays,
          Bin (Add, Bin (Band, gen_expr g ~depth:0 ~locals ~arrays, i 255), i 1)
        )
    | 3 ->
      Bin
        ( pick g [ Band; Bor; Bxor ],
          gen_expr g ~depth:(depth - 1) ~locals ~arrays,
          gen_expr g ~depth:(depth - 1) ~locals ~arrays )
    | 4 -> Bin (pick g [ Shl; Shr ], gen_expr g ~depth:(depth - 1) ~locals ~arrays, Int (int g 8))
    | 5 when arrays <> [] ->
      (* in-bounds load: a[e mod len] *)
      let a, len = pick g arrays in
      Load (E8, v a, safe_idx (gen_expr g ~depth:(depth - 1) ~locals ~arrays) len)
    | 6 ->
      Cmp
        ( pick g [ X64.Isa.Eq; X64.Isa.Lt; X64.Isa.Gt ],
          gen_expr g ~depth:(depth - 1) ~locals ~arrays,
          gen_expr g ~depth:(depth - 1) ~locals ~arrays )
    | _ -> i (int g 500)

let rec gen_stmt g ~depth ~locals ~arrays : stmt =
  match int g (if depth > 0 then 8 else 6) with
  | 0 | 1 when arrays <> [] ->
    let a, len = pick g arrays in
    Store
      ( E8, v a,
        safe_idx (gen_expr g ~depth:2 ~locals ~arrays) len,
        gen_expr g ~depth:2 ~locals ~arrays )
  | 2 when locals <> [] ->
    (* only the base accumulators are assignable: writing to a loop
       counter could produce a non-terminating program *)
    Set (pick g [ "x"; "y" ], gen_expr g ~depth:2 ~locals ~arrays)
  | 3 when arrays <> [] ->
    (* a mergeable unrolled store run *)
    let a, len = pick g arrays in
    let base = int g (max 1 (len - 4)) in
    Multi_store
      ( E8, v a, i base,
        List.init (1 + int g 3) (fun k ->
            (k, gen_expr g ~depth:1 ~locals ~arrays)) )
  | 4 when locals <> [] ->
    If
      ( Cmp (X64.Isa.Lt, v (pick g locals), gen_expr g ~depth:1 ~locals ~arrays),
        [ gen_stmt g ~depth:(depth - 1) ~locals ~arrays ],
        [ gen_stmt g ~depth:(depth - 1) ~locals ~arrays ] )
  | 6 | 7 ->
    let x = fresh g "t" in
    For
      ( x, i 0, i (2 + int g 6),
        [ gen_stmt g ~depth:(depth - 1) ~locals:(x :: locals) ~arrays ] )
  | _ when locals <> [] ->
    Set (pick g [ "x"; "y" ], gen_expr g ~depth:2 ~locals ~arrays)
  | _ -> Expr (gen_expr g ~depth:1 ~locals ~arrays)

(** Generate a program from [seed].  [size] scales the statement count. *)
let program ?(size = 12) ~seed () : program =
  let g = { rng = Random.State.make [| seed |]; fresh = 0 } in
  let n_arrays = 1 + int g 3 in
  let arrays = List.init n_arrays (fun k -> (Printf.sprintf "a%d" k, 4 + int g 28)) in
  let alloc_stmts =
    List.map (fun (a, len) -> let_ a (alloc_elems (i len))) arrays
  in
  let init_stmts =
    List.map (fun (a, len) -> for_ "ii" (i 0) (i len) [ set (v a) (v "ii") (v "ii") ]) arrays
  in
  let locals = [ "x"; "y" ] in
  let body =
    List.init size (fun _ -> gen_stmt g ~depth:2 ~locals ~arrays)
  in
  let checksum =
    List.concat_map
      (fun (a, len) ->
        [ for_ "ii" (i 0) (i len) [ assign "x" (v "x" +: idx (v a) (v "ii")) ] ])
      arrays
  in
  let frees = List.map (fun (a, _) -> free_ (v a)) arrays in
  Minic.Ast.program
    [
      func ~name:"main"
        (alloc_stmts @ init_stmts
        @ [ let_ "x" (i 0); let_ "y" (i 7) ]
        @ body @ checksum @ frees
        @ [ print_ (v "x" +: v "y"); return_ (i 0) ]);
    ]
