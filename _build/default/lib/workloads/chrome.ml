(** The Chrome-scale binary (paper §7.3).

    A very large stripped binary — hundreds of distinct functions,
    well over 100k instructions — assembled from parameterized clones
    of every kernel family, plus a browser-like dispatcher main.  The
    scalability claim this exercises is about the *rewriter*: it must
    patch every instrumentable instruction of a binary much larger
    than all SPEC stand-ins combined, and the result must still run.

    Only a small slice of the functions is ever called at runtime
    (like a browser running one benchmark page), but the rewriter has
    no way to know that and instruments everything. *)

open Minic.Ast
open Minic.Build

(** Build the program with [copies] clones of each kernel family
    (default sized to overshoot 100k instructions). *)
let program ?(copies = 56) () : program =
  let clones =
    List.concat_map
      (fun (fam, builder) ->
        List.init copies (fun k -> builder (Printf.sprintf "%s_%d" fam k)))
      Kernels.all_builders
    (* plus indirect-dispatch interpreters, the JS-engine-like part *)
    @ List.concat (List.init (copies / 8 + 1) (fun k ->
          Kernels.interp_funcs (Printf.sprintf "interp_%d" k)))
  in
  (* main dispatches on the input like a JS engine picking a workload:
     call one representative from a few families *)
  let main =
    func ~name:"main"
      [
        let_ "which" Input;
        let_ "n" Input;
        let_ "s" (i 0);
        if_ (v "which" =: i 0)
          [ assign "s" (call "crypto_rounds_0" [ v "n" ]) ]
          [
            if_ (v "which" =: i 1)
              [ assign "s" (call "stencil2d_0" [ v "n" ]) ]
              [
                if_ (v "which" =: i 2)
                  [ assign "s" (call "byte_scan_0" [ v "n" ]) ]
                  [
                    if_ (v "which" =: i 4)
                      [ assign "s" (call "interp_0" [ v "n" ]) ]
                      [ assign "s" (call "hash_table_0" [ v "n" ]) ];
                  ];
              ];
          ];
        print_ (v "s");
        return_ (i 0);
      ]
  in
  Minic.Ast.program (main :: clones)

let binary ?copies () = Minic.Codegen.compile (program ?copies ())

(** The four runtime workloads the dispatcher can execute. *)
let workloads = [ ("crypto", [ 0; 200 ]); ("stencil", [ 1; 8 ]);
                  ("bytes", [ 2; 50 ]); ("hash", [ 3; 1000 ]);
                  ("interp", [ 4; 2000 ]) ]
