(** Models of the four real-world CVEs of paper Table 2.

    Each model reproduces the vulnerability's *offset structure*: an
    attacker-controlled index produces a non-incremental out-of-bounds
    heap access that skips past any 16-byte redzone into an adjacent
    heap object — exactly the class of error that redzone-only tools
    (Memcheck) miss and the (LowFat) component catches. *)

open Minic.Ast
open Minic.Build

type case = {
  name : string;
  cve : string;
  description : string;
  program : program;
  benign_inputs : int list;
  attack_inputs : int list;
}

(** CVE-2012-4295 (wireshark): paper Figure 1.  The sdh_g707_format_t
    struct is heap-allocated; [m_vc_index_array] has 5 byte elements at
    offset 2; the write [m_vc_index_array\[speed-1\] = 0] is attacker
    controlled through [speed]. *)
let wireshark : case =
  let fill =
    (* channelised_fill_sdh_g707_format(in_fmt, vc_size, speed) *)
    func ~name:"fill" ~params:[ "fmt"; "vc_size"; "speed" ]
      [
        if_ (v "vc_size" =: i 0) [ return_ (i (-1)) ] [];
        set1 (v "fmt") (i 0) (v "vc_size");       (* m_vc_size *)
        set1 (v "fmt") (i 1) (v "speed");         (* m_sdh_line_rate *)
        (* memset(&m_vc_index_array[0], 0xff, DECHAN_MAX_AUG_INDEX) *)
        for_ "j" (i 0) (i 5) [ set1k (v "fmt") (v "j") 2 (i 255) ];
        (* in_fmt->m_vc_index_array[speed - 1] = 0   <- the bug *)
        Store (E1, v "fmt", v "speed" -: i 1 +: i 2, i 0);
        return_ (i 0);
      ]
  in
  let main =
    func ~name:"main"
      [
        let_ "fmt" (alloc_bytes (i 13));
        (* the adjacent heap region an attacker would corrupt: sized so
           the crafted offset lands in live heap data under both the
           low-fat and the glibc-style layout *)
        let_ "victim" (alloc_bytes (i 256));
        for_ "j" (i 0) (i 13) [ set1 (v "victim") (v "j") (i 0x41) ];
        let_ "vc_size" Input;
        let_ "speed" Input;
        let_ "r" (call "fill" [ v "fmt"; v "vc_size"; v "speed" ]);
        print_ (v "r");
        print_ (idx1 (v "victim") (i 0));
        return_ (i 0);
      ]
  in
  {
    name = "wireshark";
    cve = "CVE-2012-4295";
    description = "non-incremental byte write via packet 'speed' field";
    program = program [ main; fill ];
    benign_inputs = [ 4; 3 ];   (* vc_size=4, speed=3: in bounds *)
    attack_inputs = [ 4; 200 ]; (* speed=200 skips the redzone *)
  }

(** CVE-2007-3476 (php/libgd): GIF LZW decoding writes a color-table
    entry at an attacker-controlled code index. *)
let php_gd_gif : case =
  let main =
    func ~name:"main"
      [
        let_ "table" (alloc_elems (i 16));
        let_ "heapmeta" (alloc_elems (i 16));
        for_ "j" (i 0) (i 16) [ set (v "heapmeta") (v "j") (i 7) ];
        let_ "code" Input;
        (* td->tbl[code] = ...  with code from the compressed stream *)
        set (v "table") (v "code") (i 0x61616161);
        print_ (idx (v "heapmeta") (i 0));
        return_ (i 0);
      ]
  in
  {
    name = "php-gd-gif";
    cve = "CVE-2007-3476";
    description = "LZW color-table write at attacker code index";
    program = program [ main ];
    benign_inputs = [ 7 ];
    attack_inputs = [ 22 ]; (* 16 elems -> slot 144B; idx 22 lands in the
                               adjacent object, past the redzone *)
  }

(** CVE-2016-1903 (php/gd imagerotate): out-of-bounds *read* through an
    attacker-controlled rotation offset. *)
let php_gd_rotate : case =
  let main =
    func ~name:"main"
      [
        let_ "src" (alloc_elems (i 16));
        let_ "secret" (alloc_elems (i 16));
        for_ "j" (i 0) (i 16)
          [
            set (v "src") (v "j") (v "j");
            set (v "secret") (v "j") (i 0x5ec2e7);
          ];
        let_ "off" Input;
        (* gdImageGetPixel reads past the row end *)
        let_ "pix" (idx (v "src") (v "off"));
        print_ (v "pix");
        return_ (i 0);
      ]
  in
  {
    name = "php-gd-rotate";
    cve = "CVE-2016-1903";
    description = "imagerotate out-of-bounds read (info leak)";
    program = program [ main ];
    benign_inputs = [ 5 ];
    attack_inputs = [ 22 ];
  }

(** CVE-2016-2335 (7zip): UDF volume parsing uses an unvalidated
    PartitionRef as an index into the partitions array. *)
let sevenzip_udf : case =
  let main =
    func ~name:"main"
      [
        let_ "partitions" (alloc_elems (i 8));
        let_ "objects" (alloc_elems (i 8));
        for_ "j" (i 0) (i 8)
          [
            set (v "partitions") (v "j") (v "j" +: i 100);
            set (v "objects") (v "j") (i 0xdead);
          ];
        let_ "ref" Input;
        (* partition = vol.PartitionMaps[msd.PartitionRef] ... *)
        let_ "part" (idx (v "partitions") (v "ref"));
        (* ... then state is written back through it *)
        set (v "partitions") (v "ref") (v "part" +: i 1);
        print_ (idx (v "objects") (i 0));
        return_ (i 0);
      ]
  in
  {
    name = "7zip-udf";
    cve = "CVE-2016-2335";
    description = "UDF PartitionRef used unvalidated as array index";
    program = program [ main ];
    benign_inputs = [ 3 ];
    attack_inputs = [ 14 ]; (* 8 elems -> 80B slot; idx 14 = adjacent data *)
  }

let all = [ php_gd_gif; php_gd_rotate; wireshark; sevenzip_udf ]

let binary (c : case) : Binfmt.Relf.t = Minic.Codegen.compile c.program
