(** Reusable MiniC computational kernels.

    Each builder produces a complete function [fun name(n) -> checksum]
    mimicking the dominant loop structure of one family of SPEC /
    Kraken benchmarks: hashing, sorting, pointer chasing, stencils,
    dynamic programming, n-body, sparse algebra, crypto rounds, ...
    The builders are reused across suites with different scales, so
    every binary has a realistic instruction mix (indexed operands,
    unrolled mergeable stores, spill traffic, calls). *)

open Minic.Ast
open Minic.Build

let n = v "n"

(** Hash-table insert/lookup mix (perlbench, xalancbmk flavour). *)
let hash_table name : func =
  func ~name ~params:[ "n" ]
    [
      let_ "tab" (alloc_elems (i 1024));
      for_ "t" (i 0) n
        [
          let_ "h" (v "t" *: i 2654435761 >>: 8 &: i 1023);
          set (v "tab") (v "h") (idx (v "tab") (v "h") +: v "t" +: i 1);
          (* probe a second slot, like chained lookup *)
          let_ "h2" (v "h" +: i 1 &: i 1023);
          set (v "tab") (v "h2") (idx (v "tab") (v "h2") ^: v "t");
        ];
      let_ "s" (i 0);
      for_ "j" (i 0) (i 1024) [ assign "s" (v "s" +: idx (v "tab") (v "j")) ];
      free_ (v "tab");
      return_ (v "s");
    ]

(** Block sort + run-length pass (bzip2 flavour). *)
let block_sort name : func =
  func ~name ~params:[ "n" ]
    [
      let_ "blk" (alloc_elems (i 64));
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          for_ "j" (i 0) (i 64)
            [ set (v "blk") (v "j") (v "j" *: i 37 +: v "t" &: i 255) ];
          (* insertion sort the block *)
          for_ "j" (i 1) (i 64)
            [
              let_ "key" (idx (v "blk") (v "j"));
              let_ "p" (v "j" -: i 1);
              let_ "go" (i 1);
              while_ (v "go" =: i 1)
                [
                  if_ (v "p" >=: i 0)
                    [
                      if_
                        (idx (v "blk") (v "p") >: v "key")
                        [
                          setk (v "blk") (v "p") 1 (idx (v "blk") (v "p"));
                          assign "p" (v "p" -: i 1);
                        ]
                        [ assign "go" (i 0) ];
                    ]
                    [ assign "go" (i 0) ];
                ];
              setk (v "blk") (v "p") 1 (v "key");
            ];
          (* run-length checksum *)
          for_ "j" (i 1) (i 64)
            [
              if_
                (idx (v "blk") (v "j") =: idxk (v "blk") (v "j") (-1))
                [ assign "s" (v "s" +: i 1) ]
                [ assign "s" (v "s" +: idx (v "blk") (v "j")) ];
            ];
        ];
      free_ (v "blk");
      return_ (v "s");
    ]

(** Pointer chasing over array-encoded linked structures (gcc, mcf). *)
let graph_chase name : func =
  func ~name ~params:[ "n" ]
    [
      let_ "next" (alloc_elems (i 512));
      let_ "cost" (alloc_elems (i 512));
      for_ "j" (i 0) (i 512)
        [
          set (v "next") (v "j") (v "j" *: i 167 +: i 13 &: i 511);
          set (v "cost") (v "j") (v "j" &: i 63);
        ];
      let_ "s" (i 0);
      let_ "p" (i 0);
      for_ "t" (i 0) n
        [
          assign "s" (v "s" +: idx (v "cost") (v "p"));
          (* relax the edge, then follow it *)
          set (v "cost") (v "p") (idx (v "cost") (v "p") +: i 1 &: i 255);
          assign "p" (idx (v "next") (v "p"));
        ];
      free_ (v "next");
      free_ (v "cost");
      return_ (v "s");
    ]

(** Board scanning with neighbour inspection (gobmk, sjeng). *)
let board_scan name : func =
  let dim = 32 in
  func ~name ~params:[ "n" ]
    [
      let_ "b" (alloc_elems (i (dim * dim)));
      for_ "j" (i 0) (i (dim * dim)) [ set (v "b") (v "j") (v "j" &: i 3) ];
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          for_ "y" (i 1) (i (dim - 1))
            [
              for_ "x" (i 1) (i (dim - 1))
                [
                  let_ "p" (v "y" *: i dim +: v "x");
                  let_ "lib"
                    (idxk (v "b") (v "p") 1
                    +: idxk (v "b") (v "p") (-1)
                    +: idxk (v "b") (v "p") dim
                    +: idxk (v "b") (v "p") (-dim));
                  if_ (v "lib" >: i 6)
                    [ set (v "b") (v "p") (v "lib" &: i 3) ]
                    [ assign "s" (v "s" +: v "lib") ];
                ];
            ];
        ];
      free_ (v "b");
      return_ (v "s");
    ]

(** Dynamic-programming matrix fill (hmmer Viterbi, h264ref SAD). *)
let dp_matrix name : func =
  let cols = 48 in
  func ~name ~params:[ "n" ]
    [
      let_ "row" (alloc_elems (i cols));
      let_ "prev" (alloc_elems (i cols));
      for_ "j" (i 0) (i cols) [ set (v "prev") (v "j") (v "j" *: i 7) ];
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          for_ "j" (i 1) (i cols)
            [
              let_ "a" (idxk (v "prev") (v "j") (-1) +: i 3);
              let_ "c" (idx (v "prev") (v "j") +: i 1);
              let_ "m"
                (Bin
                   ( Add,
                     v "a",
                     Bin (Mul, Cmp (X64.Isa.Gt, v "c", v "a"), v "c" -: v "a") ));
              set (v "row") (v "j") (v "m");
            ];
          (* swap via copy *)
          for_ "j" (i 0) (i cols)
            [ set (v "prev") (v "j") (idx (v "row") (v "j")) ];
          assign "s" (v "s" +: idx (v "prev") (i (cols - 1)));
        ];
      free_ (v "row");
      free_ (v "prev");
      return_ (v "s");
    ]

(** Single-pass xor/shift gate application (libquantum). *)
let gate_array name : func =
  func ~name ~params:[ "n" ]
    [
      let_ "q" (alloc_elems (i 2048));
      for_ "j" (i 0) (i 2048) [ set (v "q") (v "j") (v "j") ];
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          for_ "j" (i 0) (i 2048)
            [
              set (v "q") (v "j")
                (idx (v "q") (v "j") ^: (v "t" <<: 3) |: i 1);
            ];
          assign "s" (v "s" +: idx (v "q") (v "t" &: i 2047));
        ];
      free_ (v "q");
      return_ (v "s");
    ]

(** Binary-heap push/pop event loop (omnetpp). *)
let event_queue name : func =
  func ~name ~params:[ "n" ]
    [
      let_ "heap" (alloc_elems (i 256));
      let_ "sz" (i 0);
      let_ "s" (i 0);
      let_ "seed" (i 12345);
      for_ "t" (i 0) n
        [
          assign "seed" (v "seed" *: i 1103515245 +: i 12345 &: i 0xffffff);
          if_ (Bin (Band, v "sz" <: i 255, v "seed" &: i 1 =: i 1))
            [ (* push *)
              set (v "heap") (v "sz") (v "seed" &: i 65535);
              let_ "c" (v "sz");
              assign "sz" (v "sz" +: i 1);
              let_ "go" (i 1);
              while_ (v "go" =: i 1)
                [
                  if_ (v "c" >: i 0)
                    [
                      let_ "par" (v "c" -: i 1 >>: 1);
                      if_
                        (Cmp
                           ( X64.Isa.Lt,
                             idx (v "heap") (v "c"),
                             idx (v "heap") (v "par") ))
                        [
                          let_ "tmp" (idx (v "heap") (v "par"));
                          set (v "heap") (v "par") (idx (v "heap") (v "c"));
                          set (v "heap") (v "c") (v "tmp");
                          assign "c" (v "par");
                        ]
                        [ assign "go" (i 0) ];
                    ]
                    [ assign "go" (i 0) ];
                ];
            ]
            [ (* pop *)
              if_ (v "sz" >: i 0)
                [
                  assign "s" (v "s" +: idx (v "heap") (i 0));
                  assign "sz" (v "sz" -: i 1);
                  set (v "heap") (i 0) (idx (v "heap") (v "sz"));
                ]
                [];
            ];
        ];
      free_ (v "heap");
      return_ (v "s" +: v "sz");
    ]

(** Grid scan with open-list minimum search (astar). *)
let grid_path name : func =
  let dim = 24 in
  func ~name ~params:[ "n" ]
    [
      let_ "g" (alloc_elems (i (dim * dim)));
      let_ "open_" (alloc_elems (i 64));
      for_ "j" (i 0) (i (dim * dim)) [ set (v "g") (v "j") (v "j" %: i 9 +: i 1) ];
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          for_ "j" (i 0) (i 64)
            [ set (v "open_") (v "j") (v "j" *: v "t" +: v "j" &: i 511) ];
          let_ "best" (i 0);
          for_ "j" (i 1) (i 64)
            [
              if_
                (Cmp
                   ( X64.Isa.Lt,
                     idx (v "open_") (v "j"),
                     idx (v "open_") (v "best") ))
                [ assign "best" (v "j") ]
                [];
            ];
          let_ "p" (idx (v "open_") (v "best") %: i (dim * dim));
          assign "s" (v "s" +: idx (v "g") (v "p"));
          set (v "g") (v "p") (idx (v "g") (v "p") +: i 1);
        ];
      free_ (v "g");
      free_ (v "open_");
      return_ (v "s");
    ]

(** 2-D relaxation stencil with unrolled (mergeable) writes
    (milc, lbm, cactusADM, leslie3d, GemsFDTD flavour). *)
let stencil2d name : func =
  let dim = 16 in
  func ~name ~params:[ "n" ]
    [
      let_ "g" (alloc_elems (i (dim * dim)));
      let_ "h" (alloc_elems (i (dim * dim)));
      for_ "j" (i 0) (i (dim * dim)) [ set (v "g") (v "j") (v "j" &: i 127) ];
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          for_ "y" (i 1) (i (dim - 1))
            [
              (* x advances by 2: two mergeable stores per iteration *)
              let_ "x" (i 1);
              while_ (v "x" <: i (dim - 1))
                [
                  let_ "p" (v "y" *: i dim +: v "x");
                  let_ "a0"
                    (idxk (v "g") (v "p") (-1)
                    +: idxk (v "g") (v "p") 1
                    +: idxk (v "g") (v "p") (-dim)
                    +: idxk (v "g") (v "p") dim);
                  let_ "a1"
                    (idx (v "g") (v "p")
                    +: idxk (v "g") (v "p") 2
                    +: idxk (v "g") (v "p") (1 - dim)
                    +: idxk (v "g") (v "p") (1 + dim));
                  msets (v "h") (v "p") [ (0, v "a0" >>: 2); (1, v "a1" >>: 2) ];
                  assign "x" (v "x" +: i 2);
                ];
            ];
          (* copy back *)
          for_ "j" (i 0) (i (dim * dim))
            [ set (v "g") (v "j") (idx (v "h") (v "j")) ];
          assign "s" (v "s" +: idx (v "g") (i (dim + 1)));
        ];
      free_ (v "g");
      free_ (v "h");
      return_ (v "s");
    ]

(** Pairwise force accumulation (namd, gromacs). *)
let nbody name : func =
  let parts = 24 in
  func ~name ~params:[ "n" ]
    [
      let_ "px" (alloc_elems (i parts));
      let_ "f" (alloc_elems (i parts));
      for_ "j" (i 0) (i parts)
        [
          set (v "px") (v "j") (v "j" *: i 17 +: i 3);
          set (v "f") (v "j") (i 0);
        ];
      for_ "t" (i 0) n
        [
          for_ "a" (i 0) (i parts)
            [
              for_ "b" (i 0) (i parts)
                [
                  let_ "d" (idx (v "px") (v "a") -: idx (v "px") (v "b"));
                  let_ "d2" (v "d" *: v "d" +: i 1);
                  set (v "f") (v "a")
                    (idx (v "f") (v "a") +: (v "d" *: i 1000 /: v "d2"));
                ];
            ];
          for_ "a" (i 0) (i parts)
            [
              set (v "px") (v "a")
                (idx (v "px") (v "a") +: (idx (v "f") (v "a") >>: 6) &: i 4095);
            ];
        ];
      let_ "s" (i 0);
      for_ "j" (i 0) (i parts) [ assign "s" (v "s" +: idx (v "px") (v "j")) ];
      free_ (v "px");
      free_ (v "f");
      return_ (v "s");
    ]

(** Sparse matrix-vector product, CSR-ish (dealII, soplex, calculix). *)
let sparse_mv name : func =
  let rows = 64 and nnz_per = 6 in
  func ~name ~params:[ "n" ]
    [
      let_ "colidx" (alloc_elems (i (rows * nnz_per)));
      let_ "vals" (alloc_elems (i (rows * nnz_per)));
      let_ "x" (alloc_elems (i rows));
      let_ "y" (alloc_elems (i rows));
      for_ "j" (i 0) (i (rows * nnz_per))
        [
          set (v "colidx") (v "j") (v "j" *: i 31 %: i rows);
          set (v "vals") (v "j") (v "j" &: i 15);
        ];
      for_ "j" (i 0) (i rows) [ set (v "x") (v "j") (v "j" +: i 1) ];
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          for_ "r" (i 0) (i rows)
            [
              let_ "acc" (i 0);
              for_ "e" (i 0) (i nnz_per)
                [
                  let_ "o" (v "r" *: i nnz_per +: v "e");
                  assign "acc"
                    (v "acc"
                    +: (idx (v "vals") (v "o")
                       *: idx (v "x") (idx (v "colidx") (v "o"))));
                ];
              set (v "y") (v "r") (v "acc");
            ];
          assign "s" (v "s" +: idx (v "y") (v "t" %: i rows));
        ];
      free_ (v "colidx");
      free_ (v "vals");
      free_ (v "x");
      free_ (v "y");
      return_ (v "s");
    ]

(** Fixed-point ray/sphere intersection loop (povray). *)
let ray_trace name : func =
  func ~name ~params:[ "n" ]
    [
      let_ "spheres" (alloc_elems (i 24)); (* 8 spheres x (x,y,r) *)
      for_ "j" (i 0) (i 24) [ set (v "spheres") (v "j") (v "j" *: i 29 &: i 255) ];
      let_ "img" (alloc_elems (i 64));
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          for_ "px" (i 0) (i 64)
            [
              let_ "rx" (v "px" &: i 7);
              let_ "ry" (v "px" >>: 3);
              let_ "hit" (i 0);
              for_ "o" (i 0) (i 8)
                [
                  let_ "dx" (idx (v "spheres") (v "o" *: i 3) -: (v "rx" <<: 4));
                  let_ "dy"
                    (idxk (v "spheres") (v "o" *: i 3) 1 -: (v "ry" <<: 4));
                  let_ "rr" (idxk (v "spheres") (v "o" *: i 3) 2);
                  if_
                    (Cmp
                       ( X64.Isa.Le,
                         (v "dx" *: v "dx") +: (v "dy" *: v "dy"),
                         v "rr" *: v "rr" ))
                    [ assign "hit" (v "hit" +: i 1) ]
                    [];
                ];
              set (v "img") (v "px") (v "hit");
            ];
          assign "s" (v "s" +: idx (v "img") (v "t" &: i 63));
        ];
      free_ (v "spheres");
      free_ (v "img");
      return_ (v "s");
    ]

(** Dot-product chains over rows (sphinx3, tonto, gamess flavour). *)
let spectral name : func =
  let dim = 64 in
  func ~name ~params:[ "n" ]
    [
      let_ "m" (alloc_elems (i (dim * 8)));
      let_ "vec" (alloc_elems (i dim));
      for_ "j" (i 0) (i (dim * 8)) [ set (v "m") (v "j") (v "j" &: i 31) ];
      for_ "j" (i 0) (i dim) [ set (v "vec") (v "j") (v "j" +: i 1) ];
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          for_ "r" (i 0) (i 8)
            [
              let_ "acc" (i 0);
              for_ "j" (i 0) (i dim)
                [
                  assign "acc"
                    (v "acc"
                    +: (idx (v "m") (v "r" *: i dim +: v "j")
                       *: idx (v "vec") (v "j")));
                ];
              set (v "vec") (v "r" *: i 7 +: i 1 %: i dim)
                (v "acc" >>: 5 &: i 1023);
            ];
          assign "s" (v "s" +: idx (v "vec") (v "t" %: i dim));
        ];
      free_ (v "m");
      free_ (v "vec");
      return_ (v "s");
    ]

(** Byte-stream scanning/tokenizing (json parsing, perl regex flavour). *)
let byte_scan name : func =
  let len = 1024 in
  func ~name ~params:[ "n" ]
    [
      let_ "buf" (alloc_bytes (i len));
      for_ "j" (i 0) (i len)
        [ Store (E1, v "buf", v "j", v "j" *: i 7 +: i 13 &: i 127) ];
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          let_ "depth" (i 0);
          for_ "j" (i 0) (i len)
            [
              let_ "c" (idx1 (v "buf") (v "j"));
              if_ (v "c" <: i 32)
                [ assign "depth" (v "depth" +: i 1) ]
                [
                  if_ (v "c" >: i 96)
                    [ assign "s" (v "s" +: v "c") ]
                    [ assign "s" (v "s" +: v "depth") ];
                ];
            ];
          set1 (v "buf") (v "t" &: i (len - 1)) (v "s" &: i 127);
        ];
      free_ (v "buf");
      return_ (v "s");
    ]

(** Crypto round mixing: table lookups + xor/rotate (aes, sha256). *)
let crypto_rounds name : func =
  func ~name ~params:[ "n" ]
    [
      let_ "sbox" (alloc_elems (i 256));
      for_ "j" (i 0) (i 256)
        [ set (v "sbox") (v "j") (v "j" *: i 197 +: i 71 &: i 255) ];
      let_ "st0" (i 0x12345678);
      let_ "st1" (i 0x9abcdef0);
      let_ "st2" (i 0x55aa55aa);
      let_ "st3" (i 0x0f0f0f0f);
      for_ "t" (i 0) n
        [
          for_ "r" (i 0) (i 16)
            [
              assign "st0"
                (idx (v "sbox") (v "st0" &: i 255)
                ^: (v "st1" <<: 3) +: (v "st2" >>: 5));
              assign "st1" (idx (v "sbox") (v "st1" &: i 255) ^: v "st3");
              assign "st2" (v "st2" +: idx (v "sbox") (v "st0" &: i 255));
              assign "st3" (v "st3" ^: (v "st0" <<: 1) &: i 0xffffffff);
              assign "st0" (v "st0" &: i 0xffffffff);
              assign "st1" (v "st1" &: i 0xffffffff);
              assign "st2" (v "st2" &: i 0xffffffff);
            ];
        ];
      free_ (v "sbox");
      return_ (v "st0" +: v "st1" +: v "st2" +: v "st3");
    ]

(** Bytecode-interpreter dispatch loop through a heap-resident table
    of function pointers (perl/gcc/javascript-engine flavour); also the
    kernel that exercises indirect calls in the rewriter's CFG
    recovery. *)
let interp_funcs name : func list =
  let op ~opname body = func ~name:(name ^ "_" ^ opname) ~params:[ "x" ] body in
  let handlers =
    [
      op ~opname:"add" [ return_ (v "x" +: i 3) ];
      op ~opname:"mul" [ return_ (v "x" *: i 5 &: i 0xffff) ];
      op ~opname:"xor" [ return_ (v "x" ^: i 0x5a5a) ];
      op ~opname:"shr" [ return_ (v "x" >>: 1 |: i 1) ];
    ]
  in
  let main =
    func ~name ~params:[ "n" ]
      [
        (* the dispatch table lives on the heap, like a vtable *)
        let_ "tab" (alloc_elems (i 4));
        set (v "tab") (i 0) (addr_of (name ^ "_add"));
        set (v "tab") (i 1) (addr_of (name ^ "_mul"));
        set (v "tab") (i 2) (addr_of (name ^ "_xor"));
        set (v "tab") (i 3) (addr_of (name ^ "_shr"));
        let_ "acc" (i 1);
        let_ "pc" (i 0);
        for_ "t" (i 0) n
          [
            let_ "opc" (v "pc" +: v "acc" &: i 3);
            assign "acc" (call_ptr (idx (v "tab") (v "opc")) [ v "acc" ]);
            assign "pc" (v "pc" +: i 1);
          ];
        free_ (v "tab");
        return_ (v "acc");
      ]
  in
  main :: handlers

(** All builders, for ballast generation (chrome-scale binaries). *)
let all_builders : (string * (string -> func)) list =
  [
    ("hash_table", hash_table);
    ("block_sort", block_sort);
    ("graph_chase", graph_chase);
    ("board_scan", board_scan);
    ("dp_matrix", dp_matrix);
    ("gate_array", gate_array);
    ("event_queue", event_queue);
    ("grid_path", grid_path);
    ("stencil2d", stencil2d);
    ("nbody", nbody);
    ("sparse_mv", sparse_mv);
    ("ray_trace", ray_trace);
    ("spectral", spectral);
    ("byte_scan", byte_scan);
    ("crypto_rounds", crypto_rounds);
  ]

(* ------------------------------------------------------------------ *)
(* Second kernel wave: one distinct dominant loop per SPEC benchmark.  *)
(* ------------------------------------------------------------------ *)

(** Network-simplex arc relaxation over arc arrays (mcf). *)
let arc_relax name : func =
  let arcs = 256 in
  func ~name ~params:[ "n" ]
    [
      let_ "tail" (alloc_elems (i arcs));
      let_ "head" (alloc_elems (i arcs));
      let_ "costa" (alloc_elems (i arcs));
      let_ "pot" (alloc_elems (i 64));
      for_ "j" (i 0) (i arcs)
        [
          set (v "tail") (v "j") (v "j" *: i 7 &: i 63);
          set (v "head") (v "j") (v "j" *: i 13 +: i 5 &: i 63);
          set (v "costa") (v "j") (v "j" &: i 127);
        ];
      for_ "j" (i 0) (i 64) [ set (v "pot") (v "j") (v "j" *: i 3) ];
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          for_ "j" (i 0) (i arcs)
            [
              (* reduced cost = cost - pot[tail] + pot[head] *)
              let_ "rc"
                (idx (v "costa") (v "j")
                -: idx (v "pot") (idx (v "tail") (v "j"))
                +: idx (v "pot") (idx (v "head") (v "j")));
              if_ (v "rc" <: i 0)
                [
                  set (v "pot") (idx (v "tail") (v "j"))
                    (idx (v "pot") (idx (v "tail") (v "j")) +: i 1);
                  assign "s" (v "s" +: i 1);
                ]
                [];
            ];
        ];
      free_ (v "tail"); free_ (v "head"); free_ (v "costa"); free_ (v "pot");
      return_ (v "s");
    ]

(** Alpha-beta-flavoured move generation with an explicit move stack
    (sjeng). *)
let move_search name : func =
  func ~name ~params:[ "n" ]
    [
      let_ "board" (alloc_elems (i 64));
      let_ "moves" (alloc_elems (i 128));
      for_ "j" (i 0) (i 64) [ set (v "board") (v "j") (v "j" *: i 11 &: i 7) ];
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          (* generate *)
          let_ "top" (i 0);
          for_ "sq" (i 0) (i 64)
            [
              if_
                (idx (v "board") (v "sq") &: i 1 =: i 1)
                [
                  set (v "moves") (v "top") (v "sq" *: i 8 +: (v "t" &: i 7));
                  assign "top" (v "top" +: i 1);
                ]
                [];
            ];
          (* score and unmake *)
          for_ "m" (i 0) (v "top")
            [
              let_ "mv" (idx (v "moves") (v "m"));
              let_ "to_" (v "mv" &: i 63);
              let_ "old" (idx (v "board") (v "to_"));
              set (v "board") (v "to_") (v "old" ^: i 3);
              assign "s" (v "s" +: (v "old" &: i 7));
              set (v "board") (v "to_") (v "old");
            ];
        ];
      free_ (v "board"); free_ (v "moves");
      return_ (v "s");
    ]

(** Sum-of-absolute-differences block matching over byte frames
    (h264ref motion estimation). *)
let sad_match name : func =
  let w = 32 in
  func ~name ~params:[ "n" ]
    [
      let_ "cur" (alloc_bytes (i (w * 8)));
      let_ "refr" (alloc_bytes (i (w * 8)));
      for_ "j" (i 0) (i (w * 8))
        [
          set1 (v "cur") (v "j") (v "j" *: i 31 &: i 255);
          set1 (v "refr") (v "j") (v "j" *: i 37 +: i 9 &: i 255);
        ];
      let_ "best" (i 99999999);
      for_ "t" (i 0) n
        [
          for_ "dx" (i 0) (i 8)
            [
              let_ "sad" (i 0);
              for_ "p" (i 0) (i w)
                [
                  let_ "d"
                    (idx1 (v "cur") (v "p" <<: 3)
                    -: idx1 (v "refr") ((v "p" <<: 3) +: v "dx"));
                  (* |d| without branches: (d^(d>>63)) - (d>>63) *)
                  let_ "m" (Bin (Shr, v "d" <<: 1, Int 1));
                  assign "sad" (v "sad" +: (v "d" *: v "d"));
                  expr (v "m");
                ];
              if_ (v "sad" <: v "best") [ assign "best" (v "sad") ] [];
            ];
        ];
      free_ (v "cur"); free_ (v "refr");
      return_ (v "best");
    ]

(** DOM-like tree walk over heap node records (xalancbmk).  Nodes are
    4-element records: [tag; first_child; next_sibling; value]. *)
let tree_walk name : func =
  let nodes = 128 in
  func ~name ~params:[ "n" ]
    [
      let_ "pool" (alloc_elems (i (nodes * 4)));
      (* a fixed binary-ish tree: child = 2j+1, sibling = 2j+2 *)
      for_ "j" (i 0) (i nodes)
        [
          set (v "pool") (v "j" *: i 4) (v "j" &: i 15);
          setk (v "pool") (v "j" *: i 4) 1
            (Bin
               ( Mul,
                 Cmp (X64.Isa.Lt, v "j" *: i 2 +: i 1, i nodes),
                 v "j" *: i 2 +: i 1 ));
          setk (v "pool") (v "j" *: i 4) 2
            (Bin
               ( Mul,
                 Cmp (X64.Isa.Lt, v "j" *: i 2 +: i 2, i nodes),
                 v "j" *: i 2 +: i 2 ));
          setk (v "pool") (v "j" *: i 4) 3 (v "j" *: i 5 &: i 255);
        ];
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          (* iterative DFS with an explicit stack *)
          let_ "stk" (alloc_elems (i 64));
          set (v "stk") (i 0) (i 0);
          let_ "sp" (i 1);
          while_ (v "sp" >: i 0)
            [
              assign "sp" (v "sp" -: i 1);
              let_ "node" (idx (v "stk") (v "sp"));
              assign "s" (v "s" +: idxk (v "pool") (v "node" *: i 4) 3);
              let_ "c" (idxk (v "pool") (v "node" *: i 4) 1);
              let_ "sib" (idxk (v "pool") (v "node" *: i 4) 2);
              if_ (Bin (Band, v "c" >: i 0, v "sp" <: i 63))
                [
                  set (v "stk") (v "sp") (v "c");
                  assign "sp" (v "sp" +: i 1);
                ]
                [];
              if_ (Bin (Band, v "sib" >: i 0, v "sp" <: i 63))
                [
                  set (v "stk") (v "sp") (v "sib");
                  assign "sp" (v "sp" +: i 1);
                ]
                [];
            ];
          free_ (v "stk");
        ];
      free_ (v "pool");
      return_ (v "s");
    ]

(** D2Q5-flavoured lattice update with two fields (lbm / cactusADM). *)
let lattice3 name : func =
  let dim = 14 in
  func ~name ~params:[ "n" ]
    [
      let_ "f0" (alloc_elems (i (dim * dim)));
      let_ "f1" (alloc_elems (i (dim * dim)));
      let_ "rho" (alloc_elems (i (dim * dim)));
      for_ "j" (i 0) (i (dim * dim))
        [
          set (v "f0") (v "j") (v "j" &: i 63);
          set (v "f1") (v "j") (v "j" *: i 3 &: i 63);
          set (v "rho") (v "j") (i 0);
        ];
      for_ "t" (i 0) n
        [
          for_ "y" (i 1) (i (dim - 1))
            [
              for_ "x" (i 1) (i (dim - 1))
                [
                  let_ "p" (v "y" *: i dim +: v "x");
                  let_ "d" (idx (v "f0") (v "p") +: idx (v "f1") (v "p"));
                  msets (v "rho") (v "p") [ (0, v "d" >>: 1) ];
                  set (v "f0") (v "p")
                    (idxk (v "f0") (v "p") 1 +: idxk (v "f0") (v "p") (-1)
                    >>: 1);
                  set (v "f1") (v "p")
                    (idxk (v "f1") (v "p") dim
                    +: idxk (v "f1") (v "p") (-dim)
                    >>: 1);
                ];
            ];
        ];
      let_ "s" (i 0);
      for_ "j" (i 0) (i (dim * dim)) [ assign "s" (v "s" +: idx (v "rho") (v "j")) ];
      free_ (v "f0"); free_ (v "f1"); free_ (v "rho");
      return_ (v "s");
    ]

(** 1-D PDE sweep with flux limiting (zeusmp flavour). *)
let pde1d name : func =
  let cells = 256 in
  func ~name ~params:[ "n" ]
    [
      let_ "u" (alloc_elems (i cells));
      let_ "flux" (alloc_elems (i cells));
      for_ "j" (i 0) (i cells) [ set (v "u") (v "j") (v "j" *: i 9 &: i 1023) ];
      for_ "t" (i 0) n
        [
          for_ "j" (i 1) (i (cells - 1))
            [
              let_ "du" (idxk (v "u") (v "j") 1 -: idx (v "u") (v "j"));
              (* limited flux: clamp du to [-64, 64] *)
              if_ (v "du" >: i 64) [ assign "du" (i 64) ] [];
              if_ (v "du" <: i (-64)) [ assign "du" (i (-64)) ] [];
              set (v "flux") (v "j") (v "du");
            ];
          for_ "j" (i 1) (i (cells - 1))
            [
              set (v "u") (v "j")
                (idx (v "u") (v "j")
                +: (idx (v "flux") (v "j") -: idxk (v "flux") (v "j") (-1)
                   >>: 2));
            ];
        ];
      let_ "s" (i 0);
      for_ "j" (i 0) (i cells) [ assign "s" (v "s" +: idx (v "u") (v "j")) ];
      free_ (v "u"); free_ (v "flux");
      return_ (v "s");
    ]

(** 3-D 7-point stencil (bwaves). *)
let stencil3d name : func =
  let d = 8 in
  func ~name ~params:[ "n" ]
    [
      let_ "g" (alloc_elems (i (d * d * d)));
      let_ "h" (alloc_elems (i (d * d * d)));
      for_ "j" (i 0) (i (d * d * d)) [ set (v "g") (v "j") (v "j" &: i 255) ];
      for_ "t" (i 0) n
        [
          for_ "z" (i 1) (i (d - 1))
            [
              for_ "y" (i 1) (i (d - 1))
                [
                  for_ "x" (i 1) (i (d - 1))
                    [
                      let_ "p" (v "z" *: i (d * d) +: (v "y" *: i d) +: v "x");
                      let_ "acc"
                        (idx (v "g") (v "p")
                        +: idxk (v "g") (v "p") 1
                        +: idxk (v "g") (v "p") (-1)
                        +: idxk (v "g") (v "p") d
                        +: idxk (v "g") (v "p") (-d)
                        +: idxk (v "g") (v "p") (d * d)
                        +: idxk (v "g") (v "p") (-(d * d)));
                      set (v "h") (v "p") (v "acc" /: i 7);
                    ];
                ];
            ];
          for_ "j" (i 0) (i (d * d * d))
            [ set (v "g") (v "j") (idx (v "h") (v "j")) ];
        ];
      let_ "s" (i 0);
      for_ "j" (i 0) (i (d * d * d)) [ assign "s" (v "s" +: idx (v "g") (v "j")) ];
      free_ (v "g"); free_ (v "h");
      return_ (v "s");
    ]

(** FDTD E/H leapfrog field update (GemsFDTD). *)
let fdtd2d name : func =
  let dim = 16 in
  func ~name ~params:[ "n" ]
    [
      let_ "ez" (alloc_elems (i (dim * dim)));
      let_ "hx" (alloc_elems (i (dim * dim)));
      let_ "hy" (alloc_elems (i (dim * dim)));
      for_ "j" (i 0) (i (dim * dim))
        [
          set (v "ez") (v "j") (v "j" &: i 127);
          set (v "hx") (v "j") (i 0);
          set (v "hy") (v "j") (i 0);
        ];
      for_ "t" (i 0) n
        [
          (* H update *)
          for_ "y" (i 0) (i (dim - 1))
            [
              for_ "x" (i 0) (i (dim - 1))
                [
                  let_ "p" (v "y" *: i dim +: v "x");
                  set (v "hx") (v "p")
                    (idx (v "hx") (v "p")
                    -: (idxk (v "ez") (v "p") dim -: idx (v "ez") (v "p")
                       >>: 3));
                  set (v "hy") (v "p")
                    (idx (v "hy") (v "p")
                    +: (idxk (v "ez") (v "p") 1 -: idx (v "ez") (v "p")
                       >>: 3));
                ];
            ];
          (* E update *)
          for_ "y" (i 1) (i dim)
            [
              for_ "x" (i 1) (i dim)
                [
                  let_ "p" (v "y" *: i dim +: v "x" %: i (dim * dim));
                  set (v "ez") (v "p")
                    (idx (v "ez") (v "p")
                    +: (idx (v "hy") (v "p") -: idxk (v "hy") (v "p") (-1)
                       -: idx (v "hx") (v "p")
                       +: idxk (v "hx") (v "p") (-dim)
                       >>: 3)
                    &: i 0xffff);
                ];
            ];
        ];
      let_ "s" (i 0);
      for_ "j" (i 0) (i (dim * dim)) [ assign "s" (v "s" +: idx (v "ez") (v "j")) ];
      free_ (v "ez"); free_ (v "hx"); free_ (v "hy");
      return_ (v "s");
    ]

(** Integer LU-flavoured elimination (soplex simplex pivots). *)
let lu_decomp name : func =
  let d = 14 in
  func ~name ~params:[ "n" ]
    [
      let_ "m" (alloc_elems (i (d * d)));
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          for_ "j" (i 0) (i (d * d))
            [ set (v "m") (v "j") (v "j" *: i 23 +: v "t" &: i 255 |: i 1) ];
          for_ "k" (i 0) (i (d - 1))
            [
              let_ "piv" (idx (v "m") (v "k" *: i d +: v "k") |: i 1);
              for_ "r" (v "k" +: i 1) (i d)
                [
                  let_ "f" (idx (v "m") (v "r" *: i d +: v "k") /: v "piv");
                  for_ "c" (v "k") (i d)
                    [
                      set (v "m") (v "r" *: i d +: v "c")
                        (idx (v "m") (v "r" *: i d +: v "c")
                        -: (v "f" *: idx (v "m") (v "k" *: i d +: v "c"))
                        &: i 0xffff);
                    ];
                ];
            ];
          assign "s" (v "s" +: idx (v "m") (i (d * d - 1)));
        ];
      free_ (v "m");
      return_ (v "s");
    ]

(** Finite-element assembly: per-element scatter-add into a global
    matrix (calculix). *)
let fe_assemble name : func =
  let nels = 48 and ndof = 96 in
  func ~name ~params:[ "n" ]
    [
      let_ "conn" (alloc_elems (i (nels * 4)));
      let_ "kmat" (alloc_elems (i ndof));
      for_ "j" (i 0) (i (nels * 4))
        [ set (v "conn") (v "j") (v "j" *: i 17 %: i ndof) ];
      for_ "j" (i 0) (i ndof) [ set (v "kmat") (v "j") (i 0) ];
      for_ "t" (i 0) n
        [
          for_ "e" (i 0) (i nels)
            [
              (* a 4-dof element: scatter its contributions *)
              for_ "a" (i 0) (i 4)
                [
                  let_ "ga" (idx (v "conn") (v "e" *: i 4 +: v "a"));
                  let_ "acc" (i 0);
                  for_ "b" (i 0) (i 4)
                    [
                      let_ "gb" (idx (v "conn") (v "e" *: i 4 +: v "b"));
                      assign "acc" (v "acc" +: (v "ga" +: v "gb" &: i 31));
                    ];
                  set (v "kmat") (v "ga") (idx (v "kmat") (v "ga") +: v "acc");
                ];
            ];
        ];
      let_ "s" (i 0);
      for_ "j" (i 0) (i ndof) [ assign "s" (v "s" +: idx (v "kmat") (v "j")) ];
      free_ (v "conn"); free_ (v "kmat");
      return_ (v "s");
    ]

(** Quartic loop nest of two-electron integrals (gamess). *)
let integrals name : func =
  let nb = 8 in
  func ~name ~params:[ "n" ]
    [
      let_ "zeta" (alloc_elems (i nb));
      let_ "fock" (alloc_elems (i (nb * nb)));
      for_ "j" (i 0) (i nb) [ set (v "zeta") (v "j") (v "j" *: i 7 +: i 3) ];
      for_ "j" (i 0) (i (nb * nb)) [ set (v "fock") (v "j") (i 0) ];
      for_ "t" (i 0) n
        [
          for_ "a" (i 0) (i nb)
            [
              for_ "b" (i 0) (i nb)
                [
                  for_ "c" (i 0) (i nb)
                    [
                      let_ "zab" (idx (v "zeta") (v "a") *: idx (v "zeta") (v "b"));
                      let_ "zc" (idx (v "zeta") (v "c"));
                      let_ "eri" (v "zab" /: (v "zc" +: i 1) &: i 1023);
                      set (v "fock") (v "a" *: i nb +: v "b")
                        (idx (v "fock") (v "a" *: i nb +: v "b") +: v "eri");
                    ];
                ];
            ];
        ];
      let_ "s" (i 0);
      for_ "j" (i 0) (i (nb * nb)) [ assign "s" (v "s" +: idx (v "fock") (v "j")) ];
      free_ (v "zeta"); free_ (v "fock");
      return_ (v "s");
    ]

(** 2-D wave equation with three time levels (wrf dynamics). *)
let wave2d name : func =
  let dim = 16 in
  func ~name ~params:[ "n" ]
    [
      let_ "prev2" (alloc_elems (i (dim * dim)));
      let_ "cur" (alloc_elems (i (dim * dim)));
      let_ "nxt" (alloc_elems (i (dim * dim)));
      for_ "j" (i 0) (i (dim * dim))
        [
          set (v "prev2") (v "j") (v "j" &: i 63);
          set (v "cur") (v "j") (v "j" *: i 3 &: i 63);
        ];
      for_ "t" (i 0) n
        [
          for_ "y" (i 1) (i (dim - 1))
            [
              for_ "x" (i 1) (i (dim - 1))
                [
                  let_ "p" (v "y" *: i dim +: v "x");
                  let_ "lap"
                    (idxk (v "cur") (v "p") 1
                    +: idxk (v "cur") (v "p") (-1)
                    +: idxk (v "cur") (v "p") dim
                    +: idxk (v "cur") (v "p") (-dim)
                    -: (idx (v "cur") (v "p") <<: 2));
                  set (v "nxt") (v "p")
                    ((idx (v "cur") (v "p") <<: 1)
                    -: idx (v "prev2") (v "p")
                    +: (v "lap" >>: 2) &: i 4095);
                ];
            ];
          for_ "j" (i 0) (i (dim * dim))
            [
              set (v "prev2") (v "j") (idx (v "cur") (v "j"));
              set (v "cur") (v "j") (idx (v "nxt") (v "j"));
            ];
        ];
      let_ "s" (i 0);
      for_ "j" (i 0) (i (dim * dim)) [ assign "s" (v "s" +: idx (v "cur") (v "j")) ];
      free_ (v "prev2"); free_ (v "cur"); free_ (v "nxt");
      return_ (v "s");
    ]

(** Gaussian-mixture scoring over feature frames (sphinx3). *)
let gmm_eval name : func =
  let feat = 16 and mix = 8 in
  func ~name ~params:[ "n" ]
    [
      let_ "mean" (alloc_elems (i (mix * feat)));
      let_ "x" (alloc_elems (i feat));
      for_ "j" (i 0) (i (mix * feat)) [ set (v "mean") (v "j") (v "j" *: i 5 &: i 255) ];
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          for_ "j" (i 0) (i feat)
            [ set (v "x") (v "j") (v "t" *: i 13 +: v "j" &: i 255) ];
          let_ "best" (i 99999999);
          for_ "m" (i 0) (i mix)
            [
              let_ "d2" (i 0);
              for_ "j" (i 0) (i feat)
                [
                  let_ "d" (idx (v "x") (v "j") -: idx (v "mean") (v "m" *: i feat +: v "j"));
                  assign "d2" (v "d2" +: (v "d" *: v "d"));
                ];
              if_ (v "d2" <: v "best") [ assign "best" (v "d2") ] [];
            ];
          assign "s" (v "s" +: v "best");
        ];
      free_ (v "mean"); free_ (v "x");
      return_ (v "s");
    ]

(** Pairwise forces with a neighbour list and distance cutoff
    (gromacs). *)
let cutoff_forces name : func =
  let parts = 32 and neigh = 8 in
  func ~name ~params:[ "n" ]
    [
      let_ "px" (alloc_elems (i parts));
      let_ "nl" (alloc_elems (i (parts * neigh)));
      let_ "f" (alloc_elems (i parts));
      for_ "j" (i 0) (i parts)
        [
          set (v "px") (v "j") (v "j" *: i 19 &: i 1023);
          set (v "f") (v "j") (i 0);
        ];
      for_ "j" (i 0) (i (parts * neigh))
        [ set (v "nl") (v "j") (Bin (Rem, v "j" *: i 11 +: i 3, Int parts)) ];
      for_ "t" (i 0) n
        [
          for_ "a" (i 0) (i parts)
            [
              for_ "k" (i 0) (i neigh)
                [
                  let_ "b" (idx (v "nl") (v "a" *: i neigh +: v "k"));
                  let_ "d" (idx (v "px") (v "a") -: idx (v "px") (v "b"));
                  let_ "d2" (v "d" *: v "d");
                  if_ (v "d2" <: i 65536)
                    [
                      set (v "f") (v "a")
                        (idx (v "f") (v "a") +: (v "d" *: i 100 /: (v "d2" +: i 1)));
                    ]
                    [];
                ];
            ];
          for_ "a" (i 0) (i parts)
            [
              set (v "px") (v "a")
                (idx (v "px") (v "a") +: (idx (v "f") (v "a") >>: 5) &: i 1023);
            ];
        ];
      let_ "s" (i 0);
      for_ "j" (i 0) (i parts) [ assign "s" (v "s" +: idx (v "px") (v "j")) ];
      free_ (v "px"); free_ (v "nl"); free_ (v "f");
      return_ (v "s");
    ]

(* ------------------------------------------------------------------ *)
(* Kraken-specific kernels (Figure 8): one per sub-benchmark.          *)
(* ------------------------------------------------------------------ *)

(** AES-flavoured rounds: sbox lookups + column mixing over a 16-byte
    state (crypto-aes). *)
let aes_rounds name : func =
  func ~name ~params:[ "n" ]
    [
      let_ "sbox" (alloc_elems (i 256));
      let_ "st" (alloc_elems (i 16));
      for_ "j" (i 0) (i 256)
        [ set (v "sbox") (v "j") (v "j" *: i 197 +: i 99 &: i 255) ];
      for_ "j" (i 0) (i 16) [ set (v "st") (v "j") (v "j" *: i 17) ];
      for_ "t" (i 0) n
        [
          for_ "r" (i 0) (i 10)
            [
              (* SubBytes + AddRoundKey *)
              for_ "j" (i 0) (i 16)
                [
                  set (v "st") (v "j")
                    (idx (v "sbox") (idx (v "st") (v "j") &: i 255)
                    ^: (v "r" *: i 13 +: v "j"));
                ];
              (* MixColumns-ish: each column folded *)
              for_ "c" (i 0) (i 4)
                [
                  let_ "b" (v "c" <<: 2);
                  let_ "m"
                    (idx (v "st") (v "b")
                    ^: idxk (v "st") (v "b") 1
                    ^: idxk (v "st") (v "b") 2
                    ^: idxk (v "st") (v "b") 3);
                  msets (v "st") (v "b")
                    [ (0, idx (v "st") (v "b") ^: v "m");
                      (1, idxk (v "st") (v "b") 1 ^: v "m") ];
                ];
            ];
        ];
      let_ "s" (i 0);
      for_ "j" (i 0) (i 16) [ assign "s" (v "s" +: idx (v "st") (v "j")) ];
      free_ (v "sbox"); free_ (v "st");
      return_ (v "s");
    ]

(** CCM mode: AES-ish block transform + CBC-MAC chaining (crypto-ccm). *)
let ccm_mac name : func =
  func ~name ~params:[ "n" ]
    [
      let_ "sbox" (alloc_elems (i 256));
      let_ "msg" (alloc_elems (i 64));
      for_ "j" (i 0) (i 256)
        [ set (v "sbox") (v "j") (v "j" *: i 181 +: i 7 &: i 255) ];
      for_ "j" (i 0) (i 64) [ set (v "msg") (v "j") (v "j" *: i 31 &: i 255) ];
      let_ "mac" (i 0x55);
      for_ "t" (i 0) n
        [
          for_ "j" (i 0) (i 64)
            [
              (* chain: mac = E(mac xor block) *)
              assign "mac" (v "mac" ^: idx (v "msg") (v "j"));
              for_ "r" (i 0) (i 4)
                [ assign "mac" (idx (v "sbox") (v "mac" &: i 255) ^: (v "mac" >>: 3)) ];
            ];
        ];
      free_ (v "sbox"); free_ (v "msg");
      return_ (v "mac");
    ]

(** PBKDF2: iterated keyed mixing with xor-accumulation (crypto-pbkdf2). *)
let pbkdf2 name : func =
  func ~name ~params:[ "n" ]
    [
      let_ "u" (alloc_elems (i 8));
      let_ "acc" (alloc_elems (i 8));
      for_ "j" (i 0) (i 8)
        [
          set (v "u") (v "j") (v "j" *: i 0x9e3779b9);
          set (v "acc") (v "j") (i 0);
        ];
      for_ "t" (i 0) n
        [
          for_ "iter" (i 0) (i 32)
            [
              (* U_{k+1} = PRF(U_k); acc ^= U *)
              for_ "j" (i 0) (i 8)
                [
                  let_ "x" (idx (v "u") (v "j"));
                  let_ "y" ((v "x" <<: 5) +: (v "x" >>: 7));
                  let_ "z" ((v "y" ^: (v "y" >>: 11)) *: i 0x27d4eb2d);
                  set (v "u") (v "j")
                    (v "z" ^: (v "j" *: i 0x85eb) &: i 0xffffffff);
                  set (v "acc") (v "j") (idx (v "acc") (v "j") ^: idx (v "u") (v "j"));
                ];
            ];
        ];
      let_ "s" (i 0);
      for_ "j" (i 0) (i 8) [ assign "s" (v "s" +: idx (v "acc") (v "j")) ];
      free_ (v "u"); free_ (v "acc");
      return_ (v "s");
    ]

(** SHA-256-flavoured compression: message schedule + 64 mixing rounds
    (crypto-sha256-iterative). *)
let sha256_rounds name : func =
  func ~name ~params:[ "n" ]
    [
      let_ "w" (alloc_elems (i 64));
      let_ "h" (alloc_elems (i 8));
      for_ "j" (i 0) (i 8) [ set (v "h") (v "j") (v "j" *: i 0x6a09 +: i 1) ];
      for_ "t" (i 0) n
        [
          (* schedule *)
          for_ "j" (i 0) (i 16) [ set (v "w") (v "j") (v "t" *: i 131 +: v "j") ];
          for_ "j" (i 16) (i 64)
            [
              let_ "a" (idxk (v "w") (v "j") (-15));
              let_ "b" (idxk (v "w") (v "j") (-2));
              set (v "w") (v "j")
                (idxk (v "w") (v "j") (-16)
                +: ((v "a" >>: 7) ^: (v "a" <<: 14))
                +: idxk (v "w") (v "j") (-7)
                +: ((v "b" >>: 17) ^: (v "b" <<: 15))
                &: i 0xffffffff);
            ];
          (* compression *)
          for_ "j" (i 0) (i 64)
            [
              let_ "e" (idx (v "h") (i 4));
              let_ "ch"
                ((v "e" &: idx (v "h") (i 5))
                ^: (Bin (Bxor, v "e", Int (-1)) &: idx (v "h") (i 6)));
              let_ "tmp"
                (idx (v "h") (i 7) +: v "ch" +: idx (v "w") (v "j")
                &: i 0xffffffff);
              for_ "k" (i 0) (i 7)
                [ set (v "h") (i 7 -: v "k") (idx (v "h") (i 6 -: v "k")) ];
              set (v "h") (i 0) (v "tmp");
            ];
        ];
      let_ "s" (i 0);
      for_ "j" (i 0) (i 8) [ assign "s" (v "s" +: idx (v "h") (v "j")) ];
      free_ (v "w"); free_ (v "h");
      return_ (v "s");
    ]

(** O(n^2) DFT with integer twiddle tables (audio-dft). *)
let dft name : func =
  let len = 48 in
  func ~name ~params:[ "n" ]
    [
      let_ "sig_" (alloc_elems (i len));
      let_ "cos_" (alloc_elems (i len));
      let_ "sin_" (alloc_elems (i len));
      let_ "out" (alloc_elems (i len));
      for_ "j" (i 0) (i len)
        [
          set (v "sig_") (v "j") (v "j" *: i 37 &: i 255);
          (* crude integer twiddles *)
          set (v "cos_") (v "j") ((v "j" *: v "j") %: i 97 -: i 48);
          set (v "sin_") (v "j") ((v "j" *: i 89) %: i 97 -: i 48);
        ];
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          for_ "k" (i 0) (i len)
            [
              let_ "re" (i 0);
              let_ "im" (i 0);
              for_ "j" (i 0) (i len)
                [
                  let_ "tw" ((v "k" *: v "j") %: i len);
                  assign "re"
                    (v "re" +: (idx (v "sig_") (v "j") *: idx (v "cos_") (v "tw")));
                  assign "im"
                    (v "im" +: (idx (v "sig_") (v "j") *: idx (v "sin_") (v "tw")));
                ];
              set (v "out") (v "k") ((v "re" *: v "re") +: (v "im" *: v "im") >>: 8);
            ];
          assign "s" (v "s" +: idx (v "out") (v "t" %: i len));
        ];
      free_ (v "sig_"); free_ (v "cos_"); free_ (v "sin_"); free_ (v "out");
      return_ (v "s");
    ]

(** Radix-2 FFT-style butterflies with bit-reversal (audio-fft). *)
let fft name : func =
  let len = 64 in
  func ~name ~params:[ "n" ]
    [
      let_ "re" (alloc_elems (i len));
      let_ "im" (alloc_elems (i len));
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          for_ "j" (i 0) (i len)
            [
              set (v "re") (v "j") (v "j" *: i 23 +: v "t" &: i 1023);
              set (v "im") (v "j") (i 0);
            ];
          (* stages: stride halving butterflies *)
          let_ "half" (i (len / 2));
          while_ (v "half" >: i 0)
            [
              let_ "k" (i 0);
              while_ (v "k" <: i len)
                [
                  for_ "j" (i 0) (v "half")
                    [
                      let_ "a" (idx (v "re") (v "k" +: v "j"));
                      let_ "b" (idx (v "re") (v "k" +: v "j" +: v "half"));
                      set (v "re") (v "k" +: v "j") (v "a" +: v "b");
                      set (v "re") (v "k" +: v "j" +: v "half")
                        ((v "a" -: v "b") *: (v "j" +: i 1) &: i 0xffff);
                      set (v "im") (v "k" +: v "j")
                        (idx (v "im") (v "k" +: v "j") ^: v "b");
                    ];
                  assign "k" (v "k" +: (v "half" <<: 1));
                ];
              assign "half" (v "half" >>: 1);
            ];
          assign "s" (v "s" +: idx (v "re") (v "t" &: i (len - 1)));
        ];
      free_ (v "re"); free_ (v "im");
      return_ (v "s");
    ]

(** Autocorrelation energy peaks (audio-beat-detection). *)
let beat_detect name : func =
  let len = 128 in
  func ~name ~params:[ "n" ]
    [
      let_ "sig_" (alloc_elems (i len));
      for_ "j" (i 0) (i len)
        [ set (v "sig_") (v "j") ((v "j" *: i 7 &: i 63) -: i 32) ];
      let_ "best" (i 0);
      for_ "t" (i 0) n
        [
          for_ "lag" (i 1) (i 32)
            [
              let_ "acc" (i 0);
              for_ "j" (i 0) (i (len - 32))
                [
                  assign "acc"
                    (v "acc"
                    +: (idx (v "sig_") (v "j")
                       *: idx (v "sig_") (v "j" +: v "lag")));
                ];
              if_ (v "acc" >: v "best") [ assign "best" (v "acc") ] [];
            ];
        ];
      free_ (v "sig_");
      return_ (v "best");
    ]

(** Wavetable oscillator bank (audio-oscillator). *)
let oscillator name : func =
  let table = 256 and voices = 8 in
  func ~name ~params:[ "n" ]
    [
      let_ "wave" (alloc_elems (i table));
      let_ "phase" (alloc_elems (i voices));
      let_ "step" (alloc_elems (i voices));
      for_ "j" (i 0) (i table)
        [ set (v "wave") (v "j") ((v "j" *: v "j") %: i 255 -: i 127) ];
      for_ "vv" (i 0) (i voices)
        [
          set (v "phase") (v "vv") (i 0);
          set (v "step") (v "vv") (v "vv" *: i 3 +: i 1);
        ];
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          for_ "smp" (i 0) (i 64)
            [
              let_ "mix" (i 0);
              for_ "vv" (i 0) (i voices)
                [
                  let_ "p" (idx (v "phase") (v "vv"));
                  assign "mix" (v "mix" +: idx (v "wave") (v "p" &: i (table - 1)));
                  set (v "phase") (v "vv") (v "p" +: idx (v "step") (v "vv"));
                ];
              assign "s" (v "s" +: (v "mix" >>: 3));
            ];
        ];
      free_ (v "wave"); free_ (v "phase"); free_ (v "step");
      return_ (v "s" &: i 0xffffffff);
    ]

(** Per-pixel levels/curves adjustment (imaging-darkroom). *)
let darkroom name : func =
  let px = 512 in
  func ~name ~params:[ "n" ]
    [
      let_ "img" (alloc_bytes (i px));
      let_ "lut" (alloc_elems (i 256));
      for_ "j" (i 0) (i px) [ set1 (v "img") (v "j") (v "j" *: i 11 &: i 255) ];
      for_ "j" (i 0) (i 256)
        [ set (v "lut") (v "j") ((v "j" *: v "j") >>: 8) ];
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          for_ "j" (i 0) (i px)
            [
              let_ "c" (idx1 (v "img") (v "j"));
              (* exposure, then curve via LUT, then clamp *)
              let_ "e" (v "c" *: i 5 >>: 2);
              if_ (v "e" >: i 255) [ assign "e" (i 255) ] [];
              (* contrast around mid-gray, then the curve LUT *)
              let_ "d" (v "e" -: i 128);
              let_ "ct" (i 128 +: ((v "d" *: i 3) /: i 2));
              if_ (v "ct" >: i 255) [ assign "ct" (i 255) ] [];
              if_ (v "ct" <: i 0) [ assign "ct" (i 0) ] [];
              set1 (v "img") (v "j") (idx (v "lut") (v "ct"));
            ];
          assign "s" (v "s" +: idx1 (v "img") (v "t" &: i (px - 1)));
        ];
      free_ (v "img"); free_ (v "lut");
      return_ (v "s");
    ]

(** RGB desaturation over packed byte triples (imaging-desaturate). *)
let desaturate name : func =
  let pixels = 170 in
  func ~name ~params:[ "n" ]
    [
      let_ "img" (alloc_bytes (i (pixels * 3)));
      for_ "j" (i 0) (i (pixels * 3))
        [ set1 (v "img") (v "j") (v "j" *: i 29 &: i 255) ];
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          for_ "p" (i 0) (i pixels)
            [
              let_ "b" (v "p" *: i 3);
              (* ITU-R 601 integer luma: more compute per write *)
              let_ "r_" (idx1 (v "img") (v "b"));
              let_ "g_" (idx1 (v "img") (v "b" +: i 1));
              let_ "b_" (idx1 (v "img") (v "b" +: i 2));
              let_ "gray"
                ((v "r_" *: i 77) +: (v "g_" *: i 150) +: (v "b_" *: i 29)
                >>: 8);
              (* one address computation, three mergeable byte stores *)
              Multi_store
                (E1, v "img", v "b",
                 [ (0, v "gray"); (1, v "gray"); (2, v "gray") ]);
            ];
          assign "s" (v "s" +: idx1 (v "img") (v "t" %: i (pixels * 3)));
        ];
      free_ (v "img");
      return_ (v "s");
    ]

(** Number / token scanner over a byte stream (json-parse-financial). *)
let parse_financial name : func =
  let len = 512 in
  func ~name ~params:[ "n" ]
    [
      let_ "buf" (alloc_bytes (i len));
      (* synthesize digits and separators *)
      for_ "j" (i 0) (i len)
        [
          if_
            (v "j" %: i 7 =: i 0)
            [ set1 (v "buf") (v "j") (i 44) ] (* ',' *)
            [ set1 (v "buf") (v "j") (i 48 +: (v "j" %: i 10)) ];
        ];
      let_ "total" (i 0);
      for_ "t" (i 0) n
        [
          let_ "acc" (i 0);
          for_ "j" (i 0) (i len)
            [
              let_ "c" (idx1 (v "buf") (v "j"));
              if_
                (Bin (Band, v "c" >=: i 48, v "c" <=: i 57))
                [ assign "acc" (v "acc" *: i 10 +: v "c" -: i 48 &: i 0xffffff) ]
                [
                  assign "total" (v "total" +: v "acc" &: i 0xffffffff);
                  assign "acc" (i 0);
                ];
            ];
        ];
      free_ (v "buf");
      return_ (v "total");
    ]

(** Integer-to-decimal writer into a byte buffer
    (json-stringify-tinderbox). *)
let stringify name : func =
  func ~name ~params:[ "n" ]
    [
      let_ "out" (alloc_bytes (i 1024));
      let_ "pos" (i 0);
      let_ "s" (i 0);
      for_ "t" (i 0) n
        [
          let_ "x" (v "t" *: i 7919 &: i 0xfffff);
          (* write digits (reversed; fine for a checksum) *)
          let_ "go" (i 1);
          while_ (v "go" =: i 1)
            [
              set1 (v "out") (v "pos" &: i 1023) (i 48 +: (v "x" %: i 10));
              assign "pos" (v "pos" +: i 1);
              assign "x" (v "x" /: i 10);
              if_ (v "x" =: i 0) [ assign "go" (i 0) ] [];
            ];
          set1 (v "out") (v "pos" &: i 1023) (i 44);
          assign "pos" (v "pos" +: i 1);
          assign "s" (v "s" +: idx1 (v "out") (v "t" &: i 1023));
        ];
      free_ (v "out");
      return_ (v "s");
    ]
