(** The SPEC CPU2006 stand-in suite (see DESIGN.md substitutions).

    One synthetic kernel per benchmark, shaped after its dominant loop,
    with three paper-fidelity knobs per benchmark:

    - [coverage]: the fraction of dynamic heap accesses exercised by
      the [train] workload (the rest run in a ref-only clone of the
      kernel whose sites can never make the allow-list), reproducing
      Table 1's coverage column;
    - [fp_sites]: the number of distinct anti-idiom [(array-K)\[i+K\]]
      access sites, reproducing the §7.1 false-positive census
      (Fortran non-zero-based arrays etc.);
    - [bugs]: the real out-of-bounds reads the paper found (calculix:
      4x [array\[-1\]]; wrf: one read overflow). *)

open Minic.Ast
open Minic.Build

type lang = C | Cpp | Fortran

let lang_name = function C -> "C" | Cpp -> "C++" | Fortran -> "Fortran"

type bug = Read_underflow | Read_overflow

type bench = {
  name : string;
  lang : lang;
  kernel : string -> func;
  n_train : int;
  n_ref : int;
  coverage : float; (* paper's Table 1 coverage, as a fraction *)
  fp_sites : int;   (* paper's §7.1 false-positive census *)
  bugs : bug list;  (* paper's §7.1 detected real errors *)
}

(* Extra function holding the benchmark's anti-idiom sites and real
   bugs.  Anti-idiom stores go through a base pointer displaced below
   the object (>= 24 bytes, past the 16-byte metadata redzone, so the
   displaced pointer falls outside its object's slot); the accessed
   address itself stays in bounds. *)
let fp_and_bug_func ~fp_sites ~bugs name : func =
  let anti_idiom k =
    (* (a - 8*(k+3))[j + (k+3)] = j  —  the displaced base pointer falls
       at least 24 bytes below the object, i.e. outside its slot *)
    let c = k + 3 in
    Store (E8, v "a" -: i (8 * c), v "j" +: i c, v "j")
  in
  let bug_stmts =
    List.concat
      (List.mapi
         (fun bi b ->
           match b with
           | Read_underflow ->
             (* array[-1]: reads the redzone word; value never escapes *)
             [ Let (Printf.sprintf "dead%d" bi, Load (E8, v "a", i (-1))) ]
           | Read_overflow ->
             (* one-past-the-end row read *)
             [ Let (Printf.sprintf "dead%d" bi, Load (E8, v "a", i 64)) ])
         bugs)
  in
  func ~name ~params:[]
    ([
       let_ "a" (alloc_elems (i 64));
       for_ "j" (i 0) (i 64) [ set (v "a") (v "j") (v "j") ];
       for_ "j" (i 0) (i 8) (List.init fp_sites anti_idiom);
     ]
    @ bug_stmts
    @ [
        let_ "s" (i 0);
        for_ "j" (i 0) (i 64) [ assign "s" (v "s" +: idx (v "a") (v "j")) ];
        free_ (v "a");
        return_ (v "s");
      ])

(** Build the benchmark program.  Inputs: [mode] (0 = train, 1 = ref)
    then [n] (scale).  Structure:
    - the shared kernel runs in both modes (its sites are profiled);
    - the ref-only clone runs only in ref mode, scaled so the paper's
      coverage fraction of dynamic accesses comes from allow-listed
      sites;
    - the fp/bug function runs in both modes. *)
let program (b : bench) : program =
  let has_extra = b.coverage < 0.9995 in
  let has_fp = b.fp_sites > 0 || b.bugs <> [] in
  let num = int_of_float ((1.0 -. b.coverage) *. 1000.0) in
  let den = max 1 (int_of_float (b.coverage *. 1000.0)) in
  let main =
    func ~name:"main"
      ([
         let_ "mode" Input;
         let_ "n" Input;
         let_ "s" (call "kernel" [ v "n" ]);
       ]
      @ (if has_fp then [ assign "s" (v "s" +: call "fpfun" []) ] else [])
      @ (if has_extra then
           [
             if_
               (v "mode" =: i 1)
               [
                 assign "s"
                   (v "s"
                   +: call "kernel_ref"
                        [ Bin (Div, v "n" *: i num, Int den) ]);
               ]
               [];
           ]
         else [])
      @ [ print_ (v "s"); return_ (i 0) ])
  in
  let funcs =
    [ main; b.kernel "kernel" ]
    @ (if has_extra then [ b.kernel "kernel_ref" ] else [])
    @
    if has_fp then [ fp_and_bug_func ~fp_sites:b.fp_sites ~bugs:b.bugs "fpfun" ]
    else []
  in
  Minic.Ast.program funcs

let train_inputs (b : bench) = [ 0; b.n_train ]
let ref_inputs (b : bench) = [ 1; b.n_ref ]

let binary (b : bench) : Binfmt.Relf.t = Minic.Codegen.compile (program b)

(* --- the 29-benchmark table ----------------------------------------- *)

let mk name lang kernel n_train n_ref coverage fp_sites bugs =
  { name; lang; kernel; n_train; n_ref; coverage; fp_sites; bugs }

let all : bench list =
  [
    mk "perlbench" C Kernels.hash_table 500 2100 0.889 1 [];
    mk "bzip2" C Kernels.block_sort 2 6 0.970 0 [];
    mk "gcc" C Kernels.graph_chase 600 2500 0.660 14 [];
    mk "mcf" C Kernels.arc_relax 4 18 0.987 0 [];
    mk "gobmk" C Kernels.board_scan 1 4 0.907 1 [];
    mk "hmmer" C Kernels.dp_matrix 8 28 0.480 0 [];
    mk "sjeng" C Kernels.move_search 10 45 0.986 0 [];
    mk "libquantum" C Kernels.gate_array 2 6 1.000 0 [];
    mk "h264ref" C Kernels.sad_match 1 2 0.200 0 [];
    mk "omnetpp" Cpp Kernels.event_queue 400 1600 0.628 0 [];
    mk "astar" Cpp Kernels.grid_path 18 75 0.997 0 [];
    mk "xalancbmk" Cpp Kernels.tree_walk 3 11 0.789 0 [];
    mk "milc" C Kernels.stencil2d 3 13 0.994 0 [];
    mk "lbm" C Kernels.lattice3 4 15 0.988 0 [];
    mk "sphinx3" C Kernels.gmm_eval 12 50 0.995 0 [];
    mk "namd" Cpp Kernels.nbody 2 9 1.000 0 [];
    mk "dealII" Cpp Kernels.sparse_mv 3 10 0.817 0 [];
    mk "soplex" Cpp Kernels.lu_decomp 1 3 0.964 0 [];
    mk "povray" Cpp Kernels.ray_trace 2 8 0.999 1 [];
    mk "bwaves" Fortran Kernels.stencil3d 2 7 0.852 5 [];
    mk "gamess" Fortran Kernels.integrals 1 3 0.430 0 [];
    mk "zeusmp" Fortran Kernels.pde1d 1 3 0.232 0 [];
    mk "gromacs" Fortran Kernels.cutoff_forces 2 9 0.833 3 [];
    mk "cactusADM" Fortran Kernels.wave2d 3 10 0.999 0 [];
    mk "leslie3d" Fortran Kernels.stencil2d 4 16 1.000 0 [];
    mk "calculix" Fortran Kernels.fe_assemble 1 2 0.287 2
      [ Read_underflow; Read_underflow; Read_underflow; Read_underflow ];
    mk "GemsFDTD" Fortran Kernels.fdtd2d 2 5 0.987 32 [];
    mk "tonto" Fortran Kernels.spectral 3 12 0.950 0 [];
    mk "wrf" Fortran Kernels.wave2d 1 3 0.270 26 [ Read_overflow ];
  ]

let find name = List.find (fun b -> b.name = name) all
