(** The low-fat memory allocator ([lowfat_malloc]/[lowfat_free]).

    Fresh objects are carved by a per-class bump pointer starting at
    the first size-aligned address of the class's region; freed objects
    go to a per-class free list.  Allocations beyond the largest class
    fall back to a legacy bump heap in a non-fat region, invisible to
    low-fat checking (like LowFat's fallback to malloc). *)

exception Invalid_free of int
exception Double_free of int
exception Out_of_memory of int

type stats = {
  mutable allocs : int;
  mutable frees : int;
  mutable legacy_allocs : int;
  mutable bytes_requested : int;
  mutable bytes_reserved : int;  (** including class-rounding padding *)
}

type t = {
  mem : Vm.Mem.t;
  bump : int array;
  freelist : int list array;
  live : (int, int) Hashtbl.t;
  mutable legacy_bump : int;
  legacy_size : (int, int) Hashtbl.t;
  stats : stats;
  mutable rng : int;
}

val create : ?random:int -> Vm.Mem.t -> t
(** [random] (paper §8's "basic heap randomization") seeds
    deterministic randomization of subheap start offsets and free-list
    reuse order. *)

val malloc : t -> int -> int
(** Allocate [n] bytes; the result is size-aligned inside its class's
    region (or a legacy non-fat pointer for very large [n]).  The slot
    is mapped. *)

val free : t -> int -> unit
(** Release an object by its base address.  Raises {!Double_free} or
    {!Invalid_free} on misuse. *)

val is_live : t -> int -> bool

val reserved_size : t -> int -> int option
(** Reserved (class-rounded) size of a live object, if the address is
    its base. *)

val live_count : t -> int
