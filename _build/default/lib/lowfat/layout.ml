(** The low-fat virtual address space layout (paper Figure 2).

    The address space is partitioned into equally-sized 32 GiB regions.
    Regions [1..m] are low-fat: region [i] contains a subheap servicing
    allocations of exactly [sizes.(i-1)] bytes, and every object in it
    is aligned to a multiple of that size, so

      size(ptr) = SIZES[ptr / 32GiB]
      base(ptr) = ptr - (ptr mod size(ptr))

    are a table lookup and a modulo.  Region 0 (code, globals) and the
    regions above [m] (stack, legacy heap) are non-fat: [size] returns
    [max_int] and [base] returns 0 (NULL), so non-fat pointers are
    always considered in-bounds by the checks. *)

let region_bits = 35
let region_size = 1 lsl region_bits (* 32 GiB *)

(** Allocation size classes: 16·i up to 1 KiB (fine-grained, like the
    LowFat default configuration), then powers of two up to 256 MiB. *)
let sizes : int array =
  Array.of_list
    (List.init 64 (fun i -> 16 * (i + 1))
    @ List.init 18 (fun i -> 2048 lsl i))

let num_classes = Array.length sizes

(* SIZES, indexed by region number; padded with non-fat entries. *)
let sizes_table : int array =
  Array.init (num_classes + 8) (fun i ->
      if i >= 1 && i <= num_classes then sizes.(i - 1) else max_int)

let region_of_addr addr = addr lsr region_bits

let is_fat addr =
  let r = region_of_addr addr in
  r >= 1 && r <= num_classes

(** [size ptr]: allocation size bound for the region of [ptr];
    [max_int] for non-fat pointers. *)
let size ptr =
  let r = region_of_addr ptr in
  if r >= 0 && r < Array.length sizes_table then sizes_table.(r) else max_int

(** [base ptr]: start of the (potential) object containing [ptr];
    0 (NULL) for non-fat pointers. *)
let base ptr =
  let r = region_of_addr ptr in
  if r >= 1 && r <= num_classes then
    let sz = sizes_table.(r) in
    ptr - (ptr mod sz)
  else 0

(** Smallest size class holding [n] bytes: [Some (index, class_size)],
    or [None] when [n] exceeds the largest class (legacy fallback). *)
let class_of_size n =
  if n <= 0 then invalid_arg "Layout.class_of_size"
  else if n <= 1024 then begin
    let i = (n + 15) / 16 in
    Some (i, 16 * i)
  end
  else begin
    let rec go i =
      if i >= num_classes then None
      else if sizes.(i) >= n then Some (i + 1, sizes.(i))
      else go (i + 1)
    in
    go 64
  end

let region_start i = i lsl region_bits
let region_end i = (i + 1) lsl region_bits

(* --- fixed non-fat placements ------------------------------------- *)

let heap_lo = region_start 1
let heap_hi = region_end num_classes

(** Program text; region 0, ≥ 2 GiB below the heap. *)
let code_base = 0x40_0000

(** Trampoline area: within rel32 (±2 GiB) reach of the text section,
    still region 0 (non-fat). *)
let trampoline_base = 0x4040_0000

(** Globals (.data); region 0. *)
let data_base = 0x1000_0000

(** Legacy (non-fat) heap for allocations beyond the largest class. *)
let legacy_heap_region = num_classes + 2
let legacy_heap_base = region_start legacy_heap_region

(** Stack: its own non-fat region, far (≫ 2 GiB) from the fat heap. *)
let stack_region = num_classes + 4
let stack_size = 8 * 1024 * 1024
let stack_top = region_start stack_region + (16 * 1024 * 1024)
let stack_lo = stack_top - stack_size

(** The check-elimination distance rule (paper §6): a statically-known
    base address can be proven unable to reach the fat heap when it is
    at least 2 GiB away from it. *)
let two_gb = 1 lsl 31

let addr_range_clear_of_heap ~lo ~hi =
  hi < heap_lo - two_gb || lo > heap_hi + two_gb
