(** The low-fat virtual address space layout (paper Figure 2).

    The address space is partitioned into 32 GiB regions; regions
    [1..num_classes] each hold a subheap of one allocation size class
    with every object aligned to a multiple of its class size, so
    [size] and [base] are computable from the pointer bits alone.
    Everything else (code, globals, stack, legacy heap) is non-fat:
    [size] is [max_int] and [base] is 0 (NULL), so non-fat pointers
    always pass bounds checks. *)

val region_bits : int
val region_size : int

val sizes : int array
(** Allocation size classes: 16·i up to 1 KiB, then powers of two up
    to 256 MiB. *)

val num_classes : int

val sizes_table : int array
(** SIZES, indexed by region number; [max_int] marks non-fat regions. *)

val region_of_addr : int -> int
val is_fat : int -> bool

val size : int -> int
(** [size ptr]: allocation size bound for [ptr]'s region; [max_int]
    for non-fat pointers. *)

val base : int -> int
(** [base ptr]: start of the (potential) object slot containing [ptr];
    0 for non-fat pointers. *)

val class_of_size : int -> (int * int) option
(** Smallest class holding [n] bytes: [Some (class_index, class_size)],
    or [None] when [n] exceeds the largest class (legacy fallback).
    Raises [Invalid_argument] for [n <= 0]. *)

val region_start : int -> int
val region_end : int -> int

(** {2 Fixed placements (all non-fat)} *)

val heap_lo : int
val heap_hi : int
val code_base : int
val trampoline_base : int
(** Within rel32 (±2 GiB) reach of the text section. *)

val data_base : int
val legacy_heap_region : int
val legacy_heap_base : int
val stack_region : int
val stack_size : int
val stack_top : int
val stack_lo : int

val two_gb : int

val addr_range_clear_of_heap : lo:int -> hi:int -> bool
(** The check-elimination distance rule (paper §6): a statically-known
    address range provably unable to reach the fat heap. *)
