lib/lowfat/layout.mli:
