lib/lowfat/alloc.mli: Hashtbl Vm
