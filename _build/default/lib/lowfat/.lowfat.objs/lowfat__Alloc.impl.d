lib/lowfat/alloc.ml: Array Hashtbl Layout List Vm
