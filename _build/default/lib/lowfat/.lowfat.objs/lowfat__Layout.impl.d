lib/lowfat/layout.ml: Array List
