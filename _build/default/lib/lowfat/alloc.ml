(** The low-fat memory allocator ([lowfat_malloc] / [lowfat_free]).

    Each size class owns a subheap inside its 32 GiB region.  Fresh
    objects are carved by a bump pointer starting at the first
    size-aligned address of the region; freed objects go to a per-class
    free list (LIFO reuse).  Allocations larger than the largest class
    fall back to a legacy bump heap in a non-fat region — pointers from
    there are invisible to low-fat checking, exactly like LowFat's
    fallback to malloc. *)

exception Invalid_free of int
exception Double_free of int
exception Out_of_memory of int

type stats = {
  mutable allocs : int;
  mutable frees : int;
  mutable legacy_allocs : int;
  mutable bytes_requested : int;
  mutable bytes_reserved : int;  (** including class-rounding padding *)
}

type t = {
  mem : Vm.Mem.t;
  bump : int array;                   (* next fresh address, per class *)
  freelist : int list array;
  live : (int, int) Hashtbl.t;        (* base -> class idx (0 = legacy) *)
  mutable legacy_bump : int;
  legacy_size : (int, int) Hashtbl.t;
  stats : stats;
  mutable rng : int;                  (* 0 = randomization off *)
}

(* xorshift step; never returns 0 for a non-zero state *)
let next_rand s =
  let s = s lxor (s lsl 13) land max_int in
  let s = s lxor (s lsr 7) in
  s lxor (s lsl 17) land max_int

(** [create ?random mem]: the allocator.  [random] (paper section 8:
    "basic heap randomization") seeds deterministic randomization of
    subheap start offsets and free-list reuse order, making adjacent-
    object attacks less predictable without changing the base/size
    machinery. *)
let create ?random (mem : Vm.Mem.t) : t =
  let rng = ref (match random with Some s -> max 1 (s land max_int) | None -> 0) in
  let bump =
    Array.init (Layout.num_classes + 1) (fun i ->
        if i = 0 then 0
        else begin
          let start = Layout.region_start i in
          let sz = Layout.sizes.(i - 1) in
          (* first size-aligned slot of the region, plus a random
             slot-granular offset when randomization is on *)
          let first = (start + sz - 1) / sz * sz in
          if !rng = 0 then first
          else begin
            rng := next_rand !rng;
            first + (!rng mod 4096) * sz
          end
        end)
  in
  {
    mem;
    bump;
    freelist = Array.make (Layout.num_classes + 1) [];
    live = Hashtbl.create 1024;
    legacy_bump = Layout.legacy_heap_base + 4096;
    legacy_size = Hashtbl.create 16;
    stats =
      { allocs = 0; frees = 0; legacy_allocs = 0; bytes_requested = 0;
        bytes_reserved = 0 };
    rng = (match random with Some s -> max 1 (s land max_int) | None -> 0);
  }

let alloc_legacy t n =
  let addr = t.legacy_bump in
  t.legacy_bump <- addr + ((n + 15) land lnot 15);
  Vm.Mem.map t.mem ~addr ~len:n;
  Hashtbl.replace t.legacy_size addr n;
  Hashtbl.replace t.live addr 0;
  t.stats.legacy_allocs <- t.stats.legacy_allocs + 1;
  t.stats.bytes_reserved <- t.stats.bytes_reserved + n;
  addr

(** Allocate [n] bytes; the result is size-aligned inside the class's
    region (or a legacy non-fat pointer for very large [n]). *)
let malloc t n =
  if n <= 0 then invalid_arg "Alloc.malloc";
  t.stats.allocs <- t.stats.allocs + 1;
  t.stats.bytes_requested <- t.stats.bytes_requested + n;
  match Layout.class_of_size n with
  | None -> alloc_legacy t n
  | Some (cls, csize) ->
    let addr =
      match t.freelist.(cls) with
      | a :: rest when t.rng = 0 ->
        t.freelist.(cls) <- rest;
        a
      | _ :: _ ->
        (* randomized reuse: pick a random free slot (DieHarder-style) *)
        t.rng <- next_rand t.rng;
        let l = t.freelist.(cls) in
        let k = t.rng mod List.length l in
        let a = List.nth l k in
        t.freelist.(cls) <- List.filteri (fun j _ -> j <> k) l;
        a
      | [] ->
        let a = t.bump.(cls) in
        if a + csize > Layout.region_end cls then raise (Out_of_memory n);
        t.bump.(cls) <- a + csize;
        Vm.Mem.map t.mem ~addr:a ~len:csize;
        a
    in
    Hashtbl.replace t.live addr cls;
    t.stats.bytes_reserved <- t.stats.bytes_reserved + csize;
    addr

let free t ptr =
  t.stats.frees <- t.stats.frees + 1;
  match Hashtbl.find_opt t.live ptr with
  | Some 0 ->
    Hashtbl.remove t.live ptr;
    Hashtbl.remove t.legacy_size ptr
  | Some cls ->
    Hashtbl.remove t.live ptr;
    t.freelist.(cls) <- ptr :: t.freelist.(cls)
  | None ->
    if Layout.is_fat ptr && Layout.base ptr = ptr then raise (Double_free ptr)
    else raise (Invalid_free ptr)

let is_live t ptr = Hashtbl.mem t.live ptr

(** Reserved (class-rounded) size of a live object, if [ptr] is its base. *)
let reserved_size t ptr =
  match Hashtbl.find_opt t.live ptr with
  | Some 0 -> Hashtbl.find_opt t.legacy_size ptr
  | Some cls -> Some Layout.sizes.(cls - 1)
  | None -> None

let live_count t = Hashtbl.length t.live
