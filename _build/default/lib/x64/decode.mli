(** Binary decoder for x64l; the exact inverse of {!Encode}. *)

exception Decode_error of { addr : int; byte : int }

val decode : addr:int -> string -> int -> Isa.instr * int
(** [decode ~addr buf off] decodes one instruction whose first byte is
    [buf.[off]] and whose virtual address is [addr]; returns the
    instruction and its encoded length. *)
