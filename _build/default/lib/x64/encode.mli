(** Binary encoder for x64l.  Variable-length by design: the rewriter's
    patching problem exists because [jmp rel32] occupies 5 bytes while
    the smallest instrumentable instruction occupies 4. *)

exception Encode_error of string

val fits_i32 : int -> bool
val fits_i8 : int -> bool

(** {2 Opcode map (shared with {!Decode})} *)

val op_mov_rr : int
val op_mov_ri32 : int
val op_mov_ri64 : int
val op_load : int
val op_store : int
val op_store_i : int
val op_lea : int
val op_alu_rr : int
val op_alu_ri : int
val op_mul_rr : int
val op_div_rr : int
val op_rem_rr : int
val op_neg : int
val op_not : int
val op_shift_ri : int
val op_cmp_rr : int
val op_cmp_ri : int
val op_test_rr : int
val op_setcc : int
val op_jmp : int
val op_jcc : int
val op_call : int
val op_ret : int
val op_call_ind : int
val op_jmp_ind : int
val op_callrt : int
val op_push : int
val op_pop : int
val op_nop : int
val op_check : int
val op_probe : int
val op_trap : int
val op_hlt : int

val encode_at : Buffer.t -> int -> Isa.instr -> unit
(** [encode_at b addr i] appends the encoding of [i], with [addr] as
    the instruction's virtual address (for rel32 fields). *)

val length : Isa.instr -> int
(** Encoded length in bytes (address-independent). *)

val encode_seq : addr:int -> Isa.instr list -> string
(** Encode a straight-line sequence starting at [addr]. *)
