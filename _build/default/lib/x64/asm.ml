(** Two-pass assembler: resolves symbolic labels to rel32 targets.

    Used by the MiniC code generator and by tests; the rewriter works
    on raw bytes and never goes through here. *)

type item =
  | Label of string
  | I of Isa.instr          (** any instruction with absolute targets *)
  | Jmp_l of string
  | Jcc_l of Isa.cc * string
  | Call_l of string
  | Mov_label of Isa.reg * string
      (** materialize a label's address (function pointers) *)

exception Undefined_label of string
exception Duplicate_label of string

let item_length = function
  | Label _ -> 0
  | I i -> Encode.length i
  | Jmp_l _ | Call_l _ -> 5
  | Jcc_l _ -> 6
  (* code addresses fit in an i32 in every layout we generate *)
  | Mov_label _ -> 6

(** [assemble ~origin items] lays the program out starting at virtual
    address [origin]; returns the code bytes and the label table. *)
let assemble ~(origin : int) (items : item list) :
    string * (string, int) Hashtbl.t =
  let labels = Hashtbl.create 64 in
  let pc = ref origin in
  List.iter
    (fun it ->
      (match it with
       | Label l ->
         if Hashtbl.mem labels l then raise (Duplicate_label l);
         Hashtbl.add labels l !pc
       | _ -> ());
      pc := !pc + item_length it)
    items;
  let resolve l =
    match Hashtbl.find_opt labels l with
    | Some a -> a
    | None -> raise (Undefined_label l)
  in
  let b = Buffer.create 1024 in
  List.iter
    (fun it ->
      let addr = origin + Buffer.length b in
      match it with
      | Label _ -> ()
      | I i -> Encode.encode_at b addr i
      | Jmp_l l -> Encode.encode_at b addr (Isa.Jmp (resolve l))
      | Jcc_l (cc, l) -> Encode.encode_at b addr (Isa.Jcc (cc, resolve l))
      | Call_l l -> Encode.encode_at b addr (Isa.Call (resolve l))
      | Mov_label (r, l) -> Encode.encode_at b addr (Isa.Mov_ri (r, resolve l)))
    items;
  (Buffer.contents b, labels)
