lib/x64/decode.mli: Isa
