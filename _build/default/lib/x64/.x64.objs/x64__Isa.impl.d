lib/x64/isa.ml: Printf
