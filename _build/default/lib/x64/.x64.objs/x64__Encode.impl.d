lib/x64/encode.ml: Buffer Char Isa List Printf
