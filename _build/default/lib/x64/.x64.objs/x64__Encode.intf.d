lib/x64/encode.mli: Buffer Isa
