lib/x64/decode.ml: Char Encode Int64 Isa String
