lib/x64/asm.mli: Hashtbl Isa
