lib/x64/disasm.mli: Isa
