lib/x64/disasm.ml: Buffer Char Decode Isa List Printf String
