lib/x64/asm.ml: Buffer Encode Hashtbl Isa List
