(** Two-pass assembler: resolves symbolic labels to rel32 targets.
    Used by the MiniC code generator and tests; the rewriter works on
    raw bytes. *)

type item =
  | Label of string
  | I of Isa.instr
  | Jmp_l of string
  | Jcc_l of Isa.cc * string
  | Call_l of string
  | Mov_label of Isa.reg * string
      (** materialize a label's address (function pointers) *)

exception Undefined_label of string
exception Duplicate_label of string

val item_length : item -> int

val assemble : origin:int -> item list -> string * (string, int) Hashtbl.t
(** Lay the program out starting at [origin]; returns the code bytes
    and the label table. *)
