(** Pretty-printing (AT&T-flavoured) and linear-sweep disassembly. *)

val mem_to_string : Isa.mem -> string
val alu_name : Isa.alu -> string
val shift_name : Isa.shift -> string
val cc_name : Isa.cc -> string
val rtfn_name : Isa.rtfn -> string
val width_suffix : Isa.width -> string

val to_string : Isa.instr -> string

val sweep : addr:int -> string -> (int * Isa.instr * int) list
(** Linear sweep over a code blob at virtual address [addr]:
    [(address, instruction, length)] triples. *)

val dump : addr:int -> string -> string
(** Tolerant pretty dump: undecodable bytes become [.byte] lines (for
    patched binaries whose linear sweep desynchronizes). *)
