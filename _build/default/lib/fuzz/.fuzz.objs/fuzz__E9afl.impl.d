lib/fuzz/e9afl.ml: Array Baselines Binfmt Fuzzer Hashtbl List Lowfat Option Rewriter Vm X64
