lib/fuzz/fuzzer.mli: Binfmt Redfat
