lib/fuzz/fuzzer.ml: Array Binfmt Hashtbl List Redfat Redfat_rt
