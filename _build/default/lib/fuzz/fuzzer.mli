(** Coverage-guided input generation for the profiling phase (the
    AFL-style booster the paper's §5 points at).  Deterministic for a
    given (binary, seeds, budget, seed). *)

(** Deterministic xorshift state shared with {!E9afl}. *)
type rng = { mutable s : int }

val rand : rng -> int -> int
val mutate : rng -> int list -> int list
(** One AFL-ish mutation of an input vector. *)

type stats = {
  corpus : int list list;  (** the grown test suite *)
  sites_covered : int;
  total_sites : int;
  executions : int;
}

val fuzz :
  ?seeds:int list list ->
  ?budget:int ->
  ?seed:int ->
  ?max_steps:int ->
  Binfmt.Relf.t ->
  stats
(** Grow a profiling test suite by mutating input vectors, keeping
    every input that executes a previously-unseen instrumentation
    site. *)

val fuzz_and_harden :
  ?seeds:int list list ->
  ?budget:int ->
  ?seed:int ->
  ?max_steps:int ->
  ?opts:Redfat.Rewrite.options ->
  Binfmt.Relf.t ->
  Redfat.Rewrite.t * stats
(** Fuzz, then run the Figure-5 workflow with the grown corpus. *)
