(** E9AFL-style coverage instrumentation (the paper's §5 cites E9AFL as
    the way to boost profiling coverage on binaries).

    The original binary's basic-block leaders are instrumented with
    {!Rewriter.Generic} probes; at runtime each probe updates the
    AFL-style edge map [hash(prev_block, cur_block)].  Unlike the
    redfat profiling build, this works on binaries with {e no} memory
    accesses in the interesting branches, and it is what a fuzzer
    would actually use for guidance. *)

type t = {
  binary : Binfmt.Relf.t;   (** the coverage-instrumented binary *)
  blocks : int;             (** basic blocks instrumented *)
  map_size : int;
}

let map_size = 1 lsl 16

let instrument (binary : Binfmt.Relf.t) : t =
  let r, blocks = Rewriter.Generic.instrument_blocks binary in
  { binary = r.binary; blocks; map_size }

type run = {
  edges : (int, int) Hashtbl.t;  (** edge hash -> hit count *)
  outputs : int list;
  verdict_ok : bool;
}

(** Run the instrumented binary, collecting the edge map. *)
let run (t : t) ?(inputs = []) ?(max_steps = 2_000_000) () : run =
  let cpu = Vm.Cpu.create ~max_steps () in
  Binfmt.Relf.load_into cpu.mem t.binary;
  Vm.Mem.map cpu.mem ~addr:Lowfat.Layout.stack_lo ~len:Lowfat.Layout.stack_size;
  cpu.regs.(X64.Isa.rsp) <- Lowfat.Layout.stack_top - 64;
  cpu.inputs <- inputs;
  List.iter
    (fun (a, tgt) -> Hashtbl.replace cpu.trap_table a tgt)
    (Rewriter.Rewrite.traps_of_binary t.binary);
  let edges = Hashtbl.create 256 in
  let prev = ref 0 in
  cpu.on_probe <-
    Some
      (fun _ id ->
        (* AFL's classic edge hash *)
        let e = (!prev lsr 1) lxor id land (t.map_size - 1) in
        Hashtbl.replace edges e (1 + Option.value ~default:0 (Hashtbl.find_opt edges e));
        prev := id;
        3 (* shared-memory counter update *));
  let alloc = Baselines.Sysalloc.create cpu.mem in
  let rt = Baselines.Sysalloc.vm_runtime alloc in
  let ok =
    match Vm.Cpu.run cpu rt ~entry:t.binary.entry with
    | (_ : int) -> true
    | exception _ -> false
  in
  { edges; outputs = Vm.Cpu.outputs cpu; verdict_ok = ok }

(** Edge-coverage-guided corpus growth, mirroring {!Fuzzer.fuzz} but
    guided by the AFL map of the {e original} binary rather than the
    redfat profiling build's site coverage. *)
let fuzz ?(seeds = [ [] ]) ?(budget = 300) ?(seed = 1)
    (binary : Binfmt.Relf.t) : Fuzzer.stats =
  let t = instrument binary in
  let r = { Fuzzer.s = max 1 seed } in
  let covered = Hashtbl.create 256 in
  let corpus = ref [] in
  let executions = ref 0 in
  let try_input inputs =
    incr executions;
    let res = run t ~inputs () in
    let fresh = ref false in
    Hashtbl.iter
      (fun e _ ->
        if not (Hashtbl.mem covered e) then begin
          Hashtbl.replace covered e ();
          fresh := true
        end)
      res.edges;
    if !fresh then corpus := inputs :: !corpus
  in
  List.iter try_input seeds;
  for _ = 1 to budget do
    let c = Array.of_list !corpus in
    let parent =
      if Array.length c = 0 then []
      else c.(Fuzzer.rand r (Array.length c))
    in
    try_input (Fuzzer.mutate r parent)
  done;
  {
    Fuzzer.corpus = List.rev !corpus;
    sites_covered = Hashtbl.length covered;
    total_sites = t.blocks;
    executions = !executions;
  }
