(** Local static analyses feeding the rewriter's optimizations.

    - {!eliminable}: the check-elimination rule (paper §6) — memory
      operands that provably cannot reach the low-fat heap.
    - {!clobbers}: the trampoline-specialization analysis ("additional
      low-level optimizations", §6) — how many scratch registers and
      whether %eflags must be preserved around the instrumentation,
      determined by a forward clobber scan within the basic block. *)

(** The trampoline code needs this many scratch registers when none are
    statically known to be dead at the instrumentation point. *)
let scratch_needed = 3

(** A memory operand that can never point into the low-fat heap does
    not need a check: no index register, and either no base register
    (the displacement is a ±2 GiB absolute, always ≥ 2 GiB away from
    the heap in the standard layout) or the base is the stack pointer
    (the stack lives ≥ 2 GiB from the heap). *)
let eliminable (m : X64.Isa.mem) ~(len : int) : bool =
  match m.idx with
  | Some _ -> false
  | None ->
    (match m.base with
     | None ->
       Lowfat.Layout.addr_range_clear_of_heap ~lo:m.disp ~hi:(m.disp + len)
     | Some r -> r = X64.Isa.rsp)

(** Result of the clobber scan at an instrumentation point. *)
type spec = { nsaves : int; save_flags : bool }

let conservative = { nsaves = scratch_needed; save_flags = true }

(* Scan forward from instruction [start] (inclusive: the displaced
   instruction itself still runs after the check) through the basic
   block, up to [limit] instructions, computing which registers are
   written before being read (dead at the point) and whether the flags
   are written before being read. *)
let clobbers (cfg : Cfg.t) ~(start : int) ~(limit : int) : spec =
  let read = Array.make X64.Isa.num_regs false in
  let dead = Array.make X64.Isa.num_regs false in
  let flags_dead = ref None in
  let stop = ref false in
  let i = ref start in
  let n = Cfg.num_instrs cfg in
  let steps = ref 0 in
  while (not !stop) && !i < n && !steps < limit do
    let addr, instr, _len = cfg.instrs.(!i) in
    if !i > start && Cfg.is_leader cfg addr then stop := true
    else begin
      List.iter (fun r -> if not dead.(r) then read.(r) <- true)
        (X64.Isa.uses instr);
      List.iter (fun r -> if not read.(r) then dead.(r) <- true)
        (X64.Isa.defs instr);
      if !flags_dead = None then begin
        if X64.Isa.reads_flags instr then flags_dead := Some false
        else if X64.Isa.writes_flags instr then flags_dead := Some true
      end;
      (match X64.Isa.flow_of instr with
       | Fall -> ()
       | Branch _ | Goto _ | To_call _ | Dyn_call | Dyn_goto | Stop ->
         stop := true);
      incr i;
      incr steps
    end
  done;
  let ndead = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 dead in
  {
    nsaves = max 0 (scratch_needed - ndead);
    save_flags = (match !flags_dead with Some true -> false | _ -> true);
  }
