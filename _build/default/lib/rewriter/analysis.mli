(** Local static analyses feeding the rewriter's optimizations. *)

val scratch_needed : int
(** Scratch registers the trampoline needs when none are provably dead. *)

val eliminable : X64.Isa.mem -> len:int -> bool
(** The check-elimination rule (paper §6): no index register, and
    either no base (an absolute ≥ 2 GiB from the heap) or an
    rsp base (the stack is ≥ 2 GiB from the heap). *)

(** Result of the clobber scan at an instrumentation point. *)
type spec = { nsaves : int; save_flags : bool }

val conservative : spec

val clobbers : Cfg.t -> start:int -> limit:int -> spec
(** Forward scan from instruction index [start] through its basic
    block (at most [limit] instructions): registers written before
    read are dead at the point and need no save; likewise the flags. *)
