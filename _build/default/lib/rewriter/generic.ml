(** Generic trampoline instrumentation: the E9Tool layer.

    RedFat is one client of E9Patch; E9Tool exposes the same patching
    machinery for arbitrary payloads (instruction counting, AFL-style
    coverage tracking, call tracing, ...).  This module is that layer
    for x64l: a caller-supplied selector picks instructions and assigns
    payload ids; each selected instruction is patched to a trampoline
    that executes a [Probe id] pseudo-op (delivered to the VM's
    [on_probe] hook) before the displaced instruction.

    The patch tactics are the same as the hardening rewriter's:
    [jmp rel32] with NOP padding, successor eviction for short
    instructions, 1-byte trap fallback. *)

type site = {
  s_addr : int;
  s_index : int;
  s_instr : X64.Isa.instr;
  s_leader : bool;  (** starts a recovered basic block *)
}

type t = {
  binary : Binfmt.Relf.t;
  traps : (int * int) list;
  probes : int;         (** instrumentation points inserted *)
  jump_patches : int;
  evictions : int;
  trap_patches : int;
}

let jmp_len = 5

(** [instrument ?tramp_base ~select binary]: patch every instruction
    for which [select] returns a payload id. *)
let instrument ?(tramp_base = Lowfat.Layout.trampoline_base)
    ~(select : site -> int option) (binary : Binfmt.Relf.t) : t =
  let text = Binfmt.Relf.text_exn binary in
  let cfg = Cfg.recover ~text_addr:text.addr text.bytes in
  let n = Cfg.num_instrs cfg in
  let chosen = ref [] in
  for i = n - 1 downto 0 do
    let addr, instr, _ = cfg.instrs.(i) in
    let site =
      { s_addr = addr; s_index = i; s_instr = instr;
        s_leader = Cfg.is_leader cfg addr }
    in
    match select site with
    | Some id -> chosen := (i, id) :: !chosen
    | None -> ()
  done;
  let patch_starts = Hashtbl.create 64 in
  List.iter (fun (i, _) -> Hashtbl.replace patch_starts i ()) !chosen;
  let text_bytes = Bytes.of_string text.bytes in
  let tramp = Buffer.create 1024 in
  let traps = ref [] in
  let jump_patches = ref 0 and evictions = ref 0 and trap_patches = ref 0 in
  let patch_byte addr b = Bytes.set text_bytes (addr - text.addr) (Char.chr b) in
  let patch_string addr s =
    Bytes.blit_string s 0 text_bytes (addr - text.addr) (String.length s)
  in
  List.iter
    (fun (i, id) ->
      let a0, _, l0 = cfg.instrs.(i) in
      let displaced = ref [ i ] and span = ref l0 in
      let tactic =
        if l0 >= jmp_len then `Jump
        else begin
          let ok = ref true and k = ref (i + 1) in
          while !span < jmp_len && !ok do
            if !k >= n then ok := false
            else begin
              let ak, ik, lk = cfg.instrs.(!k) in
              if
                Cfg.is_leader cfg ak
                || Hashtbl.mem patch_starts !k
                || X64.Isa.flow_of ik <> X64.Isa.Fall
              then ok := false
              else begin
                displaced := !k :: !displaced;
                span := !span + lk;
                incr k
              end
            end
          done;
          if !span >= jmp_len && !ok then `Jump else `Trap
        end
      in
      (match tactic with
       | `Trap ->
         displaced := [ i ];
         span := l0
       | `Jump -> ());
      let displaced = List.rev !displaced in
      if List.length displaced > 1 then
        evictions := !evictions + List.length displaced - 1;
      let tramp_addr = tramp_base + Buffer.length tramp in
      X64.Encode.encode_at tramp
        (tramp_base + Buffer.length tramp)
        (X64.Isa.Probe id);
      List.iter
        (fun k ->
          let _, ik, _ = cfg.instrs.(k) in
          X64.Encode.encode_at tramp (tramp_base + Buffer.length tramp) ik)
        displaced;
      X64.Encode.encode_at tramp
        (tramp_base + Buffer.length tramp)
        (X64.Isa.Jmp (a0 + !span));
      match tactic with
      | `Jump ->
        incr jump_patches;
        patch_string a0 (X64.Encode.encode_seq ~addr:a0 [ X64.Isa.Jmp tramp_addr ]);
        for off = jmp_len to !span - 1 do
          patch_byte (a0 + off) X64.Encode.op_nop
        done
      | `Trap ->
        incr trap_patches;
        patch_byte a0 X64.Encode.op_trap;
        traps := (a0, tramp_addr) :: !traps)
    !chosen;
  let traps = List.rev !traps in
  let traptab =
    String.concat ""
      (List.map (fun (a, t) -> Printf.sprintf "%x %x\n" a t) traps)
  in
  let sections =
    List.map
      (fun (s : Binfmt.Relf.section) ->
        if s.name = ".text" then { s with bytes = Bytes.to_string text_bytes }
        else s)
      binary.sections
    @ [ Binfmt.Relf.section ~executable:true ~name:".e9tool" ~addr:tramp_base
          (Buffer.contents tramp) ]
    @
    if traptab = "" then []
    else [ Binfmt.Relf.section ~name:".traptab" ~addr:0 traptab ]
  in
  {
    binary = { binary with sections };
    traps;
    probes = List.length !chosen;
    jump_patches = !jump_patches;
    evictions = !evictions;
    trap_patches = !trap_patches;
  }

(** Instrument every recovered basic-block leader (coverage tracking).
    Payload ids are assigned densely in address order; returns the
    result and the id count. *)
let instrument_blocks ?tramp_base (binary : Binfmt.Relf.t) : t * int =
  let counter = ref 0 in
  let r =
    instrument ?tramp_base
      ~select:(fun s ->
        if s.s_leader then begin
          let id = !counter in
          incr counter;
          Some id
        end
        else None)
      binary
  in
  (r, !counter)
