(** Generic trampoline instrumentation: the E9Tool layer.  A selector
    picks instructions and assigns payload ids; each is patched to a
    trampoline executing [Probe id] (delivered to the VM's [on_probe]
    hook) before the displaced instruction, using the same patch
    tactics as the hardening rewriter. *)

type site = {
  s_addr : int;
  s_index : int;
  s_instr : X64.Isa.instr;
  s_leader : bool;  (** starts a recovered basic block *)
}

type t = {
  binary : Binfmt.Relf.t;
  traps : (int * int) list;
  probes : int;
  jump_patches : int;
  evictions : int;
  trap_patches : int;
}

val instrument :
  ?tramp_base:int -> select:(site -> int option) -> Binfmt.Relf.t -> t

val instrument_blocks : ?tramp_base:int -> Binfmt.Relf.t -> t * int
(** Probe every recovered basic-block leader (coverage tracking);
    returns the result and the number of blocks. *)
