lib/rewriter/cfg.ml: Array Hashtbl X64
