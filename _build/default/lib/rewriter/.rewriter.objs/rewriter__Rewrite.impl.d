lib/rewriter/rewrite.ml: Analysis Array Binfmt Buffer Bytes Cfg Char Format Hashtbl List Lowfat Printf String X64
