lib/rewriter/analysis.mli: Cfg X64
