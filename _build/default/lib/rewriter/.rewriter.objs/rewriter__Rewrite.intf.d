lib/rewriter/rewrite.mli: Binfmt Format
