lib/rewriter/generic.ml: Array Binfmt Buffer Bytes Cfg Char Hashtbl List Lowfat Printf String X64
