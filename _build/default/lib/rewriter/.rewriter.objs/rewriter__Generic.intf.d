lib/rewriter/generic.mli: Binfmt X64
