lib/rewriter/cfg.mli: Hashtbl X64
