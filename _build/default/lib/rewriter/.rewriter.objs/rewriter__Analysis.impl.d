lib/rewriter/analysis.ml: Array Cfg List Lowfat X64
