(** Over-approximate control-flow recovery (paper §6).

    Precise CFG recovery from stripped binaries is undecidable; the
    batching optimization only needs an *over-approximation* of jump
    targets — a spurious leader merely splits a batch in two (smaller
    batches, same correctness), while a missed leader could move a
    check onto a path that never executes it.  We therefore err on the
    side of more leaders: every direct branch/call target, every
    fall-through edge of a branch, call or return, and conservatively
    the instruction after any indirect transfer. *)

type t = {
  text_addr : int;
  instrs : (int * X64.Isa.instr * int) array; (* addr, instr, length *)
  index_of : (int, int) Hashtbl.t;            (* addr -> instrs index *)
  leaders : (int, unit) Hashtbl.t;            (* BB start addresses *)
}

let recover ~(text_addr : int) (code : string) : t =
  let instrs = Array.of_list (X64.Disasm.sweep ~addr:text_addr code) in
  let index_of = Hashtbl.create (Array.length instrs) in
  Array.iteri (fun i (a, _, _) -> Hashtbl.replace index_of a i) instrs;
  let leaders = Hashtbl.create 256 in
  let mark a = if Hashtbl.mem index_of a then Hashtbl.replace leaders a () in
  mark text_addr;
  (* code-pointer constant scanning: an immediate that is a valid
     instruction address is a potential indirect-branch target (taken
     function addresses), so it must never be displaced or batched
     across.  This is the standard conservative heuristic of static
     rewriters for stripped binaries. *)
  Array.iter
    (fun (_, i, _) ->
      match i with
      | X64.Isa.Mov_ri (_, v) when Hashtbl.mem index_of v -> mark v
      | _ -> ())
    instrs;
  Array.iter
    (fun (a, i, len) ->
      match X64.Isa.flow_of i with
      | Fall -> ()
      | Goto t -> mark t
      | Branch t ->
        mark t;
        mark (a + len)
      | To_call t ->
        mark t;
        mark (a + len)
      (* indirect transfers: the target is statically unknown; the
         return fall-through is a leader, and potential dynamic targets
         are recovered below by code-pointer constant scanning *)
      | Dyn_call -> mark (a + len)
      | Dyn_goto -> mark (a + len)
      | Stop -> mark (a + len))
    instrs;
  { text_addr; instrs; index_of; leaders }

let is_leader t addr = Hashtbl.mem t.leaders addr

let num_instrs t = Array.length t.instrs

(** Index of the instruction at [addr], if [addr] is a decode-aligned
    instruction start. *)
let index_at t addr = Hashtbl.find_opt t.index_of addr
