(** Sparse paged memory over a simulated 64-bit virtual address space.

    Pages are 4 KiB and materialized on [map]; accessing an unmapped
    page faults, like the MMU would.  Addresses are OCaml [int]s: the
    simulated layout tops out at a few TiB (see {!Lowfat.Layout}),
    comfortably inside 62 bits. *)

exception Segfault of int

let page_bits = 12
let page_size = 1 lsl page_bits

type t = {
  pages : (int, Bytes.t) Hashtbl.t;     (* materialized pages *)
  reserved : (int, unit) Hashtbl.t;     (* mapped but untouched pages *)
  (* one-entry cache: page lookups dominate the interpreter profile *)
  mutable last_page_no : int;
  mutable last_page : Bytes.t;
}

let none = Bytes.create 0

let create () =
  {
    pages = Hashtbl.create 4096;
    reserved = Hashtbl.create 4096;
    last_page_no = -1;
    last_page = none;
  }

(* Demand-zero paging: [map] only reserves; the backing bytes appear on
   first touch.  This keeps huge sparse allocations (the legacy heap
   serves multi-hundred-MB requests) cheap on the host. *)
let page_of t addr =
  let no = addr lsr page_bits in
  if no = t.last_page_no then t.last_page
  else
    match Hashtbl.find_opt t.pages no with
    | Some p ->
      t.last_page_no <- no;
      t.last_page <- p;
      p
    | None ->
      if Hashtbl.mem t.reserved no then begin
        let p = Bytes.make page_size '\000' in
        Hashtbl.add t.pages no p;
        Hashtbl.remove t.reserved no;
        t.last_page_no <- no;
        t.last_page <- p;
        p
      end
      else raise (Segfault addr)

let is_mapped t addr =
  let no = addr lsr page_bits in
  Hashtbl.mem t.pages no || Hashtbl.mem t.reserved no

(** Reserve (demand-zero) every page covering [addr, addr+len). *)
let map t ~addr ~len =
  if len > 0 then begin
    let first = addr lsr page_bits and last = (addr + len - 1) lsr page_bits in
    for no = first to last do
      if not (Hashtbl.mem t.pages no || Hashtbl.mem t.reserved no) then
        Hashtbl.add t.reserved no ()
    done
  end

(** Remove the mapping; later access faults.  Used to model redzone
    poisoning of never-reused areas and by tests. *)
let unmap t ~addr ~len =
  if len > 0 then begin
    let first = addr lsr page_bits and last = (addr + len - 1) lsr page_bits in
    for no = first to last do
      Hashtbl.remove t.pages no;
      Hashtbl.remove t.reserved no;
      if t.last_page_no = no then t.last_page_no <- -1
    done
  end

let read_u8 t addr =
  let p = page_of t addr in
  Char.code (Bytes.unsafe_get p (addr land (page_size - 1)))

let write_u8 t addr v =
  let p = page_of t addr in
  Bytes.unsafe_set p (addr land (page_size - 1)) (Char.unsafe_chr (v land 0xff))

(** Little-endian read of [len] in {1,2,4,8} bytes, zero-extended.
    An 8-byte read reconstructs the stored 63-bit int. *)
(* explicit lets fix the evaluation (and hence faulting) order at the
   first byte of the access, like hardware would *)
let read t ~addr ~len =
  match len with
  | 1 -> read_u8 t addr
  | 2 ->
    let b0 = read_u8 t addr in
    let b1 = read_u8 t (addr + 1) in
    b0 lor (b1 lsl 8)
  | 4 ->
    let b0 = read_u8 t addr in
    let b1 = read_u8 t (addr + 1) in
    let b2 = read_u8 t (addr + 2) in
    let b3 = read_u8 t (addr + 3) in
    b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)
  | 8 ->
    let b0 = read_u8 t addr in
    let b1 = read_u8 t (addr + 1) in
    let b2 = read_u8 t (addr + 2) in
    let b3 = read_u8 t (addr + 3) in
    let b4 = read_u8 t (addr + 4) in
    let b5 = read_u8 t (addr + 5) in
    let b6 = read_u8 t (addr + 6) in
    let b7 = read_u8 t (addr + 7) in
    b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) lor (b4 lsl 32)
    lor (b5 lsl 40) lor (b6 lsl 48) lor (b7 lsl 56)
  | _ -> invalid_arg "Mem.read"

let write t ~addr ~len v =
  match len with
  | 1 -> write_u8 t addr v
  | 2 ->
    write_u8 t addr v;
    write_u8 t (addr + 1) (v lsr 8)
  | 4 ->
    write_u8 t addr v;
    write_u8 t (addr + 1) (v lsr 8);
    write_u8 t (addr + 2) (v lsr 16);
    write_u8 t (addr + 3) (v lsr 24)
  | 8 ->
    write_u8 t addr v;
    write_u8 t (addr + 1) (v lsr 8);
    write_u8 t (addr + 2) (v lsr 16);
    write_u8 t (addr + 3) (v lsr 24);
    write_u8 t (addr + 4) (v lsr 32);
    write_u8 t (addr + 5) (v lsr 40);
    write_u8 t (addr + 6) (v lsr 48);
    write_u8 t (addr + 7) (v lsr 56)
  | _ -> invalid_arg "Mem.write"

let write_string t ~addr s =
  map t ~addr ~len:(String.length s);
  String.iteri (fun k c -> write_u8 t (addr + k) (Char.code c)) s

(** Read up to [len] bytes starting at [addr], stopping early at the
    first unmapped page.  Used by the instruction fetcher. *)
let read_string t ~addr ~len =
  let b = Buffer.create len in
  (try
     for k = 0 to len - 1 do
       Buffer.add_char b (Char.chr (read_u8 t (addr + k)))
     done
   with Segfault _ -> ());
  Buffer.contents b
