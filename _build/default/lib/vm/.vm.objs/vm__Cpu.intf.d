lib/vm/cpu.mli: Hashtbl Mem X64
