lib/vm/mem.ml: Buffer Bytes Char Hashtbl String
