lib/vm/cpu.ml: Array Hashtbl Int List Mem X64
