lib/vm/mem.mli:
