(** Sparse paged memory over a simulated 64-bit virtual address space.

    Pages are 4 KiB and materialized by {!map}; accessing an unmapped
    page raises {!Segfault}, like the MMU would.  Addresses are OCaml
    [int]s (the simulated layout tops out at a few TiB). *)

exception Segfault of int
(** Raised with the faulting address on access to an unmapped page.
    Multi-byte accesses fault on their first unmapped byte. *)

val page_bits : int
val page_size : int

type t

val create : unit -> t

val map : t -> addr:int -> len:int -> unit
(** Materialize (zero-filled) every page covering [addr, addr+len). *)

val unmap : t -> addr:int -> len:int -> unit
(** Remove the mapping; later access faults. *)

val is_mapped : t -> int -> bool

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit

val read : t -> addr:int -> len:int -> int
(** Little-endian read of [len] in {1,2,4,8} bytes, zero-extended.
    An 8-byte read reconstructs a stored OCaml int exactly. *)

val write : t -> addr:int -> len:int -> int -> unit

val write_string : t -> addr:int -> string -> unit
(** Map and copy a byte string (used by the loader). *)

val read_string : t -> addr:int -> len:int -> string
(** Read up to [len] bytes, stopping early at the first unmapped page
    (used by the instruction fetcher). *)
