(** A Valgrind-Memcheck-style comparator: heavyweight DBI with
    byte-granular addressability (A-bit) shadow memory and a
    redzone-wrapping allocator with a free quarantine.  Models Memcheck
    as invoked in the paper's Table 1
    ([--leak-check=no --undef-value-errors=no]). *)

val redzone : int
val dispatch_cost : int
(** Extra cycles charged per guest instruction (the JIT). *)

val access_cost : int
(** Extra cycles charged per guest memory access (the A-bit check). *)

type error = { addr : int; len : int; write : bool; rip : int }

type t

val create : Vm.Mem.t -> t

val malloc : t -> int -> int
val free : t -> int -> unit
val mark : t -> addr:int -> len:int -> accessible:bool -> unit
val accessible : t -> int -> bool

val errors : t -> error list
(** Logged invalid accesses (one per guest instruction, like the real
    tool's deduplication), in discovery order. *)

val install : t -> Vm.Cpu.t -> Binfmt.Relf.t -> Vm.Cpu.runtime
(** Load the binary, mark statics/stack addressable, set the dispatch
    cost and the per-access hook; returns the runtime dispatch table
    for [Cpu.run]. *)
