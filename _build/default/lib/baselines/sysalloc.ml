(** The "glibc" allocator used by uninstrumented baseline runs: a
    simple 16-byte-aligned bump allocator with per-class free lists,
    living in region 0 (non-fat, brk-style above .data). *)

type t = {
  mem : Vm.Mem.t;
  mutable brk : int;
  free_by_size : (int, int list ref) Hashtbl.t;
  sizes : (int, int) Hashtbl.t;
}

let heap_base = Lowfat.Layout.data_base + 0x0400_0000

let create mem =
  { mem; brk = heap_base; free_by_size = Hashtbl.create 64;
    sizes = Hashtbl.create 1024 }

let round16 n = (n + 15) land lnot 15

let malloc t n =
  let n = round16 (max n 16) in
  let bucket =
    match Hashtbl.find_opt t.free_by_size n with
    | Some b -> b
    | None ->
      let b = ref [] in
      Hashtbl.replace t.free_by_size n b;
      b
  in
  match !bucket with
  | a :: rest ->
    bucket := rest;
    Hashtbl.replace t.sizes a n;
    a
  | [] ->
    let a = t.brk in
    t.brk <- a + n;
    Vm.Mem.map t.mem ~addr:a ~len:n;
    Hashtbl.replace t.sizes a n;
    a

let free t p =
  if p <> 0 then
    match Hashtbl.find_opt t.sizes p with
    | None -> () (* tolerate, like glibc often does until corruption *)
    | Some n ->
      Hashtbl.remove t.sizes p;
      let bucket =
        match Hashtbl.find_opt t.free_by_size n with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.replace t.free_by_size n b;
          b
      in
      bucket := p :: !bucket

let vm_runtime (t : t) : Vm.Cpu.runtime =
  {
    Vm.Cpu.rt_malloc = (fun _ n -> malloc t n);
    rt_free = (fun _ p -> free t p);
    rt_name = "glibc";
  }
