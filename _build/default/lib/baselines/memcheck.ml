(** A Valgrind-Memcheck-style comparator: heavyweight DBI with
    byte-granular addressability (A-bit) shadow memory and a
    redzone-wrapping allocator with a free quarantine.

    This models Memcheck as invoked in the paper's Table 1
    ([--leak-check=no --undef-value-errors=no]): only addressability is
    tracked, so the per-access work is the A-bit lookup.  Like the real
    tool it runs the *original* binary — no static rewriting — paying a
    JIT dispatch cost on every guest instruction, and it *logs* errors
    rather than aborting (testing/debugging use case). *)

let redzone = 16

(** Cost model: Valgrind translates every guest instruction into VEX IR
    and back (factor ~4-6 even for pure compute), and inserts an A-bit
    shadow lookup + branch around every memory access. *)
let dispatch_cost = 8
let access_cost = 18

type error = { addr : int; len : int; write : bool; rip : int }

type t = {
  mem : Vm.Mem.t;
  shadow : (int, Bytes.t) Hashtbl.t; (* page -> A bits, 1 = addressable *)
  mutable brk : int;
  sizes : (int, int) Hashtbl.t;
  mutable quarantine : int list;
  mutable errors : error list;
  seen : (int, unit) Hashtbl.t; (* dedupe by guest rip, like memcheck *)
}

let heap_base = Lowfat.Layout.data_base + 0x1000_0000

let create mem =
  {
    mem;
    shadow = Hashtbl.create 1024;
    brk = heap_base;
    sizes = Hashtbl.create 1024;
    quarantine = [];
    errors = [];
    seen = Hashtbl.create 64;
  }

let page_bits = Vm.Mem.page_bits
let page_size = Vm.Mem.page_size

let shadow_page t no =
  match Hashtbl.find_opt t.shadow no with
  | Some p -> p
  | None ->
    let p = Bytes.make page_size '\000' in
    Hashtbl.add t.shadow no p;
    p

let mark t ~addr ~len ~(accessible : bool) =
  let v = if accessible then '\001' else '\000' in
  for a = addr to addr + len - 1 do
    Bytes.set (shadow_page t (a lsr page_bits)) (a land (page_size - 1)) v
  done

let accessible t addr =
  match Hashtbl.find_opt t.shadow (addr lsr page_bits) with
  | None -> false
  | Some p -> Bytes.get p (addr land (page_size - 1)) = '\001'

(* --- the replacement allocator -------------------------------------- *)

let malloc t n =
  let n' = (max n 1 + 15) land lnot 15 in
  let a = t.brk + redzone in
  t.brk <- a + n' + redzone;
  Vm.Mem.map t.mem ~addr:(a - redzone) ~len:(n' + 2 * redzone);
  Hashtbl.replace t.sizes a n;
  (* block addressable, surrounding redzones not *)
  mark t ~addr:a ~len:n ~accessible:true;
  a

let free t p =
  if p <> 0 then
    match Hashtbl.find_opt t.sizes p with
    | None -> ()
    | Some n ->
      Hashtbl.remove t.sizes p;
      (* poison and quarantine: the space is never reused, so
         use-after-free keeps being detected (until quarantine pressure,
         which our workloads never reach) *)
      mark t ~addr:p ~len:n ~accessible:false;
      t.quarantine <- p :: t.quarantine

(* --- DBI hooks ------------------------------------------------------ *)

let on_mem t (cpu : Vm.Cpu.t) ~addr ~len ~write =
  cpu.cycles <- cpu.cycles + access_cost;
  let bad = ref false in
  for a = addr to addr + len - 1 do
    if not (accessible t a) then bad := true
  done;
  if !bad && not (Hashtbl.mem t.seen cpu.rip) then begin
    Hashtbl.add t.seen cpu.rip ();
    t.errors <- { addr; len; write; rip = cpu.rip } :: t.errors
  end

let errors t = List.rev t.errors

(** Prepare a VM to run [binary] under the simulated Memcheck: loads
    the binary, marks statics/stack addressable, installs hooks.
    Returns the runtime to pass to [Cpu.run]. *)
let install (t : t) (cpu : Vm.Cpu.t) (binary : Binfmt.Relf.t) :
    Vm.Cpu.runtime =
  Binfmt.Relf.load_into cpu.mem binary;
  List.iter
    (fun (s : Binfmt.Relf.section) ->
      mark t ~addr:s.addr ~len:(String.length s.bytes) ~accessible:true)
    binary.sections;
  Vm.Mem.map cpu.mem ~addr:Lowfat.Layout.stack_lo ~len:Lowfat.Layout.stack_size;
  mark t ~addr:Lowfat.Layout.stack_lo ~len:Lowfat.Layout.stack_size
    ~accessible:true;
  cpu.regs.(X64.Isa.rsp) <- Lowfat.Layout.stack_top - 64;
  cpu.dispatch_cost <- dispatch_cost;
  cpu.on_mem <- Some (fun cpu ~addr ~len ~write -> on_mem t cpu ~addr ~len ~write);
  {
    Vm.Cpu.rt_malloc = (fun _ n -> malloc t n);
    rt_free = (fun _ p -> free t p);
    rt_name = "memcheck";
  }
