lib/baselines/memcheck.mli: Binfmt Vm
