lib/baselines/sysalloc.ml: Hashtbl Lowfat Vm
