lib/baselines/sysalloc.mli: Vm
