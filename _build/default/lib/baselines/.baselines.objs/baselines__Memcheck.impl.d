lib/baselines/memcheck.ml: Array Binfmt Bytes Hashtbl List Lowfat String Vm X64
