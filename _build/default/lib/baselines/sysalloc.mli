(** The "glibc" allocator used by uninstrumented baseline runs: a
    16-byte-aligned bump allocator with per-size free lists in region 0
    (non-fat, brk-style above .data). *)

type t

val heap_base : int
val create : Vm.Mem.t -> t
val malloc : t -> int -> int
val free : t -> int -> unit
val vm_runtime : t -> Vm.Cpu.runtime
