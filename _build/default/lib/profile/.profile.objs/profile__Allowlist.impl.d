lib/profile/allowlist.ml: List Printf String
