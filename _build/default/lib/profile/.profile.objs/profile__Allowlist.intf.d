lib/profile/allowlist.mli:
