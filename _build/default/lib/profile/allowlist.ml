(** Allow-lists (paper §5, Figure 5): the set of instrumentation sites
    — instruction addresses in the original binary — that profiling
    observed to always pass the (LowFat) check, and that the production
    build may therefore harden with the full (Redzone)+(LowFat) check.

    The on-disk format is the same as RedFat's allow.lst: one hex
    address per line. *)

type t = int list

let save path (t : t) =
  let oc = open_out path in
  List.iter (fun a -> Printf.fprintf oc "%x\n" a) t;
  close_out oc

let load path : t =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line ->
      let line = String.trim line in
      if line = "" then go acc
      else go (int_of_string ("0x" ^ line) :: acc)
    | exception End_of_file -> List.rev acc
  in
  let r = go [] in
  close_in ic;
  r

let union (a : t) (b : t) : t = List.sort_uniq compare (a @ b)

(** Sites in [a] but not [b] (e.g. which sites a better test suite
    added to the allow-list). *)
let diff (a : t) (b : t) : t = List.filter (fun x -> not (List.mem x b)) a
