(** Allow-lists (paper §5, Figure 5): the instrumentation sites that
    profiling observed to always pass the (LowFat) check.  On-disk
    format as in RedFat's allow.lst: one hex address per line. *)

type t = int list

val save : string -> t -> unit
val load : string -> t

val union : t -> t -> t
val diff : t -> t -> t
(** [diff a b]: sites in [a] but not [b]. *)
