(** Lexer for MiniC source text (the [.mc] files the CLI compiles).

    Tokens carry line/column positions for error reporting.  Comments
    are [// ...] and [/* ... */]. *)

type token =
  | INT of int
  | IDENT of string
  (* keywords *)
  | KFN | KVAR | KIF | KELSE | KWHILE | KFOR | KIN | KRETURN
  | KPRINT | KFREE | KALLOC | KBALLOC | KINPUT | KGLOBAL
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACK | RBRACK | DOTBRACK
  | COMMA | SEMI | ASSIGN | DOTDOT
  (* operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | SHL | SHR
  | EQ | NE | LT | LE | GT | GE | ANDAND | OROR
  | EOF

type pos = { line : int; col : int }

type t = { tok : token; pos : pos }

exception Lex_error of string * pos

let keyword = function
  | "fn" -> Some KFN
  | "var" -> Some KVAR
  | "if" -> Some KIF
  | "else" -> Some KELSE
  | "while" -> Some KWHILE
  | "for" -> Some KFOR
  | "in" -> Some KIN
  | "return" -> Some KRETURN
  | "print" -> Some KPRINT
  | "free" -> Some KFREE
  | "alloc" -> Some KALLOC
  | "balloc" -> Some KBALLOC
  | "input" -> Some KINPUT
  | "global" -> Some KGLOBAL
  | _ -> None

let token_name = function
  | INT n -> Printf.sprintf "integer %d" n
  | IDENT s -> Printf.sprintf "identifier '%s'" s
  | KFN -> "'fn'" | KVAR -> "'var'" | KIF -> "'if'" | KELSE -> "'else'"
  | KWHILE -> "'while'" | KFOR -> "'for'" | KIN -> "'in'"
  | KRETURN -> "'return'" | KPRINT -> "'print'" | KFREE -> "'free'"
  | KALLOC -> "'alloc'" | KBALLOC -> "'balloc'" | KINPUT -> "'input'"
  | KGLOBAL -> "'global'"
  | LPAREN -> "'('" | RPAREN -> "')'" | LBRACE -> "'{'" | RBRACE -> "'}'"
  | LBRACK -> "'['" | RBRACK -> "']'" | DOTBRACK -> "'.['"
  | COMMA -> "','" | SEMI -> "';'" | ASSIGN -> "'='" | DOTDOT -> "'..'"
  | PLUS -> "'+'" | MINUS -> "'-'" | STAR -> "'*'" | SLASH -> "'/'"
  | PERCENT -> "'%'" | AMP -> "'&'" | PIPE -> "'|'" | CARET -> "'^'"
  | TILDE -> "'~'" | SHL -> "'<<'" | SHR -> "'>>'"
  | EQ -> "'=='" | NE -> "'!='" | LT -> "'<'" | LE -> "'<='"
  | GT -> "'>'" | GE -> "'>='" | ANDAND -> "'&&'" | OROR -> "'||'"
  | EOF -> "end of input"

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_alpha c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_alnum c = is_alpha c || is_digit c

(** Tokenize a whole source string. *)
let tokenize (src : string) : t list =
  let n = String.length src in
  let line = ref 1 and bol = ref 0 in
  let pos i = { line = !line; col = i - !bol + 1 } in
  let toks = ref [] in
  let emit tok p = toks := { tok; pos = p } :: !toks in
  let rec go i =
    if i >= n then emit EOF (pos i)
    else
      let c = src.[i] in
      let p = pos i in
      match c with
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '\n' ->
        incr line;
        bol := i + 1;
        go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
        let rec skip j =
          if j + 1 >= n then raise (Lex_error ("unterminated comment", p))
          else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
          else begin
            if src.[j] = '\n' then begin incr line; bol := j + 1 end;
            skip (j + 1)
          end
        in
        go (skip (i + 2))
      | '0' when i + 1 < n && (src.[i + 1] = 'x' || src.[i + 1] = 'X') ->
        let rec scan j = if j < n && is_hex src.[j] then scan (j + 1) else j in
        let j = scan (i + 2) in
        if j = i + 2 then raise (Lex_error ("bad hex literal", p));
        emit (INT (int_of_string (String.sub src i (j - i)))) p;
        go j
      | c when is_digit c ->
        let rec scan j = if j < n && is_digit src.[j] then scan (j + 1) else j in
        let j = scan i in
        emit (INT (int_of_string (String.sub src i (j - i)))) p;
        go j
      | c when is_alpha c ->
        let rec scan j = if j < n && is_alnum src.[j] then scan (j + 1) else j in
        let j = scan i in
        let word = String.sub src i (j - i) in
        emit (match keyword word with Some k -> k | None -> IDENT word) p;
        go j
      | '.' when i + 1 < n && src.[i + 1] = '[' ->
        emit DOTBRACK p;
        go (i + 2)
      | '.' when i + 1 < n && src.[i + 1] = '.' ->
        emit DOTDOT p;
        go (i + 2)
      | '(' -> emit LPAREN p; go (i + 1)
      | ')' -> emit RPAREN p; go (i + 1)
      | '{' -> emit LBRACE p; go (i + 1)
      | '}' -> emit RBRACE p; go (i + 1)
      | '[' -> emit LBRACK p; go (i + 1)
      | ']' -> emit RBRACK p; go (i + 1)
      | ',' -> emit COMMA p; go (i + 1)
      | ';' -> emit SEMI p; go (i + 1)
      | '+' -> emit PLUS p; go (i + 1)
      | '-' -> emit MINUS p; go (i + 1)
      | '*' -> emit STAR p; go (i + 1)
      | '/' -> emit SLASH p; go (i + 1)
      | '%' -> emit PERCENT p; go (i + 1)
      | '~' -> emit TILDE p; go (i + 1)
      | '^' -> emit CARET p; go (i + 1)
      | '&' when i + 1 < n && src.[i + 1] = '&' -> emit ANDAND p; go (i + 2)
      | '&' -> emit AMP p; go (i + 1)
      | '|' when i + 1 < n && src.[i + 1] = '|' -> emit OROR p; go (i + 2)
      | '|' -> emit PIPE p; go (i + 1)
      | '<' when i + 1 < n && src.[i + 1] = '<' -> emit SHL p; go (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit LE p; go (i + 2)
      | '<' -> emit LT p; go (i + 1)
      | '>' when i + 1 < n && src.[i + 1] = '>' -> emit SHR p; go (i + 2)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit GE p; go (i + 2)
      | '>' -> emit GT p; go (i + 1)
      | '=' when i + 1 < n && src.[i + 1] = '=' -> emit EQ p; go (i + 2)
      | '=' -> emit ASSIGN p; go (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit NE p; go (i + 2)
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, p))
  in
  go 0;
  List.rev !toks
