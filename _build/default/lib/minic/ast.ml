(** MiniC: the source language of the simulated toolchain.

    A small C-like imperative language — integers, heap arrays, globals,
    functions — compiled by {!Codegen} to x64l binaries.  The evaluation
    workloads (SPEC kernels, CVE models, Juliet cases, Kraken kernels)
    are all MiniC programs, so every binary the rewriter hardens went
    through a real compilation pipeline, with the idioms (indexed
    operands, rsp-relative spills, unrolled stores) that make the
    rewriter's analyses meaningful. *)

(** Array element width: 8-byte ints or single bytes. *)
type elem = E8 | E1

let elem_bytes = function E8 -> 8 | E1 -> 1

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr

type expr =
  | Int of int
  | Var of string               (** local, parameter, or global (address) *)
  | Bin of binop * expr * expr
  | Cmp of X64.Isa.cc * expr * expr   (** 1 if true else 0 *)
  | Load of elem * expr * expr        (** arr[idx] *)
  | Loadk of elem * expr * expr * int (** arr[idx + k], k folded into disp *)
  | Alloc of expr               (** malloc(n bytes); returns pointer *)
  | Input                       (** next scripted input (0 if exhausted) *)
  | Call of string * expr list  (** ≤ 4 arguments *)
  | Addr_of of string           (** address of a function (code pointer) *)
  | Call_ptr of expr * expr list
      (** indirect call through a function pointer; ≤ 4 arguments *)

type stmt =
  | Let of string * expr        (** declare-and-init a local *)
  | Set of string * expr
  | Store of elem * expr * expr * expr        (** arr[idx] = v *)
  | Storek of elem * expr * expr * int * expr (** arr[idx + k] = v *)
  | Multi_store of elem * expr * expr * (int * expr) list
      (** arr[idx + k_j] = v_j for each (k_j, v_j): the address registers
          are computed once, producing the batchable/mergeable
          instruction runs of paper Example 2 *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list   (** for v = lo; v < hi; v++ *)
  | Expr of expr                (** evaluate for side effects *)
  | Print of expr
  | Free of expr
  | Return of expr

type func = { name : string; params : string list; body : stmt list }

type program = {
  globals : (string * int) list;  (** name, size in bytes (zeroed) *)
  funcs : func list;              (** must include "main" *)
}

let func ~name ?(params = []) body = { name; params; body }

let program ?(globals = []) funcs = { globals; funcs }
