(** MiniC → x64l code generation.

    Deliberately "-O2-shaped" where it matters to the rewriter: the
    hottest locals are register-allocated into callee-saved registers
    (so, as in real optimized code, most traffic is register traffic,
    not stack traffic); the remaining locals live at [disp(%rsp)] with
    no frame pointer (so the check-elimination rule fires exactly as it
    does on real optimized binaries); array accesses compile to indexed
    memory operands [disp(base,idx,scale)]; and [Multi_store] emits
    runs of stores sharing base/index registers (the batching/merging
    fodder of paper Example 2). *)

open X64

exception Compile_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

let scratch = [| Isa.r8; Isa.r9; Isa.r10; Isa.r11 |]
let nscratch = Array.length scratch
let arg_regs = [| Isa.rdi; Isa.rsi; Isa.rdx; Isa.rcx |]

(* registers available to the (usage-count) register allocator *)
let callee_saved = [| Isa.rbx; Isa.rbp; Isa.r12; Isa.r13; Isa.r14; Isa.r15 |]

(** Where a local lives: a callee-saved register or a stack slot. *)
type loc = Lreg of Isa.reg | Lslot of int

type ctx = {
  mutable items : Asm.item list; (* reverse order *)
  mutable labels : int;
  slots : (string, loc) Hashtbl.t;
  globals : (string, int) Hashtbl.t;
  mutable push_depth : int; (* bytes pushed below the frame *)
  frame : int;
  epilogue : string;
}

let emit ctx i = ctx.items <- Asm.I i :: ctx.items
let emit_item ctx it = ctx.items <- it :: ctx.items

let fresh ctx prefix =
  ctx.labels <- ctx.labels + 1;
  Printf.sprintf "%s%d" prefix ctx.labels

let local_loc ctx name =
  match Hashtbl.find_opt ctx.slots name with
  | Some l -> l
  | None -> fail "unknown local %s" name

let slot_mem ctx slot =
  Isa.mem ~disp:((8 * slot) + ctx.push_depth) ~base:Isa.rsp ()

let width_of_elem = function Ast.E8 -> Isa.W8 | Ast.E1 -> Isa.W1

(* --- expressions ---------------------------------------------------- *)

(* [eval ctx depth e] leaves the value of [e] in [scratch.(depth)] (or,
   when the register stack is exhausted, spills through the machine
   stack) and returns the result register. *)
let rec eval ctx depth (e : Ast.expr) : Isa.reg =
  let dst = scratch.(depth mod nscratch) in
  (* two-operand helper handling register exhaustion *)
  let eval2 a b (k : Isa.reg -> Isa.reg -> unit) : Isa.reg =
    let ra = eval ctx depth a in
    if depth + 1 < nscratch then begin
      let rb = eval ctx (depth + 1) b in
      k ra rb;
      ra
    end
    else begin
      emit ctx (Isa.Push ra);
      ctx.push_depth <- ctx.push_depth + 8;
      let rb = eval ctx depth b in
      (* move rb out of the way, recover the left operand into rax *)
      emit ctx (Isa.Mov_rr (Isa.rdx, rb));
      emit ctx (Isa.Pop Isa.rax);
      ctx.push_depth <- ctx.push_depth - 8;
      k Isa.rax Isa.rdx;
      emit ctx (Isa.Mov_rr (dst, Isa.rax));
      dst
    end
  in
  match e with
  | Int n ->
    emit ctx (Isa.Mov_ri (dst, n));
    dst
  | Var x ->
    (match Hashtbl.find_opt ctx.slots x with
     | Some (Lreg r) ->
       emit ctx (Isa.Mov_rr (dst, r));
       dst
     | Some (Lslot s) ->
       emit ctx (Isa.Load (Isa.W8, dst, slot_mem ctx s));
       dst
     | None ->
       (match Hashtbl.find_opt ctx.globals x with
        | Some addr ->
          emit ctx (Isa.Mov_ri (dst, addr));
          dst
        | None -> fail "unbound variable %s" x))
  | Bin ((Shl | Shr) as op, a, Int n) ->
    let ra = eval ctx depth a in
    emit ctx
      (Isa.Shift_ri ((if op = Shl then Isa.Shl else Isa.Shr), ra, n land 63));
    ra
  | Bin ((Shl | Shr), _, _) -> fail "shift amount must be a constant"
  | Bin (op, a, b) ->
    eval2 a b (fun ra rb ->
        match op with
        | Add -> emit ctx (Isa.Alu_rr (Isa.Add, ra, rb))
        | Sub -> emit ctx (Isa.Alu_rr (Isa.Sub, ra, rb))
        | Band -> emit ctx (Isa.Alu_rr (Isa.And, ra, rb))
        | Bor -> emit ctx (Isa.Alu_rr (Isa.Or, ra, rb))
        | Bxor -> emit ctx (Isa.Alu_rr (Isa.Xor, ra, rb))
        | Mul -> emit ctx (Isa.Mul_rr (ra, rb))
        | Div -> emit ctx (Isa.Div_rr (ra, rb))
        | Rem -> emit ctx (Isa.Rem_rr (ra, rb))
        | Shl | Shr -> assert false)
  | Cmp (cc, a, b) ->
    eval2 a b (fun ra rb ->
        emit ctx (Isa.Cmp_rr (ra, rb));
        emit ctx (Isa.Setcc (cc, ra)))
  | Load (el, arr, idx) -> eval_load ctx depth el arr idx 0
  | Loadk (el, arr, idx, k) -> eval_load ctx depth el arr idx k
  | Alloc n ->
    let rn = eval ctx depth n in
    emit ctx (Isa.Mov_rr (Isa.rdi, rn));
    emit ctx (Isa.Callrt Isa.Malloc);
    emit ctx (Isa.Mov_rr (dst, Isa.rax));
    dst
  | Input ->
    emit ctx (Isa.Callrt Isa.Input);
    emit ctx (Isa.Mov_rr (dst, Isa.rax));
    dst
  | Addr_of f ->
    emit_item ctx (Asm.Mov_label (dst, "fn_" ^ f));
    dst
  | Call_ptr (fe, args) ->
    if List.length args > Array.length arg_regs then
      fail "indirect call: too many arguments";
    let live = List.init (min depth nscratch) (fun i -> scratch.(i)) in
    List.iter
      (fun r ->
        emit ctx (Isa.Push r);
        ctx.push_depth <- ctx.push_depth + 8)
      live;
    (* the callee address is computed first and parked on the stack
       while the arguments claim the scratch registers *)
    let rf = eval ctx 0 fe in
    emit ctx (Isa.Push rf);
    ctx.push_depth <- ctx.push_depth + 8;
    List.iteri
      (fun j a ->
        if j >= nscratch then fail "indirect call: argument too deep";
        ignore (eval ctx j a))
      args;
    List.iteri
      (fun j _ -> emit ctx (Isa.Mov_rr (arg_regs.(j), scratch.(j))))
      args;
    emit ctx (Isa.Pop Isa.rax);
    ctx.push_depth <- ctx.push_depth - 8;
    emit ctx (Isa.Call_ind Isa.rax);
    List.iter
      (fun r ->
        emit ctx (Isa.Pop r);
        ctx.push_depth <- ctx.push_depth - 8)
      (List.rev live);
    emit ctx (Isa.Mov_rr (dst, Isa.rax));
    dst
  | Call (f, args) ->
    if List.length args > Array.length arg_regs then
      fail "%s: too many arguments" f;
    (* save the live expression registers *)
    let live = List.init (min depth nscratch) (fun i -> scratch.(i)) in
    List.iter
      (fun r ->
        emit ctx (Isa.Push r);
        ctx.push_depth <- ctx.push_depth + 8)
      live;
    (* arguments are evaluated into the freed scratch registers *)
    List.iteri
      (fun j a ->
        if j >= nscratch then fail "%s: argument too deep" f;
        let r = eval ctx j a in
        ignore r)
      args;
    List.iteri
      (fun j _ -> emit ctx (Isa.Mov_rr (arg_regs.(j), scratch.(j))))
      args;
    emit_item ctx (Asm.Call_l ("fn_" ^ f));
    List.iter
      (fun r ->
        emit ctx (Isa.Pop r);
        ctx.push_depth <- ctx.push_depth - 8)
      (List.rev live);
    emit ctx (Isa.Mov_rr (dst, Isa.rax));
    dst

and eval_load ctx depth el arr idx k : Isa.reg =
  let dst = scratch.(depth mod nscratch) in
  let sz = Ast.elem_bytes el in
  let w = width_of_elem el in
  let ra = eval ctx depth arr in
  if depth + 1 < nscratch then begin
    let ri = eval ctx (depth + 1) idx in
    emit ctx
      (Isa.Load (w, ra, Isa.mem ~disp:(k * sz) ~base:ra ~idx:ri ~scale:sz ()));
    ra
  end
  else begin
    emit ctx (Isa.Push ra);
    ctx.push_depth <- ctx.push_depth + 8;
    let ri = eval ctx depth idx in
    emit ctx (Isa.Mov_rr (Isa.rdx, ri));
    emit ctx (Isa.Pop Isa.rax);
    ctx.push_depth <- ctx.push_depth - 8;
    emit ctx
      (Isa.Load
         (w, dst, Isa.mem ~disp:(k * sz) ~base:Isa.rax ~idx:Isa.rdx ~scale:sz ()));
    dst
  end

(* --- statements ----------------------------------------------------- *)

let rec stmt ctx (s : Ast.stmt) : unit =
  match s with
  | Let (x, e) | Set (x, e) ->
    let r = eval ctx 0 e in
    (match local_loc ctx x with
     | Lreg hr -> emit ctx (Isa.Mov_rr (hr, r))
     | Lslot s -> emit ctx (Isa.Store (Isa.W8, slot_mem ctx s, r)))
  | Store (el, arr, idx, v) -> store ctx el arr idx 0 v
  | Storek (el, arr, idx, k, v) -> store ctx el arr idx k v
  | Multi_store (el, arr, idx, items) ->
    let sz = Ast.elem_bytes el in
    let w = width_of_elem el in
    let ra = eval ctx 0 arr in
    let ri = eval ctx 1 idx in
    List.iter
      (fun (k, v) ->
        let rv = eval ctx 2 v in
        emit ctx
          (Isa.Store
             (w, Isa.mem ~disp:(k * sz) ~base:ra ~idx:ri ~scale:sz (), rv)))
      items
  | If (cond, yes, no) ->
    let l_else = fresh ctx "Lelse" and l_end = fresh ctx "Lend" in
    branch_false ctx cond l_else;
    List.iter (stmt ctx) yes;
    if no <> [] then emit_item ctx (Asm.Jmp_l l_end);
    emit_item ctx (Asm.Label l_else);
    List.iter (stmt ctx) no;
    if no <> [] then emit_item ctx (Asm.Label l_end)
  | While (cond, body) ->
    let l_loop = fresh ctx "Lloop" and l_end = fresh ctx "Lend" in
    emit_item ctx (Asm.Label l_loop);
    branch_false ctx cond l_end;
    List.iter (stmt ctx) body;
    emit_item ctx (Asm.Jmp_l l_loop);
    emit_item ctx (Asm.Label l_end)
  | For (x, lo, hi, body) ->
    let l_loop = fresh ctx "Lloop" and l_end = fresh ctx "Lend" in
    stmt ctx (Let (x, lo));
    emit_item ctx (Asm.Label l_loop);
    branch_false ctx (Cmp (Isa.Lt, Var x, hi)) l_end;
    List.iter (stmt ctx) body;
    (match local_loc ctx x with
     | Lreg hr -> emit ctx (Isa.Alu_ri (Isa.Add, hr, 1))
     | Lslot s ->
       let r = eval ctx 0 (Var x) in
       emit ctx (Isa.Alu_ri (Isa.Add, r, 1));
       emit ctx (Isa.Store (Isa.W8, slot_mem ctx s, r)));
    emit_item ctx (Asm.Jmp_l l_loop);
    emit_item ctx (Asm.Label l_end)
  | Expr e -> ignore (eval ctx 0 e)
  | Print e ->
    let r = eval ctx 0 e in
    emit ctx (Isa.Mov_rr (Isa.rdi, r));
    emit ctx (Isa.Callrt Isa.Print)
  | Free e ->
    let r = eval ctx 0 e in
    emit ctx (Isa.Mov_rr (Isa.rdi, r));
    emit ctx (Isa.Callrt Isa.Free)
  | Return e ->
    let r = eval ctx 0 e in
    emit ctx (Isa.Mov_rr (Isa.rax, r));
    emit_item ctx (Asm.Jmp_l ctx.epilogue)

and store ctx el arr idx k v =
  let sz = Ast.elem_bytes el in
  let w = width_of_elem el in
  let ra = eval ctx 0 arr in
  let ri = eval ctx 1 idx in
  let rv = eval ctx 2 v in
  emit ctx
    (Isa.Store (w, Isa.mem ~disp:(k * sz) ~base:ra ~idx:ri ~scale:sz (), rv))

and branch_false ctx cond target =
  match cond with
  | Ast.Cmp (cc, a, b) ->
    let ra = eval ctx 0 a in
    let rb = eval ctx 1 b in
    emit ctx (Isa.Cmp_rr (ra, rb));
    emit_item ctx (Asm.Jcc_l (Isa.cc_negate cc, target))
  | Ast.Int 0 -> emit_item ctx (Asm.Jmp_l target)
  | Ast.Int _ -> ()
  | _ ->
    let r = eval ctx 0 cond in
    emit ctx (Isa.Test_rr (r, r));
    emit_item ctx (Asm.Jcc_l (Isa.Eq, target))

(* --- functions and programs ---------------------------------------- *)

let rec collect_locals acc (s : Ast.stmt) =
  let add acc x = if List.mem x acc then acc else acc @ [ x ] in
  match s with
  | Let (x, _) | Set (x, _) -> add acc x
  | For (x, _, _, body) -> List.fold_left collect_locals (add acc x) body
  | If (_, a, b) ->
    List.fold_left collect_locals (List.fold_left collect_locals acc a) b
  | While (_, body) -> List.fold_left collect_locals acc body
  | Store _ | Storek _ | Multi_store _ | Expr _ | Print _ | Free _ | Return _
    -> acc

(* usage counts drive the register allocator: the most-referenced
   locals get the callee-saved registers *)
let count_uses (body : Ast.stmt list) : (string, int) Hashtbl.t =
  let counts = Hashtbl.create 16 in
  let bump x = Hashtbl.replace counts x (1 + Option.value ~default:0 (Hashtbl.find_opt counts x)) in
  let rec expr (e : Ast.expr) =
    match e with
    | Int _ | Input | Addr_of _ -> ()
    | Var x -> bump x
    | Bin (_, a, b) | Cmp (_, a, b) | Load (_, a, b) -> expr a; expr b
    | Loadk (_, a, b, _) -> expr a; expr b
    | Alloc a -> expr a
    | Call (_, args) -> List.iter expr args
    | Call_ptr (f, args) -> expr f; List.iter expr args
  in
  let rec stmt (s : Ast.stmt) =
    match s with
    | Let (x, e) | Set (x, e) -> bump x; expr e
    | Store (_, a, b, c) -> expr a; expr b; expr c
    | Storek (_, a, b, _, c) -> expr a; expr b; expr c
    | Multi_store (_, a, b, items) ->
      expr a; expr b; List.iter (fun (_, e) -> expr e) items
    | If (c, y, n) -> expr c; List.iter stmt y; List.iter stmt n
    | While (c, body) ->
      (* weight loop bodies: their locals are hot *)
      expr c; List.iter stmt body; List.iter stmt body
    | For (x, lo, hi, body) ->
      bump x; bump x; bump x; expr lo; expr hi;
      List.iter stmt body; List.iter stmt body
    | Expr e | Print e | Free e | Return e -> expr e
  in
  List.iter stmt body;
  counts

let compile_func ~globals (f : Ast.func) : Asm.item list =
  let locals = List.fold_left collect_locals f.params f.body in
  let counts = count_uses f.body in
  List.iter
    (fun p -> if not (Hashtbl.mem counts p) then Hashtbl.replace counts p 0)
    f.params;
  (* stable sort by descending usage; the top ones get registers *)
  let ranked =
    List.stable_sort
      (fun a b ->
        compare
          (Option.value ~default:0 (Hashtbl.find_opt counts b))
          (Option.value ~default:0 (Hashtbl.find_opt counts a)))
      locals
  in
  let nregs = Array.length callee_saved in
  let in_regs = List.filteri (fun k _ -> k < nregs) ranked in
  let spilled = List.filter (fun x -> not (List.mem x in_regs)) locals in
  let nslots = List.length spilled in
  let frame = (nslots * 8 + 15) land lnot 15 in
  let epilogue = "Lret_" ^ f.name in
  let ctx =
    {
      items = [];
      labels = 0;
      slots = Hashtbl.create 16;
      globals;
      push_depth = 0;
      frame;
      epilogue;
    }
  in
  let used_saved = List.mapi (fun k _ -> callee_saved.(k)) in_regs in
  List.iteri (fun k x -> Hashtbl.replace ctx.slots x (Lreg callee_saved.(k))) in_regs;
  List.iteri (fun i x -> Hashtbl.replace ctx.slots x (Lslot i)) spilled;
  emit_item ctx (Asm.Label ("fn_" ^ f.name));
  List.iter (fun r -> emit ctx (Isa.Push r)) used_saved;
  if frame > 0 then emit ctx (Isa.Alu_ri (Isa.Sub, Isa.rsp, frame));
  List.iteri
    (fun j p ->
      if j >= Array.length arg_regs then fail "%s: too many parameters" f.name;
      match local_loc ctx p with
      | Lreg hr -> emit ctx (Isa.Mov_rr (hr, arg_regs.(j)))
      | Lslot s -> emit ctx (Isa.Store (Isa.W8, slot_mem ctx s, arg_regs.(j))))
    f.params;
  List.iter (stmt ctx) f.body;
  (* implicit return 0 *)
  emit ctx (Isa.Mov_ri (Isa.rax, 0));
  emit_item ctx (Asm.Label epilogue);
  if frame > 0 then emit ctx (Isa.Alu_ri (Isa.Add, Isa.rsp, frame));
  List.iter (fun r -> emit ctx (Isa.Pop r)) (List.rev used_saved);
  emit ctx Isa.Ret;
  (* fresh labels are function-local: prefix them *)
  let prefix = "F" ^ f.name ^ "_" in
  let rename = function
    | Asm.Label l when String.length l > 0 && l.[0] = 'L' ->
      Asm.Label (prefix ^ l)
    | Asm.Jmp_l l when l.[0] = 'L' -> Asm.Jmp_l (prefix ^ l)
    | Asm.Jcc_l (cc, l) when l.[0] = 'L' -> Asm.Jcc_l (cc, prefix ^ l)
    | it -> it
  in
  (* items were accumulated in reverse; rev_map restores program order *)
  List.rev_map rename ctx.items

(** Compile a module.

    [origin]/[data_origin] place the text and data sections (distinct
    modules — executable and shared objects — live at distinct bases);
    [externs] resolves calls to functions defined in another,
    already-placed module (static linking against a loaded .so);
    [shared] builds a library: no [main] required, the entry point is
    the first function, and exported symbols are returned by
    {!compile_with_symbols}. *)
let compile_with_symbols ?(origin = Lowfat.Layout.code_base)
    ?(data_origin = Lowfat.Layout.data_base) ?(externs = [])
    ?(shared = false) (p : Ast.program) :
    Binfmt.Relf.t * (string * int) list =
  if (not shared) && not (List.exists (fun f -> f.Ast.name = "main") p.funcs)
  then fail "no main function";
  (* main (if any) first so the entry point is the text start *)
  let funcs =
    List.filter (fun f -> f.Ast.name = "main") p.funcs
    @ List.filter (fun f -> f.Ast.name <> "main") p.funcs
  in
  let globals = Hashtbl.create 16 in
  let data_size = ref 0 in
  List.iter
    (fun (name, size) ->
      Hashtbl.replace globals name (data_origin + !data_size);
      data_size := !data_size + ((size + 15) land lnot 15))
    p.globals;
  let items = List.concat_map (compile_func ~globals) funcs in
  (* resolve extern calls: rewrite Call_l/Mov_label of undefined
     functions into absolute forms against the import table *)
  let defined = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace defined ("fn_" ^ f.Ast.name) ()) funcs;
  let items =
    List.map
      (fun it ->
        match it with
        | Asm.Call_l l when not (Hashtbl.mem defined l || l.[0] = 'L' || l.[0] = 'F') ->
          (match List.assoc_opt l externs with
           | Some addr -> Asm.I (Isa.Call addr)
           | None -> fail "undefined function %s" l)
        | Asm.Mov_label (r, l) when not (Hashtbl.mem defined l) ->
          (match List.assoc_opt l externs with
           | Some addr -> Asm.I (Isa.Mov_ri (r, addr))
           | None -> fail "undefined function %s" l)
        | it -> it)
      items
  in
  let code, labels = Asm.assemble ~origin items in
  let entry =
    match Hashtbl.find_opt labels "fn_main" with
    | Some a -> a
    | None -> origin
  in
  let symbols =
    List.map (fun f -> ("fn_" ^ f.Ast.name, Hashtbl.find labels ("fn_" ^ f.Ast.name)))
      funcs
  in
  let sections =
    [ Binfmt.Relf.section ~executable:true ~name:".text" ~addr:origin code ]
    @
    if !data_size > 0 then
      [
        Binfmt.Relf.section ~writable:true ~name:".data" ~addr:data_origin
          (String.make !data_size '\000');
      ]
    else []
  in
  ({ Binfmt.Relf.entry; pic = false; stripped = true; sections }, symbols)

let compile ?origin ?data_origin ?externs ?shared (p : Ast.program) :
    Binfmt.Relf.t =
  fst (compile_with_symbols ?origin ?data_origin ?externs ?shared p)
