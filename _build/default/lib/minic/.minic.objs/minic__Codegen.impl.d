lib/minic/codegen.ml: Array Asm Ast Binfmt Hashtbl Isa List Lowfat Option Printf String X64
