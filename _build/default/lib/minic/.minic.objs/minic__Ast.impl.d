lib/minic/ast.ml: X64
