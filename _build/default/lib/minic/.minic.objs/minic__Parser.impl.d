lib/minic/parser.ml: Ast Binfmt Codegen Lexer List Printf X64
