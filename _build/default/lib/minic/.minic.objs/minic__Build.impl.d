lib/minic/build.ml: Ast X64
