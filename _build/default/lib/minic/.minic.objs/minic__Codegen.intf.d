lib/minic/codegen.mli: Ast Binfmt
