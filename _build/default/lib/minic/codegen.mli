(** MiniC → x64l code generation.

    "-O2-shaped" where it matters to the rewriter: hot locals are
    register-allocated, the rest live at [disp(%rsp)] with no frame
    pointer, array accesses compile to indexed memory operands, and
    [Multi_store] emits mergeable store runs. *)

exception Compile_error of string

val compile_with_symbols :
  ?origin:int ->
  ?data_origin:int ->
  ?externs:(string * int) list ->
  ?shared:bool ->
  Ast.program ->
  Binfmt.Relf.t * (string * int) list
(** Compile a module and return its exported symbol table
    ([fn_<name>] → address).  [origin]/[data_origin] place the
    sections; [externs] resolves calls into other, already-placed
    modules; [shared] builds a library (no [main] required). *)

val compile :
  ?origin:int ->
  ?data_origin:int ->
  ?externs:(string * int) list ->
  ?shared:bool ->
  Ast.program ->
  Binfmt.Relf.t
