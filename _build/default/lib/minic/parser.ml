(** Recursive-descent parser for MiniC source text.

    The surface syntax (see also [examples/*.mc]):

    {v
    // a comment
    global table[64];                 // global array of 64 cells

    fn kernel(n) {
      var a = alloc(16);              // 16 8-byte elements
      var buf = balloc(64);           // 64 bytes
      var s = 0;
      for (j in 0 .. 16) { a[j] = j * j; }
      while (s < 10) { s = s + 1; }
      if (a[0] == 0 && s >= 10) { print(s); } else { print(0); }
      buf.[3] = 255;                  // byte store
      s = s + buf.[3];                // byte load
      free(a); free(buf);
      return s;
    }

    fn main() {
      var fp = &kernel;               // function pointer
      print((fp)(input()));           // indirect call
      return 0;
    }
    v}

    Operator precedence is C's.  [&&]/[||] are {e not} short-circuit:
    both operands are always evaluated (they lower to bitwise ops over
    normalized booleans), which the docs call out because it matters
    for memory safety of guarded accesses. *)

exception Parse_error of string * Lexer.pos

type state = { mutable toks : Lexer.t list }

let fail_at pos fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (s, pos))) fmt

let peek st =
  match st.toks with [] -> assert false | t :: _ -> t

let next st =
  match st.toks with
  | [] -> assert false
  | t :: rest ->
    st.toks <- (if rest = [] then [ t ] else rest);
    t

let expect st tok =
  let t = next st in
  if t.tok <> tok then
    fail_at t.pos "expected %s but found %s" (Lexer.token_name tok)
      (Lexer.token_name t.tok)

let expect_ident st =
  let t = next st in
  match t.tok with
  | Lexer.IDENT s -> s
  | other -> fail_at t.pos "expected an identifier, found %s"
               (Lexer.token_name other)

(* normalize a value to a 0/1 boolean for &&/|| *)
let truthy (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Cmp _ -> e (* already 0/1 *)
  | e -> Ast.Cmp (X64.Isa.Ne, e, Ast.Int 0)

(* fold [e + k] / [e - k] constants into Loadk/Storek displacements *)
let split_const (e : Ast.expr) : Ast.expr * int =
  match e with
  | Ast.Bin (Ast.Add, e', Ast.Int k) -> (e', k)
  | Ast.Bin (Ast.Add, Ast.Int k, e') -> (e', k)
  | Ast.Bin (Ast.Sub, e', Ast.Int k) -> (e', -k)
  | e -> (e, 0)

(* --- expressions ----------------------------------------------------- *)

(* binary operator precedence, C-style (higher binds tighter) *)
let binop_of_token (t : Lexer.token) : (int * (Ast.expr -> Ast.expr -> Ast.expr)) option =
  let bin op a b = Ast.Bin (op, a, b) in
  let cmp cc a b = Ast.Cmp (cc, a, b) in
  match t with
  | Lexer.OROR -> Some (1, fun a b -> bin Ast.Bor (truthy a) (truthy b))
  | Lexer.ANDAND -> Some (2, fun a b -> bin Ast.Band (truthy a) (truthy b))
  | Lexer.PIPE -> Some (3, bin Ast.Bor)
  | Lexer.CARET -> Some (4, bin Ast.Bxor)
  | Lexer.AMP -> Some (5, bin Ast.Band)
  | Lexer.EQ -> Some (6, cmp X64.Isa.Eq)
  | Lexer.NE -> Some (6, cmp X64.Isa.Ne)
  | Lexer.LT -> Some (7, cmp X64.Isa.Lt)
  | Lexer.LE -> Some (7, cmp X64.Isa.Le)
  | Lexer.GT -> Some (7, cmp X64.Isa.Gt)
  | Lexer.GE -> Some (7, cmp X64.Isa.Ge)
  | Lexer.SHL ->
    Some
      ( 8,
        fun a b ->
          match b with
          | Ast.Int k -> Ast.Bin (Ast.Shl, a, Ast.Int k)
          | _ -> Ast.Bin (Ast.Shl, a, b) )
  | Lexer.SHR -> Some (8, fun a b -> Ast.Bin (Ast.Shr, a, b))
  | Lexer.PLUS -> Some (9, bin Ast.Add)
  | Lexer.MINUS -> Some (9, bin Ast.Sub)
  | Lexer.STAR -> Some (10, bin Ast.Mul)
  | Lexer.SLASH -> Some (10, bin Ast.Div)
  | Lexer.PERCENT -> Some (10, bin Ast.Rem)
  | _ -> None

let rec parse_expr st = parse_binary st 0

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (peek st).tok with
    | Some (prec, mk) when prec >= min_prec ->
      ignore (next st);
      let rhs = parse_binary st (prec + 1) in
      lhs := mk !lhs rhs
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  let t = peek st in
  match t.tok with
  | Lexer.MINUS ->
    ignore (next st);
    (match parse_unary st with
     | Ast.Int n -> Ast.Int (-n)
     | e -> Ast.Bin (Ast.Sub, Ast.Int 0, e))
  | Lexer.TILDE ->
    ignore (next st);
    Ast.Bin (Ast.Bxor, parse_unary st, Ast.Int (-1))
  | Lexer.AMP ->
    ignore (next st);
    let f = expect_ident st in
    Ast.Addr_of f
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match (peek st).tok with
    | Lexer.LBRACK ->
      ignore (next st);
      let idx = parse_expr st in
      expect st Lexer.RBRACK;
      let idx', k = split_const idx in
      e :=
        (if k = 0 then Ast.Load (Ast.E8, !e, idx)
         else Ast.Loadk (Ast.E8, !e, idx', k))
    | Lexer.DOTBRACK ->
      ignore (next st);
      let idx = parse_expr st in
      expect st Lexer.RBRACK;
      let idx', k = split_const idx in
      e :=
        (if k = 0 then Ast.Load (Ast.E1, !e, idx)
         else Ast.Loadk (Ast.E1, !e, idx', k))
    | Lexer.LPAREN ->
      (* indirect call through the value computed so far *)
      ignore (next st);
      let args = parse_args st in
      e := Ast.Call_ptr (!e, args)
    | _ -> continue_ := false
  done;
  !e

and parse_args st =
  if (peek st).tok = Lexer.RPAREN then begin
    ignore (next st);
    []
  end
  else begin
    let rec go acc =
      let a = parse_expr st in
      let t = next st in
      match t.tok with
      | Lexer.COMMA -> go (a :: acc)
      | Lexer.RPAREN -> List.rev (a :: acc)
      | other ->
        fail_at t.pos "expected ',' or ')' in argument list, found %s"
          (Lexer.token_name other)
    in
    go []
  end

and parse_primary st =
  let t = next st in
  match t.tok with
  | Lexer.INT n -> Ast.Int n
  | Lexer.KINPUT ->
    expect st Lexer.LPAREN;
    expect st Lexer.RPAREN;
    Ast.Input
  | Lexer.KALLOC ->
    expect st Lexer.LPAREN;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    Ast.Alloc (Ast.Bin (Ast.Mul, e, Ast.Int 8))
  | Lexer.KBALLOC ->
    expect st Lexer.LPAREN;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    Ast.Alloc e
  | Lexer.IDENT f when (peek st).tok = Lexer.LPAREN ->
    ignore (next st);
    let args = parse_args st in
    Ast.Call (f, args)
  | Lexer.IDENT x -> Ast.Var x
  | Lexer.LPAREN ->
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | other -> fail_at t.pos "expected an expression, found %s"
               (Lexer.token_name other)

(* --- statements ------------------------------------------------------ *)

let rec parse_block st : Ast.stmt list =
  expect st Lexer.LBRACE;
  let rec go acc =
    if (peek st).tok = Lexer.RBRACE then begin
      ignore (next st);
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

and parse_stmt st : Ast.stmt =
  let t = peek st in
  match t.tok with
  | Lexer.KVAR ->
    ignore (next st);
    let x = expect_ident st in
    expect st Lexer.ASSIGN;
    let e = parse_expr st in
    expect st Lexer.SEMI;
    Ast.Let (x, e)
  | Lexer.KIF ->
    ignore (next st);
    expect st Lexer.LPAREN;
    let c = parse_expr st in
    expect st Lexer.RPAREN;
    let yes = parse_block st in
    let no =
      if (peek st).tok = Lexer.KELSE then begin
        ignore (next st);
        parse_block st
      end
      else []
    in
    Ast.If (c, yes, no)
  | Lexer.KWHILE ->
    ignore (next st);
    expect st Lexer.LPAREN;
    let c = parse_expr st in
    expect st Lexer.RPAREN;
    Ast.While (c, parse_block st)
  | Lexer.KFOR ->
    (* for (x in lo .. hi) { ... } *)
    ignore (next st);
    expect st Lexer.LPAREN;
    let x = expect_ident st in
    expect st Lexer.KIN;
    let lo = parse_expr st in
    expect st Lexer.DOTDOT;
    let hi = parse_expr st in
    expect st Lexer.RPAREN;
    Ast.For (x, lo, hi, parse_block st)
  | Lexer.KRETURN ->
    ignore (next st);
    let e = parse_expr st in
    expect st Lexer.SEMI;
    Ast.Return e
  | Lexer.KPRINT ->
    ignore (next st);
    expect st Lexer.LPAREN;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    expect st Lexer.SEMI;
    Ast.Print e
  | Lexer.KFREE ->
    ignore (next st);
    expect st Lexer.LPAREN;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    expect st Lexer.SEMI;
    Ast.Free e
  | _ ->
    (* expression statement or assignment: parse an expression, then
       decide by the next token; the left side must be an lvalue *)
    let e = parse_expr st in
    let t2 = next st in
    (match t2.tok with
     | Lexer.SEMI -> Ast.Expr e
     | Lexer.ASSIGN ->
       let rhs = parse_expr st in
       expect st Lexer.SEMI;
       (match e with
        | Ast.Var x -> Ast.Set (x, rhs)
        | Ast.Load (el, arr, idx) -> Ast.Store (el, arr, idx, rhs)
        | Ast.Loadk (el, arr, idx, k) -> Ast.Storek (el, arr, idx, k, rhs)
        | _ -> fail_at t2.pos "left side of '=' is not assignable")
     | other ->
       fail_at t2.pos "expected ';' or '=' after expression, found %s"
         (Lexer.token_name other))

(* --- top level ------------------------------------------------------- *)

let parse_program (src : string) : Ast.program =
  let st = { toks = Lexer.tokenize src } in
  let globals = ref [] and funcs = ref [] in
  let rec go () =
    match (peek st).tok with
    | Lexer.EOF -> ()
    | Lexer.KGLOBAL ->
      ignore (next st);
      let name = expect_ident st in
      expect st Lexer.LBRACK;
      let t = next st in
      let elems =
        match t.tok with
        | Lexer.INT n -> n
        | other -> fail_at t.pos "expected array size, found %s"
                     (Lexer.token_name other)
      in
      expect st Lexer.RBRACK;
      expect st Lexer.SEMI;
      globals := (name, elems * 8) :: !globals;
      go ()
    | Lexer.KFN ->
      ignore (next st);
      let name = expect_ident st in
      expect st Lexer.LPAREN;
      let params =
        if (peek st).tok = Lexer.RPAREN then begin
          ignore (next st);
          []
        end
        else begin
          let rec go acc =
            let p = expect_ident st in
            let t = next st in
            match t.tok with
            | Lexer.COMMA -> go (p :: acc)
            | Lexer.RPAREN -> List.rev (p :: acc)
            | other ->
              fail_at t.pos "expected ',' or ')' in parameters, found %s"
                (Lexer.token_name other)
          in
          go []
        end
      in
      let body = parse_block st in
      funcs := Ast.func ~name ~params body :: !funcs;
      go ()
    | other ->
      fail_at (peek st).pos "expected 'fn' or 'global', found %s"
        (Lexer.token_name other)
  in
  go ();
  Ast.program ~globals:(List.rev !globals) (List.rev !funcs)

(** Parse and compile source text in one step. *)
let compile_source ?origin ?data_origin ?externs ?shared (src : string) :
    Binfmt.Relf.t =
  Codegen.compile ?origin ?data_origin ?externs ?shared (parse_program src)

let compile_file ?origin ?data_origin ?externs ?shared (path : string) :
    Binfmt.Relf.t =
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  compile_source ?origin ?data_origin ?externs ?shared src
