(** Concise AST builders for writing MiniC programs in OCaml (used by
    the workload suites and tests). *)

open Ast

let i n = Int n
let v x = Var x
let ( +: ) a b = Bin (Add, a, b)
let ( -: ) a b = Bin (Sub, a, b)
let ( *: ) a b = Bin (Mul, a, b)
let ( /: ) a b = Bin (Div, a, b)
let ( %: ) a b = Bin (Rem, a, b)
let ( &: ) a b = Bin (Band, a, b)
let ( |: ) a b = Bin (Bor, a, b)
let ( ^: ) a b = Bin (Bxor, a, b)
let ( <<: ) a n = Bin (Shl, a, Int n)
let ( >>: ) a n = Bin (Shr, a, Int n)
let ( =: ) a b = Cmp (X64.Isa.Eq, a, b)
let ( <>: ) a b = Cmp (X64.Isa.Ne, a, b)
let ( <: ) a b = Cmp (X64.Isa.Lt, a, b)
let ( <=: ) a b = Cmp (X64.Isa.Le, a, b)
let ( >: ) a b = Cmp (X64.Isa.Gt, a, b)
let ( >=: ) a b = Cmp (X64.Isa.Ge, a, b)

(** 8-byte element access *)
let idx a j = Load (E8, a, j)
let idxk a j k = Loadk (E8, a, j, k)
let set a j x = Store (E8, a, j, x)
let setk a j k x = Storek (E8, a, j, k, x)
let msets a j items = Multi_store (E8, a, j, items)

(** byte access *)
let idx1 a j = Load (E1, a, j)
let set1 a j x = Store (E1, a, j, x)
let set1k a j k x = Storek (E1, a, j, k, x)

let let_ x e = Let (x, e)
let assign x e = Set (x, e)
let alloc_elems n = Alloc (Bin (Mul, n, Int 8))   (* n 8-byte elements *)
let alloc_bytes n = Alloc n
let if_ c a b = If (c, a, b)
let while_ c body = While (c, body)
let for_ x lo hi body = For (x, lo, hi, body)
let return_ e = Return e
let print_ e = Print e
let free_ e = Free e
let call f args = Call (f, args)
let addr_of f = Addr_of f
let call_ptr f args = Call_ptr (f, args)
let expr e = Expr e
