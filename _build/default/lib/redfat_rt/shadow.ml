(** ASAN-style shadow memory: the [state_shadow] implementation of the
    paper's §4.1, kept as an ablation backend against the default
    metadata-in-redzone design ([state_lowfat]).

    One shadow byte tracks each 8-byte application granule:

      shadow(ptr) = *(SHADOW_MAP + ptr/8)

    Encoding (following AddressSanitizer): [8] = all 8 bytes
    addressable, [1..7] = only the first k bytes addressable (a
    partially-used trailing granule), [0] = unaddressable (never
    allocated / redzone), [0xfd] = freed memory.

    The point of the comparison (and the reason RedFat does not use
    this): the shadow map is a second large memory structure whose
    upkeep duplicates the object-tracking the low-fat allocator already
    does, whereas storing state/size inside the redzone reuses the
    [base(ptr)] computation that the (LowFat) check needs anyway. *)

let granule = 8
let freed = 0xfd

type t = {
  pages : (int, Bytes.t) Hashtbl.t; (* shadow page = 4 KiB of app/8 *)
  mutable shadow_bytes : int;       (** distinct shadow bytes touched *)
}

let create () = { pages = Hashtbl.create 256; shadow_bytes = 0 }

let page_bits = 12
let page_size = 1 lsl page_bits

let shadow_byte t ~sindex =
  match Hashtbl.find_opt t.pages (sindex lsr page_bits) with
  | Some p -> Char.code (Bytes.get p (sindex land (page_size - 1)))
  | None -> 0

let set_shadow_byte t ~sindex v =
  let page =
    match Hashtbl.find_opt t.pages (sindex lsr page_bits) with
    | Some p -> p
    | None ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.add t.pages (sindex lsr page_bits) p;
      p
  in
  Bytes.set page (sindex land (page_size - 1)) (Char.chr v);
  t.shadow_bytes <- t.shadow_bytes + 1

(** Mark [addr, addr+len) addressable ([addr] must be 8-aligned, as
    low-fat objects are). *)
let mark_allocated t ~addr ~len =
  let full = len / granule in
  for k = 0 to full - 1 do
    set_shadow_byte t ~sindex:((addr / granule) + k) granule
  done;
  let rest = len mod granule in
  if rest > 0 then set_shadow_byte t ~sindex:((addr / granule) + full) rest

let mark_freed t ~addr ~len =
  let granules = (len + granule - 1) / granule in
  for k = 0 to granules - 1 do
    set_shadow_byte t ~sindex:((addr / granule) + k) freed
  done

(** The §4.1 state lookup for a single byte address. *)
type state = Allocated | Redzone | Free

let state t ptr =
  let s = shadow_byte t ~sindex:(ptr / granule) in
  if s = freed then Free
  else if s >= 1 && s <= granule && ptr mod granule < s then Allocated
  else Redzone

(** Check that [lb, ub) is entirely addressable; returns the first bad
    state encountered, plus the micro-op cost of the scan (address
    shift + shadow load + compare per granule, as in ASAN's fast
    path). *)
let check_range t ~lb ~ub : state option * int =
  let cost = ref 2 (* SHADOW_MAP offset computation *) in
  let bad = ref None in
  let p = ref lb in
  while !bad = None && !p < ub do
    cost := !cost + 3;
    (match state t !p with
     | Allocated -> ()
     | s -> bad := Some s);
    (* advance to the next granule boundary *)
    p := ((!p / granule) + 1) * granule
  done;
  (!bad, !cost)
