lib/redfat_rt/runtime.mli: Hashtbl Lowfat Shadow Vm X64
