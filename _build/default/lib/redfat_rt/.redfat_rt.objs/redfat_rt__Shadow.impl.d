lib/redfat_rt/shadow.ml: Bytes Char Hashtbl
