lib/redfat_rt/runtime.ml: Array Hashtbl List Lowfat Printf Shadow Vm X64
