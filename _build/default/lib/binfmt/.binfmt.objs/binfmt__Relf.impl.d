lib/binfmt/relf.ml: Buffer List Printf String Vm X64
