lib/binfmt/relf.mli: Vm
