(** RELF: the binary container format of the simulated toolchain.

    A stripped-down ELF analogue: named sections at fixed virtual
    addresses, an entry point, and PIC/stripped flags.  Crucially there
    is no symbol or type information — the rewriter sees exactly what
    RedFat sees in a stripped COTS binary: bytes, section boundaries,
    and an entry point. *)

type section = {
  name : string;
  addr : int;
  bytes : string;
  executable : bool;
  writable : bool;
}

type t = {
  entry : int;
  pic : bool;
  stripped : bool;
  sections : section list;
}

let magic = "RELF1\n"

let section ?(executable = false) ?(writable = false) ~name ~addr bytes =
  { name; addr; bytes; executable; writable }

let find_section t name = List.find_opt (fun s -> s.name = name) t.sections

let text_exn t =
  match find_section t ".text" with
  | Some s -> s
  | None -> invalid_arg "Relf.text_exn: no .text section"

let code_size t =
  List.fold_left
    (fun acc s -> if s.executable then acc + String.length s.bytes else acc)
    0 t.sections

let total_size t =
  List.fold_left (fun acc s -> acc + String.length s.bytes) 0 t.sections

(* --- serialization ------------------------------------------------- *)

let serialize (t : t) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  let add_int v = Buffer.add_string b (Printf.sprintf "%x\n" v) in
  let add_str s =
    add_int (String.length s);
    Buffer.add_string b s
  in
  add_int t.entry;
  add_int (if t.pic then 1 else 0);
  add_int (if t.stripped then 1 else 0);
  add_int (List.length t.sections);
  List.iter
    (fun s ->
      add_str s.name;
      add_int s.addr;
      add_int ((if s.executable then 1 else 0) lor if s.writable then 2 else 0);
      add_str s.bytes)
    t.sections;
  Buffer.contents b

exception Parse_error of string

let parse (data : string) : t =
  let pos = ref 0 in
  let fail msg = raise (Parse_error msg) in
  if
    String.length data < String.length magic
    || String.sub data 0 (String.length magic) <> magic
  then fail "bad magic";
  pos := String.length magic;
  let read_int () =
    match String.index_from_opt data !pos '\n' with
    | None -> fail "truncated"
    | Some nl ->
      let s = String.sub data !pos (nl - !pos) in
      pos := nl + 1;
      (try int_of_string ("0x" ^ s) with _ -> fail ("bad int " ^ s))
  in
  let read_str () =
    let n = read_int () in
    if !pos + n > String.length data then fail "truncated string";
    let s = String.sub data !pos n in
    pos := !pos + n;
    s
  in
  let entry = read_int () in
  let pic = read_int () = 1 in
  let stripped = read_int () = 1 in
  let nsec = read_int () in
  let sections =
    List.init nsec (fun _ ->
        let name = read_str () in
        let addr = read_int () in
        let flags = read_int () in
        let bytes = read_str () in
        { name; addr; bytes;
          executable = flags land 1 <> 0;
          writable = flags land 2 <> 0 })
  in
  { entry; pic; stripped; sections }

let save path t =
  let oc = open_out_bin path in
  output_string oc (serialize t);
  close_out oc

let load_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse s

(* --- loading into a VM --------------------------------------------- *)

(** Map all sections into memory (an exec-style loader). *)
let load_into (mem : Vm.Mem.t) (t : t) : unit =
  List.iter (fun s -> Vm.Mem.write_string mem ~addr:s.addr s.bytes) t.sections

(** Disassemble the text section (for the CLI and debugging). *)
let disasm t =
  let s = text_exn t in
  X64.Disasm.dump ~addr:s.addr s.bytes
