(** RELF: the binary container of the simulated toolchain — a
    stripped-down ELF analogue (named sections at fixed virtual
    addresses, an entry point, PIC/stripped flags, no symbols). *)

type section = {
  name : string;
  addr : int;
  bytes : string;
  executable : bool;
  writable : bool;
}

type t = {
  entry : int;
  pic : bool;
  stripped : bool;
  sections : section list;
}

val magic : string

val section :
  ?executable:bool ->
  ?writable:bool ->
  name:string ->
  addr:int ->
  string ->
  section

val find_section : t -> string -> section option

val text_exn : t -> section
(** The [.text] section; raises [Invalid_argument] if absent. *)

val code_size : t -> int
val total_size : t -> int

exception Parse_error of string

val serialize : t -> string
val parse : string -> t

val save : string -> t -> unit
val load_file : string -> t

val load_into : Vm.Mem.t -> t -> unit
(** Map all sections into memory (an exec-style loader). *)

val disasm : t -> string
(** Disassembly of the text section. *)
