(* bench_diff: the bench-regression gate.

   Compares a freshly generated bench report (bench/main.exe table1
   --out BENCH_table1.json) against the committed baseline
   (bench/baseline.json) and fails when hardening quality regresses:

     - a baseline target disappeared from the fresh report;
     - a target's deterministic baseline cycle count grew by more
       than the threshold (default 10%);
     - any overhead ratio (unopt/elim/batch/merge/...) grew by more
       than the threshold;
     - the emitted-check counters went up: checks_emitted, any
       per-check-kind emit.* counter, any per-backend backend.*
       counter, or hoist.checks_emitted (more emitted checks means
       the eliminators lost ground, under any backend or with loop
       hoisting enabled);
     - the hoisted_checks counter went down (the loop hoister proved
       fewer loops than before: lost static-analysis ground);
     - any *hit_permille counter went down (a cache tier -- e.g. the
       serving hot tier's warm-phase hit rate -- lost ground);
     - any *reused_permille counter went down (the function-granular
       incremental rebuild reused fewer per-function artifacts: the
       partition or cache keys lost precision);
     - any *unique_bugs counter went down (a fuzz smoke campaign
       stopped finding a seeded bug it used to find: the oracle,
       scheduler or mutators regressed).

   New targets and improvements are fine.  wall_seconds is ignored
   everywhere: it is the only machine-dependent field; cycles come
   from the deterministic VM cost model.

   Re-baselining after an intentional change:
     make bench-baseline   # regenerates bench/baseline.json
   then commit the new baseline together with the change that
   explains it.

   usage: bench_diff baseline.json fresh.json [--max-regress PCT] *)

module J = Obs.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let baseline_path, fresh_path, max_regress =
  let pos = ref [] and pct = ref 10.0 in
  let rec parse = function
    | [] -> ()
    | "--max-regress" :: p :: rest ->
      (match float_of_string_opt p with
      | Some x when x >= 0.0 -> pct := x
      | _ -> die "--max-regress: expected a percentage, got %s" p);
      parse rest
    | x :: _ when String.length x > 0 && x.[0] = '-' ->
      die "usage: bench_diff baseline.json fresh.json [--max-regress PCT]"
    | x :: rest ->
      pos := x :: !pos;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !pos with
  | [ b; f ] -> (b, f, !pct)
  | _ -> die "usage: bench_diff baseline.json fresh.json [--max-regress PCT]"

let load path =
  let src =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e -> die "%s" e
  in
  match J.parse src with
  | Ok v -> v
  | Error e -> die "%s: %s" path e

(* --- accessors over the report shape -------------------------------- *)

let str_field name v = Option.bind (J.member name v) J.to_str
let num_field name v = Option.bind (J.member name v) J.to_num

let targets v : (string * J.v) list =
  match Option.bind (J.member "targets" v) J.to_arr with
  | None -> []
  | Some ts ->
    List.filter_map
      (fun t -> Option.map (fun n -> (n, t)) (str_field "name" t))
      ts

(* all fields of an object sub-record, as name -> float *)
let table field v : (string * float) list =
  match J.member field v with
  | Some (J.Obj kvs) ->
    List.filter_map (fun (k, x) -> Option.map (fun n -> (k, n)) (J.to_num x))
      kvs
  | _ -> []

(* --- the gates ------------------------------------------------------ *)

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n" s)
    fmt

let pct_over fresh base = 100.0 *. ((fresh /. base) -. 1.0)

let check_ratio ~target ~what ~base ~fresh =
  if base > 0.0 && pct_over fresh base > max_regress then
    fail "%s: %s regressed %.1f%% (%.4g -> %.4g, threshold %.0f%%)" target
      what (pct_over fresh base) base fresh max_regress

let has_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.sub s (ls - lf) lf = suf

let check_target name base fresh =
  (match (num_field "baseline_cycles" base, num_field "baseline_cycles" fresh)
   with
  | Some b, Some f ->
    check_ratio ~target:name ~what:"baseline_cycles" ~base:b ~fresh:f
  | _ -> ());
  List.iter
    (fun (k, b) ->
      match List.assoc_opt k (table "overheads" fresh) with
      | Some f -> check_ratio ~target:name ~what:("overhead " ^ k) ~base:b ~fresh:f
      | None -> fail "%s: overhead %s missing from fresh report" name k)
    (table "overheads" base);
  (* emitted-check counters must never increase: the static hardening
     quality gate *)
  let fresh_counters = table "counters" fresh in
  List.iter
    (fun (k, b) ->
      let gated =
        k = "checks_emitted" || k = "hoist.checks_emitted"
        || (String.length k >= 5 && String.sub k 0 5 = "emit.")
        || (String.length k >= 8 && String.sub k 0 8 = "backend.")
      in
      if gated then
        match List.assoc_opt k fresh_counters with
        | Some f when f > b ->
          fail "%s: counter %s increased (%.0f -> %.0f)" name k b f
        | Some _ -> ()
        | None -> fail "%s: counter %s missing from fresh report" name k
      (* hoisted checks, hit rates, reuse rates and found bugs are
         gains: losing some means the hoister stopped proving loops it
         used to prove, a cache tier stopped hitting (or reusing)
         where it used to, or a fuzz campaign stopped finding a seeded
         bug it used to find *)
      else if
        k = "hoisted_checks"
        || has_suffix k "hit_permille"
        || has_suffix k "reused_permille"
        || has_suffix k "unique_bugs"
      then
        match List.assoc_opt k fresh_counters with
        | Some f when f < b ->
          fail "%s: counter %s decreased (%.0f -> %.0f)" name k b f
        | Some _ -> ()
        | None -> fail "%s: counter %s missing from fresh report" name k)
    (table "counters" base)

let () =
  let base = load baseline_path and fresh = load fresh_path in
  let base_t = targets base and fresh_t = targets fresh in
  if base_t = [] then die "%s: no targets" baseline_path;
  List.iter
    (fun (name, bt) ->
      match List.assoc_opt name fresh_t with
      | Some ft -> check_target name bt ft
      | None -> fail "%s: missing from fresh report" name)
    base_t;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name base_t) then
        Printf.printf "note: new target %s (not in baseline)\n" name)
    fresh_t;
  if !failures = 0 then
    Printf.printf "bench-gate OK: %d targets within %.0f%% of %s\n"
      (List.length base_t) max_regress baseline_path
  else begin
    Printf.printf
      "bench-gate: %d failure(s) vs %s\n\
       (intentional change?  re-baseline with: make bench-baseline)\n"
      !failures baseline_path;
    exit 1
  end
