(* doc_check: fail the build when the documentation drifts from the
   code.  Five checks:

   1. every CLI flag declared in bin/redfat_cli.ml appears in
      docs/MANUAL.md (and the manual doesn't document flags that no
      longer exist);
   2. the fault-taxonomy table embedded in docs/MANUAL.md is exactly
      [Engine.Fault.registry_markdown ()] (what `redfat errors --list`
      prints), and every registry code is mentioned;
   3. every intra-repo markdown link in the top-level and docs/
      markdown files resolves to an existing file;
   4. every CLI subcommand has a `### `redfat NAME`` section in
      docs/MANUAL.md, and the manual documents no verb the CLI does
      not declare;
   5. every `fuzz.*` counter or histogram docs/INTERNALS.md names in
      backticks is recorded in bench/fuzz_baseline.json — the fuzzing
      smoke campaign's committed report — so §16 can never document
      observability the fleet stopped emitting.

   Run from the repository root (make check / make doc-check / the CI
   docs job): exits 1 listing every violation. *)

let errors = ref []
let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt

let read_file path =
  try Some (In_channel.with_open_bin path In_channel.input_all)
  with Sys_error _ -> None

let read_file_exn what path =
  match read_file path with
  | Some s -> s
  | None ->
    Printf.eprintf "doc_check: cannot read %s (%s) -- run from the repo root\n"
      path what;
    exit 2

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay
    && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

(* --- 1. CLI flags vs the manual ------------------------------------- *)

(* scrape `info [ "o"; "output" ] ...` occurrences out of the CLI
   source: every quoted string inside the first [...] after `info` is a
   flag name (positional args use `info []` and contribute nothing) *)
let cli_flags src =
  let flags = ref [] in
  let re = Str.regexp "info[ \n]*\\[" in
  let i = ref 0 in
  (try
     while true do
       let start = Str.search_forward re src !i in
       let j = ref (start + String.length (Str.matched_string src)) in
       while src.[!j] <> ']' do
         if src.[!j] = '"' then begin
           let k = String.index_from src (!j + 1) '"' in
           flags := String.sub src (!j + 1) (k - !j - 1) :: !flags;
           j := k + 1
         end
         else incr j
       done;
       i := !j
     done
   with Not_found -> ());
  List.sort_uniq compare !flags

let flag_syntax f = if String.length f = 1 then "-" ^ f else "--" ^ f

let check_flags () =
  let src = read_file_exn "the CLI source" "bin/redfat_cli.ml" in
  let manual = read_file_exn "the CLI manual" "docs/MANUAL.md" in
  let flags = cli_flags src in
  if flags = [] then err "no flags scraped from bin/redfat_cli.ml (scraper broken?)";
  List.iter
    (fun f ->
      let s = flag_syntax f in
      if not (contains manual ("`" ^ s)) then
        err "docs/MANUAL.md does not document CLI flag %s" s)
    flags;
  (* the reverse direction: every `--flag` the manual names in backticks
     must exist in the CLI (long flags only; short aliases and grammar
     meta-syntax are too noisy to scrape) *)
  let re = Str.regexp "`--\\([a-z][a-z-]*\\)" in
  let i = ref 0 in
  (try
     while true do
       let p = Str.search_forward re manual !i in
       let f = Str.matched_group 1 manual in
       if not (List.mem f flags) then
         err "docs/MANUAL.md documents `--%s`, which no CLI command declares" f;
       i := p + 1
     done
   with Not_found -> ())

(* --- 4. CLI verbs vs the manual -------------------------------------- *)

(* scrape `Cmd.info "NAME"` subcommand declarations out of the CLI
   source (the group's own "redfat" info is not a verb) *)
let cli_verbs src =
  let re = Str.regexp "Cmd\\.info \"\\([a-z][a-z-]*\\)\"" in
  let i = ref 0 and verbs = ref [] in
  (try
     while true do
       let p = Str.search_forward re src !i in
       let v = Str.matched_group 1 src in
       if v <> "redfat" then verbs := v :: !verbs;
       i := p + 1
     done
   with Not_found -> ());
  List.sort_uniq compare !verbs

let check_verbs () =
  let src = read_file_exn "the CLI source" "bin/redfat_cli.ml" in
  let manual = read_file_exn "the CLI manual" "docs/MANUAL.md" in
  let verbs = cli_verbs src in
  if verbs = [] then
    err "no subcommands scraped from bin/redfat_cli.ml (scraper broken?)";
  List.iter
    (fun v ->
      if not (contains manual (Printf.sprintf "### `redfat %s`" v)) then
        err "docs/MANUAL.md has no `### `redfat %s`` section" v)
    verbs;
  let re = Str.regexp "### `redfat \\([a-z][a-z-]*\\)`" in
  let i = ref 0 in
  (try
     while true do
       let p = Str.search_forward re manual !i in
       let v = Str.matched_group 1 manual in
       if not (List.mem v verbs) then
         err "docs/MANUAL.md documents `redfat %s`, which the CLI does not \
              declare" v;
       i := p + 1
     done
   with Not_found -> ())

(* --- 2. the fault-taxonomy table ------------------------------------- *)

let check_taxonomy () =
  let manual = read_file_exn "the CLI manual" "docs/MANUAL.md" in
  let expected = String.trim (Engine.Fault.registry_markdown ()) in
  let begin_mark = "<!-- BEGIN FAULT TAXONOMY" in
  let end_mark = "<!-- END FAULT TAXONOMY -->" in
  (match (Str.search_forward (Str.regexp_string begin_mark) manual 0,
          Str.search_forward (Str.regexp_string end_mark) manual 0)
   with
  | b, e ->
    let b = String.index_from manual b '\n' + 1 in
    let embedded = String.trim (String.sub manual b (e - b)) in
    if embedded <> expected then
      err
        "the fault-taxonomy table in docs/MANUAL.md differs from \
         `redfat errors --list` -- regenerate it from Engine.Fault.registry"
  | exception Not_found ->
    err "docs/MANUAL.md is missing the FAULT TAXONOMY marker block");
  List.iter
    (fun (i : Engine.Fault.info) ->
      if not (contains manual ("`" ^ i.i_code ^ "`")) then
        err "docs/MANUAL.md does not mention fault code %s" i.i_code)
    Engine.Fault.registry

(* --- 3. intra-repo markdown links ------------------------------------ *)

let md_files () =
  let top =
    Sys.readdir "." |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".md")
  in
  let docs =
    Sys.readdir "docs" |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".md")
    |> List.map (Filename.concat "docs")
  in
  top @ docs

let check_links () =
  let root = Sys.getcwd () in
  let re = Str.regexp "\\](\\([^)# ]+\\)[#)]" in
  List.iter
    (fun file ->
      let body = read_file_exn "a markdown file" file in
      let i = ref 0 in
      try
        while true do
          let p = Str.search_forward re body !i in
          let target = Str.matched_group 1 body in
          i := p + 1;
          let external_ =
            List.exists
              (fun p ->
                String.length target >= String.length p
                && String.sub target 0 (String.length p) = p)
              [ "http://"; "https://"; "mailto:" ]
          in
          if not external_ then begin
            let resolved = Filename.concat (Filename.dirname file) target in
            (* links that escape the repo (e.g. the README CI badge's
               ../../actions/... relative to the GitHub UI) are not
               checkable against the working tree *)
            let escapes =
              let rec depth parts d =
                match parts with
                | [] -> false
                | ".." :: rest -> d = 0 || depth rest (d - 1)
                | "." :: rest -> depth rest d
                | _ :: rest -> depth rest (d + 1)
              in
              depth (String.split_on_char '/' resolved) 0
            in
            if (not escapes) && not (Sys.file_exists resolved) then
              err "%s links to %s, which does not exist under %s" file target
                root
          end
        done
      with Not_found -> ())
    (md_files ())

(* --- 5. fuzz.* observability vs the smoke baseline ------------------- *)

let check_fuzz_counters () =
  let internals = read_file_exn "the internals doc" "docs/INTERNALS.md" in
  let baseline =
    read_file_exn "the fuzzing smoke baseline" "bench/fuzz_baseline.json"
  in
  let re = Str.regexp "`\\(fuzz\\.[a-z_]+\\)`" in
  let i = ref 0 and seen = ref [] in
  (try
     while true do
       let p = Str.search_forward re internals !i in
       let c = Str.matched_group 1 internals in
       if not (List.mem c !seen) then seen := c :: !seen;
       i := p + 1
     done
   with Not_found -> ());
  if !seen = [] then
    err "docs/INTERNALS.md names no `fuzz.*` counters (scraper broken, or \
         the fleet section dropped?)";
  List.iter
    (fun c ->
      if not (contains baseline ("\"" ^ c ^ "\"")) then
        err
          "docs/INTERNALS.md names `%s`, which bench/fuzz_baseline.json does \
           not record -- the smoke campaign stopped emitting it" c)
    (List.rev !seen)

let () =
  check_flags ();
  check_verbs ();
  check_taxonomy ();
  check_links ();
  check_fuzz_counters ();
  match List.rev !errors with
  | [] -> print_endline "doc_check: docs/MANUAL.md and markdown links are in sync"
  | es ->
    List.iter (fun e -> Printf.eprintf "doc_check: %s\n" e) es;
    Printf.eprintf "doc_check: %d problem(s)\n" (List.length es);
    exit 1
