(* The fuzzing fleet: campaign determinism (same seed => byte-identical
   report, for any --jobs), crash dedup, minimizer soundness (the
   minimized input still trips the original (code, site) pair), the
   coverage-feedback scheduler, and the parser-campaign triage contract
   over the shared corrupt corpus. *)

module Pl = Engine.Pipeline
module Campaign = Fuzz.Campaign
module Corpus = Fuzz.Corpus
module Mutate = Fuzz.Mutate
module Rw = Redfat.Rewrite

let with_engine ?(jobs = 1) f =
  let eng = Pl.create ~jobs ~cache:false () in
  Fun.protect ~finally:(fun () -> Pl.close eng) (fun () -> f eng)

(* small budgets and step caps keep the suite fast; the hang case still
   needs enough steps for benign inputs to finish *)
let config = { Campaign.default_config with budget = 96; max_steps = 20_000 }

let hardened ?(backend = Backend.Check_backend.default) eng id =
  let c = Workloads.Fuzzbugs.find id in
  let bin = Pl.compile eng c.Workloads.Fuzzbugs.program in
  (Pl.harden eng ~opts:{ Rw.optimized with Rw.backend } bin).Rw.binary

let campaign ?backend ?(config = config) eng id =
  Campaign.run_exec eng ~config ~target:("bug:" ^ id)
    (hardened ?backend eng id)

(* --- determinism ----------------------------------------------------- *)

let test_same_seed_same_report () =
  with_engine @@ fun eng ->
  let a = campaign eng "oob-read" and b = campaign eng "oob-read" in
  Alcotest.(check string)
    "same seed, same report" (Campaign.to_json a) (Campaign.to_json b)

let test_jobs_do_not_change_report () =
  let run jobs = with_engine ~jobs @@ fun eng -> campaign eng "oob-read" in
  let seq = run 1 and par = run 4 in
  Alcotest.(check string)
    "report independent of --jobs" (Campaign.to_json seq)
    (Campaign.to_json par);
  let pseq = with_engine ~jobs:1 @@ fun eng ->
    Campaign.run_parse eng ~config ~which:Campaign.Minic_parser
      ~seeds:[ "func main() { return 0; }"; "" ] ()
  and ppar = with_engine ~jobs:4 @@ fun eng ->
    Campaign.run_parse eng ~config ~which:Campaign.Minic_parser
      ~seeds:[ "func main() { return 0; }"; "" ] ()
  in
  Alcotest.(check string)
    "parse report independent of --jobs" (Campaign.to_json pseq)
    (Campaign.to_json ppar)

let test_seed_changes_report () =
  with_engine @@ fun eng ->
  let a = campaign eng "oob-read" in
  let b =
    campaign ~config:{ config with Campaign.seed = 99 } eng "oob-read"
  in
  (* the found bug set is seed-independent ground truth; the exec
     stream (crash counts, discovery indices) is not *)
  let codes (r : Campaign.report) =
    List.sort compare
      (List.map (fun (b : Campaign.bug) -> (b.b_code, b.b_site)) r.r_bugs)
  in
  Alcotest.(check bool) "both seeds find the planted bug" true
    (codes a <> [] && codes a = codes b)

(* --- dedup and the oracle -------------------------------------------- *)

let test_dedup_by_code_and_site () =
  with_engine @@ fun eng ->
  let r = campaign eng "oob-read" in
  let keys =
    List.map (fun (b : Campaign.bug) -> (b.b_code, b.b_site)) r.r_bugs
  in
  Alcotest.(check bool) "bug keys are distinct" true
    (List.length keys = List.length (List.sort_uniq compare keys));
  let collapsed =
    List.fold_left (fun a (b : Campaign.bug) -> a + b.b_count) 0 r.r_bugs
  in
  Alcotest.(check int) "every crash collapses into exactly one bug"
    r.r_crashes collapsed;
  List.iter
    (fun (b : Campaign.bug) ->
      Alcotest.(check bool) ("classified: " ^ b.b_code) true
        (b.b_class <> "" && b.b_first_exec >= 1 && b.b_first_exec <= r.r_execs))
    r.r_bugs

let test_hang_oracle () =
  with_engine @@ fun eng ->
  let r = campaign eng "hang" in
  Alcotest.(check bool) "the hang dedups to run.timeout at site 0" true
    (List.exists
       (fun (b : Campaign.bug) -> b.b_code = "run.timeout" && b.b_site = 0)
       r.r_bugs)

let test_backends_disagree_on_classification () =
  (* the same planted a[8] write triages differently per backend — the
     diversity documented in docs/FUZZING.md and gated by table2x *)
  let code backend =
    with_engine @@ fun eng ->
    match (campaign ~backend eng "oob-write").r_bugs with
    | b :: _ -> b.Campaign.b_code
    | [] -> Alcotest.fail "campaign found no bug"
  in
  List.iter
    (fun b ->
      let c = code b in
      Alcotest.(check bool)
        (Backend.Check_backend.name b ^ " detects the planted write")
        true
        (String.length c > 7 && String.sub c 0 7 = "detect."))
    Backend.Check_backend.all

(* --- minimization ---------------------------------------------------- *)

let parse_rendered s =
  if s = "" then []
  else List.map int_of_string (String.split_on_char ',' s)

let test_minimized_input_still_crashes () =
  with_engine @@ fun eng ->
  let hard = hardened eng "oob-write" in
  let r = Campaign.run_exec eng ~config ~target:"bug:oob-write" hard in
  Alcotest.(check bool) "found the planted bug" true (r.r_bugs <> []);
  List.iter
    (fun (b : Campaign.bug) ->
      let res =
        Campaign.execute ~max_steps:config.Campaign.max_steps hard
          (parse_rendered b.b_min_input)
      in
      match res.Campaign.x_crash with
      | Some c ->
        Alcotest.(check string) "same code" b.b_code c.Fuzz.Oracle.c_code;
        Alcotest.(check int) "same site" b.b_site c.Fuzz.Oracle.c_site
      | None -> Alcotest.fail ("minimized input no longer crashes: " ^ b.b_code))
    r.r_bugs;
  (* the threshold gate (> 60) minimizes to the boundary itself *)
  (match r.r_bugs with
  | b :: _ -> Alcotest.(check string) "boundary found" "61" b.b_min_input
  | [] -> ())

let test_minimize_inputs_properties () =
  let still l = List.exists (fun x -> x > 60) l in
  let m = Campaign.minimize_inputs still [ 3; 127; 7; 0 ] in
  Alcotest.(check bool) "still satisfies the predicate" true (still m);
  (* passengers dropped; 127 halves to 63 (still crashing), 31 stops *)
  Alcotest.(check (list int)) "drops passengers, shrinks the survivor"
    [ 63 ] m

let test_minimize_bytes_properties () =
  let still s = String.length s >= 3 && String.sub s 0 3 = "REL" in
  let m = Campaign.minimize_bytes still "RELF1\n400000\n0\n1\n1\n" in
  Alcotest.(check bool) "still satisfies the predicate" true (still m);
  Alcotest.(check int) "cut to the witness prefix" 3 (String.length m)

(* --- the coverage-feedback scheduler --------------------------------- *)

let test_corpus_keeps_only_new_coverage () =
  let c = Corpus.create () in
  Alcotest.(check bool) "first input kept" true
    (Corpus.add c ~input:[ 1 ] ~edges:[ 10; 11 ] ~sites:[ 5 ]);
  Alcotest.(check bool) "same coverage dropped" false
    (Corpus.add c ~input:[ 2 ] ~edges:[ 10 ] ~sites:[ 5 ]);
  Alcotest.(check bool) "new edge kept" true
    (Corpus.add c ~input:[ 3 ] ~edges:[ 12 ] ~sites:[ 5 ]);
  Alcotest.(check bool) "new site kept" true
    (Corpus.add c ~input:[ 4 ] ~edges:[ 12 ] ~sites:[ 6 ]);
  Alcotest.(check int) "corpus size" 3 (Corpus.size c);
  Alcotest.(check int) "edges" 3 (Corpus.n_edges c);
  Alcotest.(check int) "sites" 2 (Corpus.n_sites c)

let test_scheduler_favors_new_edges () =
  let c = Corpus.create () in
  (* one-edge entry vs an eight-edge frontier opener *)
  ignore (Corpus.add c ~input:0 ~edges:[ 1 ] ~sites:[]);
  ignore (Corpus.add c ~input:1 ~edges:[ 2; 3; 4; 5; 6; 7; 8; 9 ] ~sites:[]);
  let rng = Mutate.Rng.create 42 in
  let picks = Array.make 2 0 in
  for _ = 1 to 1000 do
    match Corpus.schedule c rng with
    | Some i -> picks.(i) <- picks.(i) + 1
    | None -> Alcotest.fail "schedule on a non-empty corpus"
  done;
  Alcotest.(check bool)
    (Printf.sprintf "novel entry drawn more often (%d vs %d)" picks.(1)
       picks.(0))
    true
    (picks.(1) > picks.(0));
  Alcotest.(check bool) "low-novelty entry still drawn" true (picks.(0) > 0)

(* --- the parser campaigns and the corrupt corpus --------------------- *)

let test_corrupt_corpus_classified () =
  let fixtures = Corrupt_corpus.load () in
  Alcotest.(check bool) "corpus has fixtures" true (List.length fixtures >= 10);
  List.iter
    (fun (name, bytes) ->
      let res = Campaign.parse_once Campaign.Relf_parser bytes in
      match res.Campaign.x_crash with
      | Some c ->
        Alcotest.(check bool)
          (name ^ " rejected with a typed parse fault, got " ^ c.c_code)
          true
          (String.length c.Fuzz.Oracle.c_code > 6
          && String.sub c.Fuzz.Oracle.c_code 0 6 = "parse.")
      | None -> Alcotest.fail (name ^ ": corrupt fixture parsed cleanly"))
    (Corrupt_corpus.relf ());
  List.iter
    (fun (name, bytes) ->
      let res = Campaign.parse_once Campaign.Minic_parser bytes in
      match res.Campaign.x_crash with
      | Some c ->
        Alcotest.(check string)
          (name ^ " rejected by the MiniC parser")
          "parse.source" c.Fuzz.Oracle.c_code
      | None -> Alcotest.fail (name ^ ": corrupt fixture parsed cleanly"))
    (Corrupt_corpus.minic ())

let test_parse_campaign_never_crashes_parser () =
  with_engine @@ fun eng ->
  let seeds = List.map snd (Corrupt_corpus.relf ()) in
  let r = Campaign.run_parse eng ~config ~which:Campaign.Relf_parser ~seeds () in
  Alcotest.(check bool) "finds at least one rejection class" true
    (r.r_bugs <> []);
  List.iter
    (fun (b : Campaign.bug) ->
      Alcotest.(check bool)
        ("typed rejection, not a parser crash: " ^ b.b_code)
        true
        (String.length b.b_code > 6 && String.sub b.b_code 0 6 = "parse."))
    r.r_bugs

let tests =
  [
    Alcotest.test_case "same seed, same report" `Quick
      test_same_seed_same_report;
    Alcotest.test_case "--jobs does not change the report" `Slow
      test_jobs_do_not_change_report;
    Alcotest.test_case "different seeds, same bug set" `Quick
      test_seed_changes_report;
    Alcotest.test_case "crashes dedup by (code, site)" `Quick
      test_dedup_by_code_and_site;
    Alcotest.test_case "hang dedups to run.timeout" `Quick test_hang_oracle;
    Alcotest.test_case "every backend detects the planted write" `Slow
      test_backends_disagree_on_classification;
    Alcotest.test_case "minimized inputs still crash" `Quick
      test_minimized_input_still_crashes;
    Alcotest.test_case "minimize_inputs shrinks to the boundary" `Quick
      test_minimize_inputs_properties;
    Alcotest.test_case "minimize_bytes keeps the witness prefix" `Quick
      test_minimize_bytes_properties;
    Alcotest.test_case "corpus keeps only new coverage" `Quick
      test_corpus_keeps_only_new_coverage;
    Alcotest.test_case "scheduler favors frontier openers" `Quick
      test_scheduler_favors_new_edges;
    Alcotest.test_case "corrupt corpus all classified" `Quick
      test_corrupt_corpus_classified;
    Alcotest.test_case "parser campaign stays typed" `Quick
      test_parse_campaign_never_crashes_parser;
  ]
