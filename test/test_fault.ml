(* The fault-tolerance layer: typed taxonomy, deterministic fault
   injection, graceful per-site degradation, per-target batch
   isolation, and cache self-healing.

   The invariants under test mirror the documented failure semantics
   (docs/MANUAL.md "Failure semantics"):
   - every taxonomy code is a stable, documented string, and the
     classifier/injection points produce only registered codes;
   - degradation is weaker-but-sound: a degraded or skipped rewrite
     still passes its own soundness audit and preserves workload
     behaviour;
   - parallel and sequential batches fault identically;
   - damaged cache artifacts are deleted and recomputed, never
     propagated. *)

module Pl = Engine.Pipeline
module Fault = Engine.Fault
module Inj = Engine.Faultinject
module Cache = Engine.Cache
module Rw = Redfat.Rewrite
module Rt = Redfat_rt.Runtime

let inj spec =
  match Inj.parse spec with
  | Ok t -> t
  | Error e -> Alcotest.failf "bad inject spec %S: %s" spec e

let with_engine ?(jobs = 1) ?(cache = false) ?cache_dir ?strict ?inject f =
  let eng = Pl.create ~jobs ~cache ?cache_dir ?strict ?inject () in
  Fun.protect ~finally:(fun () -> Pl.close eng) (fun () -> f eng)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "redfat-fault-test-%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let registry_codes = List.map (fun i -> i.Fault.i_code) Fault.registry

let check_registered what code =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s is a registered code" what code)
    true
    (List.mem code registry_codes)

(* --- taxonomy ------------------------------------------------------- *)

let test_registry_well_formed () =
  Alcotest.(check bool) "non-empty" true (Fault.registry <> []);
  let codes = registry_codes in
  Alcotest.(check int)
    "codes unique"
    (List.length codes)
    (List.length (List.sort_uniq compare codes));
  List.iter
    (fun (i : Fault.info) ->
      Alcotest.(check bool)
        (i.i_code ^ " has class.sub shape")
        true
        (match String.split_on_char '.' i.i_code with
        | [ a; b ] -> a <> "" && b <> ""
        | _ -> false);
      Alcotest.(check bool) (i.i_code ^ " meaning") true (i.i_meaning <> "");
      Alcotest.(check bool) (i.i_code ^ " behaviour") true (i.i_behaviour <> ""))
    Fault.registry;
  (* the markdown rendering names every code *)
  let md = Fault.registry_markdown () in
  let contains hay needle =
    let rec go i =
      i + String.length needle <= String.length hay
      && (String.sub hay i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun c -> Alcotest.(check bool) ("markdown has " ^ c) true (contains md c))
    codes

let test_of_exn_classification () =
  let check_code exn code =
    let f = Fault.of_exn ~target:"t" exn in
    Alcotest.(check string) (Printexc.to_string exn) code (Fault.code f);
    check_registered "of_exn" (Fault.code f)
  in
  check_code (Binfmt.Relf.Parse_error "bad magic") "parse.magic";
  check_code (Binfmt.Relf.Parse_error "truncated") "parse.truncated";
  check_code (Binfmt.Relf.Parse_error "truncated string") "parse.section";
  check_code (Binfmt.Relf.Parse_error "bad int zz") "parse.int";
  check_code (X64.Decode.Decode_error { addr = 0x400000; byte = 0xff })
    "decode.insn";
  check_code (Sys_error "foo: No such file or directory") "io.read";
  check_code (Failure "anything") "run.fault";
  check_code (Invalid_argument "whatever") "run.fault";
  (* a Fault passes through unchanged, adopting the target *)
  let orig = Fault.v (Fault.Cache { what = "io"; key = "k"; detail = "d" }) in
  let f = Fault.of_exn ~target:"t" (Fault.Fault orig) in
  Alcotest.(check string) "passthrough code" "cache.io" (Fault.code f);
  Alcotest.(check (option string)) "adopted target" (Some "t") f.Fault.target;
  (* canonical severities come from the registry *)
  Alcotest.(check string) "cache.io severity" "degraded"
    (Fault.severity_to_string f.Fault.severity)

let test_fault_json () =
  let f =
    Fault.v ~target:"spec:mcf"
      (Fault.Parse { what = "magic"; detail = "bad \"magic\"" })
  in
  let j = Fault.to_json f in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json has " ^ needle) true
        (let rec go i =
           i + String.length needle <= String.length j
           && (String.sub j i (String.length needle) = needle || go (i + 1))
         in
         go 0))
    [ {|"target": "spec:mcf"|}; {|"code": "parse.magic"|};
      {|"severity": "fatal"|}; {|\"magic\"|} ]

(* --- injection harness ---------------------------------------------- *)

let test_inject_spec_parsing () =
  (* canonical round-trip *)
  List.iter
    (fun s -> Alcotest.(check string) s s (Inj.to_string (inj s)))
    [ "none"; "cache@1"; "rewrite:site:40,harden"; "run%50~7"; "io:foo@2%10~3" ];
  Alcotest.(check bool) "none is none" true (Inj.is_none (inj "none"));
  Alcotest.(check bool) "empty is none" true (Inj.is_none (inj ""));
  (* malformed specs are rejected with a message *)
  List.iter
    (fun s ->
      match Inj.parse s with
      | Ok _ -> Alcotest.failf "spec %S should not parse" s
      | Error _ -> ())
    [ "bogus"; "cache@x"; "run%200"; "rewrite@0"; "unknownpoint" ]

let test_inject_points_raise_registered_faults () =
  List.iter
    (fun point ->
      let t = inj point in
      match Inj.hook t ~point ~label:"x" with
      | () -> Alcotest.failf "point %s did not fire" point
      | exception Fault.Fault f -> check_registered ("point " ^ point) (Fault.code f))
    Inj.points;
  (* a clause only fires at its own point and matching labels *)
  let t = inj "cache:alpha" in
  Inj.hook t ~point:"run" ~label:"alpha";
  Inj.hook t ~point:"cache" ~label:"beta";
  (match Inj.hook t ~point:"cache" ~label:"alpha" with
  | () -> Alcotest.fail "matching clause did not fire"
  | exception Fault.Fault f ->
    Alcotest.(check string) "cache fault" "cache.io" (Fault.code f));
  (* @N fires on the Nth hit per label only *)
  let t = inj "io@2" in
  Inj.hook t ~point:"io" ~label:"a";
  (match Inj.hook t ~point:"io" ~label:"a" with
  | () -> Alcotest.fail "@2 did not fire on second hit"
  | exception Fault.Fault _ -> ());
  Inj.hook t ~point:"io" ~label:"a";
  (* an independent label has its own counter *)
  Inj.hook t ~point:"io" ~label:"b"

let test_inject_pct_deterministic () =
  (* the %PCT~SEED decision is a pure function of (seed, point, label,
     hit index): two fresh harnesses visiting labels in different
     orders fire on exactly the same set *)
  let labels = List.init 40 (fun i -> Printf.sprintf "t%d" i) in
  let fired order =
    let t = inj "run%50~7" in
    List.filter
      (fun l ->
        match Inj.hook t ~point:"run" ~label:l with
        | () -> false
        | exception Fault.Fault _ -> true)
      order
    |> List.sort compare
  in
  let a = fired labels and b = fired (List.rev labels) in
  Alcotest.(check (list string)) "order-independent" a b;
  Alcotest.(check bool) "some fire" true (a <> []);
  Alcotest.(check bool) "some do not" true (List.length a < List.length labels)

let test_of_env_malformed () =
  Unix.putenv "REDFAT_FAULT" "not-a-point";
  (match Inj.of_env () with
  | _ -> Alcotest.fail "malformed REDFAT_FAULT should raise"
  | exception Fault.Fault f ->
    Alcotest.(check string) "input.script" "input.script" (Fault.code f));
  Unix.putenv "REDFAT_FAULT" "";
  Alcotest.(check bool) "unset/empty = none" true (Inj.is_none (Inj.of_env ()))

(* --- degradation ---------------------------------------------------- *)

let synth_bin eng = Pl.compile eng (Workloads.Synth.program ~seed:11 ())

let run_outputs eng hard =
  let hr =
    Pl.run_hardened eng
      ~options:{ Rt.default_options with mode = Rt.Log }
      ~inputs:[] hard.Rw.binary
  in
  (hr.Redfat.run.Redfat.outputs, hr.Redfat.verdict)

let test_degradation_preserves_behaviour () =
  let clean =
    with_engine @@ fun eng ->
    let hard = Pl.harden eng (synth_bin eng) in
    Alcotest.(check int) "clean has no degradations" 0
      (hard.Rw.stats.Rw.degraded_sites + hard.Rw.stats.Rw.skipped_sites);
    run_outputs eng hard
  in
  (* every site's first emission attempt faults -> retried as
     Redzone-only *)
  let degraded =
    with_engine ~inject:(inj "rewrite@1") @@ fun eng ->
    let hard = Pl.harden eng (synth_bin eng) in
    Alcotest.(check bool) "sites degraded" true
      (hard.Rw.stats.Rw.degraded_sites > 0);
    Alcotest.(check int) "full checks all downgraded" 0
      hard.Rw.stats.Rw.full_sites;
    (match Pl.verify eng hard.Rw.binary with
    | Ok r -> Alcotest.(check bool) "degraded binary lints" true (Redfat.Verify.ok r)
    | Error e -> Alcotest.fail e);
    run_outputs eng hard
  in
  (* both attempts fault -> uninstrumented with elimtab skip records *)
  let skipped =
    with_engine ~inject:(inj "rewrite") @@ fun eng ->
    let hard = Pl.harden eng (synth_bin eng) in
    Alcotest.(check bool) "sites skipped" true
      (hard.Rw.stats.Rw.skipped_sites > 0);
    Alcotest.(check int) "nothing emitted" 0 hard.Rw.stats.Rw.checks_emitted;
    (match Pl.verify eng hard.Rw.binary with
    | Ok r ->
      Alcotest.(check bool) "skipped binary lints" true (Redfat.Verify.ok r);
      Alcotest.(check bool) "linter counts skips as degraded" true
        (r.Redfat.Verify.degraded > 0)
    | Error e -> Alcotest.fail e);
    run_outputs eng hard
  in
  Alcotest.(check (pair (list int) string))
    "degraded run behaves like clean"
    (fst clean, Redfat.verdict_to_string (snd clean))
    (fst degraded, Redfat.verdict_to_string (snd degraded));
  Alcotest.(check (pair (list int) string))
    "skipped run behaves like clean"
    (fst clean, Redfat.verdict_to_string (snd clean))
    (fst skipped, Redfat.verdict_to_string (snd skipped))

let test_strict_aborts_rewrite () =
  with_engine ~strict:true ~inject:(inj "rewrite") @@ fun eng ->
  match Pl.protect eng ~target:"t" (fun () -> Pl.harden eng (synth_bin eng)) with
  | Ok _ -> Alcotest.fail "strict engine should re-raise"
  | Error _ -> Alcotest.fail "strict protect returns Error"
  | exception Fault.Fault f ->
    Alcotest.(check string) "site fault surfaces" "rewrite.site" (Fault.code f)

(* --- per-target batch isolation ------------------------------------- *)

let batch_targets = List.init 8 (fun i -> Printf.sprintf "t%d" i)

let run_batch ~jobs ~spec =
  with_engine ~jobs ~inject:(inj spec) @@ fun eng ->
  let results =
    Pl.map_targets eng
      (fun tgt ->
        if tgt = "t3" then
          ignore (Pl.load_relf eng (Corrupt_corpus.path "wrong_magic.relf"));
        let prog =
          Workloads.Synth.program
            ~seed:(int_of_string (String.sub tgt 1 (String.length tgt - 1)))
            ()
        in
        let hard = Pl.harden eng (Pl.compile eng prog) in
        hard.Rw.stats.Rw.checks_emitted)
      batch_targets
  in
  let outcome =
    List.map
      (function Ok n -> Printf.sprintf "ok:%d" n | Error f -> Fault.code f)
      results
  in
  let recorded =
    List.map
      (fun (f : Fault.t) -> (Option.value f.Fault.target ~default:"", Fault.code f))
      (Engine.Report.faults (Pl.report eng))
  in
  (outcome, recorded)

let test_batch_isolation_parallel_eq_sequential () =
  (* one corrupt target plus pct-injected harden faults: the rest of
     the batch completes, and jobs=1 and jobs=4 agree exactly *)
  let spec = "harden:t5,harden%40~9" in
  let seq_outcome, seq_faults = run_batch ~jobs:1 ~spec in
  let par_outcome, par_faults = run_batch ~jobs:4 ~spec in
  Alcotest.(check (list string)) "outcomes parallel == sequential"
    seq_outcome par_outcome;
  Alcotest.(check (list (pair string string)))
    "recorded faults parallel == sequential" seq_faults par_faults;
  (* the corrupt target failed with its parse code, t5 with the
     injected harden code, and at least one target succeeded *)
  Alcotest.(check string) "t3 parse fault" "parse.magic" (List.nth seq_outcome 3);
  Alcotest.(check string) "t5 harden fault" "rewrite.abort"
    (List.nth seq_outcome 5);
  Alcotest.(check bool) "others complete" true
    (List.exists
       (fun s -> String.length s > 3 && String.sub s 0 3 = "ok:")
       seq_outcome);
  List.iter (fun (_, c) -> check_registered "batch fault" c) seq_faults

let test_transient_fault_retries () =
  (* a cache fault on the first hit only: protect's bounded retry makes
     the target succeed, and no fault is recorded as an Error *)
  with_engine ~cache:true ~inject:(inj "cache@1") @@ fun eng ->
  match
    Pl.protect eng ~target:"t" (fun () ->
        Pl.harden eng (synth_bin eng))
  with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "transient fault not retried: %s" (Fault.code f)

(* --- cache self-healing --------------------------------------------- *)

let art_magic = "REDFAT-ART6\n"

let overwrite path contents =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)

let test_cache_selfheal () =
  with_temp_dir @@ fun dir ->
  let file = Filename.concat dir "k1.art" in
  let c1 = Cache.create ~dir () in
  Alcotest.(check int) "computed" 41 (Cache.memo c1 ~key:"k1" (fun () -> 41));
  Alcotest.(check bool) "stored with current magic" true
    (String.length (In_channel.with_open_bin file In_channel.input_all)
     > String.length art_magic);
  (* stale: recognizable but older format magic *)
  overwrite file "REDFAT-ART2\nold-blob";
  let c2 = Cache.create ~dir () in
  Alcotest.(check int) "stale recomputed" 42 (Cache.memo c2 ~key:"k1" (fun () -> 42));
  Alcotest.(check int) "stale counted" 1 (Cache.stats c2).Cache.stale;
  (* corrupt header *)
  overwrite file "garbage";
  let c3 = Cache.create ~dir () in
  Alcotest.(check int) "corrupt recomputed" 43
    (Cache.memo c3 ~key:"k1" (fun () -> 43));
  Alcotest.(check int) "corrupt counted" 1 (Cache.stats c3).Cache.corrupt;
  (* right magic, unreadable blob (torn write / bit rot) *)
  overwrite file (art_magic ^ "not a marshal blob");
  let c4 = Cache.create ~dir () in
  Alcotest.(check int) "torn blob recomputed" 44
    (Cache.memo c4 ~key:"k1" (fun () -> 44));
  Alcotest.(check int) "torn blob counted corrupt" 1
    (Cache.stats c4).Cache.corrupt;
  (* after healing, the rewritten artifact is served normally *)
  let c5 = Cache.create ~dir () in
  Alcotest.(check int) "healed artifact hits" 44
    (Cache.memo c5 ~key:"k1" (fun () -> 99));
  Alcotest.(check int) "hit counted" 1 (Cache.stats c5).Cache.hits

let test_injected_runs_do_not_pollute_cache () =
  with_temp_dir @@ fun dir ->
  (* an injected run caches its (degraded) artifact under an
     inject-specific key; a clean engine over the same dir recomputes *)
  let degraded_checks =
    with_engine ~cache:true ~cache_dir:dir ~inject:(inj "rewrite@1")
    @@ fun eng -> (Pl.harden eng (synth_bin eng)).Rw.stats.Rw.degraded_sites
  in
  Alcotest.(check bool) "injected run degraded" true (degraded_checks > 0);
  with_engine ~cache:true ~cache_dir:dir @@ fun eng ->
  let hard = Pl.harden eng (synth_bin eng) in
  Alcotest.(check int) "clean engine rebuilds cleanly" 0
    hard.Rw.stats.Rw.degraded_sites

let tests =
  [
    Alcotest.test_case "registry well-formed" `Quick test_registry_well_formed;
    Alcotest.test_case "of_exn classification" `Quick test_of_exn_classification;
    Alcotest.test_case "fault JSON shape" `Quick test_fault_json;
    Alcotest.test_case "inject spec parsing" `Quick test_inject_spec_parsing;
    Alcotest.test_case "inject points raise registered faults" `Quick
      test_inject_points_raise_registered_faults;
    Alcotest.test_case "inject pct deterministic" `Quick
      test_inject_pct_deterministic;
    Alcotest.test_case "REDFAT_FAULT validation" `Quick test_of_env_malformed;
    Alcotest.test_case "degradation preserves behaviour" `Quick
      test_degradation_preserves_behaviour;
    Alcotest.test_case "strict aborts rewrite" `Quick test_strict_aborts_rewrite;
    Alcotest.test_case "batch isolation: parallel == sequential" `Quick
      test_batch_isolation_parallel_eq_sequential;
    Alcotest.test_case "transient faults retried" `Quick
      test_transient_fault_retries;
    Alcotest.test_case "cache self-healing" `Quick test_cache_selfheal;
    Alcotest.test_case "injected runs do not pollute cache" `Quick
      test_injected_runs_do_not_pollute_cache;
  ]
