(* Binary-level property tests: random straight-line assembly programs
   with in-bounds heap accesses of every width and operand shape —
   including the W2/W4 widths, Store_i, and segment-carrying operands
   that the MiniC compiler never emits. *)

open X64

(* A generated program: allocate one 256-byte object into rbx, run a
   random list of in-bounds accesses over it (offsets in [0, 248],
   random widths, random operand shapes), accumulate loads into r15,
   print r15, return. *)

type access = {
  off : int;              (* 0..248, the accessed displacement *)
  width : Isa.width;
  shape : int;            (* 0: disp(base)  1: (base,idx,1)  2: disp(base,idx,scale) *)
  store : int;            (* 0: load  1: store reg  2: store imm *)
  seg : int;              (* 0 or 1 (segments resolve to 0 in the VM) *)
}

let gen_access =
  QCheck.Gen.(
    let* off = int_range 0 31 >|= fun k -> k * 8 in
    let* width = oneofl [ Isa.W1; Isa.W2; Isa.W4; Isa.W8 ] in
    let* shape = int_range 0 2 in
    let* store = int_range 0 2 in
    let* seg = oneofl [ 0; 0; 0; 1 ] in
    return { off; width; shape; store; seg })

let gen_program = QCheck.Gen.(list_size (int_range 1 25) gen_access)

let instr_of_access (a : access) : Isa.instr list =
  (* build the operand so that its effective address = rbx + off *)
  let mem, setup =
    match a.shape with
    | 0 -> (Isa.mem ~seg:a.seg ~disp:a.off ~base:Isa.rbx (), [])
    | 1 ->
      (* idx register carries the offset *)
      ( Isa.mem ~seg:a.seg ~base:Isa.rbx ~idx:Isa.rcx ~scale:1 (),
        [ Isa.Mov_ri (Isa.rcx, a.off) ] )
    | _ ->
      (* disp + idx*8 splits the offset *)
      let idx_part = a.off / 8 in
      let disp = a.off - (idx_part * 8) in
      ( Isa.mem ~seg:a.seg ~disp ~base:Isa.rbx ~idx:Isa.rcx ~scale:8 (),
        [ Isa.Mov_ri (Isa.rcx, idx_part) ] )
  in
  setup
  @
  match a.store with
  | 0 ->
    [ Isa.Load (a.width, Isa.rdx, mem);
      Isa.Alu_rr (Isa.Add, Isa.r15, Isa.rdx) ]
  | 1 ->
    [ Isa.Mov_ri (Isa.rdx, a.off * 3); Isa.Store (a.width, mem, Isa.rdx) ]
  | _ -> [ Isa.Store_i (a.width, mem, (a.off * 7) land 0x7fffffff) ]

let program_of (accesses : access list) : Binfmt.Relf.t =
  let body =
    [ Isa.Mov_ri (Isa.rdi, 256); Isa.Callrt Isa.Malloc;
      Isa.Mov_rr (Isa.rbx, Isa.rax); Isa.Mov_ri (Isa.r15, 0) ]
    @ List.concat_map instr_of_access accesses
    @ [ Isa.Mov_rr (Isa.rdi, Isa.r15); Isa.Callrt Isa.Print; Isa.Ret ]
  in
  let code = Encode.encode_seq ~addr:Lowfat.Layout.code_base body in
  {
    Binfmt.Relf.entry = Lowfat.Layout.code_base;
    pic = false;
    stripped = true;
    sections =
      [ Binfmt.Relf.section ~executable:true ~name:".text"
          ~addr:Lowfat.Layout.code_base code ];
  }

let arb_program =
  QCheck.make gen_program
    ~print:(fun accs ->
      String.concat "; "
        (List.map
           (fun a ->
             Printf.sprintf "{off=%d w=%d shape=%d st=%d seg=%d}" a.off
               (Isa.width_bytes a.width) a.shape a.store a.seg)
           accs))

(* every optimization level preserves outputs and reports no errors *)
let prop_asm_preservation =
  QCheck.Test.make ~count:150 ~name:"asm-level rewriting preserves semantics"
    arb_program
    (fun accs ->
      let bin = program_of accs in
      let base, bv = Redfat.run_baseline bin in
      (match bv with Redfat.Finished _ -> () | _ -> QCheck.assume_fail ());
      List.for_all
        (fun opts ->
          let hard = Redfat.harden ~opts bin in
          let hr = Redfat.run_hardened hard.binary in
          match hr.verdict with
          | Redfat.Finished _ -> hr.run.outputs = base.outputs
          | _ -> false)
        [ Rewriter.Rewrite.unoptimized; Rewriter.Rewrite.with_elim;
          Rewriter.Rewrite.with_batch; Rewriter.Rewrite.optimized ])

(* pushing any access out of bounds is detected at every level *)
let prop_asm_oob_detected =
  QCheck.Test.make ~count:100 ~name:"asm-level overflow always detected"
    QCheck.(pair arb_program (make Gen.(int_range 0 24)))
    (fun (accs, pos) ->
      match accs with
      | [] -> true
      | _ ->
        (* corrupt one access to reach past the object (offset 256+) *)
        let k = pos mod List.length accs in
        let accs =
          List.mapi
            (fun j a ->
              if j = k then { a with off = 256 + 48; store = 1; seg = 0 }
              else a)
            accs
        in
        let bin = program_of accs in
        List.for_all
          (fun opts ->
            let hard = Redfat.harden ~opts bin in
            match (Redfat.run_hardened hard.binary).verdict with
            | Redfat.Detected _ -> true
            | _ -> false)
          [ Rewriter.Rewrite.unoptimized; Rewriter.Rewrite.optimized ])

(* stats invariants hold for arbitrary programs *)
let prop_stats_invariants =
  QCheck.Test.make ~count:150 ~name:"rewriter stats invariants" arb_program
    (fun accs ->
      let bin = program_of accs in
      let r = Redfat.harden bin in
      let s = r.stats in
      s.instrumented = s.full_sites + s.redzone_sites + s.temporal_sites
      && s.trampolines = s.jump_patches + s.trap_patches
      && s.checks_emitted <= s.instrumented (* merging only reduces *)
      && s.eliminated + s.instrumented <= s.mem_ops
      && List.length r.traps = s.trap_patches)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_asm_preservation;
    QCheck_alcotest.to_alcotest prop_asm_oob_detected;
    QCheck_alcotest.to_alcotest prop_stats_invariants;
  ]
