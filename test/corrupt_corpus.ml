(* The shared corrupt-input corpus loader.  test/corrupt/ holds one
   file per malformed-input shape (bad magic, truncated header,
   truncated nested section, binary garbage, empty input, broken MiniC
   sources); this module is the single way tests reach them, so adding
   a fixture is one file drop — test_fuzz.ml automatically feeds every
   file to the matching parser and asserts the typed rejection, and
   test_fault.ml resolves its fixtures by name through [path]. *)

let dir = "corrupt"

(* (filename, contents), sorted by name for deterministic iteration *)
let load () : (string * string) list =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (fun f ->
         ( f,
           In_channel.with_open_bin (Filename.concat dir f)
             In_channel.input_all ))

(* the split mirrors `redfat fuzz --corpus`: .mc files seed the MiniC
   parser campaign, everything else the RELF one *)
let minic () =
  List.filter (fun (f, _) -> Filename.check_suffix f ".mc") (load ())

let relf () =
  List.filter (fun (f, _) -> not (Filename.check_suffix f ".mc")) (load ())

let path name =
  let p = Filename.concat dir name in
  if not (Sys.file_exists p) then
    failwith ("corrupt corpus: no fixture named " ^ name);
  p
