(* Function-granular sharding parity: rewriting a binary's function
   regions separately (with chained trampoline bases) and splicing the
   parts back together must be byte-identical to one monolithic
   rewrite — same serialized binary, same trap table, same [.elimtab],
   same stats — across presets and backends.  This equivalence is what
   licenses the function-granular incremental cache. *)

module Df = Dataflow
module Rw = Rewriter.Rewrite
module Shard = Rewriter.Shard
module CB = Backend.Check_backend

(* Rewrite each slice with the chained base, then reassemble. *)
let shard_rewrite opts binary =
  match Shard.slices binary with
  | None -> None
  | Some sls ->
    let base = ref Rw.default_tramp_base in
    let parts =
      List.map
        (fun sl ->
          let p =
            Rw.rewrite ~tramp_base:!base opts (Shard.slice_binary binary sl)
          in
          base := !base + p.Rw.stats.tramp_bytes;
          p)
        sls
    in
    Some (List.length sls, Shard.assemble ~binary ~tramp_base:Rw.default_tramp_base parts)

let check_parity name opts binary =
  let mono = Rw.rewrite opts binary in
  match shard_rewrite opts binary with
  | None -> Alcotest.failf "%s: expected a shardable binary" name
  | Some (nslices, sharded) ->
    if nslices < 2 then Alcotest.failf "%s: expected >= 2 slices" name;
    Alcotest.(check bool)
      (name ^ ": serialized binary byte-identical")
      true
      (Binfmt.Relf.serialize mono.Rw.binary
      = Binfmt.Relf.serialize sharded.Rw.binary);
    Alcotest.(check (list (pair int int)))
      (name ^ ": trap table") mono.Rw.traps sharded.Rw.traps;
    Alcotest.(check int)
      (name ^ ": checks emitted")
      mono.Rw.stats.checks_emitted sharded.Rw.stats.checks_emitted;
    Alcotest.(check int)
      (name ^ ": eliminated (global)")
      mono.Rw.stats.eliminated_global sharded.Rw.stats.eliminated_global;
    Alcotest.(check (list (pair string int)))
      (name ^ ": checks by kind")
      mono.Rw.stats.checks_by_kind sharded.Rw.stats.checks_by_kind;
    match Rw.verify sharded.Rw.binary with
    | Ok r ->
      Alcotest.(check bool) (name ^ ": verifies") true (Df.Verify.ok r)
    | Error e -> Alcotest.fail (name ^ ": " ^ e)

(* Every bench in the suite, default optimized preset. *)
let test_corpus_optimized () =
  List.iter
    (fun (b : Workloads.Spec.bench) ->
      check_parity b.name Rw.optimized (Workloads.Spec.binary b))
    Workloads.Spec.all

(* A slice of the corpus across every preset x backend combination
   (the full product over 29 benches would dominate the suite's
   runtime without adding coverage). *)
let test_presets_and_backends () =
  let benches =
    List.filter
      (fun (b : Workloads.Spec.bench) ->
        List.mem b.name [ "perlbench"; "gcc"; "calculix" ])
      Workloads.Spec.all
  in
  List.iter
    (fun (b : Workloads.Spec.bench) ->
      let bin = Workloads.Spec.binary b in
      List.iter
        (fun (pname, preset) ->
          List.iter
            (fun backend ->
              let opts = { preset with Rw.backend } in
              let name =
                Printf.sprintf "%s/%s/%s" b.name pname (CB.name backend)
              in
              check_parity name opts bin)
            CB.all)
        [
          ("unoptimized", Rw.unoptimized);
          ("optimized", Rw.optimized);
          ("hoist", Rw.with_hoist);
        ])
    benches

(* The production preset's allow-list names absolute site addresses;
   sharding must not disturb how they are honoured. *)
let test_allowlist_parity () =
  let b =
    List.find
      (fun (b : Workloads.Spec.bench) -> b.name = "gcc")
      Workloads.Spec.all
  in
  let bin = Workloads.Spec.binary b in
  (* allow-list every other memory-access site of the optimized build *)
  let probe = Rw.rewrite Rw.optimized bin in
  let sites = List.mapi (fun i (a, _) -> (i, a)) probe.Rw.traps in
  let allow = List.filter_map (fun (i, a) -> if i mod 2 = 0 then Some a else None) sites in
  check_parity "gcc/production" (Rw.production ~allowlist:allow) bin

(* Slices are stable: same binary, same partition, same digests. *)
let test_slices_deterministic () =
  let b = List.hd Workloads.Spec.all in
  let bin = Workloads.Spec.binary b in
  match (Shard.slices bin, Shard.slices bin) with
  | Some a, Some b ->
    Alcotest.(check int) "slice count" (List.length a) (List.length b);
    List.iter2
      (fun (x : Shard.slice) (y : Shard.slice) ->
        Alcotest.(check string) "digest" x.sl_digest y.sl_digest;
        Alcotest.(check int) "addr" x.sl_addr y.sl_addr)
      a b
  | _ -> Alcotest.fail "expected shardable binary"

(* Slice byte ranges tile the text exactly. *)
let test_slices_cover_text () =
  List.iter
    (fun (b : Workloads.Spec.bench) ->
      let bin = Workloads.Spec.binary b in
      match Shard.slices bin with
      | None -> Alcotest.failf "%s: expected shardable" b.name
      | Some sls ->
        let text = Binfmt.Relf.text_exn bin in
        let total =
          List.fold_left (fun s (sl : Shard.slice) -> s + sl.sl_len) 0 sls
        in
        Alcotest.(check int)
          (b.name ^ ": coverage")
          (String.length text.bytes) total;
        let joined =
          String.concat "" (List.map (fun (sl : Shard.slice) -> sl.sl_bytes) sls)
        in
        Alcotest.(check bool)
          (b.name ^ ": bytes tile") true (joined = text.bytes))
    Workloads.Spec.all

let tests =
  [
    Alcotest.test_case "slices: deterministic" `Quick test_slices_deterministic;
    Alcotest.test_case "slices: tile the text" `Quick test_slices_cover_text;
    Alcotest.test_case "parity: corpus, optimized" `Quick test_corpus_optimized;
    Alcotest.test_case "parity: presets x backends" `Quick
      test_presets_and_backends;
    Alcotest.test_case "parity: production allow-list" `Quick
      test_allowlist_parity;
  ]
