(* The dataflow subsystem: block graph, dominators, liveness,
   availability/canonicalization, the elimination table, and the
   rewrite-soundness linter — on hand-built CFG fixtures with known
   solutions, plus behaviour-preservation properties of global check
   elimination over workload subsets. *)

open X64
module Df = Dataflow
module Rw = Rewriter.Rewrite

let i x = Asm.I x

let graph_of items =
  let code, labels = Asm.assemble ~origin:Lowfat.Layout.code_base items in
  let instrs = Array.of_list (Disasm.sweep ~addr:Lowfat.Layout.code_base code) in
  let g = Df.Graph.of_instrs ~entry:Lowfat.Layout.code_base instrs in
  let block_at name =
    match Df.Graph.index_at g (Hashtbl.find labels name) with
    | Some idx -> Df.Graph.block_of_instr g idx
    | None -> Alcotest.failf "label %s is not an instruction boundary" name
  in
  (g, block_at)

let assemble_binary items : Binfmt.Relf.t =
  let code, _ = Asm.assemble ~origin:Lowfat.Layout.code_base items in
  {
    Binfmt.Relf.entry = Lowfat.Layout.code_base;
    pic = false;
    stripped = true;
    sections =
      [
        Binfmt.Relf.section ~executable:true ~name:".text"
          ~addr:Lowfat.Layout.code_base code;
      ];
  }

(* --- fixtures: dominators ------------------------------------------- *)

(*        entry
          /   \
       left   right     (diamond)
          \   /
          join          *)
let diamond =
  [
    Asm.Label "entry";
    i (Isa.Mov_ri (Isa.rax, 1));
    Asm.Jcc_l (Isa.Eq, "right");
    Asm.Label "left";
    i (Isa.Mov_ri (Isa.rbx, 2));
    Asm.Jmp_l "join";
    Asm.Label "right";
    i (Isa.Mov_ri (Isa.rcx, 3));
    Asm.Label "join";
    i (Isa.Alu_ri (Isa.Add, Isa.rax, 1));
    i Isa.Ret;
  ]

let test_dom_diamond () =
  let g, blk = graph_of diamond in
  let dom = Df.Dom.compute g in
  let entry = blk "entry" and left = blk "left" in
  let right = blk "right" and join = blk "join" in
  Alcotest.(check (option int)) "idom left" (Some entry) (Df.Dom.idom dom left);
  Alcotest.(check (option int)) "idom right" (Some entry)
    (Df.Dom.idom dom right);
  Alcotest.(check (option int)) "idom join = fork, not a branch" (Some entry)
    (Df.Dom.idom dom join);
  Alcotest.(check bool) "entry dominates join" true
    (Df.Dom.dominates dom entry join);
  Alcotest.(check bool) "left does not dominate join" false
    (Df.Dom.dominates dom left join);
  Alcotest.(check bool) "reflexive" true (Df.Dom.dominates dom join join)

(*  entry -> head <-> body ; head -> exit  (natural loop) *)
let loop =
  [
    Asm.Label "entry";
    i (Isa.Mov_ri (Isa.rbx, 0));
    Asm.Label "head";
    i (Isa.Alu_ri (Isa.Sub, Isa.rbx, 10));   (* sets flags off rbx *)
    Asm.Jcc_l (Isa.Ge, "exit");
    Asm.Label "body";
    i (Isa.Alu_ri (Isa.Add, Isa.rbx, 1));
    Asm.Jmp_l "head";
    Asm.Label "exit";
    i Isa.Ret;
  ]

let test_dom_loop () =
  let g, blk = graph_of loop in
  let dom = Df.Dom.compute g in
  let entry = blk "entry" and head = blk "head" in
  let body = blk "body" and exit_ = blk "exit" in
  Alcotest.(check (option int)) "idom head" (Some entry) (Df.Dom.idom dom head);
  Alcotest.(check (option int)) "idom body" (Some head) (Df.Dom.idom dom body);
  Alcotest.(check (option int)) "idom exit" (Some head) (Df.Dom.idom dom exit_);
  Alcotest.(check bool) "back edge grants no dominance" false
    (Df.Dom.dominates dom body head)

let unreachable_fixture =
  [
    Asm.Label "entry";
    i (Isa.Mov_ri (Isa.rax, 1));
    Asm.Jmp_l "live";
    Asm.Label "dead";                        (* never targeted *)
    i (Isa.Mov_ri (Isa.rbx, 2));
    Asm.Label "live";
    i Isa.Ret;
  ]

let test_dom_unreachable () =
  let g, blk = graph_of unreachable_fixture in
  let dom = Df.Dom.compute g in
  let entry = blk "entry" and dead = blk "dead" and live = blk "live" in
  Alcotest.(check bool) "dead block is unreachable" false
    (Df.Graph.reachable g dead);
  Alcotest.(check bool) "live block is reachable" true
    (Df.Graph.reachable g live);
  Alcotest.(check bool) "nothing dominates an unreachable block" false
    (Df.Dom.dominates dom entry dead);
  Alcotest.(check bool) "an unreachable block dominates nothing else" false
    (Df.Dom.dominates dom dead live);
  Alcotest.(check bool) "except itself" true (Df.Dom.dominates dom dead dead)

(* --- fixtures: liveness --------------------------------------------- *)

let test_live_diamond () =
  let g, blk = graph_of diamond in
  let lv = Df.Live.solve g in
  (* rax is written in entry, read in join: live on both branch blocks *)
  let live_left = Df.Live.live_in lv (blk "left") in
  let live_right = Df.Live.live_in lv (blk "right") in
  Alcotest.(check bool) "rax live into left" true
    (Df.Live.is_live live_left Isa.rax);
  Alcotest.(check bool) "rax live into right" true
    (Df.Live.is_live live_right Isa.rax);
  (* rbx is written in left and never read *)
  Alcotest.(check bool) "rbx dead into left" false
    (Df.Live.is_live live_left Isa.rbx)

let test_live_loop () =
  let g, blk = graph_of loop in
  let lv = Df.Live.solve g in
  (* the loop counter survives the back edge *)
  Alcotest.(check bool) "rbx live around the loop" true
    (Df.Live.is_live (Df.Live.live_in lv (blk "head")) Isa.rbx);
  Alcotest.(check bool) "rbx live through the body" true
    (Df.Live.is_live (Df.Live.live_in lv (blk "body")) Isa.rbx);
  (* flags die at the conditional branch: nothing reads them in the body *)
  Alcotest.(check bool) "flags dead into body" false
    (Df.Live.flags_live (Df.Live.live_in lv (blk "body")))

let test_live_call_abi () =
  (* a call clobbers the caller-saved registers: values in them are not
     live across it, while callee-saved values are *)
  let g, blk =
    graph_of
      [
        Asm.Label "entry";
        i (Isa.Mov_ri (Isa.r10, 7));         (* caller-saved *)
        i (Isa.Mov_ri (Isa.rbx, 8));         (* callee-saved *)
        Asm.Call_l "fn";
        Asm.Label "after";
        i (Isa.Mov_rr (Isa.rax, Isa.r10));   (* reads r10 after the call *)
        i (Isa.Mov_rr (Isa.rdx, Isa.rbx));
        i Isa.Ret;
        Asm.Label "fn";
        i Isa.Ret;
      ]
  in
  let lv = Df.Live.solve g in
  let live_entry = Df.Live.live_in lv (blk "entry") in
  Alcotest.(check bool) "r10 not live across the call" false
    (Df.Live.is_live live_entry Isa.r10);
  ignore blk

(* --- clobber analysis at a call boundary ---------------------------- *)

let test_clobbers_call_boundary () =
  (* the scan hits a call with nothing read before it: the ABI says the
     caller-saved registers and flags are clobbered, so the trampoline
     needs no saves at all — the old analysis bailed conservative *)
  let bin =
    assemble_binary
      [
        i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rax (), Isa.rbx));
        Asm.Call_l "fn";
        i Isa.Ret;
        Asm.Label "fn";
        i Isa.Ret;
      ]
  in
  let text = Binfmt.Relf.text_exn bin in
  let cfg = Rewriter.Cfg.recover ~text_addr:text.addr text.bytes in
  let spec = Rewriter.Analysis.clobbers cfg ~start:0 ~limit:24 in
  Alcotest.(check int) "no saves needed before a call" 0 spec.nsaves;
  Alcotest.(check bool) "no flags save either" false spec.save_flags

(* --- operand canonicalization --------------------------------------- *)

let test_canon_operand () =
  let g, _ =
    graph_of
      [
        i (Isa.Mov_rr (Isa.r8, Isa.r12));
        i (Isa.Mov_ri (Isa.r9, 5));
        i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.r8 ~idx:Isa.r9 ~scale:8 (),
                      Isa.rbx));
        i Isa.Ret;
      ]
  in
  let m =
    Df.Canon.operand g 2 (Isa.mem ~base:Isa.r8 ~idx:Isa.r9 ~scale:8 ())
  in
  Alcotest.(check bool) "copy renamed to its source" true
    (m.Isa.base = Some Isa.r12);
  Alcotest.(check bool) "constant index folded away" true (m.Isa.idx = None);
  Alcotest.(check int) "into the displacement" 40 m.Isa.disp

(* --- elimination table ---------------------------------------------- *)

let test_elimtab_roundtrip () =
  let t =
    {
      Df.Elimtab.backend = Df.Elimtab.default_backend;
      reads = true;
      writes = false;
      entries =
        [ (0x400010, Df.Elimtab.Clear); (0x400020, Df.Elimtab.Dom 0x400008) ];
    }
  in
  (match Df.Elimtab.parse (Df.Elimtab.render t) with
  | Error e -> Alcotest.fail e
  | Ok t' -> Alcotest.(check bool) "round-trips" true (t = t'));
  (* a non-default backend survives the round-trip via its policy token *)
  let t2 = { t with Df.Elimtab.backend = "temporal" } in
  match Df.Elimtab.parse (Df.Elimtab.render t2) with
  | Error e -> Alcotest.fail e
  | Ok t2' ->
    Alcotest.(check bool) "backend token round-trips" true (t2 = t2')

(* --- options cache keys --------------------------------------------- *)

let test_options_key_distinct () =
  let base = Rw.optimized in
  let variants =
    [
      Rw.unoptimized;
      Rw.with_elim;
      Rw.with_batch;
      base;
      { base with Rw.global_elim = false };
      { base with Rw.merge = false };
      { base with Rw.scratch_opt = false };
      { base with Rw.instrument_reads = false };
      { base with Rw.instrument_writes = false };
      { base with Rw.allowlist = Some [] };
      { base with Rw.allowlist = Some [ 0x400000 ] };
      Rw.profiling_build;
    ]
  in
  let keys = List.map Rw.options_key variants in
  Alcotest.(check int) "pairwise distinct cache keys"
    (List.length keys)
    (List.length (List.sort_uniq compare keys))

(* --- global elimination: effect and behaviour preservation ----------- *)

let spec_subset = [ "bzip2"; "omnetpp"; "GemsFDTD" ]

let test_global_elim_reduces_checks () =
  (* the acceptance bar: on the optimized Table 1 configuration,
     global elimination strictly reduces emitted checks somewhere *)
  let strictly_reduced =
    List.exists
      (fun name ->
        let bin = Workloads.Spec.binary (Workloads.Spec.find name) in
        let off =
          (Rw.rewrite { Rw.optimized with Rw.global_elim = false } bin).stats
        in
        let on = (Rw.rewrite Rw.optimized bin).stats in
        on.Rw.eliminated_global > 0
        && on.Rw.checks_emitted < off.Rw.checks_emitted)
      spec_subset
  in
  Alcotest.(check bool) "strictly fewer checks on some workload" true
    strictly_reduced

let run_outcome bin opts inputs =
  let hard = Rw.rewrite opts bin in
  let hr = Redfat.run_hardened ~inputs hard.Rw.binary in
  let verdict =
    match hr.Redfat.verdict with
    | Redfat.Finished c -> Printf.sprintf "finished:%d" c
    | Redfat.Detected e -> "detected:" ^ Redfat_rt.Runtime.kind_name e.kind
    | Redfat.Fault m -> "fault:" ^ m
  in
  (verdict, hr.Redfat.run.Redfat.outputs, hr.Redfat.run.Redfat.exit_code)

let check_behaviour_preserved name bin inputs =
  let off = run_outcome bin { Rw.optimized with Rw.global_elim = false } inputs
  and on = run_outcome bin Rw.optimized inputs in
  Alcotest.(check (triple string (list int) int))
    (name ^ ": same verdict, outputs, exit code")
    off on

let test_global_elim_preserves_behaviour () =
  List.iter
    (fun name ->
      let b = Workloads.Spec.find name in
      let bin = Workloads.Spec.binary b in
      check_behaviour_preserved ("spec:" ^ name) bin
        (Workloads.Spec.ref_inputs b))
    spec_subset

let test_global_elim_preserves_verdicts () =
  (* detection verdicts on attack inputs are not weakened *)
  List.iteri
    (fun k (c : Workloads.Juliet.case) ->
      if k mod 7 = 0 then begin
        let bin = Workloads.Juliet.binary c in
        check_behaviour_preserved
          ("juliet:" ^ c.Workloads.Juliet.id ^ ":benign")
          bin c.Workloads.Juliet.benign_inputs;
        check_behaviour_preserved
          ("juliet:" ^ c.Workloads.Juliet.id ^ ":attack")
          bin c.Workloads.Juliet.attack_inputs
      end)
    Workloads.Juliet.all

(* --- the soundness linter ------------------------------------------- *)

let test_verify_workloads_ok () =
  List.iter
    (fun name ->
      let bin = Workloads.Spec.binary (Workloads.Spec.find name) in
      let hard = Rw.rewrite Rw.optimized bin in
      match Rw.verify hard.Rw.binary with
      | Error e -> Alcotest.failf "%s: verify error: %s" name e
      | Ok r ->
        Alcotest.(check bool) (name ^ ": zero unaccounted accesses") true
          (Df.Verify.ok r))
    spec_subset

let heap_fixture =
  (* one heap access, one eliminated rsp access *)
  [
    i (Isa.Mov_ri (Isa.rdi, 64));
    i (Isa.Callrt Isa.Malloc);
    i (Isa.Mov_ri (Isa.r10, 1));
    i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rax (), Isa.r10));
    i (Isa.Store (Isa.W8, Isa.mem ~disp:16 ~base:Isa.rsp (), Isa.r10));
    i Isa.Ret;
  ]

let test_verify_detects_tampering () =
  let hard = Rw.rewrite Rw.optimized (assemble_binary heap_fixture) in
  (match Rw.verify hard.Rw.binary with
  | Ok r -> Alcotest.(check bool) "pristine binary verifies" true
      (Df.Verify.ok r)
  | Error e -> Alcotest.fail e);
  (* drop the elimination table's entries: the rsp store loses its
     recorded justification and must surface as unaccounted *)
  let tampered =
    {
      hard.Rw.binary with
      Binfmt.Relf.sections =
        List.map
          (fun (s : Binfmt.Relf.section) ->
            if s.name = Df.Elimtab.section_name then
              { s with bytes = "!policy reads=1 writes=1\n" }
            else s)
          hard.Rw.binary.Binfmt.Relf.sections;
    }
  in
  match Rw.verify tampered with
  | Ok r ->
    Alcotest.(check bool) "tampered elimtab fails the lint" false
      (Df.Verify.ok r)
  | Error e -> Alcotest.fail e

let test_verify_rejects_unhardened_text_edit () =
  let hard = Rw.rewrite Rw.optimized (assemble_binary heap_fixture) in
  (* append an unpatched heap store to the text: a memory access no
     trampoline, table or rule accounts for *)
  let tampered =
    {
      hard.Rw.binary with
      Binfmt.Relf.sections =
        List.map
          (fun (s : Binfmt.Relf.section) ->
            if s.name = ".text" then
              let rogue =
                X64.Encode.encode_seq ~addr:(s.addr + String.length s.bytes)
                  [ Isa.Store (Isa.W8, Isa.mem ~base:Isa.rax (), Isa.r10);
                    Isa.Ret ]
              in
              { s with Binfmt.Relf.bytes = s.bytes ^ rogue }
            else s)
          hard.Rw.binary.Binfmt.Relf.sections;
    }
  in
  match Rw.verify tampered with
  | Ok r ->
    Alcotest.(check bool) "rogue access fails the lint" false
      (Df.Verify.ok r)
  | Error _ -> ()   (* structural rejection is also a failure verdict *)

let tests =
  [
    Alcotest.test_case "dominators: diamond" `Quick test_dom_diamond;
    Alcotest.test_case "dominators: loop" `Quick test_dom_loop;
    Alcotest.test_case "dominators: unreachable block" `Quick
      test_dom_unreachable;
    Alcotest.test_case "liveness: diamond" `Quick test_live_diamond;
    Alcotest.test_case "liveness: loop" `Quick test_live_loop;
    Alcotest.test_case "liveness: call ABI summary" `Quick test_live_call_abi;
    Alcotest.test_case "clobbers at a call boundary" `Quick
      test_clobbers_call_boundary;
    Alcotest.test_case "operand canonicalization" `Quick test_canon_operand;
    Alcotest.test_case "elimtab round-trip" `Quick test_elimtab_roundtrip;
    Alcotest.test_case "options_key pairwise distinct" `Quick
      test_options_key_distinct;
    Alcotest.test_case "global elim strictly reduces checks" `Quick
      test_global_elim_reduces_checks;
    Alcotest.test_case "global elim preserves behaviour (SPEC)" `Quick
      test_global_elim_preserves_behaviour;
    Alcotest.test_case "global elim preserves verdicts (Juliet)" `Quick
      test_global_elim_preserves_verdicts;
    Alcotest.test_case "verify: workloads lint clean" `Quick
      test_verify_workloads_ok;
    Alcotest.test_case "verify: tampered elimtab fails" `Quick
      test_verify_detects_tampering;
    Alcotest.test_case "verify: rogue text access fails" `Quick
      test_verify_rejects_unhardened_text_edit;
  ]
