(* Loop-aware check hoisting: back-edge queries, the irreducible-CFG
   fallback, the proof-carrying [hoist] elimtab records, hoist-off
   parity with the seed rewriter, and end-to-end effectiveness with
   behaviour preservation. *)

open X64
module Df = Dataflow
module Rw = Rewriter.Rewrite
module CB = Backend.Check_backend

let i x = Asm.I x

let graph_of items =
  let code, labels = Asm.assemble ~origin:Lowfat.Layout.code_base items in
  let instrs = Array.of_list (Disasm.sweep ~addr:Lowfat.Layout.code_base code) in
  let g = Df.Graph.of_instrs ~entry:Lowfat.Layout.code_base instrs in
  let block_at name =
    match Df.Graph.index_at g (Hashtbl.find labels name) with
    | Some idx -> Df.Graph.block_of_instr g idx
    | None -> Alcotest.failf "label %s is not an instruction boundary" name
  in
  (g, block_at)

let assemble_binary items : Binfmt.Relf.t =
  let code, _ = Asm.assemble ~origin:Lowfat.Layout.code_base items in
  {
    Binfmt.Relf.entry = Lowfat.Layout.code_base;
    pic = false;
    stripped = true;
    sections =
      [
        Binfmt.Relf.section ~executable:true ~name:".text"
          ~addr:Lowfat.Layout.code_base code;
      ];
  }

let has_sub sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- Dom back-edge queries ------------------------------------------ *)

(*  entry -> head <-> body ; head -> exit  (natural loop) *)
let natural_loop =
  [
    Asm.Label "entry";
    i (Isa.Mov_ri (Isa.rbx, 0));
    Asm.Label "head";
    i (Isa.Alu_ri (Isa.Sub, Isa.rbx, 10));
    Asm.Jcc_l (Isa.Ge, "exit");
    Asm.Label "body";
    i (Isa.Alu_ri (Isa.Add, Isa.rbx, 1));
    Asm.Jmp_l "head";
    Asm.Label "exit";
    i Isa.Ret;
  ]

let test_back_edges () =
  let g, blk = graph_of natural_loop in
  let dom = Df.Dom.compute g in
  let head = blk "head" and body = blk "body" in
  Alcotest.(check (list (pair int int))) "one back edge"
    [ (body, head) ]
    (Df.Dom.back_edges dom);
  Alcotest.(check bool) "latch -> header is a back edge" true
    (Df.Dom.is_back_edge dom ~src:body ~dst:head);
  Alcotest.(check bool) "header -> latch is not" false
    (Df.Dom.is_back_edge dom ~src:head ~dst:body);
  let loops = Df.Loops.analyze g dom in
  Alcotest.(check int) "one natural loop" 1
    (Array.length loops.Df.Loops.loops);
  let l = loops.Df.Loops.loops.(0) in
  Alcotest.(check int) "header" head l.Df.Loops.header;
  Alcotest.(check (list int)) "latches" [ body ] l.Df.Loops.latches;
  Alcotest.(check (option int)) "preheader" (Some (blk "entry"))
    l.Df.Loops.preheader

(* --- irreducible-CFG fallback --------------------------------------- *)

(* entry enters the a <-> b cycle at both nodes: neither dominates the
   other, so the cycle is irreducible — no back edge, no natural loop,
   and hoisting must degrade to "off" without crashing. *)
let irreducible =
  [
    Asm.Label "entry";
    i (Isa.Mov_ri (Isa.rax, 1));
    Asm.Jcc_l (Isa.Eq, "b");
    Asm.Label "a";
    i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rax (), Isa.r10));
    Asm.Label "b";
    i (Isa.Alu_ri (Isa.Sub, Isa.rax, 1));
    Asm.Jcc_l (Isa.Ne, "a");
    Asm.Label "exit";
    i Isa.Ret;
  ]

let test_irreducible_fallback () =
  let g, _ = graph_of irreducible in
  let dom = Df.Dom.compute g in
  Alcotest.(check (list (pair int int))) "no back edges" []
    (Df.Dom.back_edges dom);
  let loops = Df.Loops.analyze g dom in
  Alcotest.(check int) "no natural loops" 0
    (Array.length loops.Df.Loops.loops);
  (* the rewriter on the same shape: hoisting enabled, nothing to
     hoist, binary still verifies *)
  let hard = Rw.rewrite Rw.with_hoist (assemble_binary irreducible) in
  Alcotest.(check int) "nothing hoisted" 0 hard.Rw.stats.hoisted_checks;
  match Rw.verify hard.Rw.binary with
  | Ok r -> Alcotest.(check bool) "verifies" true (Df.Verify.ok r)
  | Error e -> Alcotest.fail e

(* --- elimtab round-trip --------------------------------------------- *)

let test_elimtab_hoist_roundtrip () =
  let t =
    {
      Df.Elimtab.backend = Df.Elimtab.default_backend;
      reads = true;
      writes = true;
      entries =
        [
          (0x400010, Df.Elimtab.Clear);
          (0x400020, Df.Elimtab.Hoist (0x400008, 0, 512));
          (0x400030, Df.Elimtab.Hoist (0x400008, -16, 24));
        ];
    }
  in
  (match Df.Elimtab.parse (Df.Elimtab.render t) with
  | Ok t' -> Alcotest.(check bool) "round-trips" true (t = t')
  | Error e -> Alcotest.fail e);
  match Df.Elimtab.parse "!policy reads=1 writes=1\n400020 hoist nope 0 8\n" with
  | Ok _ -> Alcotest.fail "malformed hoist line accepted"
  | Error _ -> ()

(* --- MiniC fixtures -------------------------------------------------- *)

open Minic.Ast
open Minic.Build

(* two sequential counted loops over one 64-element array: both hoist,
   and the second hoisted check is itself covered by the first *)
let two_loop_program =
  Minic.Ast.program
    [
      func ~name:"main"
        [
          let_ "a" (alloc_elems (i 64));
          for_ "j" (i 0) (i 64) [ set (v "a") (v "j") (v "j") ];
          let_ "s" (i 0);
          for_ "j" (i 0) (i 64) [ assign "s" (v "s" +: idx (v "a") (v "j")) ];
          print_ (v "s");
          free_ (v "a");
          return_ (i 0);
        ];
    ]

let loop_free_program =
  Minic.Ast.program
    [
      func ~name:"main"
        [
          let_ "a" (alloc_elems (i 8));
          set (v "a") (i 0) (i 1);
          set (v "a") (i 1) (i 2);
          let_ "s" (idx (v "a") (i 0) +: idx (v "a") (i 1));
          print_ (v "s");
          free_ (v "a");
          return_ (i 0);
        ];
    ]

(* --- hoist-off parity ----------------------------------------------- *)

let test_hoist_off_parity () =
  Alcotest.(check bool) "with_hoist is optimized + hoist" true
    ({ Rw.with_hoist with hoist = false } = Rw.optimized);
  (* hoisting is a no-op on loop-free code: same bytes as the seed
     rewriter *)
  let bin = Minic.Codegen.compile loop_free_program in
  let seed = Redfat.harden ~opts:Rw.optimized bin in
  let hoisted = Redfat.harden ~opts:Rw.with_hoist bin in
  Alcotest.(check string) "loop-free bytes identical"
    (Binfmt.Relf.serialize seed.Rw.binary)
    (Binfmt.Relf.serialize hoisted.Rw.binary);
  (* distinct cache identity even so: the option is in the key *)
  Alcotest.(check bool) "options_key separates hoist" false
    (Rw.options_key Rw.optimized = Rw.options_key Rw.with_hoist)

(* --- effectiveness + behaviour preservation ------------------------- *)

let test_hoist_effectiveness () =
  let bin = Minic.Codegen.compile two_loop_program in
  let seed = Redfat.harden ~opts:Rw.optimized bin in
  let hoisted = Redfat.harden ~opts:Rw.with_hoist bin in
  Alcotest.(check bool) "strictly fewer emitted checks" true
    (hoisted.Rw.stats.checks_emitted < seed.Rw.stats.checks_emitted);
  (* both loops' accesses leave the per-iteration stream; the second
     loop's widened check is covered by the first and elided, leaving
     a single emitted check *)
  Alcotest.(check int) "one widened check emitted" 1
    hoisted.Rw.stats.hoisted_checks;
  Alcotest.(check int) "both members hoisted" 2
    (List.assoc "elide.hoist" hoisted.Rw.stats.checks_by_kind);
  let r1 = Redfat.run_hardened seed.Rw.binary in
  let r2 = Redfat.run_hardened hoisted.Rw.binary in
  Alcotest.(check bool) "seed run finishes" true
    (r1.Redfat.verdict = Redfat.Finished 0);
  Alcotest.(check bool) "hoisted run finishes" true
    (r2.Redfat.verdict = Redfat.Finished 0);
  Alcotest.(check (list int)) "same outputs" r1.Redfat.run.outputs
    r2.Redfat.run.outputs;
  Alcotest.(check bool) "hoisted run is cheaper" true
    (r2.Redfat.run.cycles < r1.Redfat.run.cycles);
  match Redfat.Rewrite.verify hoisted.Rw.binary with
  | Ok r ->
    Alcotest.(check bool) "verifies" true (Df.Verify.ok r);
    Alcotest.(check int) "both hoists proved" 2 r.Df.Verify.elim_hoist
  | Error e -> Alcotest.fail e

(* --- the linter rejects a tampered (narrowed) hull ------------------- *)

let test_verify_rejects_narrowed_hull () =
  let bin = Minic.Codegen.compile two_loop_program in
  let hard = Redfat.harden ~opts:Rw.with_hoist bin in
  let narrow_one_line etab =
    let narrowed = ref false in
    String.split_on_char '\n' etab
    |> List.map (fun line ->
           match String.split_on_char ' ' line with
           | [ a; "hoist"; s; lo; hi ] when not !narrowed ->
             narrowed := true;
             let hi = int_of_string hi - 8 in
             Printf.sprintf "%s hoist %s %s %d" a s lo hi
           | _ -> line)
    |> String.concat "\n"
  in
  let tampered =
    {
      hard.Rw.binary with
      Binfmt.Relf.sections =
        List.map
          (fun (s : Binfmt.Relf.section) ->
            if s.name = Df.Elimtab.section_name then
              { s with Binfmt.Relf.bytes = narrow_one_line s.bytes }
            else s)
          hard.Rw.binary.Binfmt.Relf.sections;
    }
  in
  match Redfat.Rewrite.verify tampered with
  | Ok r ->
    Alcotest.(check bool) "narrowed hull fails the lint" false
      (Df.Verify.ok r);
    Alcotest.(check bool) "failure names the subsumption obligation" true
      (List.exists
         (fun (f : Df.Verify.failure) -> has_sub "subsume" f.f_reason)
         r.Df.Verify.failures)
  | Error e -> Alcotest.fail e

(* --- backend widening policy ----------------------------------------- *)

let test_backend_widen_policy () =
  List.iter
    (fun (b, v, expect) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s widens %s" (CB.name b)
           (match v with
            | Isa.Full -> "full"
            | Isa.Redzone -> "redzone"
            | Isa.Temporal -> "temporal"))
        expect
        (CB.widen b v <> None))
    [
      (CB.Lowfat, Isa.Full, true);
      (CB.Lowfat, Isa.Redzone, true);
      (CB.Lowfat, Isa.Temporal, false);
      (CB.Redzone, Isa.Redzone, true);
      (CB.Redzone, Isa.Full, false);
      (CB.Temporal, Isa.Full, false);
      (CB.Temporal, Isa.Redzone, false);
      (CB.Temporal, Isa.Temporal, false);
    ];
  (* the temporal backend declines end to end: per-iteration checks
     stay, nothing is hoisted, and the binary still verifies *)
  let bin = Minic.Codegen.compile two_loop_program in
  let hard =
    Redfat.harden ~opts:{ Rw.with_hoist with backend = CB.Temporal } bin
  in
  Alcotest.(check int) "temporal hoists nothing" 0
    hard.Rw.stats.hoisted_checks;
  match Redfat.Rewrite.verify hard.Rw.binary with
  | Ok r -> Alcotest.(check bool) "verifies" true (Df.Verify.ok r)
  | Error e -> Alcotest.fail e

let tests =
  [
    Alcotest.test_case "dom: back-edge queries" `Quick test_back_edges;
    Alcotest.test_case "irreducible CFG: no-hoist fallback" `Quick
      test_irreducible_fallback;
    Alcotest.test_case "elimtab: hoist record round-trip" `Quick
      test_elimtab_hoist_roundtrip;
    Alcotest.test_case "hoist off: seed parity" `Quick test_hoist_off_parity;
    Alcotest.test_case "hoist: fewer checks, same behaviour" `Quick
      test_hoist_effectiveness;
    Alcotest.test_case "verify: narrowed hull rejected" `Quick
      test_verify_rejects_narrowed_hull;
    Alcotest.test_case "backends: widening policy" `Quick
      test_backend_widen_policy;
  ]
