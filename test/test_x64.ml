(* Encoder/decoder round-trip and assembler tests. *)

open X64

let check_roundtrip ?(addr = 0x400000) (i : Isa.instr) =
  let b = Buffer.create 32 in
  Encode.encode_at b addr i;
  let s = Buffer.contents b in
  let i', len = Decode.decode ~addr s 0 in
  Alcotest.(check int) "length" (String.length s) len;
  if i' <> i then
    Alcotest.failf "round-trip: %s became %s" (Disasm.to_string i)
      (Disasm.to_string i')

let sample_mems =
  [
    Isa.mem ();
    Isa.mem ~disp:8 ~base:Isa.rax ();
    Isa.mem ~disp:(-8) ~base:Isa.rsp ();
    Isa.mem ~disp:0x1234 ~base:Isa.rbx ~idx:Isa.rcx ~scale:8 ();
    Isa.mem ~disp:(-0x10000) ~idx:Isa.r15 ~scale:4 ();
    Isa.mem ~seg:1 ~disp:127 ~base:Isa.r8 ();
    Isa.mem ~disp:0x601000 ();
  ]

let test_roundtrip_samples () =
  let open Isa in
  let instrs =
    [
      Mov_rr (rax, rbx);
      Mov_ri (rcx, 42);
      Mov_ri (rcx, -1);
      Mov_ri (rdx, 0x12_3456_7890);
      Lea (rsi, mem ~disp:16 ~base:rsp ());
      Alu_rr (Add, rax, r9);
      Alu_ri (Sub, rsp, 64);
      Mul_rr (rax, rbx);
      Div_rr (rax, rcx);
      Rem_rr (r10, r11);
      Neg r9;
      Not r12;
      Shift_ri (Shl, rax, 3);
      Shift_ri (Sar, rbx, 63);
      Cmp_rr (rax, rbx);
      Cmp_ri (rax, -5);
      Test_rr (r8, r8);
      Setcc (Ult, rax);
      Jmp 0x400100;
      Jcc (Ne, 0x3fff00);
      Call 0x400050;
      Call_ind rax;
      Jmp_ind r11;
      Ret;
      Push rbp;
      Pop r15;
      Callrt Malloc;
      Callrt Exit;
      Nop 1;
      Hlt;
      Trap;
    ]
    @ List.concat_map
        (fun m ->
          [
            Load (W8, rax, m); Load (W1, r9, m); Store (W8, m, rbx);
            Store (W4, m, r14); Store_i (W8, m, 1234); Store_i (W1, m, -1);
          ])
        sample_mems
  in
  List.iter check_roundtrip instrs

let test_check_roundtrip () =
  let ck =
    {
      Isa.ck_variant = Isa.Full;
      ck_mem = Isa.mem ~base:Isa.rbx ~idx:Isa.rcx ~scale:8 ();
      ck_lo = -16;
      ck_hi = 24;
      ck_write = true;
      ck_site = 0x401234;
      ck_nsaves = 3;
      ck_save_flags = true;
    }
  in
  check_roundtrip (Isa.Check ck);
  check_roundtrip
    (Isa.Check
       { ck with ck_variant = Isa.Redzone; ck_write = false;
         ck_nsaves = 0; ck_save_flags = false });
  check_roundtrip
    (Isa.Check { ck with ck_variant = Isa.Temporal; ck_nsaves = 1 })

let test_jmp_is_5_bytes () =
  (* the whole patching problem rests on this *)
  Alcotest.(check int) "jmp rel32" 5 (Encode.length (Isa.Jmp 0));
  Alcotest.(check int) "call rel32" 5 (Encode.length (Isa.Call 0));
  Alcotest.(check int) "jcc rel32" 6 (Encode.length (Isa.Jcc (Isa.Eq, 0)));
  Alcotest.(check int) "push" 1 (Encode.length (Isa.Push Isa.rax));
  Alcotest.(check int) "trap" 1 (Encode.length Isa.Trap)

let test_mem_instr_lengths () =
  (* the smallest instrumentable instruction is 4 bytes: shorter than a
     jmp, which is what forces the eviction/trap tactics *)
  let small = Isa.Store (Isa.W8, Isa.mem ~base:Isa.r8 ~idx:Isa.r9 ~scale:8 (), Isa.r10) in
  Alcotest.(check int) "indexed store" 4 (Encode.length small);
  let len =
    Encode.length
      (Isa.Store (Isa.W8, Isa.mem ~disp:0x1000 ~base:Isa.r8 ~idx:Isa.r9 ~scale:8 (), Isa.r10))
  in
  Alcotest.(check int) "disp32 store" 8 len

let test_assembler_labels () =
  let items =
    [
      Asm.Label "start";
      Asm.I (Isa.Mov_ri (Isa.rax, 0));
      Asm.Label "loop";
      Asm.I (Isa.Alu_ri (Isa.Add, Isa.rax, 1));
      Asm.I (Isa.Cmp_ri (Isa.rax, 10));
      Asm.Jcc_l (Isa.Lt, "loop");
      Asm.Jmp_l "end";
      Asm.I Isa.Hlt;
      Asm.Label "end";
      Asm.I Isa.Ret;
    ]
  in
  let code, labels = Asm.assemble ~origin:0x400000 items in
  Alcotest.(check bool) "start at origin" true
    (Hashtbl.find labels "start" = 0x400000);
  (* decode the whole stream back *)
  let instrs = Disasm.sweep ~addr:0x400000 code in
  Alcotest.(check int) "instruction count" 7 (List.length instrs);
  (* the backward branch must target the loop label *)
  let _, jcc, _ = List.nth instrs 3 in
  (match jcc with
   | Isa.Jcc (Isa.Lt, t) ->
     Alcotest.(check int) "jcc target" (Hashtbl.find labels "loop") t
   | i -> Alcotest.failf "expected jcc, got %s" (Disasm.to_string i))

let test_duplicate_label () =
  Alcotest.check_raises "duplicate" (Asm.Duplicate_label "x") (fun () ->
      ignore (Asm.assemble ~origin:0 [ Asm.Label "x"; Asm.Label "x" ]))

let test_undefined_label () =
  Alcotest.check_raises "undefined" (Asm.Undefined_label "nope") (fun () ->
      ignore (Asm.assemble ~origin:0 [ Asm.Jmp_l "nope" ]))

(* --- qcheck property: arbitrary instructions survive the round trip *)

let gen_reg = QCheck.Gen.int_range 0 15

let gen_mem =
  let open QCheck.Gen in
  let* disp = oneof [ return 0; int_range (-128) 127; int_range (-100000) 100000 ] in
  let* base = opt gen_reg in
  let* idx = opt gen_reg in
  let* scale = oneofl [ 1; 2; 4; 8 ] in
  let* seg = oneofl [ 0; 0; 0; 1; 2 ] in
  return (Isa.mem ~seg ~disp ?base ?idx ~scale ())

let gen_width = QCheck.Gen.oneofl [ Isa.W1; Isa.W2; Isa.W4; Isa.W8 ]

let gen_instr =
  let open QCheck.Gen in
  let open Isa in
  oneof
    [
      (let* d = gen_reg and* s = gen_reg in
       return (Mov_rr (d, s)));
      (let* d = gen_reg and* v = oneof [ int_range (-1000) 1000; int_bound (1 lsl 40) ] in
       return (Mov_ri (d, v)));
      (let* w = gen_width and* d = gen_reg and* m = gen_mem in
       return (Load (w, d, m)));
      (let* w = gen_width and* m = gen_mem and* s = gen_reg in
       return (Store (w, m, s)));
      (let* w = gen_width and* m = gen_mem and* v = int_range (-1000) 1000 in
       return (Store_i (w, m, v)));
      (let* d = gen_reg and* m = gen_mem in
       return (Lea (d, m)));
      (let* op = oneofl [ Add; Sub; And; Or; Xor ]
       and* d = gen_reg
       and* s = gen_reg in
       return (Alu_rr (op, d, s)));
      (let* op = oneofl [ Add; Sub; And; Or; Xor ]
       and* d = gen_reg
       and* v = int_range (-100000) 100000 in
       return (Alu_ri (op, d, v)));
      (let* s = oneofl [ Shl; Shr; Sar ] and* r = gen_reg and* n = int_range 0 63 in
       return (Shift_ri (s, r, n)));
      (let* r = gen_reg in
       return (Push r));
      (let* r = gen_reg in
       return (Pop r));
      (let* t = int_range 0x300000 0x500000 in
       return (Jmp t));
      (let* cc = oneofl [ Eq; Ne; Lt; Le; Gt; Ge; Ult; Ule; Ugt; Uge ]
       and* t = int_range 0x300000 0x500000 in
       return (Jcc (cc, t)));
    ]

let prop_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"encode/decode round-trip"
    (QCheck.make gen_instr ~print:Disasm.to_string)
    (fun i ->
      let b = Buffer.create 32 in
      Encode.encode_at b 0x400000 i;
      let s = Buffer.contents b in
      let i', len = Decode.decode ~addr:0x400000 s 0 in
      i = i' && len = String.length s)

let prop_seq_roundtrip =
  QCheck.Test.make ~count:300 ~name:"instruction stream linear sweep"
    QCheck.(make Gen.(list_size (int_range 1 40) gen_instr))
    (fun is ->
      let code = Encode.encode_seq ~addr:0x400000 is in
      let swept = Disasm.sweep ~addr:0x400000 code in
      List.length swept = List.length is
      && List.for_all2 (fun (_, i', _) i -> i = i') swept is)

let tests =
  [
    Alcotest.test_case "round-trip samples" `Quick test_roundtrip_samples;
    Alcotest.test_case "check payload round-trip" `Quick test_check_roundtrip;
    Alcotest.test_case "control-transfer lengths" `Quick test_jmp_is_5_bytes;
    Alcotest.test_case "memory instruction lengths" `Quick test_mem_instr_lengths;
    Alcotest.test_case "assembler labels" `Quick test_assembler_labels;
    Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
    Alcotest.test_case "undefined label" `Quick test_undefined_label;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_seq_roundtrip;
  ]
