(* lib/obs: the structured tracing/metrics collector.

   The load-bearing property is merge losslessness: per-domain
   buffers, filled concurrently by pool workers, must merge to exactly
   the counters/histograms a sequential run produces.  Plus span
   nesting discipline and the Chrome exporter round-tripping through
   our own JSON reader. *)

module J = Obs.Json

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

(* the shared workload: bump counters and feed a histogram per item *)
let work o x =
  Obs.add o "work.items";
  Obs.add o ~n:x "work.sum";
  Obs.observe o "work.value" x;
  x * x

let items = List.init 100 (fun i -> i)

let run_with_jobs jobs =
  let o = Obs.create () in
  let pool = Engine.Pool.create ~jobs ~obs:o () in
  let rs = Engine.Pool.map_list pool (work o) items in
  Engine.Pool.close pool;
  (o, rs)

let test_parallel_merge () =
  let o1, r1 = run_with_jobs 1 in
  let o4, r4 = run_with_jobs 4 in
  check (Alcotest.list Alcotest.int) "results" r1 r4;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "merged counters: parallel == sequential"
    (List.filter (fun (k, _) -> k <> "pool.task") (Obs.counters o1))
    (List.filter (fun (k, _) -> k <> "pool.task") (Obs.counters o4));
  let hist_view o =
    List.map
      (fun (k, (h : Obs.hist)) ->
        (k, (h.h_count, h.h_sum, h.h_min, h.h_max, h.h_buckets)))
      (Obs.histograms o)
  in
  checkb "merged histograms: parallel == sequential" true
    (hist_view o1 = hist_view o4);
  check Alcotest.int "work.items counter" (List.length items)
    (Obs.counter o4 "work.items");
  check Alcotest.int "work.sum counter"
    (List.fold_left ( + ) 0 items)
    (Obs.counter o4 "work.sum");
  checkb "both well-formed" true (Obs.well_formed o1 && Obs.well_formed o4)

let test_span_nesting () =
  let o = Obs.create () in
  let v =
    Obs.span o "outer" (fun () ->
        Obs.span o ~cat:"inner-cat" "inner" (fun () -> 41) + 1)
  in
  check Alcotest.int "span returns the thunk's value" 42 v;
  (* an exception must still close the span *)
  (try Obs.span o "raising" (fun () -> failwith "boom") with Failure _ -> ());
  checkb "well-formed after exception" true (Obs.well_formed o);
  let sp name =
    List.find (fun (s : Obs.span) -> s.sp_name = name) (Obs.spans o)
  in
  check Alcotest.int "outer depth" 0 (sp "outer").sp_depth;
  check Alcotest.int "inner depth" 1 (sp "inner").sp_depth;
  check Alcotest.string "inner category" "inner-cat" (sp "inner").sp_cat;
  checkb "inner starts within outer" true
    ((sp "inner").sp_start >= (sp "outer").sp_start);
  (* category filter: the stage view must not see other categories *)
  check Alcotest.int "span_summary ~cat filters" 1
    (List.length (Obs.span_summary ~cat:"inner-cat" o))

let test_chrome_roundtrip () =
  let o = Obs.create () in
  Obs.span o ~cat:"stage" "compile" (fun () -> ());
  Obs.span o ~cat:"rewrite" "rw.emit \"quoted\"" (fun () -> ());
  Obs.add o ~n:7 "cache.hit";
  let json = Obs.to_chrome ~process_name:"redfat-test" o in
  let v =
    match J.parse json with
    | Ok v -> v
    | Error e -> Alcotest.failf "chrome export does not parse: %s" e
  in
  let events =
    match Option.bind (J.member "traceEvents" v) J.to_arr with
    | Some es -> es
    | None -> Alcotest.fail "no traceEvents array"
  in
  let field name e = Option.bind (J.member name e) J.to_str in
  let by_ph ph =
    List.filter (fun e -> field "ph" e = Some ph) events
  in
  let names es = List.filter_map (field "name") es in
  checkb "span slice for compile" true (List.mem "compile" (names (by_ph "X")));
  checkb "escaped span name survives" true
    (List.mem "rw.emit \"quoted\"" (names (by_ph "X")));
  checkb "counter sample for cache.hit" true
    (List.mem "cache.hit" (names (by_ph "C")));
  (* the counter's value rides in args *)
  let hit =
    List.find (fun e -> field "name" e = Some "cache.hit") (by_ph "C")
  in
  let value =
    Option.bind (J.member "args" hit) (fun a ->
        Option.bind (J.member "value" a) J.to_num)
  in
  check (Alcotest.option (Alcotest.float 0.0)) "counter value" (Some 7.0) value;
  checkb "process metadata present" true
    (List.exists (fun e -> field "name" e = Some "process_name") (by_ph "M"))

let test_engine_trace () =
  (* the engine end of the contract: a pipeline run's trace export
     parses and covers the stages it ran *)
  let eng = Engine.Pipeline.create ~jobs:2 ~cache:false () in
  let prog =
    Minic.(
      Ast.program
        [ Ast.func ~name:"main" Build.[ print_ (i 7); return_ (i 0) ] ])
  in
  let bin = Engine.Pipeline.compile eng prog in
  let _ = Engine.Pipeline.harden eng bin in
  let trace = Engine.Pipeline.trace_json eng in
  Engine.Pipeline.close eng;
  match J.parse trace with
  | Error e -> Alcotest.failf "engine trace does not parse: %s" e
  | Ok v ->
    let events =
      Option.value ~default:[]
        (Option.bind (J.member "traceEvents" v) J.to_arr)
    in
    let stage name =
      List.exists
        (fun e ->
          Option.bind (J.member "name" e) J.to_str = Some name
          && Option.bind (J.member "cat" e) J.to_str = Some "stage")
        events
    in
    checkb "compile stage span" true (stage "compile");
    checkb "harden stage span" true (stage "harden")

let test_json_reader () =
  let ok s = match J.parse s with Ok v -> v | Error e -> Alcotest.fail e in
  check (Alcotest.option (Alcotest.float 1e-9)) "number" (Some 1.5)
    (J.to_num (ok "1.5"));
  check (Alcotest.option Alcotest.string) "escapes" (Some "a\"b\\c\nd")
    (J.to_str (ok {|"a\"b\\c\nd"|}));
  checkb "nested lookup" true
    (Option.bind (J.member "xs" (ok {|{"xs": [1, 2, 3]}|})) J.to_arr
     |> Option.map List.length = Some 3);
  checkb "truncated input is an error" true
    (match J.parse "{\"a\": 1" with Error _ -> true | Ok _ -> false);
  checkb "trailing garbage is an error" true
    (match J.parse "1 x" with Error _ -> true | Ok _ -> false)

let tests =
  [
    Alcotest.test_case "parallel merge == sequential" `Quick
      test_parallel_merge;
    Alcotest.test_case "span nesting well-formed" `Quick test_span_nesting;
    Alcotest.test_case "chrome export round-trips" `Quick
      test_chrome_roundtrip;
    Alcotest.test_case "engine trace covers stages" `Quick test_engine_trace;
    Alcotest.test_case "json reader" `Quick test_json_reader;
  ]
