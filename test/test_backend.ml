(* The pluggable Check_backend architecture: parity of the refactored
   spatial backends with the pre-refactor behaviour, cache-key
   separation, self-describing binaries, and the temporal lock-and-key
   backend's detection guarantees. *)

module Rw = Rewriter.Rewrite
module CB = Backend.Check_backend

let kernels () =
  List.map
    (fun (b : Workloads.Spec.bench) -> (b.name, Workloads.Spec.binary b))
    Workloads.Spec.all

let section_bytes binary name =
  match Binfmt.Relf.find_section binary name with
  | Some s -> s.bytes
  | None -> Alcotest.failf "section %s missing" name

(* --- spatial parity ------------------------------------------------- *)

(* The default-backend path must stay byte-identical to the seed: the
   Lowfat backend records no [backend=] token, so a binary hardened
   with the pre-refactor rewriter and one hardened through the
   Check_backend dispatch serialize to the same bytes. *)
let test_default_path_is_seed_shaped () =
  List.iter
    (fun (name, bin) ->
      let implicit = Redfat.harden ~opts:Rw.optimized bin in
      let explicit_ =
        Redfat.harden ~opts:{ Rw.optimized with backend = CB.Lowfat } bin
      in
      Alcotest.(check string) (name ^ " bytes")
        (Binfmt.Relf.serialize implicit.binary)
        (Binfmt.Relf.serialize explicit_.binary);
      Alcotest.(check bool) (name ^ " stats") true
        (implicit.stats = explicit_.stats);
      let etab = section_bytes implicit.binary Dataflow.Elimtab.section_name in
      Alcotest.(check bool) (name ^ " no backend token") false
        (let re = "backend=" in
         let n = String.length re in
         let rec has i =
           i + n <= String.length etab
           && (String.sub etab i n = re || has (i + 1))
         in
         has 0);
      Alcotest.(check bool) (name ^ " adopts lowfat") true
        (Redfat.backend_of_binary implicit.binary = CB.Lowfat))
    (kernels ())

(* The Redzone backend is the Lowfat backend with an empty allowlist:
   same plans, same emission, so .text and .redfat agree byte for byte
   (the .elimtab differs only by the recorded policy). *)
let test_redzone_equals_demoted_lowfat () =
  List.iter
    (fun (name, bin) ->
      let demoted =
        Redfat.harden
          ~opts:{ Rw.optimized with allowlist = Some []; backend = CB.Lowfat }
          bin
      in
      let redzone =
        Redfat.harden ~opts:{ Rw.optimized with backend = CB.Redzone } bin
      in
      Alcotest.(check string) (name ^ " .text")
        (section_bytes demoted.binary ".text")
        (section_bytes redzone.binary ".text");
      Alcotest.(check string) (name ^ " .redfat")
        (section_bytes demoted.binary ".redfat")
        (section_bytes redzone.binary ".redfat");
      Alcotest.(check int) (name ^ " no full sites") 0
        redzone.stats.full_sites;
      Alcotest.(check bool) (name ^ " adopts redzone") true
        (Redfat.backend_of_binary redzone.binary = CB.Redzone))
    (kernels ())

(* --- cache-key separation ------------------------------------------- *)

let test_options_key_separates_backends () =
  let keys =
    List.map (fun b -> Rw.options_key { Rw.optimized with backend = b }) CB.all
  in
  Alcotest.(check int) "pairwise distinct" (List.length CB.all)
    (List.length (List.sort_uniq compare keys));
  Alcotest.(check string) "default = explicit lowfat"
    (Rw.options_key Rw.optimized)
    (Rw.options_key { Rw.optimized with backend = CB.Lowfat })

(* --- every backend is self-describing and runs clean ---------------- *)

let test_backends_run_clean () =
  let b = Workloads.Spec.find "mcf" in
  let bin = Workloads.Spec.binary b in
  List.iter
    (fun id ->
      let hard = Redfat.harden ~opts:{ Rw.optimized with backend = id } bin in
      Alcotest.(check bool) (CB.name id ^ " self-describing") true
        (Redfat.backend_of_binary hard.binary = id);
      let r =
        Redfat.run_hardened ~inputs:(Workloads.Spec.ref_inputs b) hard.binary
      in
      match r.verdict with
      | Redfat.Finished 0 -> ()
      | v ->
        Alcotest.failf "%s: expected clean run, got %s" (CB.name id)
          (Redfat.verdict_to_string v))
    CB.all

(* --- the temporal backend's detection guarantees -------------------- *)

let temporal_harden bin =
  Redfat.harden ~opts:{ Rw.optimized with backend = CB.Temporal } bin

let test_temporal_detects_suite () =
  List.iter
    (fun (c : Workloads.Uaf.case) ->
      let hard = temporal_harden (Workloads.Uaf.binary c) in
      let b =
        Redfat.run_hardened ~inputs:Workloads.Uaf.benign_inputs hard.binary
      in
      (match b.verdict with
       | Redfat.Finished 0 -> ()
       | v -> Alcotest.failf "%s benign: %s" c.id (Redfat.verdict_to_string v));
      let a =
        Redfat.run_hardened ~inputs:Workloads.Uaf.attack_inputs hard.binary
      in
      match a.verdict with
      | Redfat.Detected e ->
        Alcotest.(check string) (c.id ^ " kind") "use-after-free"
          (Redfat_rt.Runtime.kind_name e.kind)
      | v -> Alcotest.failf "%s attack: %s" c.id (Redfat.verdict_to_string v))
    Workloads.Uaf.all

(* Slot reuse defeats the spatial backends (the dangling access hits a
   live object); the stale key does not match the recycled slot's
   fresh lock. *)
let test_temporal_detects_reuse () =
  let bin = Minic.Codegen.compile Workloads.Uaf.reuse_case in
  let hard = temporal_harden bin in
  match (Redfat.run_hardened hard.binary).verdict with
  | Redfat.Detected e ->
    Alcotest.(check string) "kind" "key mismatch (stale pointer)"
      (Redfat_rt.Runtime.kind_name e.kind)
  | v -> Alcotest.failf "expected detection, got %s" (Redfat.verdict_to_string v)

(* A double free is a typed detection under the temporal backend, not
   an allocator abort. *)
let test_temporal_detects_double_free () =
  let bin = Minic.Codegen.compile Workloads.Uaf.double_free_case in
  let hard = temporal_harden bin in
  let safe = Redfat.run_hardened ~inputs:[ 0 ] hard.binary in
  (match safe.verdict with
   | Redfat.Finished 0 -> ()
   | v -> Alcotest.failf "safe ordering: %s" (Redfat.verdict_to_string v));
  match (Redfat.run_hardened ~inputs:[ 1 ] hard.binary).verdict with
  | Redfat.Detected e ->
    Alcotest.(check string) "kind" "double free"
      (Redfat_rt.Runtime.kind_name e.kind)
  | v -> Alcotest.failf "expected detection, got %s" (Redfat.verdict_to_string v)

(* An unrecognized backend name in .elimtab is the typed [run.backend]
   fault, not a silent fallback to some other backend's semantics. *)
let test_unknown_backend_faults () =
  (try ignore (CB.of_name_exn "quarantine") ;
     Alcotest.fail "of_name_exn accepted an unknown backend"
   with CB.Unknown n -> Alcotest.(check string) "name" "quarantine" n);
  let f = Engine.Fault.of_exn (CB.Unknown "quarantine") in
  Alcotest.(check string) "fault code" "run.backend" (Engine.Fault.code f)

let tests =
  [
    Alcotest.test_case "default path seed-shaped" `Quick
      test_default_path_is_seed_shaped;
    Alcotest.test_case "redzone = demoted lowfat" `Quick
      test_redzone_equals_demoted_lowfat;
    Alcotest.test_case "options_key separates backends" `Quick
      test_options_key_separates_backends;
    Alcotest.test_case "all backends run clean" `Quick
      test_backends_run_clean;
    Alcotest.test_case "temporal detects the suite" `Slow
      test_temporal_detects_suite;
    Alcotest.test_case "temporal detects slot reuse" `Quick
      test_temporal_detects_reuse;
    Alcotest.test_case "temporal detects double free" `Quick
      test_temporal_detects_double_free;
  ]
