(* The serving layer: LRU hot-tier semantics (byte-bounded eviction,
   second-touch admission, single-flight deduplication), the wire
   protocol, request handling with per-request fault isolation, and
   parallel-client == sequential determinism. *)

module Lru = Serve.Lru
module Proto = Serve.Proto
module Server = Serve.Server
module J = Obs.Json

let blob n c = String.make n c

(* --- the LRU hot tier ------------------------------------------------ *)

(* first touch computes but only ghosts the key; the second touch
   computes again and admits; the third is a hit served without
   computing *)
let test_second_touch () =
  let l = Lru.create ~cap_bytes:1000 () in
  let computes = ref 0 in
  let get () =
    Lru.get l ~key:"k" (fun () -> incr computes; blob 10 'a')
  in
  let _, o1 = get () in
  Alcotest.(check string) "first touch misses" "miss" (Lru.outcome_name o1);
  Alcotest.(check bool) "not yet resident" false (Lru.mem l "k");
  let _, o2 = get () in
  Alcotest.(check string) "second touch misses" "miss" (Lru.outcome_name o2);
  Alcotest.(check bool) "now resident" true (Lru.mem l "k");
  let v, o3 = get () in
  Alcotest.(check string) "third touch hits" "hit" (Lru.outcome_name o3);
  Alcotest.(check string) "hit serves the blob" (blob 10 'a') v;
  Alcotest.(check int) "computed exactly twice" 2 !computes;
  let st = Lru.stats l in
  Alcotest.(check int) "hits" 1 st.Lru.hits;
  Alcotest.(check int) "misses" 2 st.Lru.misses;
  Alcotest.(check int) "admitted" 1 st.Lru.admitted;
  Alcotest.(check int) "bytes" 10 st.Lru.bytes

(* admit a/b/c (40 bytes each) into a 100-byte cache: admitting c must
   evict the least recently used key, and recency follows touches *)
let test_eviction_order () =
  let l = Lru.create ~cap_bytes:100 () in
  let admit k =
    (* two touches: ghost, then admit *)
    ignore (Lru.get l ~key:k (fun () -> blob 40 k.[0]));
    ignore (Lru.get l ~key:k (fun () -> blob 40 k.[0]))
  in
  admit "a";
  admit "b";
  (* touch a so b is now the LRU victim *)
  ignore (Lru.get l ~key:"a" (fun () -> assert false));
  admit "c";
  Alcotest.(check (list string)) "b evicted, c most recent" [ "c"; "a" ]
    (Lru.keys_mru l);
  let st = Lru.stats l in
  Alcotest.(check int) "one eviction" 1 st.Lru.evictions;
  Alcotest.(check int) "bytes stay bounded" 80 st.Lru.bytes;
  (* the evicted key fell back into the ghost set: one computation
     re-admits it (no second probation) *)
  ignore (Lru.get l ~key:"b" (fun () -> blob 40 'b'));
  Alcotest.(check bool) "evicted key re-admits on next compute" true
    (Lru.mem l "b")

let test_oversize () =
  let l = Lru.create ~cap_bytes:50 () in
  ignore (Lru.get l ~key:"big" (fun () -> blob 60 'x'));
  ignore (Lru.get l ~key:"big" (fun () -> blob 60 'x'));
  Alcotest.(check bool) "oversize blob never admitted" false
    (Lru.mem l "big");
  let st = Lru.stats l in
  Alcotest.(check int) "oversize counted" 1 st.Lru.oversize;
  Alcotest.(check int) "nothing evicted" 0 st.Lru.evictions;
  Alcotest.(check int) "no bytes resident" 0 st.Lru.bytes

(* four domains race on one absent key with a slow computation: exactly
   one computes (the others coalesce), and the burst itself proves the
   key hot, so the blob is admitted immediately *)
let test_single_flight () =
  let l = Lru.create ~cap_bytes:1000 () in
  let computes = Atomic.make 0 in
  let work () =
    Lru.get l ~key:"k" (fun () ->
        Atomic.incr computes;
        Unix.sleepf 0.2;
        blob 8 'z')
  in
  let ds = List.init 4 (fun _ -> Domain.spawn work) in
  let results = List.map Domain.join ds in
  Alcotest.(check int) "computed once" 1 (Atomic.get computes);
  List.iter
    (fun (v, _) -> Alcotest.(check string) "all share the blob" (blob 8 'z') v)
    results;
  let st = Lru.stats l in
  Alcotest.(check int) "one miss (the leader)" 1 st.Lru.misses;
  Alcotest.(check int) "three coalesced waiters" 3 st.Lru.coalesced;
  Alcotest.(check bool) "burst admits immediately" true (Lru.mem l "k");
  (* a failing leader re-raises in every waiter and admits nothing *)
  let fails =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            match Lru.get l ~key:"boom" (fun () ->
                Unix.sleepf 0.05;
                failwith "poisoned")
            with
            | _ -> false
            | exception Failure _ -> true))
  in
  List.iter
    (fun d -> Alcotest.(check bool) "exception reaches caller" true
        (Domain.join d))
    fails;
  Alcotest.(check bool) "failed computation not admitted" false
    (Lru.mem l "boom")

(* --- the wire protocol ----------------------------------------------- *)

let test_proto () =
  (match
     Proto.parse_request
       {|{"id":"r1","op":"harden","target":"spec:mcf","backend":"temporal","hoist":true,"extra":"ignored"}|}
   with
  | Error e -> Alcotest.fail e
  | Ok rq ->
    Alcotest.(check string) "id" "r1" rq.Proto.rq_id;
    Alcotest.(check string) "op" "harden" (Proto.op_name rq.Proto.rq_op);
    Alcotest.(check string) "target" "spec:mcf" rq.Proto.rq_target;
    Alcotest.(check string) "backend" "temporal"
      (Backend.Check_backend.name rq.Proto.rq_backend);
    Alcotest.(check bool) "hoist" true rq.Proto.rq_hoist);
  let err line =
    match Proto.parse_request line with Error e -> e | Ok _ -> "OK"
  in
  Alcotest.(check bool) "garbage is a parse error" true
    (String.length (err "not json") > 2);
  Alcotest.(check string) "op required" "missing \"op\"" (err {|{"id":"x"}|});
  Alcotest.(check bool) "unknown op rejected" true
    (String.length (err {|{"op":"frob"}|}) > 0);
  Alcotest.(check bool) "target required for harden" true
    (String.length (err {|{"op":"harden"}|}) > 0);
  Alcotest.(check bool) "unknown backend rejected" true
    (String.length (err {|{"op":"harden","target":"t","backend":"x"}|}) > 0);
  (match Proto.parse_request {|{"op":"ping"}|} with
  | Ok rq -> Alcotest.(check string) "id defaults" "-" rq.Proto.rq_id
  | Error e -> Alcotest.fail e);
  (* response rendering round-trips through the JSON reader *)
  let line =
    Proto.response ~id:"r9" ~op:Proto.Harden ~ok:true
      [ ("n", Proto.I 42); ("s", Proto.S "a\"b"); ("f", Proto.F 1.5) ]
  in
  (match J.parse line with
  | Error e -> Alcotest.fail e
  | Ok j ->
    Alcotest.(check (option string)) "id round-trips" (Some "r9")
      (Option.bind (J.member "id" j) J.to_str);
    Alcotest.(check (option string)) "escaped string round-trips"
      (Some "a\"b")
      (Option.bind (J.member "s" j) J.to_str));
  Alcotest.(check bool) "response_ok" true (Proto.response_ok line);
  Alcotest.(check bool) "error_response is not ok" false
    (Proto.response_ok (Proto.error_response ~id:"-" ~detail:"x"))

(* --- the server ------------------------------------------------------ *)

let with_server ?(jobs = 1) ?inject f =
  let inject =
    match inject with
    | None -> Engine.Faultinject.none
    | Some s -> (
      match Engine.Faultinject.parse s with
      | Ok t -> t
      | Error e -> Alcotest.fail e)
  in
  let eng = Engine.Pipeline.create ~jobs ~cache:true ~inject () in
  let srv = Server.create eng in
  Fun.protect ~finally:(fun () -> Engine.Pipeline.close eng) (fun () -> f srv)

let field name line =
  match J.parse line with
  | Error e -> Alcotest.fail ("bad response JSON: " ^ e)
  | Ok j -> J.member name j

let str_field name line = Option.bind (field name line) J.to_str

(* responses are deterministic except for the "cache" outcome (which
   depends on scheduling under parallel clients): canonicalize by
   dropping it *)
let strip_cache line =
  match J.parse line with
  | Error e -> Alcotest.fail e
  | Ok (J.Obj fields) ->
    String.concat ";"
      (List.filter_map
         (fun (k, v) ->
           if k = "cache" then None
           else
             Some
               (k ^ "="
               ^
               match v with
               | J.Str s -> s
               | J.Num n -> string_of_float n
               | J.Bool b -> string_of_bool b
               | _ -> "?"))
         fields)
  | Ok _ -> Alcotest.fail "response is not an object"

let test_script_mode () =
  with_server @@ fun srv ->
  let out = ref [] in
  let failed =
    Server.run_script srv
      ~lines:
        [
          {|{"id":"p","op":"ping"}|};
          {|{"id":"h1","op":"harden","target":"spec:mcf"}|};
          {|{"id":"h2","op":"harden","target":"spec:mcf"}|};
          {|{"id":"h3","op":"harden","target":"spec:mcf"}|};
          "";
          {|{"id":"v","op":"verify","target":"spec:mcf"}|};
          {|{"id":"t","op":"trace","target":"spec:mcf"}|};
          {|{"id":"s","op":"stats"}|};
          {|{"id":"q","op":"shutdown"}|};
          {|{"id":"never","op":"ping"}|};
        ]
      ~emit:(fun r -> out := r :: !out)
  in
  let out = List.rev !out in
  Alcotest.(check int) "no failures" 0 failed;
  Alcotest.(check int) "shutdown stops the script" 8 (List.length out);
  let h3 = List.nth out 3 in
  Alcotest.(check (option string)) "third harden hits" (Some "hit")
    (str_field "cache" h3);
  let s = List.nth out 6 in
  (match Option.bind (field "serve.cache.hits" s) J.to_num with
  | Some n -> Alcotest.(check bool) "stats report hits" true (n >= 1.)
  | None -> Alcotest.fail "stats response lacks serve.cache.hits");
  Alcotest.(check bool) "stop flag set" true (Server.stop_requested srv);
  (* the obs counters the CI smoke greps for *)
  let o = Engine.Pipeline.obs (Server.engine srv) in
  Alcotest.(check bool) "serve.cache.hits counter nonzero" true
    (Obs.counter o "serve.cache.hits" > 0);
  Alcotest.(check int) "request counters" 3
    (Obs.counter o "serve.req.harden")

(* an injected fault inside one request answers ok:false with the
   typed fault and leaves the daemon serving (including the same
   target again, because injected keys never pollute clean keys — the
   injection harness is engine-wide here, so we poison one target) *)
let test_fault_isolation () =
  with_server ~inject:"harden:spec:mcf" @@ fun srv ->
  let r1, ok1 = Server.handle srv {|{"id":"a","op":"harden","target":"spec:mcf"}|} in
  Alcotest.(check bool) "poisoned request fails" false ok1;
  (match Option.bind (field "fault" r1) (J.member "code") with
  | Some (J.Str code) ->
    Alcotest.(check string) "typed fault code" "rewrite.abort" code
  | _ -> Alcotest.fail ("no fault code in: " ^ r1));
  let _, ok2 = Server.handle srv {|{"id":"b","op":"harden","target":"spec:gcc"}|} in
  Alcotest.(check bool) "other targets unaffected" true ok2;
  let _, ok3 = Server.handle srv {|{"id":"c","op":"ping"}|} in
  Alcotest.(check bool) "daemon still serving" true ok3;
  let o = Engine.Pipeline.obs (Server.engine srv) in
  Alcotest.(check bool) "serve.fault counted" true
    (Obs.counter o "serve.fault" >= 1)

(* the same request mix answered by 4 concurrent client domains and
   by a sequential run must produce identical response sets modulo
   the cache-outcome field *)
let test_parallel_equals_sequential () =
  let mix =
    List.concat_map
      (fun t ->
        [
          Printf.sprintf {|{"id":"%s-h","op":"harden","target":"%s"}|} t t;
          Printf.sprintf {|{"id":"%s-v","op":"verify","target":"%s"}|} t t;
        ])
      [ "spec:mcf"; "spec:bzip2"; "spec:gcc"; "spec:milc" ]
  in
  let sequential =
    with_server @@ fun srv ->
    List.map (fun l -> strip_cache (fst (Server.handle srv l))) mix
  in
  let parallel =
    with_server @@ fun srv ->
    let ds =
      List.map
        (fun l -> Domain.spawn (fun () -> strip_cache (fst (Server.handle srv l))))
        mix
    in
    List.map Domain.join ds
  in
  List.iter2
    (fun s p -> Alcotest.(check string) "parallel == sequential" s p)
    sequential parallel

(* full transport round trip: daemon in a domain, client over the
   Unix socket, shutdown via request *)
let test_socket_round_trip () =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "redfat-test-%d.sock" (Unix.getpid ()))
  in
  with_server @@ fun srv ->
  let daemon = Domain.spawn (fun () -> Server.listen srv ~socket:sock) in
  let out = ref [] in
  let failed =
    Server.send ~socket:sock
      ~lines:
        [
          {|{"id":"p","op":"ping"}|};
          {|{"id":"h","op":"harden","target":"spec:mcf"}|};
          {|{"id":"q","op":"shutdown"}|};
        ]
      ~emit:(fun r -> out := r :: !out)
  in
  Domain.join daemon;
  Alcotest.(check int) "all ok over the socket" 0 failed;
  Alcotest.(check int) "three responses" 3 (List.length !out);
  Alcotest.(check bool) "socket unlinked on shutdown" false
    (Sys.file_exists sock)

let tests =
  [
    Alcotest.test_case "lru second-touch admission" `Quick test_second_touch;
    Alcotest.test_case "lru byte-bounded eviction order" `Quick
      test_eviction_order;
    Alcotest.test_case "lru oversize rejection" `Quick test_oversize;
    Alcotest.test_case "lru single-flight" `Quick test_single_flight;
    Alcotest.test_case "wire protocol" `Quick test_proto;
    Alcotest.test_case "script mode end to end" `Quick test_script_mode;
    Alcotest.test_case "fault isolation per request" `Quick
      test_fault_isolation;
    Alcotest.test_case "parallel clients == sequential" `Slow
      test_parallel_equals_sequential;
    Alcotest.test_case "socket round trip" `Quick test_socket_round_trip;
  ]
