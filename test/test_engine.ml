(* The staged hardening engine: pool determinism, artifact-cache
   correctness, and parallel == sequential for the paper's headline
   experiments (Table 1 / Juliet subsets).

   This is also the regression guard for the domain-safety audit: every
   stage primitive here runs under 4 worker domains and must produce
   byte-identical artifacts and measurements to a sequential run. *)

module Pl = Engine.Pipeline
module Rw = Redfat.Rewrite
module Rt = Redfat_rt.Runtime

let log_opts = { Rt.default_options with mode = Rt.Log }

let with_engine ?(jobs = 1) ?(cache = true) ?cache_dir f =
  let eng = Pl.create ~jobs ~cache ?cache_dir () in
  Fun.protect ~finally:(fun () -> Pl.close eng) (fun () -> f eng)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "redfat-engine-test-%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* --- pool ----------------------------------------------------------- *)

let prop_pool_matches_list_map =
  QCheck.Test.make ~count:30 ~name:"Pool.map == List.map for any jobs"
    QCheck.(pair (list small_int) (int_range 1 6))
    (fun (xs, jobs) ->
      let f x = (x * x) - (3 * x) + 1 in
      let pool = Engine.Pool.create ~jobs () in
      let ys = Engine.Pool.map_list pool f xs in
      Engine.Pool.close pool;
      ys = List.map f xs)

let test_pool_exception_propagates () =
  let pool = Engine.Pool.create ~jobs:4 () in
  let r =
    try
      ignore
        (Engine.Pool.map_list pool
           (fun x -> if x >= 7 then failwith (string_of_int x) else x)
           (List.init 20 Fun.id));
      "no exception"
    with Failure m -> m
  in
  Engine.Pool.close pool;
  (* lowest failing index wins, regardless of scheduling *)
  Alcotest.(check string) "lowest-index failure" "7" r;
  (* the pool survives a failed batch *)
  let pool = Engine.Pool.create ~jobs:4 () in
  let ys = Engine.Pool.map_list pool (fun x -> x + 1) [ 1; 2; 3 ] in
  Engine.Pool.close pool;
  Alcotest.(check (list int)) "pool reusable after failure" [ 2; 3; 4 ] ys

let test_pool_nested_map () =
  let pool = Engine.Pool.create ~jobs:3 () in
  (* a worker task fanning out again must not deadlock: nested maps
     degrade to sequential inside that worker *)
  let ys =
    Engine.Pool.map_list pool
      (fun x -> List.fold_left ( + ) 0 (Engine.Pool.map_list pool Fun.id
                                          (List.init x Fun.id)))
      [ 5; 10; 15 ]
  in
  Engine.Pool.close pool;
  Alcotest.(check (list int)) "nested" [ 10; 45; 105 ] ys

(* --- cache ---------------------------------------------------------- *)

let test_cache_hit_returns_equal_fresh_copy () =
  let c = Engine.Cache.create ~enabled:true () in
  let key = Engine.Cache.key ~kind:"t" [ "a"; "b" ] in
  let v1 = Engine.Cache.memo c ~key (fun () -> [ "x"; "y" ]) in
  let v2 = Engine.Cache.memo c ~key (fun () -> failwith "must not recompute") in
  Alcotest.(check (list string)) "hit equals cold" v1 v2;
  Alcotest.(check bool) "hit is a fresh copy (no sharing across domains)"
    false (v1 == v2);
  let st = Engine.Cache.stats c in
  Alcotest.(check int) "hits" 1 st.Engine.Cache.hits;
  Alcotest.(check int) "misses" 1 st.Engine.Cache.misses

let test_cache_distinct_keys () =
  Alcotest.(check bool) "kind separates keys" false
    (Engine.Cache.key ~kind:"compile" [ "p" ]
    = Engine.Cache.key ~kind:"harden" [ "p" ]);
  (* concatenation ambiguity must not collide: ["ab";""] vs ["a";"b"] *)
  Alcotest.(check bool) "part boundaries hash differently" false
    (Engine.Cache.key ~kind:"k" [ "ab"; "" ]
    = Engine.Cache.key ~kind:"k" [ "a"; "b" ])

let test_disk_cache_warm_start () =
  with_temp_dir @@ fun dir ->
  let spec = Workloads.Spec.find "mcf" in
  let cold =
    with_engine ~cache_dir:dir @@ fun eng ->
    let bin = Pl.compile eng (Workloads.Spec.program spec) in
    let hard = Pl.harden eng bin in
    let st = Pl.cache_stats eng in
    (* compile + (sharded: one artifact per function and a manifest;
       monolithic fallback: one harden blob) *)
    let expected =
      match Redfat.Shard.slices bin with
      | Some sls -> 2 + List.length sls
      | None -> 2
    in
    Alcotest.(check int) "cold run stores artifacts" expected
      st.Engine.Cache.stores;
    Binfmt.Relf.serialize hard.Rw.binary
  in
  (* a brand-new engine on the same dir starts warm *)
  let warm =
    with_engine ~cache_dir:dir @@ fun eng ->
    let bin = Pl.compile eng (Workloads.Spec.program spec) in
    let hard = Pl.harden eng bin in
    let st = Pl.cache_stats eng in
    Alcotest.(check int) "warm run misses nothing" 0 st.Engine.Cache.misses;
    Alcotest.(check int) "warm run hits both artifacts" 2 st.Engine.Cache.hits;
    Binfmt.Relf.serialize hard.Rw.binary
  in
  Alcotest.(check bool) "warm artifact byte-identical to cold" true
    (cold = warm)

let test_no_cache_engine () =
  with_engine ~cache:false @@ fun eng ->
  let spec = Workloads.Spec.find "mcf" in
  let b1 = Pl.compile eng (Workloads.Spec.program spec) in
  let b2 = Pl.compile eng (Workloads.Spec.program spec) in
  Alcotest.(check bool) "recompilation is deterministic" true
    (Binfmt.Relf.serialize b1 = Binfmt.Relf.serialize b2);
  let st = Pl.cache_stats eng in
  Alcotest.(check int) "disabled cache never hits" 0 st.Engine.Cache.hits;
  Alcotest.(check int) "disabled cache never stores" 0 st.Engine.Cache.stores

(* --- cache under concurrency ----------------------------------------- *)

let test_cache_memo_concurrent () =
  (* racing domains on one key may duplicate the compute (observable
     only through the miss counter) but must never observe divergent
     artifacts *)
  let c = Engine.Cache.create ~enabled:true () in
  let key = Engine.Cache.key ~kind:"t" [ "concurrent" ] in
  let computes = Atomic.make 0 in
  let doms =
    List.init 8 (fun _ ->
        Domain.spawn (fun () ->
            Engine.Cache.memo c ~key (fun () ->
                Atomic.incr computes;
                "artifact")))
  in
  let vs = List.map Domain.join doms in
  List.iter (fun v -> Alcotest.(check string) "one artifact" "artifact" v) vs;
  let st = Engine.Cache.stats c in
  Alcotest.(check int) "every lookup accounted" 8
    (st.Engine.Cache.hits + st.Engine.Cache.misses);
  Alcotest.(check bool) "computes == misses >= 1" true
    (Atomic.get computes = st.Engine.Cache.misses
    && st.Engine.Cache.misses >= 1)

let test_sharded_harden_concurrent () =
  (* parallel workers hardening the same binary drive the
     function-sharded manifest/fnart protocol concurrently: duplicate
     per-function computes are allowed, divergent artifacts are not *)
  let spec = Workloads.Spec.find "gcc" in
  let seq =
    with_engine ~jobs:1 @@ fun eng ->
    let bin = Pl.compile eng (Workloads.Spec.program spec) in
    Binfmt.Relf.serialize (Pl.harden eng bin).Rw.binary
  in
  with_engine ~jobs:4 @@ fun eng ->
  let bin = Pl.compile eng (Workloads.Spec.program spec) in
  let outs =
    Pl.map eng
      (fun () -> Binfmt.Relf.serialize (Pl.harden eng bin).Rw.binary)
      (List.init 8 (fun _ -> ()))
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) "parallel harden == sequential harden" true
        (s = seq))
    outs;
  (* a later call must be served from the manifest tier *)
  let st0 = (Pl.cache_stats eng).Engine.Cache.hits in
  ignore (Pl.harden eng bin);
  Alcotest.(check bool) "manifest serves repeat lookups" true
    ((Pl.cache_stats eng).Engine.Cache.hits > st0)

(* --- parallel == sequential on the paper's experiments --------------- *)

let spec_subset = [ "mcf"; "bzip2"; "libquantum" ]

(* a condensed table1_row: every stage primitive, canonicalised *)
let table1_fragment eng name =
  let b = Workloads.Spec.find name in
  let bin = Pl.compile eng (Workloads.Spec.program b) in
  let refs = Workloads.Spec.ref_inputs b in
  let base, _ = Pl.run_baseline eng ~inputs:refs bin in
  let allow =
    Pl.profile eng ~test_suite:[ Workloads.Spec.train_inputs b ] bin
  in
  let hard =
    Pl.harden eng ~opts:{ Rw.optimized with allowlist = Some allow } bin
  in
  let hr = Pl.run_hardened eng ~options:log_opts ~inputs:refs hard.Rw.binary in
  Printf.sprintf "%s base=%d hard=%d allow=[%s] sites=%d/%d out=[%s]" name
    base.Redfat.cycles hr.Redfat.run.Redfat.cycles
    (String.concat ";" (List.map string_of_int allow))
    hard.Rw.stats.Rw.full_sites hard.Rw.stats.Rw.redzone_sites
    (String.concat ";" (List.map string_of_int hr.Redfat.run.Redfat.outputs))

let test_table1_parallel_eq_sequential () =
  let rows jobs =
    with_engine ~jobs ~cache:false @@ fun eng ->
    Pl.map eng (table1_fragment eng) spec_subset
  in
  Alcotest.(check (list string)) "jobs=4 == jobs=1" (rows 1) (rows 4)

let test_juliet_parallel_eq_sequential () =
  let subset =
    List.filteri (fun i _ -> i mod 24 = 0) Workloads.Juliet.all
  in
  let verdicts jobs =
    with_engine ~jobs ~cache:false @@ fun eng ->
    Pl.map eng
      (fun (c : Workloads.Juliet.case) ->
        let bin = Pl.compile eng c.program in
        let hard = Pl.harden eng bin in
        let attack =
          Pl.run_hardened eng ~inputs:c.attack_inputs hard.Rw.binary
        in
        ( c.id,
          match attack.Redfat.verdict with
          | Redfat.Detected _ -> true
          | _ -> false ))
      subset
  in
  Alcotest.(check bool) "subset is non-trivial" true (List.length subset > 5);
  Alcotest.(check (list (pair string bool))) "jobs=4 == jobs=1" (verdicts 1)
    (verdicts 4)

let test_compile_deterministic_across_domains () =
  with_engine ~jobs:4 ~cache:false @@ fun eng ->
  let progs = List.init 8 (fun seed -> Workloads.Synth.program ~seed ()) in
  let once () =
    Pl.map eng (fun p -> Binfmt.Relf.serialize (Pl.compile eng p)) progs
  in
  Alcotest.(check (list string)) "two parallel sweeps agree" (once ()) (once ())

(* --- typed stages ---------------------------------------------------- *)

let test_stage_chain () =
  with_engine @@ fun eng ->
  let b = Workloads.Spec.find "mcf" in
  let chain =
    Engine.Stage.(
      Pl.stage_compile eng
      >>> Pl.stage_profile eng ~train:[ Workloads.Spec.train_inputs b ]
      >>> Pl.stage_harden eng ()
      >>> Pl.stage_run eng ~inputs:(Workloads.Spec.ref_inputs b)
      >>> Pl.stage_report eng)
  in
  Alcotest.(check string) "declared shape"
    "Compile >>> Profile >>> Harden >>> Run >>> Report : minic-program -> \
     summary"
    (Engine.Stage.describe chain);
  let summary =
    Engine.Stage.run ~report:(Pl.report eng) chain (Workloads.Spec.program b)
  in
  Alcotest.(check bool) "summary reports a clean finish" true
    (String.length summary > 0
    && String.sub summary 0 String.(length "verdict:  finished")
       = "verdict:  finished");
  (* each named stage was timed exactly once *)
  List.iter
    (fun stage ->
      match
        List.assoc_opt stage
          (List.map
             (fun (n, calls, _) -> (n, calls))
             (Engine.Report.stage_summary (Pl.report eng)))
      with
      | Some calls -> Alcotest.(check int) (stage ^ " calls") 1 calls
      | None -> Alcotest.failf "stage %s missing from report" stage)
    [ "Compile"; "Profile"; "Harden"; "Run"; "Report" ]

let test_report_json_shape () =
  with_engine ~jobs:2 @@ fun eng ->
  let bin = Pl.compile eng (Workloads.Spec.program (Workloads.Spec.find "mcf")) in
  ignore (Pl.harden eng bin);
  Engine.Report.add_target (Pl.report eng) ~name:"spec:mcf" ~cycles:42
    ~overheads:[ ("merge", 4.0) ] ~wall:0.5 ();
  let json = Pl.emit_json eng ~extra:[ ("experiment", "test") ] () in
  List.iter
    (fun needle ->
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) ("json contains " ^ needle) true
        (contains json needle))
    [
      "\"experiment\": \"test\"";
      "\"jobs\": 2";
      "\"cache\":";
      "\"stages\":";
      "\"compile\":";
      "\"harden\":";
      "\"spec:mcf\"";
      "\"baseline_cycles\": 42";
      "\"merge\": 4";
      "\"wall_seconds\":";
    ]

let tests =
  [
    QCheck_alcotest.to_alcotest prop_pool_matches_list_map;
    Alcotest.test_case "pool: exception propagation" `Quick
      test_pool_exception_propagates;
    Alcotest.test_case "pool: nested map is safe" `Quick test_pool_nested_map;
    Alcotest.test_case "cache: hit == fresh copy of cold" `Quick
      test_cache_hit_returns_equal_fresh_copy;
    Alcotest.test_case "cache: key separation" `Quick test_cache_distinct_keys;
    Alcotest.test_case "cache: disk tier warm start" `Quick
      test_disk_cache_warm_start;
    Alcotest.test_case "cache: disabled engine" `Quick test_no_cache_engine;
    Alcotest.test_case "cache: concurrent memo converges" `Quick
      test_cache_memo_concurrent;
    Alcotest.test_case "cache: concurrent sharded harden converges" `Quick
      test_sharded_harden_concurrent;
    Alcotest.test_case "table1 subset: parallel == sequential" `Slow
      test_table1_parallel_eq_sequential;
    Alcotest.test_case "juliet subset: parallel == sequential" `Slow
      test_juliet_parallel_eq_sequential;
    Alcotest.test_case "compile deterministic across domains" `Quick
      test_compile_deterministic_across_domains;
    Alcotest.test_case "typed stage chain" `Quick test_stage_chain;
    Alcotest.test_case "report JSON shape" `Quick test_report_json_shape;
  ]
