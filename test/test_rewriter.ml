(* The static rewriter: CFG recovery, analyses, batching, merging,
   patch tactics, semantic preservation. *)

open X64
module Rw = Rewriter.Rewrite

let i x = Asm.I x

let assemble_binary items : Binfmt.Relf.t =
  let code, _ = Asm.assemble ~origin:Lowfat.Layout.code_base items in
  {
    Binfmt.Relf.entry = Lowfat.Layout.code_base;
    pic = false;
    stripped = true;
    sections =
      [
        Binfmt.Relf.section ~executable:true ~name:".text"
          ~addr:Lowfat.Layout.code_base code;
      ];
  }

(* --- CFG recovery ---------------------------------------------------- *)

let test_cfg_leaders () =
  let bin =
    assemble_binary
      [
        i (Isa.Mov_ri (Isa.rax, 1));        (* entry: leader *)
        Asm.Jcc_l (Isa.Eq, "target");
        i (Isa.Nop 1);                       (* fall-through: leader *)
        Asm.Label "target";
        i (Isa.Alu_ri (Isa.Add, Isa.rax, 1)); (* jump target: leader *)
        Asm.Call_l "fn";
        i (Isa.Nop 1);                       (* after call: leader *)
        i Isa.Ret;
        Asm.Label "fn";
        i Isa.Ret;                           (* after ret: leader *)
      ]
  in
  let text = Binfmt.Relf.text_exn bin in
  let cfg = Rewriter.Cfg.recover ~text_addr:text.addr text.bytes in
  let leaders =
    Array.to_list cfg.instrs
    |> List.filter (fun (a, _, _) -> Rewriter.Cfg.is_leader cfg a)
    |> List.length
  in
  Alcotest.(check int) "leader count" 5 leaders

(* --- analyses -------------------------------------------------------- *)

let test_eliminable () =
  let e m = Rewriter.Analysis.eliminable m ~len:8 in
  Alcotest.(check bool) "rsp-based" true (e (Isa.mem ~disp:16 ~base:Isa.rsp ()));
  Alcotest.(check bool) "absolute global" true
    (e (Isa.mem ~disp:Lowfat.Layout.data_base ()));
  Alcotest.(check bool) "paper's 0x601000" true (e (Isa.mem ~disp:0x601000 ()));
  Alcotest.(check bool) "plain register base" false
    (e (Isa.mem ~base:Isa.rax ()));
  Alcotest.(check bool) "indexed rsp NOT eliminable" false
    (e (Isa.mem ~base:Isa.rsp ~idx:Isa.rcx ()))

let clobber_spec items =
  let bin = assemble_binary items in
  let text = Binfmt.Relf.text_exn bin in
  let cfg = Rewriter.Cfg.recover ~text_addr:text.addr text.bytes in
  Rewriter.Analysis.clobbers cfg ~start:0 ~limit:16

let test_clobbers_dead_registers () =
  (* rcx, rdx, rsi are overwritten before any read: 3 scratch available *)
  let spec =
    clobber_spec
      [
        i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rax (), Isa.rbx));
        i (Isa.Mov_ri (Isa.rcx, 0));
        i (Isa.Mov_ri (Isa.rdx, 0));
        i (Isa.Mov_ri (Isa.rsi, 0));
        i Isa.Ret;
      ]
  in
  Alcotest.(check int) "no saves needed" 0 spec.nsaves

let test_clobbers_live_registers () =
  (* everything is read before written: conservative saves *)
  let spec =
    clobber_spec
      [
        i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rax (), Isa.rbx));
        i (Isa.Push Isa.rcx);
        i (Isa.Push Isa.rdx);
        i Isa.Ret;
      ]
  in
  Alcotest.(check int) "saves needed" 3 spec.nsaves

let test_clobbers_flags () =
  let dead =
    clobber_spec
      [
        i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rax (), Isa.rbx));
        i (Isa.Cmp_ri (Isa.rax, 0)); (* writes flags before any read *)
        i Isa.Ret;
      ]
  in
  Alcotest.(check bool) "flags dead" false dead.save_flags;
  let live =
    clobber_spec
      [
        i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rax (), Isa.rbx));
        i (Isa.Jcc (Isa.Eq, Lowfat.Layout.code_base)); (* reads flags *)
        i Isa.Ret;
      ]
  in
  Alcotest.(check bool) "flags live" true live.save_flags

(* --- batching and merging -------------------------------------------- *)

let store_seq =
  (* Example-2-like block over one object in rax *)
  [
    i (Isa.Mov_ri (Isa.rdi, 64));
    i (Isa.Callrt Isa.Malloc);
    i (Isa.Mov_ri (Isa.r10, 1));
    i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rax (), Isa.r10));
    i (Isa.Store_i (Isa.W8, Isa.mem ~disp:8 ~base:Isa.rax (), 2));
    i (Isa.Store_i (Isa.W8, Isa.mem ~disp:16 ~base:Isa.rax (), 3));
    i Isa.Ret;
  ]

let stats opts items = (Rw.rewrite opts (assemble_binary items)).stats

let test_batching_groups_block () =
  let s = stats Rw.with_batch store_seq in
  Alcotest.(check int) "one trampoline for the run" 1 s.trampolines;
  Alcotest.(check int) "three checks" 3 s.checks_emitted

let test_merging_same_operand () =
  let s = stats Rw.optimized store_seq in
  Alcotest.(check int) "merged into one check" 1 s.checks_emitted

let test_merge_respects_operand_key () =
  (* base registers holding provably different values cannot merge *)
  let items =
    [
      i (Isa.Mov_ri (Isa.rdi, 64));
      i (Isa.Callrt Isa.Malloc);
      i (Isa.Mov_rr (Isa.rbx, Isa.rax));
      i (Isa.Alu_ri (Isa.Add, Isa.rbx, 32));
      i (Isa.Mov_ri (Isa.r10, 1));
      i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rax (), Isa.r10));
      i (Isa.Store (Isa.W8, Isa.mem ~disp:8 ~base:Isa.rbx (), Isa.r10));
      i Isa.Ret;
    ]
  in
  let s = stats Rw.optimized items in
  Alcotest.(check int) "two checks" 2 s.checks_emitted;
  Alcotest.(check int) "one trampoline" 1 s.trampolines

let test_merge_through_copies () =
  (* a register copy holds the same value, so accesses through the copy
     merge with accesses through the original (operand canonicalization) *)
  let items =
    [
      i (Isa.Mov_ri (Isa.rdi, 64));
      i (Isa.Callrt Isa.Malloc);
      i (Isa.Mov_rr (Isa.rbx, Isa.rax));
      i (Isa.Mov_ri (Isa.r10, 1));
      i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rax (), Isa.r10));
      i (Isa.Store (Isa.W8, Isa.mem ~disp:8 ~base:Isa.rbx (), Isa.r10));
      i Isa.Ret;
    ]
  in
  let s = stats Rw.optimized items in
  Alcotest.(check int) "one merged check" 1 s.checks_emitted;
  Alcotest.(check int) "one trampoline" 1 s.trampolines

let test_batch_broken_by_redefinition () =
  (* the base register is redefined between the stores *)
  let items =
    [
      i (Isa.Mov_ri (Isa.rdi, 64));
      i (Isa.Callrt Isa.Malloc);
      i (Isa.Mov_ri (Isa.r10, 1));
      i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rax (), Isa.r10));
      i (Isa.Alu_ri (Isa.Add, Isa.rax, 8)); (* redefines rax *)
      i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rax (), Isa.r10));
      i Isa.Ret;
    ]
  in
  let s = stats Rw.optimized items in
  Alcotest.(check int) "two trampolines" 2 s.trampolines

let test_batch_broken_by_branch () =
  let items =
    [
      i (Isa.Mov_ri (Isa.rdi, 64));
      i (Isa.Callrt Isa.Malloc);
      i (Isa.Mov_ri (Isa.r10, 1));
      i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rax (), Isa.r10));
      Asm.Jcc_l (Isa.Eq, "skip");
      Asm.Label "skip";
      i (Isa.Store (Isa.W8, Isa.mem ~disp:8 ~base:Isa.rax (), Isa.r10));
      i Isa.Ret;
    ]
  in
  let s = stats Rw.optimized items in
  Alcotest.(check int) "branch breaks the batch" 2 s.trampolines

let test_batch_broken_by_rtcall () =
  (* a free() between accesses must not let the second check run early *)
  let items =
    [
      i (Isa.Mov_ri (Isa.rdi, 64));
      i (Isa.Callrt Isa.Malloc);
      i (Isa.Mov_ri (Isa.r10, 1));
      i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rax (), Isa.r10));
      i (Isa.Callrt Isa.Malloc);
      i (Isa.Store (Isa.W8, Isa.mem ~disp:8 ~base:Isa.rax (), Isa.r10));
      i Isa.Ret;
    ]
  in
  let s = stats Rw.optimized items in
  Alcotest.(check int) "runtime call breaks the batch" 2 s.trampolines

(* --- elimination ----------------------------------------------------- *)

let test_elimination_counts () =
  let items =
    [
      i (Isa.Store (Isa.W8, Isa.mem ~disp:8 ~base:Isa.rsp (), Isa.rax));
      i (Isa.Store_i (Isa.W8, Isa.mem ~disp:Lowfat.Layout.data_base (), 1));
      i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rbx (), Isa.rax));
      i Isa.Ret;
    ]
  in
  let off = stats Rw.unoptimized items in
  Alcotest.(check int) "no elimination" 3 off.instrumented;
  let on = stats Rw.with_elim items in
  Alcotest.(check int) "two eliminated" 2 on.eliminated;
  Alcotest.(check int) "one instrumented" 1 on.instrumented

let test_reads_writes_filter () =
  let items =
    [
      i (Isa.Load (Isa.W8, Isa.rcx, Isa.mem ~base:Isa.rbx ()));
      i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rbx (), Isa.rcx));
      i Isa.Ret;
    ]
  in
  let wo = stats { Rw.optimized with instrument_reads = false } items in
  Alcotest.(check int) "writes only" 1 wo.instrumented;
  let ro = stats { Rw.optimized with instrument_writes = false } items in
  Alcotest.(check int) "reads only" 1 ro.instrumented

(* --- patch tactics --------------------------------------------------- *)

let test_jump_tactic_on_long_instruction () =
  (* disp32 store is 8 bytes >= 5: plain jump patch, no eviction *)
  let items =
    [
      i (Isa.Store (Isa.W8, Isa.mem ~disp:0x1000 ~base:Isa.rbx (), Isa.rax));
      i Isa.Ret;
    ]
  in
  let s = stats Rw.optimized items in
  Alcotest.(check int) "jump patch" 1 s.jump_patches;
  Alcotest.(check int) "no eviction" 0 s.evictions;
  Alcotest.(check int) "no traps" 0 s.trap_patches

let test_eviction_tactic_on_short_instruction () =
  (* 4-byte store followed by plain instructions: eviction *)
  let items =
    [
      i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rbx (), Isa.rax));
      i (Isa.Mov_rr (Isa.rcx, Isa.rdx));
      i (Isa.Mov_rr (Isa.rsi, Isa.rdi));
      i Isa.Ret;
    ]
  in
  let s = stats Rw.optimized items in
  Alcotest.(check int) "jump patch via eviction" 1 s.jump_patches;
  Alcotest.(check bool) "evicted successors" true (s.evictions >= 1);
  Alcotest.(check int) "no traps" 0 s.trap_patches

let test_trap_tactic_when_blocked () =
  (* a 4-byte store immediately before a jump target: eviction illegal,
     must fall back to the 1-byte trap patch *)
  let items =
    [
      i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rbx (), Isa.rax));
      Asm.Label "target";
      i (Isa.Mov_rr (Isa.rcx, Isa.rdx));
      Asm.Jmp_l "target2";
      Asm.Label "target2";
      i Isa.Ret;
    ]
  in
  (* make "target" an actual jump target so it becomes a leader *)
  let items = items @ [ Asm.Label "unused"; Asm.Jmp_l "target" ] in
  let s = stats Rw.optimized items in
  Alcotest.(check int) "trap patch used" 1 s.trap_patches;
  Alcotest.(check (list (pair int int))) "trap table entry"
    [ (Lowfat.Layout.code_base, Lowfat.Layout.trampoline_base) ]
    (Rw.rewrite Rw.optimized (assemble_binary items)).traps

let test_traps_roundtrip_through_binary () =
  let items =
    [
      i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rbx (), Isa.rax));
      Asm.Label "t";
      i Isa.Ret;
      Asm.Jmp_l "t";
    ]
  in
  let r = Rw.rewrite Rw.optimized (assemble_binary items) in
  Alcotest.(check (list (pair int int))) "traptab section round-trip" r.traps
    (Rw.traps_of_binary r.binary);
  Alcotest.(check bool) "is_hardened" true (Rw.is_hardened r.binary);
  Alcotest.(check bool) "original not hardened" false
    (Rw.is_hardened (assemble_binary items))

(* --- indirect control flow ------------------------------------------- *)

let test_code_pointer_constants_are_leaders () =
  (* a taken function address must become a leader so its entry is
     never displaced into a trampoline *)
  let items =
    [
      Asm.Mov_label (Isa.rbx, "taken");
      i (Isa.Call_ind Isa.rbx);
      i Isa.Ret;
      Asm.Label "taken";
      i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rcx (), Isa.rax));
      i Isa.Ret;
    ]
  in
  let bin = assemble_binary items in
  let text = Binfmt.Relf.text_exn bin in
  let cfg = Rewriter.Cfg.recover ~text_addr:text.addr text.bytes in
  (* find the address of the "taken" store *)
  let _, labels = Asm.assemble ~origin:Lowfat.Layout.code_base items in
  Alcotest.(check bool) "taken entry is a leader" true
    (Rewriter.Cfg.is_leader cfg (Hashtbl.find labels "taken"))

let test_indirect_call_breaks_batch () =
  let items =
    [
      i (Isa.Mov_ri (Isa.rdi, 64));
      i (Isa.Callrt Isa.Malloc);
      i (Isa.Mov_ri (Isa.r10, 1));
      i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rax (), Isa.r10));
      i (Isa.Call_ind Isa.r12);
      i (Isa.Store (Isa.W8, Isa.mem ~disp:8 ~base:Isa.rax (), Isa.r10));
      i Isa.Ret;
    ]
  in
  let s = stats Rw.optimized items in
  Alcotest.(check int) "two trampolines" 2 s.trampolines

let test_hardened_function_pointers_preserved () =
  let open Minic.Build in
  let prog =
    Minic.Ast.program
      (Minic.Ast.func ~name:"main" [ print_ (call "vm" [ i 30 ]) ]
      :: Workloads.Kernels.interp_funcs "vm")
  in
  let bin = Minic.Codegen.compile prog in
  let base, _ = Redfat.run_baseline bin in
  List.iter
    (fun opts ->
      let hard = Redfat.harden ~opts bin in
      let hr = Redfat.run_hardened hard.binary in
      match hr.verdict with
      | Redfat.Finished 0 ->
        Alcotest.(check (list int)) "outputs equal" base.outputs
          hr.run.outputs
      | v -> Alcotest.failf "hardened: %s" (Redfat.verdict_to_string v))
    [ Rw.unoptimized; Rw.optimized ]

(* --- allow-list variants --------------------------------------------- *)

let test_allowlist_splits_variants () =
  let items = store_seq in
  let bin = assemble_binary items in
  let text = Binfmt.Relf.text_exn bin in
  let sites =
    List.filter_map
      (fun (a, instr, _) ->
        match Isa.mem_operand instr with Some _ -> Some a | None -> None)
      (Disasm.sweep ~addr:text.addr text.bytes)
  in
  (match sites with
   | first :: _ ->
     let r = Rw.rewrite (Rw.production ~allowlist:[ first ]) bin in
     Alcotest.(check int) "one full site" 1 r.stats.full_sites;
     Alcotest.(check int) "rest redzone" 2 r.stats.redzone_sites
   | [] -> Alcotest.fail "no sites found")

(* --- semantic preservation on instrumented binaries ------------------ *)

let run_hardened_outputs ?(opts = Rw.optimized) items inputs =
  let bin = assemble_binary items in
  let base, bv = Redfat.run_baseline ~inputs bin in
  (match bv with
   | Redfat.Finished _ -> ()
   | v -> Alcotest.failf "baseline: %s" (Redfat.verdict_to_string v));
  let hard = Redfat.harden ~opts bin in
  let hr = Redfat.run_hardened ~inputs hard.binary in
  (match hr.verdict with
   | Redfat.Finished _ -> ()
   | v -> Alcotest.failf "hardened: %s" (Redfat.verdict_to_string v));
  (base.outputs, hr.run.outputs)

let test_trap_patch_preserves_semantics () =
  (* program whose instrumentation needs the trap tactic *)
  let items =
    [
      i (Isa.Mov_ri (Isa.rdi, 64));
      i (Isa.Callrt Isa.Malloc);
      i (Isa.Mov_rr (Isa.rbx, Isa.rax));
      i (Isa.Mov_ri (Isa.r10, 77));
      (* 4-byte store immediately before a jump target: trap tactic *)
      i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rbx (), Isa.r10));
      Asm.Label "t";
      i (Isa.Load (Isa.W8, Isa.rdi, Isa.mem ~base:Isa.rbx ()));
      i (Isa.Callrt Isa.Print);
      i Isa.Ret;
      Asm.Jmp_l "t"; (* dead code, but makes "t" a leader *)
    ]
  in
  (* guard: this layout must actually exercise the trap tactic *)
  let bin = assemble_binary items in
  let r = Rw.rewrite Rw.optimized bin in
  Alcotest.(check bool) "uses a trap patch" true (r.stats.trap_patches >= 1);
  let hr = Redfat.run_hardened r.binary in
  match hr.verdict with
  | Redfat.Finished _ ->
    Alcotest.(check (list int)) "output preserved" [ 77 ] hr.run.outputs
  | v -> Alcotest.failf "hardened: %s" (Redfat.verdict_to_string v)

let test_preservation_all_levels () =
  let items =
    [
      i (Isa.Mov_ri (Isa.rdi, 128));
      i (Isa.Callrt Isa.Malloc);
      i (Isa.Mov_rr (Isa.rbx, Isa.rax));
      i (Isa.Mov_ri (Isa.rcx, 0));
      Asm.Label "loop";
      i (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rbx ~idx:Isa.rcx ~scale:8 (), Isa.rcx));
      i (Isa.Alu_ri (Isa.Add, Isa.rcx, 1));
      i (Isa.Cmp_ri (Isa.rcx, 16));
      Asm.Jcc_l (Isa.Lt, "loop");
      i (Isa.Load (Isa.W8, Isa.rdi, Isa.mem ~disp:120 ~base:Isa.rbx ()));
      i (Isa.Callrt Isa.Print);
      i Isa.Ret;
    ]
  in
  List.iter
    (fun opts ->
      let base, hard = run_hardened_outputs ~opts items [] in
      Alcotest.(check (list int)) "outputs equal" base hard)
    [ Rw.unoptimized; Rw.with_elim; Rw.with_batch; Rw.optimized ]

let test_stats_accounting () =
  let r = Rw.rewrite Rw.optimized (assemble_binary store_seq) in
  let s = r.stats in
  Alcotest.(check int) "mem ops" 3 s.mem_ops;
  Alcotest.(check int) "sites = full + redzone" s.instrumented
    (s.full_sites + s.redzone_sites);
  Alcotest.(check int) "patches = trampolines" s.trampolines
    (s.jump_patches + s.trap_patches);
  Alcotest.(check bool) "trampoline bytes recorded" true (s.tramp_bytes > 0)

let tests =
  [
    Alcotest.test_case "cfg leaders" `Quick test_cfg_leaders;
    Alcotest.test_case "eliminable operands" `Quick test_eliminable;
    Alcotest.test_case "clobbers: dead registers" `Quick
      test_clobbers_dead_registers;
    Alcotest.test_case "clobbers: live registers" `Quick
      test_clobbers_live_registers;
    Alcotest.test_case "clobbers: flags" `Quick test_clobbers_flags;
    Alcotest.test_case "batching groups a block" `Quick
      test_batching_groups_block;
    Alcotest.test_case "merging same operand" `Quick test_merging_same_operand;
    Alcotest.test_case "merge respects operand key" `Quick
      test_merge_respects_operand_key;
    Alcotest.test_case "merge through copies" `Quick test_merge_through_copies;
    Alcotest.test_case "batch broken by redefinition" `Quick
      test_batch_broken_by_redefinition;
    Alcotest.test_case "batch broken by branch" `Quick
      test_batch_broken_by_branch;
    Alcotest.test_case "batch broken by runtime call" `Quick
      test_batch_broken_by_rtcall;
    Alcotest.test_case "elimination counts" `Quick test_elimination_counts;
    Alcotest.test_case "read/write filters" `Quick test_reads_writes_filter;
    Alcotest.test_case "jump tactic" `Quick test_jump_tactic_on_long_instruction;
    Alcotest.test_case "eviction tactic" `Quick
      test_eviction_tactic_on_short_instruction;
    Alcotest.test_case "trap tactic when blocked" `Quick
      test_trap_tactic_when_blocked;
    Alcotest.test_case "traps round-trip" `Quick
      test_traps_roundtrip_through_binary;
    Alcotest.test_case "code-pointer constants are leaders" `Quick
      test_code_pointer_constants_are_leaders;
    Alcotest.test_case "indirect call breaks batch" `Quick
      test_indirect_call_breaks_batch;
    Alcotest.test_case "hardened function pointers preserved" `Quick
      test_hardened_function_pointers_preserved;
    Alcotest.test_case "allowlist splits variants" `Quick
      test_allowlist_splits_variants;
    Alcotest.test_case "trap patch preserves semantics" `Quick
      test_trap_patch_preserves_semantics;
    Alcotest.test_case "preservation at all levels" `Quick
      test_preservation_all_levels;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
  ]
