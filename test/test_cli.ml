(* CLI integration: drive the redfat executable end to end through
   temp files, checking exit codes and key output lines. *)

let cli = "../bin/redfat_cli.exe"

let available = Sys.file_exists cli

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let run_cli args =
  let out = tmp "redfat_cli_out.txt" in
  let cmd = Printf.sprintf "%s %s > %s 2>&1" cli args out in
  let code = Sys.command cmd in
  let ic = open_in out in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (code, contents)

let contains hay needle =
  let rec go i =
    i + String.length needle <= String.length hay
    && (String.sub hay i (String.length needle) = needle || go (i + 1))
  in
  go 0

let skip_unless_available () =
  if not available then
    Alcotest.skip ()

let test_full_workflow () =
  skip_unless_available ();
  let relf = tmp "cli_t.relf" in
  let hard = tmp "cli_t.hard.relf" in
  let allow = tmp "cli_t.allow.lst" in
  (* workload -> profile -> harden -> run *)
  let c, _ = run_cli (Printf.sprintf "workload spec:mcf -o %s" relf) in
  Alcotest.(check int) "workload" 0 c;
  let c, out = run_cli (Printf.sprintf "profile %s --inputs 0,4 -o %s" relf allow) in
  Alcotest.(check int) "profile" 0 c;
  Alcotest.(check bool) "allow-list written" true (contains out "allow-listed");
  let c, _ =
    run_cli (Printf.sprintf "harden %s --allowlist %s -o %s" relf allow hard)
  in
  Alcotest.(check int) "harden" 0 c;
  let c, out = run_cli (Printf.sprintf "run %s --inputs 1,18 --env redfat" hard) in
  Alcotest.(check int) "run" 0 c;
  Alcotest.(check bool) "finished" true (contains out "finished (exit 0)");
  Alcotest.(check bool) "coverage reported" true (contains out "coverage")

let test_compile_and_detect () =
  skip_unless_available ();
  let src = tmp "cli_v.mc" in
  let oc = open_out src in
  output_string oc
    "fn main() { var a = alloc(8); var b = alloc(8); b[0] = 7;\n\
     a[input()] = 1; print(b[0]); free(a); free(b); return 0; }\n";
  close_out oc;
  let relf = tmp "cli_v.relf" and hard = tmp "cli_v.hard.relf" in
  let c, _ = run_cli (Printf.sprintf "compile %s -o %s" src relf) in
  Alcotest.(check int) "compile" 0 c;
  let c, _ = run_cli (Printf.sprintf "harden %s -o %s" relf hard) in
  Alcotest.(check int) "harden" 0 c;
  let _, out = run_cli (Printf.sprintf "run %s --inputs 12 --env redfat" hard) in
  Alcotest.(check bool) "detected" true (contains out "DETECTED");
  Alcotest.(check bool) "explained" true (contains out "non-incremental")

let test_compile_error_position () =
  skip_unless_available ();
  let src = tmp "cli_bad.mc" in
  let oc = open_out src in
  output_string oc "fn main() {\n  print(1)\n}\n";
  close_out oc;
  let c, out = run_cli (Printf.sprintf "compile %s -o /dev/null" src) in
  Alcotest.(check bool) "nonzero exit" true (c <> 0);
  Alcotest.(check bool) "line number" true (contains out ":3:")

let test_double_harden_refused () =
  skip_unless_available ();
  let relf = tmp "cli_d.relf" and hard = tmp "cli_d.hard.relf" in
  let c, _ = run_cli (Printf.sprintf "workload cve:wireshark -o %s" relf) in
  Alcotest.(check int) "workload" 0 c;
  let c, _ = run_cli (Printf.sprintf "harden %s -o %s" relf hard) in
  Alcotest.(check int) "harden" 0 c;
  let c, out = run_cli (Printf.sprintf "harden %s -o /dev/null" hard) in
  Alcotest.(check bool) "refused" true (c <> 0);
  Alcotest.(check bool) "message" true (contains out "twice")

let test_disasm_and_trace () =
  skip_unless_available ();
  let relf = tmp "cli_t2.relf" in
  let c, _ = run_cli (Printf.sprintf "workload kraken:crypto-aes -o %s" relf) in
  Alcotest.(check int) "workload" 0 c;
  let c, out = run_cli (Printf.sprintf "disasm %s" relf) in
  Alcotest.(check int) "disasm" 0 c;
  Alcotest.(check bool) "shows movs" true (contains out "mov");
  let c, out = run_cli (Printf.sprintf "trace %s --inputs 2 --limit 10" relf) in
  Alcotest.(check int) "trace" 0 c;
  Alcotest.(check bool) "cycles shown" true (contains out "cycles=")

let test_fuzz_campaign () =
  skip_unless_available ();
  let report = tmp "cli_f.fuzz.json" in
  let c, out =
    run_cli
      (Printf.sprintf
         "fuzz bug:oob-write --budget 80 --seed 7 --expect-bugs 1 --out %s"
         report)
  in
  Alcotest.(check int) "exec campaign" 0 c;
  Alcotest.(check bool) "bug reported" true (contains out "BUG detect.");
  Alcotest.(check bool) "totals line" true (contains out "unique bug(s)");
  Alcotest.(check bool) "report written" true (Sys.file_exists report);
  (* an impossible bug floor exits 3 (campaigns ran, gate failed) *)
  let c, out =
    run_cli "fuzz bug:oob-write --budget 40 --seed 7 --expect-bugs 99"
  in
  Alcotest.(check int) "--expect-bugs gate" 3 c;
  Alcotest.(check bool) "gate explained" true (contains out "expected at least")

let test_fuzz_parse_mode () =
  skip_unless_available ();
  let c, out = run_cli "fuzz relf minic --mode parse --budget 60 --seed 5" in
  Alcotest.(check int) "parse campaigns" 0 c;
  Alcotest.(check bool) "typed rejections found" true (contains out "BUG parse.");
  (* an unknown parser name is a typed input fault, not a crash *)
  let c, out = run_cli "fuzz elf --mode parse --budget 10" in
  Alcotest.(check int) "unknown parser fails" 2 c;
  Alcotest.(check bool) "typed failure" true (contains out "FAILED")

let tests =
  [
    Alcotest.test_case "full workflow" `Slow test_full_workflow;
    Alcotest.test_case "compile and detect" `Quick test_compile_and_detect;
    Alcotest.test_case "compile error position" `Quick
      test_compile_error_position;
    Alcotest.test_case "double harden refused" `Quick
      test_double_harden_refused;
    Alcotest.test_case "disasm and trace" `Quick test_disasm_and_trace;
    Alcotest.test_case "fuzz campaign" `Quick test_fuzz_campaign;
    Alcotest.test_case "fuzz parse mode" `Quick test_fuzz_parse_mode;
  ]
