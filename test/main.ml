let () =
  Alcotest.run "redfat"
    [
      ("x64", Test_x64.tests);
      ("vm", Test_vm.tests);
      ("binfmt", Test_binfmt.tests);
      ("lowfat", Test_lowfat.tests);
      ("runtime", Test_runtime.tests);
      ("minic", Test_minic.tests);
      ("parser", Test_parser.tests);
      ("rewriter", Test_rewriter.tests);
      ("dataflow", Test_dataflow.tests);
      ("hoist", Test_hoist.tests);
      ("shard", Test_shard.tests);
      ("shared-objects", Test_shared_objects.tests);
      ("profile", Test_profile.tests);
      ("fuzzer", Test_fuzzer.tests);
      ("fuzz", Test_fuzz.tests);
      ("e9afl", Test_e9afl.tests);
      ("uaf", Test_uaf.tests);
      ("backend", Test_backend.tests);
      ("cli", Test_cli.tests);
      ("memcheck", Test_memcheck.tests);
      ("workloads", Test_workloads.tests);
      ("properties", Test_properties.tests);
      ("robustness", Test_robustness.tests);
      ("details", Test_details.tests);
      ("asm-properties", Test_asm_properties.tests);
      ("pipeline", Test_pipeline.tests);
      ("engine", Test_engine.tests);
      ("obs", Test_obs.tests);
      ("fault", Test_fault.tests);
      ("serve", Test_serve.tests);
    ]
