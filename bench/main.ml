(* The RedFat evaluation harness: regenerates every table and figure of
   the paper (EuroSys'22), plus the extension experiments.  Run with no
   argument for everything, or with one of:

     table1 table2 table2x fig1 fig2 fig3 fig4 fig5 fig67 fig8
     fps detected uaf stats sec74 ablation serve rebuild fuzz bechamel

   Flags (anywhere on the command line):

     --jobs N      fan independent workloads out over N domains
     --no-cache    disable the artifact cache (compiles/rewrites/
                   allow-lists; persisted in _redfat_cache/)
     --out F.json  write a structured report (per-target cycles and
                   overheads, per-check-kind counters, per-stage wall
                   time, cache hit/miss, jobs) to F.json
     --trace F     write the run's spans and counters as Chrome
                   trace-event JSON (Perfetto-loadable)

   rebuild-only flags:

     --benches CSV   restrict the rebuild fleet to these SPEC kernels
     --nights N      number of perturb-and-re-harden rounds (default 2)
     --min-reuse P   fail when any night reuses fewer than P permille
                     of the fleet's per-function artifacts (default 900)

   Output is byte-identical for any --jobs value (modulo fig8's
   measured wall-clock rewrite-time line and serve's throughput/
   latency lines): workers never print;
   results are collected in deterministic order, then rendered.
   See EXPERIMENTS.md for paper-vs-measured. *)

module Rt = Redfat_rt.Runtime
module Rw = Redfat.Rewrite
module Pl = Engine.Pipeline

let log_opts = { Rt.default_options with mode = Rt.Log }

let pf fmt = Printf.printf fmt

(* --- command line + the engine -------------------------------------- *)

let ( experiment,
      opt_jobs,
      opt_cache,
      opt_out,
      opt_trace,
      opt_benches,
      opt_nights,
      opt_min_reuse ) =
  let exp = ref None
  and jobs = ref 1
  and cache = ref true
  and out = ref None
  and trace = ref None
  and benches = ref None
  and nights = ref 2
  and min_reuse = ref 900 in
  let usage () =
    prerr_endline
      "usage: main.exe [experiment] [--jobs N] [--no-cache] [--out FILE] \
       [--trace FILE] [--benches CSV] [--nights N] [--min-reuse PERMILLE]";
    exit 1
  in
  let rec parse = function
    | [] -> ()
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> jobs := n
      | _ -> usage ());
      parse rest
    | "--no-cache" :: rest ->
      cache := false;
      parse rest
    | "--out" :: f :: rest ->
      out := Some f;
      parse rest
    | "--trace" :: f :: rest ->
      trace := Some f;
      parse rest
    | "--benches" :: csv :: rest ->
      benches := Some (String.split_on_char ',' csv);
      parse rest
    | "--nights" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> nights := n
      | _ -> usage ());
      parse rest
    | "--min-reuse" :: p :: rest ->
      (match int_of_string_opt p with
      | Some p when p >= 0 && p <= 1000 -> min_reuse := p
      | _ -> usage ());
      parse rest
    | x :: _ when String.length x > 0 && x.[0] = '-' -> usage ()
    | x :: rest when !exp = None ->
      exp := Some x;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* fail on an unwritable output path now, not after the whole run *)
  List.iter
    (fun (flag, r) ->
      match !r with
      | Some f -> (
        try Out_channel.with_open_text f (fun _ -> ())
        with Sys_error e ->
          prerr_endline (flag ^ ": " ^ e);
          exit 1)
      | None -> ())
    [ ("--out", out); ("--trace", trace) ];
  ( Option.value !exp ~default:"all",
    !jobs,
    !cache,
    !out,
    !trace,
    !benches,
    !nights,
    !min_reuse )

let eng =
  Pl.create ~jobs:opt_jobs ~cache:opt_cache
    ?cache_dir:(if opt_cache then Some "_redfat_cache" else None) ()

let wall () = Unix.gettimeofday ()

(* record one measured workload into the --out report *)
let target name ?cycles ?overheads ?counters t0 =
  Engine.Report.add_target (Pl.report eng) ~name ?cycles ?overheads ?counters
    ~wall:(wall () -. t0) ()

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
    exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float (List.length xs))

let hr title = pf "\n==== %s ====\n%!" title

(* ------------------------------------------------------------------ *)
(* Table 1: SPEC CPU2006 overhead of every RedFat configuration        *)
(* ------------------------------------------------------------------ *)

type t1row = {
  r_name : string;
  r_lang : Workloads.Spec.lang;
  r_cov : float;
  r_base : int;
  r_unopt : float;
  r_elim : float;
  r_batch : float;
  r_merge : float;
  r_nosize : float;
  r_hoist : float;
  r_noreads : float;
  r_memcheck : float;
}

let table1_row (b : Workloads.Spec.bench) : t1row =
  let t0 = wall () in
  let bin = Pl.compile eng (Workloads.Spec.program b) in
  let refs = Workloads.Spec.ref_inputs b in
  let base, bv = Pl.run_baseline eng ~inputs:refs bin in
  (match bv with
   | Redfat.Finished _ -> ()
   | v -> failwith (b.name ^ ": baseline " ^ Redfat.verdict_to_string v));
  (* allow-list from the train workload (paper §5 / §7.1 methodology) *)
  let allow =
    Pl.profile eng ~test_suite:[ Workloads.Spec.train_inputs b ] bin
  in
  let run ?(rt = log_opts) opts =
    let hard =
      Pl.harden eng ~opts:{ opts with Rw.allowlist = Some allow } bin
    in
    let hr = Pl.run_hardened eng ~options:rt ~inputs:refs hard.binary in
    (match hr.verdict with
     | Redfat.Finished _ -> ()
     | v -> failwith (b.name ^ ": " ^ Redfat.verdict_to_string v));
    hr
  in
  let unopt = run Rw.unoptimized in
  let elim = run Rw.with_elim in
  let batch = run Rw.with_batch in
  let merge = run Rw.optimized in
  let nosize = run ~rt:{ log_opts with size_harden = false } Rw.optimized in
  let hoist = run ~rt:{ log_opts with size_harden = false } Rw.with_hoist in
  let noreads =
    run
      ~rt:{ log_opts with size_harden = false; check_reads = false }
      { Rw.optimized with instrument_reads = false }
  in
  let mc, _, _ = Pl.run_memcheck eng ~inputs:refs bin in
  let ov (hrun : Redfat.hardened_run) =
    float_of_int hrun.run.cycles /. float_of_int base.cycles
  in
  let row =
    {
      r_name = b.name;
      r_lang = b.lang;
      r_cov = Rt.coverage_percent nosize.rt;
      r_base = base.cycles;
      r_unopt = ov unopt;
      r_elim = ov elim;
      r_batch = ov batch;
      r_merge = ov merge;
      r_nosize = ov nosize;
      r_hoist = ov hoist;
      r_noreads = ov noreads;
      r_memcheck = float_of_int mc.cycles /. float_of_int base.cycles;
    }
  in
  (* static counters of the fully optimized configuration (cache hit:
     the same harden ran for the "merge" column) *)
  let opt_stats =
    (Pl.harden eng ~opts:{ Rw.optimized with allowlist = Some allow } bin)
      .stats
  in
  (* static counters of the loop-hoisting configuration (cache hit:
     the same harden ran for the "+hoist" column) *)
  let hoist_stats =
    (Pl.harden eng ~opts:{ Rw.with_hoist with allowlist = Some allow } bin)
      .stats
  in
  (* static check counts under the non-default backends (harden only,
     no run): gated by tools/bench_diff per backend.* counter *)
  let backend_counters =
    List.concat_map
      (fun backend ->
        let st =
          (Pl.harden eng
             ~opts:{ Rw.optimized with allowlist = Some allow; backend }
             bin)
            .stats
        in
        [ ( "backend." ^ Backend.Check_backend.name backend
            ^ ".checks_emitted",
            st.Rw.checks_emitted ) ])
      [ Backend.Check_backend.Redzone; Backend.Check_backend.Temporal ]
  in
  target ("spec:" ^ b.name) ~cycles:base.cycles
    ~overheads:
      [ ("unopt", row.r_unopt); ("elim", row.r_elim);
        ("batch", row.r_batch); ("merge", row.r_merge);
        ("nosize", row.r_nosize); ("hoist", row.r_hoist);
        ("noreads", row.r_noreads); ("memcheck", row.r_memcheck) ]
    ~counters:
      ([ ("checks_emitted", opt_stats.Rw.checks_emitted);
         ("eliminated_global", opt_stats.Rw.eliminated_global);
         ("zero_save_sites", opt_stats.Rw.zero_save_sites);
         ("hoisted_checks", hoist_stats.Rw.hoisted_checks);
         ("widened_span_bytes", hoist_stats.Rw.widened_span_bytes);
         ("hoist.checks_emitted", hoist_stats.Rw.checks_emitted) ]
      @ opt_stats.Rw.checks_by_kind @ backend_counters)
    t0;
  row

let table1 () =
  hr "Table 1: SPEC CPU2006 performance (slow-down factors vs baseline)";
  pf "%-11s %-7s %8s %9s %7s %7s %7s %7s %7s %7s %7s %9s\n" "Binary" "lang"
    "coverage" "Baseline" "unopt" "+elim" "+batch" "+merge" "-size" "+hoist"
    "-reads" "Memcheck";
  let rows = Pl.map eng table1_row Workloads.Spec.all in
  List.iter
    (fun r ->
      pf
        "%-11s %-7s %7.1f%% %9d %6.2fx %6.2fx %6.2fx %6.2fx %6.2fx %6.2fx %6.2fx %8.2fx\n%!"
        r.r_name
        (Workloads.Spec.lang_name r.r_lang)
        r.r_cov r.r_base r.r_unopt r.r_elim r.r_batch r.r_merge r.r_nosize
        r.r_hoist r.r_noreads r.r_memcheck)
    rows;
  let g f = geomean (List.map f rows) in
  pf
    "%-11s %-7s %7.1f%% %9.0f %6.2fx %6.2fx %6.2fx %6.2fx %6.2fx %6.2fx %6.2fx %8.2fx\n"
    "geo-mean" ""
    (geomean (List.map (fun r -> r.r_cov) rows))
    (geomean (List.map (fun r -> float_of_int r.r_base) rows))
    (g (fun r -> r.r_unopt))
    (g (fun r -> r.r_elim))
    (g (fun r -> r.r_batch))
    (g (fun r -> r.r_merge))
    (g (fun r -> r.r_nosize))
    (g (fun r -> r.r_hoist))
    (g (fun r -> r.r_noreads))
    (g (fun r -> r.r_memcheck));
  pf "(paper geo-means: coverage 72.6%%, unopt 6.78x, +elim 5.50x, +batch 5.06x,\n";
  pf " +merge 4.18x, -size 3.81x, -reads 1.55x, Memcheck 11.76x;\n";
  pf " +hoist is this artifact's loop hoisting on top of -size)\n"

(* ------------------------------------------------------------------ *)
(* Table 2: non-incremental overflows (CVEs + Juliet CWE-122)          *)
(* ------------------------------------------------------------------ *)

let table2 () =
  hr "Table 2: CVEs/CWEs for non-incremental bounds errors";
  pf "%-34s %-14s %-14s\n" "entry" "Memcheck" "RedFat";
  let cve_rows =
    Pl.map eng
      (fun (c : Workloads.Cve.case) ->
        let t0 = wall () in
        let bin = Pl.compile eng c.program in
        let hard = Pl.harden eng bin in
        let benign =
          Pl.run_hardened eng hard.binary ~inputs:c.benign_inputs
        in
        (match benign.verdict with
         | Redfat.Finished _ -> ()
         | v -> failwith (c.name ^ " benign: " ^ Redfat.verdict_to_string v));
        let attack =
          Pl.run_hardened eng hard.binary ~inputs:c.attack_inputs
        in
        let rf = match attack.verdict with Redfat.Detected _ -> 1 | _ -> 0 in
        let _, _, mc = Pl.run_memcheck eng bin ~inputs:c.attack_inputs in
        let mcd = if Baselines.Memcheck.errors mc <> [] then 1 else 0 in
        target ("cve:" ^ c.name) t0;
        (c, mcd, rf))
      Workloads.Cve.all
  in
  List.iter
    (fun ((c : Workloads.Cve.case), mcd, rf) ->
      pf "%-34s %d/1 (%3d%%)     %d/1 (%3d%%)\n%!"
        (Printf.sprintf "%s (%s)" c.cve c.name)
        mcd (mcd * 100) rf (rf * 100))
    cve_rows;
  let total = List.length Workloads.Juliet.all in
  let juliet =
    Pl.map eng
      (fun (c : Workloads.Juliet.case) ->
        let bin = Pl.compile eng c.program in
        let hard = Pl.harden eng bin in
        let attack =
          Pl.run_hardened eng hard.binary ~inputs:c.attack_inputs
        in
        let rf =
          match attack.verdict with Redfat.Detected _ -> true | _ -> false
        in
        let _, _, mc = Pl.run_memcheck eng bin ~inputs:c.attack_inputs in
        (rf, Baselines.Memcheck.errors mc <> []))
      Workloads.Juliet.all
  in
  let rf_det = ref 0 and mc_det = ref 0 in
  List.iter
    (fun (rf, mc) ->
      if rf then incr rf_det;
      if mc then incr mc_det)
    juliet;
  pf "%-34s %d/%d (%3.0f%%)   %d/%d (%3.0f%%)\n"
    "CWE-122-Heap-Buffer (Juliet)" !mc_det total
    (100. *. float_of_int !mc_det /. float_of_int total)
    !rf_det total
    (100. *. float_of_int !rf_det /. float_of_int total);
  pf "(paper: Memcheck 0%% everywhere, RedFat 100%% everywhere)\n"

(* ------------------------------------------------------------------ *)
(* Table 2x (extension): backend x attack-class detection matrix       *)
(* ------------------------------------------------------------------ *)

(* one case = (program, benign inputs if any, attack inputs); classify
   its attack run under one backend as a typed detection, an allocator
   abort (stopped, but not classified), or a miss *)
let t2x_classify hard_binary ~benign ~attack =
  (match benign with
  | None -> ()
  | Some inputs -> (
    let b = Pl.run_hardened eng ~inputs hard_binary in
    match b.Redfat.verdict with
    | Redfat.Finished _ -> ()
    | v -> failwith ("table2x benign run: " ^ Redfat.verdict_to_string v)));
  let a = Pl.run_hardened eng ~inputs:attack hard_binary in
  match a.Redfat.verdict with
  | Redfat.Detected _ -> `Det
  | Redfat.Fault _ -> `Abort
  | Redfat.Finished _ -> `Miss

let table2x () =
  hr "Table 2x (extension): detection per check backend";
  let backends = Backend.Check_backend.all in
  let row name cases =
    let results =
      Pl.map eng
        (fun (prog, benign, attack) ->
          let bin = Pl.compile eng prog in
          let _, _, m = Pl.run_memcheck eng ~inputs:attack bin in
          let mc = Baselines.Memcheck.errors m <> [] in
          let per_backend =
            List.map
              (fun backend ->
                let hard =
                  Pl.harden eng ~opts:{ Rw.optimized with Rw.backend } bin
                in
                t2x_classify hard.Rw.binary ~benign ~attack)
              backends
          in
          (mc, per_backend))
        cases
    in
    let total = List.length cases in
    let mc = List.length (List.filter fst results) in
    pf "%-26s %9s" name (Printf.sprintf "%d/%d" mc total);
    List.iteri
      (fun bi _ ->
        let of_kind k =
          List.length
            (List.filter (fun (_, pb) -> List.nth pb bi = k) results)
        in
        let det = of_kind `Det and ab = of_kind `Abort in
        pf " %9s"
          (if ab > 0 then Printf.sprintf "%d/%d+%d!" det total ab
           else Printf.sprintf "%d/%d" det total))
      backends;
    pf "\n%!"
  in
  pf "%-26s %9s" "attack class" "Memcheck";
  List.iter (fun b -> pf " %9s" (Backend.Check_backend.name b)) backends;
  pf "\n";
  row "CVE overflows"
    (List.map
       (fun (c : Workloads.Cve.case) ->
         (c.program, Some c.benign_inputs, c.attack_inputs))
       Workloads.Cve.all);
  row "CWE-122 heap overflow"
    (List.map
       (fun (c : Workloads.Juliet.case) ->
         (c.program, Some c.benign_inputs, c.attack_inputs))
       Workloads.Juliet.all);
  row "CWE-416 use-after-free"
    (List.map
       (fun (c : Workloads.Uaf.case) ->
         ( c.program,
           Some Workloads.Uaf.benign_inputs,
           Workloads.Uaf.attack_inputs ))
       Workloads.Uaf.all);
  row "reuse-after-free" [ (Workloads.Uaf.reuse_case, None, []) ];
  row "double free" [ (Workloads.Uaf.double_free_case, Some [ 0 ], [ 1 ]) ];
  (* seeded-bug classes surfaced by the fuzzing fleet (redfat fuzz) *)
  let fuzz_case id =
    let c = Workloads.Fuzzbugs.find id in
    (c.program, Some c.benign, c.attack)
  in
  row "CWE-125 OOB read (fuzz)" [ fuzz_case "oob-read" ];
  row "off-by-one write (fuzz)" [ fuzz_case "off-by-one" ];
  pf "(n/m+k!: k attack run(s) stopped by an allocator abort rather than a\n";
  pf " classified detection.  The spatial backends miss reuse-after-free —\n";
  pf " the slot is live again — and only abort on double free; the temporal\n";
  pf " lock-and-key backend classifies both.  Spatial bounds under temporal\n";
  pf " are slot-granular, so redzone-width overflows inside the slot are\n";
  pf " traded for the temporal coverage.)\n"

(* ------------------------------------------------------------------ *)
(* Figure 1: the CVE-2012-4295 walkthrough                             *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  hr "Figure 1: CVE-2012-4295 (wireshark) walkthrough";
  let c = Workloads.Cve.wireshark in
  let bin = Pl.compile eng c.program in
  pf "model: %s\n" c.description;
  let base, _ = Pl.run_baseline eng ~inputs:c.benign_inputs bin in
  pf "benign run (speed=%d): outputs %s\n"
    (List.nth c.benign_inputs 1)
    (String.concat "," (List.map string_of_int base.outputs));
  let hard = Pl.harden eng bin in
  let attack = Pl.run_hardened eng hard.binary ~inputs:c.attack_inputs in
  pf "attack run (speed=%d) under RedFat: %s\n"
    (List.nth c.attack_inputs 1)
    (Redfat.verdict_to_string attack.verdict);
  let _, _, mc = Pl.run_memcheck eng bin ~inputs:c.attack_inputs in
  pf "attack run under Memcheck: %d errors reported (redzone skipped)\n"
    (List.length (Baselines.Memcheck.errors mc))

(* ------------------------------------------------------------------ *)
(* Figure 2: the low-fat allocator memory layout                       *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  hr "Figure 2: low-fat allocator memory layout";
  let open Lowfat.Layout in
  pf "region size: %d GiB; %d low-fat size classes\n" (region_size lsr 30)
    num_classes;
  pf "%-8s %-30s %-10s\n" "region" "range" "class size";
  let show i =
    let sz = sizes_table.(i) in
    pf "#%-7d [%#14x, %#14x)  %s\n" i (region_start i) (region_end i)
      (if sz = max_int then "non-fat" else string_of_int sz)
  in
  List.iter show [ 0; 1; 2; 3; 4 ];
  pf "   ...\n";
  List.iter show
    [ num_classes - 1; num_classes; legacy_heap_region; stack_region ];
  let violations = ref 0 in
  for k = 1 to 20000 do
    let ptr = heap_lo + (k * 2654435761 land ((1 lsl 41) - 1)) in
    if is_fat ptr then begin
      let b = base ptr and s = size ptr in
      if not (b <= ptr && ptr < b + s && b mod s = 0) then incr violations
    end
  done;
  pf "base/size invariants over 20k random pointers: %d violations\n"
    !violations

(* ------------------------------------------------------------------ *)
(* Figure 3: object layout (metadata inside the redzone)               *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  hr "Figure 3: redzone/metadata object layout";
  let mem = Vm.Mem.create () in
  let rt = Rt.create mem in
  let p = Rt.malloc rt 40 in
  let b = Lowfat.Layout.base p in
  pf "malloc(40) returned %#x\n" p;
  pf "object base (via low-fat base(ptr)):   %#x\n" b;
  pf "slot size  (via low-fat size(ptr)):    %d\n" (Lowfat.Layout.size p);
  pf "metadata word at base (= malloc size): %d\n"
    (Vm.Mem.read mem ~addr:b ~len:8);
  pf "redzone: [%#x, %#x)  object: [%#x, %#x)  padding: %d bytes\n" b (b + 16)
    p (p + 40)
    (Lowfat.Layout.size p - 16 - 40);
  Rt.free rt p;
  pf "after free, metadata word: %d (0 = Free; UaF folds into bounds check)\n"
    (Vm.Mem.read mem ~addr:b ~len:8)

(* ------------------------------------------------------------------ *)
(* Figure 4: check schema cost breakdown                               *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  hr "Figure 4: instrumentation check, micro-op cost per variant";
  let open Rt.Cost in
  pf "step (1) access range:        %d\n" access_range;
  pf "step (2) low-fat base:        %d (+%d null test)\n" lowfat_base null_test;
  pf "step (3) metadata load:       %d\n" metadata_load;
  pf "step (4) size hardening:      %d (optional, -size removes)\n" size_harden;
  pf "step (4) bounds, merged UB:   %d (vs %d branchy; paper §4.2)\n"
    bounds_merged bounds_branchy;
  pf "scratch save/restore:         %d per register, %d for flags\n" per_save
    flags_save;
  let full =
    access_range + lowfat_base + null_test + metadata_load + size_harden
    + bounds_merged
  in
  pf "full (Redzone)+(LowFat) check, no saves: %d micro-ops\n" full;
  pf "fallback path (non-fat ptr) adds:        %d\n" (lowfat_base + null_test);
  pf "conservative trampoline adds:            %d (3 saves + flags)\n"
    ((3 * per_save) + flags_save)

(* ------------------------------------------------------------------ *)
(* Figure 5: the two-phase profiling workflow                          *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  hr "Figure 5: profile-based false positive elimination workflow";
  let open Minic.Build in
  let prog =
    Minic.Ast.program
      [
        Minic.Ast.func ~name:"main"
          [
            let_ "a" (alloc_elems (i 32));
            for_ "j" (i 0) (i 32) [ set (v "a") (v "j") (v "j") ];
            (* anti-idiom: (a - 4*8)[j + 4], always-OOB base pointer *)
            for_ "j" (i 0) (i 8)
              [ Minic.Ast.Store (E8, v "a" -: i 32, v "j" +: i 4, v "j") ];
            let_ "s" (i 0);
            for_ "j" (i 0) (i 32) [ assign "s" (v "s" +: idx (v "a") (v "j")) ];
            print_ (v "s");
            return_ (i 0);
          ];
      ]
  in
  let bin = Pl.compile eng prog in
  pf "step (1) profiling phase: instrument prog.orig, run the test suite\n";
  let prof = Pl.harden eng ~opts:Rw.profiling_build bin in
  let hrun =
    Pl.run_hardened eng ~options:log_opts ~profiling:true prof.binary
  in
  let allow = Rt.allowlist hrun.rt in
  let failing = Rt.lowfat_failing_sites hrun.rt in
  pf "  allow.lst: %d sites pass (LowFat); %d sites fail -> excluded: %s\n"
    (List.length allow) (List.length failing)
    (String.concat ", " (List.map (Printf.sprintf "%#x") failing));
  pf "step (2) production phase: rewrite with the allow-list\n";
  let hard = Pl.harden eng ~opts:(Rw.production ~allowlist:allow) bin in
  pf "  %d sites get (Redzone)+(LowFat), %d get (Redzone)-only\n"
    hard.stats.full_sites hard.stats.redzone_sites;
  let prod = Pl.run_hardened eng hard.binary in
  pf "  production run: %s (no false positive)\n"
    (Redfat.verdict_to_string prod.verdict)

(* ------------------------------------------------------------------ *)
(* Figures 6-7: batching and merging trampoline economics              *)
(* ------------------------------------------------------------------ *)

(* the exact instruction sequence of paper Example 2, as a binary *)
let example2_binary () : Binfmt.Relf.t =
  let open X64 in
  let items =
    [
      (* rax = malloc(64), rbx = malloc(64) *)
      Asm.I (Isa.Mov_ri (Isa.rdi, 64));
      Asm.I (Isa.Callrt Isa.Malloc);
      Asm.I (Isa.Mov_rr (Isa.r14, Isa.rax));
      Asm.I (Isa.Mov_ri (Isa.rdi, 64));
      Asm.I (Isa.Callrt Isa.Malloc);
      Asm.I (Isa.Mov_rr (Isa.rbx, Isa.rax));
      Asm.I (Isa.Mov_rr (Isa.rax, Isa.r14));
      Asm.I (Isa.Mov_ri (Isa.r10, 1));
      Asm.I (Isa.Mov_ri (Isa.r8, 2));
      (* .Linstruction1-4 of Example 2 *)
      Asm.I (Isa.Store (Isa.W8, Isa.mem ~disp:8 ~base:Isa.rbx (), Isa.r10));
      Asm.I (Isa.Store (Isa.W8, Isa.mem ~base:Isa.rax (), Isa.r8));
      Asm.I (Isa.Store_i (Isa.W8, Isa.mem ~disp:8 ~base:Isa.rax (), 0));
      Asm.I (Isa.Store_i (Isa.W8, Isa.mem ~disp:16 ~base:Isa.rax (), 0));
      Asm.I Isa.Ret;
    ]
  in
  let code, _ = Asm.assemble ~origin:Lowfat.Layout.code_base items in
  {
    Binfmt.Relf.entry = Lowfat.Layout.code_base;
    pic = false;
    stripped = true;
    sections =
      [
        Binfmt.Relf.section ~executable:true ~name:".text"
          ~addr:Lowfat.Layout.code_base code;
      ];
  }

let fig67 () =
  hr "Figures 6-7: check batching and merging (paper Example 2)";
  let bin = example2_binary () in
  let show name opts =
    let r = Pl.harden eng ~opts bin in
    pf
      "%-12s trampolines=%d checks=%d jump-patches=%d (total jumps %d) traps=%d\n%!"
      name r.stats.trampolines r.stats.checks_emitted r.stats.jump_patches
      (r.stats.jump_patches * 2)
      r.stats.trap_patches;
    let hrun = Pl.run_hardened eng r.binary in
    (match hrun.verdict with
     | Redfat.Finished _ -> ()
     | v -> pf "  unexpected: %s\n" (Redfat.verdict_to_string v))
  in
  show "(b) naive" Rw.unoptimized;
  show "(c) batched" Rw.with_batch;
  show "(d) merged" Rw.optimized;
  pf "(paper: naive = 4 trampolines / 8 jumps; batched = 1 trampoline / 2\n";
  pf " jumps; merged folds the three rax-based checks into one)\n"

(* ------------------------------------------------------------------ *)
(* Figure 8 + §7.3: Kraken under write-hardened Chrome, scalability    *)
(* ------------------------------------------------------------------ *)

let chrome_opts = { Rw.optimized with instrument_reads = false }
let chrome_rt = { log_opts with size_harden = false; check_reads = false }

let fig8 () =
  hr "Figure 8: Kraken benchmarks under write-only hardening";
  pf "%-26s %9s %9s %9s\n" "benchmark" "baseline" "hardened" "overhead";
  let rows =
    Pl.map eng
      (fun (b : Workloads.Kraken.bench) ->
        let t0 = wall () in
        let bin = Pl.compile eng (Workloads.Kraken.program b) in
        let inputs = Workloads.Kraken.inputs b in
        let base, _ = Pl.run_baseline eng ~inputs bin in
        let hard = Pl.harden eng ~opts:chrome_opts bin in
        let hrun =
          Pl.run_hardened eng ~options:chrome_rt ~inputs hard.binary
        in
        (match hrun.verdict with
         | Redfat.Finished _ -> ()
         | v -> failwith (b.name ^ ": " ^ Redfat.verdict_to_string v));
        let ov = float_of_int hrun.run.cycles /. float_of_int base.cycles in
        target ("kraken:" ^ b.name) ~cycles:base.cycles
          ~overheads:[ ("write-only", ov) ] t0;
        (b.name, base.cycles, hrun.run.cycles, ov))
      Workloads.Kraken.all
  in
  List.iter
    (fun (name, base, hardc, ov) ->
      pf "%-26s %9d %9d %8.0f%%\n%!" name base hardc (100. *. ov))
    rows;
  let ovs = List.map (fun (_, _, _, ov) -> ov) rows in
  pf "%-26s %9s %9s %8.0f%%\n" "geometric mean" "" "" (100. *. geomean ovs);
  pf "(paper geometric mean: 128%%)\n";
  hr "Section 7.3 scalability: the Chrome-scale binary";
  let bin = Pl.compile eng (Workloads.Chrome.program ()) in
  pf "input binary: %d bytes of code, %d instructions\n"
    (Binfmt.Relf.code_size bin)
    (List.length
       (X64.Disasm.sweep
          ~addr:(Binfmt.Relf.text_exn bin).addr
          (Binfmt.Relf.text_exn bin).bytes));
  let t0 = wall () in
  let hard = Pl.harden eng ~opts:chrome_opts bin in
  let dt = wall () -. t0 in
  pf "rewrite time: %.2fs%s\n" dt
    (if Pl.cache_enabled eng then " (artifact-cached on warm runs)" else "");
  Format.printf "%a@." Rw.pp_stats hard.stats;
  List.iter
    (fun (name, inputs) ->
      let base, _ = Pl.run_baseline eng ~inputs bin in
      let hrun =
        Pl.run_hardened eng ~options:chrome_rt ~inputs hard.binary
      in
      pf "workload %-8s: %s, overhead %.2fx\n" name
        (Redfat.verdict_to_string hrun.verdict)
        (float_of_int hrun.run.cycles /. float_of_int base.cycles))
    Workloads.Chrome.workloads

(* ------------------------------------------------------------------ *)
(* §7.1 false positives and detected errors                            *)
(* ------------------------------------------------------------------ *)

let paper_fps =
  [ ("perlbench", 1); ("gcc", 14); ("gobmk", 1); ("povray", 1); ("bwaves", 5);
    ("gromacs", 3); ("GemsFDTD", 32); ("wrf", 26); ("calculix", 2) ]

let fp_and_bug_sites (b : Workloads.Spec.bench) =
  let bin = Pl.compile eng (Workloads.Spec.program b) in
  let refs = Workloads.Spec.ref_inputs b in
  let prof = Pl.harden eng ~opts:Rw.profiling_build bin in
  let fpr =
    Pl.run_hardened eng ~options:log_opts ~profiling:true ~inputs:refs
      prof.binary
  in
  let lf_fail = Rt.lowfat_failing_sites fpr.rt in
  (* sites that also fail redzone-only checking are real bugs, not FPs *)
  let rz =
    Pl.run_hardened eng
      ~options:{ log_opts with lowfat = false }
      ~inputs:refs prof.binary
  in
  let bugs =
    List.map (fun (e : Rt.access_error) -> e.site) (Rt.errors rz.rt)
    |> List.sort_uniq compare
  in
  let fps = List.filter (fun s -> not (List.mem s bugs)) lf_fail in
  (fps, bugs, Rt.errors rz.rt)

let fps () =
  hr "Sec 7.1 false positives with full checking (no allow-list)";
  pf "%-12s %12s %12s\n" "benchmark" "measured FPs" "paper FPs";
  let rows =
    Pl.map eng
      (fun (b : Workloads.Spec.bench) ->
        let fp_sites, _, _ = fp_and_bug_sites b in
        (b.name, List.length fp_sites))
      Workloads.Spec.all
  in
  List.iter
    (fun (name, measured) ->
      let paper = Option.value ~default:0 (List.assoc_opt name paper_fps) in
      if measured > 0 || paper > 0 then
        pf "%-12s %12d %12d\n%!" name measured paper)
    rows

let detected () =
  hr "Sec 7.1 detected (real) errors in the SPEC stand-ins";
  let rows =
    Pl.map eng
      (fun name ->
        let b = Workloads.Spec.find name in
        let _, bugs, errors = fp_and_bug_sites b in
        (b.name, bugs, errors))
      [ "calculix"; "wrf" ]
  in
  List.iter
    (fun (name, bugs, errors) ->
      pf "%s: %d real out-of-bounds read error(s)\n" name (List.length bugs);
      List.iter
        (fun (e : Rt.access_error) ->
          if List.mem e.site bugs then
            pf "  site %#x: %s at %#x\n" e.site (Rt.kind_name e.kind) e.addr)
        errors)
    rows;
  pf "(paper: calculix has 4 array[-1] read underflows, wrf 1 read overflow;\n";
  pf " both are detected by RedFat and Memcheck)\n"

(* ------------------------------------------------------------------ *)
(* Static rewriting statistics across the suite (§7.3 flavour)          *)
(* ------------------------------------------------------------------ *)

let stats () =
  hr "Static rewriting statistics (full instrumentation, all SPEC binaries)";
  pf "%-11s %7s %7s %7s %6s %7s %6s %6s %6s %6s %9s\n" "binary" "instrs"
    "memops" "elim" "gelim" "sites" "zsave" "tramps" "evict" "traps"
    "size-ovh";
  let tot = ref (0, 0, 0, 0) in
  let rows =
    Pl.map eng
      (fun (b : Workloads.Spec.bench) ->
        let bin = Pl.compile eng (Workloads.Spec.program b) in
        let r = Pl.harden eng bin in
        (b.name, r.stats))
      Workloads.Spec.all
  in
  List.iter
    (fun (name, (s : Rw.stats)) ->
      let ovh =
        float_of_int (s.text_bytes + s.tramp_bytes)
        /. float_of_int s.text_bytes
      in
      let a, bb, c, d = !tot in
      tot := (a + s.instrumented, bb + s.jump_patches, c + s.trap_patches,
              d + s.evictions);
      pf "%-11s %7d %7d %7d %6d %7d %6d %6d %6d %6d %8.2fx\n" name
        s.instrs_total s.mem_ops s.eliminated s.eliminated_global
        s.instrumented s.zero_save_sites s.trampolines s.evictions
        s.trap_patches ovh)
    rows;
  let sites, jumps, traps, evict = !tot in
  pf "totals: %d sites instrumented; %d jump patches (%d via eviction), %d\n"
    sites jumps evict traps;
  pf "trap-table fallbacks (%.1f%% of patches)\n"
    (100. *. float_of_int traps /. float_of_int (jumps + traps))

(* ------------------------------------------------------------------ *)
(* Extension: CWE-416 use-after-free suite                              *)
(* ------------------------------------------------------------------ *)

let uaf () =
  hr "Extension: CWE-416 use-after-free (beyond the paper's Table 2)";
  let total = List.length Workloads.Uaf.all in
  let results =
    Pl.map eng
      (fun (c : Workloads.Uaf.case) ->
        let bin = Pl.compile eng c.program in
        let hard = Pl.harden eng bin in
        let b =
          Pl.run_hardened eng ~inputs:Workloads.Uaf.benign_inputs hard.binary
        in
        let benign_ok =
          match b.verdict with Redfat.Finished 0 -> true | _ -> false
        in
        let a =
          Pl.run_hardened eng ~inputs:Workloads.Uaf.attack_inputs hard.binary
        in
        let rf =
          match a.verdict with Redfat.Detected _ -> true | _ -> false
        in
        let _, _, m =
          Pl.run_memcheck eng ~inputs:Workloads.Uaf.attack_inputs bin
        in
        (benign_ok, rf, Baselines.Memcheck.errors m <> []))
      Workloads.Uaf.all
  in
  let rf = ref 0 and mc = ref 0 and benign_bad = ref 0 in
  List.iter
    (fun (benign_ok, rfd, mcd) ->
      if not benign_ok then incr benign_bad;
      if rfd then incr rf;
      if mcd then incr mc)
    results;
  pf "%-34s %d/%d detected (Memcheck: %d/%d); %d benign failures\n"
    "CWE-416-Use-After-Free" !rf total !mc total !benign_bad;
  (* the slot-reuse case: spatial state word vs lock-and-key *)
  let bin = Pl.compile eng Workloads.Uaf.reuse_case in
  let hard = Pl.harden eng bin in
  let r = Pl.run_hardened eng hard.binary in
  let hard_t =
    Pl.harden eng
      ~opts:{ Rw.optimized with Rw.backend = Backend.Check_backend.Temporal }
      bin
  in
  let rt = Pl.run_hardened eng hard_t.binary in
  let _, _, m = Pl.run_memcheck eng bin in
  let show v missed =
    match v with Redfat.Detected _ -> "detected" | _ -> missed
  in
  pf "slot-reuse case:   spatial %s; temporal %s; Memcheck %s\n"
    (show r.verdict "missed (slot reused, state word live again)")
    (show rt.verdict "MISSED")
    (if Baselines.Memcheck.errors m <> [] then "detected" else "missed");
  pf "(the spatial backends' zeroed state word cannot survive slot reuse;\n";
  pf " the temporal backend's stale key can — `table2x` has the full\n";
  pf " backend-by-attack matrix, with Memcheck kept as the comparator)\n"

(* ------------------------------------------------------------------ *)
(* §7.4: shared objects and separate instrumentation                    *)
(* ------------------------------------------------------------------ *)

let sec74 () =
  hr "Section 7.4: separate instrumentation of executable and library";
  let lib_origin = Lowfat.Layout.code_base + 0x10_0000 in
  let lib_tramp = Lowfat.Layout.trampoline_base + 0x100_0000 in
  let open Minic.Build in
  let lib_bin, lib_syms =
    Minic.Codegen.compile_with_symbols ~origin:lib_origin ~shared:true
      (Minic.Ast.program
         [
           Minic.Ast.func ~name:"decode" ~params:[ "buf"; "idx" ]
             [ Minic.Ast.Store (E8, v "buf", v "idx", i 0x41); return_ (i 1) ];
         ])
  in
  let main_bin =
    Minic.Codegen.compile ~externs:lib_syms
      (Minic.Ast.program
         [
           Minic.Ast.func ~name:"main"
             [
               let_ "buf" (alloc_elems (i 8));
               let_ "post" (alloc_elems (i 8));
               expr (call "decode" [ v "buf"; Minic.Ast.Input ]);
               print_ (idx (v "post") (i 0));
               return_ (i 0);
             ];
         ])
  in
  let attack = [ 12 ] in
  let show name main lib =
    let hrun = Redfat.run_hardened ~libs:[ lib ] ~inputs:attack main in
    pf "%-44s %s\n" name (Redfat.verdict_to_string hrun.verdict)
  in
  let hard_main = (Pl.harden eng main_bin).binary in
  let hard_lib =
    (Pl.harden eng ~tramp_base:lib_tramp ~opts:Rw.optimized lib_bin).binary
  in
  pf "attack input writes buf[12] inside libdecoder.so's decode():\n";
  show "neither module instrumented" main_bin lib_bin;
  show "main instrumented, library NOT" hard_main lib_bin;
  show "main AND library instrumented" hard_main hard_lib;
  pf "(as in the paper: only explicitly instrumented modules are protected;\n";
  pf " shared objects are instrumented separately, with their own trampolines)\n"

(* ------------------------------------------------------------------ *)
(* Ablations of the design decisions DESIGN.md calls out               *)
(* ------------------------------------------------------------------ *)

let ablation () =
  hr "Ablations (design decisions of sections 3-4)";
  let benches = [ "mcf"; "milc"; "povray" ] in
  pf "%-10s %9s | %-28s %-22s %-22s\n" "bench" "baseline"
    "state(): lowfat-meta vs shadow" "merged-UB vs branchy"
    "randomized heap";
  List.iter
    (fun name ->
      let b = Workloads.Spec.find name in
      let bin = Pl.compile eng (Workloads.Spec.program b) in
      let refs = Workloads.Spec.ref_inputs b in
      let base, _ = Pl.run_baseline eng ~inputs:refs bin in
      let hard = Pl.harden eng bin in
      let cyc ?random rt =
        let hrun = Pl.run_hardened eng ~options:rt ?random ~inputs:refs hard.binary in
        (match hrun.verdict with
         | Redfat.Finished _ -> ()
         | v -> failwith (Redfat.verdict_to_string v));
        (float_of_int hrun.run.cycles /. float_of_int base.cycles, hrun)
      in
      let meta, _ = cyc log_opts in
      let shadow_ov, shr =
        cyc { log_opts with state_impl = Rt.Asan_shadow }
      in
      let merged, _ = cyc log_opts in
      let branchy, _ = cyc { log_opts with merged_ub = false } in
      let plain, _ = cyc log_opts in
      let rand, _ = cyc ~random:1337 log_opts in
      pf "%-10s %9d | meta %.2fx shadow %.2fx (%dKiB) | %.2fx vs %.2fx | %.2fx vs %.2fx\n%!"
        name base.cycles meta shadow_ov
        (shr.rt.shadow.shadow_bytes / 1024)
        merged branchy plain rand)
    benches;
  pf "(lowfat-meta shares base(ptr) with the LowFat check and needs no\n";
  pf " shadow map; merged-UB saves a branch per check; randomization is\n";
  pf " within noise of the deterministic allocator.)\n"

(* ------------------------------------------------------------------ *)
(* Bechamel wall-time micro-benchmarks (one Test.make per experiment)  *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  hr "Bechamel wall-time benchmarks (one test per table/figure)";
  let open Bechamel in
  let open Toolkit in
  let spec_bench = Workloads.Spec.find "mcf" in
  let spec_bin = Pl.compile eng (Workloads.Spec.program spec_bench) in
  let spec_hard = Pl.harden eng spec_bin in
  let juliet_case = List.hd Workloads.Juliet.all in
  let juliet_bin = Pl.compile eng juliet_case.program in
  let juliet_hard = Pl.harden eng juliet_bin in
  let kraken_bench = Workloads.Kraken.find "crypto-aes" in
  let kraken_bin = Pl.compile eng (Workloads.Kraken.program kraken_bench) in
  let kraken_hard = Pl.harden eng ~opts:chrome_opts kraken_bin in
  let small = [ 0; 2 ] in
  let t_table1 =
    Test.make ~name:"table1-harden-run-mcf"
      (Staged.stage (fun () ->
           let hrun =
             Redfat.run_hardened ~options:log_opts ~inputs:small
               spec_hard.binary
           in
           ignore hrun.run.cycles))
  in
  let t_table2 =
    Test.make ~name:"table2-attack-detect-juliet"
      (Staged.stage (fun () ->
           let hrun =
             Redfat.run_hardened ~inputs:juliet_case.attack_inputs
               juliet_hard.binary
           in
           ignore hrun.verdict))
  in
  let t_fig8 =
    Test.make ~name:"fig8-kraken-crypto-aes"
      (Staged.stage (fun () ->
           let hrun =
             Redfat.run_hardened ~options:chrome_rt ~inputs:[ 5 ]
               kraken_hard.binary
           in
           ignore hrun.run.cycles))
  in
  let t_rewrite =
    Test.make ~name:"fig8-rewrite-speed"
      (Staged.stage (fun () -> ignore (Redfat.harden spec_bin)))
  in
  let tests =
    Test.make_grouped ~name:"redfat" [ t_table1; t_table2; t_fig8; t_rewrite ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> pf "%-36s %12.0f ns/run (%s)\n" name est measure
          | _ -> pf "%-36s (no estimate)\n" name)
        tbl)
    merged

(* ------------------------------------------------------------------ *)
(* serve: synthetic-fleet traffic through the hardening daemon         *)
(* ------------------------------------------------------------------ *)

(* Zipf-distributed request stream over the Table-1 targets plus the
   example MiniC sources, processed sequentially through
   Serve.Server.handle so the hit/miss classification -- and therefore
   the gated serve.warm.hit_permille counter -- is identical on every
   run.  Wall-clock figures (throughput, latency percentiles) are
   reported but never gated. *)

let serve () =
  hr "serve: synthetic-fleet traffic simulation (Zipf over Table-1 targets)";
  let t0 = wall () in
  let srv = Serve.Server.create eng in
  (* deterministic 48-bit LCG (java.util.Random constants) *)
  let state = ref 0x5DEECE66D in
  let rand () =
    state := ((!state * 0x5DEECE66D) + 0xB) land 0xFFFF_FFFF_FFFF;
    !state lsr 16
  in
  let fleet =
    Array.of_list
      (List.map
         (fun (b : Workloads.Spec.bench) -> "spec:" ^ b.name)
         Workloads.Spec.all
      @ List.filter Sys.file_exists
          [
            "examples/victim.mc"; "examples/interp.mc";
            "examples/fortran_idiom.mc";
          ])
  in
  let n = Array.length fleet in
  (* Zipf(1.0): weight of rank i is 1/(i+1); fleet order = rank order *)
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  Array.iteri
    (fun i _ ->
      total := !total +. (1.0 /. float (i + 1));
      cum.(i) <- !total)
    fleet;
  let pick () =
    let u = float (rand ()) /. 4294967296.0 *. !total in
    let rec find i = if i >= n - 1 || cum.(i) >= u then i else find (i + 1) in
    fleet.(find 0)
  in
  let request ~id ~op ~tgt =
    Printf.sprintf "{\"id\": %S, \"op\": %S, \"target\": %S}" id op tgt
  in
  let field name line =
    match Obs.Json.parse line with
    | Error _ -> None
    | Ok j -> Obs.Json.member name j
  in
  let int_field name line =
    match Option.bind (field name line) Obs.Json.to_num with
    | Some x -> int_of_float x
    | None -> 0
  in
  (* cold phase: every target hardened once (first touch only ghosts,
     so the hot tier admits on the warm phase's second touch) *)
  let checks = ref 0 and cold_failed = ref 0 in
  Array.iteri
    (fun i tgt ->
      let resp, ok =
        Serve.Server.handle srv
          (request ~id:(Printf.sprintf "c%d" i) ~op:"harden" ~tgt)
      in
      if ok then checks := !checks + int_field "checks_emitted" resp
      else incr cold_failed)
    fleet;
  let cold_s = wall () -. t0 in
  (* warm phase: Zipf-distributed fleet traffic, 80/15/5 op mix *)
  let warm_n = 2000 in
  let lat = Array.make warm_n 0.0 in
  let warm_hits = ref 0 and warm_failed = ref 0 in
  let t_warm = wall () in
  for i = 0 to warm_n - 1 do
    let tgt = pick () in
    let op =
      let r = rand () mod 100 in
      if r < 80 then "harden" else if r < 95 then "verify" else "trace"
    in
    let t1 = wall () in
    let resp, ok =
      Serve.Server.handle srv (request ~id:(Printf.sprintf "w%d" i) ~op ~tgt)
    in
    lat.(i) <- (wall () -. t1) *. 1e6;
    if not ok then incr warm_failed
    else if
      Option.bind (field "cache" resp) Obs.Json.to_str = Some "hit"
    then incr warm_hits
  done;
  let warm_s = wall () -. t_warm in
  Array.sort compare lat;
  let percentile p =
    let i = int_of_float (Float.ceil (p /. 100.0 *. float warm_n)) - 1 in
    lat.(max 0 (min (warm_n - 1) i))
  in
  let p50 = percentile 50.0
  and p95 = percentile 95.0
  and p99 = percentile 99.0 in
  let rps = float warm_n /. warm_s in
  let st = Serve.Lru.stats (Serve.Server.lru srv) in
  let permille = !warm_hits * 1000 / warm_n in
  pf "cold:  %d targets in %.2fs (%d checks emitted, %d failed)\n" n cold_s
    !checks !cold_failed;
  pf "warm:  %d requests in %.2fs = %.0f req/s (wall-clock: not gated)\n"
    warm_n warm_s rps;
  pf "       hit rate %d/%d = %.1f%% (acceptance floor: 90%%)\n" !warm_hits
    warm_n (float permille /. 10.0);
  pf "       latency p50 %.0fus  p95 %.0fus  p99 %.0fus\n" p50 p95 p99;
  pf
    "hot tier: %d hit / %d miss / %d coalesced; %d admitted, %d evicted, %d \
     bytes\n"
    st.Serve.Lru.hits st.misses st.coalesced st.admitted st.evictions st.bytes;
  target "serve:fleet"
    ~counters:
      [
        ("serve.requests", n + warm_n);
        ("serve.warm.requests", warm_n);
        ("serve.warm.hits", !warm_hits);
        ("serve.warm.hit_permille", permille);
        ("serve.failed", !cold_failed + !warm_failed);
        ("checks_emitted", !checks);
        ("serve.hot.admitted", st.admitted);
        ("serve.hot.evictions", st.evictions);
        ("serve.p50_us", int_of_float p50);
        ("serve.p95_us", int_of_float p95);
        ("serve.p99_us", int_of_float p99);
        ("serve.throughput_rps", int_of_float rps);
      ]
    t0

(* --- rebuild: function-granular incremental re-hardening ------------ *)

(* The nightly-rebuild scenario: harden a fleet of SPEC kernels cold,
   then simulate N "nights" in which exactly one function of one
   binary changes (a length-preserving immediate bump, so the
   perturbation is small the way a real nightly delta is) and the
   whole fleet is re-hardened against the warm function-granular
   cache.  Reports the worst-night artifact reuse rate
   (rebuild.fns_reused_permille, gated: may never decrease) and the
   rewrite time saved; every incremental result is checked
   byte-identical -- binary, .elimtab and verify verdict -- to a cold
   monolithic rewrite under every backend, and any divergence fails
   the run. *)

let rebuild_wipe_dir dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)

(* A deterministic one-function perturbation: bump the last in-text
   [Mov_ri] immediate that stays small, out of code-pointer range and
   in the same encoded length, and splice the re-encoded instruction
   over the old bytes.  Returns the perturbed binary and the site. *)
let rebuild_perturb (bin : Binfmt.Relf.t) : (Binfmt.Relf.t * int) option =
  let text = Binfmt.Relf.text_exn bin in
  let text_end = text.addr + String.length text.bytes in
  let in_text v = v >= text.addr && v < text_end in
  let eligible =
    List.filter_map
      (fun (a, ins, len) ->
        match ins with
        | X64.Isa.Mov_ri (r, v)
          when v >= 0 && v < 0x10000
               && (not (in_text v))
               && (not (in_text (v + 1)))
               && X64.Encode.length (X64.Isa.Mov_ri (r, v + 1)) = len ->
          Some (a, r, v, len)
        | _ -> None)
      (X64.Disasm.sweep ~addr:text.addr text.bytes)
  in
  match List.rev eligible with
  | [] -> None
  | (a, r, v, len) :: _ ->
    let enc = X64.Encode.encode_seq ~addr:a [ X64.Isa.Mov_ri (r, v + 1) ] in
    if String.length enc <> len then None
    else begin
      let by = Bytes.of_string text.bytes in
      Bytes.blit_string enc 0 by (a - text.addr) len;
      let sections =
        List.map
          (fun (s : Binfmt.Relf.section) ->
            if s.name = ".text" then { s with bytes = Bytes.to_string by }
            else s)
          bin.Binfmt.Relf.sections
      in
      Some ({ bin with sections }, a)
    end

let rebuild () =
  hr "rebuild (function-granular incremental re-hardening)";
  let t0 = wall () in
  let dir = Filename.concat "_redfat_cache" "rebuild" in
  (* a fresh cache dir: the reuse counters must measure this run alone *)
  rebuild_wipe_dir dir;
  let eng2 = Pl.create ~jobs:1 ~cache:true ~cache_dir:dir () in
  Fun.protect ~finally:(fun () -> Pl.close eng2) @@ fun () ->
  let names =
    match opt_benches with
    | Some ns -> ns
    | None -> List.map (fun (b : Workloads.Spec.bench) -> b.name) Workloads.Spec.all
  in
  let fleet =
    Array.of_list
      (List.map
         (fun n ->
           let sp = Workloads.Spec.find n in
           (n, ref (Pl.compile eng2 (Workloads.Spec.program sp))))
         names)
  in
  let counter name =
    Option.value ~default:0
      (List.assoc_opt name (Obs.counters (Pl.obs eng2)))
  in
  (* cold: the whole fleet, nothing reusable *)
  let tc = wall () in
  Array.iter (fun (_, rbin) -> ignore (Pl.harden eng2 !rbin)) fleet;
  let cold_s = wall () -. tc in
  (* identical functions at identical placements alias across
     binaries, so even the cold pass can reuse a few artifacts *)
  let fns_total = counter "harden.fn.miss" + counter "harden.fn.hit" in
  pf "cold:  %d binaries / %d functions hardened in %.2fs (%d aliased)\n"
    (Array.length fleet) fns_total cold_s
    (counter "harden.fn.hit");
  pf "blueprints: %d hit / %d miss / %d unique shapes\n"
    (counter "blueprint.hit") (counter "blueprint.miss")
    (counter "blueprint.unique");
  (* identically shaped functions (e.g. a kernel and its ref-only
     clone) must share one planning pass even cold *)
  if counter "blueprint.hit" = 0 then begin
    pf "rebuild: no blueprint sharing observed on the cold pass\n";
    exit 1
  end;
  let worst = ref 1000
  and warm_last = ref 0.0
  and failures = ref 0 in
  for night = 0 to opt_nights - 1 do
    (* pick tonight's perturbation target round-robin, skipping
       binaries with no eligible immediate *)
    let nfleet = Array.length fleet in
    let rec pick k tries =
      if tries = nfleet then None
      else
        let _, rbin = fleet.(k) in
        match rebuild_perturb !rbin with
        | Some (bin', site) -> Some (k, bin', site)
        | None -> pick ((k + 1) mod nfleet) (tries + 1)
    in
    match pick (night mod nfleet) 0 with
    | None ->
      prerr_endline "rebuild: no perturbable benchmark in the fleet";
      exit 1
    | Some (k, bin', site) ->
      let name, rbin = fleet.(k) in
      rbin := bin';
      let h0 = counter "harden.fn.hit" and m0 = counter "harden.fn.miss" in
      let tw = wall () in
      let warm_perturbed = ref 0.0 in
      Array.iteri
        (fun i (_, rb) ->
          let t = wall () in
          ignore (Pl.harden eng2 !rb);
          if i = k then warm_perturbed := wall () -. t)
        fleet;
      warm_last := wall () -. tw;
      let hits = counter "harden.fn.hit" - h0
      and misses = counter "harden.fn.miss" - m0 in
      let permille =
        if hits + misses = 0 then 0 else hits * 1000 / (hits + misses)
      in
      worst := min !worst permille;
      (* the incremental artifact must be indistinguishable from a
         cold monolithic rewrite, under every backend *)
      let cold_direct = ref 0.0 in
      List.iter
        (fun backend ->
          let opts = { Rw.optimized with Rw.backend } in
          let inc = Pl.harden eng2 ~opts !rbin in
          let t = wall () in
          let cold = Rw.rewrite opts !rbin in
          if backend = Backend.Check_backend.default then
            cold_direct := wall () -. t;
          let ser (r : Rw.t) = Binfmt.Relf.serialize r.Rw.binary in
          let tab (r : Rw.t) =
            match
              Binfmt.Relf.find_section r.Rw.binary
                Dataflow.Elimtab.section_name
            with
            | Some s -> s.bytes
            | None -> ""
          in
          let verdict (r : Rw.t) =
            match Rw.verify r.Rw.binary with
            | Ok rep -> Redfat.Verify.ok rep
            | Error _ -> false
          in
          let bname = Backend.Check_backend.name backend in
          if ser inc <> ser cold then begin
            incr failures;
            pf "night %d: %s [%s] FAIL: incremental binary differs from cold\n"
              night name bname
          end
          else if tab inc <> tab cold then begin
            incr failures;
            pf "night %d: %s [%s] FAIL: .elimtab differs from cold\n" night
              name bname
          end
          else if not (verdict inc && verdict cold) then begin
            incr failures;
            pf "night %d: %s [%s] FAIL: soundness audit failed\n" night name
              bname
          end)
        Backend.Check_backend.all;
      pf
        "night %d: %s perturbed @0x%x -- %d/%d functions reused (%d \
         permille)\n"
        night name site hits (hits + misses) permille;
      pf "         fleet re-hardened in %.1f ms vs %.1f ms cold"
        (!warm_last *. 1000.) (cold_s *. 1000.);
      if !warm_last > 0.0 then pf " (%.1fx faster)" (cold_s /. !warm_last);
      pf "\n";
      pf "         perturbed target alone: incremental %.1f ms vs %.1f ms \
          cold monolithic\n"
        (!warm_perturbed *. 1000.) (!cold_direct *. 1000.)
  done;
  if !failures > 0 then begin
    pf "rebuild: %d equivalence failure(s)\n" !failures;
    exit 1
  end;
  pf "reuse: worst night %d permille (acceptance floor %d)\n" !worst
    opt_min_reuse;
  if !worst < opt_min_reuse then begin
    pf "rebuild: artifact reuse below the %d permille floor\n" opt_min_reuse;
    exit 1
  end;
  target "rebuild:fleet"
    ~counters:
      [
        ("rebuild.nights", opt_nights);
        ("rebuild.fns_total", fns_total);
        ("rebuild.fns_reused_permille", !worst);
        ("rebuild.blueprint_hits", counter "blueprint.hit");
        ("rebuild.blueprint_unique", counter "blueprint.unique");
        (* wall-clock facts: reported, never gated *)
        ("rebuild.cold_ms", int_of_float (cold_s *. 1000.));
        ("rebuild.warm_ms", int_of_float (!warm_last *. 1000.));
      ]
    t0

(* ------------------------------------------------------------------ *)
(* Fuzz: the coverage-guided campaign fleet, checks as the oracle      *)
(* ------------------------------------------------------------------ *)

(* Per-backend smoke campaigns over the seeded-bug suite plus the two
   parser campaigns, with a fixed (seed, budget) so the whole matrix —
   and the fuzz.* counters bench_diff gates on — is deterministic for
   any --jobs.  bench/fuzz_baseline.json pins the floor. *)
let fuzz () =
  hr "Fuzz: deterministic smoke campaigns (checks as the oracle)";
  let config = { Fuzz.Campaign.default_config with budget = 400; seed = 7 } in
  let agg (reports : Fuzz.Campaign.report list) =
    let total f = List.fold_left (fun a r -> a + f r) 0 reports in
    [
      ("fuzz.execs", total (fun (r : Fuzz.Campaign.report) -> r.r_execs));
      ("fuzz.crashes", total (fun (r : Fuzz.Campaign.report) -> r.r_crashes));
      ("fuzz.cov_edges", total (fun (r : Fuzz.Campaign.report) -> r.r_cov_edges));
      ("fuzz.cov_sites", total (fun (r : Fuzz.Campaign.report) -> r.r_cov_sites));
      ( "fuzz.corpus_entries",
        total (fun (r : Fuzz.Campaign.report) -> r.r_corpus) );
      ("fuzz.min_execs", total (fun (r : Fuzz.Campaign.report) -> r.r_min_execs));
      ( "fuzz.unique_bugs",
        total (fun (r : Fuzz.Campaign.report) -> List.length r.r_bugs) );
    ]
  in
  let show bname (r : Fuzz.Campaign.report) =
    pf "%-9s %-14s %6d %8d %6d %7d %5d\n" bname r.r_target r.r_execs r.r_crashes
      r.r_cov_edges r.r_corpus (List.length r.r_bugs);
    List.iter (fun b -> pf "  %s\n" (Fuzz.Campaign.bug_summary b)) r.r_bugs
  in
  pf "%-9s %-14s %6s %8s %6s %7s %5s\n" "backend" "target" "execs" "crashes"
    "edges" "corpus" "bugs";
  List.iter
    (fun backend ->
      let t0 = wall () in
      let bname = Backend.Check_backend.name backend in
      let reports =
        List.map
          (fun (c : Workloads.Fuzzbugs.case) ->
            let bin = Pl.compile eng c.program in
            let hard = Pl.harden eng ~opts:{ Rw.optimized with Rw.backend } bin in
            Fuzz.Campaign.run_exec eng ~config ~target:("bug:" ^ c.id)
              hard.Rw.binary)
          Workloads.Fuzzbugs.all
      in
      List.iter (show bname) reports;
      target ("fuzz:" ^ bname) ~counters:(agg reports) t0)
    Backend.Check_backend.all;
  (* the parser campaigns: typed parse.* rejections are the triage
     contract; anything else escaping the parser would show as run.fault *)
  let t0 = wall () in
  let relf_seed =
    Binfmt.Relf.serialize
      (Pl.compile eng (Workloads.Fuzzbugs.find "oob-write").program)
  in
  let minic_seed = "func main() { let x = input(); print(x); return 0; }" in
  let parse_reports =
    [
      Fuzz.Campaign.run_parse eng ~config ~which:Fuzz.Campaign.Relf_parser
        ~seeds:[ relf_seed; "" ] ();
      Fuzz.Campaign.run_parse eng ~config ~which:Fuzz.Campaign.Minic_parser
        ~seeds:[ minic_seed; "" ] ();
    ]
  in
  List.iter (show "parse") parse_reports;
  target "fuzz:parse" ~counters:(agg parse_reports) t0;
  pf "(deterministic for any --jobs: seed %d, budget %d per campaign;\n"
    config.seed config.budget;
  pf " `make fuzz-gate` diffs the fuzz.* counters against \
      bench/fuzz_baseline.json)\n"

(* ------------------------------------------------------------------ *)

let all () =
  fig2 ();
  fig3 ();
  fig4 ();
  fig67 ();
  fig5 ();
  fig1 ();
  table2 ();
  table2x ();
  uaf ();
  fps ();
  detected ();
  table1 ();
  fig8 ();
  stats ();
  sec74 ();
  ablation ();
  serve ();
  rebuild ();
  fuzz ();
  bechamel ()

let () =
  (match experiment with
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "table2x" -> table2x ()
  | "fig1" -> fig1 ()
  | "fig2" -> fig2 ()
  | "fig3" -> fig3 ()
  | "fig4" -> fig4 ()
  | "fig5" -> fig5 ()
  | "fig67" -> fig67 ()
  | "fig8" -> fig8 ()
  | "fps" -> fps ()
  | "detected" -> detected ()
  | "ablation" -> ablation ()
  | "sec74" -> sec74 ()
  | "uaf" -> uaf ()
  | "stats" -> stats ()
  | "serve" -> serve ()
  | "rebuild" -> rebuild ()
  | "fuzz" -> fuzz ()
  | "bechamel" -> bechamel ()
  | "all" -> all ()
  | other ->
    prerr_endline ("unknown experiment: " ^ other);
    exit 1);
  (match opt_out with
  | Some file ->
    let json =
      Pl.emit_json eng ~extra:[ ("experiment", experiment) ] ()
    in
    Out_channel.with_open_text file (fun oc ->
        Out_channel.output_string oc json);
    pf "wrote %s\n" file
  | None -> ());
  (match opt_trace with
  | Some file ->
    Out_channel.with_open_text file (fun oc ->
        Out_channel.output_string oc (Pl.trace_json eng));
    pf "wrote %s (Chrome trace-event JSON)\n" file
  | None -> ());
  Pl.close eng
