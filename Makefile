# Convenience entry points; dune does the real work.

BENCH := _build/default/bench/main.exe
REDFAT := _build/default/bin/redfat_cli.exe
EXAMPLES := $(wildcard examples/*.mc)

BENCH_DIFF := _build/default/tools/bench_diff.exe

.PHONY: all build test check lint doc-check bench bench-json bench-gate \
	bench-baseline serve-smoke bench-serve-gate bench-serve-baseline \
	rebuild-smoke bench-rebuild-gate bench-rebuild-baseline \
	fuzz-smoke bench-fuzz-gate bench-fuzz-baseline ci clean

all: build

build:
	dune build

test:
	dune runtest

# harden every MiniC example — with and without loop hoisting — and
# audit both with the rewrite-soundness linter: zero unaccounted
# memory accesses and zero unprovable hoists, or the build fails
lint: build
	@mkdir -p _build/lint
	@set -e; for src in $(EXAMPLES); do \
	  out=_build/lint/$$(basename $$src .mc); \
	  $(REDFAT) compile $$src -o $$out.relf >/dev/null; \
	  $(REDFAT) harden $$out.relf -o $$out.hard.relf >/dev/null; \
	  $(REDFAT) verify --quiet $$out.hard.relf; \
	  $(REDFAT) harden $$out.relf --hoist -o $$out.hoist.relf >/dev/null; \
	  $(REDFAT) verify --quiet $$out.hoist.relf; \
	done

# the docs-sync gate: CLI flags and the fault taxonomy in
# docs/MANUAL.md must match the code, and intra-repo markdown links
# must resolve
doc-check:
	dune build tools/doc_check.exe
	_build/default/tools/doc_check.exe

# the tier-1 gate plus the lint audit, the docs-sync gate, and a
# parallel-engine smoke run
check:
	dune build
	dune runtest
	$(MAKE) lint
	$(MAKE) doc-check
	dune build bench/main.exe
	$(BENCH) fig4 --jobs 2

bench: build
	$(BENCH)

# one structured-report example: Table 1 fanned over 4 domains,
# artifacts cached in _redfat_cache/ so repeated runs start warm
bench-json: build
	$(BENCH) table1 --jobs 4 --out BENCH_table1.json
	@echo "wrote BENCH_table1.json"

# the bench-regression gate: regenerate Table 1 and diff it against
# the committed baseline.  Cycle counts come from the deterministic VM
# cost model, so any regression is a code change, not machine noise.
# Fails on emitted-check-count increases or >10% cycle regressions.
bench-gate: build
	$(BENCH) table1 --jobs 2 --out BENCH_table1.json > /dev/null
	$(BENCH_DIFF) bench/baseline.json BENCH_table1.json

# after an INTENTIONAL hardening/cost change: refresh the baseline and
# commit it together with the change that explains it
bench-baseline: build
	$(BENCH) table1 --jobs 2 --out bench/baseline.json > /dev/null
	@echo "wrote bench/baseline.json -- commit it with the explaining change"

# serving-tier smoke: start the daemon on a Unix socket, drive a
# scripted request mix through the client on every backend, assert a
# nonzero hot-tier hit count, then check clean SIGTERM shutdown
serve-smoke: build
	@set -e; for b in redzone lowfat temporal; do \
	  sock=/tmp/redfat-serve-smoke-$$b.sock; \
	  printf '%s\n' \
	    '{"id":"h1","op":"harden","target":"spec:mcf","backend":"'$$b'"}' \
	    '{"id":"h2","op":"harden","target":"spec:mcf","backend":"'$$b'"}' \
	    '{"id":"h3","op":"harden","target":"spec:mcf","backend":"'$$b'"}' \
	    '{"id":"v1","op":"verify","target":"spec:mcf","backend":"'$$b'"}' \
	    '{"id":"t1","op":"trace","target":"uaf:double-free","backend":"'$$b'"}' \
	    '{"id":"s1","op":"stats"}' \
	    > _build/serve-smoke-$$b.jsonl; \
	  $(REDFAT) serve --socket $$sock --no-cache \
	    > _build/serve-smoke-$$b.log & pid=$$!; \
	  $(REDFAT) serve --socket $$sock --send _build/serve-smoke-$$b.jsonl \
	    > _build/serve-smoke-$$b.out; \
	  grep -q '"serve.cache.hits": [1-9]' _build/serve-smoke-$$b.out; \
	  kill -TERM $$pid; wait $$pid; \
	  test ! -e $$sock; \
	  echo "backend $$b: serve smoke OK"; \
	done

# the serving-tier regression gate: the Zipf traffic simulation through
# the daemon's request path; gates the warm-phase hit rate
# (serve.warm.hit_permille must not decrease) and the emitted-check
# counters.  Throughput and latency are reported but never gated.
bench-serve-gate: build
	$(BENCH) serve --out BENCH_serve.json > /dev/null
	$(BENCH_DIFF) bench/serve_baseline.json BENCH_serve.json

# after an INTENTIONAL serving/cache change: refresh the fleet baseline
bench-serve-baseline: build
	$(BENCH) serve --out bench/serve_baseline.json > /dev/null
	@echo "wrote bench/serve_baseline.json -- commit it with the explaining change"

# incremental-reuse smoke: harden a small fleet cold, perturb one
# function, re-harden.  Fails unless blueprints were shared on the
# cold pass, >= 900 permille of per-function artifacts were reused,
# and every incremental result is byte-identical (binary, .elimtab,
# verify verdict) to a cold monolithic rewrite on every backend
rebuild-smoke: build
	$(BENCH) rebuild --benches perlbench,gcc,calculix --nights 1 \
	  --min-reuse 900

# the incremental-rebuild regression gate: the full 29-kernel nightly
# scenario; gates rebuild.fns_reused_permille (may never decrease).
# Wall-clock rebuild times are reported but never gated.
bench-rebuild-gate: build
	$(BENCH) rebuild --out BENCH_rebuild.json > /dev/null
	$(BENCH_DIFF) bench/rebuild_baseline.json BENCH_rebuild.json

# after an INTENTIONAL partition/cache-key change: refresh the baseline
bench-rebuild-baseline: build
	$(BENCH) rebuild --out bench/rebuild_baseline.json > /dev/null
	@echo "wrote bench/rebuild_baseline.json -- commit it with the explaining change"

# fuzzing-fleet smoke: a bounded deterministic campaign (fixed seed and
# budget) over the seeded-bug suite on every backend, plus both parser
# campaigns; each must find and deduplicate at least one planted bug
# and exit cleanly.  See docs/FUZZING.md for the triage contract.
fuzz-smoke: build
	@set -e; for b in redzone lowfat temporal; do \
	  $(REDFAT) fuzz bug:oob-write bug:oob-read bug:off-by-one bug:uaf \
	    bug:double-free bug:hang --backend $$b --budget 400 --seed 7 \
	    --jobs 2 --expect-bugs 6 \
	    --out _build/fuzz-smoke-$$b.json > /dev/null; \
	  echo "backend $$b: fuzz smoke OK"; \
	done
	$(REDFAT) fuzz relf minic --mode parse --budget 400 --seed 7 \
	  --expect-bugs 2 --out _build/fuzz-smoke-parse.json > /dev/null
	@echo "parser campaigns: fuzz smoke OK"

# the fuzzing regression gate: regenerate the smoke matrix through the
# bench harness and diff it against the committed baseline; any
# fuzz.unique_bugs decrease (a campaign stopped finding a seeded bug)
# fails the build
bench-fuzz-gate: build
	$(BENCH) fuzz --jobs 2 --out BENCH_fuzz.json > /dev/null
	$(BENCH_DIFF) bench/fuzz_baseline.json BENCH_fuzz.json

# after an INTENTIONAL oracle/scheduler/mutator change: refresh the
# fuzzing baseline and commit it with the change that explains it
bench-fuzz-baseline: build
	$(BENCH) fuzz --jobs 2 --out bench/fuzz_baseline.json > /dev/null
	@echo "wrote bench/fuzz_baseline.json -- commit it with the explaining change"

# everything CI runs, in one local command (mirrors .github/workflows/ci.yml)
ci: build test lint doc-check
	@set -e; for b in redzone lowfat temporal; do \
	  $(REDFAT) pipeline spec:mcf uaf:CWE416_write-after-free_v0 \
	    uaf:double-free --backend $$b --no-cache > /dev/null; \
	  echo "backend $$b: pipeline smoke OK"; \
	done
	@set -e; for b in redzone lowfat temporal; do \
	  $(REDFAT) pipeline spec:mcf spec:bzip2 --hoist --backend $$b \
	    --no-cache > /dev/null; \
	  echo "backend $$b: hoist pipeline smoke OK"; \
	done
	$(BENCH) fig4 --jobs 2
	$(MAKE) bench-gate
	$(MAKE) serve-smoke
	$(MAKE) bench-serve-gate
	$(MAKE) rebuild-smoke
	$(MAKE) bench-rebuild-gate
	$(MAKE) fuzz-smoke
	$(MAKE) bench-fuzz-gate

clean:
	dune clean
	rm -rf _redfat_cache BENCH_*.json
