# Convenience entry points; dune does the real work.

BENCH := _build/default/bench/main.exe

.PHONY: all build test check bench bench-json clean

all: build

build:
	dune build

test:
	dune runtest

# the tier-1 gate plus a parallel-engine smoke run
check:
	dune build
	dune runtest
	dune build bench/main.exe
	$(BENCH) fig4 --jobs 2

bench: build
	$(BENCH)

# one structured-report example: Table 1 fanned over 4 domains,
# artifacts cached in _redfat_cache/ so repeated runs start warm
bench-json: build
	$(BENCH) table1 --jobs 4 --out BENCH_table1.json
	@echo "wrote BENCH_table1.json"

clean:
	dune clean
	rm -rf _redfat_cache BENCH_*.json
