# Convenience entry points; dune does the real work.

BENCH := _build/default/bench/main.exe
REDFAT := _build/default/bin/redfat_cli.exe
EXAMPLES := $(wildcard examples/*.mc)

.PHONY: all build test check lint bench bench-json clean

all: build

build:
	dune build

test:
	dune runtest

# harden every MiniC example and audit it with the rewrite-soundness
# linter: zero unaccounted memory accesses or the build fails
lint: build
	@mkdir -p _build/lint
	@set -e; for src in $(EXAMPLES); do \
	  out=_build/lint/$$(basename $$src .mc); \
	  $(REDFAT) compile $$src -o $$out.relf >/dev/null; \
	  $(REDFAT) harden $$out.relf -o $$out.hard.relf >/dev/null; \
	  $(REDFAT) verify --quiet $$out.hard.relf; \
	done

# the tier-1 gate plus the lint audit and a parallel-engine smoke run
check:
	dune build
	dune runtest
	$(MAKE) lint
	dune build bench/main.exe
	$(BENCH) fig4 --jobs 2

bench: build
	$(BENCH)

# one structured-report example: Table 1 fanned over 4 domains,
# artifacts cached in _redfat_cache/ so repeated runs start warm
bench-json: build
	$(BENCH) table1 --jobs 4 --out BENCH_table1.json
	@echo "wrote BENCH_table1.json"

clean:
	dune clean
	rm -rf _redfat_cache BENCH_*.json
