(** Natural-loop forest and loop-aware value-range analysis.

    Finds the natural loops of the recovered CFG (back edges via
    {!Dom.back_edges}), their nesting forest and preheaders, and —
    the payload — derives for a memory access inside a counted loop
    the convex hull of every address it touches across the loop's
    iterations ({!member_hoist}).  The rewriter uses the hull to hoist
    one widened check into the preheader; the soundness linter re-runs
    the identical derivation to prove the hoisted check subsumes every
    per-iteration check it replaced.

    Irreducible cycles have no back edge and therefore no natural
    loop: analysis of such CFGs degrades to "no hoisting" — never a
    crash, never a wrong hull. *)

type loop = {
  header : int;         (** header block id *)
  latches : int list;   (** back-edge sources, sorted *)
  body : int list;      (** member block ids (header included), sorted *)
  parent : int option;  (** index of the innermost enclosing loop *)
  depth : int;          (** nesting depth; outermost = 1 *)
  preheader : int option;
      (** unique out-of-loop predecessor falling through into the
          header (single successor, dominates the header); the block
          whose last instruction hosts hoisted checks *)
}

type t = {
  graph : Graph.t;
  dom : Dom.t;
  loops : loop array;     (** sorted by header block id *)
  innermost : int array;  (** block id -> innermost loop index, or -1 *)
}

val analyze : Graph.t -> Dom.t -> t
(** Build the loop nesting forest.  Pure function of the graph and its
    dominator tree; the rewriter and the linter call it on the same
    recovered program and obtain the same forest. *)

val innermost_loop : t -> int -> int option
(** Index into [loops] of the innermost loop containing a block. *)

type hoist = {
  h_index : int;  (** instruction index of the preheader patch site *)
  h_addr : int;   (** its address (the hoisted check's site) *)
  h_mem : X64.Isa.mem;  (** widened canonical operand ([disp = 0]) *)
  h_lo : int;     (** inclusive low end of the access hull *)
  h_hi : int;     (** exclusive high end of the access hull *)
}

val member_hoist : t -> index:int -> mem:X64.Isa.mem -> bytes:int -> hoist option
(** [member_hoist t ~index ~mem ~bytes]: if the access [mem] (in
    canonical form) of width [bytes] at instruction [index] sits in a
    counted loop whose guard, induction variable, increment and body
    structure satisfy every hoisting proof obligation, return the
    preheader patch point and the convex hull [[h_lo, h_hi)] (relative
    to [h_mem]) of all addresses the access touches across the loop's
    iterations.  Deterministic and side-effect free — the rewriter
    plans from it and {!Verify} independently re-derives with it. *)
