(** Natural-loop forest and loop-aware value-range analysis.

    This is the static-analysis half of the CHOP-style check-hoisting
    optimization: find the natural loops of the recovered CFG, find
    each loop's {e preheader}, recognize the loop's counted-guard /
    induction-variable shape on canonicalized operands, and derive for
    a memory operand inside the loop the convex hull
    [[base + lo, base + hi)] of every address it touches across the
    loop's iterations.  The rewriter hoists one widened check over
    that hull into the preheader; the soundness linter re-runs exactly
    this derivation ({!member_hoist} is shared, like {!Canon}) and
    proves the emitted check subsumes every per-iteration check it
    replaced.

    Soundness is asymmetric:

    - {e no missed detection}: the hull must cover every address the
      member can access, so [member_hoist] only fires when the
      induction variable's initial value, step and exclusive limit are
      all compile-time constants and the member executes on every
      iteration (its block dominates every latch, and precedes the
      unique increment);
    - {e no false positive}: the hull must contain only addresses a
      correct, terminating execution actually accesses once the
      preheader runs, so the loop must be entered unconditionally from
      the preheader (single fall-through edge), run at least one
      iteration ([init < limit]), and exit only through the header
      guard — no breaks, calls, or other side exits that could cut the
      iteration space short.

    Irreducible cycles have no back edge ({!Dom.is_back_edge}), hence
    no natural loop, hence no hoisting — the degraded behaviour is
    "keep every per-iteration check", never a crash or a wrong hull. *)

type loop = {
  header : int;         (** header block id *)
  latches : int list;   (** back-edge sources, sorted *)
  body : int list;      (** member block ids (header included), sorted *)
  parent : int option;  (** index of the innermost enclosing loop *)
  depth : int;          (** nesting depth; outermost = 1 *)
  preheader : int option;
      (** the unique out-of-loop predecessor of the header, accepted
          only when it enters the loop unconditionally (its single
          successor is the header, by fall-through) and dominates the
          header — the block whose last instruction hosts hoisted
          checks *)
}

type t = {
  graph : Graph.t;
  dom : Dom.t;
  loops : loop array;     (** indexed by loop id, sorted by header *)
  innermost : int array;  (** block id -> innermost loop id, or -1 *)
}

let in_body (l : loop) (b : int) = List.mem b l.body

(* the preheader: header preds minus latches must be a single block
   outside the loop, falling through into the header (its only
   successor) and dominating it.  A conditional or side entry would
   execute a hoisted check on paths that never run the loop. *)
let find_preheader (g : Graph.t) (dom : Dom.t) ~(header : int)
    ~(body : bool array) : int option =
  match
    List.filter (fun p -> not body.(p)) (Graph.block g header).Graph.preds
  with
  | [ p ] ->
    let pb = Graph.block g p in
    (match (pb.Graph.succs, pb.Graph.term) with
     | [ s ], X64.Isa.Fall when s = header && Dom.dominates dom p header ->
       Some p
     | _ -> None)
  | _ -> None

let analyze (g : Graph.t) (dom : Dom.t) : t =
  let nb = Graph.num_blocks g in
  (* group latches per header: one natural loop per header, its body
     the union over that header's back edges *)
  let latches_of = Hashtbl.create 8 in
  List.iter
    (fun (u, h) ->
      Hashtbl.replace latches_of h
        (u :: Option.value (Hashtbl.find_opt latches_of h) ~default:[]))
    (Dom.back_edges dom);
  let headers =
    List.sort compare (Hashtbl.fold (fun h _ acc -> h :: acc) latches_of [])
  in
  let raw =
    List.map
      (fun header ->
        let latches =
          List.sort_uniq compare (Hashtbl.find latches_of header)
        in
        (* body: header plus everything reaching a latch backwards
           without passing the header *)
        let body = Array.make nb false in
        body.(header) <- true;
        let stack = ref [] in
        let push b =
          if not body.(b) then begin
            body.(b) <- true;
            stack := b :: !stack
          end
        in
        List.iter push latches;
        let rec drain () =
          match !stack with
          | [] -> ()
          | b :: rest ->
            stack := rest;
            List.iter push (Graph.block g b).Graph.preds;
            drain ()
        in
        drain ();
        (header, latches, body))
      headers
  in
  let body_size body = Array.fold_left (fun n b -> if b then n + 1 else n) 0 body in
  let loops =
    Array.of_list
      (List.map
         (fun (header, latches, body) ->
           let members = ref [] in
           for b = nb - 1 downto 0 do
             if body.(b) then members := b :: !members
           done;
           {
             header;
             latches;
             body = !members;
             parent = None;
             depth = 1;
             preheader = find_preheader g dom ~header ~body;
           })
         raw)
  in
  let sizes = Array.of_list (List.map (fun (_, _, b) -> body_size b) raw) in
  let bodies = Array.of_list (List.map (fun (_, _, b) -> b) raw) in
  (* nesting: the parent of loop [i] is the smallest distinct loop
     whose body contains [i]'s header *)
  let parent_of i =
    let best = ref None in
    Array.iteri
      (fun j body ->
        if j <> i && body.(loops.(i).header) then
          match !best with
          | Some k when sizes.(k) <= sizes.(j) -> ()
          | _ -> best := Some j)
      bodies;
    !best
  in
  Array.iteri (fun i l -> loops.(i) <- { l with parent = parent_of i }) loops;
  let rec depth i =
    match loops.(i).parent with None -> 1 | Some p -> 1 + depth p
  in
  Array.iteri (fun i l -> loops.(i) <- { l with depth = depth i }) loops;
  (* innermost loop per block: the smallest body containing it *)
  let innermost = Array.make nb (-1) in
  for b = 0 to nb - 1 do
    Array.iteri
      (fun j body ->
        if body.(b)
           && (innermost.(b) = -1 || sizes.(j) < sizes.(innermost.(b)))
        then innermost.(b) <- j)
      bodies
  done;
  { graph = g; dom; loops; innermost }

let innermost_loop (t : t) (block : int) : int option =
  if block < 0 || block >= Array.length t.innermost then None
  else match t.innermost.(block) with -1 -> None | i -> Some i

(* ------------------------------------------------------------------ *)
(* Counted-guard and induction-variable recognition                    *)
(* ------------------------------------------------------------------ *)

(* The recognized shape is the one every counted loop of the MiniC
   code generator takes (and any binary structured like it):

     preheader:  ... ; iv <- k0 (constant, via Canon)   ; fall through
     header:     guard on iv vs a constant limit; one exit successor
     body:       ... member ... ; the single [iv += step] ; latch
                                                           back-jumps

   The guard's compared register is canonicalized, so the generator's
   scratch-register copy of the loop counter resolves to its home
   register. *)

type guard = {
  gd_iv : X64.Isa.reg;  (** canonical induction register *)
  gd_limit : int;       (** exclusive upper bound while iterating *)
}

(* canonical register state after running [first..last] of a block *)
let state_through (g : Graph.t) ~(first : int) ~(last : int) : Canon.state =
  let st = Canon.fresh () in
  for i = first to last do
    let _, instr, _ = g.Graph.instrs.(i) in
    Canon.step st instr
  done;
  st

let recognize_guard (t : t) (l : loop) : guard option =
  let g = t.graph in
  let hb = Graph.block g l.header in
  let _, term, _ = g.Graph.instrs.(hb.Graph.last) in
  match term with
  | X64.Isa.Jcc (cc, target) -> (
    let target_block =
      match Graph.index_at g target with
      | Some i -> Some (Graph.block_of_instr g i)
      | None -> None
    in
    let fall_block =
      match
        List.filter (fun s -> Some s <> target_block) hb.Graph.succs
      with
      | [ f ] -> Some f
      | _ -> None
    in
    match (target_block, fall_block) with
    | Some tb, Some fb -> (
      let tin = in_body l tb and fin = in_body l fb in
      (* exactly one successor stays in the loop *)
      if tin = fin then None
      else
        (* the last flag-writing instruction decides the guard; it must
           be a comparison against a known constant, and nothing after
           it may clobber the flags before the branch *)
        let cmp = ref None in
        for i = hb.Graph.first to hb.Graph.last - 1 do
          let _, instr, _ = g.Graph.instrs.(i) in
          if X64.Isa.writes_flags instr then cmp := Some (i, instr)
        done;
        match !cmp with
        | Some (ci, (X64.Isa.Cmp_rr _ | X64.Isa.Cmp_ri _)) -> (
          let st = state_through g ~first:hb.Graph.first ~last:(ci - 1) in
          let _, cmp_instr, _ = g.Graph.instrs.(ci) in
          let operands =
            match cmp_instr with
            | X64.Isa.Cmp_rr (a, b) -> (
              match (st.Canon.konst.(a), st.Canon.konst.(b)) with
              | None, Some n -> Some (Canon.canon_reg st a, n)
              | _ -> None)
            | X64.Isa.Cmp_ri (a, n) ->
              if st.Canon.konst.(a) = None then
                Some (Canon.canon_reg st a, n)
              else None
            | _ -> None
          in
          match operands with
          | None -> None
          | Some (iv, n) -> (
            (* continue-condition semantics: signed or unsigned
               counted-up guards only (the [member_hoist] requirement
               [0 <= init] makes the two agree) *)
            let limit =
              if tin then
                (* branch taken stays in the loop: continue when cc *)
                match cc with
                | X64.Isa.Lt | X64.Isa.Ult -> Some n
                | X64.Isa.Le | X64.Isa.Ule -> Some (n + 1)
                | _ -> None
              else
                (* branch taken exits: continue when (not cc) *)
                match cc with
                | X64.Isa.Ge | X64.Isa.Uge -> Some n
                | X64.Isa.Gt | X64.Isa.Ugt -> Some (n + 1)
                | _ -> None
            in
            match limit with
            | Some gd_limit -> Some { gd_iv = iv; gd_limit }
            | None -> None))
        | _ -> None)
    | _ -> None)
  | _ -> None

(* the single [iv <- iv + step] of the loop, as (block, index, step).
   Any other definition of [iv] anywhere in the body disqualifies the
   loop: the range progression would no longer be arithmetic. *)
let find_increment (t : t) (l : loop) (li : int) (iv : X64.Isa.reg) :
    (int * int * int) option =
  let g = t.graph in
  let defs = ref [] in
  List.iter
    (fun b ->
      let blk = Graph.block g b in
      for i = blk.Graph.first to blk.Graph.last do
        let _, instr, _ = g.Graph.instrs.(i) in
        if List.mem iv (X64.Isa.defs instr) then defs := (b, i, instr) :: !defs
      done)
    l.body;
  match !defs with
  | [ (b, i, X64.Isa.Alu_ri (X64.Isa.Add, r, step)) ]
    when r = iv && step >= 1
         (* inside an inner loop it would run more than once per
            iteration of [l]; in the header it would run on the final,
            guard-failing entry too *)
         && t.innermost.(b) = li
         && b <> l.header
         && List.for_all (fun latch -> Dom.dominates t.dom b latch) l.latches
    -> Some (b, i, step)
  | _ -> None

(* structural conditions on the whole body: the only way out is the
   header guard, and nothing inside can invalidate a checked base or
   terminate early (allocator calls free the guarded object — and kill
   the availability fact the linter's proof rests on; a call or exit
   cuts the iteration space short, breaking the hull's "actually
   accessed" guarantee) *)
let body_well_formed (t : t) (l : loop) : bool =
  let g = t.graph in
  List.for_all
    (fun b ->
      let blk = Graph.block g b in
      let exits_ok =
        if b = l.header then true
        else
          blk.Graph.succs <> [] && List.for_all (in_body l) blk.Graph.succs
      in
      exits_ok
      &&
      let ok = ref true in
      for i = blk.Graph.first to blk.Graph.last do
        let _, instr, _ = g.Graph.instrs.(i) in
        (match instr with
         | X64.Isa.Callrt (X64.Isa.Malloc | X64.Isa.Free | X64.Isa.Exit) ->
           ok := false
         | _ -> ());
        match X64.Isa.flow_of instr with
        | X64.Isa.To_call _ | X64.Isa.Dyn_call | X64.Isa.Dyn_goto
        | X64.Isa.Stop -> ok := false
        | _ -> ()
      done;
      !ok)
    l.body

(* no instruction of the body redefines [r]; the hoisted operand's
   registers must hold the same values at the preheader and at every
   member execution *)
let invariant_reg (t : t) (l : loop) (r : X64.Isa.reg) : bool =
  let g = t.graph in
  List.for_all
    (fun b ->
      let blk = Graph.block g b in
      let ok = ref true in
      for i = blk.Graph.first to blk.Graph.last do
        let _, instr, _ = g.Graph.instrs.(i) in
        if List.mem r (X64.Isa.defs instr) then ok := false
      done;
      !ok)
    l.body

(* ------------------------------------------------------------------ *)
(* The shared hull derivation                                          *)
(* ------------------------------------------------------------------ *)

type hoist = {
  h_index : int;  (** instruction index of the preheader patch site *)
  h_addr : int;   (** its address (the hoisted check's site) *)
  h_mem : X64.Isa.mem;  (** widened operand ([disp = 0]) *)
  h_lo : int;
  h_hi : int;     (** access hull [lo, hi) relative to [h_mem] *)
}

(** [member_hoist t ~index ~mem ~bytes]: can the access [mem] (in
    canonical form, as collected by the rewriter and re-derived by the
    linter) at instruction [index] be covered by one widened check in
    its innermost loop's preheader?  Returns the patch point and the
    convex hull of every address the access touches across the loop,
    or [None] when any proof obligation fails.  Deterministic and
    side-effect free: the rewriter plans from it and the soundness
    linter independently re-derives with it, so the two always agree. *)
let member_hoist (t : t) ~(index : int) ~(mem : X64.Isa.mem) ~(bytes : int) :
    hoist option =
  let g = t.graph in
  let bid = Graph.block_of_instr g index in
  match innermost_loop t bid with
  | None -> None
  | Some li -> (
    let l = t.loops.(li) in
    match l.preheader with
    | None -> None
    | Some p when bid = l.header -> (
      (* a header-resident access also runs on the final, guard-failing
         entry, one step beyond the hull *)
      ignore p;
      None)
    | Some p -> (
      match recognize_guard t l with
      | None -> None
      | Some { gd_iv; gd_limit } -> (
        if not (body_well_formed t l) then None
        else if
          not (List.for_all (fun la -> Dom.dominates t.dom bid la) l.latches)
        then None
        else
          match find_increment t l li gd_iv with
          | None -> None
          | Some (inc_block, inc_index, step) -> (
            (* the member must read the induction variable before the
               iteration's increment *)
            let before_increment =
              if bid = inc_block then index < inc_index
              else Dom.dominates t.dom bid inc_block
            in
            if not before_increment then None
            else
              (* initial value: constant at the end of the preheader *)
              let pb = Graph.block g p in
              let st =
                state_through g ~first:pb.Graph.first ~last:pb.Graph.last
              in
              match st.Canon.konst.(gd_iv) with
              | None -> None
              | Some init ->
                if init < 0 || init >= gd_limit then None
                else
                  (* iv takes init, init+step, ..., last < limit; the
                     member executes at each of them *)
                  let last =
                    init + (gd_limit - 1 - init) / step * step
                  in
                  let hull =
                    match (mem.X64.Isa.base, mem.X64.Isa.idx) with
                    | None, _ -> None
                    | Some _, Some r when r = gd_iv ->
                      Some
                        ( { mem with X64.Isa.idx = None; scale = 1; disp = 0 },
                          mem.X64.Isa.disp + (init * mem.X64.Isa.scale),
                          mem.X64.Isa.disp + (last * mem.X64.Isa.scale) + bytes
                        )
                    | Some _, (None | Some _) ->
                      (* loop-invariant operand: the hull is the access
                         itself, checked once instead of every
                         iteration *)
                      Some
                        ( { mem with X64.Isa.disp = 0 },
                          mem.X64.Isa.disp,
                          mem.X64.Isa.disp + bytes )
                  in
                  (match hull with
                   | None -> None
                   | Some (wmem, lo, hi) ->
                     let regs = X64.Isa.mem_uses wmem in
                     let _, last_instr, _ = g.Graph.instrs.(pb.Graph.last) in
                     let patch_ok =
                       (* the check runs before the preheader's last
                          instruction: that instruction must not change
                          the operand, kill the fact, or exit *)
                       (match last_instr with
                        | X64.Isa.Callrt
                            (X64.Isa.Malloc | X64.Isa.Free | X64.Isa.Exit) ->
                          false
                        | _ -> true)
                       && List.for_all
                            (fun r ->
                              not (List.mem r (X64.Isa.defs last_instr)))
                            regs
                     in
                     if
                       patch_ok && lo < hi
                       && X64.Encode.fits_i32 lo
                       && X64.Encode.fits_i32 hi
                       && List.for_all (invariant_reg t l) regs
                     then
                       let h_addr, _, _ = g.Graph.instrs.(pb.Graph.last) in
                       Some
                         {
                           h_index = pb.Graph.last;
                           h_addr;
                           h_mem = wmem;
                           h_lo = lo;
                           h_hi = hi;
                         }
                     else None)))))
