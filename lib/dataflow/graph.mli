(** Explicit basic-block graph over a recovered instruction stream.

    Shared substrate of the dominator, liveness and availability
    analyses, and of the rewrite-soundness linter.  Leader recovery is
    exposed so the rewriter's CFG uses the exact same block structure
    as the linter's re-disassembly. *)

type block = {
  id : int;
  first : int;  (** index of the block's first instruction *)
  last : int;   (** index of the block's last instruction (inclusive) *)
  addr : int;
  term : X64.Isa.flow;
  mutable succs : int list;
      (** successor block ids, including direct-call target edges *)
  mutable fall_succs : int list;
      (** successors excluding call-target edges (liveness view:
          calls are summarized by the ABI, not traversed) *)
  mutable preds : int list;
}

type t = {
  instrs : (int * X64.Isa.instr * int) array;
  index_of : (int, int) Hashtbl.t;
  leaders : (int, unit) Hashtbl.t;
  roots : int list;
  blocks : block array;
  block_of : int array;
  rpo : int array;
  rpo_index : int array;
}

val leaders :
  entry:int ->
  (int * X64.Isa.instr * int) array ->
  (int, unit) Hashtbl.t * (int, unit) Hashtbl.t
(** [leaders ~entry instrs]: (all leaders, potential indirect-transfer
    targets).  The single source of truth for block boundaries — the
    rewriter's [Cfg.recover] delegates here. *)

val of_instrs : entry:int -> (int * X64.Isa.instr * int) array -> t

val num_blocks : t -> int
val block : t -> int -> block
val block_of_instr : t -> int -> int
val index_at : t -> int -> int option
val is_leader : t -> int -> bool
val roots : t -> int list
val rpo : t -> int array

val reachable : t -> int -> bool
(** Reachable from some root along graph edges.  Unreachable blocks
    may still execute (indirect transfers the graph cannot see), so
    optimizations must treat them conservatively. *)
