(** Forward "available checks" analysis.

    A fact means: on every graph path to this point some site emitted
    a check of a given variant covering a displacement interval off an
    address expression (seg, base, idx, scale), and nothing since has
    redefined the expression's registers or made a call (which could
    free the guarded object).  The join intersects facts requiring the
    {e same generating site}, so an available fact's site lies on
    every path to its point of use. *)

type key = {
  seg : int;
  base : X64.Isa.reg option;
  idx : X64.Isa.reg option;
  scale : int;
}

type info = {
  lo : int;                      (** covered displacement interval... *)
  hi : int;                      (** ...[lo, hi), relative to [key] *)
  site : int;                    (** instruction index of the check site *)
  variant : X64.Isa.variant;
}

type fact = Top | Facts of (key * info) list

val key_of_mem : X64.Isa.mem -> key
(** The address expression of a memory operand (displacement dropped). *)

val covers : info -> variant:X64.Isa.variant -> lo:int -> hi:int -> bool
(** Does the fact justify skipping a check of [variant] over [lo, hi)?
    A [Redzone]-only fact never stands in for a [Full] check. *)

val join : fact -> fact -> fact

val transfer_instr :
  gen:(int -> (key * info) list) ->
  int ->
  X64.Isa.instr ->
  fact ->
  fact
(** One instruction: gen (the site's checks run first), then kill
    (registers redefined; everything on a call). *)

type t

val solve : Graph.t -> gen:(int -> (key * info) list) -> t
(** [gen] maps an instruction index to the facts the (planned or
    discovered) check site patched at that instruction establishes. *)

val available_before : t -> int -> (key * info) list
(** Facts available immediately before an instruction, excluding the
    instruction's own site.  Empty for unreachable blocks. *)

val find : (key * info) list -> key -> info option
