(** Interblock backward liveness of registers and %eflags.

    Replaces the rewriter's conservative "everything live past the
    block edge" cutoff: a register is dead at an instrumentation point
    iff it is written before read on {e every} path from the point, so
    trampolines can use it as scratch without a save.

    Facts are bitmasks: bits 0..15 the registers, bit 16 the flags.
    Calls are summarized by the SysV-style ABI this toolchain's
    codegen follows (arguments on the stack, results in %rax,
    caller-saved clobbered, flags clobbered) instead of being
    traversed; an indirect jump is fully conservative. *)

let flags_bit = 1 lsl 16
let reg_bit (r : X64.Isa.reg) = 1 lsl r
let all_live = (1 lsl 17) - 1

let mask_of_regs = List.fold_left (fun m r -> m lor reg_bit r) 0

let caller_saved_regs =
  X64.Isa.[ rax; rcx; rdx; rsi; rdi; r8; r9; r10; r11 ]

let caller_saved_mask = mask_of_regs caller_saved_regs
let callee_saved_mask =
  mask_of_regs X64.Isa.[ rbx; rbp; r12; r13; r14; r15 ] lor reg_bit X64.Isa.rsp

(* live-before from live-after for one instruction *)
let transfer_instr (i : X64.Isa.instr) (live : int) : int =
  let live =
    match X64.Isa.flow_of i with
    | To_call _ | Dyn_call ->
      (* ABI summary: the callee clobbers caller-saved registers and
         the flags, receives arguments on the stack, and preserves the
         rest *)
      (live land lnot caller_saved_mask land lnot flags_bit)
      lor reg_bit X64.Isa.rsp
    | _ -> live
  in
  let live = List.fold_left (fun m r -> m land lnot (reg_bit r)) live (X64.Isa.defs i) in
  let live = if X64.Isa.writes_flags i then live land lnot flags_bit else live in
  let live = List.fold_left (fun m r -> m lor reg_bit r) live (X64.Isa.uses i) in
  if X64.Isa.reads_flags i then live lor flags_bit else live

let exit_live (b : Graph.block) : int =
  match b.Graph.term with
  | Stop ->
    (* ret/hlt: the result register, the stack pointer, and the
       callee-saved registers (whose values flow back to the caller
       per the ABI) survive; caller-saved values and flags do not *)
    reg_bit X64.Isa.rax lor callee_saved_mask
  | _ ->
    (* indirect jump, or a block falling off the end of the text:
       assume everything live *)
    all_live

module Problem = struct
  type fact = int

  let equal = Int.equal
  let direction = `Backward
  let init = 0
  let boundary = 0 (* unused: exits are handled in [transfer] *)
  let join = ( lor )
  let succs _ (b : Graph.block) = b.Graph.fall_succs

  let transfer (g : Graph.t) (b : Graph.block) (out : int) : int =
    let live = ref (if b.Graph.fall_succs = [] then exit_live b else out) in
    for i = b.Graph.last downto b.Graph.first do
      let _, instr, _ = g.Graph.instrs.(i) in
      live := transfer_instr instr !live
    done;
    !live
end

module S = Solver.Make (Problem)

type t = { graph : Graph.t; live_in : int array; live_out : int array }

let solve (g : Graph.t) : t =
  let r = S.solve g in
  (* recompute out-facts with the exit boundary applied, for clients
     reading [live_out] directly *)
  let live_out =
    Array.map
      (fun (b : Graph.block) ->
        if b.Graph.fall_succs = [] then exit_live b else r.S.out_facts.(b.Graph.id))
      g.Graph.blocks
  in
  { graph = g; live_in = r.S.in_facts; live_out }

let live_in t b = t.live_in.(b)
let live_out t b = t.live_out.(b)

(** Liveness fact immediately before instruction [index]. *)
let live_before t (index : int) : int =
  let g = t.graph in
  let bid = Graph.block_of_instr g index in
  let b = Graph.block g bid in
  let live = ref t.live_out.(bid) in
  for i = b.Graph.last downto index do
    let _, instr, _ = g.Graph.instrs.(i) in
    live := transfer_instr instr !live
  done;
  !live

let is_live mask (r : X64.Isa.reg) = mask land reg_bit r <> 0
let flags_live mask = mask land flags_bit <> 0
