(* Function-granular partition of a recovered instruction stream; see
   funs.mli for the isolation conditions and the equivalence
   argument. *)

type fn = {
  f_first : int;
  f_count : int;
  f_addr : int;
  f_len : int;
}

let partition ~text_addr (instrs : (int * X64.Isa.instr * int) array) :
    fn list option =
  let n = Array.length instrs in
  if n = 0 then None
  else begin
    let a0, _, _ = instrs.(0) in
    (* the stream must start at the text base and cover it gaplessly
       (a desynchronized sweep leaves bytes no region owns) *)
    let contiguous =
      a0 = text_addr
      && (let ok = ref true in
          for i = 1 to n - 1 do
            let a, _, _ = instrs.(i) in
            let pa, _, pl = instrs.(i - 1) in
            if a <> pa + pl then ok := false
          done;
          !ok)
    in
    if not contiguous then None
    else begin
      let index_of = Hashtbl.create n in
      Array.iteri (fun i (a, _, _) -> Hashtbl.replace index_of a i) instrs;
      (* region starts: entry, aligned call targets, aligned
         code-pointer constants (the same instructions Graph.leaders
         treats as indirect-transfer targets) *)
      let start_set = Hashtbl.create 16 in
      Hashtbl.replace start_set 0 ();
      Array.iter
        (fun (_, ins, _) ->
          let mark t =
            match Hashtbl.find_opt index_of t with
            | Some i -> Hashtbl.replace start_set i ()
            | None -> ()
          in
          match ins with
          | X64.Isa.Call t -> mark t
          | X64.Isa.Mov_ri (_, v) -> mark v
          | _ -> ())
        instrs;
      let starts =
        Array.of_list
          (List.sort compare
             (Hashtbl.fold (fun i () acc -> i :: acc) start_set []))
      in
      let nf = Array.length starts in
      if nf < 2 then None
      else begin
        let fn_of = Array.make n 0 in
        for f = 0 to nf - 1 do
          let lo = starts.(f) in
          let hi = if f + 1 < nf then starts.(f + 1) - 1 else n - 1 in
          for i = lo to hi do
            fn_of.(i) <- f
          done
        done;
        let ok = ref true in
        Array.iteri
          (fun i (_, ins, _) ->
            (* aligned jump targets stay within their region *)
            (match X64.Isa.flow_of ins with
            | X64.Isa.Goto t | X64.Isa.Branch t -> (
              match Hashtbl.find_opt index_of t with
              | Some ti -> if fn_of.(ti) <> fn_of.(i) then ok := false
              | None -> ())
            | _ -> ());
            (* a region's final instruction must not reach the next
               region implicitly (fall-through, branch fall edge, or a
               call's return edge) *)
            if i < n - 1 && fn_of.(i + 1) <> fn_of.(i) then
              match X64.Isa.flow_of ins with
              | X64.Isa.Stop | X64.Isa.Dyn_goto -> ()
              | X64.Isa.Goto _ -> () (* target locality checked above *)
              | X64.Isa.Fall | X64.Isa.Branch _ | X64.Isa.To_call _
              | X64.Isa.Dyn_call ->
                ok := false)
          instrs;
        if not !ok then None
        else begin
          (* reachability must agree: DFS from each region start over
             the non-call edges (exactly the edges a region graph has)
             versus the whole graph's root reachability *)
          let g = Graph.of_instrs ~entry:text_addr instrs in
          let nb = Graph.num_blocks g in
          let seen = Array.make nb false in
          let rec dfs b =
            if not seen.(b) then begin
              seen.(b) <- true;
              List.iter dfs (Graph.block g b).Graph.fall_succs
            end
          in
          Array.iter (fun s -> dfs g.Graph.block_of.(s)) starts;
          for b = 0 to nb - 1 do
            if seen.(b) <> Graph.reachable g b then ok := false
          done;
          if not !ok then None
          else
            Some
              (List.init nf (fun f ->
                   let first = starts.(f) in
                   let count =
                     (if f + 1 < nf then starts.(f + 1) else n) - first
                   in
                   let addr, _, _ = instrs.(first) in
                   let last = first + count - 1 in
                   let la, _, ll = instrs.(last) in
                   { f_first = first; f_count = count; f_addr = addr;
                     f_len = la + ll - addr }))
        end
      end
    end
  end
