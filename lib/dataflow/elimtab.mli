(** The elimination table ([.elimtab] section): a hardened binary's
    record of every check the rewriter chose not to emit, with a
    machine-checkable justification per site, plus the instrumentation
    policy (whether reads/writes were instrumented at all). *)

type reason =
  | Clear          (** syntactic rule: operand cannot reach the heap *)
  | Dom of int     (** covered by the check at this patch address *)
  | Skip
      (** degraded to uninstrumented after a site fault: weaker but
          sound, and recorded so the linter can tell an audited
          downgrade from a rewriter bug *)
  | Hoist of int * int * int
      (** [Hoist (site, lo, hi)]: covered by a widened loop-preheader
          check at patch address [site] whose hull spans displacements
          [lo, hi) relative to the widened operand.  Proof-carrying:
          the linter re-derives the hull with {!Loops.member_hoist}
          and rejects the binary unless the recorded hull subsumes the
          derived one and the covering check is really available. *)

type t = {
  backend : string;
      (** check backend that hardened the binary ({!default_backend}
          when the policy line carries no [backend=] token, so
          pre-backend binaries parse unchanged) *)
  reads : bool;
  writes : bool;
  entries : (int * reason) list;
}

val section_name : string

val default_backend : string
(** ["lowfat"]: the backend assumed — and omitted from {!render} — when
    no [backend=] token is recorded. *)

val default : t
(** reads and writes instrumented, nothing eliminated, default backend
    — the assumption for hardened binaries predating the elimination
    table. *)

val render : t -> string
val parse : string -> (t, string) result
