(** Block-local copy/constant canonicalization of memory operands:
    rewrite an operand's registers to the oldest registers provably
    holding the same values at that instruction (following [mov]
    chains within the block), and fold registers holding known
    constants into the displacement.  Merge keys, check operands and
    availability facts all become canonical — and the soundness linter
    applies the same function, keeping its proof obligations in sync
    with the optimizer. *)

val operand : Graph.t -> int -> X64.Isa.mem -> X64.Isa.mem
(** [operand g index m]: the canonical form of [m] as seen by
    instruction [index].  Evaluates to the same address as [m] at that
    instruction, and at any earlier point of the block after which the
    canonical registers are not redefined. *)
