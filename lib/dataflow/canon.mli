(** Block-local copy/constant canonicalization of memory operands:
    rewrite an operand's registers to the oldest registers provably
    holding the same values at that instruction (following [mov]
    chains within the block), and fold registers holding known
    constants into the displacement.  Merge keys, check operands and
    availability facts all become canonical — and the soundness linter
    applies the same function, keeping its proof obligations in sync
    with the optimizer. *)

type state = {
  copy : int option array;
      (** register -> canonical register holding the same value *)
  konst : int option array;  (** register -> known constant value *)
}
(** Per-register knowledge at a program point.  Exposed so loop
    analysis ({!Loops}) can evaluate the same copy/constant lattice
    over instruction ranges that are not the prefix of a member's own
    block (preheaders, guard blocks). *)

val fresh : unit -> state
(** The empty state: nothing known about any register. *)

val canon_reg : state -> X64.Isa.reg -> X64.Isa.reg
(** The oldest register provably holding the same value, or the
    register itself. *)

val step : state -> X64.Isa.instr -> unit
(** Advance the state across one instruction ([mov] chains propagate
    copies and constants; any other definition invalidates). *)

val operand : Graph.t -> int -> X64.Isa.mem -> X64.Isa.mem
(** [operand g index m]: the canonical form of [m] as seen by
    instruction [index].  Evaluates to the same address as [m] at that
    instruction, and at any earlier point of the block after which the
    canonical registers are not redefined. *)
