(** Generic worklist fixpoint solver, functorized over the lattice.

    One engine for every analysis in this library: a problem supplies
    the fact type, the join, the boundary fact for roots (forward) or
    exits (backward), and a per-block transfer; the solver seeds the
    worklist in reverse postorder (forward) or its reverse (backward)
    and iterates to the fixpoint.

    Facts must form a lattice of finite height under [join] (all
    clients here use finite bitmasks or finite fact sets), which
    guarantees termination. *)

module type PROBLEM = sig
  type fact

  val equal : fact -> fact -> bool
  val direction : [ `Forward | `Backward ]

  val init : fact
  (** Optimistic starting value for every non-boundary node. *)

  val boundary : fact
  (** Fact at roots (forward) / at blocks without successors
      (backward). *)

  val join : fact -> fact -> fact

  val succs : Graph.t -> Graph.block -> int list
  (** Which edge relation the problem flows along (e.g. liveness uses
      [fall_succs], availability uses [succs]). *)

  val transfer : Graph.t -> Graph.block -> fact -> fact
end

module Make (P : PROBLEM) = struct
  type result = { in_facts : P.fact array; out_facts : P.fact array }

  let solve (g : Graph.t) : result =
    let nb = Graph.num_blocks g in
    let in_facts = Array.make nb P.init in
    let out_facts = Array.make nb P.init in
    if nb = 0 then { in_facts; out_facts }
    else begin
      (* flow-predecessors under the problem's edge relation *)
      let fpreds = Array.make nb [] in
      Array.iter
        (fun (b : Graph.block) ->
          List.iter (fun s -> fpreds.(s) <- b.id :: fpreds.(s)) (P.succs g b))
        g.Graph.blocks;
      let order =
        (* reachable blocks in rpo first, then the rest in id order so
           unreachable code still gets (conservative) facts *)
        let seen = Array.make nb false in
        let l = ref [] in
        Array.iter
          (fun b ->
            seen.(b) <- true;
            l := b :: !l)
          g.Graph.rpo;
        Array.iter
          (fun (b : Graph.block) -> if not seen.(b.id) then l := b.id :: !l)
          g.Graph.blocks;
        let l = List.rev !l in
        match P.direction with `Forward -> l | `Backward -> List.rev l
      in
      let on_list = Array.make nb false in
      let q = Queue.create () in
      List.iter
        (fun b ->
          Queue.add b q;
          on_list.(b) <- true)
        order;
      let is_root =
        let a = Array.make nb false in
        List.iter (fun r -> a.(r) <- true) (Graph.roots g);
        a
      in
      while not (Queue.is_empty q) do
        let b = Queue.take q in
        on_list.(b) <- false;
        let blk = Graph.block g b in
        match P.direction with
        | `Forward ->
          let inp =
            let preds = fpreds.(b) in
            let base = if is_root.(b) || preds = [] then Some P.boundary else None in
            let joined =
              List.fold_left
                (fun acc p ->
                  match acc with
                  | None -> Some out_facts.(p)
                  | Some f -> Some (P.join f out_facts.(p)))
                base preds
            in
            Option.value joined ~default:P.init
          in
          in_facts.(b) <- inp;
          let out = P.transfer g blk inp in
          if not (P.equal out out_facts.(b)) then begin
            out_facts.(b) <- out;
            List.iter
              (fun s ->
                if not on_list.(s) then begin
                  Queue.add s q;
                  on_list.(s) <- true
                end)
              (P.succs g blk)
          end
        | `Backward ->
          let succs = P.succs g blk in
          let out =
            match succs with
            | [] -> P.boundary
            | s :: rest ->
              List.fold_left (fun acc x -> P.join acc in_facts.(x)) in_facts.(s)
                rest
          in
          out_facts.(b) <- out;
          let inp = P.transfer g blk out in
          if not (P.equal inp in_facts.(b)) then begin
            in_facts.(b) <- inp;
            (* re-queue the blocks that read in(b): predecessors under
               the problem's own edge relation *)
            List.iter
              (fun p ->
                if not on_list.(p) then begin
                  Queue.add p q;
                  on_list.(p) <- true
                end)
              fpreds.(b)
          end
      done;
      { in_facts; out_facts }
    end
end
