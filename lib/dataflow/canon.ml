(** Block-local copy/constant canonicalization of memory operands.

    The code generator churns through temporaries: the same logical
    access [a\[i\]] appears as [(%r8,%r9,8)] at one site and
    [(%r9,%r10,8)] at the next, both registers freshly copied from the
    stable [%r12]/[%rbx].  Register-named availability facts and merge
    keys cannot see through the copies, so every redundancy analysis
    downstream would come up empty.

    [operand] rewrites an operand's registers to the oldest registers
    provably holding the same values at that instruction — following
    [mov] chains within the basic block — and folds registers holding
    known constants into the displacement.  The canonical operand
    evaluates to the same address at the instruction itself, and (the
    property batching and availability rely on) at any earlier point
    of the block after which the canonical registers are not
    redefined.

    Both the rewriter (member collection, so merge keys, check
    operands and availability facts are canonical) and the soundness
    linter (operand classification) call this same function — the
    agreement of the two is what keeps the linter's proof obligations
    in sync with the optimizer. *)

(* per-register knowledge at a program point *)
type state = {
  copy : int option array;   (* r holds the same value as this register *)
  konst : int option array;  (* r holds this known constant *)
}

let fresh () =
  {
    copy = Array.make X64.Isa.num_regs None;
    konst = Array.make X64.Isa.num_regs None;
  }

let canon_reg (st : state) (r : X64.Isa.reg) : X64.Isa.reg =
  match st.copy.(r) with Some s -> s | None -> r

(* r's value is redefined: it canonicalizes to itself again, and any
   chain naming r as its canonical root dies (the holders keep the old
   value, but the name no longer denotes it) *)
let invalidate (st : state) (r : X64.Isa.reg) =
  st.copy.(r) <- None;
  st.konst.(r) <- None;
  Array.iteri (fun x c -> if c = Some r then st.copy.(x) <- None) st.copy

let step (st : state) (instr : X64.Isa.instr) =
  match instr with
  | X64.Isa.Mov_rr (d, s) ->
    let c = canon_reg st s in
    let k = st.konst.(s) in
    invalidate st d;
    if c <> d then st.copy.(d) <- Some c;
    st.konst.(d) <- k
  | X64.Isa.Mov_ri (d, v) ->
    invalidate st d;
    st.konst.(d) <- Some v
  | _ -> List.iter (invalidate st) (X64.Isa.defs instr)

(** Canonical form of [m] as seen by instruction [index]. *)
let operand (g : Graph.t) (index : int) (m : X64.Isa.mem) : X64.Isa.mem =
  let b = Graph.block g (Graph.block_of_instr g index) in
  let st = fresh () in
  for i = b.Graph.first to index - 1 do
    let _, instr, _ = g.Graph.instrs.(i) in
    step st instr
  done;
  (* constant-fold first (a register holding a known constant becomes
     displacement), then rename what remains to canonical copies *)
  let m =
    match m.X64.Isa.base with
    | Some r when st.konst.(r) <> None ->
      let d = m.X64.Isa.disp + Option.get st.konst.(r) in
      if X64.Encode.fits_i32 d then { m with X64.Isa.base = None; disp = d }
      else m
    | _ -> m
  in
  let m =
    match m.X64.Isa.idx with
    | Some r when st.konst.(r) <> None ->
      let d = m.X64.Isa.disp + (Option.get st.konst.(r) * m.X64.Isa.scale) in
      if X64.Encode.fits_i32 d then
        { m with X64.Isa.idx = None; disp = d; scale = 1 }
      else m
    | _ -> m
  in
  let m =
    match m.X64.Isa.base with
    | Some r -> { m with X64.Isa.base = Some (canon_reg st r) }
    | None -> m
  in
  match m.X64.Isa.idx with
  | Some r -> { m with X64.Isa.idx = Some (canon_reg st r) }
  | None -> m
