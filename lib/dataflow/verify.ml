(** Rewrite-soundness linter: audit a hardened binary from the file
    alone, statically proving every memory operand is

    - {e checked} — displaced into a trampoline whose own checks cover
      its operand and displacement range;
    - {e covered} — a check emitted at a dominating patch site is
      available (same address expression, covering range, no
      redefinition or call in between) — the case of batch members
      beyond the patched span and of globally-eliminated checks;
    - {e eliminated with a recorded justification} — the [.elimtab]
      entry's rule re-verifies ([clear]: the syntactic
      never-reaches-the-heap rule; [dom]: an available dominating
      check; [hoist]: a proof-carrying loop hoist — the linter
      re-derives the access hull with the same {!Loops.member_hoist}
      the rewriter planned from, and requires the recorded hull to
      subsume the derived one {e and} the widened covering check to be
      genuinely available from the recorded preheader site);
    - {e allow-listed} — explicitly accepted by the caller; or
    - excluded by the recorded instrumentation {e policy}
      (reads/writes not instrumented).

    Additionally, every trampoline check's variant must be one the
    binary's recorded check backend ([.elimtab] [backend=] token) can
    emit — its primary plan or its degradation fallback.

    Anything else is reported as unaccounted and fails the lint.

    The audit rebuilds the original program from the hardened one: the
    trampolines in [.redfat] are decoded into units (checks, displaced
    instructions, back-jump), each unit's displaced instructions are
    re-encoded at their original addresses (recovered from the
    back-jump target), the patch entry (jump or trap) is
    cross-checked, and the block graph is re-derived with the same
    {!Graph.leaders} the rewriter used — so the linter's dominator and
    availability analyses run on provably the same structure the
    rewriter optimized against. *)

type status =
  | Checked
  | Covered of int          (** covering patch-site address *)
  | Eliminated_clear
  | Eliminated_dom of int   (** justifying patch-site address *)
  | Eliminated_hoist of int (** justifying preheader patch-site address *)
  | Policy_skipped
  | Degraded                (** recorded [skip] downgrade after a site fault *)
  | Allowlisted

type failure = { f_addr : int; f_reason : string }

type report = {
  total : int;              (** memory operands examined *)
  checked : int;
  covered : int;
  elim_clear : int;
  elim_dom : int;
  elim_hoist : int;         (** proved loop-hoist subsumptions *)
  policy_skipped : int;
  degraded : int;           (** recorded [skip] downgrades *)
  allowlisted : int;
  units : int;              (** trampoline units decoded *)
  failures : failure list;
}

let ok (r : report) = r.failures = []

(* one trampoline unit: [checks] [displaced instruction(s)] [jmp back] *)
type tunit = {
  u_tramp : int;                   (* trampoline address of the unit *)
  u_patch : int;                   (* original address of first displaced *)
  u_span : int;                    (* original bytes covered by the patch *)
  u_checks : X64.Isa.check list;
  u_displaced : X64.Isa.instr list;
}

let parse_units ~(rf_addr : int) ~(rf_len : int)
    (instrs : (int * X64.Isa.instr * int) list) :
    tunit list * failure list =
  let in_tramp a = a >= rf_addr && a < rf_addr + rf_len in
  let units = ref [] and errs = ref [] and cur = ref [] in
  let fail a m = errs := { f_addr = a; f_reason = m } :: !errs in
  let finish back (body : (int * X64.Isa.instr * int) list) =
    match body with
    | [] -> fail back "trampoline unit with no body"
    | (u_tramp, _, _) :: _ ->
      let rec split_checks acc = function
        | (_, X64.Isa.Check ck, _) :: rest -> split_checks (ck :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let checks, disp = split_checks [] body in
      if
        List.exists
          (function _, X64.Isa.Check _, _ -> true | _ -> false)
          disp
      then fail u_tramp "check after displaced instruction in trampoline unit"
      else if disp = [] then
        fail u_tramp "trampoline unit displaces no instruction"
      else begin
        let span = List.fold_left (fun s (_, _, l) -> s + l) 0 disp in
        units :=
          {
            u_tramp;
            u_patch = back - span;
            u_span = span;
            u_checks = checks;
            u_displaced = List.map (fun (_, i, _) -> i) disp;
          }
          :: !units
      end
  in
  List.iter
    (fun (a, i, l) ->
      match i with
      | X64.Isa.Jmp t when not (in_tramp t) ->
        finish t (List.rev !cur);
        cur := []
      | _ -> cur := (a, i, l) :: !cur)
    instrs;
  (match !cur with
  | [] -> ()
  | (a, _, _) :: _ -> fail a "trailing trampoline code without a back-jump");
  (List.rev !units, List.rev !errs)

(* the syntactic elimination rule, re-verified independently of the
   rewriter: no index register, and either no base (absolute address
   clear of the heap) or an rsp base *)
let clear_rule (m : X64.Isa.mem) ~(bytes : int) : bool =
  m.idx = None
  && (match m.base with
     | None ->
       Lowfat.Layout.addr_range_clear_of_heap ~lo:m.disp ~hi:(m.disp + bytes)
     | Some r -> r = X64.Isa.rsp)

let run ?(allow : int list = []) ~(traps : (int * int) list)
    (binary : Binfmt.Relf.t) : (report, string) result =
  match Binfmt.Relf.find_section binary ".text" with
  | None -> Error "no .text section"
  | Some text -> (
    match Binfmt.Relf.find_section binary ".redfat" with
    | None -> Error "not a hardened binary (no .redfat section)"
    | Some rf -> (
      let elimtab =
        match Binfmt.Relf.find_section binary Elimtab.section_name with
        | None -> Ok Elimtab.default
        | Some s -> Elimtab.parse s.bytes
      in
      match elimtab with
      | Error e -> Error e
      | Ok etab ->
        let failures = ref [] in
        let fail a m = failures := { f_addr = a; f_reason = m } :: !failures in
        (* 1. decode the trampoline section into units *)
        let tinstrs = X64.Disasm.sweep ~addr:rf.addr rf.bytes in
        let units, uerrs =
          parse_units ~rf_addr:rf.addr ~rf_len:(String.length rf.bytes) tinstrs
        in
        failures := List.rev_append uerrs !failures;
        (* the backend rule: every trampoline check must carry a variant
           the recorded backend can legitimately emit (its primary plan
           or its degradation fallback) — a temporal binary full of Full
           checks, or vice versa, is mislabelled and unauditable *)
        (match Backend.Check_backend.of_name etab.backend with
         | None ->
           fail 0
             (Printf.sprintf ".elimtab records unknown check backend %S"
                etab.backend)
         | Some b ->
           let ok_variants = Backend.Check_backend.allowed_variants b in
           List.iter
             (fun u ->
               List.iter
                 (fun (ck : X64.Isa.check) ->
                   if not (List.mem ck.ck_variant ok_variants) then
                     fail u.u_patch
                       (Printf.sprintf
                          "check variant not emittable by recorded %s backend"
                          etab.backend))
                 u.u_checks)
             units);
        (* 2. validate each patch entry and restore the original text *)
        let tlen = String.length text.bytes in
        let buf = Bytes.of_string text.bytes in
        let traps_tbl = Hashtbl.create 16 in
        List.iter (fun (a, t) -> Hashtbl.replace traps_tbl a t) traps;
        let units =
          List.filter
            (fun u ->
              let off = u.u_patch - text.addr in
              if off < 0 || off + u.u_span > tlen then begin
                fail u.u_tramp
                  "trampoline back-jump implies a patch outside .text";
                false
              end
              else begin
                (match Hashtbl.find_opt traps_tbl u.u_patch with
                | Some t ->
                  if t <> u.u_tramp then
                    fail u.u_patch "trap table disagrees with trampoline unit";
                  if Char.code (Bytes.get buf off) <> X64.Encode.op_trap then
                    fail u.u_patch "trap table entry without a trap byte"
                | None ->
                  let jmp =
                    X64.Encode.encode_seq ~addr:u.u_patch
                      [ X64.Isa.Jmp u.u_tramp ]
                  in
                  let jl = String.length jmp in
                  if
                    u.u_span < jl
                    || Bytes.sub_string buf off jl <> jmp
                  then
                    fail u.u_patch
                      "patched site neither jumps nor traps to its trampoline");
                let restored =
                  X64.Encode.encode_seq ~addr:u.u_patch u.u_displaced
                in
                if String.length restored <> u.u_span then begin
                  fail u.u_patch
                    "displaced instructions do not re-encode to the patch span";
                  false
                end
                else begin
                  Bytes.blit_string restored 0 buf off u.u_span;
                  true
                end
              end)
            units
        in
        (* 3. re-derive the program structure the rewriter saw *)
        let instrs =
          Array.of_list
            (X64.Disasm.sweep ~addr:text.addr (Bytes.to_string buf))
        in
        let graph = Graph.of_instrs ~entry:text.addr instrs in
        let dom = Dom.compute graph in
        (* checks discovered in trampolines, as availability gen facts *)
        let gen_tbl = Hashtbl.create 64 in
        let displaced_at = Hashtbl.create 64 in
        List.iter
          (fun u ->
            match Graph.index_at graph u.u_patch with
            | None ->
              fail u.u_patch
                "patch address is not an instruction boundary after restoration"
            | Some i0 ->
              Hashtbl.replace gen_tbl i0
                (List.map
                   (fun (ck : X64.Isa.check) ->
                     ( Avail.key_of_mem ck.ck_mem,
                       {
                         Avail.lo = ck.ck_lo;
                         hi = ck.ck_hi;
                         site = i0;
                         variant = ck.ck_variant;
                       } ))
                   u.u_checks);
              (* original addresses occupied by the displaced run *)
              ignore
                (List.fold_left
                   (fun a i ->
                     Hashtbl.replace displaced_at a u;
                     a + X64.Encode.length i)
                   u.u_patch u.u_displaced))
          units;
        let gen i = Option.value (Hashtbl.find_opt gen_tbl i) ~default:[] in
        let avail = Avail.solve graph ~gen in
        (* the loop forest, for re-deriving recorded hoist hulls; lazy
           so binaries without hoist records pay nothing *)
        let loops = lazy (Loops.analyze graph dom) in
        let elims = Hashtbl.create 16 in
        List.iter (fun (a, r) -> Hashtbl.replace elims a r) etab.entries;
        let allowed = Hashtbl.create 16 in
        List.iter (fun a -> Hashtbl.replace allowed a ()) allow;
        (* 4. the proof obligation, per memory operand *)
        let site_addr idx =
          let a, _, _ = instrs.(idx) in
          a
        in
        let covered_by idx (m : X64.Isa.mem) ~bytes =
          match
            Avail.find (Avail.available_before avail idx) (Avail.key_of_mem m)
          with
          | Some info
            when info.Avail.lo <= m.disp
                 && info.hi >= m.disp + bytes
                 && Dom.dominates_instr dom ~def:info.site ~use:idx ->
            Some (site_addr info.site)
          | _ -> None
        in
        let unit_checks_cover (u : tunit) (m : X64.Isa.mem) ~bytes =
          let key = Avail.key_of_mem m in
          List.exists
            (fun (ck : X64.Isa.check) ->
              Avail.key_of_mem ck.ck_mem = key
              && ck.ck_lo <= m.disp
              && ck.ck_hi >= m.disp + bytes)
            u.u_checks
        in
        let total = ref 0 in
        let checked = ref 0 and covered = ref 0 in
        let elim_clear = ref 0 and elim_dom = ref 0 and elim_hoist = ref 0 in
        let policy_skipped = ref 0 and allowlisted = ref 0 in
        let degraded = ref 0 in
        (* the proof obligation of a recorded [hoist s lo hi] entry:
           (1) this access re-derives as hoistable (same shared
           [Loops.member_hoist] the rewriter planned from); (2) the
           recorded hull subsumes the independently derived hull — a
           tampered (narrowed) hull fails here; (3) a check over the
           widened operand covering the recorded hull is genuinely
           available from site [s], which dominates the access.  [s]
           is the preheader check, or — when global elimination
           dropped that check as itself covered — the dominating
           covering site.  (1)+(2)+(3) chain into: an emitted widened
           check covers every address this access touches across the
           loop. *)
        let audit_hoist a idx (m : X64.Isa.mem) ~bytes s rl rh =
          match Loops.member_hoist (Lazy.force loops) ~index:idx ~mem:m ~bytes with
          | None ->
            fail a
              (Printf.sprintf
                 "recorded hoist at %#x cannot be re-derived as a provable \
                  loop hoist"
                 s)
          | Some d ->
            if not (rl <= d.Loops.h_lo && rh >= d.Loops.h_hi) then
              fail a
                (Printf.sprintf
                   "recorded hoist hull [%d,%d) does not subsume the derived \
                    access hull [%d,%d)"
                   rl rh d.Loops.h_lo d.Loops.h_hi)
            else
              match
                Avail.find
                  (Avail.available_before avail idx)
                  (Avail.key_of_mem d.Loops.h_mem)
              with
              | Some info
                when info.Avail.lo <= rl && info.hi >= rh
                     && site_addr info.site = s
                     && Dom.dominates_instr dom ~def:info.site ~use:idx ->
                incr elim_hoist
              | _ ->
                fail a
                  (Printf.sprintf
                     "hoisted covering check at %#x is not available at the \
                      access"
                     s)
        in
        Array.iteri
          (fun idx (a, instr, _len) ->
            match X64.Isa.mem_operand instr with
            | None -> ()
            | Some (m, w, write) -> (
              incr total;
              (* the rewriter collected this operand in canonical form
                 (copies renamed, constants folded — {!Canon}); the
                 proof obligation must examine the same form *)
              let m = Canon.operand graph idx m in
              let bytes = X64.Isa.width_bytes w in
              let wanted = if write then etab.writes else etab.reads in
              if not wanted then incr policy_skipped
              else
                match Hashtbl.find_opt elims a with
                | Some (Elimtab.Hoist (s, rl, rh)) ->
                  (* a hoist record is always audited in full — being
                     incidentally covered by some other check would not
                     prove the recorded justification *)
                  audit_hoist a idx m ~bytes s rl rh
                | record -> (
                  let in_unit =
                    match Hashtbl.find_opt displaced_at a with
                    | Some u when unit_checks_cover u m ~bytes -> true
                    | _ -> false
                  in
                  if in_unit then incr checked
                  else
                    match covered_by idx m ~bytes with
                    | Some _site -> (
                      match record with
                      | Some (Elimtab.Dom s) ->
                        incr elim_dom;
                        ignore s
                      | _ -> incr covered)
                    | None -> (
                      match record with
                      | Some Elimtab.Clear ->
                        if clear_rule m ~bytes then incr elim_clear
                        else
                          fail a
                            "recorded 'clear' elimination fails the syntactic \
                             rule"
                      | Some (Elimtab.Dom s) ->
                        fail a
                          (Printf.sprintf
                             "recorded dominating check at %#x is not available"
                             s)
                      | Some Elimtab.Skip -> incr degraded
                      | Some (Elimtab.Hoist _) -> assert false (* handled above *)
                      | None ->
                        if Hashtbl.mem allowed a then incr allowlisted
                        else fail a "unaccounted memory access"))))
          instrs;
        Ok
          {
            total = !total;
            checked = !checked;
            covered = !covered;
            elim_clear = !elim_clear;
            elim_dom = !elim_dom;
            elim_hoist = !elim_hoist;
            policy_skipped = !policy_skipped;
            degraded = !degraded;
            allowlisted = !allowlisted;
            units = List.length units;
            failures = List.rev !failures;
          }))

let pp_report fmt (r : report) =
  Format.fprintf fmt
    "@[<v>memory operands:   %d@,\
     checked in unit:   %d@,\
     covered by dom:    %d@,\
     eliminated clear:  %d@,\
     eliminated dom:    %d@,\
     eliminated hoist:  %d@,\
     policy skipped:    %d@,\
     degraded (skip):   %d@,\
     allow-listed:      %d@,\
     trampoline units:  %d@,\
     unaccounted:       %d@]"
    r.total r.checked r.covered r.elim_clear r.elim_dom r.elim_hoist
    r.policy_skipped r.degraded r.allowlisted r.units
    (List.length r.failures)
