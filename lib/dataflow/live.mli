(** Interblock backward liveness of registers and %eflags.

    Facts are bitmasks: bits 0..15 are the registers (by register id),
    bit 16 the flags.  Calls are summarized by the ABI (caller-saved
    registers and flags clobbered, arguments on the stack, result in
    %rax) rather than traversed. *)

type t

val flags_bit : int
val reg_bit : X64.Isa.reg -> int
val all_live : int

val caller_saved_regs : X64.Isa.reg list
val caller_saved_mask : int
val callee_saved_mask : int

val transfer_instr : X64.Isa.instr -> int -> int
(** Live-before from live-after across one instruction. *)

val solve : Graph.t -> t

val live_in : t -> int -> int
(** Liveness at a block's entry, by block id. *)

val live_out : t -> int -> int
(** Liveness at a block's exit, by block id (exit blocks get their ABI
    boundary fact: only %rax, %rsp and the callee-saved registers
    survive a return; an indirect jump keeps everything live). *)

val live_before : t -> int -> int
(** Liveness immediately before an instruction, by instruction index. *)

val is_live : int -> X64.Isa.reg -> bool
val flags_live : int -> bool
