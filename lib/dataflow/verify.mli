(** Rewrite-soundness linter: audit a hardened binary from the file
    alone.  Decodes the [.redfat] trampolines, restores the displaced
    instructions to their original addresses, re-derives the block
    graph with the same leader recovery the rewriter used, and proves
    every memory operand is checked in its own trampoline, covered by
    an available check from a dominating patch site, eliminated with a
    re-verifiable recorded justification ([.elimtab]), excluded by the
    recorded instrumentation policy, or allow-listed.  Anything else
    fails the lint. *)

type status =
  | Checked
  | Covered of int          (** covering patch-site address *)
  | Eliminated_clear
  | Eliminated_dom of int   (** justifying patch-site address *)
  | Eliminated_hoist of int
      (** proof-carrying loop hoist: the recorded hull re-derived
          (same {!Loops.member_hoist} as the rewriter), shown to
          subsume the independent derivation, and the widened covering
          check proven available from this preheader patch address *)
  | Policy_skipped
  | Degraded
      (** recorded [skip] entry: the rewriter faulted at this site and
          degraded it to uninstrumented under its graceful-degradation
          policy — accounted for, but flagged in the report *)
  | Allowlisted

type failure = { f_addr : int; f_reason : string }

type report = {
  total : int;              (** memory operands examined *)
  checked : int;
  covered : int;
  elim_clear : int;
  elim_dom : int;
  elim_hoist : int;         (** proved loop-hoist subsumptions *)
  policy_skipped : int;
  degraded : int;           (** recorded [skip] downgrades *)
  allowlisted : int;
  units : int;              (** trampoline units decoded *)
  failures : failure list;
}

val ok : report -> bool

val run :
  ?allow:int list ->
  traps:(int * int) list ->
  Binfmt.Relf.t ->
  (report, string) result
(** [Error _] for a structurally unauditable binary (no text, not
    hardened, malformed [.elimtab]); otherwise a report whose
    [failures] list the proof obligations that did not discharge.
    [traps] is the binary's trap table (see [Rewrite.traps_of_binary]);
    [allow] lists instruction addresses accepted without proof. *)

val pp_report : Format.formatter -> report -> unit
