(** Forward "available checks" analysis.

    A fact [(key, info)] means: on {e every} graph path from a root to
    here, the site [info.site] has emitted a check of variant
    [info.variant] covering displacements [info.lo, info.hi) off the
    address expression [key] = (seg, base, idx, scale), and no
    instruction since has redefined a register of [key] or called a
    function (which could free the guarded object).

    The join is set intersection requiring {e structural} equality —
    in particular the same generating site — so an available fact's
    site lies on every path to the point of use, which is exactly the
    dominance the rewriter's global elimination needs (and re-verifies
    independently against the dominator tree).

    Check sites are not part of the instruction stream: the client
    supplies a [gen] callback mapping an instruction index to the
    facts its (planned or discovered) patch site establishes.  A fact
    generated at index [i] holds before instruction [i] runs (the
    trampoline checks first, then executes the displaced instruction),
    so within the transfer gen precedes kill: [Load rax, (rax)]
    generates its fact and immediately kills it. *)

type key = {
  seg : int;
  base : X64.Isa.reg option;
  idx : X64.Isa.reg option;
  scale : int;
}

type info = {
  lo : int;                      (** covered displacement interval... *)
  hi : int;                      (** ...[lo, hi), relative to [key] *)
  site : int;                    (** instruction index of the check site *)
  variant : X64.Isa.variant;
}

(** [Top] = "not yet reached" (the optimistic identity of the
    intersection); blocks left at [Top] in the fixpoint are unreachable
    from every root and report nothing available. *)
type fact = Top | Facts of (key * info) list  (* sorted by key *)

let key_of_mem (m : X64.Isa.mem) : key =
  { seg = m.seg; base = m.base; idx = m.idx; scale = m.scale }

(** Does [i] justify skipping a check of [variant] over [lo, hi)?  A
    [Redzone]-only fact cannot stand in for a [Full] check (it misses
    the low-fat bounds half of the complementary check), and the
    [Temporal] lock-and-key check is incomparable with both spatial
    variants (it proves liveness of the key, not redzone bounds — and
    vice versa), so only an equal-variant fact covers it. *)
let covers (i : info) ~(variant : X64.Isa.variant) ~(lo : int) ~(hi : int) =
  i.lo <= lo && i.hi >= hi
  && (match (i.variant, variant) with
     | a, b when a = b -> true
     | X64.Isa.Full, X64.Isa.Redzone -> true
     | _ -> false)

let join (a : fact) (b : fact) : fact =
  match (a, b) with
  | Top, x | x, Top -> x
  | Facts xs, Facts ys ->
    Facts
      (List.filter
         (fun (k, i) ->
           match List.assoc_opt k ys with Some j -> i = j | None -> false)
         xs)

(* insert keeping the list sorted by key; an established wider fact
   beats the incoming one (its older site dominates at least as much) *)
let rec insert (k : key) (i : info) = function
  | [] -> [ (k, i) ]
  | ((k', i') :: rest) as l ->
    let c = compare k k' in
    if c < 0 then (k, i) :: l
    else if c = 0 then
      if covers i' ~variant:i.variant ~lo:i.lo ~hi:i.hi then l
      else (k, i) :: rest
    else (k', i') :: insert k i rest

let kills_key (defs : X64.Isa.reg list) (k : key) =
  List.exists (fun r -> k.base = Some r || k.idx = Some r) defs

let transfer_instr ~(gen : int -> (key * info) list) (index : int)
    (instr : X64.Isa.instr) (f : fact) : fact =
  match f with
  | Top -> Top
  | Facts fs ->
    let fs = List.fold_left (fun acc (k, i) -> insert k i acc) fs (gen index) in
    let kill_all =
      (* a call into unknown code may free() the guarded object; of
         the known runtime entry points only the allocator pair
         reshapes heap metadata — the simulated I/O calls cannot
         invalidate a checked pointer *)
      match instr with
      | X64.Isa.Callrt (X64.Isa.Malloc | X64.Isa.Free) -> true
      | X64.Isa.Callrt _ -> false
      | _ -> (
        match X64.Isa.flow_of instr with
        | To_call _ | Dyn_call -> true
        | _ -> false)
    in
    Facts
      (if kill_all then []
       else
         match X64.Isa.defs instr with
         | [] -> fs
         | defs -> List.filter (fun (k, _) -> not (kills_key defs k)) fs)

let block_transfer ~gen (g : Graph.t) (b : Graph.block) (inp : fact) : fact =
  let f = ref inp in
  for i = b.Graph.first to b.Graph.last do
    let _, instr, _ = g.Graph.instrs.(i) in
    f := transfer_instr ~gen i instr !f
  done;
  !f

type t = {
  graph : Graph.t;
  gen : int -> (key * info) list;
  in_facts : fact array;
}

let solve (g : Graph.t) ~(gen : int -> (key * info) list) : t =
  let module P = struct
    type nonrec fact = fact

    let equal (a : fact) (b : fact) = a = b
    let direction = `Forward
    let init = Top
    let boundary = Facts []  (* nothing is available at a root *)
    let join = join
    let succs _ (b : Graph.block) = b.Graph.succs
    let transfer = block_transfer ~gen
  end in
  let module S = Solver.Make (P) in
  let r = S.solve g in
  { graph = g; gen; in_facts = r.S.in_facts }

(** Facts available immediately before instruction [index] (before its
    own site's checks run: facts from the same index are excluded). *)
let available_before (t : t) (index : int) : (key * info) list =
  let g = t.graph in
  let bid = Graph.block_of_instr g index in
  let b = Graph.block g bid in
  let f = ref t.in_facts.(bid) in
  for i = b.Graph.first to index - 1 do
    let _, instr, _ = g.Graph.instrs.(i) in
    f := transfer_instr ~gen:t.gen i instr !f
  done;
  match !f with Top -> [] | Facts fs -> fs

let find (fs : (key * info) list) (k : key) : info option = List.assoc_opt k fs
