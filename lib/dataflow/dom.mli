(** Dominator tree (Cooper–Harvey–Kennedy), multi-rooted.

    Roots are the entry block and every potential indirect-transfer
    target; a virtual super-root above them guarantees no block claims
    dominance over code an indirect jump could reach directly. *)

type t

val compute : Graph.t -> t

val idom : t -> int -> int option
(** Immediate dominator of a block; [None] for roots and blocks
    unreachable from every root. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: block [a] dominates block [b] (reflexive).
    Unreachable blocks neither dominate nor are dominated by others. *)

val dominates_instr : t -> def:int -> use:int -> bool
(** Instruction-index dominance: program order within a block, block
    dominance across blocks. *)

val is_back_edge : t -> src:int -> dst:int -> bool
(** [is_back_edge t ~src ~dst]: the edge [src -> dst] closes a natural
    loop, i.e. [dst] dominates [src].  Irreducible cycles (entered
    other than through a single dominating header) have no back edge,
    so loop analyses fall back to "no loop" rather than mis-identifying
    one. *)

val back_edges : t -> (int * int) list
(** All back edges as sorted [(latch, header)] pairs — the explicit
    query loop clients build natural loops from (rather than re-deriving
    dominance per edge). *)
