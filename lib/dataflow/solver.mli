(** Generic worklist fixpoint solver, functorized over the lattice. *)

module type PROBLEM = sig
  type fact

  val equal : fact -> fact -> bool
  val direction : [ `Forward | `Backward ]

  val init : fact
  (** Optimistic starting value for every non-boundary node. *)

  val boundary : fact
  (** Fact at roots (forward) / blocks without successors (backward). *)

  val join : fact -> fact -> fact

  val succs : Graph.t -> Graph.block -> int list
  (** The edge relation the problem flows along. *)

  val transfer : Graph.t -> Graph.block -> fact -> fact
end

module Make (P : PROBLEM) : sig
  type result = { in_facts : P.fact array; out_facts : P.fact array }

  val solve : Graph.t -> result
  (** Fixpoint facts at every block boundary, indexed by block id.
      Terminates for any finite-height lattice. *)
end
