(** Function-granular partition of a recovered instruction stream.

    [partition] splits a text into contiguous {e function} regions —
    boundaries at the entry, every decode-aligned direct-call target,
    and every decode-aligned code-pointer constant — and accepts the
    split only when rewriting each region in isolation is {e provably}
    identical to rewriting the whole text:

    - no aligned jump/branch target crosses a region boundary (calls
      and code-pointer constants are fine: they land on region starts
      by construction);
    - no region's final instruction falls through, branches, or calls
      (its flow is [Stop], [Dyn_goto], or an intra-region [Goto]), so
      no implicit edge links adjacent regions;
    - per-region block reachability from the region start coincides
      with whole-graph reachability, so the availability and dominator
      lattices agree (an unreachable block is Top for the whole-binary
      analyses; a region in which it became reachable could eliminate
      checks the monolithic rewrite keeps).

    Under these conditions every interprocedural edge the whole-binary
    graph has and a region graph lacks is a direct-call edge, and the
    availability transfer kills all facts at calls while every region
    start is an analysis root (boundary = no facts) — so facts,
    dominance queries and liveness restricted to a region are equal in
    both graphs.  [None] means "rewrite monolithically"; it is always
    sound to fall back. *)

type fn = {
  f_first : int;  (** index of the region's first instruction *)
  f_count : int;  (** number of instructions *)
  f_addr : int;   (** address of the first instruction *)
  f_len : int;    (** region length in bytes *)
}

val partition :
  text_addr:int -> (int * X64.Isa.instr * int) array -> fn list option
(** [None] when the text has fewer than two regions or any
    isolation condition fails. *)
