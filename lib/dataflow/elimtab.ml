(** The elimination table: a hardened binary's record of every check
    the rewriter chose {e not} to emit, with a machine-checkable
    justification per site.  Ships in the [.elimtab] section (next to
    the [.traptab] trap table), so the soundness linter can audit a
    hardened binary from the file alone.

    Format: one header line with the instrumentation policy, then one
    line per eliminated site —
    {v
    !policy reads=1 writes=1
    40001c clear
    400033 dom 400010
    400041 skip
    v}
    [clear]: the operand satisfies the syntactic never-reaches-the-heap
    rule.  [dom a]: an equivalent or covering check is emitted by the
    patch site at address [a], which dominates this site.  [skip]: the
    rewriter faulted while emitting this site's check and degraded it
    to uninstrumented under its graceful-degradation policy — weaker
    but recorded, so the linter can tell an audited downgrade from a
    rewriter bug. *)

type reason =
  | Clear          (** syntactic rule: operand cannot reach the heap *)
  | Dom of int     (** covered by the check at this patch address *)
  | Skip           (** degraded to uninstrumented after a site fault *)

type t = {
  reads : bool;   (** were reads instrumented at all? *)
  writes : bool;
  entries : (int * reason) list;  (** eliminated instruction address, reason *)
}

let section_name = ".elimtab"

let default = { reads = true; writes = true; entries = [] }

let render (t : t) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "!policy reads=%d writes=%d\n" (Bool.to_int t.reads)
       (Bool.to_int t.writes));
  List.iter
    (fun (a, r) ->
      Buffer.add_string b
        (match r with
        | Clear -> Printf.sprintf "%x clear\n" a
        | Dom s -> Printf.sprintf "%x dom %x\n" a s
        | Skip -> Printf.sprintf "%x skip\n" a))
    t.entries;
  Buffer.contents b

let parse (s : string) : (t, string) result =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  let hex x = try Some (int_of_string ("0x" ^ x)) with _ -> None in
  let rec go acc pol = function
    | [] -> Ok { pol with entries = List.rev acc }
    | line :: rest -> (
      match String.split_on_char ' ' (String.trim line) with
      | [ "!policy"; r; w ] -> (
        match (r, w) with
        | ("reads=0" | "reads=1"), ("writes=0" | "writes=1") ->
          go acc { pol with reads = r = "reads=1"; writes = w = "writes=1" } rest
        | _ -> Error (Printf.sprintf "elimtab: bad policy line %S" line))
      | [ a; "skip" ] -> (
        match hex a with
        | Some a -> go ((a, Skip) :: acc) pol rest
        | None -> Error (Printf.sprintf "elimtab: bad address in %S" line))
      | [ a; "clear" ] -> (
        match hex a with
        | Some a -> go ((a, Clear) :: acc) pol rest
        | None -> Error (Printf.sprintf "elimtab: bad address in %S" line))
      | [ a; "dom"; s ] -> (
        match (hex a, hex s) with
        | Some a, Some s -> go ((a, Dom s) :: acc) pol rest
        | _ -> Error (Printf.sprintf "elimtab: bad address in %S" line))
      | _ -> Error (Printf.sprintf "elimtab: unrecognized line %S" line))
  in
  go [] default lines
