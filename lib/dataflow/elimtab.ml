(** The elimination table: a hardened binary's record of every check
    the rewriter chose {e not} to emit, with a machine-checkable
    justification per site.  Ships in the [.elimtab] section (next to
    the [.traptab] trap table), so the soundness linter can audit a
    hardened binary from the file alone.

    Format: one header line with the instrumentation policy, then one
    line per eliminated site —
    {v
    !policy reads=1 writes=1
    40001c clear
    400033 dom 400010
    400041 skip
    400055 hoist 40004e 0 4096
    v}
    A binary hardened under a non-default check backend carries a
    [backend=NAME] token in the policy line
    ([!policy backend=temporal reads=1 writes=1]); its absence means
    the default [lowfat] backend, so pre-backend binaries (and the
    default path) parse — and render — unchanged.
    [clear]: the operand satisfies the syntactic never-reaches-the-heap
    rule.  [dom a]: an equivalent or covering check is emitted by the
    patch site at address [a], which dominates this site.  [skip]: the
    rewriter faulted while emitting this site's check and degraded it
    to uninstrumented under its graceful-degradation policy — weaker
    but recorded, so the linter can tell an audited downgrade from a
    rewriter bug.  [hoist s lo hi]: covered by a widened loop-preheader
    check emitted at patch address [s] over the displacement hull
    [lo, hi) (decimal, possibly negative) — the proof-carrying variant,
    which the linter only accepts after independently re-deriving the
    hull and showing the recorded one subsumes it. *)

type reason =
  | Clear          (** syntactic rule: operand cannot reach the heap *)
  | Dom of int     (** covered by the check at this patch address *)
  | Skip           (** degraded to uninstrumented after a site fault *)
  | Hoist of int * int * int
      (** [Hoist (site, lo, hi)]: covered by a widened loop-preheader
          check at patch address [site] over the hull [lo, hi) — the
          linter re-derives the hull and fails unless the recorded one
          subsumes it *)

type t = {
  backend : string;  (** check backend that hardened the binary *)
  reads : bool;   (** were reads instrumented at all? *)
  writes : bool;
  entries : (int * reason) list;  (** eliminated instruction address, reason *)
}

let section_name = ".elimtab"
let default_backend = "lowfat"

let default =
  { backend = default_backend; reads = true; writes = true; entries = [] }

let render (t : t) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (if t.backend = default_backend then
       Printf.sprintf "!policy reads=%d writes=%d\n" (Bool.to_int t.reads)
         (Bool.to_int t.writes)
     else
       Printf.sprintf "!policy backend=%s reads=%d writes=%d\n" t.backend
         (Bool.to_int t.reads) (Bool.to_int t.writes));
  List.iter
    (fun (a, r) ->
      Buffer.add_string b
        (match r with
        | Clear -> Printf.sprintf "%x clear\n" a
        | Dom s -> Printf.sprintf "%x dom %x\n" a s
        | Skip -> Printf.sprintf "%x skip\n" a
        | Hoist (s, lo, hi) -> Printf.sprintf "%x hoist %x %d %d\n" a s lo hi))
    t.entries;
  Buffer.contents b

let parse (s : string) : (t, string) result =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  let hex x = try Some (int_of_string ("0x" ^ x)) with _ -> None in
  let rec go acc pol = function
    | [] -> Ok { pol with entries = List.rev acc }
    | line :: rest -> (
      let policy ?backend r w =
        match (r, w) with
        | ("reads=0" | "reads=1"), ("writes=0" | "writes=1") ->
          let pol =
            { pol with reads = r = "reads=1"; writes = w = "writes=1" }
          in
          let pol =
            match backend with Some b -> { pol with backend = b } | None -> pol
          in
          go acc pol rest
        | _ -> Error (Printf.sprintf "elimtab: bad policy line %S" line)
      in
      match String.split_on_char ' ' (String.trim line) with
      | [ "!policy"; r; w ] -> policy r w
      | [ "!policy"; b; r; w ]
        when String.length b > 8 && String.sub b 0 8 = "backend=" ->
        policy ~backend:(String.sub b 8 (String.length b - 8)) r w
      | [ a; "skip" ] -> (
        match hex a with
        | Some a -> go ((a, Skip) :: acc) pol rest
        | None -> Error (Printf.sprintf "elimtab: bad address in %S" line))
      | [ a; "clear" ] -> (
        match hex a with
        | Some a -> go ((a, Clear) :: acc) pol rest
        | None -> Error (Printf.sprintf "elimtab: bad address in %S" line))
      | [ a; "dom"; s ] -> (
        match (hex a, hex s) with
        | Some a, Some s -> go ((a, Dom s) :: acc) pol rest
        | _ -> Error (Printf.sprintf "elimtab: bad address in %S" line))
      | [ a; "hoist"; s; lo; hi ] -> (
        match (hex a, hex s, int_of_string_opt lo, int_of_string_opt hi) with
        | Some a, Some s, Some lo, Some hi ->
          go ((a, Hoist (s, lo, hi)) :: acc) pol rest
        | _ -> Error (Printf.sprintf "elimtab: bad hoist entry %S" line))
      | _ -> Error (Printf.sprintf "elimtab: unrecognized line %S" line))
  in
  go [] default lines
