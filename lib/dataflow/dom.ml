(** Dominator tree via the Cooper–Harvey–Kennedy algorithm
    ("A Simple, Fast Dominance Algorithm").

    Multiple roots (the entry plus every potential indirect-transfer
    target) are handled with a virtual super-root: a root's idom is
    the virtual root, so nothing dominates a root but itself, and no
    block is ever claimed to dominate code an indirect jump could
    reach directly. *)

type t = {
  graph : Graph.t;
  idom : int array;  (* block id -> immediate dominator; virtual_root for roots *)
  virtual_root : int;
}

let compute (g : Graph.t) : t =
  let nb = Graph.num_blocks g in
  let virtual_root = nb in
  let idom = Array.make (nb + 1) (-1) in
  idom.(virtual_root) <- virtual_root;
  List.iter (fun r -> idom.(r) <- virtual_root) (Graph.roots g);
  (* rpo position, virtual root first *)
  let pos = Array.make (nb + 1) max_int in
  pos.(virtual_root) <- -1;
  Array.iteri (fun i b -> pos.(b) <- i) (Graph.rpo g);
  let is_root =
    let a = Array.make nb false in
    List.iter (fun r -> a.(r) <- true) (Graph.roots g);
    a
  in
  let rec intersect b1 b2 =
    if b1 = b2 then b1
    else if pos.(b1) > pos.(b2) then intersect idom.(b1) b2
    else intersect b1 idom.(b2)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if not is_root.(b) then begin
          (* processed predecessors only; roots implicitly have the
             virtual root as an extra predecessor *)
          let new_idom =
            List.fold_left
              (fun acc p ->
                if idom.(p) = -1 then acc
                else
                  match acc with
                  | None -> Some p
                  | Some a -> Some (intersect a p))
              None
              (Graph.block g b).Graph.preds
          in
          match new_idom with
          | Some ni when idom.(b) <> ni ->
            idom.(b) <- ni;
            changed := true
          | _ -> ()
        end)
      (Graph.rpo g)
  done;
  { graph = g; idom; virtual_root }

let idom t b =
  let d = t.idom.(b) in
  if d = -1 || d = t.virtual_root then None else Some d

(** [dominates t a b]: block [a] dominates block [b] (reflexive).
    Unreachable blocks (no computed idom) are dominated by nothing but
    themselves and dominate nothing but themselves. *)
let dominates t a b =
  if a = b then true
  else if t.idom.(b) = -1 || t.idom.(a) = -1 then false
  else begin
    let rec up x = if x = a then true else if x = t.virtual_root then false else up t.idom.(x) in
    up t.idom.(b)
  end

(** Instruction-level dominance: within one block, program order;
    across blocks, block dominance. *)
let dominates_instr t ~(def : int) ~(use : int) =
  let bd = Graph.block_of_instr t.graph def
  and bu = Graph.block_of_instr t.graph use in
  if bd = bu then def <= use else dominates t bd bu

(** [is_back_edge t ~src ~dst]: the edge [src -> dst] closes a natural
    loop (its target dominates its source).  An irreducible cycle —
    one entered other than through a single dominating header — has no
    back edge under this definition, so loop clients see no loop there
    instead of a mis-identified one. *)
let is_back_edge t ~(src : int) ~(dst : int) = dominates t dst src

(** All back edges [(latch, header)], sorted.  Derived once from the
    dominator tree instead of per-edge by every client. *)
let back_edges t : (int * int) list =
  let edges = ref [] in
  Array.iter
    (fun u ->
      List.iter
        (fun s -> if is_back_edge t ~src:u ~dst:s then edges := (u, s) :: !edges)
        (Graph.block t.graph u).Graph.succs)
    (Graph.rpo t.graph);
  List.sort compare !edges
