(** Explicit basic-block graph over a recovered instruction stream.

    The rewriter's [Cfg] is an instruction array plus a leader set —
    enough for block-local scans, not for global reasoning.  This
    module turns the same data into a proper graph: blocks with
    successor/predecessor edges, a reverse-postorder numbering, and a
    root set, which the dominator, liveness and availability analyses
    consume.

    Leader recovery lives here (see {!leaders}) so the rewriter's CFG
    and the soundness linter's re-disassembly provably agree on block
    structure: both call the same function.

    Edge policy (documented assumptions, all conservative for the
    analyses built on top):
    - a direct call edges to {e both} its target and its return
      fall-through.  Dominance stays sound: any real trace maps onto a
      graph path by short-cutting completed call/return pairs, so
      "every graph path passes A" implies "every trace passes A";
    - an indirect call edges only to its fall-through (the target is
      statically unknown; callee entries reachable only indirectly are
      therefore graph-unreachable, and clients must not optimize
      them — see {!reachable});
    - an indirect jump has no successors;
    - every code-pointer constant in the instruction stream is a
      {e root}: an indirect transfer may land there at any time, so
      forward analyses must assume nothing on entry to such a block. *)

type block = {
  id : int;
  first : int;  (** index of the block's first instruction *)
  last : int;   (** index of the block's last instruction (inclusive) *)
  addr : int;   (** address of the first instruction *)
  term : X64.Isa.flow;  (** control-flow class of the last instruction *)
  mutable succs : int list;      (** includes direct-call targets *)
  mutable fall_succs : int list; (** successors minus call-target edges *)
  mutable preds : int list;
}

type t = {
  instrs : (int * X64.Isa.instr * int) array;
  index_of : (int, int) Hashtbl.t;   (* addr -> instr index *)
  leaders : (int, unit) Hashtbl.t;   (* block start addresses *)
  roots : int list;                  (* root block ids (entry + indirect targets) *)
  blocks : block array;
  block_of : int array;              (* instr index -> block id *)
  rpo : int array;                   (* reachable block ids in reverse postorder *)
  rpo_index : int array;             (* block id -> rpo position; -1 unreachable *)
}

(** Leader recovery shared by the rewriter and the linter: the entry,
    direct branch/call targets, fall-throughs of branches, calls and
    block-ending transfers, and every code-pointer constant.  Returns
    the leader set and the subset that are potential indirect-transfer
    targets (code-pointer constants). *)
let leaders ~(entry : int) (instrs : (int * X64.Isa.instr * int) array) :
    (int, unit) Hashtbl.t * (int, unit) Hashtbl.t =
  let index_of = Hashtbl.create (Array.length instrs) in
  Array.iteri (fun i (a, _, _) -> Hashtbl.replace index_of a i) instrs;
  let leaders = Hashtbl.create 256 and indirect = Hashtbl.create 16 in
  let mark a = if Hashtbl.mem index_of a then Hashtbl.replace leaders a () in
  mark entry;
  Array.iter
    (fun (_, i, _) ->
      match i with
      | X64.Isa.Mov_ri (_, v) when Hashtbl.mem index_of v ->
        Hashtbl.replace leaders v ();
        Hashtbl.replace indirect v ()
      | _ -> ())
    instrs;
  Array.iter
    (fun (a, i, len) ->
      match X64.Isa.flow_of i with
      | Fall -> ()
      | Goto t -> mark t
      | Branch t ->
        mark t;
        mark (a + len)
      | To_call t ->
        mark t;
        mark (a + len)
      | Dyn_call | Dyn_goto | Stop -> mark (a + len))
    instrs;
  (leaders, indirect)

let of_instrs ~(entry : int) (instrs : (int * X64.Isa.instr * int) array) : t =
  let n = Array.length instrs in
  let index_of = Hashtbl.create (max 16 n) in
  Array.iteri (fun i (a, _, _) -> Hashtbl.replace index_of a i) instrs;
  let leaders, indirect = leaders ~entry instrs in
  (* block boundaries: a block starts at a leader or after a
     terminator (so unreachable straight-line code still forms blocks) *)
  let starts = ref [] in
  Array.iteri
    (fun i (a, _, _) ->
      let after_term =
        i > 0
        &&
        let _, p, _ = instrs.(i - 1) in
        X64.Isa.flow_of p <> X64.Isa.Fall
      in
      if i = 0 || Hashtbl.mem leaders a || after_term then starts := i :: !starts)
    instrs;
  let starts = Array.of_list (List.rev !starts) in
  let nb = Array.length starts in
  let block_of = Array.make n (-1) in
  let blocks =
    Array.init nb (fun b ->
        let first = starts.(b) in
        let last = if b + 1 < nb then starts.(b + 1) - 1 else n - 1 in
        for i = first to last do
          block_of.(i) <- b
        done;
        let addr, _, _ = instrs.(first) in
        let _, ti, _ = instrs.(last) in
        {
          id = b;
          first;
          last;
          addr;
          term = X64.Isa.flow_of ti;
          succs = [];
          fall_succs = [];
          preds = [];
        })
  in
  let block_at addr =
    match Hashtbl.find_opt index_of addr with
    | Some i -> Some block_of.(i)
    | None -> None
  in
  Array.iter
    (fun b ->
      let la, _, ll = instrs.(b.last) in
      let next () = block_at (la + ll) in
      let tgt t = block_at t in
      let fall, call_only =
        match b.term with
        | X64.Isa.Fall -> ([ next () ], [])
        | Branch t -> ([ tgt t; next () ], [])
        | Goto t -> ([ tgt t ], [])
        | To_call t -> ([ next () ], [ tgt t ])
        | Dyn_call -> ([ next () ], [])
        | Dyn_goto | Stop -> ([], [])
      in
      let dedup l =
        List.sort_uniq compare (List.filter_map (fun x -> x) l)
      in
      b.fall_succs <- dedup fall;
      b.succs <- dedup (fall @ call_only))
    blocks;
  Array.iter
    (fun b -> List.iter (fun s -> blocks.(s).preds <- b.id :: blocks.(s).preds) b.succs)
    blocks;
  Array.iter (fun b -> b.preds <- List.rev b.preds) blocks;
  (* roots: the entry block plus every indirect-target block *)
  let roots = ref [] in
  (match block_at entry with Some b -> roots := [ b ] | None -> ());
  Hashtbl.iter
    (fun a () ->
      match block_at a with
      | Some b when not (List.mem b !roots) -> roots := b :: !roots
      | _ -> ())
    indirect;
  let roots = List.sort compare !roots in
  (* reverse postorder over [succs] from all roots *)
  let visited = Array.make nb false in
  let post = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs blocks.(b).succs;
      post := b :: !post
    end
  in
  List.iter dfs roots;
  let rpo = Array.of_list !post in
  let rpo_index = Array.make nb (-1) in
  Array.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  { instrs; index_of; leaders; roots; blocks; block_of; rpo; rpo_index }

let num_blocks t = Array.length t.blocks
let block t b = t.blocks.(b)
let block_of_instr t i = t.block_of.(i)
let index_at t addr = Hashtbl.find_opt t.index_of addr
let is_leader t addr = Hashtbl.mem t.leaders addr
let roots t = t.roots
let rpo t = t.rpo

let reachable t b = t.rpo_index.(b) >= 0
(** A block unreachable from every root can still run (e.g. a callee
    entered only through an indirect call, whose edge the graph lacks);
    optimizations must leave such blocks alone. *)
