(** The libredfat.so runtime: the redzone-wrapping allocator (paper
    Figure 3) and the complementary (Redzone)+(LowFat) check (Figure 4).

    In the real system this library is LD_PRELOAD'ed under the hardened
    binary; here it plugs into the VM as the [Callrt] dispatch table and
    the [on_check] hook. *)

let redzone = 16

type error_kind =
  | Use_after_free
  | Oob_lower
  | Oob_upper
  | Corrupt_meta
  | Key_mismatch   (* temporal: pointer tag does not match the live lock *)
  | Double_free    (* temporal: freed pointer's key already invalidated *)
type access_error = {
  site : int;          (** address of the guarded instruction *)
  kind : error_kind;
  addr : int;          (** lower bound of the offending access *)
}

exception Memory_error of access_error
exception Bad_free of int

let kind_name = function
  | Use_after_free -> "use-after-free"
  | Oob_lower -> "out-of-bounds (lower)"
  | Oob_upper -> "out-of-bounds (upper)"
  | Corrupt_meta -> "corrupted metadata"
  | Key_mismatch -> "key mismatch (stale pointer)"
  | Double_free -> "double free"

(** [Harden] aborts on the first error (production); [Log] records
    unique (site, kind) pairs and continues (bug finding / profiling). *)
type mode = Harden | Log

(** How the redzone component implements state(ptr) (paper §4.1):
    [Lowfat_meta] stores state/size inside the redzone and reuses the
    low-fat [base] computation (RedFat's design); [Asan_shadow] is the
    AddressSanitizer-style separate shadow map, kept as an ablation. *)
type state_impl = Lowfat_meta | Asan_shadow

type options = {
  lowfat : bool;       (** derive the base from the pointer register
                           (the LowFat component); off = redzone-only *)
  size_harden : bool;  (** validate stored SIZE against size(BASE)
                           (Figure 4 lines 23-24) *)
  merged_ub : bool;    (** single-branch bounds check via the uint32
                           underflow trick (paper §4.2) *)
  check_reads : bool;  (** instrument read accesses (-reads disables) *)
  state_impl : state_impl;
  mode : mode;
  backend : Backend.Check_backend.id;
      (** the check backend whose runtime semantics this instance
          provides.  [Temporal] switches the allocator to lock-and-key
          mode: malloc returns tagged pointers and records a key in the
          lock table, free validates and invalidates the key. *)
}

let default_options =
  { lowfat = true; size_harden = true; merged_ub = true; check_reads = true;
    state_impl = Lowfat_meta; mode = Harden;
    backend = Backend.Check_backend.default }

type profile_entry = { mutable executed : int; mutable lowfat_failed : int }

type t = {
  alloc : Lowfat.Alloc.t;
  mem : Vm.Mem.t;
  opts : options;
  mutable errors : access_error list;     (* unique, reverse order *)
  seen : (int * error_kind, unit) Hashtbl.t;
  profile : (int, profile_entry) Hashtbl.t option;
      (** site statistics, present in profiling runs (paper §5) *)
  (* dynamic coverage counters (Table 1 "coverage" column) *)
  mutable full_checks : int;
  mutable redzone_checks : int;
  mutable temporal_checks : int;
  mutable nonfat_skips : int;
  shadow : Shadow.t;  (** only populated under [Asan_shadow] *)
  locks : (int, int) Hashtbl.t;
      (** temporal backend: live key per object slot base; 0 = freed.
          The model of libredfat's lock table, invalidated on free so
          stale tagged pointers fail their key comparison. *)
  mutable next_key : int;  (** temporal: next allocation key (cycles) *)
}

let create ?(options = default_options) ?(profiling = false) ?random
    (mem : Vm.Mem.t) : t =
  {
    alloc = Lowfat.Alloc.create ?random mem;
    mem;
    opts = options;
    errors = [];
    seen = Hashtbl.create 64;
    profile = (if profiling then Some (Hashtbl.create 256) else None);
    full_checks = 0;
    redzone_checks = 0;
    temporal_checks = 0;
    nonfat_skips = 0;
    shadow = Shadow.create ();
    locks = Hashtbl.create 64;
    next_key = 1;
  }

let errors t = List.rev t.errors

let error t ~site ~kind ~addr =
  let e = { site; kind; addr } in
  match t.opts.mode with
  | Harden -> raise (Memory_error e)
  | Log ->
    if not (Hashtbl.mem t.seen (site, kind)) then begin
      Hashtbl.add t.seen (site, kind) ();
      t.errors <- e :: t.errors
    end

(* --- the allocator wrapper (Figure 3) ------------------------------ *)

(** malloc(SIZE) = lowfat_malloc(SIZE+16) + 16.  The prepended 16 bytes
    are the redzone, doubling as shadow storage for the object's
    state/size word: SIZE > 0 means Allocated, SIZE = 0 means Free
    (the "mergeable code" encoding of §4.2).

    Under the [Temporal] backend the returned pointer additionally
    carries a fresh nonzero key in its tag bits, and the key is
    recorded in the lock table against the slot base. *)
let malloc t n =
  let n = max n 1 in
  let base = Lowfat.Alloc.malloc t.alloc (n + redzone) in
  Vm.Mem.write t.mem ~addr:base ~len:8 n;
  if t.opts.state_impl = Asan_shadow then
    Shadow.mark_allocated t.shadow ~addr:(base + redzone) ~len:n;
  if t.opts.backend = Backend.Check_backend.Temporal then begin
    let key = t.next_key in
    t.next_key <-
      (if key >= Backend.Check_backend.max_key then 1 else key + 1);
    Hashtbl.replace t.locks base key;
    (base + redzone) lor (key lsl Backend.Check_backend.tag_shift)
  end
  else base + redzone

(** [site] is the caller's code address, used to attribute temporal
    free errors ([Double_free]); those go through [error], so [Log]
    mode records them and skips the free instead of aborting. *)
let free ?(site = 0) t ptr =
  if t.opts.backend = Backend.Check_backend.Temporal then begin
    let key = Backend.Check_backend.tag_of ptr in
    let p = Backend.Check_backend.untag ptr in
    if p = 0 then () (* free(NULL) is a no-op *)
    else begin
      let base = p - redzone in
      let lock =
        match Hashtbl.find_opt t.locks base with Some k -> k | None -> -1
      in
      if lock <= 0 || lock <> key then
        (* the lock is gone (freed) or belongs to a newer allocation:
           a double free / free through a stale pointer *)
        error t ~site ~kind:Double_free ~addr:p
      else begin
        Hashtbl.replace t.locks base 0;
        Vm.Mem.write t.mem ~addr:base ~len:8 0;
        Lowfat.Alloc.free t.alloc base
      end
    end
  end
  else if ptr = 0 then () (* free(NULL) is a no-op *)
  else begin
    let base = ptr - redzone in
    let stored =
      if Vm.Mem.is_mapped t.mem base then Vm.Mem.read t.mem ~addr:base ~len:8
      else -1
    in
    if stored <= 0 then raise (Bad_free ptr);
    Vm.Mem.write t.mem ~addr:base ~len:8 0;
    if t.opts.state_impl = Asan_shadow then
      Shadow.mark_freed t.shadow ~addr:ptr ~len:stored;
    Lowfat.Alloc.free t.alloc base
  end

(* --- the check (Figure 4) ------------------------------------------ *)

(** Structural micro-op costs of the check's assembly, used by the VM
    cost model.  The constants now live in the backend layer (they are
    also the static cost model the planner consults); this alias keeps
    the runtime's historical [Runtime.Cost] name working. *)
module Cost = Backend.Check_backend.Cost

let profile_entry t site =
  match t.profile with
  | None -> None
  | Some tbl ->
    (match Hashtbl.find_opt tbl site with
     | Some e -> Some e
     | None ->
       let e = { executed = 0; lowfat_failed = 0 } in
       Hashtbl.add tbl site e;
       Some e)

(* Bounds test shared by the production check and the profiling
   simulation of the pure (LowFat) component.  Returns the failure, if
   any, for object [base] (redzone at [base, base+16)) and access
   [lb, ub).  [size < 0] encodes unmapped metadata. *)
let judge ~meta_size ~lf_size ~size_harden ~base ~lb ~ub =
  let obj = base + redzone in
  if size_harden && (meta_size < 0 || meta_size > lf_size - redzone) then
    Some Corrupt_meta
  else if meta_size <= 0 then Some Use_after_free
  else if lb < obj then Some Oob_lower
  else if ub > obj + meta_size then Some Oob_upper
  else None

(** The lock-and-key temporal check: recover the key from the guarded
    pointer's tag bits and the lock from the runtime's lock table
    (keyed by the object's slot base); the access is valid only if it
    stays within the slot and the key still matches the live lock.
    Freed slots hold lock 0 (never a valid key) and reallocated slots
    hold a fresh key, so dangling pointers fail either way — no
    quarantine needed. *)
let check_temporal t (ck : X64.Isa.check) ~lb ~ub cost : int =
  let key = Backend.Check_backend.tag_of lb in
  let alb = Backend.Check_backend.untag lb in
  let aub = Backend.Check_backend.untag ub in
  cost := !cost + Cost.lowfat_base + Cost.null_test;
  let slot = Lowfat.Layout.base alb in
  if slot = 0 then begin
    (* non-fat pointer: nothing to check *)
    t.nonfat_skips <- t.nonfat_skips + 1;
    !cost
  end
  else begin
    t.temporal_checks <- t.temporal_checks + 1;
    cost :=
      !cost + Cost.lock_lookup + Cost.key_check
      + if t.opts.merged_ub then Cost.bounds_merged else Cost.bounds_branchy;
    let verdict =
      (* slot-granular bounds first: an access that escapes the slot
         would consult some other object's lock *)
      if Lowfat.Layout.base (aub - 1) <> slot then Some Oob_upper
      else if alb < slot + redzone then Some Oob_lower
      else begin
        let lock =
          match Hashtbl.find_opt t.locks slot with Some k -> k | None -> 0
        in
        if lock = 0 then Some Use_after_free
        else if lock <> key then Some Key_mismatch
        else None
      end
    in
    (match verdict with
     | Some kind -> error t ~site:ck.ck_site ~kind ~addr:alb
     | None -> ());
    !cost
  end

(** Execute the Figure 4 check for payload [ck]; returns the cycle cost
    of the executed path.  Reads the guarded pointer and index straight
    from the CPU registers, exactly as the trampoline assembly does. *)
let check t (cpu : Vm.Cpu.t) (ck : X64.Isa.check) : int =
  let m = ck.ck_mem in
  (* Step 1: the access range.  ptr is the base register (the pointer
     whose arithmetic the LowFat component validates); i is the rest of
     the operand. *)
  let ptr = match m.base with Some r -> cpu.regs.(r) | None -> 0 in
  let iv = match m.idx with Some r -> cpu.regs.(r) * m.scale | None -> 0 in
  let lb = ptr + iv + ck.ck_lo in
  let ub = ptr + iv + ck.ck_hi in
  let cost = ref (Cost.access_range + (Cost.per_save * ck.ck_nsaves)) in
  if ck.ck_save_flags then cost := !cost + Cost.flags_save;
  if ck.ck_variant = X64.Isa.Temporal then check_temporal t ck ~lb ~ub cost
  else begin
  (* Step 2: object base, from ptr first (LowFat), falling back to the
     accessed address (Redzone). *)
  let lowfat_on = t.opts.lowfat && ck.ck_variant = X64.Isa.Full in
  let base_ptr = if lowfat_on then Lowfat.Layout.base ptr else 0 in
  if lowfat_on then cost := !cost + Cost.lowfat_base + Cost.null_test;
  let via_lowfat = base_ptr <> 0 in
  let base =
    if via_lowfat then base_ptr
    else begin
      cost := !cost + Cost.lowfat_base + Cost.null_test;
      Lowfat.Layout.base lb
    end
  in
  (* profiling bookkeeping happens before any early exit *)
  (match profile_entry t ck.ck_site with
   | None -> ()
   | Some e ->
     e.executed <- e.executed + 1;
     (* the pure (LowFat) verdict: would ptr-based checking flag it? *)
     if base_ptr <> 0 then begin
       let meta_size =
         if Vm.Mem.is_mapped t.mem base_ptr then
           Vm.Mem.read t.mem ~addr:base_ptr ~len:8
         else -1
       in
       let lf_size = Lowfat.Layout.size base_ptr in
       match
         judge ~meta_size ~lf_size ~size_harden:false ~base:base_ptr ~lb ~ub
       with
       | Some _ -> e.lowfat_failed <- e.lowfat_failed + 1
       | None -> ()
     end);
  if base = 0 then begin
    (* non-fat pointer: nothing to check *)
    t.nonfat_skips <- t.nonfat_skips + 1;
    !cost
  end
  else begin
    ignore via_lowfat;
    (* coverage accounting (Table 1): which instrumentation covered this
       dynamically-reached heap access *)
    if ck.ck_variant = X64.Isa.Full && t.opts.lowfat then
      t.full_checks <- t.full_checks + 1
    else t.redzone_checks <- t.redzone_checks + 1;
    match t.opts.state_impl with
    | Asan_shadow ->
      (* the §4.1 ablation: redzone state from a separate shadow map.
         Bounds can only use the (class-granular) low-fat size, so
         padding overflows are missed, and every access pays a
         per-granule shadow scan on top of the base computation. *)
      let lf_size = Lowfat.Layout.size base in
      let obj = base + redzone in
      cost := !cost + if t.opts.merged_ub then Cost.bounds_merged
                      else Cost.bounds_branchy;
      let verdict =
        if lb < obj then Some Oob_lower
        else if ub > base + lf_size then Some Oob_upper
        else begin
          let bad, scan_cost = Shadow.check_range t.shadow ~lb ~ub in
          cost := !cost + scan_cost;
          match bad with
          | None -> None
          | Some Shadow.Free -> Some Use_after_free
          | Some Shadow.Redzone ->
            Some (if lb < obj then Oob_lower else Oob_upper)
          | Some Shadow.Allocated -> None
        end
      in
      (match verdict with
       | Some kind -> error t ~site:ck.ck_site ~kind ~addr:lb
       | None -> ());
      !cost
    | Lowfat_meta ->
    (* Steps 3-4: metadata, then the merged checks *)
    cost := !cost + Cost.metadata_load;
    if t.opts.size_harden then cost := !cost + Cost.size_harden;
    cost :=
      !cost + if t.opts.merged_ub then Cost.bounds_merged else Cost.bounds_branchy;
    let meta_size =
      if Vm.Mem.is_mapped t.mem base then Vm.Mem.read t.mem ~addr:base ~len:8
      else -1
    in
    let lf_size = Lowfat.Layout.size base in
    let verdict =
      if t.opts.merged_ub then begin
        (* the single-branch form: UB' underflows to a huge value when
           LB is below the object start, so one comparison suffices *)
        let obj = base + redzone in
        let span = ub - lb in
        let delta = (lb - obj) land 0xffff_ffff in
        if t.opts.size_harden && (meta_size < 0 || meta_size > lf_size - redzone)
        then Some Corrupt_meta
        else if meta_size < 0 then Some Use_after_free
        else if obj + delta + span > obj + meta_size then
          Some
            (if meta_size = 0 then Use_after_free
             else if lb < obj then Oob_lower
             else Oob_upper)
        else None
      end
      else
        judge ~meta_size ~lf_size ~size_harden:t.opts.size_harden ~base ~lb ~ub
    in
    (match verdict with
     | Some kind -> error t ~site:ck.ck_site ~kind ~addr:lb
     | None -> ());
    !cost
  end
  end

(* --- plugging into the VM ------------------------------------------ *)

let vm_runtime (t : t) : Vm.Cpu.runtime =
  {
    Vm.Cpu.rt_malloc = (fun _cpu n -> malloc t n);
    rt_free = (fun cpu p -> free ~site:cpu.Vm.Cpu.rip t p);
    rt_name = "libredfat";
  }

let install (t : t) (cpu : Vm.Cpu.t) : Vm.Cpu.runtime =
  cpu.on_check <- Some (fun cpu ck -> check t cpu ck);
  (* a pointer-tagging backend needs the VM to mask data accesses so
     tagged pointers still address their untagged memory *)
  let (module B) = Backend.Check_backend.of_id t.opts.backend in
  cpu.addr_mask <-
    (if B.contract.Backend.Check_backend.tags_pointers then
       Backend.Check_backend.addr_mask
     else -1);
  vm_runtime t

(** Allow-list extraction after a profiling run: sites that executed
    and never failed the (LowFat) component (paper §5). *)
let allowlist t : int list =
  match t.profile with
  | None -> invalid_arg "Runtime.allowlist: not a profiling runtime"
  | Some tbl ->
    Hashtbl.fold
      (fun site e acc ->
        if e.executed > 0 && e.lowfat_failed = 0 then site :: acc else acc)
      tbl []
    |> List.sort compare

(** All instrumentation sites that executed at least once during a
    profiling run (used by the coverage-guided profiling fuzzer). *)
let executed_sites t : int list =
  match t.profile with
  | None -> []
  | Some tbl ->
    Hashtbl.fold
      (fun site e acc -> if e.executed > 0 then site :: acc else acc)
      tbl []
    |> List.sort compare

(** Sites observed to fail the (LowFat) component at least once: the
    would-be false positives (paper §7.1). *)
let lowfat_failing_sites t : int list =
  match t.profile with
  | None -> []
  | Some tbl ->
    Hashtbl.fold
      (fun site e acc -> if e.lowfat_failed > 0 then site :: acc else acc)
      tbl []
    |> List.sort compare

(** Human-readable diagnosis of an error: the object involved, its
    bounds, and how far outside them the access fell (what the real
    tool prints before aborting). *)
let explain t (e : access_error) : string =
  match e.kind with
  | Use_after_free when t.opts.backend = Backend.Check_backend.Temporal ->
    Printf.sprintf
      "%s: access at %#x hits slot %#x whose lock was invalidated by \
       free; guarded instruction at %#x"
      (kind_name e.kind) e.addr (Lowfat.Layout.base e.addr) e.site
  | Key_mismatch ->
    Printf.sprintf
      "%s: access at %#x carries a key that no longer matches slot \
       %#x's lock (the slot was reallocated); guarded instruction at \
       %#x"
      (kind_name e.kind) e.addr (Lowfat.Layout.base e.addr) e.site
  | Double_free ->
    Printf.sprintf
      "%s: free of %#x found slot %#x's lock already invalidated; \
       free call at %#x"
      (kind_name e.kind) e.addr (Lowfat.Layout.base e.addr) e.site
  | _ ->
  let base = Lowfat.Layout.base e.addr in
  if base = 0 then
    Printf.sprintf "%s: access at %#x (non-fat memory) from site %#x"
      (kind_name e.kind) e.addr e.site
  else begin
    let meta =
      if Vm.Mem.is_mapped t.mem base then Vm.Mem.read t.mem ~addr:base ~len:8
      else -1
    in
    let obj = base + redzone in
    let size_txt =
      if meta < 0 then "an unallocated slot"
      else if meta = 0 then "a freed object"
      else Printf.sprintf "a %d-byte object" meta
    in
    let rel =
      if e.addr < obj then Printf.sprintf "%d bytes below" (obj - e.addr)
      else if meta > 0 && e.addr >= obj + meta then
        Printf.sprintf "%d bytes past the end of" (e.addr - (obj + meta))
      else
        (* the address lands cleanly inside some OTHER object: the
           signature of a non-incremental overflow that skipped its own
           object's bounds and every redzone on the way *)
        "(a non-incremental skip) inside"
    in
    Printf.sprintf
      "%s: access at %#x is %s %s at [%#x, %#x) (slot %d bytes); \
       guarded instruction at %#x"
      (kind_name e.kind) e.addr rel size_txt obj
      (obj + max meta 0)
      (Lowfat.Layout.size base) e.site
  end

let coverage_percent t =
  let total = t.full_checks + t.redzone_checks + t.temporal_checks in
  let primary = t.full_checks + t.temporal_checks in
  if total = 0 then 0.0
  else 100.0 *. float_of_int primary /. float_of_int total
