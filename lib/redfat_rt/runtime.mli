(** The libredfat.so runtime: the redzone-wrapping allocator (paper
    Figure 3) and the complementary (Redzone)+(LowFat) check
    (Figure 4).  Plugs into the VM as the [Callrt] dispatch table and
    the [on_check] hook. *)

val redzone : int
(** Redzone size prepended to every object (16 bytes). *)

type error_kind =
  | Use_after_free
  | Oob_lower
  | Oob_upper
  | Corrupt_meta
  | Key_mismatch
      (** temporal backend: the pointer's tag key does not match the
          slot's live lock (a stale pointer into reallocated memory) *)
  | Double_free
      (** temporal backend: free of a pointer whose key was already
          invalidated *)

type access_error = {
  site : int;  (** address of the guarded instruction *)
  kind : error_kind;
  addr : int;  (** lower bound of the offending access *)
}

exception Memory_error of access_error
exception Bad_free of int

val kind_name : error_kind -> string

(** [Harden] aborts on the first error (production); [Log] records
    unique (site, kind) pairs and continues (bug finding / profiling). *)
type mode = Harden | Log

(** How the redzone component implements state(ptr) (paper §4.1):
    [Lowfat_meta] stores state/size inside the redzone, reusing the
    low-fat [base] computation (RedFat's design); [Asan_shadow] is the
    AddressSanitizer-style separate shadow map, kept as an ablation. *)
type state_impl = Lowfat_meta | Asan_shadow

type options = {
  lowfat : bool;       (** the (LowFat) component; off = redzone-only *)
  size_harden : bool;  (** metadata hardening (Figure 4 lines 23-24) *)
  merged_ub : bool;    (** single-branch bounds via uint32 underflow *)
  check_reads : bool;  (** instrument reads (-reads disables) *)
  state_impl : state_impl;
  mode : mode;
  backend : Backend.Check_backend.id;
      (** which backend's runtime semantics to provide; [Temporal]
          switches the allocator to lock-and-key mode (tagged pointers,
          lock table, key validation on free) *)
}

val default_options : options

type profile_entry = { mutable executed : int; mutable lowfat_failed : int }

type t = {
  alloc : Lowfat.Alloc.t;
  mem : Vm.Mem.t;
  opts : options;
  mutable errors : access_error list;
  seen : (int * error_kind, unit) Hashtbl.t;
  profile : (int, profile_entry) Hashtbl.t option;
  mutable full_checks : int;
  mutable redzone_checks : int;
  mutable temporal_checks : int;
  mutable nonfat_skips : int;
  shadow : Shadow.t;
  locks : (int, int) Hashtbl.t;
      (** temporal: live key per slot base; 0 = freed *)
  mutable next_key : int;
}

val create :
  ?options:options -> ?profiling:bool -> ?random:int -> Vm.Mem.t -> t

val errors : t -> access_error list
(** Unique logged errors, in discovery order. *)

val malloc : t -> int -> int
(** The wrapper of Figure 3: [malloc(SIZE) = lowfat_malloc(SIZE+16)+16],
    with the state/size metadata word written inside the redzone. *)

val free : ?site:int -> t -> int -> unit
(** Marks the metadata word Free (0) and releases the slot.  Raises
    {!Bad_free} on double/invalid free; [free 0] is a no-op.  Under the
    [Temporal] backend, validates and invalidates the pointer's key
    instead; a dead or mismatched key is a [Double_free] error reported
    through the mode machinery (attributed to [site], the caller's code
    address), so [Log] mode records it and skips the free. *)

(** Structural micro-op costs of the check's assembly (the VM charges
    these per executed check).  Now an alias of the backend layer's
    static cost model, which adds the temporal constants
    ([lock_lookup], [key_check]). *)
module Cost = Backend.Check_backend.Cost

val judge :
  meta_size:int ->
  lf_size:int ->
  size_harden:bool ->
  base:int ->
  lb:int ->
  ub:int ->
  error_kind option
(** The bounds verdict for object [base] and access [lb, ub);
    [meta_size < 0] encodes unmapped metadata. *)

val check : t -> Vm.Cpu.t -> X64.Isa.check -> int
(** Execute the Figure 4 check for a trampoline payload; returns the
    cycle cost of the executed path.  Raises {!Memory_error} in
    [Harden] mode; records and continues in [Log] mode. *)

val vm_runtime : t -> Vm.Cpu.runtime
val install : t -> Vm.Cpu.t -> Vm.Cpu.runtime
(** Set the [on_check] hook and return the runtime dispatch table. *)

val allowlist : t -> int list
(** After a profiling run: sites that executed and never failed the
    (LowFat) component (paper §5). *)

val executed_sites : t -> int list

val lowfat_failing_sites : t -> int list
(** Sites that failed the (LowFat) component at least once: the
    would-be false positives (paper §7.1). *)

val explain : t -> access_error -> string
(** Human-readable diagnosis: the object involved, its bounds, and how
    far outside them the access fell. *)

val coverage_percent : t -> float
(** Table 1's coverage: the percentage of dynamically-reached heap
    accesses covered by the backend's primary check (the full
    (Redzone)+(LowFat) check, or the lock-and-key check under the
    temporal backend) rather than the redzone-only fallback. *)
