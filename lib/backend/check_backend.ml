(* The pluggable check-backend interface: see check_backend.mli.

   Design note: this module owns everything about a backend that is
   *static* — planning, emission, fallback, cost, and the declarative
   runtime contract.  The runtime *implementation* (allocator hooks,
   lock table, verdict classification) lives in lib/redfat_rt, which
   dispatches on [id]; keeping it there avoids a dependency cycle
   (redfat_rt needs lib/vm, which the rewriter must not pull in). *)

type id = Redzone | Lowfat | Temporal

let all = [ Redzone; Lowfat; Temporal ]
let default = Lowfat

let name = function
  | Redzone -> "redzone"
  | Lowfat -> "lowfat"
  | Temporal -> "temporal"

let key = function Redzone -> 'r' | Lowfat -> 'l' | Temporal -> 't'

exception Unknown of string

let of_name = function
  | "redzone" -> Some Redzone
  | "lowfat" -> Some Lowfat
  | "temporal" -> Some Temporal
  | _ -> None

let of_name_exn s =
  match of_name s with Some b -> b | None -> raise (Unknown s)

(* --- temporal pointer tagging ---------------------------------------

   The simulated address space is bounded by the stack region of
   Lowfat.Layout (region 86 at 86 * 2^35 < 2^42), so bits 44+ of a
   pointer are always zero; the temporal backend stores an 18-bit
   allocation key there.  Keys cycle 1..2^18-1, skipping 0 so "no key"
   and "freed" are unambiguous.  OCaml's 63-bit ints hold tag+address
   with bit 62 clear, so tagged pointers survive arithmetic, memory
   round-trips and comparisons like ordinary values. *)

let tag_shift = 44
let addr_mask = (1 lsl tag_shift) - 1
let max_key = (1 lsl 18) - 1
let tag_of p = (p lsr tag_shift) land max_key
let untag p = p land addr_mask

type site = {
  s_variant : X64.Isa.variant;
  s_mem : X64.Isa.mem;
  s_lo : int;
  s_hi : int;
  s_write : bool;
  s_site : int;
  s_nsaves : int;
  s_save_flags : bool;
}

type contract = {
  tags_pointers : bool;
  uses_locks : bool;
  detects : string list;
}

module type S = sig
  val id : id
  val name : string
  val plan : profiling:bool -> allowlisted:bool option -> X64.Isa.variant
  val widen : X64.Isa.variant -> X64.Isa.variant option
  val fallback : X64.Isa.variant
  val emit : site -> X64.Isa.check list
  val static_cost : X64.Isa.variant -> int
  val allowed_variants : X64.Isa.variant list
  val contract : contract
end

module Cost = struct
  let access_range = 2   (* lea LB / lea UB of the access *)
  let lowfat_base = 5    (* idx = ptr >> 35; sizes/base table lookups *)
  let null_test = 1      (* non-fat pointers skip the check *)
  let metadata_load = 2  (* size/state word inside the redzone *)
  let size_harden = 2    (* the Figure 4 lines 23-24 mitigation *)
  let bounds_merged = 3  (* single-branch uint32-underflow form *)
  let bounds_branchy = 5 (* two-comparison fallback *)
  let per_save = 2       (* push+pop per clobbered register *)
  let flags_save = 3     (* pushf/popf pair (seta materialization) *)
  let lock_lookup = 2    (* temporal: lock-table load off the slot base *)
  let key_check = 2      (* temporal: tag extract + key compare *)
end

(* all backends emit a single Check pseudo-instruction per site today;
   the list return type is the seam for multi-instruction sequences *)
let emit_one (s : site) : X64.Isa.check list =
  [ { X64.Isa.ck_variant = s.s_variant;
      ck_mem = s.s_mem;
      ck_lo = s.s_lo;
      ck_hi = s.s_hi;
      ck_write = s.s_write;
      ck_site = s.s_site;
      ck_nsaves = s.s_nsaves;
      ck_save_flags = s.s_save_flags } ]

let spatial_cost (variant : X64.Isa.variant) =
  let open Cost in
  let base = access_range + lowfat_base + null_test + metadata_load
             + size_harden + bounds_merged in
  match variant with
  | X64.Isa.Full -> base + bounds_merged (* the extra (LowFat) bounds pair *)
  | X64.Isa.Redzone -> base
  | X64.Isa.Temporal ->
    access_range + lowfat_base + null_test + lock_lookup + key_check
    + bounds_merged

module Lowfat_backend = struct
  let id = Lowfat
  let name = "lowfat"

  (* the paper's two-phase policy: full (Redzone)+(LowFat) everywhere,
     except sites a profiling run kept off the allow-list, which get
     redzone-only to avoid low-fat false positives (Figure 5) *)
  let plan ~profiling ~allowlisted =
    if profiling then X64.Isa.Full
    else
      match allowlisted with
      | None | Some true -> X64.Isa.Full
      | Some false -> X64.Isa.Redzone

  (* spatial checks judge a displacement range against one object's
     bounds, so widening the range to a loop's access hull keeps
     exactly the same failure condition — both variants widen as-is *)
  let widen = function
    | (X64.Isa.Full | X64.Isa.Redzone) as v -> Some v
    | X64.Isa.Temporal -> None

  let fallback = X64.Isa.Redzone
  let emit = emit_one
  let static_cost = spatial_cost
  let allowed_variants = [ X64.Isa.Full; X64.Isa.Redzone ]

  let contract =
    { tags_pointers = false;
      uses_locks = false;
      detects =
        [ "use-after-free"; "oob-lower"; "oob-upper"; "corrupt-meta" ] }
end

module Redzone_backend = struct
  let id = Redzone
  let name = "redzone"

  (* redzone-only everywhere: the (LowFat) component never runs, so
     the allow-list is irrelevant *)
  let plan ~profiling:_ ~allowlisted:_ = X64.Isa.Redzone

  let widen = function
    | X64.Isa.Redzone -> Some X64.Isa.Redzone
    | _ -> None

  let fallback = X64.Isa.Redzone
  let emit = emit_one
  let static_cost = spatial_cost
  let allowed_variants = [ X64.Isa.Redzone ]

  let contract =
    { tags_pointers = false;
      uses_locks = false;
      detects =
        [ "use-after-free"; "oob-lower"; "oob-upper"; "corrupt-meta" ] }
end

module Temporal_backend = struct
  let id = Temporal
  let name = "temporal"

  let plan ~profiling ~allowlisted:_ =
    (* profiling runs classify (LowFat) failures, a lowfat-workflow
       concept; a profiling build under this backend still wants full
       checks so executed-site coverage is recorded *)
    if profiling then X64.Isa.Full else X64.Isa.Temporal

  (* a lock-and-key check proves the key matches *at this iteration*;
     one preheader execution cannot stand in for per-iteration key
     tests (the object could be freed mid-loop by another thread in a
     real binary), so this backend declines widening and keeps the
     per-iteration checks *)
  let widen _ = None

  let fallback = X64.Isa.Redzone
  let emit = emit_one
  let static_cost = spatial_cost
  let allowed_variants = [ X64.Isa.Temporal; X64.Isa.Redzone ]

  let contract =
    { tags_pointers = true;
      uses_locks = true;
      detects =
        [ "use-after-free"; "key-mismatch"; "double-free"; "oob-lower";
          "oob-upper" ] }
end

let of_id : id -> (module S) = function
  | Redzone -> (module Redzone_backend)
  | Lowfat -> (module Lowfat_backend)
  | Temporal -> (module Temporal_backend)

let plan b ~profiling ~allowlisted =
  let (module B) = of_id b in
  B.plan ~profiling ~allowlisted

let widen b v =
  let (module B) = of_id b in
  B.widen v

let fallback b =
  let (module B) = of_id b in
  B.fallback

let emit b site =
  let (module B) = of_id b in
  B.emit site

let static_cost b v =
  let (module B) = of_id b in
  B.static_cost v

let allowed_variants b =
  let (module B) = of_id b in
  B.allowed_variants

let contract b =
  let (module B) = of_id b in
  B.contract
