(** The pluggable check-backend interface.

    A {e backend} is everything that makes one flavour of memory-error
    checking: the per-site instrumentation decision ({!S.plan}), the
    trampoline check sequence it emits ({!S.emit}), the degradation
    fallback when emission faults ({!S.fallback}), a static cost model
    ({!S.static_cost}), and a declarative summary of its runtime
    semantics ({!S.contract} — the allocator hooks and verdict classes
    live in [lib/redfat_rt], dispatching on {!id}).

    Three instances ship:

    - [Lowfat] — the paper's complementary (Redzone)+(LowFat) design:
      full checks by default, redzone-only off the allow-list.  The
      default; byte-identical to the pre-backend rewriter.
    - [Redzone] — the redzone-only ablation: every site gets the
      redzone check, the (LowFat) component is never consulted.
    - [Temporal] — lock-and-key temporal safety: every allocation gets
      a fresh key stored both in a runtime lock table (keyed by the
      low-fat slot base) and in the returned pointer's high bits;
      [free] invalidates the lock, so a dangling dereference — even
      after the slot is reused — fails the key comparison.  Catches
      use-after-free, reuse-after-free and double-free without any
      quarantine. *)

type id = Redzone | Lowfat | Temporal

val all : id list
val default : id

val name : id -> string
(** ["redzone"], ["lowfat"], ["temporal"] — the CLI / [.elimtab] /
    cache-key spelling. *)

val key : id -> char
(** One stable character for {!Rewriter.Rewrite.options_key}. *)

exception Unknown of string
(** Raised by {!of_name_exn}; classified as the [run.backend] fault at
    the engine boundary. *)

val of_name : string -> id option
val of_name_exn : string -> id

(** {2 Temporal pointer-tagging parameters}

    The lock-and-key backend stores the allocation key in the pointer's
    high bits.  The simulated address space tops out below 2^42 (the
    stack region of {!Lowfat.Layout}), so bits [tag_shift..] are free;
    keys are 18 bits wide and cycle, skipping 0 (0 = "no key"). *)

val tag_shift : int
val addr_mask : int
(** [(1 lsl tag_shift) - 1]: masks a tagged pointer down to its
    address.  The VM applies it to effective addresses ({!Vm.Cpu}
    [addr_mask]) so tagged pointers dereference transparently. *)

val max_key : int

val tag_of : int -> int
(** The key carried by a (possibly tagged) pointer; 0 if untagged. *)

val untag : int -> int

(** {2 The backend interface} *)

type site = {
  s_variant : X64.Isa.variant;  (** planned (or degraded-to) variant *)
  s_mem : X64.Isa.mem;
  s_lo : int;
  s_hi : int;  (** covered displacement interval [lo, hi) *)
  s_write : bool;
  s_site : int;  (** address of the guarded instruction *)
  s_nsaves : int;
  s_save_flags : bool;
}

type contract = {
  tags_pointers : bool;  (** malloc returns key-tagged pointers *)
  uses_locks : bool;     (** runtime keeps a slot-base -> key table *)
  detects : string list; (** error classes the backend can report *)
}

module type S = sig
  val id : id
  val name : string

  val plan : profiling:bool -> allowlisted:bool option -> X64.Isa.variant
  (** The per-site instrumentation decision.  [allowlisted] is [None]
      when no allow-list is in force, [Some b] otherwise. *)

  val widen : X64.Isa.variant -> X64.Isa.variant option
  (** Can a check of this variant be widened to a loop's access hull
      and hoisted to the preheader, executing once for the whole loop?
      [Some v'] gives the variant of the hoisted check; [None]
      declines, keeping per-iteration checks.  Spatial variants widen
      as themselves (the failure condition — range outside one
      object's bounds — is unchanged by widening the range); the
      temporal backend always declines, because one key test at loop
      entry cannot stand in for per-iteration tests. *)

  val fallback : X64.Isa.variant
  (** The degradation ladder's second rung: what a site is retried
      with after its primary emission faults (the third rung, audited
      skip, is backend-independent). *)

  val emit : site -> X64.Isa.check list
  (** The trampoline check sequence for one planned site. *)

  val static_cost : X64.Isa.variant -> int
  (** Estimated micro-ops per executed check (the {!Cost} model). *)

  val allowed_variants : X64.Isa.variant list
  (** Check variants this backend can legitimately leave in a binary
      (primary plus fallback); {!Dataflow.Verify} rejects others. *)

  val contract : contract
end

module Lowfat_backend : S
module Redzone_backend : S
module Temporal_backend : S

val of_id : id -> (module S)

(** {2 Conveniences dispatching through {!of_id}} *)

val plan : id -> profiling:bool -> allowlisted:bool option -> X64.Isa.variant
val widen : id -> X64.Isa.variant -> X64.Isa.variant option
val fallback : id -> X64.Isa.variant
val emit : id -> site -> X64.Isa.check list
val static_cost : id -> X64.Isa.variant -> int
val allowed_variants : id -> X64.Isa.variant list
val contract : id -> contract

(** {2 Structural micro-op costs}

    Shared by every backend's {!S.static_cost} and charged per executed
    check by the runtime ([Redfat_rt.Runtime.Cost] re-exports this
    module). *)
module Cost : sig
  val access_range : int
  val lowfat_base : int
  val null_test : int
  val metadata_load : int
  val size_harden : int
  val bounds_merged : int
  val bounds_branchy : int
  val per_save : int
  val flags_save : int
  val lock_lookup : int
  (** Temporal: lock-table load off the slot base. *)

  val key_check : int
  (** Temporal: tag extraction + key comparison. *)
end
