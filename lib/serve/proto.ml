module J = Obs.Json

type op = Harden | Verify | Trace | Stats | Ping | Shutdown

let op_name = function
  | Harden -> "harden"
  | Verify -> "verify"
  | Trace -> "trace"
  | Stats -> "stats"
  | Ping -> "ping"
  | Shutdown -> "shutdown"

let op_of_name = function
  | "harden" -> Some Harden
  | "verify" -> Some Verify
  | "trace" -> Some Trace
  | "stats" -> Some Stats
  | "ping" -> Some Ping
  | "shutdown" -> Some Shutdown
  | _ -> None

let ops = [ Harden; Verify; Trace; Stats; Ping; Shutdown ]

type request = {
  rq_id : string;
  rq_op : op;
  rq_target : string;
  rq_backend : Backend.Check_backend.id;
  rq_hoist : bool;
}

let needs_target = function
  | Harden | Verify | Trace -> true
  | Stats | Ping | Shutdown -> false

(* one request per line; unknown fields are ignored so clients can
   annotate requests freely.  Parse errors are data errors (the line is
   answered with ok:false), never daemon faults. *)
let parse_request line : (request, string) result =
  match J.parse line with
  | Error e -> Error ("bad JSON: " ^ e)
  | Ok j -> (
    let str name = Option.bind (J.member name j) J.to_str in
    let bool name =
      match J.member name j with Some (J.Bool b) -> Some b | _ -> None
    in
    let rq_id = Option.value (str "id") ~default:"-" in
    match str "op" with
    | None -> Error "missing \"op\""
    | Some opn -> (
      match op_of_name opn with
      | None ->
        Error
          (Printf.sprintf "unknown op %S (one of: %s)" opn
             (String.concat "|" (List.map op_name ops)))
      | Some rq_op -> (
        let target = Option.value (str "target") ~default:"" in
        if needs_target rq_op && target = "" then
          Error (Printf.sprintf "op %S needs a \"target\"" opn)
        else
          match
            match str "backend" with
            | None -> Ok Backend.Check_backend.default
            | Some b -> (
              match Backend.Check_backend.of_name b with
              | Some id -> Ok id
              | None -> Error (Printf.sprintf "unknown backend %S" b))
          with
          | Error e -> Error e
          | Ok rq_backend ->
            Ok
              {
                rq_id;
                rq_op;
                rq_target = target;
                rq_backend;
                rq_hoist = Option.value (bool "hoist") ~default:false;
              })))

(* --- response rendering ---------------------------------------------- *)

type field =
  | B of bool
  | I of int
  | F of float
  | S of string
  | R of string  (** pre-rendered JSON, embedded verbatim *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_field = function
  | B b -> if b then "true" else "false"
  | I i -> string_of_int i
  | F x ->
    if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
    else Printf.sprintf "%.6g" x
  | S s -> "\"" ^ escape s ^ "\""
  | R raw -> raw

let obj fields =
  "{"
  ^ String.concat ", "
      (List.map
         (fun (k, v) -> "\"" ^ escape k ^ "\": " ^ render_field v)
         fields)
  ^ "}"

let response ~id ~op ~ok fields =
  obj ([ ("id", S id); ("op", S (op_name op)); ("ok", B ok) ] @ fields)

let error_response ~id ~detail =
  obj [ ("id", S id); ("ok", B false); ("error", S detail) ]

(* the client side of the check: a response line is "ok" iff its
   "ok" field is true *)
let response_ok line =
  match J.parse line with
  | Error _ -> false
  | Ok j -> ( match J.member "ok" j with Some (J.Bool b) -> b | _ -> false)
