(** The shared target-name registry: one resolver for every surface
    that accepts a workload name (the CLI's batch verbs, the serving
    daemon's request [target] field, the traffic-simulation bench).

    A target is either a built-in workload name ([spec:mcf], [cve:...],
    [kraken:...], [uaf:...], [bug:...], [chrome], [synth:<seed>]) or a
    MiniC source path ([examples/victim.mc]).  An unknown name raises the
    typed [input.target] fault ({!Engine.Fault.Input}), so resolution
    composes with {!Engine.Pipeline.protect} per-request isolation. *)

val workload_names : unit -> string list
(** Every built-in workload name, [redfat list] order. *)

val find_uaf : string -> Minic.Ast.program * int list * int list
(** [uaf:] case by id: (program, benign inputs, attack inputs). *)

val find_bug : string -> Workloads.Fuzzbugs.case
(** [bug:] seeded-bug fuzzing case by id; unknown ids raise the typed
    [input.target] fault. *)

val find_workload : string -> Binfmt.Relf.t * int list
(** Resolve to a compiled binary plus its reference inputs ([redfat
    workload]; [uaf:]/[cve:] report their attack inputs). *)

val find_program : string -> Minic.Ast.program * int list list * int list
(** Resolve to (program, training suite, reference inputs) — the
    staged-workflow entry point; also accepts [.mc] paths. *)
