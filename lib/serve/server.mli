(** The hardening-as-a-service daemon: a stream of {!Proto} requests
    scheduled over one shared {!Engine.Pipeline} and answered from a
    three-tier artifact store —

    {v
    Lru hot tier (bounded bytes, admit-on-second-touch, single-flight)
      -> Engine.Cache memory tier (unbounded, per-stage artifacts)
        -> Engine.Cache ART5 disk tier (persistent)
          -> recompute (Figure-5 workflow on the domain pool)
    v}

    Per-request fault isolation comes from {!Engine.Pipeline.protect}:
    a poisoned request (unknown target, parse fault, injected fault,
    failed soundness audit, crashing run) yields one [ok:false]
    response carrying the typed fault; the daemon keeps serving.

    Instrumented end to end on the engine's {!Obs} collector:
    [serve.req.<op>]/[serve.fault]/[serve.conn] counters,
    [serve.cache.*] hot-tier counters (hits/misses/coalesced/admitted/
    evictions/oversize), a [serve.latency_us] histogram and one
    [serve.<op>] span per request (category ["serve"]). *)

type t

val create : ?mem_bytes:int -> Engine.Pipeline.t -> t
(** [mem_bytes] (default 64 MiB): hot-tier capacity.  The server
    records into the engine's collector and honours its injection
    harness (the canonical spec is part of every hot-tier key). *)

val engine : t -> Engine.Pipeline.t
val lru : t -> Lru.t

val stop_requested : t -> bool

val request_stop : t -> unit
(** Ask the accept loop to stop (signal handlers, Shutdown requests).
    Async-signal-safe (one atomic store). *)

val handle : t -> string -> string * bool
(** One request line in, [(response line, ok)] out.  Never raises on
    request data: malformed lines and faulting requests become
    [ok:false] responses. *)

val run_script : t -> lines:string list -> emit:(string -> unit) -> int
(** Batch transport ([redfat serve --script]): handle each line in
    order, [emit] each response; returns the number of failed
    requests.  Stops early if a [shutdown] request is processed. *)

val listen : t -> socket:string -> unit
(** Daemon transport: bind [socket] (an existing path is replaced),
    accept connections (one domain each, joined on exit), serve
    line-by-line until {!request_stop}.  The socket is unlinked on the
    way out, including on bind/accept exceptions. *)

val send : socket:string -> lines:string list -> emit:(string -> unit) -> int
(** Client: connect (retrying ~10s while the daemon starts), stream
    the request [lines], half-close, [emit] each response line until
    EOF; returns the number of not-ok responses. *)
