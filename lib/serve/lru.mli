(** The shared hot tier of the serving daemon: a size-bounded,
    mutex-guarded LRU cache of marshalled artifact blobs, layered above
    the engine's content-addressed {!Engine.Cache} (whose memory table
    is unbounded and whose disk tier pays an unmarshal-plus-IO round
    trip per hit).

    Three properties distinguish it from a plain memo table:

    - {e admission on second touch}: a key's first computation is
      remembered only in a bounded ghost set; the blob itself is
      admitted to the cache when the key is touched again (or when a
      concurrent burst proves it hot).  One-shot requests therefore
      never displace the working set.
    - {e eviction by bytes}: admission accounts the blob's size and
      evicts least-recently-used entries until the configured byte
      capacity holds.  A blob larger than the whole capacity is never
      admitted (and evicts nothing).  Evicted keys fall back into the
      ghost set, so a re-touched victim re-admits on its next
      computation.
    - {e single-flight}: concurrent [get]s of the same absent key run
      the computation once; the others block on a condition variable
      and share the result (a raising computation re-raises in every
      waiter, and nothing is admitted).

    Values are immutable [string] blobs (by convention [Marshal]
    output), so cached artifacts are never shared mutable state
    between worker domains — like {!Engine.Cache}, every consumer
    unmarshals its own copy. *)

type stats = {
  mutable hits : int;       (** blob served from the hot tier *)
  mutable misses : int;     (** computation ran (single-flight leader) *)
  mutable coalesced : int;  (** waited on another request's computation *)
  mutable admitted : int;   (** blobs inserted (second touch reached) *)
  mutable evictions : int;  (** blobs evicted to respect the byte bound *)
  mutable oversize : int;   (** blobs larger than the whole capacity *)
  mutable bytes : int;      (** resident blob bytes (≤ capacity) *)
}

type t

val create :
  ?cap_bytes:int -> ?ghost_cap:int -> ?notify:(string -> unit) -> unit -> t
(** [cap_bytes] (default 64 MiB): resident-blob byte bound.
    [ghost_cap] (default 4096): keys remembered as touched-once.
    [notify]: called outside the lock with ["hits"], ["misses"],
    ["coalesced"], ["admitted"], ["evictions"] or ["oversize"] per
    event — e.g. to bump lock-free [Obs] counters. *)

val cap_bytes : t -> int
val stats : t -> stats

type outcome = Hit | Miss | Coalesced

val outcome_name : outcome -> string
(** ["hit"], ["miss"], ["coalesced"]. *)

val get : t -> key:string -> (unit -> string) -> string * outcome
(** [get t ~key compute]: the blob for [key] — from the cache ([Hit]),
    from another in-flight request's computation ([Coalesced]), or by
    running [compute] ([Miss]).  [compute] runs outside the lock; its
    exception propagates to the leader and every coalesced waiter. *)

val mem : t -> string -> bool
(** Residency probe: no stats effect, no recency update (tests). *)

val keys_mru : t -> string list
(** Resident keys, most-recently-used first (tests). *)
