(** The serving wire protocol: one JSON object per line, in both
    directions.  Requests are parsed with the in-tree {!Obs.Json}
    reader (unknown fields ignored); responses are rendered as
    single-line JSON.

    Request schema (see docs/MANUAL.md, "redfat serve"):
    {v
    {"id": "r1", "op": "harden", "target": "spec:mcf",
     "backend": "lowfat", "hoist": false}
    v}

    [op] is required; [target] is required for [harden]/[verify]/
    [trace]; [id] defaults to ["-"]; [backend] defaults to the
    engine default; [hoist] defaults to [false].

    A malformed line is a {e data} error: it yields one
    [{"id":..., "ok": false, "error": ...}] response and the
    connection (and daemon) keeps serving. *)

type op = Harden | Verify | Trace | Stats | Ping | Shutdown

val op_name : op -> string
val op_of_name : string -> op option
val ops : op list

type request = {
  rq_id : string;
  rq_op : op;
  rq_target : string;  (** [""] for target-less ops *)
  rq_backend : Backend.Check_backend.id;
  rq_hoist : bool;
}

val needs_target : op -> bool
val parse_request : string -> (request, string) result

(** {2 Response rendering} *)

type field =
  | B of bool
  | I of int
  | F of float
  | S of string
  | R of string  (** pre-rendered JSON, embedded verbatim *)

val obj : (string * field) list -> string
(** One-line JSON object. *)

val response : id:string -> op:op -> ok:bool -> (string * field) list -> string
(** [{"id":..., "op":..., "ok":...}] plus the given fields. *)

val error_response : id:string -> detail:string -> string
(** The parse-failure response (no op to echo). *)

val response_ok : string -> bool
(** Client-side: does this response line carry ["ok": true]? *)
