module Fault = Engine.Fault

let workload_names () =
  List.map (fun (b : Workloads.Spec.bench) -> "spec:" ^ b.name)
    Workloads.Spec.all
  @ List.map (fun (c : Workloads.Cve.case) -> "cve:" ^ c.name)
      Workloads.Cve.all
  @ List.map (fun (b : Workloads.Kraken.bench) -> "kraken:" ^ b.name)
      Workloads.Kraken.all
  @ List.map (fun (c : Workloads.Uaf.case) -> "uaf:" ^ c.id) Workloads.Uaf.all
  @ List.map (fun (c : Workloads.Fuzzbugs.case) -> "bug:" ^ c.id)
      Workloads.Fuzzbugs.all
  @ [ "uaf:reuse"; "uaf:double-free"; "chrome"; "synth:<seed>" ]

(* uaf: targets run their ATTACK input as the reference workload (like
   cve: binaries from find_workload), so a Log-mode pipeline run shows
   what the selected backend detects *)
let find_uaf n : Minic.Ast.program * int list * int list =
  match n with
  | "reuse" -> (Workloads.Uaf.reuse_case, [], [])
  | "double-free" -> (Workloads.Uaf.double_free_case, [ 0 ], [ 1 ])
  | _ ->
    let c = List.find (fun (c : Workloads.Uaf.case) -> c.id = n)
        Workloads.Uaf.all
    in
    (c.program, Workloads.Uaf.benign_inputs, Workloads.Uaf.attack_inputs)

(* bug: targets are the seeded-bug fuzzing cases; resolved here so the
   campaign CLI, the serve daemon and the bench share one name space *)
let find_bug n : Workloads.Fuzzbugs.case =
  match Workloads.Fuzzbugs.find n with
  | c -> c
  | exception Not_found ->
    Fault.fail
      (Fault.Input
         {
           what = "target";
           detail = "unknown seeded bug " ^ n ^ " (try: redfat list)";
         })

let find_workload name : Binfmt.Relf.t * int list =
  match String.split_on_char ':' name with
  | [ "spec"; n ] ->
    let b = Workloads.Spec.find n in
    (Workloads.Spec.binary b, Workloads.Spec.ref_inputs b)
  | [ "cve"; n ] ->
    let c = List.find (fun (c : Workloads.Cve.case) -> c.name = n)
        Workloads.Cve.all
    in
    (Workloads.Cve.binary c, c.attack_inputs)
  | [ "kraken"; n ] ->
    let b = Workloads.Kraken.find n in
    (Workloads.Kraken.binary b, Workloads.Kraken.inputs b)
  | [ "uaf"; n ] ->
    let prog, _, attack = find_uaf n in
    (Minic.Codegen.compile prog, attack)
  | [ "bug"; n ] ->
    let c = find_bug n in
    (Workloads.Fuzzbugs.binary c, c.attack)
  | [ "chrome" ] -> (Workloads.Chrome.binary (), [ 0; 50 ])
  | [ "synth"; seed ] ->
    ( Minic.Codegen.compile
        (Workloads.Synth.program ~seed:(int_of_string seed) ()),
      [] )
  | _ ->
    Fault.fail
      (Fault.Input
         {
           what = "target";
           detail = "unknown workload " ^ name ^ " (try: redfat list)";
         })

(* Resolve a workflow target to (program, train suite, ref inputs).
   Accepts the built-in workload names and MiniC source paths
   (examples/victim.mc style), so the staged commands work on user
   programs too. *)
let find_program name : Minic.Ast.program * int list list * int list =
  if Filename.check_suffix name ".mc" then begin
    if not (Sys.file_exists name) then
      Fault.fail
        (Fault.Io { what = "read"; path = name; detail = "no such file" });
    let src = In_channel.with_open_text name In_channel.input_all in
    match Minic.Parser.parse_program src with
    | prog -> (prog, [ [] ], [])
    | exception Minic.Parser.Parse_error (msg, pos) ->
      Fault.fail
        (Fault.Parse
           {
             what = "source";
             detail =
               Printf.sprintf "%s:%d:%d: parse error: %s" name pos.line
                 pos.col msg;
           })
    | exception Minic.Lexer.Lex_error (msg, pos) ->
      Fault.fail
        (Fault.Parse
           {
             what = "source";
             detail =
               Printf.sprintf "%s:%d:%d: lex error: %s" name pos.line pos.col
                 msg;
           })
  end
  else
    match String.split_on_char ':' name with
    | [ "spec"; n ] ->
      let b = Workloads.Spec.find n in
      ( Workloads.Spec.program b,
        [ Workloads.Spec.train_inputs b ],
        Workloads.Spec.ref_inputs b )
    | [ "cve"; n ] ->
      let c = List.find (fun (c : Workloads.Cve.case) -> c.name = n)
          Workloads.Cve.all
      in
      (c.program, [ c.benign_inputs ], c.benign_inputs)
    | [ "kraken"; n ] ->
      let b = Workloads.Kraken.find n in
      let inputs = Workloads.Kraken.inputs b in
      (Workloads.Kraken.program b, [ inputs ], inputs)
    | [ "uaf"; n ] ->
      let prog, benign, attack = find_uaf n in
      (prog, [ benign ], attack)
    | [ "bug"; n ] ->
      let c = find_bug n in
      (c.program, [ c.benign ], c.attack)
    | [ "chrome" ] -> (Workloads.Chrome.program (), [ [ 0; 50 ] ], [ 0; 50 ])
    | [ "synth"; seed ] ->
      (Workloads.Synth.program ~seed:(int_of_string seed) (), [ [] ], [])
    | _ ->
      Fault.fail
        (Fault.Input
           {
             what = "target";
             detail = "unknown workload " ^ name ^ " (try: redfat list)";
           })
