module Pl = Engine.Pipeline
module Fault = Engine.Fault
module Rw = Redfat.Rewrite

type t = {
  eng : Pl.t;
  lru : Lru.t;
  stop : bool Atomic.t;
}

let obs t = Pl.obs t.eng

let create ?(mem_bytes = 64 * 1024 * 1024) eng =
  let o = Pl.obs eng in
  {
    eng;
    lru =
      Lru.create ~cap_bytes:mem_bytes
        ~notify:(fun ev -> Obs.add o ("serve.cache." ^ ev))
        ();
    stop = Atomic.make false;
  }

let engine t = t.eng
let lru t = t.lru
let stop_requested t = Atomic.get t.stop
let request_stop t = Atomic.set t.stop true

(* --- the served artifact --------------------------------------------- *)

(* everything a harden/verify/trace response needs, computed once per
   (target, backend, hoist) and held in the hot tier as a marshal blob.
   The hardened binary rides along serialized, so a trace request on a
   hot key replays the hardened run without recompiling or rewriting;
   the baseline run happens at compute time for the same reason. *)
type artifact = {
  a_target : string;
  a_backend : string;
  a_hoist : bool;
  a_binary : string;  (* Binfmt.Relf.serialize of the hardened binary *)
  a_inputs : int list;
  a_base_cycles : int;
  a_checks_emitted : int;
  a_trampolines : int;
  a_code_bytes : int;
  a_hoisted : int;
}

let artifact_key t (rq : Proto.request) =
  Engine.Cache.key ~kind:"serve"
    [
      rq.rq_target;
      Backend.Check_backend.name rq.rq_backend;
      (if rq.rq_hoist then "hoist" else "nohoist");
      (* injected runs must never share artifacts with clean runs *)
      Engine.Faultinject.to_string (Pl.inject t.eng);
    ]

(* the full Figure-5 workflow; each primitive below goes through the
   engine's own two-tier artifact cache, so a hot-tier miss still reuses
   any compile/profile/harden artifacts the disk tier holds *)
let compute_artifact t (rq : Proto.request) : artifact =
  let prog, train, inputs = Targets.find_program rq.rq_target in
  let bin = Pl.compile t.eng prog in
  let allow = Pl.profile t.eng ~test_suite:train bin in
  let opts =
    { Rw.optimized with
      allowlist = Some allow;
      backend = rq.rq_backend;
      hoist = rq.rq_hoist }
  in
  let hard = Pl.harden t.eng ~opts bin in
  (match Pl.verify t.eng hard.Rw.binary with
  | Error e -> Fault.fail (Fault.Verify { unaccounted = 0; detail = e })
  | Ok r ->
    if not (Redfat.Verify.ok r) then
      Fault.fail
        (Fault.Verify
           {
             unaccounted = List.length r.Redfat.Verify.failures;
             detail = "soundness audit failed";
           }));
  let base, bv = Pl.run_baseline t.eng ~inputs bin in
  (match bv with
  | Redfat.Finished _ -> ()
  | v ->
    Fault.fail
      (Fault.Run { what = "baseline"; detail = Redfat.verdict_to_string v }));
  {
    a_target = rq.rq_target;
    a_backend = Backend.Check_backend.name rq.rq_backend;
    a_hoist = rq.rq_hoist;
    a_binary = Binfmt.Relf.serialize hard.Rw.binary;
    a_inputs = inputs;
    a_base_cycles = base.Redfat.cycles;
    a_checks_emitted = hard.Rw.stats.Rw.checks_emitted;
    a_trampolines = hard.Rw.stats.Rw.trampolines;
    a_code_bytes = hard.Rw.stats.Rw.text_bytes + hard.Rw.stats.Rw.tramp_bytes;
    a_hoisted = hard.Rw.stats.Rw.hoisted_checks;
  }

let artifact t (rq : Proto.request) : artifact * Lru.outcome =
  let blob, outcome =
    Lru.get t.lru ~key:(artifact_key t rq) (fun () ->
        Marshal.to_string (compute_artifact t rq) [])
  in
  ((Marshal.from_string blob 0 : artifact), outcome)

(* --- per-op responses ------------------------------------------------ *)

let artifact_fields (a : artifact) (outcome : Lru.outcome) =
  [
    ("target", Proto.S a.a_target);
    ("backend", Proto.S a.a_backend);
    ("hoist", Proto.B a.a_hoist);
    ("cache", Proto.S (Lru.outcome_name outcome));
    ("checks_emitted", Proto.I a.a_checks_emitted);
    ("trampolines", Proto.I a.a_trampolines);
    ("code_bytes", Proto.I a.a_code_bytes);
    ("hoisted_checks", Proto.I a.a_hoisted);
    ("baseline_cycles", Proto.I a.a_base_cycles);
  ]

let run_op t (rq : Proto.request) : (string * Proto.field) list =
  match rq.rq_op with
  | Proto.Ping -> [ ("pong", Proto.B true) ]
  | Proto.Shutdown ->
    request_stop t;
    [ ("stopping", Proto.B true) ]
  | Proto.Stats ->
    let ls = Lru.stats t.lru in
    let cs = Pl.cache_stats t.eng in
    [
      ("serve.cache.hits", Proto.I ls.Lru.hits);
      ("serve.cache.misses", Proto.I ls.Lru.misses);
      ("serve.cache.coalesced", Proto.I ls.Lru.coalesced);
      ("serve.cache.admitted", Proto.I ls.Lru.admitted);
      ("serve.cache.evictions", Proto.I ls.Lru.evictions);
      ("serve.cache.bytes", Proto.I ls.Lru.bytes);
      ("serve.cache.cap_bytes", Proto.I (Lru.cap_bytes t.lru));
      ("cache.hit.mem", Proto.I cs.Engine.Cache.hits_mem);
      ("cache.hit.disk", Proto.I cs.Engine.Cache.hits_disk);
      ("cache.miss", Proto.I cs.Engine.Cache.misses);
    ]
  | Proto.Harden ->
    let a, outcome = artifact t rq in
    artifact_fields a outcome
  | Proto.Verify -> (
    let a, outcome = artifact t rq in
    let bin = Binfmt.Relf.parse a.a_binary in
    match Pl.verify t.eng bin with
    | Error e -> Fault.fail (Fault.Verify { unaccounted = 0; detail = e })
    | Ok r ->
      let failures = List.length r.Redfat.Verify.failures in
      if not (Redfat.Verify.ok r) then
        Fault.fail
          (Fault.Verify { unaccounted = failures; detail = "audit failed" });
      [
        ("target", Proto.S a.a_target);
        ("backend", Proto.S a.a_backend);
        ("cache", Proto.S (Lru.outcome_name outcome));
        ("verified", Proto.B true);
        ("accounted", Proto.I r.Redfat.Verify.total);
      ])
  | Proto.Trace ->
    let a, outcome = artifact t rq in
    let bin = Binfmt.Relf.parse a.a_binary in
    let hrun =
      Pl.run_hardened t.eng
        ~options:{ Redfat.Runtime.default_options with mode = Log }
        ~inputs:a.a_inputs bin
    in
    let cycles = hrun.Redfat.run.Redfat.cycles in
    [
      ("target", Proto.S a.a_target);
      ("backend", Proto.S a.a_backend);
      ("cache", Proto.S (Lru.outcome_name outcome));
      ("verdict", Proto.S (Redfat.verdict_to_string hrun.Redfat.verdict));
      ("baseline_cycles", Proto.I a.a_base_cycles);
      ("hardened_cycles", Proto.I cycles);
      ( "overhead",
        Proto.F (float_of_int cycles /. float_of_int (max 1 a.a_base_cycles))
      );
      ( "detected",
        Proto.I (List.length (Redfat.Runtime.errors hrun.Redfat.rt)) );
    ]

(* --- the request boundary -------------------------------------------- *)

(* one request line in, one response line out.  The engine's protect
   boundary isolates the request: a poisoned target (bad name, parse
   fault, injected fault, failed audit, crashing run) answers ok:false
   with the typed fault attached — the daemon, and even the connection,
   keep serving. *)
let handle t line : string * bool =
  let o = obs t in
  match Proto.parse_request line with
  | Error e ->
    Obs.add o "serve.req.badline";
    (Proto.error_response ~id:"-" ~detail:e, false)
  | Ok rq ->
    let opn = Proto.op_name rq.rq_op in
    Obs.add o ("serve.req." ^ opn);
    let t0 = Unix.gettimeofday () in
    let label = if rq.rq_target = "" then "serve:" ^ opn else rq.rq_target in
    let resp =
      Obs.span o ~cat:"serve" ("serve." ^ opn) (fun () ->
          match Pl.protect t.eng ~target:label (fun () -> run_op t rq) with
          | Ok fields ->
            Proto.response ~id:rq.rq_id ~op:rq.rq_op ~ok:true fields
          | Error f ->
            Obs.add o "serve.fault";
            Proto.response ~id:rq.rq_id ~op:rq.rq_op ~ok:false
              [ ("fault", Proto.R (Fault.to_json f)) ])
    in
    Obs.observe o "serve.latency_us"
      (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
    (resp, Proto.response_ok resp)

(* --- transports ------------------------------------------------------ *)

(* script mode: a request file in, responses to [emit], number of
   failed requests out — the deterministic-test transport *)
let run_script t ~lines ~emit =
  let failed = ref 0 in
  List.iter
    (fun line ->
      if String.trim line <> "" && not (stop_requested t) then begin
        let resp, ok = handle t line in
        if not ok then incr failed;
        emit resp
      end)
    lines;
  !failed

let serve_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let rec loop () =
       if not (stop_requested t) then
         match In_channel.input_line ic with
         | None -> ()
         | Some line ->
           if String.trim line <> "" then begin
             let resp, _ok = handle t line in
             Out_channel.output_string oc (resp ^ "\n");
             Out_channel.flush oc
           end;
           loop ()
     in
     loop ()
   with _ -> ());
  (try Out_channel.flush oc with Sys_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* accept loop: select with a short timeout so the stop flag (SIGTERM
   handler, or a Shutdown request on any connection) is polled between
   accepts; one domain per connection, joined before returning so a
   clean shutdown never drops an in-flight response *)
let listen t ~socket =
  (try Sys.remove socket with Sys_error _ -> ());
  let srv = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close srv with Unix.Unix_error _ -> ());
      try Sys.remove socket with Sys_error _ -> ())
  @@ fun () ->
  Unix.bind srv (ADDR_UNIX socket);
  Unix.listen srv 16;
  let conns = ref [] in
  while not (stop_requested t) do
    match Unix.select [ srv ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept srv with
      | fd, _ ->
        Obs.add (obs t) "serve.conn";
        conns := Domain.spawn (fun () -> serve_conn t fd) :: !conns
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  List.iter Domain.join !conns

(* client mode: stream a request file to a running daemon and print
   each response; returns the number of not-ok responses.  Retries the
   connect briefly so `daemon & client` races in scripts just work. *)
let send ~socket ~lines ~emit =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  let rec connect attempt =
    match Unix.connect fd (ADDR_UNIX socket) with
    | () -> ()
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _)
      when attempt < 100 ->
      Unix.sleepf 0.1;
      connect (attempt + 1)
  in
  connect 0;
  let oc = Unix.out_channel_of_descr fd in
  List.iter
    (fun line ->
      if String.trim line <> "" then Out_channel.output_string oc (line ^ "\n"))
    lines;
  Out_channel.flush oc;
  Unix.shutdown fd SHUTDOWN_SEND;
  let ic = Unix.in_channel_of_descr fd in
  let failed = ref 0 in
  let rec read () =
    match In_channel.input_line ic with
    | None -> ()
    | Some resp ->
      if not (Proto.response_ok resp) then incr failed;
      emit resp;
      read ()
  in
  read ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  !failed
