type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
  mutable admitted : int;
  mutable evictions : int;
  mutable oversize : int;
  mutable bytes : int;
}

(* intrusive doubly-linked recency list around a cyclic sentinel:
   sentinel.next = most recent, sentinel.prev = eviction victim *)
type node = {
  n_key : string;
  n_blob : string;
  n_size : int;
  mutable n_prev : node;
  mutable n_next : node;
}

(* a single-flight computation in progress; waiters sleep on the
   cache-wide condition until the leader resolves it *)
type flight = {
  mutable f_result : (string, exn) result option;
  mutable f_waiters : int;
}

type t = {
  lock : Mutex.t;
  cond : Condition.t;
  tbl : (string, node) Hashtbl.t;
  flights : (string, flight) Hashtbl.t;
  ghost : (string, unit) Hashtbl.t;  (* keys touched once, not admitted *)
  ghost_q : string Queue.t;          (* FIFO bound for the ghost set *)
  ghost_cap : int;
  cap : int;
  sentinel : node;
  st : stats;
  notify : (string -> unit) option;
}

let make_sentinel () =
  let rec s =
    { n_key = ""; n_blob = ""; n_size = 0; n_prev = s; n_next = s }
  in
  s

let create ?(cap_bytes = 64 * 1024 * 1024) ?(ghost_cap = 4096) ?notify () =
  {
    lock = Mutex.create ();
    cond = Condition.create ();
    tbl = Hashtbl.create 64;
    flights = Hashtbl.create 8;
    ghost = Hashtbl.create 64;
    ghost_q = Queue.create ();
    ghost_cap = max 1 ghost_cap;
    cap = max 0 cap_bytes;
    sentinel = make_sentinel ();
    st =
      { hits = 0; misses = 0; coalesced = 0; admitted = 0; evictions = 0;
        oversize = 0; bytes = 0 };
    notify;
  }

let cap_bytes t = t.cap
let stats t = t.st
let notify t ev = match t.notify with Some f -> f ev | None -> ()

type outcome = Hit | Miss | Coalesced

let outcome_name = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Coalesced -> "coalesced"

(* --- recency list (all under t.lock) -------------------------------- *)

let unlink n =
  n.n_prev.n_next <- n.n_next;
  n.n_next.n_prev <- n.n_prev;
  n.n_prev <- n;
  n.n_next <- n

let push_front t n =
  n.n_next <- t.sentinel.n_next;
  n.n_prev <- t.sentinel;
  t.sentinel.n_next.n_prev <- n;
  t.sentinel.n_next <- n

let touch t n =
  unlink n;
  push_front t n

(* --- the ghost set (touched-once keys, FIFO-bounded) ----------------- *)

let ghost_add t key =
  if not (Hashtbl.mem t.ghost key) then begin
    Hashtbl.replace t.ghost key ();
    Queue.push key t.ghost_q;
    (* the queue can hold keys since promoted out of the ghost set;
       drain those for free while enforcing the bound *)
    while Hashtbl.length t.ghost > t.ghost_cap && not (Queue.is_empty t.ghost_q)
    do
      let victim = Queue.pop t.ghost_q in
      Hashtbl.remove t.ghost victim
    done
  end

(* --- admission + eviction (under t.lock) ----------------------------- *)

let evict_one t =
  let victim = t.sentinel.n_prev in
  if victim != t.sentinel then begin
    unlink victim;
    Hashtbl.remove t.tbl victim.n_key;
    t.st.bytes <- t.st.bytes - victim.n_size;
    t.st.evictions <- t.st.evictions + 1;
    (* a re-touched victim should re-admit on its next computation *)
    ghost_add t victim.n_key;
    true
  end
  else false

let admit t key blob =
  let size = String.length blob in
  if size > t.cap then begin
    t.st.oversize <- t.st.oversize + 1;
    ghost_add t key;
    false
  end
  else begin
    Hashtbl.remove t.ghost key;
    (match Hashtbl.find_opt t.tbl key with
    | Some n -> touch t n
    | None ->
      let n =
        let rec n' =
          { n_key = key; n_blob = blob; n_size = size; n_prev = n';
            n_next = n' }
        in
        n'
      in
      Hashtbl.replace t.tbl key n;
      push_front t n;
      t.st.bytes <- t.st.bytes + size;
      t.st.admitted <- t.st.admitted + 1;
      while t.st.bytes > t.cap && evict_one t do () done);
    true
  end

(* --- the lookup ------------------------------------------------------ *)

let get t ~key compute =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
    touch t n;
    t.st.hits <- t.st.hits + 1;
    Mutex.unlock t.lock;
    notify t "hits";
    (n.n_blob, Hit)
  | None -> (
    match Hashtbl.find_opt t.flights key with
    | Some f ->
      (* single-flight: wait for the leader; a waiter also counts as a
         touch, so a concurrent burst admits the blob immediately *)
      f.f_waiters <- f.f_waiters + 1;
      t.st.coalesced <- t.st.coalesced + 1;
      let rec wait () =
        match f.f_result with
        | Some r -> r
        | None ->
          Condition.wait t.cond t.lock;
          wait ()
      in
      let r = wait () in
      Mutex.unlock t.lock;
      notify t "coalesced";
      (match r with Ok blob -> (blob, Coalesced) | Error e -> raise e)
    | None ->
      let f = { f_result = None; f_waiters = 0 } in
      Hashtbl.replace t.flights key f;
      t.st.misses <- t.st.misses + 1;
      Mutex.unlock t.lock;
      notify t "misses";
      let res = match compute () with b -> Ok b | exception e -> Error e in
      Mutex.lock t.lock;
      f.f_result <- Some res;
      Hashtbl.remove t.flights key;
      let admitted =
        match res with
        | Ok blob ->
          (* second touch = previously ghosted, or a concurrent burst *)
          if Hashtbl.mem t.ghost key || f.f_waiters > 0 then admit t key blob
          else begin
            ghost_add t key;
            false
          end
        | Error _ -> false
      in
      Condition.broadcast t.cond;
      Mutex.unlock t.lock;
      if admitted then begin
        notify t "admitted";
        if t.st.evictions > 0 then ()
      end;
      (match res with Ok blob -> (blob, Miss) | Error e -> raise e))

let mem t key =
  Mutex.lock t.lock;
  let r = Hashtbl.mem t.tbl key in
  Mutex.unlock t.lock;
  r

let keys_mru t =
  Mutex.lock t.lock;
  let rec go n acc =
    if n == t.sentinel then List.rev acc else go n.n_next (n.n_key :: acc)
  in
  let r = go t.sentinel.n_next [] in
  Mutex.unlock t.lock;
  r
