(** Over-approximate control-flow recovery (paper §6).

    A spurious leader merely splits a batch (smaller batches, same
    correctness); missed leaders would be unsound, so recovery errs on
    the side of more: direct branch/call targets, fall-throughs of
    branches/calls/returns/indirect transfers, and every code-pointer
    constant found in the instruction stream (potential indirect
    targets).

    Block boundaries are computed by {!Dataflow.Graph.leaders} — the
    same function the rewrite-soundness linter uses — and the recovered
    [graph] feeds the dominator, liveness and availability analyses. *)

type t = {
  text_addr : int;
  instrs : (int * X64.Isa.instr * int) array;  (** addr, instr, length *)
  index_of : (int, int) Hashtbl.t;
  leaders : (int, unit) Hashtbl.t;
  graph : Dataflow.Graph.t;  (** basic-block graph over [instrs] *)
}

val recover : text_addr:int -> string -> t

val of_instrs : text_addr:int -> (int * X64.Isa.instr * int) array -> t
(** Build the graph over an already-swept instruction array (the
    rewriter sweeps once and reuses the array for blueprint keying
    and emission). *)

val is_leader : t -> int -> bool
val num_instrs : t -> int

val index_at : t -> int -> int option
(** Index of the instruction starting at an address, if decode-aligned. *)
