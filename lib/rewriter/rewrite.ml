(** The RedFat static binary rewriter (paper §3-§6), built on
    E9Patch-style trampoline patching:

    - every instrumentable memory operand gets a check, placed in a
      trampoline in an otherwise-unused code area within rel32 reach;
    - the patched instruction is replaced by a 5-byte [jmp rel32]; when
      the instruction is shorter, successor *eviction* displaces the
      following instructions into the trampoline too, and when that is
      impossible a 1-byte trap patch with a trap-table entry is the
      fallback (slow but always applicable);
    - optimizations: check {e elimination} (operands that cannot reach
      the heap), check {e batching} (one trampoline guards a run of
      accesses within a basic block), check {e merging} (one check
      covers several accesses differing only in displacement),
      {e global elimination} (a check dominated by an equivalent or
      covering available check is dropped, with the justification
      recorded in the [.elimtab] section for the soundness linter),
      and scratch/flags save specialization driven by interblock
      liveness.

    The rewrite is split into {e planning} — everything above, which
    depends only on the instruction stream's shape — and {e emission},
    which instantiates the plan at concrete addresses.  Plans are
    hash-consed through {!Blueprint}: texts with identical shapes
    share one planning pass (counters [blueprint.hit]/[miss]/
    [unique]), and emission from a shared blueprint is byte-identical
    to a cold rewrite by construction. *)

type options = {
  elim : bool;
  batch : bool;
  merge : bool;
  global_elim : bool;
      (** drop checks dominated by an equivalent/covering available
          check (dataflow over the recovered CFG); every drop is
          recorded in [.elimtab] with its justifying site *)
  scratch_opt : bool;
  instrument_reads : bool;
  instrument_writes : bool;
  allowlist : int list option;
      (** [None]: every site gets the backend's primary check.
          [Some sites]: under the [Lowfat] backend, Full only for
          listed sites, Redzone otherwise (the production phase of the
          paper §5 workflow); other backends plan independently of it *)
  hoist : bool;
      (** hoist checks out of counted loops: a member whose access
          range across a loop's iterations has a derivable convex hull
          ({!Dataflow.Loops.member_hoist}) and whose backend can widen
          its variant gets one widened check in the loop preheader
          instead of a per-iteration check; every covered site is
          recorded in [.elimtab] as a proof-carrying [hoist] entry *)
  profiling : bool;
      (** profiling build: per-site checks (no merging), all Full *)
  backend : Backend.Check_backend.id;
      (** which check backend plans and emits the instrumentation;
          recorded in the [.elimtab] policy line so the binary is
          self-describing (the runtime and the linter adopt it) *)
}

let unoptimized =
  { elim = false; batch = false; merge = false; global_elim = false;
    scratch_opt = false; instrument_reads = true; instrument_writes = true;
    allowlist = None; hoist = false; profiling = false;
    backend = Backend.Check_backend.default }

let with_elim = { unoptimized with elim = true }
let with_batch = { with_elim with batch = true }

(** All optimizations of Table 1's "+merge" column (which also enables
    the low-level trampoline specialization and global elimination). *)
let optimized =
  { with_batch with merge = true; scratch_opt = true; global_elim = true }

let production ~allowlist = { optimized with allowlist = Some allowlist }

(** [optimized] plus loop-aware check hoisting ([--hoist]); opt-in, so
    the default path stays byte-identical to the pre-hoist rewriter. *)
let with_hoist = { optimized with hoist = true }

(* profiling needs one observable check per site, so global elimination
   is off: an eliminated site would never report to the profiler and
   would be (safely but wastefully) excluded from the allow-list *)
let profiling_build =
  { optimized with merge = false; profiling = true; allowlist = None;
    global_elim = false }

(* canonical rendering of every options field, for content-hash cache
   keys: equal keys must imply identical rewrites *)
let options_key (o : options) =
  Printf.sprintf "e%db%dm%dg%ds%dr%dw%dh%dp%dk%c|%s"
    (Bool.to_int o.elim) (Bool.to_int o.batch) (Bool.to_int o.merge)
    (Bool.to_int o.global_elim)
    (Bool.to_int o.scratch_opt)
    (Bool.to_int o.instrument_reads)
    (Bool.to_int o.instrument_writes)
    (Bool.to_int o.hoist)
    (Bool.to_int o.profiling)
    (Backend.Check_backend.key o.backend)
    (match o.allowlist with
    | None -> "-"
    | Some sites ->
      String.concat ","
        (List.map string_of_int (List.sort_uniq compare sites)))

type stats = {
  instrs_total : int;
  mem_ops : int;            (** instructions with an explicit operand *)
  eliminated : int;
  eliminated_global : int;  (** checks dropped by global elimination *)
  instrumented : int;       (** sites actually guarded *)
  full_sites : int;
  redzone_sites : int;
  temporal_sites : int;     (** sites guarded by a lock-and-key check *)
  trampolines : int;
  checks_emitted : int;     (** post-merging check count *)
  zero_save_sites : int;    (** trampolines needing no register saves *)
  jump_patches : int;
  evictions : int;          (** successor instructions displaced *)
  trap_patches : int;
  degraded_sites : int;
      (** sites downgraded from the backend's primary check to its
          fallback (Redzone for every shipped backend) by a fault *)
  skipped_sites : int;      (** sites left uninstrumented (elimtab [skip]) *)
  hoisted_checks : int;
      (** widened checks emitted in loop preheaders (one per hoist
          group), each standing in for the per-iteration checks of the
          sites it covers *)
  widened_span_bytes : int;
      (** total hull width (hi - lo) over emitted hoisted checks *)
  text_bytes : int;
  tramp_bytes : int;
  checks_by_kind : (string * int) list;
      (** emit/elide breakdown keyed by check kind / elimination rule *)
}

type fault_policy =
  | Abort    (** re-raise a site's fault: the whole rewrite fails *)
  | Degrade
      (** downgrade the faulting plan: retry with Redzone-only checks,
          then fall back to uninstrumented with an [.elimtab] [skip]
          record per site *)

type t = {
  binary : Binfmt.Relf.t;
  traps : (int * int) list;  (** patch address -> trampoline address *)
  stats : stats;
}

type member = {
  mi : int;                   (* instruction index *)
  addr : int;
  m : X64.Isa.mem;
  bytes : int;                (* access size *)
  write : bool;
}

(* --- batching ------------------------------------------------------- *)

(* Group members into batches: members guarded by one trampoline placed
   at the first member.  Validity (paper §6): same basic block, no
   intervening control flow or runtime call, and no intervening
   instruction redefines a register the member's operand uses (the
   "reorder to position I1" property). *)
let make_batches (cfg : Cfg.t) (opts : options) (members : member list) :
    member list list =
  if not opts.batch then List.map (fun m -> [ m ]) members
  else begin
    let batches = ref [] and current = ref [] in
    let defined = Array.make X64.Isa.num_regs false in
    let scanned = ref 0 (* next instr index to scan *) in
    let flush () =
      if !current <> [] then begin
        batches := List.rev !current :: !batches;
        current := []
      end
    in
    let start_fresh (m : member) =
      flush ();
      current := [ m ];
      Array.fill defined 0 X64.Isa.num_regs false;
      (* the first member's own defs matter for later members *)
      let _, i0, _ = cfg.instrs.(m.mi) in
      List.iter (fun r -> defined.(r) <- true) (X64.Isa.defs i0);
      scanned := m.mi + 1
    in
    let try_extend (m : member) =
      (* scan (last scanned, m.mi) for barriers and defs *)
      let ok = ref true in
      let k = ref !scanned in
      while !ok && !k < m.mi do
        let addr, i, _ = cfg.instrs.(!k) in
        if Cfg.is_leader cfg addr then ok := false
        else begin
          (match X64.Isa.flow_of i with
           | Fall -> ()
           | _ -> ok := false);
          (match i with X64.Isa.Callrt _ -> ok := false | _ -> ());
          List.iter (fun r -> defined.(r) <- true) (X64.Isa.defs i);
          incr k
        end
      done;
      (* the member's own address must not start a new basic block *)
      if Cfg.is_leader cfg m.addr then ok := false;
      if !ok then begin
        let operand_ok =
          List.for_all (fun r -> not defined.(r)) (X64.Isa.mem_uses m.m)
        in
        if operand_ok then begin
          current := m :: !current;
          let _, im, _ = cfg.instrs.(m.mi) in
          List.iter (fun r -> defined.(r) <- true) (X64.Isa.defs im);
          scanned := m.mi + 1;
          true
        end
        else false
      end
      else false
    in
    List.iter
      (fun m ->
        match !current with
        | [] -> start_fresh m
        | _ -> if not (try_extend m) then start_fresh m)
      members;
    flush ();
    List.rev !batches
  end

(* --- merging -------------------------------------------------------- *)

type group = {
  g_variant : X64.Isa.variant;
  g_mem : X64.Isa.mem;
  g_lo : int;
  g_hi : int;
  g_write : bool;
  g_site : int;
}

let operand_key (m : X64.Isa.mem) = (m.seg, m.base, m.idx, m.scale)

(* Merge checks for operands sharing (variant, seg, base, idx, scale):
   the covered range becomes [min disp, max disp+len) (paper §6,
   Figure 7).  Each group keeps its member list: global elimination
   records a justification per member, and the stats count guarded
   sites per emitted group. *)
let make_groups (opts : options) ~(variant_of : member -> X64.Isa.variant)
    (batch : member list) : (group * member list) list =
  let singleton m =
    {
      g_variant = variant_of m;
      g_mem = m.m;
      g_lo = m.m.disp;
      g_hi = m.m.disp + m.bytes;
      g_write = m.write;
      g_site = m.addr;
    }
  in
  if not opts.merge then List.map (fun m -> (singleton m, [ m ])) batch
  else begin
    let table = Hashtbl.create 8 and order = ref [] in
    List.iter
      (fun m ->
        let key = (variant_of m, operand_key m.m) in
        match Hashtbl.find_opt table key with
        | None ->
          Hashtbl.add table key (ref (singleton m), ref [ m ]);
          order := key :: !order
        | Some (g, ms) ->
          ms := m :: !ms;
          g :=
            { !g with
              g_lo = min !g.g_lo m.m.disp;
              g_hi = max !g.g_hi (m.m.disp + m.bytes);
              g_write = !g.g_write || m.write })
      batch;
    List.rev_map
      (fun key ->
        let g, ms = Hashtbl.find table key in
        (!g, List.rev !ms))
      !order
  end

(* --- planning: the address-independent blueprint --------------------- *)

let jmp_len = 5

let default_tramp_base = Lowfat.Layout.trampoline_base

(* The options rendering for blueprint keys: [options_key] with the
   allow-list sites rewritten to text-relative offsets (an out-of-text
   site never matches an instruction address, so it is dropped), plus
   an explicit present/absent marker — [Some sites] and [None] plan
   differently under the Lowfat backend even when no offset survives. *)
let shape_opts_key (o : options) ~text_addr ~text_end =
  let base = options_key { o with allowlist = None } in
  match o.allowlist with
  | None -> base ^ "|-"
  | Some sites ->
    base ^ "|+"
    ^ String.concat ","
        (List.filter_map
           (fun a ->
             if a >= text_addr && a < text_end then
               Some (string_of_int (a - text_addr))
             else None)
           (List.sort_uniq compare sites))

(* Build the instrumentation plan for [cfg] as a {!Blueprint.t}: every
   address in the result is an instruction index.  Everything
   expensive — operand canonicalization, dominators, loop analysis,
   the availability solve, liveness-driven save specialization, patch
   tactics — happens here; emission merely instantiates indices at the
   text's concrete addresses, so a blueprint shared via
   {!Blueprint.find_or_build} yields byte-identical rewrites. *)
let plan ?obs (module B : Backend.Check_backend.S) (opts : options)
    (cfg : Cfg.t) : Blueprint.t =
  let sp : 'a. string -> (unit -> 'a) -> 'a =
   fun name f ->
    match obs with
    | Some o -> Obs.span o ~cat:"rewrite" name f
    | None -> f ()
  in
  let n = Cfg.num_instrs cfg in
  (* 1. collect instrumentable members *)
  let mem_ops = ref 0 and eliminated = ref 0 in
  let brecords = ref [] (* (instr index, Blueprint.reason), newest first *) in
  let members = ref [] in
  sp "rw.collect" (fun () ->
  for i = 0 to n - 1 do
    let addr, instr, _len = cfg.instrs.(i) in
    match X64.Isa.mem_operand instr with
    | None -> ()
    | Some (m, w, write) ->
      incr mem_ops;
      let wanted =
        if write then opts.instrument_writes else opts.instrument_reads
      in
      if wanted then begin
        (* canonical operand: registers renamed to the oldest copies
           holding the same values, known constants folded into the
           displacement.  The generated code churns through scratch
           registers, so without this the merge keys and availability
           facts of one logical address never coincide.  The linter
           canonicalizes identically (same shared pass). *)
        let m = Dataflow.Canon.operand cfg.graph i m in
        let bytes = X64.Isa.width_bytes w in
        if opts.elim && Analysis.eliminable m ~len:bytes then begin
          incr eliminated;
          brecords := (i, Blueprint.Clear) :: !brecords
        end
        else members := { mi = i; addr; m; bytes; write } :: !members
      end
  done);
  let members = List.rev !members in
  let allow =
    match opts.allowlist with
    | None -> None
    | Some sites ->
      let h = Hashtbl.create (List.length sites) in
      List.iter (fun s -> Hashtbl.replace h s ()) sites;
      Some h
  in
  (* the backend makes the per-site instrumentation decision and owns
     the degradation fallback *)
  let variant_of (m : member) : X64.Isa.variant =
    B.plan ~profiling:opts.profiling
      ~allowlisted:
        (match allow with
        | None -> None
        | Some h -> Some (Hashtbl.mem h m.addr))
  in
  (* 1.5 loop hoisting: a member inside a counted loop whose iteration
     access hull is derivable — and whose backend agrees to widen the
     planned variant — leaves the per-iteration stream.  All hoisted
     members sharing a preheader patch point, widened operand and
     variant become one group checked once per loop entry, over the
     union of their hulls.  Each covered site gets a proof-carrying
     [.elimtab] [hoist] record; the linter re-derives the hull with the
     same [Loops.member_hoist] and rejects the binary if the recorded
     hull does not subsume it.  Profiling builds keep per-iteration
     checks observable, like global elimination. *)
  let hoist_enabled = opts.hoist && not opts.profiling in
  let hoisted_members = ref 0 in
  (* (preheader index, widened operand key) -> covered member
     indices.  The [hoist] records are written after global
     elimination, which may drop a hoisted check that is itself
     covered by a dominating available check — the members then cite
     the covering site instead of the dropped preheader check. *)
  let hoist_members = Hashtbl.create 8 in
  let members, hoist_plans =
    if not hoist_enabled then (members, [])
    else
      sp "rw.hoist" @@ fun () ->
      let dom = Dataflow.Dom.compute cfg.graph in
      let loops = Dataflow.Loops.analyze cfg.graph dom in
      if Array.length loops.Dataflow.Loops.loops = 0 then (members, [])
      else begin
        let table = Hashtbl.create 8 and order = ref [] in
        let kept =
          List.filter
            (fun (m : member) ->
              match B.widen (variant_of m) with
              | None -> true
              | Some wv -> (
                match
                  Dataflow.Loops.member_hoist loops ~index:m.mi ~mem:m.m
                    ~bytes:m.bytes
                with
                | None -> true
                | Some h ->
                  (* one group per (preheader, widened operand): mixed
                     variants join to Full (which covers Redzone), so a
                     key never carries two competing hoisted checks *)
                  let key =
                    (h.Dataflow.Loops.h_index,
                     operand_key h.Dataflow.Loops.h_mem)
                  in
                  (match Hashtbl.find_opt table key with
                   | None ->
                     Hashtbl.add table key
                       (ref (h, h.Dataflow.Loops.h_lo,
                             h.Dataflow.Loops.h_hi, m.write, wv, [ m ]));
                     order := key :: !order
                   | Some r ->
                     let h0, lo, hi, w, v, ms = !r in
                     r :=
                       ( h0,
                         min lo h.Dataflow.Loops.h_lo,
                         max hi h.Dataflow.Loops.h_hi,
                         w || m.write,
                         (if v = X64.Isa.Full || wv = X64.Isa.Full then
                            X64.Isa.Full
                          else v),
                         m :: ms ));
                  false))
            members
        in
        let hoist_plans =
          List.rev_map
            (fun key ->
              let (h : Dataflow.Loops.hoist), lo, hi, w, wv, ms =
                !(Hashtbl.find table key)
              in
              hoisted_members := !hoisted_members + List.length ms;
              Hashtbl.replace hoist_members key
                (List.rev_map (fun (m : member) -> m.mi) ms);
              let first =
                {
                  mi = h.Dataflow.Loops.h_index;
                  addr = h.Dataflow.Loops.h_addr;
                  m = h.Dataflow.Loops.h_mem;
                  bytes = hi - lo;
                  write = w;
                }
              in
              let group =
                {
                  g_variant = wv;
                  g_mem = h.Dataflow.Loops.h_mem;
                  g_lo = lo;
                  g_hi = hi;
                  g_write = w;
                  g_site = h.Dataflow.Loops.h_addr;
                }
              in
              (* the empty member list marks a hoist group: its covered
                 sites live in [hoist_members], and site accounting has
                 nothing to add *)
              (first, (group, ([] : member list))))
            !order
        in
        (kept, hoist_plans)
      end
  in
  (* one plan per batch: the patch lands at the first member, whose
     trampoline runs the batch's (merged) checks *)
  let plans = sp "rw.plan" @@ fun () ->
    let batches = make_batches cfg opts members in
    List.filter_map
      (function
        | [] -> None
        | first :: _ as batch ->
          Some (first, make_groups opts ~variant_of batch))
      batches
  in
  (* merge hoisted groups into the plan stream: onto an existing plan
     patching the same instruction if there is one (the preheader's
     last instruction may itself be a planned member), as a plan of
     their own otherwise *)
  let plans =
    if hoist_plans = [] then plans
    else begin
      let extra = Hashtbl.create 8 in
      List.iter
        (fun ((first : member), g) ->
          Hashtbl.replace extra first.mi
            (match Hashtbl.find_opt extra first.mi with
             | None -> (first, [ g ])
             | Some (f, gs) -> (f, g :: gs)))
        hoist_plans;
      let plans =
        List.map
          (fun ((first : member), groups) ->
            match Hashtbl.find_opt extra first.mi with
            | None -> (first, groups)
            | Some (_, gs) ->
              Hashtbl.remove extra first.mi;
              (first, groups @ List.rev gs))
          plans
      in
      let rest =
        Hashtbl.fold
          (fun _ (f, gs) acc -> (f, List.rev gs) :: acc)
          extra []
      in
      List.sort
        (fun ((a : member), _) ((b : member), _) -> compare a.mi b.mi)
        (plans @ rest)
    end
  in
  let patch_starts = Hashtbl.create 64 in
  List.iter (fun (first, _) -> Hashtbl.replace patch_starts first.mi ()) plans;
  (* 2. global elimination: a planned check whose key, range and
     variant are covered by a check available from a dominating site is
     not emitted; the justification (member index -> emitting patch
     index) goes to the blueprint records.  Facts join by intersection
     requiring the same generating site, so an available fact's site
     lies on every path here — dominance is still re-checked against
     the dominator tree, and a fact generated by a site that is itself
     covered never propagates past it (the covering fact shadows it),
     so recorded justifications always point at emitted sites.
     Profiling builds keep every check observable (see
     [profiling_build]). *)
  let global_elim = opts.global_elim && not opts.profiling in
  let eliminated_global = ref 0 in
  let plans = sp "rw.elim" @@ fun () ->
    if not global_elim then
      List.map (fun (first, groups) -> (first, groups, [])) plans
    else begin
      let graph = cfg.graph in
      let dom = Dataflow.Dom.compute graph in
      let gen_tbl = Hashtbl.create 64 in
      List.iter
        (fun ((first : member), groups) ->
          Hashtbl.replace gen_tbl first.mi
            (List.map
               (fun ((g : group), _) ->
                 ( Dataflow.Avail.key_of_mem g.g_mem,
                   {
                     Dataflow.Avail.lo = g.g_lo;
                     hi = g.g_hi;
                     site = first.mi;
                     variant = g.g_variant;
                   } ))
               groups))
        plans;
      let gen i = Option.value (Hashtbl.find_opt gen_tbl i) ~default:[] in
      let avail = Dataflow.Avail.solve graph ~gen in
      List.map
        (fun ((first : member), groups) ->
          let facts = Dataflow.Avail.available_before avail first.mi in
          let emitted, dropped =
            List.partition
              (fun ((g : group), (_ : member list)) ->
                match
                  Dataflow.Avail.find facts (Dataflow.Avail.key_of_mem g.g_mem)
                with
                | Some info
                  when Dataflow.Avail.covers info ~variant:g.g_variant
                         ~lo:g.g_lo ~hi:g.g_hi
                       && Dataflow.Dom.dominates_instr dom ~def:info.site
                            ~use:first.mi ->
                  false
                | _ -> true)
              groups
          in
          let records =
            List.concat_map
              (fun ((g : group), (ms : member list)) ->
                let info =
                  Option.get
                    (Dataflow.Avail.find facts
                       (Dataflow.Avail.key_of_mem g.g_mem))
                in
                incr eliminated_global;
                match ms with
                | [] ->
                  (* a hoisted check that is itself covered: the loop's
                     members cite the covering site; the hull stays the
                     group hull, which the covering fact subsumes *)
                  List.map
                    (fun mi ->
                      (mi,
                       Blueprint.Hoist
                         (info.Dataflow.Avail.site, g.g_lo, g.g_hi)))
                    (Option.value
                       (Hashtbl.find_opt hoist_members
                          (first.mi, operand_key g.g_mem))
                       ~default:[])
                | ms ->
                  List.map
                    (fun (m : member) ->
                      (m.mi, Blueprint.Dom info.Dataflow.Avail.site))
                    ms)
              dropped
          in
          (first, emitted, records))
        plans
    end
  in
  (* the surviving hoisted checks' covered sites cite the emitted
     preheader check *)
  List.iter
    (fun ((first : member), emitted, _) ->
      List.iter
        (fun ((g : group), (ms : member list)) ->
          if ms = [] then
            List.iter
              (fun mi ->
                brecords :=
                  (mi, Blueprint.Hoist (first.mi, g.g_lo, g.g_hi))
                  :: !brecords)
              (Option.value
                 (Hashtbl.find_opt hoist_members
                    (first.mi, operand_key g.g_mem))
                 ~default:[]))
        emitted)
    plans;
  List.iter
    (fun (_, _, records) ->
      brecords := List.rev_append records !brecords)
    plans;
  (* 3. patch tactics and save specialization, still per index: the
     eviction scan depends on instruction lengths, leaders and the
     other patch starts; the clobber scan on registers and flow — all
     shape properties *)
  let live =
    if opts.scratch_opt then Some (Dataflow.Live.solve cfg.graph) else None
  in
  let bplans =
    List.map
      (fun ((first : member), (groups : (group * member list) list), _) ->
        let _, _, l0 = cfg.instrs.(first.mi) in
        let displaced = ref [ first.mi ] and span = ref l0 in
        let tactic =
          if groups = [] then Blueprint.Trap (* fully eliminated: no patch *)
          else if l0 >= jmp_len then Blueprint.Jump
          else begin
            (* successor eviction (E9Patch tactic T3) *)
            let ok = ref true and k = ref (first.mi + 1) in
            while !span < jmp_len && !ok do
              if !k >= n then ok := false
              else begin
                let ak, ik, lk = cfg.instrs.(!k) in
                if
                  Cfg.is_leader cfg ak
                  || Hashtbl.mem patch_starts !k
                  || X64.Isa.flow_of ik <> X64.Isa.Fall
                then ok := false
                else begin
                  displaced := !k :: !displaced;
                  span := !span + lk;
                  incr k
                end
              end
            done;
            if !span >= jmp_len && !ok then Blueprint.Jump
            else begin
              displaced := [ first.mi ];
              Blueprint.Trap
            end
          end
        in
        let spec =
          if groups = [] || not opts.scratch_opt then Analysis.conservative
          else Analysis.clobbers ?live cfg ~start:first.mi ~limit:24
        in
        {
          Blueprint.bp_first = first.mi;
          bp_tactic = tactic;
          bp_displaced = List.rev !displaced;
          bp_nsaves = spec.nsaves;
          bp_save_flags = spec.save_flags;
          bp_groups =
            List.map
              (fun ((g : group), (ms : member list)) ->
                {
                  Blueprint.bg_variant = g.g_variant;
                  bg_mem = g.g_mem;
                  bg_lo = g.g_lo;
                  bg_hi = g.g_hi;
                  bg_write = g.g_write;
                  bg_site = Hashtbl.find cfg.index_of g.g_site;
                  bg_members =
                    List.map (fun (m : member) -> (m.mi, variant_of m)) ms;
                })
              groups;
        })
      plans
  in
  {
    Blueprint.b_plans = bplans;
    b_records = !brecords;
    b_mem_ops = !mem_ops;
    b_eliminated = !eliminated;
    b_eliminated_global = !eliminated_global;
    b_hoisted_members = !hoisted_members;
  }

(* --- the rewriting driver ------------------------------------------- *)

(** [rewrite ?tramp_base opts binary]: instrument [binary].
    [tramp_base] places the trampoline section (distinct modules of one
    process need distinct trampoline areas, still within rel32 reach of
    their text).  [fault_hook] is called at the start of every
    emission attempt (fault injection); any exception it — or the
    emission itself — raises is handled per [on_fault]. *)
let rewrite ?(tramp_base = default_tramp_base) ?obs
    ?(on_fault = Degrade) ?fault_hook
    (opts : options) (binary : Binfmt.Relf.t) : t =
  (* per-phase spans (category "rewrite") when a collector is given *)
  let sp name f =
    match obs with
    | Some o -> Obs.span o ~cat:"rewrite" name f
    | None -> f ()
  in
  let text = Binfmt.Relf.text_exn binary in
  let instrs = sp "rw.recover" @@ fun () ->
    Array.of_list (X64.Disasm.sweep ~addr:text.addr text.bytes)
  in
  let n = Array.length instrs in
  let text_end = text.addr + String.length text.bytes in
  let (module B) = Backend.Check_backend.of_id opts.backend in
  (* the plan: interned by text shape, built on a miss (a blueprint
     hit skips every analysis — graph recovery included) *)
  let bkey =
    Blueprint.shape_key
      ~opts_key:(shape_opts_key opts ~text_addr:text.addr ~text_end)
      ~text_addr:text.addr ~text_end instrs
  in
  let bp =
    Blueprint.find_or_build ?obs ~key:bkey (fun () ->
        let cfg = sp "rw.graph" @@ fun () ->
          Cfg.of_instrs ~text_addr:text.addr instrs
        in
        plan ?obs (module B : Backend.Check_backend.S) opts cfg)
  in
  (* 4. emission: instantiate the blueprint's indices at this text's
     concrete addresses and build trampolines and patches *)
  let addr_of i =
    let a, _, _ = instrs.(i) in
    a
  in
  let eliminated_global = ref bp.Blueprint.b_eliminated_global in
  let hoisted_members = ref bp.Blueprint.b_hoisted_members in
  let elim_records =
    ref
      (List.map
         (fun (i, r) ->
           ( addr_of i,
             match r with
             | Blueprint.Clear -> Dataflow.Elimtab.Clear
             | Blueprint.Dom s -> Dataflow.Elimtab.Dom (addr_of s)
             | Blueprint.Hoist (s, lo, hi) ->
               Dataflow.Elimtab.Hoist (addr_of s, lo, hi) ))
         bp.Blueprint.b_records)
  in
  let text_bytes = Bytes.of_string text.bytes in
  let tramp = Buffer.create 4096 in
  let traps = ref [] in
  let instrumented = ref 0 in
  let full_sites = ref 0 and redzone_sites = ref 0 and temporal_sites = ref 0 in
  let checks_emitted = ref 0 and jump_patches = ref 0 in
  let emit_full = ref 0 and emit_redzone = ref 0 and emit_temporal = ref 0 in
  let trap_patches = ref 0 and evictions = ref 0 in
  let trampolines = ref 0 and zero_save_sites = ref 0 in
  let degraded_sites = ref 0 and skipped_sites = ref 0 in
  let hoisted_checks = ref 0 and widened_span_bytes = ref 0 in
  (* patch-site addresses of plans that were skipped entirely: [Dom]
     records citing them are unjustified and downgrade to [Skip] in the
     post-pass below *)
  let skipped_plan_sites = Hashtbl.create 4 in
  let patch_byte addr b =
    Bytes.set text_bytes (addr - text.addr) (Char.chr b)
  in
  let patch_string addr s =
    Bytes.blit_string s 0 text_bytes (addr - text.addr) (String.length s)
  in
  let do_plan (p : Blueprint.bplan) =
    if p.Blueprint.bp_groups <> [] then begin
      let a0, _, _ = instrs.(p.Blueprint.bp_first) in
      let span =
        List.fold_left
          (fun s k ->
            let _, _, lk = instrs.(k) in
            s + lk)
          0 p.Blueprint.bp_displaced
      in
      let plan_members =
        List.concat_map
          (fun (g : Blueprint.bgroup) -> g.Blueprint.bg_members)
          p.Blueprint.bp_groups
      in
      (* one emission attempt.  Everything fallible — the injection
         hook, check/instruction encoding — happens against the
         trampoline buffer and counters only; on a fault the snapshot
         is restored and the text is untouched.  The (infallible) text
         patch is applied by the caller on success. *)
      let attempt ~degrade () =
        let snap_len = Buffer.length tramp in
        let snap =
          ( !trampolines, !instrumented, !full_sites, !redzone_sites,
            !temporal_sites, !checks_emitted, !emit_full, !emit_redzone,
            !emit_temporal, !zero_save_sites )
        in
        try
          (match fault_hook with
          | Some h ->
            h ~stage:(if degrade then "retry" else "emit") ~site:a0
          | None -> ());
          incr trampolines;
          List.iter
            (fun ((_ : int), v) ->
              incr instrumented;
              match (if degrade then B.fallback else v) with
              | X64.Isa.Full -> incr full_sites
              | X64.Isa.Redzone -> incr redzone_sites
              | X64.Isa.Temporal -> incr temporal_sites)
            plan_members;
          let tramp_addr = tramp_base + Buffer.length tramp in
          if p.Blueprint.bp_nsaves = 0 then incr zero_save_sites;
          List.iteri
            (fun gi (g : Blueprint.bgroup) ->
              let variant =
                if degrade then B.fallback else g.Blueprint.bg_variant
              in
              let checks =
                B.emit
                  {
                    Backend.Check_backend.s_variant = variant;
                    s_mem = { g.Blueprint.bg_mem with disp = 0 };
                    s_lo = g.Blueprint.bg_lo;
                    s_hi = g.Blueprint.bg_hi;
                    s_write = g.Blueprint.bg_write;
                    s_site = addr_of g.Blueprint.bg_site;
                    s_nsaves = (if gi = 0 then p.Blueprint.bp_nsaves else 0);
                    s_save_flags = gi = 0 && p.Blueprint.bp_save_flags;
                  }
              in
              List.iter
                (fun (ck : X64.Isa.check) ->
                  incr checks_emitted;
                  (match ck.ck_variant with
                   | X64.Isa.Full -> incr emit_full
                   | X64.Isa.Redzone -> incr emit_redzone
                   | X64.Isa.Temporal -> incr emit_temporal);
                  X64.Encode.encode_at tramp
                    (tramp_base + Buffer.length tramp)
                    (X64.Isa.Check ck))
                checks)
            p.Blueprint.bp_groups;
          List.iter
            (fun k ->
              let _, ik, _ = instrs.(k) in
              X64.Encode.encode_at tramp (tramp_base + Buffer.length tramp) ik)
            p.Blueprint.bp_displaced;
          let back = a0 + span in
          X64.Encode.encode_at tramp
            (tramp_base + Buffer.length tramp)
            (X64.Isa.Jmp back);
          Ok tramp_addr
        with e ->
          Buffer.truncate tramp snap_len;
          let t, ins, fs, rs, ts, ce, ef, er, et, zs = snap in
          trampolines := t; instrumented := ins; full_sites := fs;
          redzone_sites := rs; temporal_sites := ts; checks_emitted := ce;
          emit_full := ef; emit_redzone := er; emit_temporal := et;
          zero_save_sites := zs;
          Error e
      in
      let apply_patch tramp_addr =
        List.iter
          (fun (g : Blueprint.bgroup) ->
            if g.Blueprint.bg_members = [] then begin
              incr hoisted_checks;
              widened_span_bytes :=
                !widened_span_bytes + (g.Blueprint.bg_hi - g.Blueprint.bg_lo)
            end)
          p.Blueprint.bp_groups;
        if List.length p.Blueprint.bp_displaced > 1 then
          evictions :=
            !evictions + List.length p.Blueprint.bp_displaced - 1;
        match p.Blueprint.bp_tactic with
        | Blueprint.Jump ->
          incr jump_patches;
          let patch =
            X64.Encode.encode_seq ~addr:a0 [ X64.Isa.Jmp tramp_addr ]
          in
          patch_string a0 patch;
          for off = jmp_len to span - 1 do
            patch_byte (a0 + off) X64.Encode.op_nop
          done
        | Blueprint.Trap ->
          incr trap_patches;
          patch_byte a0 X64.Encode.op_trap;
          traps := (a0, tramp_addr) :: !traps
      in
      match attempt ~degrade:false () with
      | Ok tramp_addr -> apply_patch tramp_addr
      | Error e -> (
        match on_fault with
        | Abort -> raise e
        | Degrade -> (
          match attempt ~degrade:true () with
          | Ok tramp_addr ->
            (* weaker but sound: every primary-variant site of the plan
               now carries the backend's fallback check.  A dependent
               [Dom] record elsewhere stays valid — the linter audits
               range and dominance of the emitted check, which the
               downgrade preserves. *)
            List.iter
              (fun ((_ : int), v) ->
                if v <> B.fallback then incr degraded_sites)
              plan_members;
            apply_patch tramp_addr
          | Error _ ->
            (* uninstrumented but audited: one [skip] record per site,
               and any [Dom] justification citing this never-emitted
               plan is downgraded in the post-pass *)
            skipped_sites := !skipped_sites + List.length plan_members;
            List.iter
              (fun (mi, (_ : X64.Isa.variant)) ->
                elim_records :=
                  (addr_of mi, Dataflow.Elimtab.Skip) :: !elim_records)
              plan_members;
            Hashtbl.replace skipped_plan_sites a0 ()))
    end
  in
  sp "rw.emit" (fun () -> List.iter do_plan bp.Blueprint.b_plans);
  (* post-pass: a [Dom] record whose justifying check was never emitted
     (its plan was skipped) is no longer a proof — downgrade it to
     [skip] so the linter audits it as a degradation, not a soundness
     failure *)
  if Hashtbl.length skipped_plan_sites > 0 then begin
    elim_records :=
      List.map
        (fun (a, r) ->
          match r with
          | Dataflow.Elimtab.Dom s when Hashtbl.mem skipped_plan_sites s ->
            decr eliminated_global;
            incr skipped_sites;
            (a, Dataflow.Elimtab.Skip)
          | Dataflow.Elimtab.Hoist (s, _, _)
            when Hashtbl.mem skipped_plan_sites s ->
            (* the widened covering check was never emitted: the site
               is uninstrumented, audit it as a degradation *)
            decr hoisted_members;
            incr skipped_sites;
            (a, Dataflow.Elimtab.Skip)
          | _ -> (a, r))
        !elim_records
  end;
  let tramp_bytes = Buffer.contents tramp in
  let traps = List.rev !traps in
  (* the trap table ships inside the binary (like E9Patch's loader
     metadata), so a hardened RELF file is self-contained *)
  let traptab =
    String.concat ""
      (List.map (fun (a, t) -> Printf.sprintf "%x %x\n" a t) traps)
  in
  (* the elimination table likewise: every dropped check with its
     justification, so the soundness linter can audit the file alone *)
  let elimtab =
    Dataflow.Elimtab.render
      {
        Dataflow.Elimtab.backend = B.name;
        reads = opts.instrument_reads;
        writes = opts.instrument_writes;
        entries = List.sort compare !elim_records;
      }
  in
  let sections =
    List.map
      (fun (s : Binfmt.Relf.section) ->
        if s.name = ".text" then { s with bytes = Bytes.to_string text_bytes }
        else s)
      binary.sections
    @ [
        Binfmt.Relf.section ~executable:true ~name:".redfat"
          ~addr:tramp_base tramp_bytes;
        Binfmt.Relf.section ~name:Dataflow.Elimtab.section_name ~addr:0 elimtab;
      ]
    @
    if traptab = "" then []
    else [ Binfmt.Relf.section ~name:".traptab" ~addr:0 traptab ]
  in
  let checks_by_kind =
    [
      ("elide.clear", bp.Blueprint.b_eliminated);
      ("elide.dom", !eliminated_global);
      ("elide.hoist", !hoisted_members);
      ("emit.full", !emit_full);
      ("emit.redzone", !emit_redzone);
      ("emit.temporal", !emit_temporal);
      ("patch.jump", !jump_patches);
      ("patch.trap", !trap_patches);
      ("degrade.redzone", !degraded_sites);
      ("degrade.skip", !skipped_sites);
    ]
  in
  (match obs with
  | Some o ->
    List.iter
      (fun (k, v) -> if v > 0 then Obs.add o ~n:v ("rw." ^ k))
      checks_by_kind
  | None -> ());
  let stats =
    {
      instrs_total = n;
      mem_ops = bp.Blueprint.b_mem_ops;
      eliminated = bp.Blueprint.b_eliminated;
      eliminated_global = !eliminated_global;
      instrumented = !instrumented;
      full_sites = !full_sites;
      redzone_sites = !redzone_sites;
      temporal_sites = !temporal_sites;
      trampolines = !trampolines;
      checks_emitted = !checks_emitted;
      zero_save_sites = !zero_save_sites;
      jump_patches = !jump_patches;
      evictions = !evictions;
      trap_patches = !trap_patches;
      degraded_sites = !degraded_sites;
      skipped_sites = !skipped_sites;
      hoisted_checks = !hoisted_checks;
      widened_span_bytes = !widened_span_bytes;
      text_bytes = String.length text.bytes;
      tramp_bytes = String.length tramp_bytes;
      checks_by_kind;
    }
  in
  { binary = { binary with sections }; traps; stats }

(** Recover the trap table from a hardened binary's [.traptab] section. *)
let traps_of_binary (b : Binfmt.Relf.t) : (int * int) list =
  match Binfmt.Relf.find_section b ".traptab" with
  | None -> []
  | Some s ->
    String.split_on_char '\n' s.bytes
    |> List.filter_map (fun line ->
           match String.split_on_char ' ' line with
           | [ a; t ] ->
             (try Some (int_of_string ("0x" ^ a), int_of_string ("0x" ^ t))
              with _ -> None)
           | _ -> None)

(** A binary is considered hardened if it carries a [.redfat] section. *)
let is_hardened (b : Binfmt.Relf.t) =
  Binfmt.Relf.find_section b ".redfat" <> None

(** Audit a hardened binary with the rewrite-soundness linter. *)
let verify ?allow (b : Binfmt.Relf.t) :
    (Dataflow.Verify.report, string) result =
  Dataflow.Verify.run ?allow ~traps:(traps_of_binary b) b

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "@[<v>instructions:      %d@,\
     memory operands:   %d@,\
     eliminated:        %d@,\
     eliminated global: %d@,\
     instrumented:      %d (full %d / redzone %d / temporal %d)@,\
     trampolines:       %d@,\
     checks emitted:    %d@,\
     zero-save sites:   %d@,\
     jump patches:      %d@,\
     evictions:         %d@,\
     trap patches:      %d@,\
     degraded sites:    %d@,\
     skipped sites:     %d@,\
     hoisted checks:    %d (hull %d bytes)@,\
     text bytes:        %d@,\
     trampoline bytes:  %d@]"
    s.instrs_total s.mem_ops s.eliminated s.eliminated_global s.instrumented
    s.full_sites s.redzone_sites s.temporal_sites s.trampolines s.checks_emitted
    s.zero_save_sites s.jump_patches s.evictions s.trap_patches
    s.degraded_sites s.skipped_sites s.hoisted_checks s.widened_span_bytes
    s.text_bytes s.tramp_bytes
