(** Hash-consed instrumentation blueprints.

    A {e blueprint} is the address-independent half of a rewrite: the
    complete instrumentation plan — patch tactics, eviction lists,
    merged check groups with their variants and canonical operands,
    save-specialization specs, and every elimination record — with
    every concrete address abstracted to its instruction {e index}.
    Two texts whose instruction streams have the same {e shape}
    (identical opcodes, operands and immediates once intra-text
    branch targets and code-pointer constants are rewritten to
    offsets) plan identically, so the blueprint is computed once and
    shared through a process-global interning table.

    The split is what makes re-hardening cheap: on a table hit the
    rewriter skips graph construction, operand canonicalization,
    dominators, loop analysis, the availability solve and liveness —
    emission merely instantiates indices at the text's concrete
    addresses.  Sharing is sound because planning consumes no absolute
    address except through the two channels the key covers: intra-text
    control-flow targets (abstracted to offsets) and [Mov_ri]
    constants pointing into the text (which constant-fold into operand
    displacements — any such constant pins the key to the exact
    [text_addr], forfeiting cross-address sharing for that shape).

    The table is domain-safe: lookups and inserts are mutex-guarded,
    while blueprint construction runs outside the lock, so two domains
    racing on the same fresh shape may both build it (same
    deterministic result; the duplicate work is observable only via
    the [blueprint.miss] counter, mirroring {!Engine.Cache.memo}). *)

(** Patch tactic at a plan's first member, decided at planning time
    (it depends only on instruction lengths, leaders and other patch
    starts). [Jump] covers E9Patch tactics T1/T3: the 5-byte
    [jmp rel32], with successors evicted into the trampoline when the
    patched instruction is shorter.  [Trap] is the 1-byte fallback. *)
type tactic = Jump | Trap

(** One merged check group.  [bg_members] are the guarded sites as
    [(instruction index, planned variant)]; the empty list marks a
    hoisted (loop-preheader) group, whose covered sites are recorded
    in {!t.b_records} instead. *)
type bgroup = {
  bg_variant : X64.Isa.variant;
  bg_mem : X64.Isa.mem;  (** canonical operand, displacement included *)
  bg_lo : int;
  bg_hi : int;  (** covered displacement interval [lo, hi) *)
  bg_write : bool;
  bg_site : int;  (** representative site, as an instruction index *)
  bg_members : (int * X64.Isa.variant) list;
}

(** One trampoline-and-patch plan, anchored at instruction index
    [bp_first].  [bp_displaced] lists the indices re-encoded into the
    trampoline ([bp_first] plus any evicted successors);
    [bp_nsaves]/[bp_save_flags] is the save-specialization spec of the
    first emitted group. *)
type bplan = {
  bp_first : int;
  bp_tactic : tactic;
  bp_displaced : int list;
  bp_nsaves : int;
  bp_save_flags : bool;
  bp_groups : bgroup list;
}

(** Elimination-record reasons with justifying sites as instruction
    indices; instantiated to {!Dataflow.Elimtab.reason} at emission. *)
type reason = Clear | Dom of int | Hoist of int * int * int

type t = {
  b_plans : bplan list;  (** ascending by [bp_first] *)
  b_records : (int * reason) list;
      (** (site index, reason); order is irrelevant — the elimtab is
          sorted after address instantiation *)
  b_mem_ops : int;
  b_eliminated : int;
  b_eliminated_global : int;
  b_hoisted_members : int;
}

val shape_key :
  opts_key:string ->
  text_addr:int ->
  text_end:int ->
  (int * X64.Isa.instr * int) array ->
  string
(** The interning key for a text's instruction stream under an options
    rendering ([opts_key] must determine every planning decision,
    including allow-list membership rewritten to text-relative
    offsets).  Equal keys guarantee equal blueprints. *)

val find_or_build : ?obs:Obs.t -> key:string -> (unit -> t) -> t
(** Interned lookup; on a miss, [build] runs outside the table lock
    and the result is published (first writer wins on a race).  Bumps
    [blueprint.hit] / [blueprint.miss] / [blueprint.unique] on [obs].
    The table is size-capped: beyond the cap, misses still build but
    are no longer retained (long-running daemons cannot grow it
    without bound). *)

val size : unit -> int
(** Number of interned blueprints (diagnostics and tests). *)

val reset : unit -> unit
(** Drop every interned blueprint (tests needing cold-table counters). *)
