(** Function-granular sharding of a rewrite.

    [slices] splits a binary's text into the function regions of
    {!Dataflow.Funs.partition} (each with a content digest, the unit
    of incremental caching); [slice_binary] wraps one region as a
    self-contained single-section binary the rewriter accepts; and
    [assemble] splices the per-region rewrites back into the original
    binary.

    The contract — enforced by the partition's isolation conditions
    and the chained trampoline bases — is that the assembled result is
    {e byte-identical} to a monolithic {!Rewrite.rewrite} of the whole
    binary: same patched text, same trampoline section, same trap
    table, same [.elimtab], same stats.  [slices] returns [None]
    whenever that guarantee cannot be established (non-contiguous
    sweep, fewer than two regions, or any isolation condition fails),
    and callers fall back to the monolithic path. *)

type slice = {
  sl_addr : int;     (** load address of the region *)
  sl_len : int;      (** region length in bytes *)
  sl_bytes : string; (** the region's text bytes *)
  sl_digest : string;
      (** content digest of [sl_bytes] (hex), the function-granular
          cache-key component *)
}

val slices : Binfmt.Relf.t -> slice list option
(** Partition the binary's text.  [None]: shard-rewriting cannot be
    proven equivalent; rewrite monolithically. *)

val slice_binary : Binfmt.Relf.t -> slice -> Binfmt.Relf.t
(** A single-[.text] binary holding just the slice (entry at the
    slice base; [pic]/[stripped] inherited), suitable for
    {!Rewrite.rewrite} with a chained [tramp_base]. *)

val assemble :
  binary:Binfmt.Relf.t -> tramp_base:int -> Rewrite.t list -> Rewrite.t
(** Splice per-slice rewrites (in slice order, rewritten with chained
    trampoline bases starting at [tramp_base]) back into [binary]:
    concatenated patched texts replace [.text], concatenated
    trampolines form [.redfat] at [tramp_base], trap tables
    concatenate, elimination tables merge (entries re-sorted, policy
    from the first part), stats sum pointwise. *)
