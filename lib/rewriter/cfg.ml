(** Over-approximate control-flow recovery (paper §6).

    Precise CFG recovery from stripped binaries is undecidable; the
    batching optimization only needs an *over-approximation* of jump
    targets — a spurious leader merely splits a batch in two (smaller
    batches, same correctness), while a missed leader could move a
    check onto a path that never executes it.  We therefore err on the
    side of more leaders: every direct branch/call target, every
    fall-through edge of a branch, call or return, and conservatively
    the instruction after any indirect transfer.

    Leader recovery and the block graph itself live in
    {!Dataflow.Graph}; this module is the rewriter's view of them.
    Delegating (rather than duplicating) the leader computation is
    what lets the soundness linter re-derive provably the same block
    structure from a hardened binary. *)

type t = {
  text_addr : int;
  instrs : (int * X64.Isa.instr * int) array; (* addr, instr, length *)
  index_of : (int, int) Hashtbl.t;            (* addr -> instrs index *)
  leaders : (int, unit) Hashtbl.t;            (* BB start addresses *)
  graph : Dataflow.Graph.t;                   (* block graph over [instrs] *)
}

let of_instrs ~(text_addr : int)
    (instrs : (int * X64.Isa.instr * int) array) : t =
  let graph = Dataflow.Graph.of_instrs ~entry:text_addr instrs in
  {
    text_addr;
    instrs;
    index_of = graph.Dataflow.Graph.index_of;
    leaders = graph.Dataflow.Graph.leaders;
    graph;
  }

let recover ~(text_addr : int) (code : string) : t =
  of_instrs ~text_addr (Array.of_list (X64.Disasm.sweep ~addr:text_addr code))

let is_leader t addr = Hashtbl.mem t.leaders addr

let num_instrs t = Array.length t.instrs

(** Index of the instruction at [addr], if [addr] is a decode-aligned
    instruction start. *)
let index_at t addr = Hashtbl.find_opt t.index_of addr
