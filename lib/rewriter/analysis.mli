(** Local static analyses feeding the rewriter's optimizations. *)

val scratch_needed : int
(** Scratch registers the trampoline needs when none are provably dead. *)

val eliminable : X64.Isa.mem -> len:int -> bool
(** The check-elimination rule (paper §6): no index register, and
    either no base (an absolute ≥ 2 GiB from the heap) or an
    rsp base (the stack is ≥ 2 GiB from the heap). *)

(** Result of the clobber scan at an instrumentation point. *)
type spec = { nsaves : int; save_flags : bool }

val conservative : spec

val clobbers : ?live:Dataflow.Live.t -> Cfg.t -> start:int -> limit:int -> spec
(** Save-specialization at an instrumentation point: forward scan from
    instruction index [start] (at most [limit] instructions) for
    registers written before read — dead at the point, no save needed;
    likewise the flags.  A terminating call or indirect jump clobbers
    the caller-saved registers and the flags per the ABI; registers
    the local scan cannot classify fall back to the interblock
    liveness fact at the scan frontier when [live] is supplied, and
    stay conservatively live otherwise. *)
