(** The RedFat static binary rewriter (paper §3-§6): E9Patch-style
    trampoline patching with the check elimination, batching, merging
    and global (dominance-based) elimination optimizations. *)

type options = {
  elim : bool;              (** check elimination (§6) *)
  batch : bool;             (** check batching (§6) *)
  merge : bool;             (** check merging (§6) *)
  global_elim : bool;
      (** drop checks dominated by an equivalent/covering available
          check; every drop is recorded in the [.elimtab] section with
          its justifying site for the soundness linter *)
  scratch_opt : bool;       (** trampoline save specialization (§6) *)
  instrument_reads : bool;
  instrument_writes : bool;
  allowlist : int list option;
      (** [None]: every site gets the backend's primary check.
          [Some sites]: under the [Lowfat] backend, Full only for
          listed sites, Redzone otherwise (production phase of the §5
          workflow); other backends plan independently of it. *)
  hoist : bool;
      (** loop-aware check hoisting: a member of a counted loop whose
          access hull is derivable ({!Dataflow.Loops.member_hoist})
          and whose variant the backend can widen
          ({!Backend.Check_backend.S.widen}) is covered by one widened
          check in the loop preheader instead of a per-iteration
          check.  Every covered site is recorded in [.elimtab] as a
          proof-carrying [hoist] entry that {!Dataflow.Verify}
          re-derives and checks for subsumption.  Off in every preset
          except {!with_hoist}, keeping default outputs byte-identical
          to the pre-hoist rewriter. *)
  profiling : bool;
      (** profiling build: per-site checks (no merging), all Full *)
  backend : Backend.Check_backend.id;
      (** the check backend that plans and emits the instrumentation
          ({!Backend.Check_backend.default} = [Lowfat], the paper's
          complementary design).  Recorded in the [.elimtab] policy
          line, folded into {!options_key} (and thus every cache key),
          and adopted by the runtime and the soundness linter. *)
}

val unoptimized : options
(** Table 1's "unoptimized" column. *)

val with_elim : options
val with_batch : options

val optimized : options
(** Table 1's "+merge" column: all optimizations, including global
    elimination and liveness-driven save specialization. *)

val production : allowlist:int list -> options

val with_hoist : options
(** {!optimized} plus loop-aware check hoisting (the CLI's [--hoist]). *)

val profiling_build : options
(** Per-site observable checks; global elimination is forced off (an
    eliminated site would never report to the profiler). *)

val options_key : options -> string
(** Canonical rendering of every field, for content-hash cache keys:
    equal keys imply identical rewrites of the same input binary. *)

type stats = {
  instrs_total : int;
  mem_ops : int;
  eliminated : int;
  eliminated_global : int;  (** checks dropped by global elimination *)
  instrumented : int;
  full_sites : int;
  redzone_sites : int;
  temporal_sites : int;     (** sites guarded by a lock-and-key check *)
  trampolines : int;
  checks_emitted : int;
  zero_save_sites : int;    (** trampolines needing no register saves *)
  jump_patches : int;
  evictions : int;
  trap_patches : int;
  degraded_sites : int;
      (** sites whose plan faulted and was downgraded from the
          backend's primary check to its fallback (fault policy
          {!Degrade}) *)
  skipped_sites : int;
      (** sites left uninstrumented after both emission attempts
          faulted, each recorded as an [.elimtab] [skip] entry the
          soundness linter audits *)
  hoisted_checks : int;
      (** widened checks emitted in loop preheaders, each standing in
          for the per-iteration checks of every site it covers *)
  widened_span_bytes : int;
      (** total hull width (hi - lo) across emitted hoisted checks *)
  text_bytes : int;
  tramp_bytes : int;
  checks_by_kind : (string * int) list;
      (** the emit/elide breakdown, keyed by check kind or elimination
          rule: [emit.full]/[emit.redzone]/[emit.temporal] (emitted
          checks per variant), [elide.clear] (local elimination: operand provably
          never reaches the heap), [elide.dom] (global elimination:
          covered by a dominating available check), [elide.hoist]
          (sites covered by a widened loop-preheader check),
          [patch.jump]/[patch.trap], [degrade.redzone]/[degrade.skip]
          (fault degradations).  Deterministic; folded into bench JSON
          per-target counters and gated by [tools/bench_diff]. *)
}

type fault_policy =
  | Abort    (** re-raise a site's fault: the whole rewrite fails *)
  | Degrade
      (** downgrade the faulting plan: retry with the backend's
          fallback checks (Redzone for every shipped backend),
          then fall back to uninstrumented with an [.elimtab] [skip]
          record per site.  [Dom] justifications citing a skipped plan
          are downgraded to [skip] too, so the hardened binary always
          passes its own soundness audit. *)

type t = {
  binary : Binfmt.Relf.t;    (** the hardened binary (self-contained) *)
  traps : (int * int) list;  (** patch address -> trampoline address *)
  stats : stats;
}

val default_tramp_base : int
(** The [tramp_base] {!rewrite} uses when none is given
    ({!Lowfat.Layout.trampoline_base}).  Callers that split a binary
    into separately rewritten parts chain their bases from here. *)

val rewrite :
  ?tramp_base:int ->
  ?obs:Obs.t ->
  ?on_fault:fault_policy ->
  ?fault_hook:(stage:string -> site:int -> unit) ->
  options ->
  Binfmt.Relf.t ->
  t
(** Instrument a binary.  [tramp_base] places the trampoline section
    (distinct modules of one process need distinct areas, each within
    rel32 reach of their text).  [obs]: record per-phase spans
    (category ["rewrite"]: collect, plan, elim, emit) and mirror the
    per-check-kind counters ([rw.*]) into the collector.

    [on_fault] (default {!Degrade}) governs what a faulting emission
    does to its plan; [fault_hook ~stage ~site] is called at the start
    of every emission attempt ([stage] is ["emit"] or ["retry"],
    [site] the plan's patch address) — it exists for deterministic
    fault injection, and any exception it raises takes the same
    degradation path as a genuine emission fault.  Faults never leave
    the text partially patched: all fallible work goes to the
    trampoline buffer first and is rolled back on error. *)

val traps_of_binary : Binfmt.Relf.t -> (int * int) list
(** Recover the trap table from a hardened binary's [.traptab]
    section (hardened binaries are self-contained on disk). *)

val is_hardened : Binfmt.Relf.t -> bool

val verify :
  ?allow:int list ->
  Binfmt.Relf.t ->
  (Dataflow.Verify.report, string) result
(** Audit a hardened binary with the rewrite-soundness linter
    ({!Dataflow.Verify}), feeding it the binary's own trap table. *)

val pp_stats : Format.formatter -> stats -> unit
