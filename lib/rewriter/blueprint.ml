(* Hash-consed instrumentation blueprints: the address-independent
   half of a rewrite, interned process-globally by text shape.  See
   blueprint.mli for the sharing/soundness argument. *)

type tactic = Jump | Trap

type bgroup = {
  bg_variant : X64.Isa.variant;
  bg_mem : X64.Isa.mem;
  bg_lo : int;
  bg_hi : int;
  bg_write : bool;
  bg_site : int;
  bg_members : (int * X64.Isa.variant) list;
}

type bplan = {
  bp_first : int;
  bp_tactic : tactic;
  bp_displaced : int list;
  bp_nsaves : int;
  bp_save_flags : bool;
  bp_groups : bgroup list;
}

type reason = Clear | Dom of int | Hoist of int * int * int

type t = {
  b_plans : bplan list;
  b_records : (int * reason) list;
  b_mem_ops : int;
  b_eliminated : int;
  b_eliminated_global : int;
  b_hoisted_members : int;
}

(* --- the shape key --------------------------------------------------- *)

(* Planning reads absolute addresses through exactly two channels:
   intra-text control-flow targets (leaders, CFG edges, loop
   structure) and Mov_ri constants (potential indirect-target leaders;
   Canon folds them into operand displacements).  Targets are rewritten
   to text-relative offsets — an out-of-text call target is collapsed
   to a sentinel, since planning only cares that it is out of text —
   and a Mov_ri constant pointing into the text pins the key to the
   exact text_addr: its folded value reaches merge keys and range
   analysis, so such a shape may only be shared at the same address. *)
let shape_key ~opts_key ~text_addr ~text_end
    (instrs : (int * X64.Isa.instr * int) array) : string =
  let in_range v = v >= text_addr && v < text_end in
  let pinned = ref (-1) in
  let abstract =
    Array.map
      (fun (_, instr, len) ->
        let tag, instr' =
          match instr with
          | X64.Isa.Jmp t when in_range t -> ('o', X64.Isa.Jmp (t - text_addr))
          | X64.Isa.Jcc (cc, t) when in_range t ->
            ('o', X64.Isa.Jcc (cc, t - text_addr))
          | X64.Isa.Call t ->
            if in_range t then ('o', X64.Isa.Call (t - text_addr))
            else ('x', X64.Isa.Call 0)
          | X64.Isa.Mov_ri (r, v) when in_range v ->
            pinned := text_addr;
            ('c', X64.Isa.Mov_ri (r, v - text_addr))
          | i -> ('v', i)
        in
        (tag, instr', len))
      instrs
  in
  Marshal.to_string (opts_key, !pinned, abstract) []

(* --- the interning table --------------------------------------------- *)

(* Guarded lookups, unguarded builds (two domains racing on a fresh
   shape both build the same deterministic value; first insert wins).
   The cap bounds daemon memory: past it, shapes are rebuilt per call
   rather than retained. *)
let table : (string, t) Hashtbl.t = Hashtbl.create 256
let lock = Mutex.create ()
let cap = 8192

let bump obs name =
  match obs with Some o -> Obs.add o name | None -> ()

let find_or_build ?obs ~key build =
  let cached =
    Mutex.lock lock;
    let r = Hashtbl.find_opt table key in
    Mutex.unlock lock;
    r
  in
  match cached with
  | Some bp ->
    bump obs "blueprint.hit";
    bp
  | None ->
    bump obs "blueprint.miss";
    let bp = build () in
    let fresh =
      Mutex.lock lock;
      let f =
        (not (Hashtbl.mem table key)) && Hashtbl.length table < cap
      in
      if f then Hashtbl.replace table key bp;
      Mutex.unlock lock;
      f
    in
    if fresh then bump obs "blueprint.unique";
    bp

let size () =
  Mutex.lock lock;
  let n = Hashtbl.length table in
  Mutex.unlock lock;
  n

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Mutex.unlock lock
