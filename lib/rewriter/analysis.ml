(** Local static analyses feeding the rewriter's optimizations.

    - {!eliminable}: the check-elimination rule (paper §6) — memory
      operands that provably cannot reach the low-fat heap.
    - {!clobbers}: the trampoline-specialization analysis ("additional
      low-level optimizations", §6) — how many scratch registers and
      whether %eflags must be preserved around the instrumentation.
      The forward clobber scan no longer bails conservatively at the
      first control transfer: a block-terminating call or indirect
      jump clobbers the caller-saved registers and flags per the ABI,
      and registers the scan could not classify are resolved by the
      interblock liveness solution when one is supplied. *)

(** The trampoline code needs this many scratch registers when none are
    statically known to be dead at the instrumentation point. *)
let scratch_needed = 3

(** A memory operand that can never point into the low-fat heap does
    not need a check: no index register, and either no base register
    (the displacement is a ±2 GiB absolute, always ≥ 2 GiB away from
    the heap in the standard layout) or the base is the stack pointer
    (the stack lives ≥ 2 GiB from the heap). *)
let eliminable (m : X64.Isa.mem) ~(len : int) : bool =
  match m.idx with
  | Some _ -> false
  | None ->
    (match m.base with
     | None ->
       Lowfat.Layout.addr_range_clear_of_heap ~lo:m.disp ~hi:(m.disp + len)
     | Some r -> r = X64.Isa.rsp)

(** Result of the clobber scan at an instrumentation point. *)
type spec = { nsaves : int; save_flags : bool }

let conservative = { nsaves = scratch_needed; save_flags = true }

(* Scan forward from instruction [start] (inclusive: the displaced
   instruction itself still runs after the check) computing which
   registers are written before being read — dead at the point — and
   whether the flags are written before being read.

   The scan stops {e before} the first block boundary, direct
   control transfer, call, or at [limit] instructions.  Registers and
   flags the scan could not classify are then resolved at the stop
   point: a call or indirect jump makes the caller-saved registers and
   flags dead per the ABI (arguments travel on the stack, the callee
   clobbers freely); anything still unknown falls back to the
   interblock liveness fact at the stop point when [live] is supplied,
   or stays conservatively live. *)
let clobbers ?(live : Dataflow.Live.t option) (cfg : Cfg.t) ~(start : int)
    ~(limit : int) : spec =
  let read = Array.make X64.Isa.num_regs false in
  let dead = Array.make X64.Isa.num_regs false in
  let flags = ref `Unknown in
  let n = Cfg.num_instrs cfg in
  let stop = ref None in
  let i = ref start and steps = ref 0 in
  while !stop = None do
    if !i >= n then stop := Some `End
    else begin
      let addr, instr, _len = cfg.instrs.(!i) in
      if !i > start && Cfg.is_leader cfg addr then stop := Some `Edge
      else if !steps >= limit then stop := Some `Edge
      else
        match X64.Isa.flow_of instr with
        | To_call _ | Dyn_call | Dyn_goto ->
          (* ABI boundary: the transfer's own operands are read first
             (e.g. [call *%rax]), then the callee clobbers *)
          List.iter (fun r -> if not dead.(r) then read.(r) <- true)
            (X64.Isa.uses instr);
          stop := Some `Call
        | Branch _ | Goto _ | Stop -> stop := Some `Edge
        | Fall ->
          List.iter (fun r -> if not dead.(r) then read.(r) <- true)
            (X64.Isa.uses instr);
          List.iter (fun r -> if not read.(r) then dead.(r) <- true)
            (X64.Isa.defs instr);
          if !flags = `Unknown then begin
            if X64.Isa.reads_flags instr then flags := `Read
            else if X64.Isa.writes_flags instr then flags := `Written
          end;
          incr i;
          incr steps
    end
  done;
  (* resolve what the scan left unclassified *)
  (match !stop with
   | Some `Call ->
     (* the call (or tail transfer) writes every caller-saved register
        and the flags before anything can read them *)
     List.iter (fun r -> if not read.(r) then dead.(r) <- true)
       Dataflow.Live.caller_saved_regs;
     if !flags = `Unknown then flags := `Written
   | _ -> ());
  (match live with
   | Some lv when !i < n ->
     (* the stop-point instruction was not consumed by the scan, so the
        liveness fact immediately before it is exactly the fact at the
        scan's frontier; a register untouched between [start] and the
        frontier has the same liveness at both points *)
     let mask = Dataflow.Live.live_before lv !i in
     for r = 0 to X64.Isa.num_regs - 1 do
       if (not read.(r)) && (not dead.(r)) && not (Dataflow.Live.is_live mask r)
       then dead.(r) <- true
     done;
     if !flags = `Unknown && not (Dataflow.Live.flags_live mask) then
       flags := `Written
   | _ -> ());
  let ndead = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 dead in
  {
    nsaves = max 0 (scratch_needed - ndead);
    save_flags = (match !flags with `Written -> false | _ -> true);
  }
