(* Function-granular sharding; see shard.mli for the equivalence
   contract. *)

type slice = {
  sl_addr : int;
  sl_len : int;
  sl_bytes : string;
  sl_digest : string;
}

let slices (b : Binfmt.Relf.t) : slice list option =
  match Binfmt.Relf.find_section b ".text" with
  | None -> None
  | Some text -> (
    let instrs =
      Array.of_list (X64.Disasm.sweep ~addr:text.addr text.bytes)
    in
    match Dataflow.Funs.partition ~text_addr:text.addr instrs with
    | None -> None
    | Some fns ->
      (* the partition is gapless from the text base, but a
         desynchronized sweep can still stop short of the section end;
         bytes no slice owns would be lost on reassembly *)
      let covered =
        List.fold_left (fun s (f : Dataflow.Funs.fn) -> s + f.f_len) 0 fns
      in
      if covered <> String.length text.bytes then None
      else
        Some
          (List.map
             (fun (f : Dataflow.Funs.fn) ->
               let bytes =
                 String.sub text.bytes (f.f_addr - text.addr) f.f_len
               in
               {
                 sl_addr = f.f_addr;
                 sl_len = f.f_len;
                 sl_bytes = bytes;
                 sl_digest = Digest.to_hex (Digest.string bytes);
               })
             fns))

let slice_binary (b : Binfmt.Relf.t) (s : slice) : Binfmt.Relf.t =
  {
    b with
    entry = s.sl_addr;
    sections =
      [
        Binfmt.Relf.section ~executable:true ~name:".text" ~addr:s.sl_addr
          s.sl_bytes;
      ];
  }

let part_section (p : Rewrite.t) name =
  match Binfmt.Relf.find_section p.binary name with
  | Some s -> s.Binfmt.Relf.bytes
  | None -> ""

let merge_elimtabs (parts : Rewrite.t list) : string =
  let tabs =
    List.map
      (fun p ->
        match
          Dataflow.Elimtab.parse
            (part_section p Dataflow.Elimtab.section_name)
        with
        | Ok t -> t
        | Error e -> invalid_arg ("Shard.assemble: bad part elimtab: " ^ e))
      parts
  in
  match tabs with
  | [] -> invalid_arg "Shard.assemble: no parts"
  | first :: _ ->
    (* each part sorted its own entries; the monolithic table is the
       sort of their union, and the policy line is uniform across
       parts (same options, same backend) *)
    Dataflow.Elimtab.render
      {
        first with
        Dataflow.Elimtab.entries =
          List.sort compare
            (List.concat_map (fun t -> t.Dataflow.Elimtab.entries) tabs);
      }

let add_stats (a : Rewrite.stats) (b : Rewrite.stats) : Rewrite.stats =
  {
    instrs_total = a.instrs_total + b.instrs_total;
    mem_ops = a.mem_ops + b.mem_ops;
    eliminated = a.eliminated + b.eliminated;
    eliminated_global = a.eliminated_global + b.eliminated_global;
    instrumented = a.instrumented + b.instrumented;
    full_sites = a.full_sites + b.full_sites;
    redzone_sites = a.redzone_sites + b.redzone_sites;
    temporal_sites = a.temporal_sites + b.temporal_sites;
    trampolines = a.trampolines + b.trampolines;
    checks_emitted = a.checks_emitted + b.checks_emitted;
    zero_save_sites = a.zero_save_sites + b.zero_save_sites;
    jump_patches = a.jump_patches + b.jump_patches;
    evictions = a.evictions + b.evictions;
    trap_patches = a.trap_patches + b.trap_patches;
    degraded_sites = a.degraded_sites + b.degraded_sites;
    skipped_sites = a.skipped_sites + b.skipped_sites;
    hoisted_checks = a.hoisted_checks + b.hoisted_checks;
    widened_span_bytes = a.widened_span_bytes + b.widened_span_bytes;
    text_bytes = a.text_bytes + b.text_bytes;
    tramp_bytes = a.tramp_bytes + b.tramp_bytes;
    checks_by_kind =
      (* every rewrite carries the same fixed kind list, in order *)
      List.map2
        (fun (k, va) (k', vb) ->
          if k <> k' then invalid_arg "Shard.assemble: kind mismatch";
          (k, va + vb))
        a.checks_by_kind b.checks_by_kind;
  }

let assemble ~(binary : Binfmt.Relf.t) ~tramp_base (parts : Rewrite.t list) :
    Rewrite.t =
  (match parts with
  | [] -> invalid_arg "Shard.assemble: no parts"
  | _ -> ());
  let patched_text =
    String.concat "" (List.map (fun p -> part_section p ".text") parts)
  in
  let tramp_bytes =
    String.concat "" (List.map (fun p -> part_section p ".redfat") parts)
  in
  let traps = List.concat_map (fun (p : Rewrite.t) -> p.traps) parts in
  let traptab =
    String.concat ""
      (List.map (fun (a, t) -> Printf.sprintf "%x %x\n" a t) traps)
  in
  let elimtab = merge_elimtabs parts in
  let sections =
    List.map
      (fun (s : Binfmt.Relf.section) ->
        if s.name = ".text" then { s with bytes = patched_text } else s)
      binary.sections
    @ [
        Binfmt.Relf.section ~executable:true ~name:".redfat" ~addr:tramp_base
          tramp_bytes;
        Binfmt.Relf.section ~name:Dataflow.Elimtab.section_name ~addr:0 elimtab;
      ]
    @
    if traptab = "" then []
    else [ Binfmt.Relf.section ~name:".traptab" ~addr:0 traptab ]
  in
  let stats =
    match List.map (fun (p : Rewrite.t) -> p.stats) parts with
    | [] -> assert false
    | s :: rest -> List.fold_left add_stats s rest
  in
  { Rewrite.binary = { binary with sections }; traps; stats }
