(** A CWE-416 (use-after-free) extension suite.

    The paper's Table 2 evaluates non-incremental spatial errors; this
    suite extends the evaluation to the temporal errors RedFat also
    protects against (the metadata word in the redzone is zeroed on
    free, so any later access fails the merged state/bounds check).

    8 patterns × 4 control-flow variants = 32 cases.  Each case takes
    one input: 0 runs the safe ordering (use before free), 1 the buggy
    one.  Two extra cases probe what the redzone state word alone
    cannot see: [reuse_case] (the slot is reallocated between free and
    use, so the access hits a live object — the spatial backends miss
    it, the lock-and-key temporal backend catches the stale key) and
    [double_free_case] (the spatial allocator aborts; the temporal
    backend reports a typed [Double_free]). *)

open Minic.Ast
open Minic.Build

type case = {
  id : string;
  pattern : int;
  variant : int;
  program : program;
}

let benign_inputs = [ 0 ]
let attack_inputs = [ 1 ]

(* Each pattern body runs with locals "a" (8 elems, freed when bad=1
   before the use) and "bad".  The helper [maybe_free] frees "a" only
   on the buggy path; the use follows unconditionally. *)
let patterns : (string * stmt list) list =
  let maybe_free = if_ (v "bad" =: i 1) [ free_ (v "a") ] [] in
  let cleanup = if_ (v "bad" =: i 1) [] [ free_ (v "a") ] in
  [
    ( "write-after-free",
      [ maybe_free; set (v "a") (i 2) (i 7); cleanup ] );
    ( "read-after-free",
      [ maybe_free; let_ "x" (idx (v "a") (i 2)); print_ (v "x" *: i 0);
        cleanup ] );
    ( "alias-use-after-free",
      [ let_ "alias" (v "a"); maybe_free;
        set (v "alias") (i 3) (i 9); cleanup ] );
    ( "use-after-free-in-loop",
      [ maybe_free;
        for_ "j" (i 0) (i 4) [ set (v "a") (v "j") (v "j") ];
        cleanup ] );
    ( "dangling-in-array",
      [ let_ "holder" (alloc_elems (i 2));
        set (v "holder") (i 0) (v "a");
        maybe_free;
        set (v "holder") (i 1) (idx (v "holder") (i 0));
        Store (E8, idx (v "holder") (i 1), i 1, i 5);
        cleanup;
        free_ (v "holder") ] );
    ( "uaf-after-other-alloc",
      (* an allocation of a DIFFERENT size class between free and use:
         the slot is not reused, so detection must survive *)
      [ maybe_free;
        let_ "other" (alloc_elems (i 64));
        set (v "a") (i 2) (i 1);
        free_ (v "other");
        cleanup ] );
    ( "partial-struct-use",
      [ maybe_free; setk (v "a") (i 0) 5 (i 3); cleanup ] );
    ( "read-chain-after-free",
      [ set (v "a") (i 0) (i 1);
        maybe_free;
        let_ "x" (idx (v "a") (idx (v "a") (i 0)));
        print_ (v "x" *: i 0);
        cleanup ] );
  ]

(* Control-flow variants, as in the Juliet suite. *)
let wrap variant (body : stmt list) : func list =
  let core =
    [ let_ "a" (alloc_elems (i 8));
      for_ "j" (i 0) (i 8) [ set (v "a") (v "j") (i 0) ] ]
    @ body
    @ [ print_ (i 1); return_ (i 0) ]
  in
  match variant with
  | 0 -> [ func ~name:"main" ([ let_ "bad" Input ] @ core) ]
  | 1 ->
    [ func ~name:"main"
        [ let_ "bad" Input;
          if_ (i 1 >: i 0) core [];
          return_ (i 0) ] ]
  | 2 ->
    [ func ~name:"main" [ return_ (call "h" [ Input ]) ];
      func ~name:"h" ~params:[ "bad" ] core ]
  | _ ->
    [ func ~name:"main"
        ([ let_ "bad" Input; let_ "once" (i 0) ]
        @ [ while_ (v "once" =: i 0) (core @ [ assign "once" (i 1) ]) ]
        @ [ return_ (i 0) ]) ]

let all : case list =
  List.concat
    (List.mapi
       (fun pi (pname, body) ->
         List.init 4 (fun variant ->
             {
               id = Printf.sprintf "CWE416_%s_v%d" pname variant;
               pattern = pi;
               variant;
               program = Minic.Ast.program (wrap variant body);
             }))
       patterns)

let binary (c : case) = Minic.Codegen.compile c.program

(** The slot-reuse case: the freed slot is reallocated (same class)
    before the use.  The spatial backends (no quarantine) miss it —
    the access hits live memory; Memcheck's quarantine catches it, and
    so does the temporal backend (the dangling pointer still carries
    the dead allocation's key, which no longer matches the slot's
    lock). *)
let reuse_case : program =
  Minic.Ast.program
    [
      func ~name:"main"
        [
          let_ "a" (alloc_elems (i 8));
          free_ (v "a");
          (* same class: the low-fat allocator hands the slot back *)
          let_ "b" (alloc_elems (i 8));
          set (v "a") (i 2) (i 7); (* dangling write into b's memory *)
          print_ (idx (v "b") (i 2));
          free_ (v "b");
          return_ (i 0);
        ];
    ]

(** Double free, input-gated like the suite cases: input 0 frees once
    (safe), input 1 frees the same pointer twice.  Under the spatial
    backends the second free aborts in the allocator (a [Fault]
    verdict, not a classified detection); the temporal backend's free
    finds the key already invalidated and reports [Double_free]. *)
let double_free_case : program =
  Minic.Ast.program
    [
      func ~name:"main"
        [
          let_ "bad" Input;
          let_ "a" (alloc_elems (i 8));
          set (v "a") (i 0) (i 1);
          free_ (v "a");
          if_ (v "bad" =: i 1) [ free_ (v "a") ] [];
          print_ (i 1);
          return_ (i 0);
        ];
    ]
