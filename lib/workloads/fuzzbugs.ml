(** Seeded-bug cases for the fuzzing fleet (`redfat fuzz bug:*`).

    Each case is a small MiniC program with exactly one planted memory
    error behind an input gate: input 0 (and the empty script) runs
    clean, and some discoverable input — a boundary constant, a ±1
    neighbour, or a parity — trips the bug.  The gates are chosen to
    be reachable by {!Fuzz.Mutate.deterministic_stage} (interesting
    values and small arithmetic), not by luck, so a bounded
    deterministic campaign finds every case.

    The suite doubles as ground truth elsewhere:
    - the Table-2x extension rows "CWE-125 OOB read (fuzz)" and
      "off-by-one write (fuzz)" classify these programs' attack runs
      per backend;
    - the CI fuzz-smoke campaign asserts at least one seeded bug is
      found and deduplicated per backend (the spatial backends catch
      the bounds cases, the temporal backend the use-after-free and
      double-free cases; every backend catches [uaf]). *)

open Minic.Ast
open Minic.Build

type case = {
  id : string;
  cwe : string;         (** the planted bug's class *)
  benign : int list;    (** inputs that must run clean *)
  attack : int list;    (** one known bug-tripping input *)
  program : program;
}

(* shared prologue: an 8-element heap array, initialized, and the one
   gate input *)
let wrap (body : stmt list) ~(frees : bool) : program =
  Minic.Ast.program
    [
      func ~name:"main"
        ([
           let_ "a" (alloc_elems (i 8));
           for_ "j" (i 0) (i 8) [ set (v "a") (v "j") (i 0) ];
           let_ "x" Input;
         ]
        @ body
        @ (if frees then [ free_ (v "a") ] else [])
        @ [ print_ (i 1); return_ (i 0) ]);
    ]

let all : case list =
  [
    {
      id = "oob-write";
      cwe = "CWE-787 out-of-bounds write";
      benign = [ 0 ];
      attack = [ 64 ];
      (* threshold gate: any interesting value > 60 trips it *)
      program =
        wrap ~frees:true
          [ if_ (v "x" >: i 60) [ set (v "a") (i 8) (i 7) ] [] ];
    };
    {
      id = "oob-read";
      cwe = "CWE-125 out-of-bounds read";
      benign = [ 0 ];
      attack = [ 8 ];
      (* the input is the index: >= 8 overflows, < 0 underflows *)
      program =
        wrap ~frees:true [ print_ (idx (v "a") (v "x")) ];
    };
    {
      id = "off-by-one";
      cwe = "CWE-193 off-by-one write";
      benign = [ 0; 8 ];
      attack = [ 9 ];
      (* the input is the loop bound: 9 writes a[8], one past the end *)
      program =
        wrap ~frees:true
          [ for_ "j" (i 0) (v "x") [ set (v "a") (v "j") (v "j") ] ];
    };
    {
      id = "uaf";
      cwe = "CWE-416 use-after-free";
      benign = [ 0 ];
      attack = [ 1 ];
      (* parity gate: odd inputs free before the write *)
      program =
        wrap ~frees:false
          [
            if_ (v "x" &: i 1 =: i 1) [ free_ (v "a") ] [];
            set (v "a") (i 2) (i 7);
            if_ (v "x" &: i 1 =: i 1) [] [ free_ (v "a") ];
          ];
    };
    {
      id = "double-free";
      cwe = "CWE-415 double free";
      benign = [ 0 ];
      attack = [ 7 ];
      (* the spatial allocators abort; the temporal backend classifies *)
      program =
        wrap ~frees:false
          [ free_ (v "a"); if_ (v "x" >: i 6) [ free_ (v "a") ] [] ];
    };
    {
      id = "hang";
      cwe = "CWE-835 infinite loop";
      benign = [ 0; 100 ];
      attack = [ 1024 ];
      program =
        wrap ~frees:true
          [
            let_ "s" (i 0);
            while_ (v "x" >: i 100) [ assign "s" (v "s" +: i 1) ];
            print_ (v "s");
          ];
    };
  ]

let find id : case =
  match List.find_opt (fun c -> c.id = id) all with
  | Some c -> c
  | None -> raise Not_found

let binary (c : case) = Minic.Codegen.compile c.program
