(** Deterministic mutation stages for the fuzzing fleet.

    Two input shapes are mutated: MiniC input scripts (int vectors fed
    to the VM's [Input] runtime call) and raw byte strings (fed to the
    RELF / MiniC parsers).  Both get an AFL-style split:

    - a {e deterministic stage}: the bounded, rng-free candidate set
      tried once when an input first enters the corpus (interesting
      values, small arithmetic, appends, removals / truncations);
    - a {e havoc stage}: stacked random mutations drawn from the
      campaign's LCG, used once the deterministic candidates drain.

    Everything here is pure or driven by {!Rng}, so a campaign's
    generated input stream depends only on its seed — never on worker
    count or scheduling. *)

(** A 48-bit LCG (the [drand48] constants).  The low-tech choice is
    deliberate: the state fits a 63-bit OCaml [int] on every platform,
    so campaigns replay bit-exactly. *)
module Rng = struct
  type t = { mutable s : int }

  let create seed = { s = (seed land 0xFFFFFFFFFFFF) lxor 0x5DEECE66D }

  let next t =
    t.s <- ((t.s * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
    t.s lsr 16

  let int t n = if n <= 0 then 0 else next t mod n
end

(** Boundary-prone constants: gate thresholds, powers of two and their
    neighbours, sign/byte extremes.  The deterministic stage tries each
    of these at each position, which is what finds `if (x > N)`-guarded
    bugs without luck. *)
let interesting =
  [| 0; 1; -1; 2; 4; 7; 8; 9; 16; 17; 32; 61; 64; 100; 101; 127; 128;
     255; 256; 1024; -128 |]

let max_stage = 256
(** Cap on one deterministic stage (keeps per-corpus-entry work
    bounded on long inputs). *)

let take n l =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | _ -> List.rev acc
  in
  go n [] l

(* --- int-vector inputs (VM input scripts) --------------------------- *)

let deterministic_stage (input : int list) : int list list =
  let a = Array.of_list input in
  let n = Array.length a in
  let subst p v =
    let b = Array.copy a in
    b.(p) <- v;
    Array.to_list b
  in
  let appends =
    List.map (fun v -> input @ [ v ]) (Array.to_list interesting)
  in
  let per_pos =
    List.concat
      (List.init n (fun p ->
           List.map (fun v -> subst p v) (Array.to_list interesting)
           @ [ subst p (a.(p) + 1); subst p (a.(p) - 1);
               subst p (a.(p) + 4); subst p (a.(p) - 4) ]))
  in
  let removals =
    List.init n (fun p -> List.filteri (fun j _ -> j <> p) input)
  in
  take max_stage (appends @ per_pos @ removals)

let havoc (rng : Rng.t) (input : int list) : int list =
  let cur = ref (Array.of_list input) in
  let ops = 1 + Rng.int rng 4 in
  for _ = 1 to ops do
    let a = !cur in
    let n = Array.length a in
    match Rng.int rng 7 with
    | 0 when n > 0 ->
      let p = Rng.int rng n in
      a.(p) <- a.(p) + (Rng.int rng 9 - 4)
    | 1 when n > 0 ->
      let p = Rng.int rng n in
      a.(p) <- interesting.(Rng.int rng (Array.length interesting))
    | 2 when n > 0 ->
      let p = Rng.int rng n in
      a.(p) <- a.(p) lxor (1 lsl Rng.int rng 11)
    | 3 when n > 0 ->
      let p = Rng.int rng n in
      a.(p) <- a.(p) * 2
    | 4 -> cur := Array.append a [| Rng.int rng 2048 - 512 |]
    | 5 when n > 1 -> cur := Array.sub a 0 (n - 1)
    | 6 when n > 0 ->
      (* duplicate one element in place: length-preserving splice *)
      let p = Rng.int rng n and q = Rng.int rng n in
      a.(q) <- a.(p)
    | _ -> cur := Array.append a [| interesting.(Rng.int rng (Array.length interesting)) |]
  done;
  Array.to_list !cur

(* --- byte-string inputs (parser fuzzing) ---------------------------- *)

(** Format-boundary bytes: NUL, newline (the RELF field terminator),
    space, hex digits, high bit, 0xff. *)
let interesting_bytes =
  [| '\x00'; '\x01'; '\n'; ' '; '0'; '9'; 'a'; 'f'; 'R'; '\x7f'; '\xff' |]

let deterministic_stage_bytes (s : string) : string list =
  let n = String.length s in
  let subst p c =
    let b = Bytes.of_string s in
    Bytes.set b p c;
    Bytes.to_string b
  in
  let truncations =
    [ 0; n / 4; n / 2; 3 * n / 4; n - 1 ]
    |> List.filter (fun k -> k >= 0 && k < n)
    |> List.sort_uniq compare
    |> List.map (fun k -> String.sub s 0 k)
  in
  let appends =
    List.map (fun c -> s ^ String.make 1 c) (Array.to_list interesting_bytes)
  in
  (* substitutions on a bounded prefix: headers live at the front *)
  let per_pos =
    List.concat
      (List.init (min n 48) (fun p ->
           List.map (fun c -> subst p c) (Array.to_list interesting_bytes)
           @ [ subst p (Char.chr (Char.code s.[p] lxor 0x80)) ]))
  in
  take max_stage (truncations @ appends @ per_pos)

let havoc_bytes (rng : Rng.t) (s : string) : string =
  let cur = ref s in
  let ops = 1 + Rng.int rng 4 in
  for _ = 1 to ops do
    let s = !cur in
    let n = String.length s in
    match Rng.int rng 5 with
    | 0 when n > 0 ->
      let b = Bytes.of_string s in
      Bytes.set b (Rng.int rng n) (Char.chr (Rng.int rng 256));
      cur := Bytes.to_string b
    | 1 when n > 0 -> cur := String.sub s 0 (Rng.int rng n)
    | 2 ->
      let p = Rng.int rng (n + 1) in
      cur :=
        String.sub s 0 p
        ^ String.make 1 interesting_bytes.(Rng.int rng (Array.length interesting_bytes))
        ^ String.sub s p (n - p)
    | 3 when n > 1 ->
      (* duplicate a chunk: length grows, structure repeats *)
      let p = Rng.int rng n in
      let len = min (1 + Rng.int rng 8) (n - p) in
      cur := s ^ String.sub s p len
    | _ when n > 0 ->
      let b = Bytes.of_string s in
      let p = Rng.int rng n in
      Bytes.set b p (Char.chr (Char.code s.[p] lxor (1 lsl Rng.int rng 8)));
      cur := Bytes.to_string b
    | _ -> cur := s ^ "\n"
  done;
  !cur
