(** The campaign corpus: inputs worth mutating, with coverage-feedback
    scheduling (the AFL "interesting input" rule).  Parametric in the
    input type so exec campaigns (int vectors) and parser campaigns
    (byte strings) share one manager. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> input:'a -> edges:int list -> sites:int list -> bool
(** Record one execution's coverage.  The input is kept — and [true]
    returned — iff it reached an edge or check site no earlier entry
    reached. *)

val schedule : 'a t -> Mutate.Rng.t -> 'a option
(** Draw a mutation parent, weighted by how much new coverage the
    entry contributed on arrival (capped, so early giants cannot
    starve the frontier); [None] on an empty corpus. *)

val size : 'a t -> int
val n_edges : 'a t -> int
val n_sites : 'a t -> int

val entries : 'a t -> 'a list
(** All kept inputs, oldest first. *)
