(** The orchestrated fuzzing campaign: coverage-guided input
    generation on the {!Engine.Pipeline} domain pool with the
    hardening checks as the crash oracle.  Deterministic for a given
    (target, backend, seeds, config) — independent of [--jobs].  See
    docs/FUZZING.md for the campaign anatomy and the triage
    contract. *)

type config = {
  budget : int;     (** campaign executions (seeds included) *)
  seed : int;       (** LCG seed: same seed, same report *)
  max_steps : int;  (** per-execution VM step budget (hang oracle) *)
}

val default_config : config

type bug = {
  b_code : string;          (** oracle code, e.g. [detect.oob-upper] *)
  b_site : int;             (** dedup site *)
  b_backend : string;
  b_class : string;         (** CWE-annotated class ({!Oracle.bug_class}) *)
  mutable b_count : int;    (** crashes collapsed into this bug *)
  b_first_exec : int;       (** execution index of first discovery (1-based) *)
  b_input : string;         (** first crashing input, rendered *)
  mutable b_min_input : string;  (** minimized, still crashing *)
  b_detail : string;
}

type report = {
  r_target : string;
  r_mode : string;          (** ["exec"] or ["parse"] *)
  r_backend : string;
  r_seed : int;
  r_budget : int;
  r_execs : int;
  r_crashes : int;
  r_cov_edges : int;
  r_cov_sites : int;
  r_corpus : int;
  r_min_execs : int;        (** extra executions spent minimizing *)
  r_bugs : bug list;        (** discovery order *)
}

type exec_result = {
  x_edges : int list;              (** distinct AFL edge hashes, sorted *)
  x_sites : int list;              (** distinct check sites, sorted *)
  x_crash : Oracle.crash option;
  x_cycles : int;
}

val execute :
  ?max_steps:int -> Binfmt.Relf.t -> int list -> exec_result
(** One execution of a hardened binary under the backend it records,
    with AFL edge/site coverage and the oracle's verdict.  Pure per
    call, so executions fan out over domains safely. *)

val run_exec :
  Engine.Pipeline.t ->
  ?config:config ->
  target:string ->
  ?seeds:int list list ->
  Binfmt.Relf.t ->
  report
(** Fuzz a hardened binary (inputs = VM input scripts).  Records
    [fuzz.*] campaign counters and the [fuzz.exec_cycles] histogram
    into the engine's collector. *)

type parser_target = Relf_parser | Minic_parser

val parser_name : parser_target -> string

val parse_once : parser_target -> string -> exec_result
(** One parse attempt; the crash is a typed [parse.*] rejection, or
    [run.fault] when the parser escapes with anything else (a genuine
    parser bug). *)

val run_parse :
  Engine.Pipeline.t ->
  ?config:config ->
  which:parser_target ->
  seeds:string list ->
  unit ->
  report
(** Fuzz a parser (inputs = raw bytes; seed with a corrupt corpus). *)

val minimize_inputs : (int list -> bool) -> int list -> int list
(** Greedy bounded ddmin for int vectors: drop elements, then shrink
    values, re-checking the predicate at every step. *)

val minimize_bytes : (string -> bool) -> string -> string

val to_json : report -> string
val reports_json : report list -> string
(** Several campaigns as one [--out] document (schema in the MANUAL). *)

val counters : report -> (string * int) list
(** The per-campaign [fuzz.*] counters, in
    {!Engine.Report.add_target} shape. *)

val bug_summary : bug -> string
(** One human line per bug. *)
