(** Coverage-guided input generation for the profiling phase.

    Paper §5: "the quality of the generated allow-list depends on the
    quality of the test suite ... automated coverage-guided testing
    tools, such as AFL over binaries, can be used to boost coverage."
    This is that booster: an AFL-style mutation loop over the program's
    input vector, keeping every input that executes a previously-unseen
    instrumentation site.  The resulting corpus is a test suite for
    {!Redfat.profile}.

    Fully deterministic: the mutation source is a seeded xorshift, so a
    given (binary, seeds, budget, seed) always yields the same corpus. *)

type stats = {
  corpus : int list list;   (** the grown test suite *)
  sites_covered : int;      (** distinct instrumentation sites executed *)
  total_sites : int;        (** instrumented sites in the binary *)
  executions : int;
}

type rng = { mutable s : int }

let next r =
  let s = r.s in
  let s = s lxor (s lsl 13) land max_int in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) land max_int in
  r.s <- s;
  s

let rand r n = if n <= 0 then 0 else next r mod n

(* AFL-ish integer-vector mutations: tweak, interesting-value splice,
   grow, shrink, crossover.  The interesting-value table is shared
   with the campaign fleet's {!Mutate} stages. *)
let mutate r (input : int list) : int list =
  let a = Array.of_list input in
  let interesting = Mutate.interesting in
  let n = Array.length a in
  (match rand r 6 with
   | 0 when n > 0 ->
     let k = rand r n in
     a.(k) <- a.(k) + (rand r 9 - 4)
   | 1 when n > 0 ->
     let k = rand r n in
     a.(k) <- interesting.(rand r (Array.length interesting))
   | 2 when n > 0 ->
     let k = rand r n in
     a.(k) <- a.(k) lxor (1 lsl rand r 10)
   | 3 when n > 0 ->
     let k = rand r n in
     a.(k) <- a.(k) * 2
   | _ -> ());
  let l = Array.to_list a in
  match rand r 4 with
  | 0 -> l @ [ rand r 256 ] (* grow *)
  | 1 -> (match l with _ :: t when t <> [] -> t | l -> l) (* shrink *)
  | _ -> l

(** [fuzz binary ~seeds ~budget ~seed] grows a profiling test suite. *)
let fuzz ?(seeds = [ [] ]) ?(budget = 300) ?(seed = 1) ?max_steps
    (binary : Binfmt.Relf.t) : stats =
  let prof = Redfat.Rewrite.rewrite Redfat.Rewrite.profiling_build binary in
  let total_sites = prof.stats.checks_emitted in
  let r = { s = max 1 seed } in
  let covered = Hashtbl.create 256 in
  let corpus = ref [] in
  let executions = ref 0 in
  let log_opts =
    { Redfat_rt.Runtime.default_options with mode = Redfat_rt.Runtime.Log }
  in
  let try_input inputs =
    incr executions;
    let hr =
      Redfat.run_hardened ?max_steps ~options:log_opts ~profiling:true ~inputs
        prof.binary
    in
    let fresh = ref false in
    List.iter
      (fun site ->
        if not (Hashtbl.mem covered site) then begin
          Hashtbl.replace covered site ();
          fresh := true
        end)
      (Redfat_rt.Runtime.executed_sites hr.rt);
    if !fresh then corpus := inputs :: !corpus
  in
  List.iter try_input seeds;
  let corpus_array () = Array.of_list !corpus in
  for _ = 1 to budget do
    let c = corpus_array () in
    let parent =
      if Array.length c = 0 then [] else c.(rand r (Array.length c))
    in
    try_input (mutate r parent)
  done;
  {
    corpus = List.rev !corpus;
    sites_covered = Hashtbl.length covered;
    total_sites;
    executions = !executions;
  }

(** One-call convenience: fuzz, then run the Figure-5 workflow with the
    grown corpus. *)
let fuzz_and_harden ?seeds ?budget ?seed ?max_steps
    ?(opts = Redfat.Rewrite.optimized) (binary : Binfmt.Relf.t) :
    Redfat.Rewrite.t * stats =
  let st = fuzz ?seeds ?budget ?seed ?max_steps binary in
  let test_suite = if st.corpus = [] then [ [] ] else st.corpus in
  (Redfat.profile_and_harden ?max_steps ~test_suite ~opts binary, st)
