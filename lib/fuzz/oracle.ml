(** The crash/triage oracle: hardening detections and typed faults as
    bug-finding verdicts.

    The contract (documented in docs/FUZZING.md): every way an
    execution can end abnormally maps to a {e stable oracle code},
    and a campaign deduplicates crashes into bugs keyed by
    [(oracle code, check site, backend)].

    - [detect.*] codes are the paper's point: the installed backend
      classified the corruption at the faulting check site
      ([detect.oob-upper], [detect.use-after-free], ...).  The site in
      the key is the {e guarded instruction}, so two different inputs
      tripping the same broken access collapse into one bug.
    - [run.timeout] is the hang oracle (step-budget exhaustion).
    - [run.fault] is an unclassified crash — in an exec campaign a
      miss the backend should have caught; in a parser campaign a
      genuine parser bug (parsers must reject with typed [parse.*]
      faults, never crash).
    - [parse.*] codes (parser campaigns) are typed rejections: each
      distinct code is one robustness class reached. *)

type crash = {
  c_code : string;   (** stable oracle code *)
  c_site : int;      (** dedup site: check site, rip, or source line *)
  c_detail : string;
}

let kind_slug : Redfat_rt.Runtime.error_kind -> string = function
  | Redfat_rt.Runtime.Use_after_free -> "use-after-free"
  | Oob_lower -> "oob-lower"
  | Oob_upper -> "oob-upper"
  | Corrupt_meta -> "corrupt-meta"
  | Key_mismatch -> "stale-key"
  | Double_free -> "double-free"

let of_error (e : Redfat_rt.Runtime.access_error) : crash =
  {
    c_code = "detect." ^ kind_slug e.kind;
    c_site = e.site;
    c_detail =
      Printf.sprintf "%s at site %#x (addr %#x)"
        (Redfat_rt.Runtime.kind_name e.kind)
        e.site e.addr;
  }

(** The bug class a campaign report attributes to an oracle code (the
    Table-2-style attack-class vocabulary, CWE-annotated). *)
let bug_class code =
  let has_prefix p =
    String.length code >= String.length p
    && String.sub code 0 (String.length p) = p
  in
  match code with
  | "detect.oob-upper" -> "heap overflow (CWE-122/787)"
  | "detect.oob-lower" -> "heap underflow (CWE-124/786)"
  | "detect.use-after-free" -> "use-after-free (CWE-416)"
  | "detect.stale-key" -> "stale pointer into reused slot (CWE-416)"
  | "detect.double-free" -> "double free (CWE-415)"
  | "detect.corrupt-meta" -> "heap metadata corruption"
  | "detect.bad-free" -> "invalid/double free, allocator abort (CWE-415/761)"
  | "run.timeout" -> "hang / livelock (CWE-835)"
  | "run.fault" -> "unclassified crash"
  | _ when has_prefix "parse." -> "malformed input rejected (typed parse fault)"
  | _ -> "unclassified"

(** Is the code a backend detection (as opposed to a hang, an
    unclassified crash, or a typed parser rejection)? *)
let is_detection code =
  String.length code >= 7 && String.sub code 0 7 = "detect."
