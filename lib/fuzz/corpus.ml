(** The campaign corpus: inputs worth mutating, with coverage-feedback
    scheduling.

    An input joins the corpus only if it reached an edge or a check
    site no earlier entry reached (the AFL "interesting input" rule).
    {!schedule} draws a mutation parent with probability weighted by
    how much new coverage the entry contributed when it arrived, so
    frontier-opening inputs get proportionally more mutation energy
    than inputs that barely scraped in.

    Parametric in the input type: the same manager schedules int-vector
    VM scripts (exec campaigns) and byte strings (parser campaigns). *)

type 'a entry = {
  e_input : 'a;
  e_novelty : int;  (** new edges + new sites contributed on arrival *)
}

type 'a t = {
  mutable entries : 'a entry list;  (** newest first *)
  mutable n : int;
  edges : (int, unit) Hashtbl.t;
  sites : (int, unit) Hashtbl.t;
}

let create () =
  { entries = []; n = 0; edges = Hashtbl.create 256; sites = Hashtbl.create 64 }

let size t = t.n
let n_edges t = Hashtbl.length t.edges
let n_sites t = Hashtbl.length t.sites

let absorb seen xs =
  List.fold_left
    (fun fresh x ->
      if Hashtbl.mem seen x then fresh
      else begin
        Hashtbl.replace seen x ();
        fresh + 1
      end)
    0 xs

(** Record one execution's coverage; the input is kept (and [true]
    returned) iff it contributed a new edge or site. *)
let add t ~input ~edges ~sites : bool =
  let novelty = absorb t.edges edges + absorb t.sites sites in
  if novelty = 0 then false
  else begin
    t.entries <- { e_input = input; e_novelty = novelty } :: t.entries;
    t.n <- t.n + 1;
    true
  end

(** Weight of one entry in the scheduling lottery: novelty-proportional,
    capped so one huge first entry cannot starve the rest. *)
let weight e = 1 + min 8 e.e_novelty

(** Draw a mutation parent, favoring entries that opened more of the
    coverage frontier; [None] on an empty corpus. *)
let schedule t (rng : Mutate.Rng.t) : 'a option =
  if t.n = 0 then None
  else begin
    let total = List.fold_left (fun acc e -> acc + weight e) 0 t.entries in
    let r = Mutate.Rng.int rng total in
    let rec pick acc = function
      | [] -> None
      | e :: rest ->
        let acc = acc + weight e in
        if r < acc then Some e.e_input else pick acc rest
    in
    pick 0 t.entries
  end

let entries t = List.rev_map (fun e -> e.e_input) t.entries
(** All kept inputs, oldest first. *)
