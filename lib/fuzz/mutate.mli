(** Deterministic mutation stages for the fuzzing fleet: an AFL-style
    deterministic/havoc split over two input shapes (VM input scripts
    and raw parser bytes).  Pure or LCG-driven, so a campaign's input
    stream depends only on its seed. *)

(** A 48-bit LCG ([drand48] constants); fits a 63-bit OCaml [int]
    everywhere, so campaigns replay bit-exactly across platforms. *)
module Rng : sig
  type t

  val create : int -> t
  val int : t -> int -> int
  (** [int t n] draws uniformly from [0, n)]; 0 when [n <= 0]. *)
end

val interesting : int array
(** Boundary-prone constants tried at every position by the
    deterministic stage (gate thresholds, powers of two, extremes). *)

val max_stage : int
(** Upper bound on the candidate count of one deterministic stage. *)

val deterministic_stage : int list -> int list list
(** The bounded, rng-free candidate set tried when an int-vector input
    first enters the corpus: interesting-value substitution, small
    arithmetic, appends, single-element removals. *)

val havoc : Rng.t -> int list -> int list
(** One stacked-random mutation of an int-vector input. *)

val deterministic_stage_bytes : string -> string list
(** Byte-string analogue: truncations, appends, and interesting-byte
    substitutions on a bounded prefix. *)

val havoc_bytes : Rng.t -> string -> string
(** One stacked-random mutation of a byte-string input. *)
