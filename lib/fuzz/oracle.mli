(** The crash/triage oracle: hardening detections and typed faults as
    bug-finding verdicts, deduplicated by
    [(oracle code, check site, backend)].  The full contract lives in
    docs/FUZZING.md. *)

type crash = {
  c_code : string;   (** stable oracle code ([detect.oob-upper], ...) *)
  c_site : int;      (** dedup site: check site, rip, or source line *)
  c_detail : string;
}

val kind_slug : Redfat_rt.Runtime.error_kind -> string
(** The stable [detect.] suffix for a runtime error kind. *)

val of_error : Redfat_rt.Runtime.access_error -> crash
(** A backend detection as a crash record ([detect.<kind>] at the
    guarded site). *)

val bug_class : string -> string
(** The CWE-annotated attack-class label a report attributes to an
    oracle code. *)

val is_detection : string -> bool
(** [detect.*] codes: the backend classified the corruption (vs a
    hang, unclassified crash, or typed parser rejection). *)
