(** The orchestrated fuzzing campaign: coverage-guided input
    generation scheduled on the {!Engine.Pipeline} domain pool, with
    the hardening checks as the crash oracle ({!Oracle}).

    One campaign = one target binary (or parser) x one backend x one
    budget.  The loop is AFL in miniature:

    + run the seed inputs;
    + inputs that reach new coverage join the {!Corpus} and enqueue
      their bounded {!Mutate.deterministic_stage};
    + once deterministic candidates drain, parents are drawn from the
      corpus lottery and mutated by {!Mutate.havoc};
    + every abnormal exit is triaged by the oracle and deduplicated
      into a bug keyed by [(oracle code, check site, backend)];
    + surviving bugs get their first crashing input minimized.

    Determinism: mutation generation and result processing are
    sequential in the submitting domain, and batches are composed
    {e before} they are fanned out over [Pipeline.map] (whose result
    order is deterministic), so the report is byte-identical for any
    [--jobs] — the property test/test_fuzz.ml locks in.  Edge coverage
    is the classic AFL hash over consecutive {e check sites}
    ([hash(prev, cur)]), computed by wrapping the VM's [on_check]
    accounting hook around the installed backend check. *)

module Pl = Engine.Pipeline
module Runtime = Redfat_rt.Runtime

type config = {
  budget : int;     (** campaign executions (seeds included) *)
  seed : int;       (** LCG seed: same seed, same report *)
  max_steps : int;  (** per-execution VM step budget (hang oracle) *)
}

let default_config = { budget = 2000; seed = 1; max_steps = 200_000 }

type bug = {
  b_code : string;          (** oracle code, e.g. [detect.oob-upper] *)
  b_site : int;             (** dedup site *)
  b_backend : string;
  b_class : string;         (** CWE-annotated class ({!Oracle.bug_class}) *)
  mutable b_count : int;    (** crashes collapsed into this bug *)
  b_first_exec : int;       (** execution index of first discovery (1-based) *)
  b_input : string;         (** first crashing input, rendered *)
  mutable b_min_input : string;  (** minimized, still crashing *)
  b_detail : string;
}

type report = {
  r_target : string;
  r_mode : string;          (** ["exec"] or ["parse"] *)
  r_backend : string;
  r_seed : int;
  r_budget : int;
  r_execs : int;
  r_crashes : int;
  r_cov_edges : int;
  r_cov_sites : int;
  r_corpus : int;
  r_min_execs : int;        (** extra executions spent minimizing *)
  r_bugs : bug list;        (** discovery order *)
}

type exec_result = {
  x_edges : int list;              (** distinct AFL edge hashes, sorted *)
  x_sites : int list;              (** distinct check sites, sorted *)
  x_crash : Oracle.crash option;
  x_cycles : int;
}

let sorted_keys h = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) h [])

(* --- one execution of a hardened binary ----------------------------- *)

(** Run [inputs] through the hardened binary with the backend the
    binary itself records, collecting edge/site coverage and the
    oracle's verdict.  Pure per call (fresh VM and runtime), so
    executions fan out over domains safely. *)
let execute ?(max_steps = default_config.max_steps)
    (binary : Binfmt.Relf.t) (inputs : int list) : exec_result =
  let cpu = Redfat.prepare ~max_steps binary in
  cpu.inputs <- inputs;
  List.iter
    (fun (a, t) -> Hashtbl.replace cpu.trap_table a t)
    (Redfat.Rewrite.traps_of_binary binary);
  let options =
    { Runtime.default_options with backend = Redfat.backend_of_binary binary }
  in
  let rt = Runtime.create ~options cpu.mem in
  let vmrt = Runtime.install rt cpu in
  let edges = Hashtbl.create 64 and sites = Hashtbl.create 64 in
  let prev = ref 0 in
  (match cpu.on_check with
  | None -> ()
  | Some inner ->
    cpu.on_check <-
      Some
        (fun c (ck : X64.Isa.check) ->
          let s = ck.X64.Isa.ck_site in
          Hashtbl.replace sites s ();
          Hashtbl.replace edges (((!prev lsr 1) lxor s) land (E9afl.map_size - 1)) ();
          prev := s;
          inner c ck));
  let crash =
    match Vm.Cpu.run cpu vmrt ~entry:binary.entry with
    | (_ : int) -> None
    | exception Runtime.Memory_error e -> Some (Oracle.of_error e)
    | exception Vm.Cpu.Timeout n ->
      (* site 0: a hang has no single faulting site, and rip at the
         moment the budget runs out would shatter dedup *)
      Some
        { Oracle.c_code = "run.timeout"; c_site = 0;
          c_detail = Printf.sprintf "no exit after %d steps" n }
    | exception Vm.Mem.Segfault a ->
      Some
        { Oracle.c_code = "run.fault"; c_site = cpu.rip;
          c_detail = Printf.sprintf "segfault at %#x" a }
    | exception Vm.Cpu.Div_by_zero a ->
      Some
        { Oracle.c_code = "run.fault"; c_site = a;
          c_detail = "division by zero" }
    | exception Vm.Cpu.Invalid_opcode a ->
      Some
        { Oracle.c_code = "run.fault"; c_site = a;
          c_detail = "invalid opcode" }
    | exception Runtime.Bad_free p ->
      Some
        { Oracle.c_code = "detect.bad-free"; c_site = cpu.rip;
          c_detail = Printf.sprintf "allocator abort: invalid free of %#x" p }
    | exception Lowfat.Alloc.Double_free p ->
      Some
        { Oracle.c_code = "detect.bad-free"; c_site = cpu.rip;
          c_detail = Printf.sprintf "allocator abort: double free of %#x" p }
    | exception Lowfat.Alloc.Invalid_free p ->
      Some
        { Oracle.c_code = "detect.bad-free"; c_site = cpu.rip;
          c_detail = Printf.sprintf "allocator abort: invalid free of %#x" p }
  in
  {
    x_edges = sorted_keys edges;
    x_sites = sorted_keys sites;
    x_crash = crash;
    x_cycles = cpu.cycles;
  }

(* --- the generic campaign loop -------------------------------------- *)

(** Batch size for one pool fan-out.  A constant (never derived from
    [--jobs]): batch composition is part of the deterministic input
    stream, worker count only changes who executes it. *)
let batch_size = 16

let render_inputs (l : int list) = String.concat "," (List.map string_of_int l)

let render_bytes (s : string) =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      if c >= ' ' && c <= '~' && c <> '\\' && c <> '"' then Buffer.add_char b c
      else Buffer.add_string b (Printf.sprintf "\\x%02x" (Char.code c)))
    s;
  let s = Buffer.contents b in
  if String.length s <= 64 then s else String.sub s 0 61 ^ "..."

(* The loop shared by exec and parser campaigns, parametric in the
   input type.  [run_one] executes one input; [det]/[havoc] are the
   mutation stages; [render] prints an input into the report. *)
let campaign_loop (eng : Pl.t) (config : config) ~target ~mode ~backend
    ~(seeds : 'a list) ~(run_one : 'a -> exec_result)
    ~(det : 'a -> 'a list) ~(havoc : Mutate.Rng.t -> 'a -> 'a)
    ~(empty : 'a) ~(render : 'a -> string)
    ~(minimize : (('a -> bool) -> 'a -> 'a) option) : report =
  let obs = Pl.obs eng in
  let rng = Mutate.Rng.create config.seed in
  let corpus = Corpus.create () in
  let pending = Queue.create () in
  let bugs = ref [] (* newest first *) and raw = Hashtbl.create 16 in
  let execs = ref 0 and crashes = ref 0 in
  let record (c : Oracle.crash) input =
    incr crashes;
    match
      List.find_opt
        (fun b -> b.b_code = c.c_code && b.b_site = c.c_site)
        !bugs
    with
    | Some b -> b.b_count <- b.b_count + 1
    | None ->
      Hashtbl.replace raw (c.c_code, c.c_site) input;
      bugs :=
        {
          b_code = c.c_code;
          b_site = c.c_site;
          b_backend = backend;
          b_class = Oracle.bug_class c.c_code;
          b_count = 1;
          b_first_exec = !execs;
          b_input = render input;
          b_min_input = render input;
          b_detail = c.c_detail;
        }
        :: !bugs
  in
  let process (input, res) =
    incr execs;
    Obs.observe obs "fuzz.exec_cycles" res.x_cycles;
    if Corpus.add corpus ~input ~edges:res.x_edges ~sites:res.x_sites then
      List.iter (fun m -> Queue.add m pending) (det input);
    match res.x_crash with None -> () | Some c -> record c input
  in
  let run_batch batch =
    List.iter process (Pl.map eng (fun i -> (i, run_one i)) batch)
  in
  (* seeds first (truncated to the budget), then the mutation loop *)
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  run_batch (take config.budget seeds);
  while !execs < config.budget do
    let want = min batch_size (config.budget - !execs) in
    let batch =
      List.init want (fun _ ->
          if not (Queue.is_empty pending) then Queue.pop pending
          else
            match Corpus.schedule corpus rng with
            | Some parent -> havoc rng parent
            | None -> havoc rng empty)
    in
    run_batch batch
  done;
  (* minimization: sequential, oldest bug first, bounded per bug *)
  let min_execs = ref 0 in
  (match minimize with
  | None -> ()
  | Some minimize ->
    List.iter
      (fun b ->
        match Hashtbl.find_opt raw (b.b_code, b.b_site) with
        | None -> ()
        | Some input ->
          let still cand =
            incr min_execs;
            match (run_one cand).x_crash with
            | Some c -> c.c_code = b.b_code && c.c_site = b.b_site
            | None -> false
          in
          b.b_min_input <- render (minimize still input))
      (List.rev !bugs));
  let r_bugs = List.rev !bugs in
  Obs.add obs ~n:!execs "fuzz.execs";
  Obs.add obs ~n:!crashes "fuzz.crashes";
  Obs.add obs ~n:(Corpus.n_edges corpus) "fuzz.cov_edges";
  Obs.add obs ~n:(Corpus.n_sites corpus) "fuzz.cov_sites";
  Obs.add obs ~n:(List.length r_bugs) "fuzz.unique_bugs";
  Obs.add obs ~n:(Corpus.size corpus) "fuzz.corpus_entries";
  Obs.add obs ~n:!min_execs "fuzz.min_execs";
  {
    r_target = target;
    r_mode = mode;
    r_backend = backend;
    r_seed = config.seed;
    r_budget = config.budget;
    r_execs = !execs;
    r_crashes = !crashes;
    r_cov_edges = Corpus.n_edges corpus;
    r_cov_sites = Corpus.n_sites corpus;
    r_corpus = Corpus.size corpus;
    r_min_execs = !min_execs;
    r_bugs;
  }

(* --- minimizers ------------------------------------------------------ *)

let minimize_budget = 256

(** Greedy ddmin-lite for int vectors: drop elements to a fixpoint,
    then shrink surviving values toward 0 — always re-checking that
    the (code, site) pair still reproduces. *)
let minimize_inputs (still : int list -> bool) (input : int list) : int list =
  let tries = ref 0 in
  let still cand = !tries < minimize_budget && (incr tries; still cand) in
  let cur = ref input in
  let changed = ref true in
  while !changed do
    changed := false;
    let n = List.length !cur in
    for i = n - 1 downto 0 do
      let cand = List.filteri (fun j _ -> j <> i) !cur in
      if List.length !cur > List.length cand && still cand then begin
        cur := cand;
        changed := true
      end
    done
  done;
  let shrink v = if v > 0 then v / 2 else if v < 0 then v / 2 else v in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iteri
      (fun i v ->
        let v' = shrink v in
        if v' <> v then begin
          let cand = List.mapi (fun j x -> if j = i then v' else x) !cur in
          if still cand then begin
            cur := cand;
            changed := true
          end
        end)
      !cur
  done;
  !cur

(** Byte-string minimizer: cut chunks (halves, quarters, single bytes
    from the tail) while the typed rejection reproduces. *)
let minimize_bytes (still : string -> bool) (input : string) : string =
  let tries = ref 0 in
  let still cand = !tries < minimize_budget && (incr tries; still cand) in
  let cur = ref input in
  let changed = ref true in
  while !changed do
    changed := false;
    let n = String.length !cur in
    let cuts =
      [ n / 2; (3 * n) / 4; n - 1 ]
      |> List.filter (fun k -> k >= 0 && k < n)
      |> List.sort_uniq compare
    in
    List.iter
      (fun k ->
        (* !cur may have shrunk since the cut list was computed *)
        if k < String.length !cur then begin
          let cand = String.sub !cur 0 k in
          if still cand then begin
            cur := cand;
            changed := true
          end
        end)
      cuts
  done;
  !cur

(* --- exec campaigns -------------------------------------------------- *)

(** Fuzz a hardened binary: inputs are VM input scripts, the oracle is
    the backend recorded in the binary itself. *)
let run_exec (eng : Pl.t) ?(config = default_config) ~target
    ?(seeds = [ []; [ 0 ] ]) (hard : Binfmt.Relf.t) : report =
  let backend =
    Backend.Check_backend.name (Redfat.backend_of_binary hard)
  in
  campaign_loop eng config ~target ~mode:"exec" ~backend ~seeds
    ~run_one:(execute ~max_steps:config.max_steps hard)
    ~det:Mutate.deterministic_stage ~havoc:Mutate.havoc ~empty:[]
    ~render:render_inputs ~minimize:(Some minimize_inputs)

(* --- parser campaigns ------------------------------------------------ *)

type parser_target = Relf_parser | Minic_parser

let parser_name = function Relf_parser -> "relf" | Minic_parser -> "minic"

(* One parse attempt as an exec_result: "coverage" is the outcome
   signature (which typed rejection, or a success shape), so the
   corpus keeps one representative input per distinct outcome. *)
let parse_once (which : parser_target) (bytes : string) : exec_result =
  let crash =
    match which with
    | Relf_parser -> (
      match Binfmt.Relf.parse bytes with
      | bin -> (
        (* mirror Pipeline.load_relf's structural gate *)
        match Binfmt.Relf.find_section bin ".text" with
        | Some s when String.length s.bytes > 0 -> None
        | _ ->
          Some
            { Oracle.c_code = "parse.nocode"; c_site = 0;
              c_detail = "no (or empty) .text section" })
      | exception Binfmt.Relf.Parse_error msg ->
        let f = Engine.Fault.of_exn (Binfmt.Relf.Parse_error msg) in
        Some
          { Oracle.c_code = Engine.Fault.code f; c_site = 0; c_detail = msg }
      | exception e ->
        (* anything but Parse_error is a parser bug, not a rejection *)
        Some
          { Oracle.c_code = "run.fault"; c_site = 0;
            c_detail = "parser crash: " ^ Printexc.to_string e })
    | Minic_parser -> (
      match Minic.Parser.parse_program bytes with
      | (_ : Minic.Ast.program) -> None
      | exception Minic.Parser.Parse_error (msg, pos) ->
        Some
          { Oracle.c_code = "parse.source"; c_site = pos.line;
            c_detail = Printf.sprintf "%d:%d: parse error: %s" pos.line pos.col msg }
      | exception Minic.Lexer.Lex_error (msg, pos) ->
        Some
          { Oracle.c_code = "parse.source"; c_site = pos.line;
            c_detail = Printf.sprintf "%d:%d: lex error: %s" pos.line pos.col msg }
      | exception e ->
        Some
          { Oracle.c_code = "run.fault"; c_site = 0;
            c_detail = "parser crash: " ^ Printexc.to_string e })
  in
  let signature =
    match crash with
    | Some c -> Hashtbl.hash ("outcome", c.c_code, c.c_site)
    | None -> Hashtbl.hash ("ok", String.length bytes / 8)
  in
  { x_edges = [ signature ]; x_sites = []; x_crash = crash; x_cycles = 0 }

(** Fuzz a parser: inputs are raw bytes, the oracle is the typed fault
    contract — every malformed input must be rejected with a [parse.*]
    fault; any other exception is a parser bug ([run.fault]). *)
let run_parse (eng : Pl.t) ?(config = default_config)
    ~(which : parser_target) ~(seeds : string list) () : report =
  campaign_loop eng config ~target:(parser_name which) ~mode:"parse"
    ~backend:"none" ~seeds
    ~run_one:(parse_once which)
    ~det:Mutate.deterministic_stage_bytes ~havoc:Mutate.havoc_bytes ~empty:""
    ~render:render_bytes ~minimize:(Some minimize_bytes)

(* --- report rendering ------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let bug_json (b : bug) =
  Printf.sprintf
    "{ \"code\": \"%s\", \"site\": %d, \"backend\": \"%s\", \"class\": \
     \"%s\", \"count\": %d, \"first_exec\": %d, \"input\": \"%s\", \
     \"min_input\": \"%s\", \"detail\": \"%s\" }"
    (json_escape b.b_code) b.b_site (json_escape b.b_backend)
    (json_escape b.b_class) b.b_count b.b_first_exec (json_escape b.b_input)
    (json_escape b.b_min_input) (json_escape b.b_detail)

let to_json (r : report) =
  Printf.sprintf
    "{\n\
    \  \"target\": \"%s\", \"mode\": \"%s\", \"backend\": \"%s\",\n\
    \  \"seed\": %d, \"budget\": %d,\n\
    \  \"counters\": { \"fuzz.execs\": %d, \"fuzz.crashes\": %d, \
     \"fuzz.cov_edges\": %d, \"fuzz.cov_sites\": %d, \
     \"fuzz.corpus_entries\": %d, \"fuzz.min_execs\": %d, \
     \"fuzz.unique_bugs\": %d },\n\
    \  \"bugs\": [%s]\n\
     }"
    (json_escape r.r_target) (json_escape r.r_mode) (json_escape r.r_backend)
    r.r_seed r.r_budget r.r_execs r.r_crashes r.r_cov_edges r.r_cov_sites
    r.r_corpus r.r_min_execs
    (List.length r.r_bugs)
    (String.concat ",\n    " (List.map bug_json r.r_bugs))

(** Several campaigns as one [--out] document (the `redfat fuzz`
    schema documented in the MANUAL). *)
let reports_json (rs : report list) =
  let total f = List.fold_left (fun acc r -> acc + f r) 0 rs in
  Printf.sprintf
    "{\n\
     \"experiment\": \"fuzz\",\n\
     \"counters\": { \"fuzz.execs\": %d, \"fuzz.crashes\": %d, \
     \"fuzz.unique_bugs\": %d },\n\
     \"campaigns\": [\n%s\n]\n\
     }\n"
    (total (fun r -> r.r_execs))
    (total (fun r -> r.r_crashes))
    (total (fun r -> List.length r.r_bugs))
    (String.concat ",\n" (List.map to_json rs))

(** The per-campaign counters, in {!Engine.Report.add_target} shape. *)
let counters (r : report) =
  [
    ("fuzz.execs", r.r_execs);
    ("fuzz.crashes", r.r_crashes);
    ("fuzz.cov_edges", r.r_cov_edges);
    ("fuzz.cov_sites", r.r_cov_sites);
    ("fuzz.corpus_entries", r.r_corpus);
    ("fuzz.min_execs", r.r_min_execs);
    ("fuzz.unique_bugs", List.length r.r_bugs);
  ]

(** One human line per bug (CLI and bench matrix output). *)
let bug_summary (b : bug) =
  Printf.sprintf "%s at site %#x [%s] x%d: %s (min input: %s)" b.b_code
    b.b_site b.b_backend b.b_count b.b_class b.b_min_input
