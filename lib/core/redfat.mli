(** RedFat: the public API of the binary-hardening pipeline.

    {[
      let hard = Redfat.harden binary in                    (* one-phase *)
      let hard = Redfat.profile_and_harden ~test_suite binary in (* two-phase *)
      let hrun = Redfat.run_hardened hard.binary ~inputs in
      match hrun.verdict with
      | Detected e -> (* attack stopped *)
      | Finished _ -> ...
    ]}

    Every run returns deterministic cycle counts from the VM cost
    model, so overheads are [cycles_hardened / cycles_baseline]. *)

module Rewrite = Rewriter.Rewrite
module Shard = Rewriter.Shard
module Runtime = Redfat_rt.Runtime
module Allowlist = Profile.Allowlist
module Verify = Dataflow.Verify

type run_result = {
  exit_code : int;
  outputs : int list;
  cycles : int;
  steps : int;
  mem_reads : int;
  mem_writes : int;
}

(** How a run ended. *)
type verdict =
  | Finished of int                   (** exit code *)
  | Detected of Runtime.access_error  (** the hardening aborted it *)
  | Fault of string                   (** segfault / trap / timeout *)

val verdict_to_string : verdict -> string

val prepare : ?max_steps:int -> ?libs:Binfmt.Relf.t list -> Binfmt.Relf.t ->
  Vm.Cpu.t
(** Load the binary (and any shared objects) into a fresh VM with the
    stack mapped; does not run it. *)

val run_baseline :
  ?inputs:int list ->
  ?max_steps:int ->
  ?libs:Binfmt.Relf.t list ->
  Binfmt.Relf.t ->
  run_result * verdict
(** Run the original binary natively (glibc allocator, no checks). *)

type hardened_run = {
  run : run_result;
  verdict : verdict;
  rt : Runtime.t;  (** allocator/check state: errors, coverage, ... *)
}

val backend_of_binary : Binfmt.Relf.t -> Backend.Check_backend.id
(** The check backend recorded in the binary's [.elimtab] policy line;
    {!Backend.Check_backend.default} for unhardened or pre-backend
    binaries.  Raises {!Backend.Check_backend.Unknown} when the
    recorded name matches no shipped backend (the engine maps this to
    the [run.backend] fault). *)

val run_hardened :
  ?options:Runtime.options ->
  ?profiling:bool ->
  ?random:int ->
  ?acct:Vm.Cpu.acct ->
  ?inputs:int list ->
  ?max_steps:int ->
  ?libs:Binfmt.Relf.t list ->
  Binfmt.Relf.t ->
  hardened_run
(** Run a (hardened) binary with libredfat preloaded.  [random] seeds
    heap randomization; trap tables are recovered from every loaded
    module's [.traptab] section.  [acct] attaches per-site check
    accounting to the VM ({!Vm.Cpu.acct}): cycle and execution-count
    attribution per guarded site, for trace exports.  The runtime
    backend in [options] is overridden by the binary's own recorded
    backend ({!backend_of_binary}) — hardened binaries are
    self-describing. *)

val run_memcheck :
  ?inputs:int list ->
  ?max_steps:int ->
  Binfmt.Relf.t ->
  run_result * verdict * Baselines.Memcheck.t
(** Run the original binary under the simulated Valgrind Memcheck. *)

val harden : ?opts:Rewrite.options -> Binfmt.Relf.t -> Rewrite.t
(** One-phase hardening: every site gets the full check. *)

val profile_run :
  ?max_steps:int -> Binfmt.Relf.t -> int list -> Allowlist.t * int list
(** [profile_run prof_binary inputs]: one profiling-phase run of an
    already profiling-instrumented binary; returns (passing sites,
    (LowFat)-failing sites).  Pure per-run, so a test suite can be run
    sequentially or fanned out across domains and combined with
    [merge_profiles]. *)

val merge_profiles : (Allowlist.t * int list) list -> Allowlist.t
(** Combine per-run profiles: a site makes the allow-list when it
    executed in some run and never failed the (LowFat) component in
    any run. *)

val profile :
  ?max_steps:int -> test_suite:int list list -> Binfmt.Relf.t -> Allowlist.t
(** Profiling phase of Figure 5: run the instrumented binary against
    the test suite; [merge_profiles] of one [profile_run] per suite
    entry. *)

val profile_and_harden :
  ?max_steps:int ->
  test_suite:int list list ->
  ?opts:Rewrite.options ->
  Binfmt.Relf.t ->
  Rewrite.t
(** The full two-phase workflow of Figure 5. *)
