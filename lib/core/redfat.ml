(** RedFat: the public API of the binary-hardening pipeline.

    The lifecycle mirrors the paper's tool exactly:

    {[
      let hard = Redfat.harden binary in                    (* one-phase *)
      let hard = Redfat.profile_and_harden ~train binary in (* two-phase *)
      let hrun = Redfat.run_hardened hard.binary ~inputs in
      match hrun.verdict with
      | Detected e -> (* attack stopped *)
      | Finished _ -> ...
    ]}

    Every run returns deterministic cycle counts from the VM cost
    model, so overheads are computed as [cycles_hardened /
    cycles_baseline]. *)

module Rewrite = Rewriter.Rewrite
module Shard = Rewriter.Shard
module Runtime = Redfat_rt.Runtime
module Allowlist = Profile.Allowlist
module Verify = Dataflow.Verify

type run_result = {
  exit_code : int;
  outputs : int list;
  cycles : int;
  steps : int;
  mem_reads : int;
  mem_writes : int;
}

(** How a run ended. *)
type verdict =
  | Finished of int                       (** exit code *)
  | Detected of Runtime.access_error      (** the hardening aborted it *)
  | Fault of string                       (** segfault / trap / timeout *)

let verdict_to_string = function
  | Finished c -> Printf.sprintf "finished (exit %d)" c
  | Detected e ->
    Printf.sprintf "DETECTED %s at site %#x (addr %#x)"
      (Runtime.kind_name e.kind) e.site e.addr
  | Fault m -> Printf.sprintf "fault: %s" m

(* --- common VM setup ------------------------------------------------ *)

let prepare ?(max_steps = 200_000_000) ?(libs = []) (binary : Binfmt.Relf.t) :
    Vm.Cpu.t =
  let cpu = Vm.Cpu.create ~max_steps () in
  Binfmt.Relf.load_into cpu.mem binary;
  (* shared objects: additional modules mapped into the same process *)
  List.iter (Binfmt.Relf.load_into cpu.mem) libs;
  Vm.Mem.map cpu.mem ~addr:Lowfat.Layout.stack_lo ~len:Lowfat.Layout.stack_size;
  cpu.regs.(X64.Isa.rsp) <- Lowfat.Layout.stack_top - 64;
  cpu

let collect (cpu : Vm.Cpu.t) exit_code : run_result =
  {
    exit_code;
    outputs = Vm.Cpu.outputs cpu;
    cycles = cpu.cycles;
    steps = cpu.steps;
    mem_reads = cpu.mem_reads;
    mem_writes = cpu.mem_writes;
  }

let exec (cpu : Vm.Cpu.t) rt ~entry : run_result * verdict =
  match Vm.Cpu.run cpu rt ~entry with
  | code -> (collect cpu code, Finished code)
  | exception Runtime.Memory_error e -> (collect cpu 134, Detected e)
  | exception Vm.Mem.Segfault a ->
    (collect cpu 139, Fault (Printf.sprintf "segfault at %#x" a))
  | exception Vm.Cpu.Div_by_zero a ->
    (collect cpu 136, Fault (Printf.sprintf "division by zero at %#x" a))
  | exception Vm.Cpu.Invalid_opcode a ->
    (collect cpu 132, Fault (Printf.sprintf "invalid opcode at %#x" a))
  | exception Vm.Cpu.Timeout n ->
    (collect cpu 124, Fault (Printf.sprintf "timeout after %d steps" n))
  | exception Runtime.Bad_free p ->
    (collect cpu 134, Fault (Printf.sprintf "invalid free of %#x" p))
  | exception Lowfat.Alloc.Double_free p ->
    (collect cpu 134, Fault (Printf.sprintf "double free of %#x" p))
  | exception Lowfat.Alloc.Invalid_free p ->
    (collect cpu 134, Fault (Printf.sprintf "invalid free of %#x" p))

(* --- the three execution environments ------------------------------- *)

(** Run the original binary natively (glibc allocator, no checks). *)
let run_baseline ?(inputs = []) ?max_steps ?libs (binary : Binfmt.Relf.t) :
    run_result * verdict =
  let cpu = prepare ?max_steps ?libs binary in
  cpu.inputs <- inputs;
  let alloc = Baselines.Sysalloc.create cpu.mem in
  exec cpu (Baselines.Sysalloc.vm_runtime alloc) ~entry:binary.entry

type hardened_run = {
  run : run_result;
  verdict : verdict;
  rt : Runtime.t;  (** allocator/check state: errors, coverage, ... *)
}

(** The check backend recorded in a hardened binary's [.elimtab]
    policy line.  Hardened binaries are self-describing: the runtime
    must speak the same backend as the instrumentation, so
    {!run_hardened} adopts this automatically.  Unhardened (or
    pre-backend) binaries report {!Backend.Check_backend.default};
    a recorded name that matches no shipped backend raises
    {!Backend.Check_backend.Unknown}. *)
let backend_of_binary (binary : Binfmt.Relf.t) : Backend.Check_backend.id =
  match Binfmt.Relf.find_section binary Dataflow.Elimtab.section_name with
  | None -> Backend.Check_backend.default
  | Some s -> (
    match Dataflow.Elimtab.parse s.bytes with
    | Error _ -> Backend.Check_backend.default
    | Ok etab -> Backend.Check_backend.of_name_exn etab.backend)

(** Run a hardened binary with libredfat preloaded.  [acct] attaches
    per-site check accounting to the VM (overhead attribution).  The
    runtime's backend is adopted from the binary's own [.elimtab]
    record (see {!backend_of_binary}), overriding [options.backend]:
    lock-and-key instrumentation needs the tagging allocator, and the
    spatial backends need the untagged one. *)
let run_hardened ?(options = Runtime.default_options) ?(profiling = false)
    ?random ?acct ?(inputs = []) ?max_steps ?(libs = [])
    (binary : Binfmt.Relf.t) : hardened_run =
  let options = { options with Runtime.backend = backend_of_binary binary } in
  let cpu = prepare ?max_steps ~libs binary in
  cpu.acct <- acct;
  cpu.inputs <- inputs;
  List.iter
    (fun b ->
      List.iter
        (fun (a, t) -> Hashtbl.replace cpu.trap_table a t)
        (Rewrite.traps_of_binary b))
    (binary :: libs);
  let rt = Runtime.create ~options ~profiling ?random cpu.mem in
  let vmrt = Runtime.install rt cpu in
  let run, verdict = exec cpu vmrt ~entry:binary.entry in
  { run; verdict; rt }

(** Run the original binary under the simulated Valgrind Memcheck. *)
let run_memcheck ?(inputs = []) ?max_steps (binary : Binfmt.Relf.t) :
    run_result * verdict * Baselines.Memcheck.t =
  let cpu = Vm.Cpu.create ?max_steps () in
  cpu.inputs <- inputs;
  let mc = Baselines.Memcheck.create cpu.mem in
  let rt = Baselines.Memcheck.install mc cpu binary in
  let run, verdict = exec cpu rt ~entry:binary.entry in
  (run, verdict, mc)

(* --- hardening ------------------------------------------------------ *)

(** One-phase hardening (no profile): every site gets the full check. *)
let harden ?(opts = Rewrite.optimized) (binary : Binfmt.Relf.t) : Rewrite.t =
  Rewrite.rewrite opts binary

(** One profiling-phase run: execute the (already profiling-
    instrumented) binary on one input script; return the sites that
    passed and the sites that failed the (LowFat) component.  Pure
    per-run — [merge_profiles] combines any number of them, so a suite
    can be run sequentially or fanned out across domains. *)
let profile_run ?max_steps (prof_binary : Binfmt.Relf.t) (inputs : int list) :
    Allowlist.t * int list =
  let hr =
    run_hardened ?max_steps
      ~options:{ Runtime.default_options with mode = Runtime.Log }
      ~profiling:true ~inputs prof_binary
  in
  (Runtime.allowlist hr.rt, Runtime.lowfat_failing_sites hr.rt)

(** Combine per-run profiles: a site makes the allow-list when it
    executed in some run and never failed the (LowFat) component in
    any run. *)
let merge_profiles (runs : (Allowlist.t * int list) list) : Allowlist.t =
  let failed = Hashtbl.create 64 in
  List.iter
    (fun (_, fs) -> List.iter (fun s -> Hashtbl.replace failed s ()) fs)
    runs;
  List.concat_map fst runs
  |> List.sort_uniq compare
  |> List.filter (fun s -> not (Hashtbl.mem failed s))

(** Profiling phase of Figure 5: instrument with the profiling variant,
    run the test suite, extract the allow-list. *)
let profile ?max_steps ~(test_suite : int list list) (binary : Binfmt.Relf.t)
    : Allowlist.t =
  let prof = Rewrite.rewrite Rewrite.profiling_build binary in
  merge_profiles (List.map (profile_run ?max_steps prof.binary) test_suite)

(** The full two-phase workflow of Figure 5. *)
let profile_and_harden ?max_steps ~(test_suite : int list list)
    ?(opts = Rewrite.optimized) (binary : Binfmt.Relf.t) : Rewrite.t =
  let allowlist = profile ?max_steps ~test_suite binary in
  Rewrite.rewrite { opts with allowlist = Some allowlist } binary
