(** The x64l instruction set: an x86-64-like, variable-length ISA.

    x64l reproduces the three properties of x86-64 that the RedFat /
    E9Patch rewriting problem depends on: variable instruction length
    (1-14 bytes, with a 5-byte [jmp rel32]), the 5-tuple memory operand
    [seg:disp(base,idx,scale)], and the absence of any type or symbol
    information in encoded code.  See DESIGN.md for the substitution
    rationale. *)

type reg = int
(** General-purpose register id, [0..15].  Numbering follows x86-64. *)

let rax = 0
let rcx = 1
let rdx = 2
let rbx = 3
let rsp = 4
let rbp = 5
let rsi = 6
let rdi = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12
let r13 = 13
let r14 = 14
let r15 = 15

let num_regs = 16

let reg_name (r : reg) : string =
  match r with
  | 0 -> "rax" | 1 -> "rcx" | 2 -> "rdx" | 3 -> "rbx"
  | 4 -> "rsp" | 5 -> "rbp" | 6 -> "rsi" | 7 -> "rdi"
  | 8 -> "r8" | 9 -> "r9" | 10 -> "r10" | 11 -> "r11"
  | 12 -> "r12" | 13 -> "r13" | 14 -> "r14" | 15 -> "r15"
  | _ -> invalid_arg "Isa.reg_name"

(** Memory access width in bytes. *)
type width = W1 | W2 | W4 | W8

let width_bytes = function W1 -> 1 | W2 -> 2 | W4 -> 4 | W8 -> 8
let width_of_bytes = function
  | 1 -> W1 | 2 -> W2 | 4 -> W4 | 8 -> W8
  | n -> invalid_arg (Printf.sprintf "Isa.width_of_bytes %d" n)

(** A memory operand: the 5-tuple [seg:disp(base,idx,scale)] of paper
    section 4.1.  Semantically it denotes the address
    [seg + disp + base + idx * scale] with omitted components zero
    (scale defaults to 1). *)
type mem = {
  seg : int;            (** segment id; 0 = none *)
  disp : int;           (** 32-bit signed displacement *)
  base : reg option;
  idx : reg option;
  scale : int;          (** 1, 2, 4 or 8 *)
}

let mem ?(seg = 0) ?(disp = 0) ?base ?idx ?(scale = 1) () =
  (match scale with
   | 1 | 2 | 4 | 8 -> ()
   | _ -> invalid_arg "Isa.mem: scale must be 1, 2, 4 or 8");
  { seg; disp; base; idx; scale }

type alu = Add | Sub | And | Or | Xor

type shift = Shl | Shr | Sar

(** Condition codes over the flags set by [Cmp]/[Test]/ALU ops.
    [Lt]..[Ge] are signed; [Ult]..[Uge] unsigned. *)
type cc = Eq | Ne | Lt | Le | Gt | Ge | Ult | Ule | Ugt | Uge

let cc_negate = function
  | Eq -> Ne | Ne -> Eq
  | Lt -> Ge | Ge -> Lt | Le -> Gt | Gt -> Le
  | Ult -> Uge | Uge -> Ult | Ule -> Ugt | Ugt -> Ule

(** Runtime functions reachable via [Callrt] (the simulated PLT: in a
    real binary these are calls into the LD_PRELOAD'ed libredfat.so or
    libc).  Arguments in rdi/rsi, result in rax. *)
type rtfn = Malloc | Free | Input | Print | Exit

(** Check variants, paper Figure 4.  [Full] is the complementary
    (Redzone)+(LowFat) check: the object base is derived from the
    *pointer register* first, falling back to the accessed address.
    [Redzone] derives the base from the accessed address only.
    [Temporal] is the lock-and-key temporal check: the pointer's
    high-bit key must match the slot's lock-table entry. *)
type variant = Full | Redzone | Temporal

(** Payload of the instrumentation pseudo-instruction placed in
    trampolines by the rewriter.  One [Check] may guard several merged
    accesses: it covers the displacement range [lo, hi) relative to
    [seg + base + idx*scale]. *)
type check = {
  ck_variant : variant;
  ck_mem : mem;             (** representative operand (disp ignored) *)
  ck_lo : int;              (** lowest displacement accessed *)
  ck_hi : int;              (** highest displacement + access size *)
  ck_write : bool;          (** true if any guarded access writes *)
  ck_site : int;            (** address of the guarded instruction *)
  ck_nsaves : int;          (** scratch registers to save/restore *)
  ck_save_flags : bool;     (** preserve %eflags around the check *)
}

type instr =
  | Mov_rr of reg * reg                 (* dst <- src *)
  | Mov_ri of reg * int                 (* dst <- imm *)
  | Load of width * reg * mem           (* dst <- [mem], zero-extended *)
  | Store of width * mem * reg          (* [mem] <- src *)
  | Store_i of width * mem * int        (* [mem] <- imm32 *)
  | Lea of reg * mem                    (* dst <- address of mem *)
  | Alu_rr of alu * reg * reg           (* dst <- dst op src; sets flags *)
  | Alu_ri of alu * reg * int           (* dst <- dst op imm32; sets flags *)
  | Mul_rr of reg * reg                 (* dst <- dst * src *)
  | Div_rr of reg * reg                 (* dst <- dst / src, unsigned *)
  | Rem_rr of reg * reg                 (* dst <- dst mod src, unsigned *)
  | Neg of reg
  | Not of reg
  | Shift_ri of shift * reg * int
  | Cmp_rr of reg * reg                 (* sets flags *)
  | Cmp_ri of reg * int                 (* sets flags *)
  | Test_rr of reg * reg                (* sets flags *)
  | Setcc of cc * reg                   (* dst <- flags[cc] ? 1 : 0 *)
  | Jmp of int                          (* absolute target, rel32-encoded *)
  | Jcc of cc * int
  | Call of int
  | Call_ind of reg                     (* call through a register *)
  | Jmp_ind of reg                      (* jump through a register *)
  | Ret
  | Push of reg
  | Pop of reg
  | Callrt of rtfn
  | Nop of int                          (* n >= 1 padding bytes *)
  | Hlt
  | Trap                                (* 1-byte; VM consults trap table *)
  | Check of check                      (* pseudo; trampolines only *)
  | Probe of int                        (* generic instrumentation point
                                           (E9Tool-style payload id) *)

(* ------------------------------------------------------------------ *)
(* Static properties used by the rewriter's analyses.                  *)

(** The explicit memory operand of an instruction, with access width and
    direction, if any.  [Push]/[Pop]/[Call]/[Ret] access stack memory
    implicitly but carry no operand; like RedFat, the rewriter only
    instruments explicit operands. *)
let mem_operand = function
  | Load (w, _, m) -> Some (m, w, false)
  | Store (w, m, _) -> Some (m, w, true)
  | Store_i (w, m, _) -> Some (m, w, true)
  | _ -> None

let mem_uses (m : mem) : reg list =
  let add acc = function Some r -> r :: acc | None -> acc in
  add (add [] m.base) m.idx

(** Registers read by the instruction (excluding implicit rsp of
    push/pop, which is handled specially where it matters). *)
let uses = function
  | Mov_rr (_, s) -> [ s ]
  | Mov_ri _ -> []
  | Load (_, _, m) -> mem_uses m
  | Store (_, m, s) -> s :: mem_uses m
  | Store_i (_, m, _) -> mem_uses m
  | Lea (_, m) -> mem_uses m
  | Alu_rr (_, d, s) -> [ d; s ]
  | Alu_ri (_, d, _) -> [ d ]
  | Mul_rr (d, s) | Div_rr (d, s) | Rem_rr (d, s) -> [ d; s ]
  | Neg r | Not r -> [ r ]
  | Shift_ri (_, r, _) -> [ r ]
  | Cmp_rr (a, b) | Test_rr (a, b) -> [ a; b ]
  | Cmp_ri (a, _) -> [ a ]
  | Setcc _ -> []
  | Jmp _ | Jcc _ | Call _ | Ret -> []
  | Call_ind r | Jmp_ind r -> [ r ]
  | Push r -> [ r; rsp ]
  | Pop _ -> [ rsp ]
  | Callrt _ -> [ rdi; rsi ]
  | Nop _ | Hlt | Trap -> []
  | Probe _ -> []
  | Check c -> mem_uses c.ck_mem

(** Registers written by the instruction. *)
let defs = function
  | Mov_rr (d, _) | Mov_ri (d, _) | Load (_, d, _) | Lea (d, _) -> [ d ]
  | Store _ | Store_i _ -> []
  | Alu_rr (_, d, _) | Alu_ri (_, d, _) -> [ d ]
  | Mul_rr (d, _) | Div_rr (d, _) | Rem_rr (d, _) -> [ d ]
  | Neg d | Not d -> [ d ]
  | Shift_ri (_, d, _) -> [ d ]
  | Cmp_rr _ | Cmp_ri _ | Test_rr _ -> []
  | Setcc (_, d) -> [ d ]
  | Jmp _ | Jcc _ | Call _ | Ret -> []
  | Call_ind _ | Jmp_ind _ -> []
  | Push _ -> [ rsp ]
  | Pop d -> [ d; rsp ]
  | Callrt _ -> [ rax ]
  | Nop _ | Hlt | Trap -> []
  | Probe _ -> []
  | Check _ -> []

let writes_flags = function
  | Alu_rr _ | Alu_ri _ | Mul_rr _ | Div_rr _ | Rem_rr _ | Neg _
  | Shift_ri _ | Cmp_rr _ | Cmp_ri _ | Test_rr _ -> true
  | _ -> false

let reads_flags = function Jcc _ | Setcc _ -> true | _ -> false

(** Control-flow classification used by CFG recovery. *)
type flow =
  | Fall                       (* falls through to the next instruction *)
  | Branch of int              (* conditional: target + fall-through *)
  | Goto of int                (* unconditional direct jump *)
  | To_call of int             (* direct call: target + return fall-through *)
  | Dyn_call                   (* indirect call: unknown target, returns *)
  | Dyn_goto                   (* indirect jump: unknown target *)
  | Stop                       (* ret / hlt: no static successor *)

let flow_of = function
  | Jmp t -> Goto t
  | Jcc (_, t) -> Branch t
  | Call t -> To_call t
  | Call_ind _ -> Dyn_call
  | Jmp_ind _ -> Dyn_goto
  | Ret | Hlt -> Stop
  | _ -> Fall
