(** Pretty-printing (AT&T-flavoured) and linear-sweep disassembly. *)

let mem_to_string (m : Isa.mem) =
  let b = Buffer.create 16 in
  if m.seg <> 0 then Buffer.add_string b (Printf.sprintf "seg%d:" m.seg);
  if m.disp <> 0 then Buffer.add_string b (Printf.sprintf "%#x" m.disp);
  (match (m.base, m.idx) with
   | None, None -> if m.disp = 0 then Buffer.add_string b "0"
   | base, idx ->
     Buffer.add_char b '(';
     (match base with
      | Some r -> Buffer.add_string b ("%" ^ Isa.reg_name r)
      | None -> ());
     (match idx with
      | Some r ->
        Buffer.add_string b (",%" ^ Isa.reg_name r);
        Buffer.add_string b (Printf.sprintf ",%d" m.scale)
      | None -> ());
     Buffer.add_char b ')');
  Buffer.contents b

let alu_name = function
  | Isa.Add -> "add" | Isa.Sub -> "sub" | Isa.And -> "and"
  | Isa.Or -> "or" | Isa.Xor -> "xor"

let shift_name = function Isa.Shl -> "shl" | Isa.Shr -> "shr" | Isa.Sar -> "sar"

let cc_name = function
  | Isa.Eq -> "e" | Isa.Ne -> "ne" | Isa.Lt -> "l" | Isa.Le -> "le"
  | Isa.Gt -> "g" | Isa.Ge -> "ge" | Isa.Ult -> "b" | Isa.Ule -> "be"
  | Isa.Ugt -> "a" | Isa.Uge -> "ae"

let rtfn_name = function
  | Isa.Malloc -> "malloc" | Isa.Free -> "free" | Isa.Input -> "input"
  | Isa.Print -> "print" | Isa.Exit -> "exit"

let width_suffix = function
  | Isa.W1 -> "b" | Isa.W2 -> "w" | Isa.W4 -> "l" | Isa.W8 -> "q"

let r = Isa.reg_name

let to_string (i : Isa.instr) : string =
  match i with
  | Mov_rr (d, s) -> Printf.sprintf "mov %%%s, %%%s" (r s) (r d)
  | Mov_ri (d, v) -> Printf.sprintf "mov $%#x, %%%s" v (r d)
  | Load (w, d, m) ->
    Printf.sprintf "mov%s %s, %%%s" (width_suffix w) (mem_to_string m) (r d)
  | Store (w, m, s) ->
    Printf.sprintf "mov%s %%%s, %s" (width_suffix w) (r s) (mem_to_string m)
  | Store_i (w, m, v) ->
    Printf.sprintf "mov%s $%#x, %s" (width_suffix w) v (mem_to_string m)
  | Lea (d, m) -> Printf.sprintf "lea %s, %%%s" (mem_to_string m) (r d)
  | Alu_rr (op, d, s) ->
    Printf.sprintf "%s %%%s, %%%s" (alu_name op) (r s) (r d)
  | Alu_ri (op, d, v) -> Printf.sprintf "%s $%#x, %%%s" (alu_name op) v (r d)
  | Mul_rr (d, s) -> Printf.sprintf "imul %%%s, %%%s" (r s) (r d)
  | Div_rr (d, s) -> Printf.sprintf "div %%%s, %%%s" (r s) (r d)
  | Rem_rr (d, s) -> Printf.sprintf "rem %%%s, %%%s" (r s) (r d)
  | Neg x -> Printf.sprintf "neg %%%s" (r x)
  | Not x -> Printf.sprintf "not %%%s" (r x)
  | Shift_ri (s, x, n) -> Printf.sprintf "%s $%d, %%%s" (shift_name s) n (r x)
  | Cmp_rr (a, b) -> Printf.sprintf "cmp %%%s, %%%s" (r b) (r a)
  | Cmp_ri (a, v) -> Printf.sprintf "cmp $%#x, %%%s" v (r a)
  | Test_rr (a, b) -> Printf.sprintf "test %%%s, %%%s" (r b) (r a)
  | Setcc (cc, x) -> Printf.sprintf "set%s %%%s" (cc_name cc) (r x)
  | Jmp t -> Printf.sprintf "jmpq %#x" t
  | Jcc (cc, t) -> Printf.sprintf "j%s %#x" (cc_name cc) t
  | Call t -> Printf.sprintf "callq %#x" t
  | Call_ind x -> Printf.sprintf "callq *%%%s" (r x)
  | Jmp_ind x -> Printf.sprintf "jmpq *%%%s" (r x)
  | Ret -> "retq"
  | Push x -> Printf.sprintf "push %%%s" (r x)
  | Pop x -> Printf.sprintf "pop %%%s" (r x)
  | Callrt f -> Printf.sprintf "callrt %s" (rtfn_name f)
  | Nop n -> if n = 1 then "nop" else Printf.sprintf "nop%d" n
  | Hlt -> "hlt"
  | Trap -> "trap"
  | Probe id -> Printf.sprintf "probe %d" id
  | Check c ->
    Printf.sprintf "check.%s%s %s lo=%d hi=%d site=%#x"
      (match c.ck_variant with
       | Isa.Full -> "full" | Isa.Redzone -> "rz" | Isa.Temporal -> "tmp")
      (if c.ck_write then ".w" else ".r")
      (mem_to_string c.ck_mem) c.ck_lo c.ck_hi c.ck_site

(** Linear sweep over a code blob starting at virtual address [addr];
    returns [(address, instruction, length)] triples. *)
let sweep ~(addr : int) (code : string) : (int * Isa.instr * int) list =
  let rec go off acc =
    if off >= String.length code then List.rev acc
    else begin
      let a = addr + off in
      let i, len = Decode.decode ~addr:a code off in
      go (off + len) ((a, i, len) :: acc)
    end
  in
  go 0 []

(** Tolerant dump for human consumption: undecodable bytes (stale
    bytes left behind by patch tactics, data in text, ...) print as
    [.byte] lines and the sweep resynchronizes one byte later, like any
    production disassembler. *)
let dump ~addr code =
  let b = Buffer.create 1024 in
  let n = String.length code in
  let rec go off =
    if off < n then begin
      match Decode.decode ~addr:(addr + off) code off with
      | i, len ->
        Buffer.add_string b
          (Printf.sprintf "%8x: %s\n" (addr + off) (to_string i));
        go (off + len)
      | exception Decode.Decode_error _ ->
        Buffer.add_string b
          (Printf.sprintf "%8x: .byte %#04x\n" (addr + off)
             (Char.code code.[off]));
        go (off + 1)
    end
  in
  go 0;
  Buffer.contents b
