(** Binary decoder for x64l; the exact inverse of {!Encode}. *)

exception Decode_error of { addr : int; byte : int }

type cursor = { buf : string; mutable pos : int }

let u8 c =
  if c.pos >= String.length c.buf then
    raise (Decode_error { addr = c.pos; byte = -1 });
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let i8 c =
  let v = u8 c in
  if v > 127 then v - 256 else v

let i32 c =
  let b0 = u8 c and b1 = u8 c and b2 = u8 c and b3 = u8 c in
  let v = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
  if v > 0x7fff_ffff then v - (1 lsl 32) else v

let i64 c =
  let lo = Int64.of_int (i32 c) in
  let hi = Int64.of_int (i32 c) in
  Int64.to_int
    (Int64.logor
       (Int64.logand lo 0xffff_ffffL)
       (Int64.shift_left hi 32))

let alu_of = function
  | 0 -> Isa.Add | 1 -> Isa.Sub | 2 -> Isa.And | 3 -> Isa.Or | _ -> Isa.Xor

let shift_of = function 0 -> Isa.Shl | 1 -> Isa.Shr | _ -> Isa.Sar

let cc_of = function
  | 0 -> Isa.Eq | 1 -> Isa.Ne | 2 -> Isa.Lt | 3 -> Isa.Le | 4 -> Isa.Gt
  | 5 -> Isa.Ge | 6 -> Isa.Ult | 7 -> Isa.Ule | 8 -> Isa.Ugt | _ -> Isa.Uge

let rtfn_of addr = function
  | 0 -> Isa.Malloc | 1 -> Isa.Free | 2 -> Isa.Input | 3 -> Isa.Print
  | 4 -> Isa.Exit
  | b -> raise (Decode_error { addr; byte = b })

let width_of = function 0 -> Isa.W1 | 1 -> Isa.W2 | 2 -> Isa.W4 | _ -> Isa.W8

(* full-byte register fields must name a real register *)
let reg_checked addr b =
  if b < Isa.num_regs then b else raise (Decode_error { addr; byte = b })

let get_mem c : Isa.mem =
  let flags = u8 c in
  let has_base = flags land 1 <> 0 in
  let has_idx = flags land 2 <> 0 in
  let scale = 1 lsl ((flags lsr 2) land 3) in
  let disp_code = (flags lsr 4) land 3 in
  let has_seg = flags land 0x40 <> 0 in
  let base, idx =
    if has_base || has_idx then begin
      let rb = u8 c in
      ( (if has_base then Some (rb lsr 4) else None),
        if has_idx then Some (rb land 0xf) else None )
    end
    else (None, None)
  in
  let seg = if has_seg then u8 c else 0 in
  let disp = match disp_code with 0 -> 0 | 1 -> i8 c | _ -> i32 c in
  { Isa.seg; disp; base; idx; scale }

(** [decode ~addr buf off] decodes one instruction whose first byte is
    [buf.[off]] and whose virtual address is [addr].  Returns the
    instruction and its encoded length. *)
let decode ~(addr : int) (buf : string) (off : int) : Isa.instr * int =
  let c = { buf; pos = off } in
  let op = u8 c in
  let regpair () =
    let b = u8 c in
    (b lsr 4, b land 0xf)
  in
  let rel32 pre_len =
    (* instruction length = 1 + pre_len + 4 *)
    let _ = pre_len in
    let r = i32 c in
    addr + (c.pos - off) + r
  in
  let i : Isa.instr =
    if op >= Encode.op_push && op < Encode.op_push + 16 then
      Push (op - Encode.op_push)
    else if op >= Encode.op_pop && op < Encode.op_pop + 16 then
      Pop (op - Encode.op_pop)
    else if op >= Encode.op_alu_rr && op < Encode.op_alu_rr + 5 then begin
      let d, s = regpair () in
      Alu_rr (alu_of (op - Encode.op_alu_rr), d, s)
    end
    else if op >= Encode.op_alu_ri && op < Encode.op_alu_ri + 5 then begin
      let d = reg_checked addr (u8 c) in
      let v = i32 c in
      Alu_ri (alu_of (op - Encode.op_alu_ri), d, v)
    end
    else if op >= Encode.op_shift_ri && op < Encode.op_shift_ri + 3 then begin
      let r = reg_checked addr (u8 c) in
      let n = u8 c in
      if n > 63 then raise (Decode_error { addr; byte = n });
      Shift_ri (shift_of (op - Encode.op_shift_ri), r, n)
    end
    else
      match op with
      | o when o = Encode.op_mov_rr ->
        let d, s = regpair () in
        Mov_rr (d, s)
      | o when o = Encode.op_mov_ri32 ->
        let d = reg_checked addr (u8 c) in
        Mov_ri (d, i32 c)
      | o when o = Encode.op_mov_ri64 ->
        let d = reg_checked addr (u8 c) in
        Mov_ri (d, i64 c)
      | o when o = Encode.op_load ->
        let w, r = regpair () in
        Load (width_of w, r, get_mem c)
      | o when o = Encode.op_store ->
        let w, r = regpair () in
        let m = get_mem c in
        Store (width_of w, m, r)
      | o when o = Encode.op_store_i ->
        let w, _ = regpair () in
        let m = get_mem c in
        Store_i (width_of w, m, i32 c)
      | o when o = Encode.op_lea ->
        let d = reg_checked addr (u8 c) in
        Lea (d, get_mem c)
      | o when o = Encode.op_mul_rr ->
        let d, s = regpair () in
        Mul_rr (d, s)
      | o when o = Encode.op_div_rr ->
        let d, s = regpair () in
        Div_rr (d, s)
      | o when o = Encode.op_rem_rr ->
        let d, s = regpair () in
        Rem_rr (d, s)
      | o when o = Encode.op_neg -> Neg (reg_checked addr (u8 c))
      | o when o = Encode.op_not -> Not (reg_checked addr (u8 c))
      | o when o = Encode.op_cmp_rr ->
        let a, b = regpair () in
        Cmp_rr (a, b)
      | o when o = Encode.op_cmp_ri ->
        let a = reg_checked addr (u8 c) in
        Cmp_ri (a, i32 c)
      | o when o = Encode.op_test_rr ->
        let a, b = regpair () in
        Test_rr (a, b)
      | o when o = Encode.op_setcc ->
        let cc, r = regpair () in
        Setcc (cc_of cc, r)
      | o when o = Encode.op_jmp -> Jmp (rel32 0)
      | o when o = Encode.op_jcc ->
        let cc = cc_of (u8 c) in
        Jcc (cc, rel32 1)
      | o when o = Encode.op_call -> Call (rel32 0)
      | o when o = Encode.op_call_ind -> Call_ind (reg_checked addr (u8 c))
      | o when o = Encode.op_jmp_ind -> Jmp_ind (reg_checked addr (u8 c))
      | o when o = Encode.op_ret -> Ret
      | o when o = Encode.op_callrt -> Callrt (rtfn_of addr (u8 c))
      | o when o = Encode.op_nop -> Nop 1
      | o when o = Encode.op_hlt -> Hlt
      | o when o = Encode.op_trap -> Trap
      | o when o = Encode.op_probe -> Probe (i32 c)
      | o when o = Encode.op_check ->
        let flags = u8 c in
        let nsaves = u8 c in
        let m = get_mem c in
        let lo = i32 c in
        let hi = i32 c in
        let site = i32 c in
        Check
          { ck_variant =
              (if flags land 1 <> 0 then Isa.Full
               else if flags land 8 <> 0 then Isa.Temporal
               else Isa.Redzone);
            ck_mem = m;
            ck_lo = lo;
            ck_hi = hi;
            ck_write = flags land 2 <> 0;
            ck_site = site;
            ck_nsaves = nsaves;
            ck_save_flags = flags land 4 <> 0 }
      | b -> raise (Decode_error { addr; byte = b })
  in
  (i, c.pos - off)
