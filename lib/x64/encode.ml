(** Binary encoder for x64l.

    The encoding is variable-length by design (see DESIGN.md): the
    rewriter's whole patching problem exists only because a [jmp rel32]
    occupies 5 bytes while the smallest instrumentable instruction
    occupies 4.  Layout per instruction: one opcode byte followed by
    operand bytes; memory operands use a flags byte + packed register
    byte + optional segment byte + 0/1/4 displacement bytes. *)

exception Encode_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Encode_error s)) fmt

let fits_i32 v = v >= -0x8000_0000 && v <= 0x7fff_ffff
let fits_i8 v = v >= -128 && v <= 127

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_i32 b v =
  if not (fits_i32 v) then err "immediate %d does not fit in 32 bits" v;
  put_u8 b v;
  put_u8 b (v asr 8);
  put_u8 b (v asr 16);
  put_u8 b (v asr 24)

let put_i64 b v =
  for k = 0 to 7 do put_u8 b (v asr (8 * k)) done

let alu_code = function
  | Isa.Add -> 0 | Isa.Sub -> 1 | Isa.And -> 2 | Isa.Or -> 3 | Isa.Xor -> 4

let shift_code = function Isa.Shl -> 0 | Isa.Shr -> 1 | Isa.Sar -> 2

let cc_code = function
  | Isa.Eq -> 0 | Isa.Ne -> 1 | Isa.Lt -> 2 | Isa.Le -> 3 | Isa.Gt -> 4
  | Isa.Ge -> 5 | Isa.Ult -> 6 | Isa.Ule -> 7 | Isa.Ugt -> 8 | Isa.Uge -> 9

let rtfn_code = function
  | Isa.Malloc -> 0 | Isa.Free -> 1 | Isa.Input -> 2 | Isa.Print -> 3
  | Isa.Exit -> 4

let width_code = function Isa.W1 -> 0 | Isa.W2 -> 1 | Isa.W4 -> 2 | Isa.W8 -> 3

let scale_log2 = function 1 -> 0 | 2 -> 1 | 4 -> 2 | 8 -> 3
  | s -> err "bad scale %d" s

let put_mem b (m : Isa.mem) =
  let disp_code =
    if m.disp = 0 then 0 else if fits_i8 m.disp then 1 else 2
  in
  let flags =
    (match m.base with Some _ -> 1 | None -> 0)
    lor (match m.idx with Some _ -> 2 | None -> 0)
    lor (scale_log2 m.scale lsl 2)
    lor (disp_code lsl 4)
    lor (if m.seg <> 0 then 0x40 else 0)
  in
  put_u8 b flags;
  (match (m.base, m.idx) with
   | None, None -> ()
   | b', i ->
     let bv = match b' with Some r -> r | None -> 0 in
     let iv = match i with Some r -> r | None -> 0 in
     put_u8 b ((bv lsl 4) lor iv));
  if m.seg <> 0 then put_u8 b m.seg;
  (match disp_code with
   | 0 -> ()
   | 1 -> put_u8 b m.disp
   | _ -> put_i32 b m.disp)

(* Opcode map.  Kept in one place so the decoder mirrors it exactly. *)
let op_mov_rr = 0x01
let op_mov_ri32 = 0x02
let op_mov_ri64 = 0x03
let op_load = 0x04
let op_store = 0x05
let op_store_i = 0x06
let op_lea = 0x07
let op_alu_rr = 0x10 (* .. 0x14 *)
let op_alu_ri = 0x18 (* .. 0x1c *)
let op_mul_rr = 0x20
let op_div_rr = 0x21
let op_rem_rr = 0x22
let op_neg = 0x23
let op_not = 0x24
let op_shift_ri = 0x28 (* .. 0x2a *)
let op_cmp_rr = 0x30
let op_cmp_ri = 0x31
let op_test_rr = 0x32
let op_setcc = 0x38
let op_jmp = 0x40
let op_jcc = 0x41
let op_call = 0x42
let op_ret = 0x43
let op_call_ind = 0x46
let op_jmp_ind = 0x47
let op_callrt = 0x45
let op_push = 0x50 (* .. 0x5f *)
let op_pop = 0x60 (* .. 0x6f *)
let op_nop = 0x90
let op_check = 0xe0
let op_probe = 0xe2
let op_trap = 0xcc
let op_hlt = 0xf4

(** [encode_at b addr i] appends the encoding of [i], assuming the
    instruction starts at virtual address [addr] (needed for the
    rel32 fields of direct control transfers). *)
let encode_at b (addr : int) (i : Isa.instr) : unit =
  let start = Buffer.length b in
  let rel32_slot op target extra_pre =
    (* total length = 1 (opcode) + List.length extra_pre + 4 *)
    put_u8 b op;
    List.iter (put_u8 b) extra_pre;
    let len = 1 + List.length extra_pre + 4 in
    put_i32 b (target - (addr + len))
  in
  (match i with
   | Mov_rr (d, s) -> put_u8 b op_mov_rr; put_u8 b ((d lsl 4) lor s)
   | Mov_ri (d, v) ->
     if fits_i32 v then (put_u8 b op_mov_ri32; put_u8 b d; put_i32 b v)
     else (put_u8 b op_mov_ri64; put_u8 b d; put_i64 b v)
   | Load (w, d, m) ->
     put_u8 b op_load; put_u8 b ((width_code w lsl 4) lor d); put_mem b m
   | Store (w, m, s) ->
     put_u8 b op_store; put_u8 b ((width_code w lsl 4) lor s); put_mem b m
   | Store_i (w, m, v) ->
     put_u8 b op_store_i; put_u8 b (width_code w lsl 4); put_mem b m;
     put_i32 b v
   | Lea (d, m) -> put_u8 b op_lea; put_u8 b d; put_mem b m
   | Alu_rr (op, d, s) ->
     put_u8 b (op_alu_rr + alu_code op); put_u8 b ((d lsl 4) lor s)
   | Alu_ri (op, d, v) ->
     put_u8 b (op_alu_ri + alu_code op); put_u8 b d; put_i32 b v
   | Mul_rr (d, s) -> put_u8 b op_mul_rr; put_u8 b ((d lsl 4) lor s)
   | Div_rr (d, s) -> put_u8 b op_div_rr; put_u8 b ((d lsl 4) lor s)
   | Rem_rr (d, s) -> put_u8 b op_rem_rr; put_u8 b ((d lsl 4) lor s)
   | Neg r -> put_u8 b op_neg; put_u8 b r
   | Not r -> put_u8 b op_not; put_u8 b r
   | Shift_ri (s, r, n) ->
     if n < 0 || n > 63 then err "shift amount %d" n;
     put_u8 b (op_shift_ri + shift_code s); put_u8 b r; put_u8 b n
   | Cmp_rr (a, c) -> put_u8 b op_cmp_rr; put_u8 b ((a lsl 4) lor c)
   | Cmp_ri (a, v) -> put_u8 b op_cmp_ri; put_u8 b a; put_i32 b v
   | Test_rr (a, c) -> put_u8 b op_test_rr; put_u8 b ((a lsl 4) lor c)
   | Setcc (cc, r) -> put_u8 b op_setcc; put_u8 b ((cc_code cc lsl 4) lor r)
   | Jmp t -> rel32_slot op_jmp t []
   | Jcc (cc, t) -> rel32_slot op_jcc t [ cc_code cc ]
   | Call t -> rel32_slot op_call t []
   | Call_ind r -> put_u8 b op_call_ind; put_u8 b r
   | Jmp_ind r -> put_u8 b op_jmp_ind; put_u8 b r
   | Ret -> put_u8 b op_ret
   | Push r -> put_u8 b (op_push + r)
   | Pop r -> put_u8 b (op_pop + r)
   | Callrt f -> put_u8 b op_callrt; put_u8 b (rtfn_code f)
   | Nop n ->
     if n < 1 then err "Nop %d" n;
     for _ = 1 to n do put_u8 b op_nop done
   | Hlt -> put_u8 b op_hlt
   | Trap -> put_u8 b op_trap
   | Probe id ->
     put_u8 b op_probe;
     put_i32 b id
   | Check c ->
     put_u8 b op_check;
     let flags =
       (match c.ck_variant with
        | Isa.Full -> 1
        | Isa.Redzone -> 0
        | Isa.Temporal -> 8)
       lor (if c.ck_write then 2 else 0)
       lor (if c.ck_save_flags then 4 else 0)
     in
     put_u8 b flags;
     put_u8 b c.ck_nsaves;
     put_mem b c.ck_mem;
     put_i32 b c.ck_lo;
     put_i32 b c.ck_hi;
     put_i32 b c.ck_site);
  ignore start

let scratch = Buffer.create 64

(** Encoded length of [i] in bytes.  Independent of the address for
    every instruction (rel32 fields are fixed-width). *)
let length (i : Isa.instr) : int =
  Buffer.clear scratch;
  encode_at scratch 0 i;
  Buffer.length scratch

(** Encode a straight-line sequence starting at [addr]; returns bytes. *)
let encode_seq ~(addr : int) (is : Isa.instr list) : string =
  let b = Buffer.create 256 in
  List.iter
    (fun i ->
      let a = addr + Buffer.length b in
      encode_at b a i)
    is;
  Buffer.contents b
