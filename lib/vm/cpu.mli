(** The x64l interpreter with a deterministic cycle cost model.

    Overheads in every experiment are ratios of the [cycles] counter
    between runs; the model charges every piece of work the
    instrumentation introduces (trampoline jumps, check micro-ops, DBI
    dispatch, trap-table redirects) a defensible relative cost. *)

exception Halt

(** Carries the rip of the faulting division. *)
exception Div_by_zero of int

exception Invalid_opcode of int

(** Carries the steps executed when the limit was hit. *)
exception Timeout of int

(** Explicit Exit runtime call, carrying the exit code. *)
exception Exited of int

(** Lazy flags: [Cmp a b] records the operand pair; condition codes are
    evaluated from it on demand. *)
type flags = { mutable fa : int; mutable fb : int }

(** Per-hardened-site check accounting (off unless an [acct] is
    attached to the CPU): how often each guarded site's check executes
    and what it costs, plus per-variant and total-cycle tallies.  The
    measurement substrate for overhead {e attribution} — Table 1 says
    how much hardening costs, this says {e where}. *)
type site_acct = { mutable sa_checks : int; mutable sa_cycles : int }

type acct = {
  acct_sites : (int, site_acct) Hashtbl.t;  (** ck_site -> totals *)
  mutable acct_full : int;     (** Full-variant checks executed *)
  mutable acct_redzone : int;  (** Redzone-variant checks executed *)
  mutable acct_temporal : int; (** Temporal-variant checks executed *)
  mutable acct_cycles : int;   (** total cycles spent in checks *)
}

val new_acct : unit -> acct

val acct_sites : acct -> (int * int * int) list
(** [(site, checks, cycles)] per guarded site, sorted by site. *)

type t = {
  mem : Mem.t;
  regs : int array;                   (** 16 general-purpose registers *)
  mutable rip : int;
  flags : flags;
  mutable cycles : int;               (** the cost-model counter *)
  mutable steps : int;                (** instructions executed *)
  mutable max_steps : int;
  mutable on_check : (t -> X64.Isa.check -> int) option;
      (** instrumentation hook: returns the cycle cost to charge *)
  mutable on_probe : (t -> int -> int) option;
      (** generic-instrumentation hook (E9Tool payloads) *)
  mutable on_mem : (t -> addr:int -> len:int -> write:bool -> unit) option;
      (** DBI hook, called on every explicit memory access *)
  mutable dispatch_cost : int;        (** extra cycles per instruction *)
  mutable acct : acct option;         (** per-site check accounting *)
  mutable addr_mask : int;
      (** mask applied to data effective addresses before memory
          access; [-1] (identity) unless a pointer-tagging backend
          (temporal lock-and-key) installs one.  [Lea] is exempt: it
          computes pointer {e values}, which must keep their tags *)
  trap_table : (int, int) Hashtbl.t;  (** patch address -> trampoline *)
  icache : (int, X64.Isa.instr * int) Hashtbl.t;
  mutable inputs : int list;          (** script for the Input runtime fn *)
  mutable outputs : int list;         (** Print results, reverse order *)
  mutable mem_reads : int;
  mutable mem_writes : int;
}

val halt_sentinel : int
(** Return address whose pop halts the machine (pushed by {!run}). *)

val create : ?max_steps:int -> unit -> t

val outputs : t -> int list
(** Printed values, in program order. *)

val ea : t -> X64.Isa.mem -> int
(** Effective address of a memory operand under the current registers. *)

(** The runtime library the [Callrt] instruction dispatches into
    (glibc, libredfat, or the Memcheck wrappers). *)
type runtime = {
  rt_malloc : t -> int -> int;
  rt_free : t -> int -> unit;
  rt_name : string;
}

val step : t -> runtime -> unit
(** Execute one instruction; raises {!Halt} on hlt or final ret. *)

val run : t -> runtime -> entry:int -> int
(** Run from [entry] until the program halts; returns the exit code
    (0 unless the program called Exit). *)
