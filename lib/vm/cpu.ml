(** The x64l interpreter with a deterministic cycle cost model.

    The cost model is the measurement substrate for every experiment
    (see DESIGN.md): performance results are reported as cycle ratios
    instrumented/baseline, so what matters is that every piece of extra
    work the instrumentation introduces — trampoline jumps, check
    micro-ops, DBI dispatch, shadow lookups — is charged a defensible
    relative cost, not that absolute numbers match any real machine.

    Costs: 1 cycle per instruction, +1 per explicit memory access,
    multiplies 3, divides 8, +1 per taken control transfer and +2 more
    when the transfer is "far" (> 64 KiB away, modelling the icache
    locality loss that motivates the paper's batching optimization),
    +10 for a trap-table fallback patch.  Checks are charged by the
    [on_check] hook (the redfat runtime returns the micro-op count of
    the corresponding assembly sequence). *)

exception Halt
exception Div_by_zero of int
exception Invalid_opcode of int
exception Timeout of int
exception Exited of int

(* Lazy flags: [Cmp a b] records the operand pair; condition codes are
   evaluated from it on demand.  ALU results record (result, 0). *)
type flags = { mutable fa : int; mutable fb : int }

(* Optional per-hardened-site check accounting: which guarded sites
   execute, how often, and how many cycles their checks cost.  Off by
   default (a [None] test per executed check); a trace run attaches an
   [acct] and exports it through the obs layer. *)
type site_acct = { mutable sa_checks : int; mutable sa_cycles : int }

type acct = {
  acct_sites : (int, site_acct) Hashtbl.t; (* ck_site -> totals *)
  mutable acct_full : int;     (* Full-variant checks executed *)
  mutable acct_redzone : int;  (* Redzone-variant checks executed *)
  mutable acct_temporal : int; (* Temporal-variant checks executed *)
  mutable acct_cycles : int;   (* total cycles spent in checks *)
}

let new_acct () =
  { acct_sites = Hashtbl.create 64; acct_full = 0; acct_redzone = 0;
    acct_temporal = 0; acct_cycles = 0 }

let acct_record (a : acct) (ck : X64.Isa.check) cost =
  (match ck.X64.Isa.ck_variant with
   | X64.Isa.Full -> a.acct_full <- a.acct_full + 1
   | X64.Isa.Redzone -> a.acct_redzone <- a.acct_redzone + 1
   | X64.Isa.Temporal -> a.acct_temporal <- a.acct_temporal + 1);
  a.acct_cycles <- a.acct_cycles + cost;
  let sa =
    match Hashtbl.find_opt a.acct_sites ck.X64.Isa.ck_site with
    | Some sa -> sa
    | None ->
      let sa = { sa_checks = 0; sa_cycles = 0 } in
      Hashtbl.add a.acct_sites ck.X64.Isa.ck_site sa;
      sa
  in
  sa.sa_checks <- sa.sa_checks + 1;
  sa.sa_cycles <- sa.sa_cycles + cost

let acct_sites (a : acct) : (int * int * int) list =
  Hashtbl.fold
    (fun site sa acc -> (site, sa.sa_checks, sa.sa_cycles) :: acc)
    a.acct_sites []
  |> List.sort compare

type t = {
  mem : Mem.t;
  regs : int array;
  mutable rip : int;
  flags : flags;
  mutable cycles : int;
  mutable steps : int;
  mutable max_steps : int;
  (* instrumentation hooks *)
  mutable on_check : (t -> X64.Isa.check -> int) option;
  mutable on_probe : (t -> int -> int) option;
  mutable on_mem : (t -> addr:int -> len:int -> write:bool -> unit) option;
  mutable dispatch_cost : int;  (** extra cycles per instruction (DBI) *)
  mutable acct : acct option;   (** per-site check accounting *)
  mutable addr_mask : int;
  (** Mask applied to data effective addresses before memory access;
      [-1] (identity) by default.  The temporal backend sets it to
      strip lock-and-key tags from pointers' high bits, so tagged
      pointers dereference transparently.  [Lea] stays unmasked: it
      computes pointer values, and masking there would strip tags. *)
  trap_table : (int, int) Hashtbl.t;  (** patch address -> trampoline *)
  icache : (int, X64.Isa.instr * int) Hashtbl.t;
  (* scripted I/O *)
  mutable inputs : int list;
  mutable outputs : int list;  (** reverse order *)
  mutable mem_reads : int;
  mutable mem_writes : int;
}

let halt_sentinel = 0x0dead_f00d

let create ?(max_steps = 200_000_000) () =
  {
    mem = Mem.create ();
    regs = Array.make X64.Isa.num_regs 0;
    rip = 0;
    flags = { fa = 0; fb = 0 };
    cycles = 0;
    steps = 0;
    max_steps;
    on_check = None;
    on_probe = None;
    on_mem = None;
    dispatch_cost = 0;
    acct = None;
    addr_mask = -1;
    trap_table = Hashtbl.create 64;
    icache = Hashtbl.create 4096;
    inputs = [];
    outputs = [];
    mem_reads = 0;
    mem_writes = 0;
  }

let outputs t = List.rev t.outputs

(** Effective address of a memory operand.  Segments resolve to 0 (the
    simulated machine has a flat address space, like user-mode x86-64
    with %ds; the field exists because the operand 5-tuple carries it). *)
let ea t (m : X64.Isa.mem) =
  let b = match m.base with Some r -> t.regs.(r) | None -> 0 in
  let i = match m.idx with Some r -> t.regs.(r) | None -> 0 in
  m.disp + b + (i * m.scale)

(* data accesses strip pointer tags (identity unless a tagging backend
   installed an addr_mask) *)
let ea_data t m = ea t m land t.addr_mask

let fetch t addr =
  match Hashtbl.find_opt t.icache addr with
  | Some v -> v
  | None ->
    let raw = Mem.read_string t.mem ~addr ~len:40 in
    if raw = "" then raise (Mem.Segfault addr);
    let v = X64.Decode.decode ~addr raw 0 in
    Hashtbl.add t.icache addr v;
    v

let far_jump_penalty t target = if abs (target - t.rip) > 0x1_0000 then 2 else 0

let mem_access t addr len write =
  (match t.on_mem with
   | Some f -> f t ~addr ~len ~write
   | None -> ());
  if write then t.mem_writes <- t.mem_writes + 1
  else t.mem_reads <- t.mem_reads + 1

let set_flags_result t r =
  t.flags.fa <- r;
  t.flags.fb <- 0

let eval_cc t (cc : X64.Isa.cc) =
  let a = t.flags.fa and b = t.flags.fb in
  match cc with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b
  | Ult -> Int.compare (a + min_int) (b + min_int) < 0
  | Ule -> Int.compare (a + min_int) (b + min_int) <= 0
  | Ugt -> Int.compare (a + min_int) (b + min_int) > 0
  | Uge -> Int.compare (a + min_int) (b + min_int) >= 0

type runtime = {
  rt_malloc : t -> int -> int;
  rt_free : t -> int -> unit;
  rt_name : string;
}

(** Execute one instruction; raises {!Halt} on hlt or final ret. *)
let step t (rt : runtime) =
  if t.steps >= t.max_steps then raise (Timeout t.steps);
  let i, len = fetch t t.rip in
  t.steps <- t.steps + 1;
  t.cycles <- t.cycles + 1 + t.dispatch_cost;
  let next = t.rip + len in
  let jump_to target =
    t.cycles <- t.cycles + 1 + far_jump_penalty t target;
    t.rip <- target
  in
  let open X64.Isa in
  match i with
  | Mov_rr (d, s) ->
    t.regs.(d) <- t.regs.(s);
    t.rip <- next
  | Mov_ri (d, v) ->
    t.regs.(d) <- v;
    t.rip <- next
  | Load (w, d, m) ->
    let addr = ea_data t m and lenb = width_bytes w in
    mem_access t addr lenb false;
    t.regs.(d) <- Mem.read t.mem ~addr ~len:lenb;
    t.cycles <- t.cycles + 1;
    t.rip <- next
  | Store (w, m, s) ->
    let addr = ea_data t m and lenb = width_bytes w in
    mem_access t addr lenb true;
    Mem.write t.mem ~addr ~len:lenb t.regs.(s);
    t.cycles <- t.cycles + 1;
    t.rip <- next
  | Store_i (w, m, v) ->
    let addr = ea_data t m and lenb = width_bytes w in
    mem_access t addr lenb true;
    Mem.write t.mem ~addr ~len:lenb v;
    t.cycles <- t.cycles + 1;
    t.rip <- next
  | Lea (d, m) ->
    t.regs.(d) <- ea t m;
    t.rip <- next
  | Alu_rr (op, d, s) ->
    let a = t.regs.(d) and b = t.regs.(s) in
    let r =
      match op with
      | Add -> a + b
      | Sub -> a - b
      | And -> a land b
      | Or -> a lor b
      | Xor -> a lxor b
    in
    t.regs.(d) <- r;
    set_flags_result t r;
    t.rip <- next
  | Alu_ri (op, d, v) ->
    let a = t.regs.(d) in
    let r =
      match op with
      | Add -> a + v
      | Sub -> a - v
      | And -> a land v
      | Or -> a lor v
      | Xor -> a lxor v
    in
    t.regs.(d) <- r;
    set_flags_result t r;
    t.rip <- next
  | Mul_rr (d, s) ->
    t.regs.(d) <- t.regs.(d) * t.regs.(s);
    set_flags_result t t.regs.(d);
    t.cycles <- t.cycles + 2;
    t.rip <- next
  | Div_rr (d, s) ->
    if t.regs.(s) = 0 then raise (Div_by_zero t.rip);
    t.regs.(d) <- t.regs.(d) / t.regs.(s);
    set_flags_result t t.regs.(d);
    t.cycles <- t.cycles + 7;
    t.rip <- next
  | Rem_rr (d, s) ->
    if t.regs.(s) = 0 then raise (Div_by_zero t.rip);
    t.regs.(d) <- t.regs.(d) mod t.regs.(s);
    set_flags_result t t.regs.(d);
    t.cycles <- t.cycles + 7;
    t.rip <- next
  | Neg r ->
    t.regs.(r) <- -t.regs.(r);
    set_flags_result t t.regs.(r);
    t.rip <- next
  | Not r ->
    t.regs.(r) <- lnot t.regs.(r);
    t.rip <- next
  | Shift_ri (s, r, n) ->
    let v = t.regs.(r) in
    t.regs.(r) <-
      (match s with Shl -> v lsl n | Shr -> v lsr n | Sar -> v asr n);
    set_flags_result t t.regs.(r);
    t.rip <- next
  | Cmp_rr (a, b) ->
    t.flags.fa <- t.regs.(a);
    t.flags.fb <- t.regs.(b);
    t.rip <- next
  | Cmp_ri (a, v) ->
    t.flags.fa <- t.regs.(a);
    t.flags.fb <- v;
    t.rip <- next
  | Test_rr (a, b) ->
    t.flags.fa <- t.regs.(a) land t.regs.(b);
    t.flags.fb <- 0;
    t.rip <- next
  | Setcc (cc, r) ->
    t.regs.(r) <- (if eval_cc t cc then 1 else 0);
    t.rip <- next
  | Jmp target -> jump_to target
  | Jcc (cc, target) ->
    if eval_cc t cc then jump_to target else t.rip <- next
  | Call target ->
    t.regs.(rsp) <- t.regs.(rsp) - 8;
    mem_access t t.regs.(rsp) 8 true;
    Mem.write t.mem ~addr:t.regs.(rsp) ~len:8 next;
    jump_to target
  | Call_ind r ->
    t.regs.(rsp) <- t.regs.(rsp) - 8;
    mem_access t t.regs.(rsp) 8 true;
    Mem.write t.mem ~addr:t.regs.(rsp) ~len:8 next;
    t.cycles <- t.cycles + 1; (* indirect-branch prediction cost *)
    jump_to t.regs.(r)
  | Jmp_ind r ->
    t.cycles <- t.cycles + 1;
    jump_to t.regs.(r)
  | Ret ->
    mem_access t t.regs.(rsp) 8 false;
    let target = Mem.read t.mem ~addr:t.regs.(rsp) ~len:8 in
    t.regs.(rsp) <- t.regs.(rsp) + 8;
    if target = halt_sentinel then raise Halt;
    jump_to target
  | Push r ->
    t.regs.(rsp) <- t.regs.(rsp) - 8;
    mem_access t t.regs.(rsp) 8 true;
    Mem.write t.mem ~addr:t.regs.(rsp) ~len:8 t.regs.(r);
    t.cycles <- t.cycles + 1;
    t.rip <- next
  | Pop r ->
    mem_access t t.regs.(rsp) 8 false;
    t.regs.(r) <- Mem.read t.mem ~addr:t.regs.(rsp) ~len:8;
    t.regs.(rsp) <- t.regs.(rsp) + 8;
    t.cycles <- t.cycles + 1;
    t.rip <- next
  | Callrt f ->
    (* models a PLT call into the preloaded runtime library *)
    t.cycles <- t.cycles + 8;
    (match f with
     | Malloc -> t.regs.(rax) <- rt.rt_malloc t t.regs.(rdi)
     | Free -> rt.rt_free t t.regs.(rdi)
     | Input ->
       (match t.inputs with
        | [] -> t.regs.(rax) <- 0
        | v :: rest ->
          t.regs.(rax) <- v;
          t.inputs <- rest)
     | Print -> t.outputs <- t.regs.(rdi) :: t.outputs
     | Exit -> raise (Exited t.regs.(rdi)));
    t.rip <- next
  | Nop _ -> t.rip <- next
  | Hlt -> raise Halt
  | Trap ->
    (* E9Patch fallback tactic: a 1-byte patch that redirects via a
       table, at a much higher per-execution cost than a jump *)
    (match Hashtbl.find_opt t.trap_table t.rip with
     | Some target ->
       t.cycles <- t.cycles + 10;
       t.rip <- target
     | None -> raise (Invalid_opcode t.rip))
  | Check c ->
    (match t.on_check with
     | Some f ->
       let cost = f t c in
       t.cycles <- t.cycles + cost;
       (match t.acct with
        | Some a -> acct_record a c cost
        | None -> ())
     | None -> ());
    t.rip <- next
  | Probe id ->
    (* a shared-memory counter update in the real tool: ~3 instructions *)
    (match t.on_probe with
     | Some f -> t.cycles <- t.cycles + f t id
     | None -> t.cycles <- t.cycles + 3);
    t.rip <- next

(** Run from [entry] until the program halts (final ret, hlt, or
    Exit runtime call).  Returns the exit code (0 unless [Exit]). *)
let run t (rt : runtime) ~entry =
  t.rip <- entry;
  (* final return address: popping it halts the machine *)
  t.regs.(X64.Isa.rsp) <- t.regs.(X64.Isa.rsp) - 8;
  Mem.write t.mem ~addr:t.regs.(X64.Isa.rsp) ~len:8 halt_sentinel;
  try
    while true do
      step t rt
    done;
    assert false
  with
  | Halt -> 0
  | Exited code -> code
