(* The typed error taxonomy.  See fault.mli for the model; the
   registry at the bottom is the single source of truth for the
   documented codes (docs/MANUAL.md is checked against it by
   tools/doc_check, and `redfat errors --list` prints it). *)

type severity = Fatal | Degraded | Skipped

type kind =
  | Parse of { what : string; detail : string }
  | Decode of { addr : int; detail : string }
  | Recover of { detail : string }
  | Rewrite of { what : string; site : int option; detail : string }
  | Cache of { what : string; key : string; detail : string }
  | Verify of { unaccounted : int; detail : string }
  | Run of { what : string; detail : string }
  | Io of { what : string; path : string; detail : string }
  | Input of { what : string; detail : string }

type t = { kind : kind; severity : severity; target : string option }

exception Fault of t

let code_of_kind = function
  | Parse { what; _ } -> "parse." ^ what
  | Decode _ -> "decode.insn"
  | Recover _ -> "recover.cfg"
  | Rewrite { what; _ } -> "rewrite." ^ what
  | Cache { what; _ } -> "cache." ^ what
  | Verify _ -> "verify.unsound"
  | Run { what; _ } -> "run." ^ what
  | Io { what; _ } -> "io." ^ what
  | Input { what; _ } -> "input." ^ what

let code t = code_of_kind t.kind

let detail_of_kind = function
  | Parse { detail; _ }
  | Recover { detail }
  | Rewrite { detail; _ }
  | Cache { detail; _ }
  | Verify { detail; _ }
  | Run { detail; _ }
  | Input { detail; _ } -> detail
  | Decode { addr; detail } -> Printf.sprintf "%s at %#x" detail addr
  | Io { path; detail; _ } -> Printf.sprintf "%s: %s" path detail

let severity_to_string = function
  | Fatal -> "fatal"
  | Degraded -> "degraded"
  | Skipped -> "skipped"

(* --- the documented taxonomy ---------------------------------------- *)

type info = {
  i_code : string;
  i_severity : severity;
  i_meaning : string;
  i_behaviour : string;
}

let registry =
  let i c s m b = { i_code = c; i_severity = s; i_meaning = m; i_behaviour = b } in
  [
    i "parse.magic" Fatal "input is not a RELF file (bad magic)"
      "target reported and skipped; rest of the batch completes";
    i "parse.truncated" Fatal "RELF header or field cut short"
      "target reported and skipped; rest of the batch completes";
    i "parse.int" Fatal "RELF header carries an unreadable integer field"
      "target reported and skipped; rest of the batch completes";
    i "parse.section" Fatal
      "RELF section table is inconsistent (offsets/lengths beyond the file)"
      "target reported and skipped; rest of the batch completes";
    i "parse.nocode" Fatal "RELF parses but has no (or empty) .text section"
      "target reported and skipped; rest of the batch completes";
    i "parse.source" Fatal "MiniC source failed to lex/parse/compile"
      "target reported and skipped; rest of the batch completes";
    i "parse.relf" Fatal "RELF rejected for another structural reason"
      "target reported and skipped; rest of the batch completes";
    i "decode.insn" Fatal "instruction decoding failed during analysis"
      "target reported and skipped; rest of the batch completes";
    i "recover.cfg" Fatal "CFG recovery failed on the target's code"
      "target reported and skipped; rest of the batch completes";
    i "rewrite.site" Degraded
      "a site's primary check (per the selected backend) could not be \
       emitted"
      "site downgraded to the backend's fallback (redzone-only for every \
       shipped backend); counted in stats.degraded_sites / checks_by_kind \
       degrade.redzone";
    i "rewrite.skip" Skipped
      "a site faulted even for the redzone-only fallback"
      "site left uninstrumented, recorded as a .elimtab `skip` entry the \
       linter audits; counted in stats.skipped_sites / degrade.skip";
    i "rewrite.abort" Fatal
      "the rewrite failed outright (strict fault policy, or a \
       non-site-local fault)"
      "target reported and skipped; rest of the batch completes";
    i "cache.stale" Skipped
      "a disk artifact carries an old format magic (schema change)"
      "artifact deleted and recomputed; cache.stale counter bumped";
    i "cache.corrupt" Skipped
      "a disk artifact is unreadable (truncated write, bit rot)"
      "artifact deleted and recomputed; cache.corrupt counter bumped";
    i "cache.io" Degraded "the cache disk tier failed an IO operation"
      "one bounded retry, then recompute without the disk tier";
    i "verify.unsound" Fatal
      "the rewrite-soundness audit found unaccounted memory accesses"
      "target reported and skipped (a hardened binary that fails its own \
       audit is never run)";
    i "run.baseline" Fatal "the uninstrumented baseline run did not finish"
      "target reported and skipped; overheads need a clean baseline";
    i "run.profile" Fatal "a profiling run crashed before classifying sites"
      "target reported and skipped; rest of the batch completes";
    i "run.fault" Fatal "the VM faulted while executing the target"
      "target reported and skipped; rest of the batch completes";
    i "run.backend" Fatal
      "a hardened binary's .elimtab records a check backend this build \
       does not ship"
      "target reported and skipped; re-harden the binary (the runtime \
       cannot guess lock-table or tagging semantics)";
    i "run.timeout" Fatal
      "the VM exhausted its step budget (hang or livelock)"
      "target reported and skipped; fuzz campaigns triage it as a hang \
       bug (CWE-835)";
    i "io.read" Degraded "reading a file failed"
      "one bounded retry, then the target is reported and skipped";
    i "io.write" Degraded "writing a file failed"
      "one bounded retry, then the target is reported and skipped";
    i "input.target" Fatal "unknown workload / target name"
      "target reported and skipped; `redfat list` names the built-ins";
    i "input.script" Fatal "an --inputs script is not comma-separated ints"
      "target reported and skipped; rest of the batch completes";
    i "input.corpus" Fatal
      "a --corpus seed directory is missing, unreadable, or empty"
      "the fuzz campaign aborts before any execution; point --corpus at \
       a directory of seed files";
  ]

let canonical_severity kind =
  let c = code_of_kind kind in
  match List.find_opt (fun i -> i.i_code = c) registry with
  | Some i -> i.i_severity
  | None -> Fatal

let v ?target ?severity kind =
  let severity =
    match severity with Some s -> s | None -> canonical_severity kind
  in
  { kind; severity; target }

let fail ?target ?severity kind = raise (Fault (v ?target ?severity kind))

let is_transient t =
  match t.kind with Cache _ | Io _ -> true | _ -> false

(* --- classification of raw exceptions ------------------------------- *)

(* RELF parse errors carry free-form messages; map them onto the
   stable parse.* sub-codes *)
let parse_what_of_msg msg =
  let has_prefix p =
    String.length msg >= String.length p && String.sub msg 0 (String.length p) = p
  in
  if has_prefix "bad magic" then "magic"
  else if has_prefix "truncated string" || has_prefix "bad section" then
    "section"
  else if has_prefix "truncated" then "truncated"
  else if has_prefix "bad int" then "int"
  else if has_prefix "no code" then "nocode"
  else "relf"

let of_exn ?target (e : exn) : t =
  match e with
  | Fault f -> (
    match (f.target, target) with
    | None, Some _ -> { f with target }
    | _ -> f)
  | Binfmt.Relf.Parse_error msg ->
    v ?target (Parse { what = parse_what_of_msg msg; detail = msg })
  | Minic.Parser.Parse_error (msg, pos) ->
    v ?target
      (Parse
         {
           what = "source";
           detail = Printf.sprintf "%d:%d: parse error: %s" pos.line pos.col msg;
         })
  | Minic.Lexer.Lex_error (msg, pos) ->
    v ?target
      (Parse
         {
           what = "source";
           detail = Printf.sprintf "%d:%d: lex error: %s" pos.line pos.col msg;
         })
  | Minic.Codegen.Compile_error msg ->
    v ?target (Parse { what = "source"; detail = "compile error: " ^ msg })
  | X64.Decode.Decode_error { addr; byte } ->
    v ?target
      (Decode { addr; detail = Printf.sprintf "undecodable byte %#x" byte })
  | Invalid_argument msg when msg = "Relf.text_exn: no .text section" ->
    v ?target (Parse { what = "nocode"; detail = "no .text section" })
  | Vm.Cpu.Timeout n ->
    v ?target
      (Run
         {
           what = "timeout";
           detail = Printf.sprintf "no exit after %d steps" n;
         })
  | Sys_error msg -> v ?target (Io { what = "read"; path = ""; detail = msg })
  | Backend.Check_backend.Unknown name ->
    v ?target
      (Run
         {
           what = "backend";
           detail = Printf.sprintf "unknown check backend %S recorded" name;
         })
  | Failure msg -> v ?target (Run { what = "fault"; detail = msg })
  | e -> v ?target (Run { what = "fault"; detail = Printexc.to_string e })

(* --- rendering ------------------------------------------------------- *)

let pp fmt t =
  Format.fprintf fmt "fault[%s]%s: %s (%s)" (code t)
    (match t.target with None -> "" | Some tg -> " " ^ tg)
    (detail_of_kind t.kind)
    (severity_to_string t.severity)

let to_string t = Format.asprintf "%a" pp t

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  Printf.sprintf
    "{ \"target\": \"%s\", \"code\": \"%s\", \"severity\": \"%s\", \
     \"detail\": \"%s\" }"
    (json_escape (Option.value t.target ~default:""))
    (json_escape (code t))
    (severity_to_string t.severity)
    (json_escape (detail_of_kind t.kind))

let registry_markdown () =
  let b = Buffer.create 2048 in
  Buffer.add_string b "| code | severity | meaning | behaviour |\n";
  Buffer.add_string b "|---|---|---|---|\n";
  List.iter
    (fun i ->
      Buffer.add_string b
        (Printf.sprintf "| `%s` | %s | %s | %s |\n" i.i_code
           (severity_to_string i.i_severity)
           i.i_meaning i.i_behaviour))
    registry;
  Buffer.contents b
