(** The typed error taxonomy of the fault-tolerant pipeline.

    Every way the engine can fail — malformed RELF, undecodable code,
    CFG recovery, a faulting rewrite site, a stale or corrupt cache
    artifact, a failed soundness audit, a crashing run — is one
    constructor of {!kind}, carrying its provenance (file, target or
    site) and classified by {!severity}:

    - [Fatal]: the target cannot be processed; in a batch the target
      is reported and the rest complete (unless [--strict]).
    - [Degraded]: the work completed with weaker-but-sound behaviour
      (a site downgraded to a redzone-only check, a cache artifact
      recomputed, a transient IO retried).
    - [Skipped]: a work item was abandoned with a sound fallback (a
      site left uninstrumented but recorded in [.elimtab], a cache
      artifact ignored).

    Each fault renders to a {e stable string code} ([parse.magic],
    [cache.corrupt], ...) used for [fault.<code>] observability
    counters, per-target records in [--out] JSON, and the documented
    taxonomy table (docs/MANUAL.md, kept in sync by [tools/doc_check]
    against {!registry}). *)

type severity = Fatal | Degraded | Skipped

type kind =
  | Parse of { what : string; detail : string }
      (** malformed input artifact; [what] is the stable sub-code:
          [magic], [truncated], [int], [section], [nocode], [source],
          [relf] *)
  | Decode of { addr : int; detail : string }
      (** instruction decoding failed at [addr] *)
  | Recover of { detail : string }
      (** CFG recovery failed *)
  | Rewrite of { what : string; site : int option; detail : string }
      (** rewriter fault; [what] ∈ [site] (downgraded), [skip]
          (uninstrumented), [abort] (rewrite failed under the strict
          policy) *)
  | Cache of { what : string; key : string; detail : string }
      (** artifact-cache fault; [what] ∈ [stale], [corrupt], [io] *)
  | Verify of { unaccounted : int; detail : string }
      (** the rewrite-soundness audit failed *)
  | Run of { what : string; detail : string }
      (** execution fault; [what] ∈ [baseline], [profile], [fault] *)
  | Io of { what : string; path : string; detail : string }
      (** file-system fault; [what] ∈ [read], [write] *)
  | Input of { what : string; detail : string }
      (** unusable user input; [what] ∈ [target], [script] *)

type t = {
  kind : kind;
  severity : severity;
  target : string option;  (** workload name / file the fault belongs to *)
}

exception Fault of t
(** The one exception the fault-tolerant layers raise and catch.  Raw
    exceptions from lower layers are converted at the engine boundary
    by {!of_exn}. *)

val v : ?target:string -> ?severity:severity -> kind -> t
(** Build a fault; [severity] defaults to the kind's canonical
    severity from {!registry}. *)

val fail : ?target:string -> ?severity:severity -> kind -> 'a
(** [raise (Fault (v ... kind))]. *)

val code : t -> string
(** The stable string code, e.g. ["parse.magic"], ["rewrite.site"]. *)

val severity_to_string : severity -> string

val is_transient : t -> bool
(** Faults worth one bounded retry (cache/IO classes): the state they
    depend on can change between attempts. *)

val of_exn : ?target:string -> exn -> t
(** Classify any exception into the taxonomy: [Fault] passes through
    (adopting [target] if it had none); RELF/MiniC parse errors,
    decoder errors, [Sys_error], and the engine's own [Failure]
    messages map to their codes; anything else becomes a [Run]-class
    fault carrying [Printexc.to_string]. *)

val pp : Format.formatter -> t -> unit
(** One line: [fault[<code>] <target>: <detail> (<severity>)]. *)

val to_string : t -> string

val to_json : t -> string
(** One JSON object:
    [{"target": ..., "code": ..., "severity": ..., "detail": ...}]. *)

(** {2 The documented taxonomy} *)

type info = {
  i_code : string;
  i_severity : severity;  (** canonical severity *)
  i_meaning : string;
  i_behaviour : string;   (** how the pipeline degrades/responds *)
}

val registry : info list
(** Every stable code, its canonical severity, meaning and degradation
    behaviour — the single source of truth behind
    [redfat errors --list], the docs/MANUAL.md taxonomy table and the
    [tools/doc_check] sync check. *)

val registry_markdown : unit -> string
(** The registry as the markdown table embedded in docs/MANUAL.md
    ("Failure semantics" chapter); [redfat errors --list] prints
    exactly this. *)
