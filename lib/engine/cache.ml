type stats = {
  mutable hits : int;
  mutable hits_mem : int;
  mutable hits_disk : int;
  mutable misses : int;
  mutable stores : int;
  mutable stale : int;
  mutable corrupt : int;
  mutable retries : int;
}

type t = {
  lock : Mutex.t;
  mem : (string, string) Hashtbl.t; (* key -> marshal blob *)
  dir : string option;
  on : bool;
  st : stats;
  notify : (string -> unit) option;
}

(* versioned header so a stale or foreign file is rejected, never
   unmarshalled.  ART2: rewrite stats gained the per-check-kind
   breakdown.  ART3: rewrite stats gained degraded_sites/skipped_sites
   (the fault layer), so ART2 blobs no longer unmarshal to the current
   types.  ART4: the pluggable check-backend refactor — rewrite stats
   gained temporal_sites and Rewrite.options a backend field (itself in
   options_key, so distinct backends also get distinct keys).  ART5:
   loop-aware check hoisting — rewrite stats gained
   hoisted_checks/widened_span_bytes and Rewrite.options a hoist field
   (also in options_key).  ART6: function-granular incremental
   hardening — Harden artifacts are now a binary-level manifest plus
   per-function rewrite parts ([find_opt]/[put] tiered API), so ART5
   whole-binary blobs no longer describe the current layout. *)
let magic = "REDFAT-ART6\n"

let create ?(enabled = true) ?dir ?notify () =
  {
    lock = Mutex.create ();
    mem = Hashtbl.create 64;
    dir = (if enabled then dir else None);
    on = enabled;
    st = { hits = 0; hits_mem = 0; hits_disk = 0; misses = 0; stores = 0;
           stale = 0; corrupt = 0; retries = 0 };
    notify;
  }

let notify t ev = match t.notify with Some f -> f ev | None -> ()

let enabled t = t.on
let stats t = t.st

let key ~kind parts =
  kind ^ "-" ^ Digest.to_hex (Digest.string (String.concat "\x00" (kind :: parts)))

let path dir key = Filename.concat dir (key ^ ".art")

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()

(* a disk artifact is Absent (no file), Stale (recognizable but older
   format magic), Corrupt (unrecognizable header), or readable.  Stale
   and corrupt files are deleted so they self-heal by recompute. *)
type loaded = Blob of string | Absent | Stale | Corrupt

let looks_like_art s =
  let p = "REDFAT-ART" in
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let disk_load dir k : loaded =
  let file = path dir k in
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error _ -> Absent
  | s ->
    let m = String.length magic in
    if String.length s > m && String.sub s 0 m = magic then
      Blob (String.sub s m (String.length s - m))
    else begin
      (try Sys.remove file with Sys_error _ -> ());
      if looks_like_art s then Stale else Corrupt
    end

let disk_store dir k blob =
  ensure_dir dir;
  let file = path dir k in
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" file (Unix.getpid ())
      (Domain.self () :> int)
  in
  let write () =
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc magic;
        Out_channel.output_string oc blob);
    Sys.rename tmp file
  in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  match write () with
  | () -> true
  | exception Sys_error _ -> (
    cleanup ();
    (* one bounded retry: transient IO (ENOSPC races, a dir swept by a
       concurrent cleanup) can succeed the second time *)
    match write () with
    | () -> true
    | exception Sys_error _ ->
      cleanup ();
      false)

let find_opt (type a) t ~key : a option =
  if not t.on then None
  else begin
    (* track which tier satisfied the lookup so hits can be attributed
       (memory hit = no IO, disk hit = read + unmarshal + promotion) *)
    let cached =
      Mutex.lock t.lock;
      let hit = Hashtbl.find_opt t.mem key in
      Mutex.unlock t.lock;
      match hit with
      | Some blob -> Some (blob, `Mem)
      | None -> (
        match t.dir with
        | None -> None
        | Some dir -> (
          match disk_load dir key with
          | Blob blob ->
            Mutex.lock t.lock;
            Hashtbl.replace t.mem key blob;
            Mutex.unlock t.lock;
            Some (blob, `Disk)
          | Absent -> None
          | Stale ->
            Mutex.lock t.lock;
            t.st.stale <- t.st.stale + 1;
            Mutex.unlock t.lock;
            notify t "stale";
            None
          | Corrupt ->
            Mutex.lock t.lock;
            t.st.corrupt <- t.st.corrupt + 1;
            Mutex.unlock t.lock;
            notify t "corrupt";
            None))
    in
    let unmarshalled =
      match cached with
      | None -> None
      | Some (blob, tier) -> (
        (* a blob with the right magic can still be truncated by a torn
           write predating the tmp+rename discipline, or bit-rotted:
           treat an unmarshal failure as Corrupt and recompute *)
        match (Marshal.from_string blob 0 : a) with
        | v -> Some (v, tier)
        | exception _ ->
          Mutex.lock t.lock;
          t.st.corrupt <- t.st.corrupt + 1;
          Hashtbl.remove t.mem key;
          Mutex.unlock t.lock;
          (match t.dir with
          | Some dir -> ( try Sys.remove (path dir key) with Sys_error _ -> ())
          | None -> ());
          notify t "corrupt";
          None)
    in
    match unmarshalled with
    | Some (v, tier) ->
      Mutex.lock t.lock;
      t.st.hits <- t.st.hits + 1;
      (match tier with
      | `Mem -> t.st.hits_mem <- t.st.hits_mem + 1
      | `Disk -> t.st.hits_disk <- t.st.hits_disk + 1);
      Mutex.unlock t.lock;
      notify t (match tier with `Mem -> "hit.mem" | `Disk -> "hit.disk");
      Some v
    | None ->
      Mutex.lock t.lock;
      t.st.misses <- t.st.misses + 1;
      Mutex.unlock t.lock;
      notify t "miss";
      None
  end

let put t ~key v =
  if t.on then begin
    let blob = Marshal.to_string v [] in
    Mutex.lock t.lock;
    Hashtbl.replace t.mem key blob;
    (match t.dir with
    | Some _ -> t.st.stores <- t.st.stores + 1
    | None -> ());
    Mutex.unlock t.lock;
    match t.dir with
    | Some dir ->
      notify t "store";
      if not (disk_store dir key blob) then begin
        Mutex.lock t.lock;
        t.st.retries <- t.st.retries + 1;
        Mutex.unlock t.lock;
        (* the memory tier still holds the artifact: degrade to
           memory-only for this key rather than failing the stage *)
        notify t "store-failed"
      end
    | None -> ()
  end

let memo t ~key compute =
  if not t.on then compute ()
  else
    match find_opt t ~key with
    | Some v -> v
    | None ->
      let v = compute () in
      put t ~key v;
      v
