type stats = { mutable hits : int; mutable misses : int; mutable stores : int }

type t = {
  lock : Mutex.t;
  mem : (string, string) Hashtbl.t; (* key -> marshal blob *)
  dir : string option;
  on : bool;
  st : stats;
  notify : (string -> unit) option;
}

(* versioned header so a stale or foreign file is rejected, never
   unmarshalled.  ART2: rewrite stats gained the per-check-kind
   breakdown, so ART1 blobs no longer unmarshal to the current types. *)
let magic = "REDFAT-ART2\n"

let create ?(enabled = true) ?dir ?notify () =
  {
    lock = Mutex.create ();
    mem = Hashtbl.create 64;
    dir = (if enabled then dir else None);
    on = enabled;
    st = { hits = 0; misses = 0; stores = 0 };
    notify;
  }

let notify t ev = match t.notify with Some f -> f ev | None -> ()

let enabled t = t.on
let stats t = t.st

let key ~kind parts =
  kind ^ "-" ^ Digest.to_hex (Digest.string (String.concat "\x00" (kind :: parts)))

let path dir key = Filename.concat dir (key ^ ".art")

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()

let disk_load dir k : string option =
  let file = path dir k in
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error _ -> None
  | s ->
    let m = String.length magic in
    if String.length s > m && String.sub s 0 m = magic then
      Some (String.sub s m (String.length s - m))
    else None

let disk_store dir k blob =
  ensure_dir dir;
  let file = path dir k in
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" file (Unix.getpid ())
      (Domain.self () :> int)
  in
  match
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc magic;
        Out_channel.output_string oc blob)
  with
  | () -> ( try Sys.rename tmp file with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let memo (type a) t ~key (compute : unit -> a) : a =
  if not t.on then compute ()
  else begin
    let cached =
      Mutex.lock t.lock;
      let hit = Hashtbl.find_opt t.mem key in
      Mutex.unlock t.lock;
      match hit with
      | Some blob -> Some blob
      | None -> (
        match t.dir with
        | None -> None
        | Some dir -> (
          match disk_load dir key with
          | Some blob ->
            Mutex.lock t.lock;
            Hashtbl.replace t.mem key blob;
            Mutex.unlock t.lock;
            Some blob
          | None -> None))
    in
    match cached with
    | Some blob ->
      Mutex.lock t.lock;
      t.st.hits <- t.st.hits + 1;
      Mutex.unlock t.lock;
      notify t "hit";
      (Marshal.from_string blob 0 : a)
    | None ->
      let v = compute () in
      let blob = Marshal.to_string v [] in
      Mutex.lock t.lock;
      t.st.misses <- t.st.misses + 1;
      Hashtbl.replace t.mem key blob;
      (match t.dir with
      | Some _ -> t.st.stores <- t.st.stores + 1
      | None -> ());
      Mutex.unlock t.lock;
      notify t "miss";
      (match t.dir with
      | Some dir ->
        notify t "store";
        disk_store dir key blob
      | None -> ());
      v
  end
