(** The staged hardening engine: the paper's Figure-5 workflow
    (Compile -> Harden -> Profile -> Run -> Report) as an explicit
    pipeline with a shared artifact cache, a work-stealing domain
    pool, and per-stage observability.

    One [t] per process/invocation.  All primitives are safe to call
    from inside [map] workers (nested fan-out degrades to sequential
    in that worker; the cache and report are mutex-guarded). *)

type t

val create :
  ?jobs:int -> ?cache:bool -> ?cache_dir:string -> ?strict:bool ->
  ?inject:Faultinject.t -> unit -> t
(** [jobs]: worker domains for [map] (default 1 = sequential).
    [cache]: artifact caching on/off.  [cache_dir]: also persist
    artifacts on disk so repeated invocations start warm.

    [strict] (default [false]): fail fast — {!protect} re-raises
    instead of returning [Error], and a faulting rewrite site aborts
    the rewrite ({!Redfat.Rewrite.Abort}) instead of degrading.
    [inject]: a deterministic fault-injection harness
    ({!Faultinject}); its canonical spec is folded into every cache
    key so injected runs never reuse or pollute clean-run
    artifacts. *)

val close : t -> unit
(** Join the worker domains.  Also registered [at_exit]; idempotent. *)

val jobs : t -> int
val report : t -> Report.t

val obs : t -> Obs.t
(** The engine's collector: stage spans, pool task lifetimes, cache
    hit/miss counters, rewriter phase spans and per-check-kind
    counters all land here (per-domain, lock-free). *)

val cache_stats : t -> Cache.stats
val cache_enabled : t -> bool
val strict : t -> bool
val inject : t -> Faultinject.t

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Deterministic-order parallel map over independent work items. *)

(** {2 The fault boundary}

    Faults are recorded once, at this boundary: primitives raise (or
    propagate) exceptions; {!protect} classifies them into the typed
    taxonomy ({!Fault.of_exn}), records them in the report and as
    [fault.<code>] obs counters, and isolates them per target. *)

val protect : t -> target:string -> (unit -> 'a) -> ('a, Fault.t) result
(** Run a thunk with [target] as the current fault provenance (and
    injection label).  An escaping exception is classified, recorded
    ([Report.add_fault] + [fault.<code>] counter) and returned as
    [Error] — or re-raised as [Fault.Fault] when the engine is
    [strict].  Transient faults (cache/IO) get one bounded retry
    before being recorded. *)

val map_targets :
  t -> (string -> 'a) -> string list -> ('a, Fault.t) result list
(** [protect]-wrapped parallel map over targets: one result slot per
    target in input order; a faulting target never cancels the rest of
    the batch (unless [strict], where the first fault fails the whole
    batch deterministically — lowest-index fault wins). *)

val record_fault : t -> Fault.t -> unit
(** Record an already-classified fault (report + counter) without
    raising — for callers that classify at their own boundary. *)

val load_relf : t -> string -> Binfmt.Relf.t
(** Read and parse a RELF file, with typed faults for every way that
    can fail: unreadable file ([io.read]), malformed container
    ([parse.magic]/[parse.truncated]/[parse.int]/[parse.section] via
    {!Fault.of_exn}), and a missing or empty [.text] section
    ([parse.nocode]).  Runs the [io] and [parse] injection points. *)

(** {2 Cached, timed stage primitives} *)

val compile : t -> Minic.Ast.program -> Binfmt.Relf.t
(** Compile a MiniC program; cached on a digest of the marshalled
    AST. *)

val harden :
  t -> ?tramp_base:int -> ?opts:Redfat.Rewrite.options -> Binfmt.Relf.t ->
  Redfat.Rewrite.t
(** Statically rewrite; cached on Digest(RELF bytes) + options key +
    trampoline base. *)

val profile :
  t -> ?max_steps:int -> test_suite:int list list -> Binfmt.Relf.t ->
  Redfat.Allowlist.t
(** Figure-5 profiling phase: the suite's runs are fanned out over the
    pool and merged; the resulting allow-list is cached on
    Digest(RELF bytes) + the suite. *)

val verify :
  t -> ?allow:int list -> Binfmt.Relf.t ->
  (Redfat.Verify.report, string) result
(** Timed run of the rewrite-soundness linter ({!Redfat.Verify}) on a
    hardened binary. *)

val run_baseline :
  t -> ?inputs:int list -> ?max_steps:int -> ?libs:Binfmt.Relf.t list ->
  Binfmt.Relf.t -> Redfat.run_result * Redfat.verdict

val run_hardened :
  t -> ?options:Redfat.Runtime.options -> ?profiling:bool -> ?random:int ->
  ?acct:Vm.Cpu.acct -> ?inputs:int list -> ?max_steps:int ->
  ?libs:Binfmt.Relf.t list -> Binfmt.Relf.t -> Redfat.hardened_run

val run_memcheck :
  t -> ?inputs:int list -> ?max_steps:int -> Binfmt.Relf.t ->
  Redfat.run_result * Redfat.verdict * Baselines.Memcheck.t
(** Timed (never cached): runs are the measurements themselves. *)

val emit_json : t -> ?extra:(string * string) list -> unit -> string
(** The run's report (stages, targets, cache counters, obs counters
    and histograms, jobs, wall) as JSON. *)

val record_vm_acct : t -> Vm.Cpu.acct -> unit
(** Fold a VM per-site check-accounting table ({!run_hardened}'s
    [acct]) into the collector: [vm.check.*] counters and [vm.site.*]
    histograms. *)

val trace_json : t -> string
(** The engine's collector as Chrome trace-event JSON (merge point:
    call only at a quiescent moment, e.g. after the chain/batches
    finish). *)

(** {2 The canonical typed stage chain}

    First-class stage values for composing the full workflow; see
    [Stage.( >>> )].  The original binary rides along so the Run stage
    can measure overhead against the uninstrumented baseline. *)

type outcome = {
  hard : Redfat.Rewrite.t;
  base : Redfat.run_result;        (** baseline run of the original *)
  hrun : Redfat.hardened_run;      (** same inputs, hardened binary *)
}

val stage_compile : t -> (Minic.Ast.program, Binfmt.Relf.t) Stage.t

val stage_profile :
  t -> train:int list list ->
  (Binfmt.Relf.t, Binfmt.Relf.t * Redfat.Allowlist.t) Stage.t

val stage_harden :
  t -> ?opts:Redfat.Rewrite.options -> unit ->
  (Binfmt.Relf.t * Redfat.Allowlist.t, Binfmt.Relf.t * Redfat.Rewrite.t)
  Stage.t

val stage_verify :
  t ->
  (Binfmt.Relf.t * Redfat.Rewrite.t, Binfmt.Relf.t * Redfat.Rewrite.t)
  Stage.t
(** Pass-through soundness gate: lint the hardened binary and fail the
    chain if any memory access is unaccounted for. *)

val stage_run :
  t -> inputs:int list ->
  (Binfmt.Relf.t * Redfat.Rewrite.t, outcome) Stage.t

val stage_report : t -> (outcome, string) Stage.t
