type ('a, 'b) t = {
  name : string;
  input : string;
  output : string;
  apply : Report.t option -> 'a -> 'b;
}

let v ~name ~input ~output f =
  {
    name;
    input;
    output;
    apply =
      (fun report x ->
        match report with
        | None -> f x
        | Some r -> Report.timed r name (fun () -> f x));
  }

let name t = t.name
let input t = t.input
let output t = t.output

let describe t = Printf.sprintf "%s : %s -> %s" t.name t.input t.output

let ( >>> ) a b =
  {
    name = a.name ^ " >>> " ^ b.name;
    input = a.input;
    output = b.output;
    apply = (fun report x -> b.apply report (a.apply report x));
  }

let run ?report t x = t.apply report x
