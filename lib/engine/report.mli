(** Per-stage observability for engine runs: call counts and summed
    wall time per stage (across all worker domains), per-target
    measurement records, and a structured JSON rendering for
    [BENCH_*.json] trajectory files.

    [Report] is the merged {e read side}: all hot-path recording
    (stage spans, counters, histograms) flows through the per-domain
    lock-free {!Obs} buffers, so worker domains never contend on a
    report mutex; only the cold per-target list is mutex-guarded. *)

type t

val create : unit -> t

val obs : t -> Obs.t
(** The underlying collector: spans with category ["stage"] are the
    stage table; any counters/histograms recorded on it are folded
    into {!to_json} and the Chrome trace export. *)

val set_jobs : t -> int -> unit
val jobs : t -> int

val timed : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside an [Obs] span of category ["stage"] named
    after the stage.  Exceptions still record the elapsed time. *)

val record : t -> string -> float -> unit
(** Record an already-measured stage interval of [dt] seconds. *)

type target = {
  tg_name : string;
  tg_cycles : int option;
      (** baseline cycles; [None] for synthetic targets with no
          baseline execution (the JSON field is omitted, not 0) *)
  tg_overheads : (string * float) list;  (** column -> slowdown ratio *)
  tg_counters : (string * int) list;
      (** named integer facts (e.g. [eliminated_global],
          [zero_save_sites]) *)
  tg_wall : float;  (** seconds spent producing this target *)
}

val add_target :
  t -> name:string -> ?cycles:int -> ?overheads:(string * float) list ->
  ?counters:(string * int) list -> wall:float -> unit -> unit

val targets : t -> target list
(** Sorted by name (parallel recording order is nondeterministic). *)

val add_fault : t -> Fault.t -> unit
(** Record a typed fault (per-target or global) in the report. *)

val faults : t -> Fault.t list
(** Sorted by (target, code) — parallel recording order is
    nondeterministic. *)

val stage_summary : t -> (string * int * float) list
(** [(stage, calls, seconds)], sorted by stage name. *)

val wall : t -> float
(** Seconds since [create]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable stage table. *)

val to_json :
  ?cache:Cache.stats -> ?cache_enabled:bool ->
  ?extra:(string * string) list -> t -> string
(** The full report as a JSON object: experiment metadata ([extra],
    emitted as string fields), jobs, wall seconds, cache hit/miss
    counters, per-stage timings, per-target records, and a ["faults"]
    array of typed per-target fault records (empty on a clean run;
    schema documented in docs/MANUAL.md). *)
